file(REMOVE_RECURSE
  "CMakeFiles/bench_sketches.dir/bench_sketches.cc.o"
  "CMakeFiles/bench_sketches.dir/bench_sketches.cc.o.d"
  "bench_sketches"
  "bench_sketches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
