file(REMOVE_RECURSE
  "CMakeFiles/bench_rare_entities.dir/bench_rare_entities.cc.o"
  "CMakeFiles/bench_rare_entities.dir/bench_rare_entities.cc.o.d"
  "bench_rare_entities"
  "bench_rare_entities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rare_entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
