# Empty dependencies file for bench_rare_entities.
# This may be replaced when dependencies are built.
