file(REMOVE_RECURSE
  "CMakeFiles/bench_patching.dir/bench_patching.cc.o"
  "CMakeFiles/bench_patching.dir/bench_patching.cc.o.d"
  "bench_patching"
  "bench_patching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
