# Empty dependencies file for bench_patching.
# This may be replaced when dependencies are built.
