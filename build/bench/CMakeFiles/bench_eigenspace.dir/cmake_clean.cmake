file(REMOVE_RECURSE
  "CMakeFiles/bench_eigenspace.dir/bench_eigenspace.cc.o"
  "CMakeFiles/bench_eigenspace.dir/bench_eigenspace.cc.o.d"
  "bench_eigenspace"
  "bench_eigenspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eigenspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
