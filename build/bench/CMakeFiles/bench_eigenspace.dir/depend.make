# Empty dependencies file for bench_eigenspace.
# This may be replaced when dependencies are built.
