# Empty compiler generated dependencies file for bench_version_skew.
# This may be replaced when dependencies are built.
