file(REMOVE_RECURSE
  "CMakeFiles/bench_version_skew.dir/bench_version_skew.cc.o"
  "CMakeFiles/bench_version_skew.dir/bench_version_skew.cc.o.d"
  "bench_version_skew"
  "bench_version_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_version_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
