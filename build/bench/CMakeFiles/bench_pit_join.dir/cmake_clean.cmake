file(REMOVE_RECURSE
  "CMakeFiles/bench_pit_join.dir/bench_pit_join.cc.o"
  "CMakeFiles/bench_pit_join.dir/bench_pit_join.cc.o.d"
  "bench_pit_join"
  "bench_pit_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pit_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
