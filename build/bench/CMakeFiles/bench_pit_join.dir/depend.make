# Empty dependencies file for bench_pit_join.
# This may be replaced when dependencies are built.
