file(REMOVE_RECURSE
  "CMakeFiles/bench_instability.dir/bench_instability.cc.o"
  "CMakeFiles/bench_instability.dir/bench_instability.cc.o.d"
  "bench_instability"
  "bench_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
