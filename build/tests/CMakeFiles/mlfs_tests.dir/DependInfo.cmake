
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregator_test.cc" "tests/CMakeFiles/mlfs_tests.dir/aggregator_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/aggregator_test.cc.o.d"
  "/root/repo/tests/align_test.cc" "tests/CMakeFiles/mlfs_tests.dir/align_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/align_test.cc.o.d"
  "/root/repo/tests/ann_metric_test.cc" "tests/CMakeFiles/mlfs_tests.dir/ann_metric_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/ann_metric_test.cc.o.d"
  "/root/repo/tests/ann_test.cc" "tests/CMakeFiles/mlfs_tests.dir/ann_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/ann_test.cc.o.d"
  "/root/repo/tests/checkpoint_test.cc" "tests/CMakeFiles/mlfs_tests.dir/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/checkpoint_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/mlfs_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/drift_test.cc" "tests/CMakeFiles/mlfs_tests.dir/drift_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/drift_test.cc.o.d"
  "/root/repo/tests/embedding_feature_path_test.cc" "tests/CMakeFiles/mlfs_tests.dir/embedding_feature_path_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/embedding_feature_path_test.cc.o.d"
  "/root/repo/tests/embedding_quality_test.cc" "tests/CMakeFiles/mlfs_tests.dir/embedding_quality_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/embedding_quality_test.cc.o.d"
  "/root/repo/tests/embedding_table_test.cc" "tests/CMakeFiles/mlfs_tests.dir/embedding_table_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/embedding_table_test.cc.o.d"
  "/root/repo/tests/expr_eval_test.cc" "tests/CMakeFiles/mlfs_tests.dir/expr_eval_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/expr_eval_test.cc.o.d"
  "/root/repo/tests/expr_parser_test.cc" "tests/CMakeFiles/mlfs_tests.dir/expr_parser_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/expr_parser_test.cc.o.d"
  "/root/repo/tests/feature_server_test.cc" "tests/CMakeFiles/mlfs_tests.dir/feature_server_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/feature_server_test.cc.o.d"
  "/root/repo/tests/feature_stats_test.cc" "tests/CMakeFiles/mlfs_tests.dir/feature_stats_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/feature_stats_test.cc.o.d"
  "/root/repo/tests/feature_store_test.cc" "tests/CMakeFiles/mlfs_tests.dir/feature_store_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/feature_store_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/mlfs_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/mlfs_tests.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/matrix_test.cc.o.d"
  "/root/repo/tests/misc_common_test.cc" "tests/CMakeFiles/mlfs_tests.dir/misc_common_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/misc_common_test.cc.o.d"
  "/root/repo/tests/ml_metrics_test.cc" "tests/CMakeFiles/mlfs_tests.dir/ml_metrics_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/ml_metrics_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/mlfs_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/modelstore_test.cc" "tests/CMakeFiles/mlfs_tests.dir/modelstore_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/modelstore_test.cc.o.d"
  "/root/repo/tests/ned_test.cc" "tests/CMakeFiles/mlfs_tests.dir/ned_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/ned_test.cc.o.d"
  "/root/repo/tests/offline_store_test.cc" "tests/CMakeFiles/mlfs_tests.dir/offline_store_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/offline_store_test.cc.o.d"
  "/root/repo/tests/online_store_test.cc" "tests/CMakeFiles/mlfs_tests.dir/online_store_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/online_store_test.cc.o.d"
  "/root/repo/tests/patcher_test.cc" "tests/CMakeFiles/mlfs_tests.dir/patcher_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/patcher_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/mlfs_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/point_in_time_test.cc" "tests/CMakeFiles/mlfs_tests.dir/point_in_time_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/point_in_time_test.cc.o.d"
  "/root/repo/tests/registry_test.cc" "tests/CMakeFiles/mlfs_tests.dir/registry_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/registry_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/mlfs_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/serde_test.cc" "tests/CMakeFiles/mlfs_tests.dir/serde_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/serde_test.cc.o.d"
  "/root/repo/tests/sgns_test.cc" "tests/CMakeFiles/mlfs_tests.dir/sgns_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/sgns_test.cc.o.d"
  "/root/repo/tests/sketch_test.cc" "tests/CMakeFiles/mlfs_tests.dir/sketch_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/sketch_test.cc.o.d"
  "/root/repo/tests/slice_test.cc" "tests/CMakeFiles/mlfs_tests.dir/slice_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/slice_test.cc.o.d"
  "/root/repo/tests/stats_math_test.cc" "tests/CMakeFiles/mlfs_tests.dir/stats_math_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/stats_math_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/mlfs_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/mlfs_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/window_test.cc" "tests/CMakeFiles/mlfs_tests.dir/window_test.cc.o" "gcc" "tests/CMakeFiles/mlfs_tests.dir/window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
