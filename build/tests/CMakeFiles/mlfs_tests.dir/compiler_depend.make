# Empty compiler generated dependencies file for mlfs_tests.
# This may be replaced when dependencies are built.
