# Empty compiler generated dependencies file for example_entity_disambiguation.
# This may be replaced when dependencies are built.
