file(REMOVE_RECURSE
  "CMakeFiles/example_entity_disambiguation.dir/entity_disambiguation.cpp.o"
  "CMakeFiles/example_entity_disambiguation.dir/entity_disambiguation.cpp.o.d"
  "example_entity_disambiguation"
  "example_entity_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_entity_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
