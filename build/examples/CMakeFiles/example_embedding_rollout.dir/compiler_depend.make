# Empty compiler generated dependencies file for example_embedding_rollout.
# This may be replaced when dependencies are built.
