file(REMOVE_RECURSE
  "CMakeFiles/example_embedding_rollout.dir/embedding_rollout.cpp.o"
  "CMakeFiles/example_embedding_rollout.dir/embedding_rollout.cpp.o.d"
  "example_embedding_rollout"
  "example_embedding_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_embedding_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
