# Empty compiler generated dependencies file for example_ride_sharing.
# This may be replaced when dependencies are built.
