file(REMOVE_RECURSE
  "CMakeFiles/example_ride_sharing.dir/ride_sharing.cpp.o"
  "CMakeFiles/example_ride_sharing.dir/ride_sharing.cpp.o.d"
  "example_ride_sharing"
  "example_ride_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ride_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
