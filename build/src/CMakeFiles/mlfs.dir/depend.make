# Empty dependencies file for mlfs.
# This may be replaced when dependencies are built.
