
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/mlfs.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/mlfs.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/mlfs.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/rng.cc.o.d"
  "/root/repo/src/common/row.cc" "src/CMakeFiles/mlfs.dir/common/row.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/row.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/mlfs.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/schema.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/mlfs.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/serde.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mlfs.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/mlfs.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/mlfs.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/threadpool.cc.o.d"
  "/root/repo/src/common/timestamp.cc" "src/CMakeFiles/mlfs.dir/common/timestamp.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/timestamp.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/mlfs.dir/common/value.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/common/value.cc.o.d"
  "/root/repo/src/core/feature_store.cc" "src/CMakeFiles/mlfs.dir/core/feature_store.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/core/feature_store.cc.o.d"
  "/root/repo/src/datagen/kb.cc" "src/CMakeFiles/mlfs.dir/datagen/kb.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/datagen/kb.cc.o.d"
  "/root/repo/src/datagen/tabular.cc" "src/CMakeFiles/mlfs.dir/datagen/tabular.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/datagen/tabular.cc.o.d"
  "/root/repo/src/embedding/align.cc" "src/CMakeFiles/mlfs.dir/embedding/align.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/align.cc.o.d"
  "/root/repo/src/embedding/brute_force.cc" "src/CMakeFiles/mlfs.dir/embedding/brute_force.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/brute_force.cc.o.d"
  "/root/repo/src/embedding/compress.cc" "src/CMakeFiles/mlfs.dir/embedding/compress.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/compress.cc.o.d"
  "/root/repo/src/embedding/embedding_drift.cc" "src/CMakeFiles/mlfs.dir/embedding/embedding_drift.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/embedding_drift.cc.o.d"
  "/root/repo/src/embedding/embedding_store.cc" "src/CMakeFiles/mlfs.dir/embedding/embedding_store.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/embedding_store.cc.o.d"
  "/root/repo/src/embedding/embedding_table.cc" "src/CMakeFiles/mlfs.dir/embedding/embedding_table.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/embedding_table.cc.o.d"
  "/root/repo/src/embedding/hnsw.cc" "src/CMakeFiles/mlfs.dir/embedding/hnsw.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/hnsw.cc.o.d"
  "/root/repo/src/embedding/ivf.cc" "src/CMakeFiles/mlfs.dir/embedding/ivf.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/ivf.cc.o.d"
  "/root/repo/src/embedding/kmeans.cc" "src/CMakeFiles/mlfs.dir/embedding/kmeans.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/kmeans.cc.o.d"
  "/root/repo/src/embedding/quality.cc" "src/CMakeFiles/mlfs.dir/embedding/quality.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/embedding/quality.cc.o.d"
  "/root/repo/src/expr/ast.cc" "src/CMakeFiles/mlfs.dir/expr/ast.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/expr/ast.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/mlfs.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/lexer.cc" "src/CMakeFiles/mlfs.dir/expr/lexer.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/expr/lexer.cc.o.d"
  "/root/repo/src/expr/parser.cc" "src/CMakeFiles/mlfs.dir/expr/parser.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/expr/parser.cc.o.d"
  "/root/repo/src/ml/linear_model.cc" "src/CMakeFiles/mlfs.dir/ml/linear_model.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/ml/linear_model.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/mlfs.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/mlfs.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/CMakeFiles/mlfs.dir/ml/mlp.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/ml/mlp.cc.o.d"
  "/root/repo/src/ml/sgns.cc" "src/CMakeFiles/mlfs.dir/ml/sgns.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/ml/sgns.cc.o.d"
  "/root/repo/src/modelstore/model_registry.cc" "src/CMakeFiles/mlfs.dir/modelstore/model_registry.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/modelstore/model_registry.cc.o.d"
  "/root/repo/src/monitoring/alerting.cc" "src/CMakeFiles/mlfs.dir/monitoring/alerting.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/monitoring/alerting.cc.o.d"
  "/root/repo/src/monitoring/patcher.cc" "src/CMakeFiles/mlfs.dir/monitoring/patcher.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/monitoring/patcher.cc.o.d"
  "/root/repo/src/monitoring/slice.cc" "src/CMakeFiles/mlfs.dir/monitoring/slice.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/monitoring/slice.cc.o.d"
  "/root/repo/src/monitoring/slice_finder.cc" "src/CMakeFiles/mlfs.dir/monitoring/slice_finder.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/monitoring/slice_finder.cc.o.d"
  "/root/repo/src/ned/ned.cc" "src/CMakeFiles/mlfs.dir/ned/ned.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/ned/ned.cc.o.d"
  "/root/repo/src/quality/drift.cc" "src/CMakeFiles/mlfs.dir/quality/drift.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/quality/drift.cc.o.d"
  "/root/repo/src/quality/feature_stats.cc" "src/CMakeFiles/mlfs.dir/quality/feature_stats.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/quality/feature_stats.cc.o.d"
  "/root/repo/src/quality/outlier.cc" "src/CMakeFiles/mlfs.dir/quality/outlier.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/quality/outlier.cc.o.d"
  "/root/repo/src/quality/sketch.cc" "src/CMakeFiles/mlfs.dir/quality/sketch.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/quality/sketch.cc.o.d"
  "/root/repo/src/quality/skew.cc" "src/CMakeFiles/mlfs.dir/quality/skew.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/quality/skew.cc.o.d"
  "/root/repo/src/quality/stats_math.cc" "src/CMakeFiles/mlfs.dir/quality/stats_math.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/quality/stats_math.cc.o.d"
  "/root/repo/src/quality/streaming_monitor.cc" "src/CMakeFiles/mlfs.dir/quality/streaming_monitor.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/quality/streaming_monitor.cc.o.d"
  "/root/repo/src/registry/materializer.cc" "src/CMakeFiles/mlfs.dir/registry/materializer.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/registry/materializer.cc.o.d"
  "/root/repo/src/registry/orchestrator.cc" "src/CMakeFiles/mlfs.dir/registry/orchestrator.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/registry/orchestrator.cc.o.d"
  "/root/repo/src/registry/registry.cc" "src/CMakeFiles/mlfs.dir/registry/registry.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/registry/registry.cc.o.d"
  "/root/repo/src/serving/feature_server.cc" "src/CMakeFiles/mlfs.dir/serving/feature_server.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/serving/feature_server.cc.o.d"
  "/root/repo/src/serving/point_in_time.cc" "src/CMakeFiles/mlfs.dir/serving/point_in_time.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/serving/point_in_time.cc.o.d"
  "/root/repo/src/storage/offline_store.cc" "src/CMakeFiles/mlfs.dir/storage/offline_store.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/storage/offline_store.cc.o.d"
  "/root/repo/src/storage/online_store.cc" "src/CMakeFiles/mlfs.dir/storage/online_store.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/storage/online_store.cc.o.d"
  "/root/repo/src/storage/persistence.cc" "src/CMakeFiles/mlfs.dir/storage/persistence.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/storage/persistence.cc.o.d"
  "/root/repo/src/streaming/aggregator.cc" "src/CMakeFiles/mlfs.dir/streaming/aggregator.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/streaming/aggregator.cc.o.d"
  "/root/repo/src/streaming/stream_pipeline.cc" "src/CMakeFiles/mlfs.dir/streaming/stream_pipeline.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/streaming/stream_pipeline.cc.o.d"
  "/root/repo/src/streaming/window.cc" "src/CMakeFiles/mlfs.dir/streaming/window.cc.o" "gcc" "src/CMakeFiles/mlfs.dir/streaming/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
