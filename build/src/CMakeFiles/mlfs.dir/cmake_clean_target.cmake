file(REMOVE_RECURSE
  "libmlfs.a"
)
