// Safe embedding rollout (paper §3.1.2 and §4): a retrained embedding
// version arrives; before swapping it into serving, the store quantifies
// what would change — geometry drift, eigenspace overlap, downstream
// prediction churn — and flags every consumer whose pinned version would
// go stale ("the dot product ... can lose meaning").
//
// Run: ./example_embedding_rollout

#include <cstdio>

#include "core/feature_store.h"
#include "embedding/compress.h"
#include "embedding/quality.h"
#include "ml/sgns.h"

using namespace mlfs;

namespace {

// Retrains embeddings over the same corpus with a different seed — the
// everyday "embedding update" event.
EmbeddingTablePtr TrainVersion(const std::vector<std::vector<int>>& corpus,
                               size_t vocab, size_t num_entities,
                               uint64_t seed) {
  SgnsConfig config;
  config.dim = 24;
  config.epochs = 3;
  config.seed = seed;
  TokenEmbeddings emb = TrainSgns(corpus, vocab, config).value();
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < num_entities; ++e) {
    keys.push_back("item_" + std::to_string(e));
    const float* row = emb.row(e);
    vectors.insert(vectors.end(), row, row + config.dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "item_emb";
  metadata.training_source = "sgns seed=" + std::to_string(seed);
  return EmbeddingTable::Create(metadata, keys, vectors, config.dim).value();
}

}  // namespace

int main() {
  FeatureStore store;

  // A small co-occurrence corpus over 400 "items" in 8 latent groups.
  Rng rng(5);
  const size_t items = 400;
  std::vector<std::vector<int>> corpus;
  for (int s = 0; s < 6000; ++s) {
    int group = static_cast<int>(rng.Uniform(8));
    std::vector<int> sentence;
    for (int t = 0; t < 6; ++t) {
      sentence.push_back(group * 50 + static_cast<int>(rng.Uniform(50)));
    }
    corpus.push_back(std::move(sentence));
  }

  auto v1 = TrainVersion(corpus, items, items, /*seed=*/1);
  MLFS_CHECK_OK(store.RegisterEmbedding(v1).status());

  // A consumer trains against v1 and pins it.
  ModelRecord consumer;
  consumer.name = "recommender";
  consumer.task = "item-group-prediction";
  consumer.embedding_refs = {"item_emb@v1"};
  MLFS_CHECK_OK(store.RegisterModel(consumer).status());

  // --- The retrained candidate arrives --------------------------------------
  auto v2 = TrainVersion(corpus, items, items, /*seed=*/2);
  MLFS_CHECK_OK(store.RegisterEmbedding(v2).status());

  // 1. Geometry drift between versions.
  auto drift = store.CheckEmbeddingUpdateDrift("item_emb", 1, 2).value();
  std::printf("v1 -> v2 drift: %s\n", drift.ToString().c_str());

  // 2. Eigenspace overlap (does v2 span the same subspace?).
  auto v1_table = store.embeddings().GetVersion("item_emb", 1).value();
  auto v2_table = store.embeddings().GetVersion("item_emb", 2).value();
  double eos = EigenspaceOverlapScore(*v1_table, *v2_table).value();
  std::printf("eigenspace overlap score: %.3f\n", eos);

  // 3. Downstream instability: how many predictions would flip?
  DownstreamTask task;
  for (size_t e = 0; e < items; ++e) {
    task.keys.push_back("item_" + std::to_string(e));
    task.labels.push_back(static_cast<int>(e / 50));  // Latent group.
  }
  auto instability = DownstreamInstability(*v1_table, *v2_table, task).value();
  std::printf("downstream: acc v1=%.3f acc v2=%.3f churn=%.1f%%\n",
              instability.accuracy_a, instability.accuracy_b,
              100.0 * instability.prediction_churn);

  // 4. Who breaks if we roll out without retraining?
  auto skews = store.CheckEmbeddingVersionSkew().value().skews;
  for (const VersionSkew& skew : skews) {
    std::printf("STALE CONSUMER: %s pins %s@v%d (latest v%d)\n",
                skew.model.c_str(), skew.embedding.c_str(),
                skew.pinned_version, skew.latest_version);
  }

  // 5. Bonus: a compressed serving variant, with lineage.
  auto compressed = QuantizeUniform(*v2_table, 8).value();
  MLFS_CHECK_OK(store.RegisterEmbedding(compressed).status());
  double eos_compressed =
      EigenspaceOverlapScore(*v2_table, *compressed).value();
  std::printf("8-bit serving copy: EOS vs v2 = %.4f (ratio %.1fx)\n",
              eos_compressed,
              CompressionRatio(8, v2_table->size(), v2_table->dim()));
  auto lineage = store.embeddings().Lineage("item_emb@v3").value();
  std::printf("lineage of item_emb@v3:");
  for (const auto& ref : lineage) std::printf(" %s", ref.c_str());
  std::printf("\n");

  std::printf("alerts:\n");
  for (const Alert& alert : store.alerts().All()) {
    std::printf("  %s\n", alert.ToString().c_str());
  }
  return 0;
}
