// Quickstart: the end-to-end tabular feature-store workflow.
//
//   1. Register a raw source table and ingest events.
//   2. Author + publish a feature definition (validated at publish time).
//   3. Let the orchestrator materialize it into the online store.
//   4. Serve feature vectors at low latency.
//   5. Build a leakage-free point-in-time training set and train a model.
//   6. Register the model with pinned feature versions.
//
// Run: ./example_quickstart

#include <cstdio>

#include "core/feature_store.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"

using namespace mlfs;

int main() {
  FeatureStore store;

  // --- 1. Source table ------------------------------------------------------
  auto schema = Schema::Create({{"user_id", FeatureType::kInt64, false},
                                {"event_time", FeatureType::kTimestamp, false},
                                {"trips_7d", FeatureType::kInt64, true},
                                {"trips_30d", FeatureType::kInt64, true},
                                {"avg_rating", FeatureType::kDouble, true}})
                    .value();
  OfflineTableOptions table;
  table.name = "user_activity";
  table.schema = schema;
  table.entity_column = "user_id";
  table.time_column = "event_time";
  MLFS_CHECK_OK(store.CreateSourceTable(table));

  Rng rng(42);
  std::vector<Row> events;
  for (int64_t user = 0; user < 200; ++user) {
    for (Timestamp t = Hours(1); t < Days(3); t += Hours(6)) {
      int64_t trips7 = static_cast<int64_t>(rng.Uniform(20));
      events.push_back(
          Row::Create(schema, {Value::Int64(user), Value::Time(t),
                               Value::Int64(trips7),
                               Value::Int64(trips7 + rng.Uniform(40)),
                               Value::Double(rng.UniformDouble(3.0, 5.0))})
              .value());
    }
  }
  MLFS_CHECK_OK(store.Ingest("user_activity", events));
  std::printf("ingested %zu events; logical clock now %s\n", events.size(),
              FormatTimestamp(store.clock().now()).c_str());

  // --- 2. Publish features --------------------------------------------------
  FeatureDefinition rate;
  rate.name = "user_trip_rate";
  rate.entity = "user";
  rate.source_table = "user_activity";
  rate.expression = "trips_7d / (trips_30d + 1)";
  rate.cadence = Hours(6);
  rate.description = "Share of the 30d trips taken in the last 7d";
  int version = store.PublishFeature(rate).value();
  std::printf("published %s@v%d (output type %s, reads %zu columns)\n",
              rate.name.c_str(), version,
              std::string(FeatureTypeToString(
                  store.registry().Get(rate.name)->output_type)).c_str(),
              store.registry().Get(rate.name)->input_columns.size());

  FeatureDefinition rating;
  rating.name = "user_rating";
  rating.entity = "user";
  rating.source_table = "user_activity";
  rating.expression = "coalesce(avg_rating, 4.0)";
  rating.cadence = Hours(12);
  MLFS_CHECK_OK(store.PublishFeature(rating).status());

  // --- 3. Materialize -------------------------------------------------------
  int refreshed = store.RunMaterialization().value();
  std::printf("orchestrator refreshed %d features\n", refreshed);

  // --- 4. Serve -------------------------------------------------------------
  auto fv = store.ServeFeatures(Value::Int64(7),
                                {"user_trip_rate", "user_rating"})
                .value();
  std::printf("user 7: trip_rate=%.3f rating=%.2f (oldest input %s old)\n",
              fv.values[0].double_value(), fv.values[1].double_value(),
              FormatTimestamp(store.clock().now() - fv.oldest_event_time)
                  .c_str());

  // --- 5. Training set via point-in-time join --------------------------------
  auto spine_schema =
      Schema::Create({{"user_id", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false},
                      {"churned", FeatureType::kInt64, false}})
          .value();
  std::vector<Row> spine;
  Rng label_rng(7);
  // Label observations are stamped "now": the join may only use feature
  // values that existed at that moment (all of them, here).
  const Timestamp label_time = store.clock().now();
  for (int64_t user = 0; user < 200; ++user) {
    spine.push_back(
        Row::Create(spine_schema,
                    {Value::Int64(user), Value::Time(label_time),
                     Value::Int64(label_rng.Bernoulli(0.3) ? 1 : 0)})
            .value());
  }
  TrainingSet training =
      store.BuildTrainingSet(spine, "user_id", "ts",
                             {"user_trip_rate", "user_rating"})
          .value();
  std::printf("training set: %zu rows, %zu columns, %llu missing cells\n",
              training.rows.size(), training.schema->num_fields(),
              static_cast<unsigned long long>(training.missing_cells));

  Dataset dataset;
  for (const Row& row : training.rows) {
    auto rate_value = row.ValueByName("user_trip_rate").value();
    auto rating_value = row.ValueByName("user_rating").value();
    if (rate_value.is_null() || rating_value.is_null()) continue;
    dataset.Add({static_cast<float>(rate_value.double_value()),
                 static_cast<float>(rating_value.double_value())},
                static_cast<int>(
                    row.ValueByName("churned").value().int64_value()));
  }
  SoftmaxClassifier model;
  double loss = model.Fit(dataset).value();
  auto preds = model.PredictBatch(dataset).value();
  double accuracy = Accuracy(dataset.labels, preds).value();
  std::printf("trained churn model: loss=%.3f accuracy=%.3f\n", loss,
              accuracy);

  // --- 6. Register the model with provenance --------------------------------
  ModelRecord record;
  record.name = "churn_model";
  record.task = "churn-classification";
  record.feature_refs = {"user_trip_rate@v1", "user_rating@v1"};
  record.metrics["train_accuracy"] = accuracy;
  record.weights = model.weights();
  int model_version = store.RegisterModel(record).value();
  std::printf("registered churn_model@v%d (checksum %llx)\n", model_version,
              static_cast<unsigned long long>(
                  store.models().Get("churn_model")->weights_checksum));

  // --- 7. Durability: checkpoint the whole store and reload it --------------
  const std::string checkpoint_dir = "/tmp/mlfs_quickstart_checkpoint";
  MLFS_CHECK_OK(store.Checkpoint(checkpoint_dir));
  FeatureStore reloaded;
  MLFS_CHECK_OK(reloaded.RestoreCheckpoint(checkpoint_dir));
  auto fv_again = reloaded.ServeFeatures(Value::Int64(7),
                                         {"user_trip_rate", "user_rating"})
                      .value();
  std::printf("checkpoint/restore: user 7 still serves trip_rate=%.3f "
              "(models=%zu, features=%zu)\n",
              fv_again.values[0].double_value(),
              reloaded.models().num_models(),
              reloaded.registry().num_features());

  std::printf("quickstart complete; %zu alerts emitted\n",
              store.alerts().size());
  return 0;
}
