// Bootleg-style entity-embedding scenario (paper §3.1): pre-train entity
// embeddings on a self-supervised synthetic corpus, register them in the
// store, serve nearest-neighbor candidates, measure quality on the rare
// tail, discover the failing slice automatically, and patch the embedding
// so every downstream consumer is fixed at once.
//
// Run: ./example_entity_disambiguation

#include <cstdio>
#include <unordered_set>

#include "core/feature_store.h"
#include "datagen/kb.h"
#include "ml/metrics.h"
#include "ml/sgns.h"
#include "monitoring/patcher.h"
#include "monitoring/slice_finder.h"
#include "ned/ned.h"

using namespace mlfs;

int main() {
  FeatureStore store;

  // --- Synthetic knowledge base + self-supervised corpus --------------------
  SyntheticKbConfig kb_config;
  kb_config.num_entities = 1200;
  kb_config.num_types = 6;
  kb_config.num_edges = 5000;
  SyntheticKb kb = BuildSyntheticKb(kb_config).value();

  CorpusConfig corpus_config;
  corpus_config.num_sentences = 12000;
  auto corpus = GenerateCorpus(kb, corpus_config).value();
  auto mentions = CountMentions(kb, corpus);
  std::printf("KB: %zu entities, corpus: %zu sentences\n", kb.num_entities(),
              corpus.size());

  // --- Pre-train entity embeddings (SGNS) and register ----------------------
  SgnsConfig sgns;
  sgns.dim = 32;
  sgns.epochs = 3;
  TokenEmbeddings token_embeddings =
      TrainSgns(corpus, kb.vocab_size(), sgns).value();

  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    const float* row = token_embeddings.row(e);
    vectors.insert(vectors.end(), row, row + sgns.dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "entity_emb";
  metadata.training_source = "synthetic corpus (12k sentences, SGNS d=32)";
  auto table =
      EmbeddingTable::Create(metadata, keys, vectors, sgns.dim).value();
  int version = store.RegisterEmbedding(table).value();
  std::printf("registered entity_emb@v%d\n", version);

  // --- Serve nearest-neighbor candidates (disambiguation candidates) --------
  auto neighbors = store.NearestEntities("entity_emb", kb.entity_key(0), 5)
                       .value();
  std::printf("candidates near %s:", kb.entity_key(0).c_str());
  for (const auto& [key, dist] : neighbors) std::printf(" %s", key.c_str());
  std::printf("\n");

  // --- The product task: resolve ambiguous mentions --------------------------
  auto alias_table = BuildAliasTable(kb, 3.0, 3, /*confusable=*/false).value();
  auto mention_queries =
      GenerateMentionQueries(kb, alias_table, 1500, 4, 5).value();
  auto stored = store.embeddings().GetLatest("entity_emb").value();
  auto ned = EvaluateDisambiguation(*stored, kb, alias_table,
                                    mention_queries).value();
  std::printf("disambiguation: acc=%.3f mrr=%.3f over %zu mentions "
              "(random-candidate baseline %.3f)\n",
              ned.accuracy, ned.mrr, ned.queries, ned.random_baseline);

  // --- Downstream task: entity typing from the embedding --------------------
  DownstreamTask task;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    task.keys.push_back(kb.entity_key(e));
    task.labels.push_back(kb.entity_type[e]);
  }
  auto latest = store.embeddings().GetLatest("entity_emb").value();
  Dataset dataset = MaterializeTask(task, *latest).value();
  SoftmaxClassifier typer;
  MLFS_CHECK_OK(typer.Fit(dataset).status());
  auto preds = typer.PredictBatch(dataset).value();
  std::printf("entity typing accuracy (all): %.3f\n",
              Accuracy(dataset.labels, preds).value());

  // --- Quality by popularity decile: the tail is where it hurts -------------
  auto deciles = PopularityDeciles(mentions, 5);
  std::printf("accuracy by popularity quintile (0=head):");
  for (size_t q = 0; q < deciles.size(); ++q) {
    size_t n = 0, correct = 0;
    for (size_t e : deciles[q]) {
      ++n;
      correct += preds[e] == task.labels[e];
    }
    std::printf(" q%zu=%.2f", q, static_cast<double>(correct) / n);
  }
  std::printf("\n");

  // --- Automatic slice discovery over metadata ------------------------------
  auto meta_schema =
      Schema::Create({{"mentions", FeatureType::kInt64, true}}).value();
  std::vector<Row> metadata_rows;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    metadata_rows.push_back(
        Row::Create(meta_schema,
                    {Value::Int64(static_cast<int64_t>(mentions[e]))})
            .value());
  }
  auto slices =
      FindUnderperformingSlices(metadata_rows, task.labels, preds).value();
  for (const auto& slice : slices) {
    std::printf("found slice: %s (n=%zu, acc=%.3f, gap=%.3f, z=%.1f)\n",
                slice.predicate.c_str(), slice.size, slice.accuracy,
                slice.accuracy_gap, slice.z_score);
  }

  // --- Patch the embedding for the worst slice -------------------------------
  if (!slices.empty()) {
    std::unordered_set<std::string> slice_keys;
    for (size_t member : slices[0].members) {
      slice_keys.insert(kb.entity_key(member));
    }
    auto patched =
        PatchEmbedding(*latest, task, slice_keys, {.alpha = 0.7}).value();
    auto evaluation =
        EvaluatePatch(*latest, *patched, task, slice_keys).value();
    std::printf("patch '%s': slice acc %.3f -> %.3f, rest %.3f -> %.3f\n",
                slices[0].predicate.c_str(),
                evaluation.slice_accuracy_before,
                evaluation.slice_accuracy_after,
                evaluation.rest_accuracy_before,
                evaluation.rest_accuracy_after);
    int v2 = store.RegisterEmbedding(patched).value();
    auto lineage = store.embeddings().Lineage("entity_emb@v2").value();
    std::printf("registered entity_emb@v%d; lineage:", v2);
    for (const auto& ref : lineage) std::printf(" %s", ref.c_str());
    std::printf("\n");
  }
  return 0;
}
