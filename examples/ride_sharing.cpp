// Ride-sharing scenario (the Michelangelo-style workload that motivated the
// first industrial feature store): streaming trip events are aggregated
// into windowed features, served online, and monitored for drift — a
// simulated "holiday" shifts fares and the store's drift monitor fires.
//
// Run: ./example_ride_sharing

#include <cstdio>

#include "core/feature_store.h"
#include "datagen/tabular.h"
#include "quality/skew.h"

using namespace mlfs;

int main() {
  FeatureStore store;

  // --- Streaming feature view over trip events -------------------------------
  auto event_schema =
      Schema::Create({{"driver_id", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false},
                      {"fare", FeatureType::kDouble, true},
                      {"minutes", FeatureType::kDouble, true}})
          .value();

  StreamPipelineOptions pipeline_options;
  pipeline_options.name = "driver_stats_1h";
  pipeline_options.event_schema = event_schema;
  pipeline_options.entity_column = "driver_id";
  pipeline_options.time_column = "ts";
  pipeline_options.window = {Hours(1), Hours(1)};
  pipeline_options.aggs = {
      {"trips", AggregateFn::kCount, ""},
      {"fare_total", AggregateFn::kSum, "fare"},
      {"fare_p90", AggregateFn::kP90, "fare"},
      {"fare_per_minute", AggregateFn::kMean, "fare / (minutes + 1)"}};
  pipeline_options.allowed_lateness = Minutes(10);
  StreamPipeline* pipeline =
      store.CreateStreamPipeline(pipeline_options).value();

  // --- Simulate two days of trips; day 2 is a "holiday" (fares 2x) ----------
  Rng rng(11);
  ZipfDistribution driver_popularity(100, 0.9);
  auto make_trip = [&](Timestamp t, double fare_scale) {
    int64_t driver = static_cast<int64_t>(driver_popularity.Sample(&rng));
    double minutes = rng.UniformDouble(5, 40);
    double fare = fare_scale * (2.5 + 1.1 * minutes + rng.Gaussian(0, 2));
    return Row::Create(event_schema,
                       {Value::Int64(driver), Value::Time(t),
                        Value::Double(fare), Value::Double(minutes)})
        .value();
  };
  size_t trips = 0;
  for (Timestamp t = 0; t < Days(2); t += Seconds(45)) {
    double scale = (t >= Days(1)) ? 2.0 : 1.0;  // Holiday surge on day 2.
    MLFS_CHECK_OK(pipeline->Ingest(make_trip(t, scale)));
    ++trips;
  }
  MLFS_CHECK_OK(pipeline->Flush(Days(2)));
  store.clock().AdvanceTo(Days(2));
  std::printf("ingested %zu trips -> %llu hourly feature rows (%llu late)\n",
              trips,
              static_cast<unsigned long long>(pipeline->rows_emitted()),
              static_cast<unsigned long long>(pipeline->dropped_late()));

  // --- Serve current driver features ----------------------------------------
  auto row = store.online()
                 .Get("driver_stats_1h", Value::Int64(0), store.clock().now())
                 .value();
  std::printf("driver 0 latest window: trips=%lld fare_total=%.1f "
              "fare_p90=%.1f fare/min=%.2f\n",
              static_cast<long long>(
                  row.ValueByName("trips").value().int64_value()),
              row.ValueByName("fare_total").value().double_value(),
              row.ValueByName("fare_p90").value().double_value(),
              row.ValueByName("fare_per_minute").value().double_value());

  // --- Monitoring: the holiday shows up as training/serving skew ------------
  auto log = store.offline().GetTable("driver_stats_1h").value();
  std::vector<Row> day1 = log->Scan(0, Days(1));
  std::vector<Row> day2 = log->Scan(Days(1), Days(2));
  auto skew = ComputeSkew(day1, day2, "fare_total").value();
  std::printf("fare_total day1 vs day2: %s\n", skew.ToString().c_str());
  if (skew.skewed) {
    store.alerts().Emit({store.clock().now(), "skew:driver_stats_1h",
                         AlertSeverity::kWarning, skew.ToString()});
  }
  // A feature that should NOT drift: fare per minute is scale-invariant in
  // trips, but the holiday scales fares, so it drifts too — whereas trip
  // *counts* stay stable.
  auto count_skew = ComputeSkew(day1, day2, "trips").value();
  std::printf("trips    day1 vs day2: %s\n", count_skew.ToString().c_str());

  std::printf("alerts: %zu (>= warning: %zu)\n", store.alerts().size(),
              store.alerts().CountAtLeast(AlertSeverity::kWarning));
  for (const Alert& alert : store.alerts().All()) {
    std::printf("  %s\n", alert.ToString().c_str());
  }
  return 0;
}
