// E14 — Columnar offline storage: projected reads and the spill tier.
//
// Claim: column-major sealed segments make training reads cheaper two
// ways — projected scans/gathers touch only the requested columns, and
// memory-mapped spilled segments keep backfills larger than RAM serviceable
// at a modest (not catastrophic) penalty over resident segments.
//
// Reproduces: full-width vs projected Scan and AsOfBatch over a wide
// (8-column, embedding-bearing) fixture pinned to each storage tier:
//   tier 0  row      mutable head only (seal_rows = 0; the legacy engine)
//   tier 1  sealed   everything sealed + compacted, segments resident
//   tier 2  spilled  everything sealed, segments memory-mapped from disk
//
// Medians are committed as bench/BENCH_offline_scan.json:
//   ./bench_offline_scan --benchmark_repetitions=5
//       --benchmark_report_aggregates_only=true --benchmark_format=json

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "storage/entity_key.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

constexpr size_t kRows = 160000;
constexpr size_t kEntities = 4000;
constexpr Timestamp kSpan = Days(16);  // ~16 daily partitions.
constexpr size_t kEmbeddingDim = 16;
constexpr size_t kRequests = 8192;

enum Tier : int64_t { kRowTier = 0, kSealedTier = 1, kSpilledTier = 2 };

SchemaPtr WideSchema() {
  return Schema::Create({{"entity", FeatureType::kInt64, false},
                         {"event_time", FeatureType::kTimestamp, false},
                         {"metric", FeatureType::kDouble, true},
                         {"score", FeatureType::kDouble, true},
                         {"label", FeatureType::kString, true},
                         {"origin", FeatureType::kString, true},
                         {"flag", FeatureType::kBool, true},
                         {"embedding", FeatureType::kEmbedding, true}})
      .value();
}

struct ScanFixture {
  SchemaPtr schema;
  SchemaPtr projected_schema;
  std::vector<int> projected_columns = {1, 2};  // event_time + metric.
  OfflineStore store;
  std::vector<OfflineTable*> tables;  // Indexed by Tier.
  std::vector<std::string> request_keys;
  std::vector<AsOfRequest> requests;
  std::vector<Row> rows;  // Kept for the lazily-built cold-read tables.
  std::string spill_dir;
  std::map<int64_t, OfflineTable*> cold_tables;  // (budget_pct << 1) | ra.

  ScanFixture() {
    schema = WideSchema();
    projected_schema =
        Schema::Create({schema->field(1), schema->field(2)}).value();
    Rng rng(7);
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      std::vector<float> vec(kEmbeddingDim);
      for (float& f : vec) f = static_cast<float>(rng.Gaussian());
      rows.push_back(Row::CreateUnsafe(
          schema,
          {Value::Int64(static_cast<int64_t>(rng.Uniform(kEntities))),
           Value::Time(static_cast<Timestamp>(rng.Uniform(kSpan))),
           Value::Double(rng.Gaussian()), Value::Double(rng.Gaussian()),
           Value::String("label_" + std::to_string(rng.Uniform(64))),
           Value::String("origin_" + std::to_string(rng.Uniform(8))),
           Value::Bool(rng.Bernoulli(0.5)),
           Value::Embedding(std::move(vec))}));
    }

    spill_dir =
        (std::filesystem::temp_directory_path() / "mlfs_bench_offline_scan")
            .string();
    for (int64_t tier : {kRowTier, kSealedTier, kSpilledTier}) {
      OfflineTableOptions options;
      options.name = "events_" + std::to_string(tier);
      options.schema = schema;
      options.entity_column = "entity";
      options.time_column = "event_time";
      options.seal_rows = (tier == kRowTier) ? 0 : 8192;
      if (tier == kSpilledTier) {
        // A budget far below the fixture size forces every sealed segment
        // out to the memory-mapped tier.
        options.memory_budget_bytes = 64 * 1024;
        options.spill_dir = spill_dir;
      }
      MLFS_CHECK_OK(store.CreateTable(options));
      OfflineTable* table = store.GetTable(options.name).value();
      MLFS_CHECK_OK(table->AppendBatch(rows));
      if (tier != kRowTier) {
        MLFS_CHECK_OK(table->SealHeads());
        MLFS_CHECK_OK(table->CompactPartitions());
        MLFS_CHECK_OK(table->EnforceMemoryBudget());
      }
      tables.push_back(table);
    }
    MLFS_CHECK(tables[kSpilledTier]->storage_stats().spilled_segments > 0);

    // One sorted request batch reused by every AsOfBatch case.
    std::vector<std::pair<std::string, Timestamp>> probes;
    probes.reserve(kRequests);
    for (size_t i = 0; i < kRequests; ++i) {
      probes.emplace_back(
          EntityKeyToString(
              Value::Int64(static_cast<int64_t>(rng.Uniform(kEntities))))
              .value(),
          static_cast<Timestamp>(rng.Uniform(kSpan)));
    }
    std::sort(probes.begin(), probes.end());
    request_keys.reserve(kRequests);
    requests.reserve(kRequests);
    for (auto& [key, ts] : probes) {
      request_keys.push_back(std::move(key));
      requests.push_back({request_keys.back(), ts});
    }
  }

  /// A table with `budget_pct`% of the sealed tier's resident bytes as
  /// its memory budget (the rest spills) and readahead on or off — the
  /// cold-read regime where async prefetch should pay. Built lazily, one
  /// per (budget, ra) combination.
  OfflineTable* ColdTable(int64_t budget_pct, int64_t ra) {
    const int64_t key = (budget_pct << 1) | ra;
    auto it = cold_tables.find(key);
    if (it != cold_tables.end()) return it->second;
    const size_t sealed_bytes =
        tables[kSealedTier]->storage_stats().resident_segment_bytes;
    OfflineTableOptions options;
    options.name = "events_cold_" + std::to_string(budget_pct) +
                   (ra != 0 ? "_ra" : "");
    options.schema = schema;
    options.entity_column = "entity";
    options.time_column = "event_time";
    options.seal_rows = 8192;
    options.memory_budget_bytes =
        sealed_bytes * static_cast<size_t>(budget_pct) / 100;
    options.spill_dir = spill_dir;
    options.readahead.enabled = ra != 0;
    options.readahead.max_in_flight = 4;
    MLFS_CHECK_OK(store.CreateTable(options));
    OfflineTable* table = store.GetTable(options.name).value();
    MLFS_CHECK_OK(table->AppendBatch(rows));
    MLFS_CHECK_OK(table->SealHeads());
    MLFS_CHECK_OK(table->CompactPartitions());
    MLFS_CHECK_OK(table->EnforceMemoryBudget());
    MLFS_CHECK(table->storage_stats().spilled_segments > 0);
    cold_tables[key] = table;
    return table;
  }
};

ScanFixture& Fixture() {
  static auto* fixture = new ScanFixture();
  return *fixture;
}

void BM_ScanFullWidth(benchmark::State& state) {
  auto& fixture = Fixture();
  const OfflineTable* table = fixture.tables[state.range(0)];
  for (auto _ : state) {
    std::vector<Row> rows = table->Scan();
    MLFS_CHECK(rows.size() == kRows);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanFullWidth)
    ->ArgNames({"tier"})
    ->Arg(kRowTier)
    ->Arg(kSealedTier)
    ->Arg(kSpilledTier)
    ->Unit(benchmark::kMillisecond);

void BM_ScanProjected(benchmark::State& state) {
  auto& fixture = Fixture();
  const OfflineTable* table = fixture.tables[state.range(0)];
  AsOfReadOptions options;
  options.columns = fixture.projected_columns;
  options.projected_schema = fixture.projected_schema;
  for (auto _ : state) {
    auto rows = table->ScanColumns(kMinTimestamp, kMaxTimestamp, options);
    MLFS_CHECK_OK(rows.status());
    MLFS_CHECK(rows->size() == kRows);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanProjected)
    ->ArgNames({"tier"})
    ->Arg(kRowTier)
    ->Arg(kSealedTier)
    ->Arg(kSpilledTier)
    ->Unit(benchmark::kMillisecond);

void BM_AsOfBatchFullWidth(benchmark::State& state) {
  auto& fixture = Fixture();
  const OfflineTable* table = fixture.tables[state.range(0)];
  std::vector<uint64_t> miss_bitmap;
  AsOfReadOptions options;
  options.miss_bitmap = &miss_bitmap;
  for (auto _ : state) {
    std::vector<Row> results(fixture.requests.size());
    MLFS_CHECK_OK(table->AsOfBatch(fixture.requests, results, options));
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * fixture.requests.size());
}
BENCHMARK(BM_AsOfBatchFullWidth)
    ->ArgNames({"tier"})
    ->Arg(kRowTier)
    ->Arg(kSealedTier)
    ->Arg(kSpilledTier)
    ->Unit(benchmark::kMillisecond);

void BM_AsOfBatchProjected(benchmark::State& state) {
  auto& fixture = Fixture();
  const OfflineTable* table = fixture.tables[state.range(0)];
  std::vector<uint64_t> miss_bitmap;
  AsOfReadOptions options;
  options.columns = fixture.projected_columns;
  options.projected_schema = fixture.projected_schema;
  options.miss_bitmap = &miss_bitmap;
  for (auto _ : state) {
    std::vector<Row> results(fixture.requests.size());
    MLFS_CHECK_OK(table->AsOfBatch(fixture.requests, results, options));
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * fixture.requests.size());
}
BENCHMARK(BM_AsOfBatchProjected)
    ->ArgNames({"tier"})
    ->Arg(kRowTier)
    ->Arg(kSealedTier)
    ->Arg(kSpilledTier)
    ->Unit(benchmark::kMillisecond);

// The cold-read regime: most of the table lives in spilled segments and a
// key-sorted batch walks several of them. With readahead on, the next
// spilled segment's pages are faulted in on a worker thread while the
// gather cursor drains the current one.
void BM_AsOfBatchColdRead(benchmark::State& state) {
  auto& fixture = Fixture();
  OfflineTable* table = fixture.ColdTable(state.range(0), state.range(1));
  std::vector<uint64_t> miss_bitmap;
  AsOfReadOptions options;
  options.miss_bitmap = &miss_bitmap;
  options.readahead_depth = static_cast<size_t>(state.range(2));
  for (auto _ : state) {
    std::vector<Row> results(fixture.requests.size());
    MLFS_CHECK_OK(table->AsOfBatch(fixture.requests, results, options));
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * fixture.requests.size());
  const ReadaheadStats ra = table->storage_stats().readahead;
  state.counters["ra_issued"] = static_cast<double>(ra.issued);
  state.counters["ra_hits"] = static_cast<double>(ra.hits);
  state.counters["ra_wasted"] = static_cast<double>(ra.wasted);
}
// The depth axis only matters with readahead on (ra:1): depth N keeps N
// spilled segments warming ahead of the gather cursor instead of one.
BENCHMARK(BM_AsOfBatchColdRead)
    ->ArgNames({"budget_pct", "ra", "depth"})
    ->Args({10, 0, 1})
    ->Args({10, 1, 1})
    ->Args({10, 1, 4})
    ->Args({25, 0, 1})
    ->Args({25, 1, 1})
    ->Args({25, 1, 4})
    ->Args({50, 0, 1})
    ->Args({50, 1, 1})
    ->Args({50, 1, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mlfs

BENCHMARK_MAIN();
