// E3 + E12(streaming) — Streaming aggregation and refresh cadences
// (paper §2.2.1, §2.1 challenge 2 "models can become stale").
//
// Reproduces: (a) windowed-aggregation throughput across window shapes,
// (b) a staleness table: average online feature age as a function of the
// orchestrator refresh cadence over 14 simulated days.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/feature_store.h"
#include "datagen/tabular.h"
#include "streaming/stream_pipeline.h"

namespace mlfs {
namespace {

SchemaPtr EventSchema() {
  static SchemaPtr schema =
      Schema::Create({{"entity", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false},
                      {"v", FeatureType::kDouble, true}})
          .value();
  return schema;
}

std::vector<Row> MakeEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  auto schema = EventSchema();
  std::vector<Row> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    events.push_back(Row::CreateUnsafe(
        schema, {Value::Int64(static_cast<int64_t>(rng.Uniform(500))),
                 Value::Time(static_cast<Timestamp>(i) * Seconds(1)),
                 Value::Double(rng.Gaussian())}));
  }
  return events;
}

void BM_WindowedAggregation(benchmark::State& state) {
  const bool sliding = state.range(0) != 0;
  auto events = MakeEvents(100000, 1);
  for (auto _ : state) {
    state.PauseTiming();
    WindowSpec window = sliding ? WindowSpec{Hours(1), Minutes(15)}
                                : WindowSpec{Hours(1), Hours(1)};
    auto aggregator =
        WindowedAggregator::Create(EventSchema(), "entity", "ts", window,
                                   {{"count", AggregateFn::kCount, ""},
                                    {"mean", AggregateFn::kMean, "v"},
                                    {"p90", AggregateFn::kP90, "v"}})
            .value();
    state.ResumeTiming();
    for (const Row& event : events) {
      MLFS_CHECK_OK(aggregator->ProcessEvent(event));
    }
    aggregator->AdvanceWatermarkTo(kMaxTimestamp);
    auto results = aggregator->PollResults();
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * events.size());
  state.SetLabel(sliding ? "sliding 1h/15m" : "tumbling 1h");
}
BENCHMARK(BM_WindowedAggregation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_StreamPipelineEndToEnd(benchmark::State& state) {
  auto events = MakeEvents(50000, 2);
  int run = 0;
  for (auto _ : state) {
    state.PauseTiming();
    OnlineStore online;
    OfflineStore offline;
    StreamPipelineOptions options;
    options.name = "view" + std::to_string(run++);
    options.event_schema = EventSchema();
    options.entity_column = "entity";
    options.time_column = "ts";
    options.window = {Hours(1), Hours(1)};
    options.aggs = {{"count", AggregateFn::kCount, ""},
                    {"sum", AggregateFn::kSum, "v"}};
    auto pipeline =
        StreamPipeline::Create(options, &online, &offline).value();
    state.ResumeTiming();
    for (const Row& event : events) {
      MLFS_CHECK_OK(pipeline->Ingest(event));
    }
    MLFS_CHECK_OK(pipeline->Flush(kMaxTimestamp / 2));
    benchmark::DoNotOptimize(pipeline->rows_emitted());
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_StreamPipelineEndToEnd)->Unit(benchmark::kMillisecond);

// E3 staleness table: with data arriving hourly, how stale is the online
// value under different refresh cadences?
void PrintStalenessTable() {
  std::printf("\n[E3] online feature staleness vs refresh cadence "
              "(14 simulated days, hourly source updates)\n");
  std::printf("%-12s %16s %16s %16s\n", "cadence", "refreshes",
              "mean age (h)", "max age (h)");
  for (Timestamp cadence : {Hours(1), Hours(6), Hours(24)}) {
    FeatureStore store;
    auto schema = EventSchema();
    OfflineTableOptions options;
    options.name = "src";
    options.schema = schema;
    options.entity_column = "entity";
    options.time_column = "ts";
    MLFS_CHECK_OK(store.CreateSourceTable(options));
    FeatureDefinition def;
    def.name = "f";
    def.entity = "e";
    def.source_table = "src";
    def.expression = "v";
    def.cadence = cadence;
    MLFS_CHECK_OK(store.PublishFeature(def).status());

    Rng rng(3);
    double total_age = 0, max_age = 0;
    size_t samples = 0;
    uint64_t refreshes = 0;
    for (Timestamp now = 0; now < Days(14); now += Hours(1)) {
      // Fresh hourly data for 50 entities.
      std::vector<Row> rows;
      for (int64_t e = 0; e < 50; ++e) {
        rows.push_back(Row::CreateUnsafe(
            schema, {Value::Int64(e), Value::Time(now),
                     Value::Double(rng.Gaussian())}));
      }
      MLFS_CHECK_OK(store.Ingest("src", rows));
      refreshes += static_cast<uint64_t>(
          store.RunMaterialization().value());
      // Probe the age of entity 0's served value.
      auto event_time =
          store.online().GetEventTime("f", Value::Int64(0), now);
      if (event_time.ok()) {
        double age_hours = static_cast<double>(now - *event_time) /
                           static_cast<double>(kMicrosPerHour);
        total_age += age_hours;
        max_age = std::max(max_age, age_hours);
        ++samples;
      }
    }
    std::printf("%-12s %16llu %16.2f %16.2f\n",
                (std::to_string(cadence / kMicrosPerHour) + "h").c_str(),
                static_cast<unsigned long long>(refreshes),
                total_age / static_cast<double>(samples), max_age);
  }
  std::printf("(staleness grows linearly with cadence: the orchestrator is "
              "what keeps features fresh)\n");
}

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mlfs::PrintStalenessTable();
  benchmark::Shutdown();
  return 0;
}
