// E5 — Structured data rescues the tail (paper §3.1.1, citing Orr et al.
// [22], Bootleg).
//
// Claim: self-supervised embeddings under-serve rare entities; adding
// structured signals (entity types, KG relations) to pretraining lifts
// tail quality dramatically ("boost performance over rare entities by 40
// F1 points") while barely moving the head.
//
// Reproduces: entity-typing F1 by popularity quintile for SGNS trained on
// (a) raw mention co-occurrence, (b) + type tokens, (c) + type and
// relation tokens.

#include <cstdio>
#include <set>

#include "datagen/kb.h"
#include "embedding/embedding_table.h"
#include "embedding/quality.h"
#include "ml/metrics.h"
#include "ml/sgns.h"
#include "ned/ned.h"

namespace mlfs {
namespace {

struct Variant {
  const char* name;
  bool types;
  bool relations;
};

EmbeddingTablePtr TrainVariant(const SyntheticKb& kb, const Variant& variant,
                               uint64_t seed) {
  CorpusConfig corpus_config;
  corpus_config.num_sentences = 15000;
  corpus_config.include_type_tokens = variant.types;
  corpus_config.include_relation_tokens = variant.relations;
  corpus_config.seed = seed;
  auto corpus = GenerateCorpus(kb, corpus_config).value();
  SgnsConfig sgns;
  sgns.dim = 32;
  sgns.epochs = 3;
  sgns.seed = seed;
  auto embeddings = TrainSgns(corpus, kb.vocab_size(), sgns).value();
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    const float* row = embeddings.row(e);
    vectors.insert(vectors.end(), row, row + sgns.dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = std::string("emb_") + variant.name;
  return EmbeddingTable::Create(metadata, keys, vectors, sgns.dim).value();
}

}  // namespace
}  // namespace mlfs

int main() {
  using namespace mlfs;

  SyntheticKbConfig kb_config;
  kb_config.num_entities = 1500;
  kb_config.num_types = 6;
  kb_config.num_edges = 6000;
  kb_config.zipf_exponent = 1.3;  // Harsh popularity skew: a long tail.
  SyntheticKb kb = BuildSyntheticKb(kb_config).value();

  // Mention counts from the *raw* corpus define popularity quintiles.
  CorpusConfig count_config;
  count_config.num_sentences = 15000;
  auto raw_corpus = GenerateCorpus(kb, count_config).value();
  auto mentions = CountMentions(kb, raw_corpus);
  auto quintiles = PopularityDeciles(mentions, 5);

  DownstreamTask task;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    task.keys.push_back(kb.entity_key(e));
    task.labels.push_back(kb.entity_type[e]);
  }

  std::printf("[E5] entity-typing macro-F1 by popularity quintile "
              "(%zu entities, %d types; q0=head, q4=rare tail)\n",
              kb.num_entities(), kb_config.num_types);
  std::printf("%-28s %8s %8s %8s %8s %8s %8s\n", "pretraining signal", "q0",
              "q1", "q2", "q3", "q4", "all");

  double tail_f1_raw = 0, tail_f1_structured = 0;
  for (const Variant& variant :
       {Variant{"co-occurrence only", false, false},
        Variant{"+ type tokens", true, false},
        Variant{"+ types + relations", true, true}}) {
    auto table = TrainVariant(kb, variant, 21);
    Dataset data = MaterializeTask(task, *table).value();
    SoftmaxClassifier model;
    MLFS_CHECK_OK(model.Fit(data).status());
    auto preds = model.PredictBatch(data).value();

    std::printf("%-28s", variant.name);
    double tail_f1 = 0;
    for (size_t q = 0; q < quintiles.size(); ++q) {
      std::vector<int> truth_q, preds_q;
      for (size_t e : quintiles[q]) {
        truth_q.push_back(task.labels[e]);
        preds_q.push_back(preds[e]);
      }
      double f1 = MacroF1(truth_q, preds_q).value();
      std::printf(" %8.3f", f1);
      if (q == quintiles.size() - 1) tail_f1 = f1;
    }
    std::printf(" %8.3f\n", MacroF1(task.labels, preds).value());
    if (!variant.types && !variant.relations) tail_f1_raw = tail_f1;
    if (variant.types && variant.relations) tail_f1_structured = tail_f1;
  }
  std::printf("\ntail (q4) macro-F1 lift from structured data: %+.1f points "
              "(paper's cited lift on rare entities: ~40 F1 points)\n",
              100.0 * (tail_f1_structured - tail_f1_raw));

  // --- The actual Bootleg task: named entity disambiguation -----------------
  // Mixed-type alias groups (the "Lincoln: car or president?" setting):
  // type-bearing embeddings can resolve what raw co-occurrence cannot,
  // especially for rare candidates whose co-occurrence statistics are thin.
  auto aliases = BuildAliasTable(kb, 3.0, 5, /*confusable=*/false).value();
  auto queries = GenerateMentionQueries(kb, aliases, 3000, 4, 9).value();
  std::printf("\nnamed entity disambiguation accuracy by quintile "
              "(mean ambiguity %.1f, baseline = random candidate)\n",
              aliases.mean_ambiguity());
  std::printf("%-28s %8s %8s %8s %8s %8s %8s %9s\n", "pretraining signal",
              "q0", "q1", "q2", "q3", "q4", "all", "baseline");
  for (const Variant& variant :
       {Variant{"co-occurrence only", false, false},
        Variant{"+ types + relations", true, true}}) {
    auto table = TrainVariant(kb, variant, 21);
    std::printf("%-28s", variant.name);
    for (size_t q = 0; q < quintiles.size(); ++q) {
      auto report = EvaluateDisambiguationOn(*table, kb, aliases, queries,
                                             quintiles[q]);
      if (report.ok()) {
        std::printf(" %8.3f", report->accuracy);
      } else {
        std::printf(" %8s", "n/a");
      }
    }
    auto all_report =
        EvaluateDisambiguation(*table, kb, aliases, queries).value();
    std::printf(" %8.3f %9.3f\n", all_report.accuracy,
                all_report.random_baseline);
  }
  return 0;
}
