// E2 — Point-in-time joins for correct training data (paper §2.2.2).
//
// Claim: feature stores provide time-based joins so training sets are
// leakage-free; without them (naive latest-value join) a large fraction of
// training cells silently contain future information.
//
// Reproduces: (a) training-set generation throughput of the batched
// sort-merge join engine vs the row-at-a-time reference across spine sizes
// (1k / 100k), source counts (1 / 4) and the thread knob (1 / 2 / 4), on a
// fixture of 4 sources x 260k rows (1.04M rows over ~32 daily partitions,
// 5k entities); (b) with --leakage, the leakage count of the naive join vs
// the PIT join across spine positions.
//
// Medians are committed as bench/BENCH_pit_join.json:
//   ./bench_pit_join --benchmark_repetitions=5
//       --benchmark_report_aggregates_only=true --benchmark_format=json

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "serving/point_in_time.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

constexpr size_t kEntities = 5000;
constexpr size_t kNumSources = 4;
constexpr size_t kRowsPerSource = 260000;  // 4 x 260k = 1.04M rows total.
constexpr size_t kSpineRows = 100000;
constexpr Timestamp kSpan = Days(32);  // >=30 daily partitions per source.

struct JoinFixture {
  OfflineStore store;
  std::vector<const OfflineTable*> tables;
  SchemaPtr feature_schema;
  SchemaPtr spine_schema;
  std::vector<Row> spine;

  JoinFixture() {
    feature_schema =
        Schema::Create({{"entity", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"x", FeatureType::kDouble, true}})
            .value();
    Rng rng(1);
    for (size_t s = 0; s < kNumSources; ++s) {
      OfflineTableOptions options;
      options.name = "features_" + std::to_string(s);
      options.schema = feature_schema;
      options.entity_column = "entity";
      options.time_column = "event_time";
      MLFS_CHECK_OK(store.CreateTable(options));
      OfflineTable* table = store.GetTable(options.name).value();
      std::vector<Row> rows;
      rows.reserve(kRowsPerSource);
      for (size_t i = 0; i < kRowsPerSource; ++i) {
        rows.push_back(Row::CreateUnsafe(
            feature_schema,
            {Value::Int64(static_cast<int64_t>(rng.Uniform(kEntities))),
             Value::Time(static_cast<Timestamp>(rng.Uniform(kSpan))),
             Value::Double(rng.Gaussian())}));
      }
      MLFS_CHECK_OK(table->AppendBatch(rows));
      tables.push_back(table);
    }
    spine_schema = Schema::Create({{"entity", FeatureType::kInt64, false},
                                   {"ts", FeatureType::kTimestamp, false}})
                       .value();
    spine.reserve(kSpineRows);
    for (size_t i = 0; i < kSpineRows; ++i) {
      spine.push_back(Row::CreateUnsafe(
          spine_schema,
          {Value::Int64(static_cast<int64_t>(rng.Uniform(kEntities))),
           Value::Time(static_cast<Timestamp>(rng.Uniform(kSpan)))}));
    }
  }

  std::vector<JoinSource> Sources(size_t n) const {
    std::vector<JoinSource> sources;
    for (size_t s = 0; s < n; ++s) {
      JoinSource source;
      source.table = tables[s];
      source.columns = {"x"};
      source.output_columns = {"x" + std::to_string(s)};
      sources.push_back(std::move(source));
    }
    return sources;
  }

  std::vector<Row> Spine(size_t n) const {
    return std::vector<Row>(spine.begin(), spine.begin() + n);
  }
};

JoinFixture& Fixture() {
  static auto* fixture = new JoinFixture();
  return *fixture;
}

// Row-at-a-time baseline: one locked OfflineTable::AsOf per spine row per
// source.
void BM_ReferenceJoin(benchmark::State& state) {
  auto& fixture = Fixture();
  const std::vector<Row> spine =
      fixture.Spine(static_cast<size_t>(state.range(0)));
  const std::vector<JoinSource> sources =
      fixture.Sources(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto result = PointInTimeJoinReference(spine, "entity", "ts", sources);
    MLFS_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * spine.size());
}
BENCHMARK(BM_ReferenceJoin)
    ->ArgNames({"spine", "sources"})
    ->ArgsProduct({{1000, 100000}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

// Batched sort-merge engine; threads drives JoinOptions::max_threads.
void BM_MergeJoin(benchmark::State& state) {
  auto& fixture = Fixture();
  const std::vector<Row> spine =
      fixture.Spine(static_cast<size_t>(state.range(0)));
  const std::vector<JoinSource> sources =
      fixture.Sources(static_cast<size_t>(state.range(1)));
  JoinOptions options;
  options.max_threads = static_cast<uint32_t>(state.range(2));
  for (auto _ : state) {
    auto result = PointInTimeJoin(spine, "entity", "ts", sources, options);
    MLFS_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * spine.size());
}
BENCHMARK(BM_MergeJoin)
    ->ArgNames({"spine", "sources", "threads"})
    ->ArgsProduct({{1000, 100000}, {1, 4}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_NaiveLatestJoin(benchmark::State& state) {
  auto& fixture = Fixture();
  const std::vector<Row> spine =
      fixture.Spine(static_cast<size_t>(state.range(0)));
  const std::vector<JoinSource> sources = fixture.Sources(kNumSources);
  for (auto _ : state) {
    auto result = NaiveLatestJoin(spine, "entity", "ts", sources);
    MLFS_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * spine.size());
}
BENCHMARK(BM_NaiveLatestJoin)
    ->ArgNames({"spine"})
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void PrintLeakageTable() {
  std::printf("\n[E2] training-data leakage: naive latest-join vs "
              "point-in-time join\n");
  std::printf("%-22s %12s %14s %14s\n", "spine position", "spine rows",
              "leaked cells", "leak rate");
  auto& fixture = Fixture();
  const std::vector<JoinSource> sources = fixture.Sources(1);
  // Partition the spine by how early in history the label falls: early
  // labels leak more because more of the feature history is "the future".
  for (auto [name, lo, hi] :
       {std::tuple<const char*, Timestamp, Timestamp>{"early (day 0-10)", 0,
                                                      Days(10)},
        {"mid (day 10-20)", Days(10), Days(20)},
        {"late (day 20-32)", Days(20), Days(32)}}) {
    std::vector<Row> part;
    for (const Row& row : fixture.spine) {
      Timestamp t = row.value(1).time_value();
      if (t >= lo && t < hi) part.push_back(row);
    }
    if (part.empty()) continue;
    auto correct = PointInTimeJoin(part, "entity", "ts", sources).value();
    auto naive = NaiveLatestJoin(part, "entity", "ts", sources).value();
    uint64_t leaked = CountDivergentCells(correct, naive).value();
    std::printf("%-22s %12zu %14llu %13.1f%%\n", name, part.size(),
                static_cast<unsigned long long>(leaked),
                100.0 * static_cast<double>(leaked) /
                    static_cast<double>(part.size()));
  }
  std::printf("(every leaked cell is a feature value from the future; the "
              "PIT join produces zero by construction)\n");
}

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  // The leakage table is opt-in (--leakage): it joins the full 100k spine
  // three times outside the timed sections, which would double the runtime
  // of every benchmark invocation (including CTest smoke runs).
  bool leakage = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--leakage") == 0) {
      leakage = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (leakage) mlfs::PrintLeakageTable();
  benchmark::Shutdown();
  return 0;
}
