// E2 — Point-in-time joins for correct training data (paper §2.2.2).
//
// Claim: feature stores provide time-based joins so training sets are
// leakage-free; without them (naive latest-value join) a large fraction of
// training cells silently contain future information.
//
// Reproduces: (a) leakage count of the naive join vs the PIT join across
// spine positions, (b) join throughput.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "serving/point_in_time.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

struct JoinFixture {
  OfflineStore store;
  OfflineTable* table = nullptr;
  SchemaPtr feature_schema;
  SchemaPtr spine_schema;
  std::vector<Row> spine;

  JoinFixture(size_t entities, size_t snapshots, size_t spine_rows,
              uint64_t seed) {
    feature_schema =
        Schema::Create({{"entity", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"x", FeatureType::kDouble, true}})
            .value();
    OfflineTableOptions options;
    options.name = "features";
    options.schema = feature_schema;
    options.entity_column = "entity";
    options.time_column = "event_time";
    MLFS_CHECK_OK(store.CreateTable(options));
    table = store.GetTable("features").value();
    Rng rng(seed);
    std::vector<Row> rows;
    for (size_t e = 0; e < entities; ++e) {
      for (size_t s = 0; s < snapshots; ++s) {
        rows.push_back(Row::CreateUnsafe(
            feature_schema,
            {Value::Int64(static_cast<int64_t>(e)),
             Value::Time(static_cast<Timestamp>(rng.Uniform(Days(30)))),
             Value::Double(rng.Gaussian())}));
      }
    }
    MLFS_CHECK_OK(table->AppendBatch(rows));
    spine_schema = Schema::Create({{"entity", FeatureType::kInt64, false},
                                   {"ts", FeatureType::kTimestamp, false}})
                       .value();
    for (size_t i = 0; i < spine_rows; ++i) {
      spine.push_back(Row::CreateUnsafe(
          spine_schema,
          {Value::Int64(static_cast<int64_t>(rng.Uniform(entities))),
           Value::Time(static_cast<Timestamp>(rng.Uniform(Days(30))))}));
    }
  }
};

JoinFixture& Fixture() {
  static auto* fixture = new JoinFixture(5000, 10, 20000, 1);
  return *fixture;
}

void BM_PointInTimeJoin(benchmark::State& state) {
  auto& fixture = Fixture();
  for (auto _ : state) {
    auto result = PointInTimeJoin(fixture.spine, "entity", "ts",
                                  {{fixture.table, {"x"}, "", 0, {}}});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * fixture.spine.size());
}
BENCHMARK(BM_PointInTimeJoin)->Unit(benchmark::kMillisecond);

void BM_NaiveLatestJoin(benchmark::State& state) {
  auto& fixture = Fixture();
  for (auto _ : state) {
    auto result = NaiveLatestJoin(fixture.spine, "entity", "ts",
                                  {{fixture.table, {"x"}, "", 0, {}}});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * fixture.spine.size());
}
BENCHMARK(BM_NaiveLatestJoin)->Unit(benchmark::kMillisecond);

void PrintLeakageTable() {
  std::printf("\n[E2] training-data leakage: naive latest-join vs "
              "point-in-time join\n");
  std::printf("%-22s %12s %14s %14s\n", "spine position", "spine rows",
              "leaked cells", "leak rate");
  auto& fixture = Fixture();
  // Partition the spine by how early in history the label falls: early
  // labels leak more because more of the feature history is "the future".
  for (auto [name, lo, hi] :
       {std::tuple<const char*, Timestamp, Timestamp>{"early (day 0-10)", 0,
                                                      Days(10)},
        {"mid (day 10-20)", Days(10), Days(20)},
        {"late (day 20-30)", Days(20), Days(30)}}) {
    std::vector<Row> part;
    for (const Row& row : fixture.spine) {
      Timestamp t = row.value(1).time_value();
      if (t >= lo && t < hi) part.push_back(row);
    }
    if (part.empty()) continue;
    auto correct = PointInTimeJoin(part, "entity", "ts",
                                   {{fixture.table, {"x"}, "", 0, {}}})
                       .value();
    auto naive = NaiveLatestJoin(part, "entity", "ts",
                                 {{fixture.table, {"x"}, "", 0, {}}})
                     .value();
    uint64_t leaked = CountDivergentCells(correct, naive).value();
    std::printf("%-22s %12zu %14llu %13.1f%%\n", name, part.size(),
                static_cast<unsigned long long>(leaked),
                100.0 * static_cast<double>(leaked) /
                    static_cast<double>(part.size()));
  }
  std::printf("(every leaked cell is a feature value from the future; the "
              "PIT join produces zero by construction)\n");
}

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  mlfs::PrintLeakageTable();
  benchmark::Shutdown();
  return 0;
}
