// E11 — Stale consumers of updated embeddings (paper §4).
//
// Claim: "if an embedding gets updated but a model that uses it does not,
// the dot product of the embedding with model parameters can lose meaning
// which leads to incorrect model predictions."
//
// Reproduces: accuracy of a model trained on embedding v1 when served
// vectors from (a) v1, (b) v2 = benign retrain of the same space (new
// seed), (c) v2 after retraining the model — plus the registry's skew
// detector flagging the stale consumer before the damage ships.

#include <cstdio>

#include "core/feature_store.h"
#include "datagen/kb.h"
#include "embedding/align.h"
#include "embedding/quality.h"
#include "ml/metrics.h"
#include "ml/sgns.h"

namespace mlfs {
namespace {

EmbeddingTablePtr TrainVersion(const SyntheticKb& kb,
                               const std::vector<std::vector<int>>& corpus,
                               uint64_t seed) {
  SgnsConfig config;
  config.dim = 32;
  config.epochs = 3;
  config.seed = seed;
  auto embeddings = TrainSgns(corpus, kb.vocab_size(), config).value();
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    const float* row = embeddings.row(e);
    vectors.insert(vectors.end(), row, row + config.dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "entity_emb";
  return EmbeddingTable::Create(metadata, keys, vectors, config.dim).value();
}

double EvalWith(const SoftmaxClassifier& model, const EmbeddingTable& table,
                const DownstreamTask& task) {
  Dataset data = MaterializeTask(task, table).value();
  auto preds = model.PredictBatch(data).value();
  return Accuracy(data.labels, preds).value();
}

}  // namespace
}  // namespace mlfs

int main() {
  using namespace mlfs;
  FeatureStore store;

  SyntheticKbConfig kb_config;
  kb_config.num_entities = 1000;
  kb_config.num_types = 5;
  SyntheticKb kb = BuildSyntheticKb(kb_config).value();
  CorpusConfig corpus_config;
  corpus_config.num_sentences = 10000;
  corpus_config.include_type_tokens = true;
  auto corpus = GenerateCorpus(kb, corpus_config).value();

  auto v1 = TrainVersion(kb, corpus, 1);
  auto v2 = TrainVersion(kb, corpus, 2);
  MLFS_CHECK_OK(store.RegisterEmbedding(v1).status());

  DownstreamTask task;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    task.keys.push_back(kb.entity_key(e));
    task.labels.push_back(kb.entity_type[e]);
  }

  // Train + register the consumer against v1.
  Dataset data_v1 = MaterializeTask(task, *v1).value();
  SoftmaxClassifier model;
  MLFS_CHECK_OK(model.Fit(data_v1).status());
  ModelRecord record;
  record.name = "typer";
  record.task = "entity-typing";
  record.embedding_refs = {"entity_emb@v1"};
  record.weights = model.weights();
  MLFS_CHECK_OK(store.RegisterModel(record).status());

  std::printf("[E11] serving mismatched embedding versions to a fixed "
              "model (task: entity typing)\n");
  std::printf("%-44s %10s\n", "configuration", "accuracy");
  std::printf("%-44s %10.3f\n", "model(v1) serving v1 (correct)",
              EvalWith(model, *v1, task));
  std::printf("%-44s %10.3f\n",
              "model(v1) serving v2 (silent skew!)",
              EvalWith(model, *v2, task));
  // Mitigation ablation (the paper's §4 open question "what is the optimal
  // way to propagate that patch downstream?"): Procrustes-align v2 into
  // v1's coordinates so the stale model can consume it until retrained.
  auto aligned = AlignToReference(*v2, *v1).value();
  std::printf("%-44s %10.3f\n",
              "model(v1) serving v2 ALIGNED to v1",
              EvalWith(model, *aligned.aligned, task));
  SoftmaxClassifier retrained;
  Dataset data_v2 = MaterializeTask(task, *v2).value();
  MLFS_CHECK_OK(retrained.Fit(data_v2).status());
  std::printf("%-44s %10.3f\n", "model retrained on v2, serving v2",
              EvalWith(retrained, *v2, task));
  std::printf("%-44s %10.3f\n", "chance (1/num_types)",
              1.0 / kb_config.num_types);
  std::printf("(alignment used %zu anchors, anchor cosine %.3f)\n",
              aligned.anchors_used, aligned.anchor_cosine);

  // The store-side guard: register v2 and detect the stale consumer
  // *before* rollout.
  MLFS_CHECK_OK(store.RegisterEmbedding(v2).status());
  auto skews = store.CheckEmbeddingVersionSkew().value();
  std::printf("\nskew detector: %zu stale consumer(s)\n", skews.size());
  for (const auto& skew : skews) {
    std::printf("  %s pins %s@v%d, latest v%d (lag %d)\n",
                skew.model.c_str(), skew.embedding.c_str(),
                skew.pinned_version, skew.latest_version, skew.lag());
  }
  for (const Alert& alert : store.alerts().All()) {
    std::printf("  alert: %s\n", alert.ToString().c_str());
  }
  std::printf("\n(shape to expect: the mismatched row collapses toward "
              "chance even though v2 is a *good* embedding — retraining "
              "restores accuracy; the registry catches the hazard)\n");
  return 0;
}
