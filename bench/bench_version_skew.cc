// Version-skew detection at registry scale, plus the E11 experiment.
//
//   1. Benchmarks (BM_*): graph-backed CheckEmbeddingSkew over a fixture
//      of 10k registered models pinning 1k embeddings (x2 versions), and
//      the raw LineageGraph::ImpactSet closure query it is built on. The
//      fixture self-verifies against ground truth (the exact set of
//      models left pinned to v1) before any timing runs.
//   2. The E11 accuracy experiment from the paper's §4 claim — "if an
//      embedding gets updated but a model that uses it does not, the dot
//      product ... can lose meaning" (run with --e11).
//
// Regenerate the committed results with:
//   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
//   cmake --build build-rel -j --target bench_version_skew
//   ./build-rel/bench/bench_version_skew --benchmark_repetitions=3
//       --benchmark_report_aggregates_only=true --benchmark_format=json
//       > bench/BENCH_version_skew.json

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "core/feature_store.h"
#include "datagen/kb.h"
#include "embedding/align.h"
#include "embedding/quality.h"
#include "lineage/lineage_graph.h"
#include "ml/metrics.h"
#include "ml/sgns.h"

namespace mlfs {
namespace {

// --- Registry-scale skew fixture (BM_*) -----------------------------------

constexpr size_t kEmbeddings = 1000;
constexpr size_t kModels = 10000;

EmbeddingTablePtr TinyTable(const std::string& name) {
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  return EmbeddingTable::Create(metadata, {"a", "b"}, {1, 0, 0, 1}, 2)
      .value();
}

/// 1k embeddings at v2, 10k models: every third model is still pinned to
/// v1 of its embedding (the ground-truth skewed set), the rest to v2.
struct SkewFixture {
  LineageGraph graph;
  EmbeddingStore embeddings{&graph};
  ModelRegistry models{&graph};
  std::set<std::string> expected_skewed;  // Model versioned names.

  SkewFixture() {
    for (size_t e = 0; e < kEmbeddings; ++e) {
      const std::string name = "emb_" + std::to_string(e);
      MLFS_CHECK_OK(embeddings.Register(TinyTable(name), Hours(1)).status());
      MLFS_CHECK_OK(embeddings.Register(TinyTable(name), Hours(2)).status());
    }
    for (size_t m = 0; m < kModels; ++m) {
      const std::string emb = "emb_" + std::to_string(m % kEmbeddings);
      const bool stale = m % 3 == 0;
      ModelRecord record;
      record.name = "model_" + std::to_string(m);
      record.task = "bench";
      record.embedding_refs = {emb + (stale ? "@v1" : "@v2")};
      MLFS_CHECK_OK(models.Register(std::move(record), Hours(3)).status());
      if (stale) expected_skewed.insert("model_" + std::to_string(m) + "@v1");
    }
    Verify();
  }

  /// The benchmark is worthless if the closure query is wrong: compare the
  /// flagged set against ground truth once, before timing.
  void Verify() const {
    VersionSkewReport report = models.CheckEmbeddingSkew(embeddings).value();
    MLFS_CHECK(report.dangling.empty());
    std::set<std::string> flagged;
    for (const VersionSkew& skew : report.skews) {
      MLFS_CHECK(skew.pinned_version == 1 && skew.latest_version == 2);
      flagged.insert(skew.model);
    }
    MLFS_CHECK(flagged == expected_skewed)
        << "skew detector flagged " << flagged.size() << " models, expected "
        << expected_skewed.size();
  }
};

SkewFixture& Fixture() {
  static auto* fixture = new SkewFixture();
  return *fixture;
}

void BM_CheckEmbeddingSkew(benchmark::State& state) {
  auto& fixture = Fixture();
  size_t found = 0;
  for (auto _ : state) {
    VersionSkewReport report = fixture.models.CheckEmbeddingSkew(fixture.embeddings)
                            .value();
    found = report.skews.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["models"] = static_cast<double>(kModels);
  state.counters["skewed"] = static_cast<double>(found);
  state.SetItemsProcessed(state.iterations() * kModels);
}
BENCHMARK(BM_CheckEmbeddingSkew)->Unit(benchmark::kMillisecond);

void BM_ImpactSet(benchmark::State& state) {
  auto& fixture = Fixture();
  size_t e = 0;
  for (auto _ : state) {
    auto impacted = fixture.graph.ImpactSet(
        EmbeddingArtifact("emb_" + std::to_string(e), 1));
    benchmark::DoNotOptimize(impacted);
    e = (e + 1) % kEmbeddings;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImpactSet);

void BM_ConsumersOfEmbedding(benchmark::State& state) {
  auto& fixture = Fixture();
  size_t e = 0;
  for (auto _ : state) {
    auto consumers = fixture.models.ConsumersOfEmbedding(
        "emb_" + std::to_string(e));
    benchmark::DoNotOptimize(consumers);
    e = (e + 1) % kEmbeddings;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsumersOfEmbedding);

// --- E11: stale consumers of updated embeddings (--e11) -------------------

EmbeddingTablePtr TrainVersion(const SyntheticKb& kb,
                               const std::vector<std::vector<int>>& corpus,
                               uint64_t seed) {
  SgnsConfig config;
  config.dim = 32;
  config.epochs = 3;
  config.seed = seed;
  auto embeddings = TrainSgns(corpus, kb.vocab_size(), config).value();
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    const float* row = embeddings.row(e);
    vectors.insert(vectors.end(), row, row + config.dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "entity_emb";
  return EmbeddingTable::Create(metadata, keys, vectors, config.dim).value();
}

double EvalWith(const SoftmaxClassifier& model, const EmbeddingTable& table,
                const DownstreamTask& task) {
  Dataset data = MaterializeTask(task, table).value();
  auto preds = model.PredictBatch(data).value();
  return Accuracy(data.labels, preds).value();
}

int RunE11() {
  FeatureStore store;

  SyntheticKbConfig kb_config;
  kb_config.num_entities = 1000;
  kb_config.num_types = 5;
  SyntheticKb kb = BuildSyntheticKb(kb_config).value();
  CorpusConfig corpus_config;
  corpus_config.num_sentences = 10000;
  corpus_config.include_type_tokens = true;
  auto corpus = GenerateCorpus(kb, corpus_config).value();

  auto v1 = TrainVersion(kb, corpus, 1);
  auto v2 = TrainVersion(kb, corpus, 2);
  MLFS_CHECK_OK(store.RegisterEmbedding(v1).status());

  DownstreamTask task;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    task.keys.push_back(kb.entity_key(e));
    task.labels.push_back(kb.entity_type[e]);
  }

  // Train + register the consumer against v1.
  Dataset data_v1 = MaterializeTask(task, *v1).value();
  SoftmaxClassifier model;
  MLFS_CHECK_OK(model.Fit(data_v1).status());
  ModelRecord record;
  record.name = "typer";
  record.task = "entity-typing";
  record.embedding_refs = {"entity_emb@v1"};
  record.weights = model.weights();
  MLFS_CHECK_OK(store.RegisterModel(record).status());

  std::printf("[E11] serving mismatched embedding versions to a fixed "
              "model (task: entity typing)\n");
  std::printf("%-44s %10s\n", "configuration", "accuracy");
  std::printf("%-44s %10.3f\n", "model(v1) serving v1 (correct)",
              EvalWith(model, *v1, task));
  std::printf("%-44s %10.3f\n",
              "model(v1) serving v2 (silent skew!)",
              EvalWith(model, *v2, task));
  // Mitigation ablation (the paper's §4 open question "what is the optimal
  // way to propagate that patch downstream?"): Procrustes-align v2 into
  // v1's coordinates so the stale model can consume it until retrained.
  auto aligned = AlignToReference(*v2, *v1).value();
  std::printf("%-44s %10.3f\n",
              "model(v1) serving v2 ALIGNED to v1",
              EvalWith(model, *aligned.aligned, task));
  SoftmaxClassifier retrained;
  Dataset data_v2 = MaterializeTask(task, *v2).value();
  MLFS_CHECK_OK(retrained.Fit(data_v2).status());
  std::printf("%-44s %10.3f\n", "model retrained on v2, serving v2",
              EvalWith(retrained, *v2, task));
  std::printf("%-44s %10.3f\n", "chance (1/num_types)",
              1.0 / kb_config.num_types);
  std::printf("(alignment used %zu anchors, anchor cosine %.3f)\n",
              aligned.anchors_used, aligned.anchor_cosine);

  // The store-side guard: register v2 and detect the stale consumer
  // *before* rollout.
  MLFS_CHECK_OK(store.RegisterEmbedding(v2).status());
  auto skews = store.CheckEmbeddingVersionSkew().value().skews;
  std::printf("\nskew detector: %zu stale consumer(s)\n", skews.size());
  for (const auto& skew : skews) {
    std::printf("  %s pins %s@v%d, latest v%d (lag %d)\n",
                skew.model.c_str(), skew.embedding.c_str(),
                skew.pinned_version, skew.latest_version, skew.lag());
  }
  for (const Alert& alert : store.alerts().All()) {
    std::printf("  alert: %s\n", alert.ToString().c_str());
  }
  std::printf("\n(shape to expect: the mismatched row collapses toward "
              "chance even though v2 is a *good* embedding — retraining "
              "restores accuracy; the registry catches the hazard)\n");
  return 0;
}

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  bool e11 = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--e11") == 0) {
      e11 = true;
      // Hide the flag from the benchmark library's argument parsing.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (e11) return mlfs::RunE11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
