// E9 — Embedding search at scale (paper §4: "performing these operations
// at industrial scale will be non-trivial").
//
// Two experiments:
//   1. Batched retrieval (BM_*): throughput of AnnIndex::BatchSearch at
//      batch sizes 1/16/256 over 64d and 300d vectors, brute-force vs
//      HNSW. The brute-force batched scan amortizes each row block across
//      a tile of queries, turning a memory-bound per-query scan into a
//      compute-bound pass; HNSW batches reuse the epoch-stamped visited
//      pool instead of allocating per query.
//   2. The classic recall@10 vs QPS tradeoff table for brute/IVF/HNSW
//      over 100k x 64d vectors (run with --tradeoff).
//
// Regenerate the committed results with:
//   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
//   cmake --build build-rel -j --target bench_ann
//   ./build-rel/bench/bench_ann --benchmark_repetitions=3
//       --benchmark_report_aggregates_only=true
//       --benchmark_out=bench/BENCH_ann.json
//       --benchmark_out_format=json   (one command line)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "embedding/ann.h"
#include "embedding/distance.h"

namespace mlfs {
namespace {

constexpr size_t kK = 10;
constexpr size_t kQueryPool = 256;  // Max batch size; pool of queries.

std::vector<float> ClusteredVectors(size_t n, size_t dim, Rng* rng) {
  // Mixture of 64 Gaussian clusters: realistic embedding geometry.
  std::vector<float> centers(64 * dim);
  for (auto& c : centers) c = static_cast<float>(rng->Gaussian(0, 2));
  std::vector<float> out(n * dim);
  for (size_t i = 0; i < n; ++i) {
    const float* center = centers.data() + (i % 64) * dim;
    for (size_t j = 0; j < dim; ++j) {
      out[i * dim + j] = center[j] + static_cast<float>(rng->Gaussian(0, 0.6));
    }
  }
  return out;
}

// --- Batched retrieval fixtures (one per dimension, built lazily). --------

struct BatchFixture {
  size_t n, dim;
  std::vector<float> data;
  std::vector<float> queries;  // kQueryPool contiguous queries.
  std::unique_ptr<AnnIndex> brute;
  std::unique_ptr<AnnIndex> hnsw;

  BatchFixture(size_t n, size_t dim) : n(n), dim(dim) {
    Rng rng(1 + dim);
    data = ClusteredVectors(n, dim, &rng);
    queries = ClusteredVectors(kQueryPool, dim, &rng);
    brute = MakeBruteForceIndex(Metric::kL2);
    MLFS_CHECK_OK(brute->Build(data.data(), n, dim));
    HnswOptions options;
    options.m = 16;
    options.ef_construction = 128;
    options.ef_search = 64;
    hnsw = MakeHnswIndex(options);
    MLFS_CHECK_OK(hnsw->Build(data.data(), n, dim));
  }
};

const BatchFixture& BatchFixtureFor(size_t dim) {
  // Sized so a full scan far exceeds L2: batch wins must come from block
  // reuse, not from the whole table fitting in cache.
  if (dim == 64) {
    static auto* fixture = new BatchFixture(50000, 64);
    return *fixture;
  }
  static auto* fixture = new BatchFixture(20000, 300);
  return *fixture;
}

void RunBatched(benchmark::State& state, const AnnIndex& index,
                const BatchFixture& fixture) {
  const size_t batch = static_cast<size_t>(state.range(1));
  size_t next = 0;  // kQueryPool % batch == 0 for all registered sizes.
  for (auto _ : state) {
    auto result =
        index.BatchSearch(fixture.queries.data() + next * fixture.dim,
                          batch, kK);
    benchmark::DoNotOptimize(result);
    next = (next + batch) % kQueryPool;
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["simd"] =
      benchmark::Counter(simd::LevelName() == "scalar" ? 0 : 1);
}

void BM_BruteBatchSearch(benchmark::State& state) {
  const auto& fixture = BatchFixtureFor(static_cast<size_t>(state.range(0)));
  RunBatched(state, *fixture.brute, fixture);
}
BENCHMARK(BM_BruteBatchSearch)
    ->ArgNames({"dim", "batch"})
    ->Args({64, 1})->Args({64, 16})->Args({64, 256})
    ->Args({300, 1})->Args({300, 16})->Args({300, 256});

void BM_HnswBatchSearch(benchmark::State& state) {
  const auto& fixture = BatchFixtureFor(static_cast<size_t>(state.range(0)));
  RunBatched(state, *fixture.hnsw, fixture);
}
BENCHMARK(BM_HnswBatchSearch)
    ->ArgNames({"dim", "batch"})
    ->Args({64, 1})->Args({64, 16})->Args({64, 256})
    ->Args({300, 1})->Args({300, 16})->Args({300, 256});

// --- Recall/QPS tradeoff table (--tradeoff) -------------------------------

constexpr size_t kN = 100000;
constexpr size_t kDim = 64;
constexpr int kQueries = 200;

struct AnnFixture {
  std::vector<float> data;
  std::vector<std::vector<float>> queries;
  std::vector<std::vector<Neighbor>> ground_truth;
  std::unique_ptr<AnnIndex> brute;

  AnnFixture() {
    Rng rng(1);
    data = ClusteredVectors(kN, kDim, &rng);
    brute = MakeBruteForceIndex();
    MLFS_CHECK_OK(brute->Build(data.data(), kN, kDim));
    Rng query_rng(2);
    auto pool = ClusteredVectors(kQueries, kDim, &query_rng);
    for (int q = 0; q < kQueries; ++q) {
      std::vector<float> query(pool.begin() + q * kDim,
                               pool.begin() + (q + 1) * kDim);
      ground_truth.push_back(brute->Search(query.data(), kK).value());
      queries.push_back(std::move(query));
    }
  }
};

AnnFixture& Fixture() {
  static auto* fixture = new AnnFixture();
  return *fixture;
}

void Evaluate(const char* name, AnnIndex* index, double build_seconds) {
  auto& fixture = Fixture();
  double recall = 0;
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kQueries; ++q) {
    auto result = index->Search(fixture.queries[q].data(), kK).value();
    recall += RecallAtK(result, fixture.ground_truth[q], kK);
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("%-34s %9.3f %12.0f %12.1f\n", name, recall / kQueries,
              kQueries / seconds, build_seconds);
}

void PrintTradeoffTable() {
  std::printf("\n[E9] ANN tradeoff over %zu x %zud vectors, recall@%zu "
              "(%d queries, simd=%s)\n", kN, kDim, kK, kQueries,
              std::string(simd::LevelName()).c_str());
  std::printf("%-34s %9s %12s %12s\n", "index", "recall", "QPS",
              "build (s)");
  auto& fixture = Fixture();
  Evaluate("brute_force (exact)", fixture.brute.get(), 0.0);

  for (size_t nprobe : {1, 4, 16}) {
    IvfOptions options;
    options.nlist = 256;
    options.nprobe = nprobe;
    auto index = MakeIvfIndex(options);
    auto start = std::chrono::steady_clock::now();
    MLFS_CHECK_OK(index->Build(fixture.data.data(), kN, kDim));
    double build = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    Evaluate(index->name().c_str(), index.get(), build);
  }
  for (size_t ef : {16, 64, 128}) {
    HnswOptions options;
    options.m = 16;
    options.ef_construction = 128;
    options.ef_search = ef;
    auto index = MakeHnswIndex(options);
    auto start = std::chrono::steady_clock::now();
    MLFS_CHECK_OK(index->Build(fixture.data.data(), kN, kDim));
    double build = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    Evaluate(index->name().c_str(), index.get(), build);
  }
  std::printf("(shape to expect: approximate indexes trade a few recall "
              "points for 10-100x QPS over exact scan)\n");
}

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  bool tradeoff = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tradeoff") == 0) {
      tradeoff = true;
      // Hide the flag from the benchmark library's argument parsing.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (tradeoff) {
    mlfs::PrintTradeoffTable();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
