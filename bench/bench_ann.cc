// E9 — Embedding search at scale (paper §4: "performing these operations
// at industrial scale will be non-trivial").
//
// Three experiments:
//   1. Batched retrieval (BM_*): throughput of AnnIndex::BatchSearch at
//      batch sizes 1/16/256 over 64d and 300d vectors, brute-force vs
//      HNSW. The brute-force batched scan amortizes each row block across
//      a tile of queries, turning a memory-bound per-query scan into a
//      compute-bound pass; HNSW batches reuse the epoch-stamped visited
//      pool instead of allocating per query.
//   2. Graceful degradation under a memory budget (BM_Tiered*): the same
//      50k x 64d table spilled to the packed 8-bit tier at hot fractions
//      100/50/25/10% (fixture up to 10x the hot budget). BatchSearch
//      streams cold blocks through the scan scratch and MultiGet churns
//      promotion, so throughput must degrade sub-linearly — the
//      dequantize-on-read cost per block, not a cliff.
//   3. The classic recall@10 vs QPS tradeoff table for brute/IVF/HNSW
//      over 100k x 64d vectors (run with --tradeoff).
//
// Regenerate the committed results with:
//   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
//   cmake --build build-rel -j --target bench_ann
//   ./build-rel/bench/bench_ann --benchmark_repetitions=3
//       --benchmark_report_aggregates_only=true
//       --benchmark_out=bench/BENCH_ann.json
//       --benchmark_out_format=json   (one command line)

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "common/rng.h"
#include "embedding/ann.h"
#include "embedding/distance.h"
#include "embedding/embedding_table.h"
#include "embedding/tier.h"

namespace mlfs {
namespace {

constexpr size_t kK = 10;
constexpr size_t kQueryPool = 256;  // Max batch size; pool of queries.

std::vector<float> ClusteredVectors(size_t n, size_t dim, Rng* rng) {
  // Mixture of 64 Gaussian clusters: realistic embedding geometry.
  std::vector<float> centers(64 * dim);
  for (auto& c : centers) c = static_cast<float>(rng->Gaussian(0, 2));
  std::vector<float> out(n * dim);
  for (size_t i = 0; i < n; ++i) {
    const float* center = centers.data() + (i % 64) * dim;
    for (size_t j = 0; j < dim; ++j) {
      out[i * dim + j] = center[j] + static_cast<float>(rng->Gaussian(0, 0.6));
    }
  }
  return out;
}

// --- Batched retrieval fixtures (one per dimension, built lazily). --------

struct BatchFixture {
  size_t n, dim;
  std::vector<float> data;
  std::vector<float> queries;  // kQueryPool contiguous queries.
  std::unique_ptr<AnnIndex> brute;
  std::unique_ptr<AnnIndex> hnsw;

  BatchFixture(size_t n, size_t dim) : n(n), dim(dim) {
    Rng rng(1 + dim);
    data = ClusteredVectors(n, dim, &rng);
    queries = ClusteredVectors(kQueryPool, dim, &rng);
    brute = MakeBruteForceIndex(Metric::kL2);
    MLFS_CHECK_OK(brute->Build(data.data(), n, dim));
    HnswOptions options;
    options.m = 16;
    options.ef_construction = 128;
    options.ef_search = 64;
    hnsw = MakeHnswIndex(options);
    MLFS_CHECK_OK(hnsw->Build(data.data(), n, dim));
  }
};

const BatchFixture& BatchFixtureFor(size_t dim) {
  // Sized so a full scan far exceeds L2: batch wins must come from block
  // reuse, not from the whole table fitting in cache.
  if (dim == 64) {
    static auto* fixture = new BatchFixture(50000, 64);
    return *fixture;
  }
  static auto* fixture = new BatchFixture(20000, 300);
  return *fixture;
}

void RunBatched(benchmark::State& state, const AnnIndex& index,
                const BatchFixture& fixture) {
  const size_t batch = static_cast<size_t>(state.range(1));
  size_t next = 0;  // kQueryPool % batch == 0 for all registered sizes.
  for (auto _ : state) {
    auto result =
        index.BatchSearch(fixture.queries.data() + next * fixture.dim,
                          batch, kK);
    benchmark::DoNotOptimize(result);
    next = (next + batch) % kQueryPool;
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["simd"] =
      benchmark::Counter(simd::LevelName() == "scalar" ? 0 : 1);
}

void BM_BruteBatchSearch(benchmark::State& state) {
  const auto& fixture = BatchFixtureFor(static_cast<size_t>(state.range(0)));
  RunBatched(state, *fixture.brute, fixture);
}
BENCHMARK(BM_BruteBatchSearch)
    ->ArgNames({"dim", "batch"})
    ->Args({64, 1})->Args({64, 16})->Args({64, 256})
    ->Args({300, 1})->Args({300, 16})->Args({300, 256});

void BM_HnswBatchSearch(benchmark::State& state) {
  const auto& fixture = BatchFixtureFor(static_cast<size_t>(state.range(0)));
  RunBatched(state, *fixture.hnsw, fixture);
}
BENCHMARK(BM_HnswBatchSearch)
    ->ArgNames({"dim", "batch"})
    ->Args({64, 1})->Args({64, 16})->Args({64, 256})
    ->Args({300, 1})->Args({300, 16})->Args({300, 256});

// --- Tiered degradation fixtures (one per hot fraction) -------------------

struct TieredFixture {
  EmbeddingTablePtr table;
  std::unique_ptr<AnnIndex> index;  // Tiered brute-force scan.
  std::vector<std::vector<std::string>> key_batches;  // Random MultiGets.

  TieredFixture(int hot_pct, bool readahead) {
    const auto& base = BatchFixtureFor(64);
    std::vector<std::string> keys;
    keys.reserve(base.n);
    for (size_t i = 0; i < base.n; ++i) keys.push_back(std::to_string(i));
    EmbeddingTableMetadata metadata;
    metadata.name = "bench_tier";
    auto resident =
        EmbeddingTable::Create(metadata, keys, base.data, base.dim).value();
    EmbeddingTierOptions options;
    options.memory_budget_bytes =
        base.n * base.dim * sizeof(float) * hot_pct / 100;
    options.bits = 8;
    options.block_rows = 256;
    options.dir = (std::filesystem::temp_directory_path() /
                   ("mlfs_bench_tier_" + std::to_string(::getpid())))
                      .string();
    std::filesystem::create_directories(options.dir);
    if (readahead) {
      options.readahead.enabled = true;
      options.readahead.threads = 1;
      options.readahead.max_in_flight = 8;
    }
    table = EmbeddingTable::CreateTiered(*resident, options).value();
    index = MakeTieredBruteForceIndex(table, Metric::kL2);
    MLFS_CHECK_OK(index->Build(nullptr, 0, 0));
    // 64 pre-drawn random batches of 256 keys: uniform across the whole
    // table, so a sub-100% hot fraction must promote and demote.
    Rng rng(97);
    key_batches.resize(64);
    for (auto& batch : key_batches) {
      batch.reserve(256);
      for (int i = 0; i < 256; ++i) {
        batch.push_back(std::to_string(rng.Uniform(base.n)));
      }
    }
  }
};

const TieredFixture& TieredFixtureFor(int hot_pct, bool readahead) {
  static auto* fixtures = new std::map<int, TieredFixture*>();
  const int key = hot_pct * 2 + (readahead ? 1 : 0);
  auto it = fixtures->find(key);
  if (it == fixtures->end()) {
    it = fixtures->emplace(key, new TieredFixture(hot_pct, readahead)).first;
  }
  return *it->second;
}

void ReportTierCounters(benchmark::State& state, const EmbeddingTier& tier) {
  EmbeddingTierStats stats = tier.stats();
  state.counters["hot_blocks"] = benchmark::Counter(
      static_cast<double>(stats.hot_blocks));
  const uint64_t reads = stats.hot_hits + stats.cold_misses;
  state.counters["hit_rate"] = benchmark::Counter(
      reads == 0 ? 1.0 : static_cast<double>(stats.hot_hits) / reads);
  state.counters["ra_hits"] =
      benchmark::Counter(static_cast<double>(stats.readahead.hits));
  state.counters["ra_wasted"] =
      benchmark::Counter(static_cast<double>(stats.readahead.wasted));
}

void BM_TieredBruteBatchSearch(benchmark::State& state) {
  const auto& fixture = TieredFixtureFor(static_cast<int>(state.range(0)),
                                         state.range(2) != 0);
  const auto& base = BatchFixtureFor(64);
  const size_t batch = static_cast<size_t>(state.range(1));
  size_t next = 0;
  for (auto _ : state) {
    auto result = fixture.index->BatchSearch(
        base.queries.data() + next * base.dim, batch, kK);
    benchmark::DoNotOptimize(result);
    next = (next + batch) % kQueryPool;
  }
  state.SetItemsProcessed(state.iterations() * batch);
  ReportTierCounters(state, *fixture.table->tier());
}
BENCHMARK(BM_TieredBruteBatchSearch)
    ->ArgNames({"hot_pct", "batch", "ra"})
    ->Args({100, 256, 0})->Args({50, 256, 0})->Args({25, 256, 0})
    ->Args({10, 256, 0})
    // Async cold-block readahead: the next cold block dequantizes on a
    // worker thread while the scan consumes the current one.
    ->Args({50, 256, 1})->Args({25, 256, 1})->Args({10, 256, 1});

void BM_TieredMultiGet(benchmark::State& state) {
  const auto& fixture = TieredFixtureFor(static_cast<int>(state.range(0)),
                                         state.range(1) != 0);
  size_t next = 0;
  for (auto _ : state) {
    auto rows = fixture.table->MultiGet(fixture.key_batches[next]);
    benchmark::DoNotOptimize(rows);
    next = (next + 1) % fixture.key_batches.size();
  }
  state.SetItemsProcessed(state.iterations() * 256);
  ReportTierCounters(state, *fixture.table->tier());
}
BENCHMARK(BM_TieredMultiGet)
    ->ArgNames({"hot_pct", "ra"})
    ->Args({100, 0})->Args({50, 0})->Args({25, 0})->Args({10, 0})
    ->Args({50, 1})->Args({25, 1})->Args({10, 1});

// --- Recall/QPS tradeoff table (--tradeoff) -------------------------------

constexpr size_t kN = 100000;
constexpr size_t kDim = 64;
constexpr int kQueries = 200;

struct AnnFixture {
  std::vector<float> data;
  std::vector<std::vector<float>> queries;
  std::vector<std::vector<Neighbor>> ground_truth;
  std::unique_ptr<AnnIndex> brute;

  AnnFixture() {
    Rng rng(1);
    data = ClusteredVectors(kN, kDim, &rng);
    brute = MakeBruteForceIndex();
    MLFS_CHECK_OK(brute->Build(data.data(), kN, kDim));
    Rng query_rng(2);
    auto pool = ClusteredVectors(kQueries, kDim, &query_rng);
    for (int q = 0; q < kQueries; ++q) {
      std::vector<float> query(pool.begin() + q * kDim,
                               pool.begin() + (q + 1) * kDim);
      ground_truth.push_back(brute->Search(query.data(), kK).value());
      queries.push_back(std::move(query));
    }
  }
};

AnnFixture& Fixture() {
  static auto* fixture = new AnnFixture();
  return *fixture;
}

void Evaluate(const char* name, AnnIndex* index, double build_seconds) {
  auto& fixture = Fixture();
  double recall = 0;
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kQueries; ++q) {
    auto result = index->Search(fixture.queries[q].data(), kK).value();
    recall += RecallAtK(result, fixture.ground_truth[q], kK);
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("%-34s %9.3f %12.0f %12.1f\n", name, recall / kQueries,
              kQueries / seconds, build_seconds);
}

void PrintTradeoffTable() {
  std::printf("\n[E9] ANN tradeoff over %zu x %zud vectors, recall@%zu "
              "(%d queries, simd=%s)\n", kN, kDim, kK, kQueries,
              std::string(simd::LevelName()).c_str());
  std::printf("%-34s %9s %12s %12s\n", "index", "recall", "QPS",
              "build (s)");
  auto& fixture = Fixture();
  Evaluate("brute_force (exact)", fixture.brute.get(), 0.0);

  for (size_t nprobe : {1, 4, 16}) {
    IvfOptions options;
    options.nlist = 256;
    options.nprobe = nprobe;
    auto index = MakeIvfIndex(options);
    auto start = std::chrono::steady_clock::now();
    MLFS_CHECK_OK(index->Build(fixture.data.data(), kN, kDim));
    double build = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    Evaluate(index->name().c_str(), index.get(), build);
  }
  for (size_t ef : {16, 64, 128}) {
    HnswOptions options;
    options.m = 16;
    options.ef_construction = 128;
    options.ef_search = ef;
    auto index = MakeHnswIndex(options);
    auto start = std::chrono::steady_clock::now();
    MLFS_CHECK_OK(index->Build(fixture.data.data(), kN, kDim));
    double build = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    Evaluate(index->name().c_str(), index.get(), build);
  }
  std::printf("(shape to expect: approximate indexes trade a few recall "
              "points for 10-100x QPS over exact scan)\n");
}

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  bool tradeoff = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tradeoff") == 0) {
      tradeoff = true;
      // Hide the flag from the benchmark library's argument parsing.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (tradeoff) {
    mlfs::PrintTradeoffTable();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext(
      "note",
      "recorded on a 1-vCPU container: absolute throughput is not "
      "comparable across machines; the shape to read is the relative "
      "degradation across hot_pct and the batch-size scaling");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
