// E9 — Embedding search at scale (paper §4: "performing these operations
// at industrial scale will be non-trivial").
//
// Reproduces: recall@10 vs throughput for brute-force, IVF-Flat, and HNSW
// over 100k x 64d vectors — the classic ANN tradeoff curve that makes
// approximate indexes mandatory for embedding-native serving.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "embedding/ann.h"

namespace mlfs {
namespace {

constexpr size_t kN = 100000;
constexpr size_t kDim = 64;
constexpr size_t kK = 10;
constexpr int kQueries = 200;

struct AnnFixture {
  std::vector<float> data;
  std::vector<std::vector<float>> queries;
  std::vector<std::vector<Neighbor>> ground_truth;
  std::unique_ptr<AnnIndex> brute;

  AnnFixture() {
    Rng rng(1);
    data.resize(kN * kDim);
    // Mixture of 64 Gaussian clusters: realistic embedding geometry.
    std::vector<float> centers(64 * kDim);
    for (auto& c : centers) c = static_cast<float>(rng.Gaussian(0, 2));
    for (size_t i = 0; i < kN; ++i) {
      const float* center = centers.data() + (i % 64) * kDim;
      for (size_t j = 0; j < kDim; ++j) {
        data[i * kDim + j] =
            center[j] + static_cast<float>(rng.Gaussian(0, 0.6));
      }
    }
    brute = MakeBruteForceIndex();
    MLFS_CHECK_OK(brute->Build(data.data(), kN, kDim));
    for (int q = 0; q < kQueries; ++q) {
      std::vector<float> query(kDim);
      const float* center = centers.data() + (q % 64) * kDim;
      for (size_t j = 0; j < kDim; ++j) {
        query[j] = center[j] + static_cast<float>(rng.Gaussian(0, 0.6));
      }
      ground_truth.push_back(brute->Search(query.data(), kK).value());
      queries.push_back(std::move(query));
    }
  }
};

AnnFixture& Fixture() {
  static auto* fixture = new AnnFixture();
  return *fixture;
}

void Evaluate(const char* name, AnnIndex* index, double build_seconds) {
  auto& fixture = Fixture();
  double recall = 0;
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < kQueries; ++q) {
    auto result = index->Search(fixture.queries[q].data(), kK).value();
    recall += RecallAtK(result, fixture.ground_truth[q], kK);
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("%-34s %9.3f %12.0f %12.1f\n", name, recall / kQueries,
              kQueries / seconds, build_seconds);
}

void PrintTradeoffTable() {
  std::printf("\n[E9] ANN tradeoff over %zu x %zud vectors, recall@%zu "
              "(%d queries)\n", kN, kDim, kK, kQueries);
  std::printf("%-34s %9s %12s %12s\n", "index", "recall", "QPS",
              "build (s)");
  auto& fixture = Fixture();
  Evaluate("brute_force (exact)", fixture.brute.get(), 0.0);

  for (size_t nprobe : {1, 4, 16}) {
    IvfOptions options;
    options.nlist = 256;
    options.nprobe = nprobe;
    auto index = MakeIvfIndex(options);
    auto start = std::chrono::steady_clock::now();
    MLFS_CHECK_OK(index->Build(fixture.data.data(), kN, kDim));
    double build = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    Evaluate(index->name().c_str(), index.get(), build);
  }
  for (size_t ef : {16, 64, 128}) {
    HnswOptions options;
    options.m = 16;
    options.ef_construction = 128;
    options.ef_search = ef;
    auto index = MakeHnswIndex(options);
    auto start = std::chrono::steady_clock::now();
    MLFS_CHECK_OK(index->Build(fixture.data.data(), kN, kDim));
    double build = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    Evaluate(index->name().c_str(), index.get(), build);
  }
  std::printf("(shape to expect: approximate indexes trade a few recall "
              "points for 10-100x QPS over exact scan)\n");
}

}  // namespace
}  // namespace mlfs

int main() {
  mlfs::PrintTradeoffTable();
  return 0;
}
