// E12 — Feature-definition evaluation (paper §2.2.1).
//
// Reproduces: cost of the transformation DSL across its three engines —
// the tree-walking interpreter, the compiled program's row interpreter,
// and the vectorized bytecode VM — at batch sizes 1/64/1024, plus the two
// pipelines the VM feeds: batch materialization over sealed columnar
// segments and predicate pushdown into columnar scans (ScanIf with a
// compiled predicate vs materialize-then-filter).

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "expr/simd_kernels.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

constexpr size_t kEmbeddingDim = 32;

SchemaPtr ExprSchema() {
  static SchemaPtr schema =
      Schema::Create({{"a", FeatureType::kInt64, true},
                      {"b", FeatureType::kInt64, true},
                      {"c", FeatureType::kDouble, true},
                      {"s", FeatureType::kString, true},
                      {"e1", FeatureType::kEmbedding, true},
                      {"e2", FeatureType::kEmbedding, true}})
          .value();
  return schema;
}

const char* Expression(int complexity) {
  switch (complexity) {
    case 0:
      return "a + b";
    case 1:
      return "a / (b + 1) + log(c + 10.0)";
    case 2:
      return "if(coalesce(a, 0) > 3 and c < 10.0, "
             "clamp(a / (b + 1), 0, 1), sqrt(abs(c)))";
    default:
      return "cosine(e1, e2) * norm(e1) + dot(e1, e2)";
  }
}

// One shared batch of rows; every engine reads the same representation.
const std::vector<Row>& ExprRows() {
  static const std::vector<Row>* rows = [] {
    Rng rng(1);
    auto* out = new std::vector<Row>();
    out->reserve(1024);
    for (size_t i = 0; i < 1024; ++i) {
      std::vector<float> v1(kEmbeddingDim), v2(kEmbeddingDim);
      for (size_t j = 0; j < kEmbeddingDim; ++j) {
        v1[j] = static_cast<float>(rng.Gaussian());
        v2[j] = static_cast<float>(rng.Gaussian());
      }
      out->push_back(Row::CreateUnsafe(
          ExprSchema(),
          {rng.Bernoulli(0.05) ? Value::Null()
                               : Value::Int64(rng.UniformInt(0, 12)),
           Value::Int64(rng.UniformInt(0, 8)), Value::Double(rng.Gaussian()),
           Value::String("row_" + std::to_string(i)),
           Value::Embedding(std::move(v1)), Value::Embedding(std::move(v2))}));
    }
    return out;
  }();
  return *rows;
}

void BM_TreeWalk(benchmark::State& state) {
  auto expr = ParseExpr(Expression(static_cast<int>(state.range(0)))).value();
  const std::vector<Row>& rows = ExprRows();
  const size_t batch = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    for (size_t r = 0; r < batch; ++r) {
      auto v = EvalExpr(*expr, rows[r]);
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(Expression(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TreeWalk)
    ->ArgNames({"expr", "batch"})
    ->ArgsProduct({{0, 1, 2, 3}, {1, 64, 1024}});

void BM_RowCompiled(benchmark::State& state) {
  auto compiled =
      CompiledExpr::Compile(Expression(static_cast<int>(state.range(0))),
                            ExprSchema())
          .value();
  const std::vector<Row>& rows = ExprRows();
  const size_t batch = static_cast<size_t>(state.range(1));
  ExprScratch scratch;
  for (auto _ : state) {
    for (size_t r = 0; r < batch; ++r) {
      auto v = compiled.Eval(rows[r], &scratch);
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(Expression(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_RowCompiled)
    ->ArgNames({"expr", "batch"})
    ->ArgsProduct({{0, 1, 2, 3}, {1, 64, 1024}});

void BM_BatchVM(benchmark::State& state) {
  auto compiled =
      CompiledExpr::Compile(Expression(static_cast<int>(state.range(0))),
                            ExprSchema())
          .value();
  const std::vector<Row>& rows = ExprRows();
  const size_t batch = static_cast<size_t>(state.range(1));
  RowBatchSource src(ExprSchema(), std::span<const Row>(rows.data(), batch));
  ExprScratch scratch;
  const ColumnVector* res = nullptr;
  for (auto _ : state) {
    Status s = compiled.EvalBatch(src, &scratch, &res);
    benchmark::DoNotOptimize(s);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(Expression(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BatchVM)
    ->ArgNames({"expr", "batch"})
    ->ArgsProduct({{0, 1, 2, 3}, {1, 64, 1024}});

void BM_ParseAndCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto compiled = CompiledExpr::Compile(Expression(2), ExprSchema());
    benchmark::DoNotOptimize(compiled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseAndCompile);

// ---------------------------------------------------------------------------
// End-to-end: materialization and scan pushdown over a sealed table.
// ---------------------------------------------------------------------------

constexpr size_t kStoreRows = 60000;
constexpr size_t kStoreEntities = 4000;
constexpr Timestamp kStoreSpan = 4 * kMicrosPerDay;

// clamp()/sqrt() mix, DOUBLE-typed — a typical derived scalar feature.
constexpr const char* kFeatureExpr =
    "clamp(metric / (score + 2), -1, 1) + sqrt(abs(metric))";
// Moderate selectivity; rejected rows should never materialize the
// embedding column on the pushdown path.
constexpr const char* kPredicateExpr = "metric > 0.5 and flag";

struct StoreFixture {
  OfflineStore store;
  OfflineTable* table = nullptr;

  StoreFixture() {
    auto schema =
        Schema::Create({{"entity", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"metric", FeatureType::kDouble, true},
                        {"score", FeatureType::kDouble, true},
                        {"flag", FeatureType::kBool, true},
                        {"embedding", FeatureType::kEmbedding, true}})
            .value();
    Rng rng(7);
    std::vector<Row> rows;
    rows.reserve(kStoreRows);
    for (size_t i = 0; i < kStoreRows; ++i) {
      std::vector<float> vec(kEmbeddingDim);
      for (float& f : vec) f = static_cast<float>(rng.Gaussian());
      rows.push_back(Row::CreateUnsafe(
          schema,
          {Value::Int64(static_cast<int64_t>(rng.Uniform(kStoreEntities))),
           Value::Time(static_cast<Timestamp>(rng.Uniform(kStoreSpan))),
           Value::Double(rng.Gaussian()), Value::Double(rng.Gaussian(3, 1)),
           Value::Bool(rng.Bernoulli(0.5)),
           Value::Embedding(std::move(vec))}));
    }
    OfflineTableOptions options;
    options.name = "events";
    options.schema = schema;
    options.entity_column = "entity";
    options.time_column = "event_time";
    options.seal_rows = 8192;
    MLFS_CHECK_OK(store.CreateTable(options));
    table = store.GetTable(options.name).value();
    MLFS_CHECK_OK(table->AppendBatch(rows));
    MLFS_CHECK_OK(table->SealHeads());
    MLFS_CHECK_OK(table->CompactPartitions());
  }
};

StoreFixture& Fixture() {
  static StoreFixture* fixture = new StoreFixture();
  return *fixture;
}

// Reference path: materialize every latest row, then evaluate row-wise.
void BM_MaterializeRowAtATime(benchmark::State& state) {
  StoreFixture& f = Fixture();
  auto compiled =
      CompiledExpr::Compile(kFeatureExpr, f.table->options().schema).value();
  ExprScratch scratch;
  for (auto _ : state) {
    std::vector<Row> latest = f.table->LatestPerEntityAsOf(kMaxTimestamp);
    size_t nulls = 0;
    for (const Row& row : latest) {
      auto v = compiled.Eval(row, &scratch);
      nulls += v.ok() && v->is_null();
      benchmark::DoNotOptimize(v);
    }
    benchmark::DoNotOptimize(nulls);
    state.counters["entities"] = static_cast<double>(latest.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStoreEntities));
}
BENCHMARK(BM_MaterializeRowAtATime);

// Batch path: sealed segments evaluate column-at-a-time; no full-width
// row materialization.
void BM_MaterializeBatch(benchmark::State& state) {
  StoreFixture& f = Fixture();
  auto compiled =
      CompiledExpr::Compile(kFeatureExpr, f.table->options().schema).value();
  for (auto _ : state) {
    auto cells = f.table->EvalLatestPerEntityAsOf(kMaxTimestamp, compiled);
    MLFS_CHECK_OK(cells.status());
    benchmark::DoNotOptimize(cells->size());
    state.counters["entities"] = static_cast<double>(cells->size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStoreEntities));
}
BENCHMARK(BM_MaterializeBatch);

// Reference path: every row (embedding included) materializes, then the
// predicate runs row-wise.
void BM_FilterMaterialized(benchmark::State& state) {
  StoreFixture& f = Fixture();
  auto pred =
      CompiledExpr::Compile(kPredicateExpr, f.table->options().schema).value();
  ExprScratch scratch;
  for (auto _ : state) {
    std::vector<Row> out =
        f.table->ScanIf(kMinTimestamp, kMaxTimestamp, [&](const Row& row) {
          auto v = pred.Eval(row, &scratch);
          return v.ok() && !v->is_null() && v->bool_value();
        });
    benchmark::DoNotOptimize(out.size());
    state.counters["rows_out"] = static_cast<double>(out.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStoreRows));
}
BENCHMARK(BM_FilterMaterialized);

// Pushdown path: the predicate evaluates over segment column buffers and
// only survivors materialize.
void BM_FilterPushdown(benchmark::State& state) {
  StoreFixture& f = Fixture();
  auto pred =
      CompiledExpr::Compile(kPredicateExpr, f.table->options().schema).value();
  for (auto _ : state) {
    auto out = f.table->ScanIf(kMinTimestamp, kMaxTimestamp, pred);
    MLFS_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->size());
    state.counters["rows_out"] = static_cast<double>(out->size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kStoreRows));
}
BENCHMARK(BM_FilterPushdown);

// --- Dictionary-aware string predicates --------------------------------
//
// A sealed table with a 100-value string column (zero-padded names, so
// lexicographic range predicates select clean percentages). The dict-coded
// pushdown evaluates each predicate once per dictionary code per segment;
// the per-row baseline compares strings row by row through the same
// compiled predicate. Selectivity axis: 1% ("== 'c42'"), 10% ("< 'c10'"),
// 50% ("< 'c50'").
constexpr size_t kDictRows = 200000;

struct DictFixture {
  OfflineStore store;
  OfflineTable* table = nullptr;
  SchemaPtr schema;

  DictFixture() {
    schema = Schema::Create({{"entity", FeatureType::kInt64, false},
                             {"event_time", FeatureType::kTimestamp, false},
                             {"city", FeatureType::kString, true},
                             {"metric", FeatureType::kDouble, true}})
                 .value();
    OfflineTableOptions options;
    options.name = "dict_events";
    options.schema = schema;
    options.entity_column = "entity";
    options.time_column = "event_time";
    options.seal_rows = 8192;
    MLFS_CHECK_OK(store.CreateTable(options));
    table = store.GetTable(options.name).value();
    Rng rng(13);
    std::vector<Row> rows;
    rows.reserve(kDictRows);
    char name[4];
    for (size_t i = 0; i < kDictRows; ++i) {
      std::snprintf(name, sizeof(name), "c%02d",
                    static_cast<int>(rng.Uniform(100)));
      rows.push_back(Row::CreateUnsafe(
          schema,
          {Value::Int64(static_cast<int64_t>(rng.Uniform(4000))),
           Value::Time(static_cast<Timestamp>(rng.Uniform(kStoreSpan))),
           rng.Bernoulli(0.03) ? Value::Null() : Value::String(name),
           Value::Double(rng.Gaussian())}));
    }
    MLFS_CHECK_OK(table->AppendBatch(rows));
    MLFS_CHECK_OK(table->SealHeads());
  }
};

DictFixture& GetDictFixture() {
  static DictFixture* fixture = new DictFixture();
  return *fixture;
}

const char* DictPredicate(int selectivity_pct) {
  switch (selectivity_pct) {
    case 1:
      return "city == 'c42'";
    case 10:
      return "city < 'c10'";
    default:
      return "city < 'c50'";
  }
}

void BM_DictPredicateScan(benchmark::State& state) {
  DictFixture& f = GetDictFixture();
  auto pred =
      CompiledExpr::Compile(DictPredicate(static_cast<int>(state.range(0))),
                            f.schema)
          .value();
  for (auto _ : state) {
    auto out = f.table->ScanIf(kMinTimestamp, kMaxTimestamp, pred);
    MLFS_CHECK_OK(out.status());
    benchmark::DoNotOptimize(out->size());
    state.counters["rows_out"] = static_cast<double>(out->size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDictRows));
}
BENCHMARK(BM_DictPredicateScan)
    ->ArgName("sel_pct")->Arg(1)->Arg(10)->Arg(50);

// Per-row baseline: the same predicate, same rows, compared string by
// string through the row-at-a-time evaluator.
void BM_PerRowStringScan(benchmark::State& state) {
  DictFixture& f = GetDictFixture();
  auto pred =
      CompiledExpr::Compile(DictPredicate(static_cast<int>(state.range(0))),
                            f.schema)
          .value();
  ExprScratch scratch;
  for (auto _ : state) {
    std::vector<Row> out =
        f.table->ScanIf(kMinTimestamp, kMaxTimestamp, [&](const Row& row) {
          auto v = pred.Eval(row, &scratch);
          return v.ok() && !v->is_null() && v->bool_value();
        });
    benchmark::DoNotOptimize(out.size());
    state.counters["rows_out"] = static_cast<double>(out.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDictRows));
}
BENCHMARK(BM_PerRowStringScan)
    ->ArgName("sel_pct")->Arg(1)->Arg(10)->Arg(50);

// --- SIMD kernels vs. scalar references --------------------------------
//
// The runtime-dispatched VM kernels against the scalar ground truth they
// must agree with bit-for-bit; arg 1 = dispatched, 0 = scalar.
constexpr size_t kKernelLanes = 8192;

struct KernelData {
  std::vector<double> x, y, out;
  std::vector<uint64_t> nulls;
  KernelData() : x(kKernelLanes), y(kKernelLanes), out(kKernelLanes),
                 nulls((kKernelLanes + 63) / 64, 0) {
    Rng rng(17);
    for (size_t i = 0; i < kKernelLanes; ++i) {
      x[i] = rng.Gaussian();
      y[i] = rng.Gaussian();
      if (rng.Bernoulli(0.05)) nulls[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
};

KernelData& Kernels() {
  static KernelData* data = new KernelData();
  return *data;
}

void BM_KernelMulF64(benchmark::State& state) {
  KernelData& d = Kernels();
  vmsimd::BinF64Fn fn = state.range(0) ? vmsimd::mul_f64
                                       : &vmsimd::MulF64Scalar;
  for (auto _ : state) {
    fn(d.x.data(), d.y.data(), d.out.data(), kKernelLanes);
    benchmark::DoNotOptimize(d.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kKernelLanes);
  state.SetLabel(std::string(vmsimd::LevelName()));
}
BENCHMARK(BM_KernelMulF64)->ArgName("simd")->Arg(0)->Arg(1);

void BM_KernelDivF64(benchmark::State& state) {
  KernelData& d = Kernels();
  vmsimd::DivF64Fn fn = state.range(0) ? vmsimd::div_f64
                                       : &vmsimd::DivF64Scalar;
  std::vector<uint64_t> nulls(d.nulls.size());
  for (auto _ : state) {
    std::copy(d.nulls.begin(), d.nulls.end(), nulls.begin());
    fn(d.x.data(), d.y.data(), d.out.data(), nulls.data(), kKernelLanes);
    benchmark::DoNotOptimize(d.out.data());
  }
  state.SetItemsProcessed(state.iterations() * kKernelLanes);
}
BENCHMARK(BM_KernelDivF64)->ArgName("simd")->Arg(0)->Arg(1);

void BM_KernelCmpF64(benchmark::State& state) {
  KernelData& d = Kernels();
  vmsimd::CmpF64Fn fn = state.range(0) ? vmsimd::cmp_f64
                                       : &vmsimd::CmpF64Scalar;
  std::vector<uint8_t> out(kKernelLanes);
  for (auto _ : state) {
    fn(vmsimd::CmpPred::kLt, d.x.data(), d.y.data(), out.data(),
       kKernelLanes);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kKernelLanes);
}
BENCHMARK(BM_KernelCmpF64)->ArgName("simd")->Arg(0)->Arg(1);

void BM_KernelSumF64Masked(benchmark::State& state) {
  KernelData& d = Kernels();
  vmsimd::SumF64MaskedFn fn = state.range(0) ? vmsimd::sum_f64_masked
                                             : &vmsimd::SumF64MaskedScalar;
  for (auto _ : state) {
    double s = fn(d.x.data(), d.nulls.data(), kKernelLanes);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kKernelLanes);
}
BENCHMARK(BM_KernelSumF64Masked)->ArgName("simd")->Arg(0)->Arg(1);

}  // namespace
}  // namespace mlfs

BENCHMARK_MAIN();
