// E12 — Feature-definition evaluation overhead (paper §2.2.1).
//
// Reproduces: per-row cost of the transformation DSL — interpreted AST vs
// schema-bound compiled form — across expression complexities, including
// embedding-valued expressions (embeddings as first-class citizens).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "expr/evaluator.h"
#include "expr/parser.h"

namespace mlfs {
namespace {

SchemaPtr BenchSchema() {
  static SchemaPtr schema =
      Schema::Create({{"a", FeatureType::kInt64, true},
                      {"b", FeatureType::kInt64, true},
                      {"c", FeatureType::kDouble, true},
                      {"s", FeatureType::kString, true},
                      {"e1", FeatureType::kEmbedding, true},
                      {"e2", FeatureType::kEmbedding, true}})
          .value();
  return schema;
}

Row BenchRow() {
  Rng rng(1);
  std::vector<float> v1(64), v2(64);
  for (size_t i = 0; i < 64; ++i) {
    v1[i] = static_cast<float>(rng.Gaussian());
    v2[i] = static_cast<float>(rng.Gaussian());
  }
  return Row::Create(BenchSchema(),
                     {Value::Int64(6), Value::Int64(4), Value::Double(2.5),
                      Value::String("hello"), Value::Embedding(v1),
                      Value::Embedding(v2)})
      .value();
}

const char* Expression(int complexity) {
  switch (complexity) {
    case 0:
      return "a + b";
    case 1:
      return "a / (b + 1) + log(c + 10.0)";
    case 2:
      return "if(coalesce(a, 0) > 3 and c < 10.0, "
             "clamp(a / (b + 1), 0, 1), sqrt(abs(c)))";
    default:
      return "cosine(e1, e2) * norm(e1) + dot(e1, e2)";
  }
}

void BM_Interpreted(benchmark::State& state) {
  auto expr = ParseExpr(Expression(static_cast<int>(state.range(0)))).value();
  Row row = BenchRow();
  for (auto _ : state) {
    auto v = EvalExpr(*expr, row);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(Expression(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Interpreted)->DenseRange(0, 3);

void BM_Compiled(benchmark::State& state) {
  auto compiled =
      CompiledExpr::Compile(Expression(static_cast<int>(state.range(0))),
                            BenchSchema())
          .value();
  Row row = BenchRow();
  for (auto _ : state) {
    auto v = compiled.Eval(row);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(Expression(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Compiled)->DenseRange(0, 3);

void BM_ParseAndCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto compiled = CompiledExpr::Compile(Expression(2), BenchSchema());
    benchmark::DoNotOptimize(compiled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseAndCompile);

}  // namespace
}  // namespace mlfs

BENCHMARK_MAIN();
