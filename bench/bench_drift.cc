// E4 + E8 — Drift detection power (paper §2.2.3, §3.1).
//
// E4 (tabular): detection rate and false-alarm rate of the PSI/KS drift
// detector across shift severities — "near real-time outlier and input
// drift detection".
//
// E8 (embeddings): tabular-style metrics (NaN counts, norm PSI) are blind
// to geometric embedding drift; embedding-native monitors (neighbor churn,
// self-cosine) catch it — "standard tabular metrics are inadequate for
// embeddings".

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "embedding/embedding_drift.h"
#include "quality/drift.h"

namespace mlfs {
namespace {

void RunTabularPower() {
  std::printf("[E4] tabular drift detection power "
              "(reference n=5000, current n=1000, 40 trials each)\n");
  std::printf("%-28s %10s %10s %10s %12s\n", "shift", "mean KS",
              "mean PSI", "mean JS", "detect rate");
  Rng rng(1);
  std::vector<double> reference;
  for (int i = 0; i < 5000; ++i) reference.push_back(rng.Gaussian(0, 1));
  auto detector = DriftDetector::Fit(reference).value();

  struct Case {
    const char* name;
    double mean;
    double stddev;
  };
  for (const Case& c :
       {Case{"none (false-alarm rate)", 0.0, 1.0},
        Case{"mean +0.1 sd", 0.1, 1.0}, Case{"mean +0.25 sd", 0.25, 1.0},
        Case{"mean +0.5 sd", 0.5, 1.0}, Case{"mean +1.0 sd", 1.0, 1.0},
        Case{"variance x2", 0.0, 1.414}, Case{"variance x4", 0.0, 2.0}}) {
    double ks = 0, psi = 0, js = 0;
    int detected = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      std::vector<double> current;
      for (int i = 0; i < 1000; ++i) {
        current.push_back(rng.Gaussian(c.mean, c.stddev));
      }
      auto report = detector.Check(current).value();
      ks += report.ks;
      psi += report.psi;
      js += report.js;
      detected += report.drifted;
    }
    std::printf("%-28s %10.4f %10.4f %10.4f %11.0f%%\n", c.name, ks / trials,
                psi / trials, js / trials,
                100.0 * detected / static_cast<double>(trials));
  }
  std::printf("\n");
}

EmbeddingTablePtr MakeTable(const std::string& name, size_t n, size_t dim,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  std::vector<float> data;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("e" + std::to_string(i));
    for (size_t j = 0; j < dim; ++j) {
      data.push_back(static_cast<float>(rng.Gaussian()));
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  return EmbeddingTable::Create(metadata, keys, data, dim).value();
}

void RunEmbeddingBlindness() {
  std::printf("[E8] embedding drift: tabular-style vs embedding-native "
              "monitors (n=400, d=16)\n");
  std::printf("%-26s %10s %10s | %10s %12s %10s\n", "injected change",
              "nan_cells", "norm_psi", "self_cos", "nbr_churn", "verdict");
  auto base = MakeTable("emb", 400, 16, 7);
  const size_t d = base->dim();

  auto report_line = [&](const char* name, const EmbeddingTablePtr& table) {
    auto report = CheckEmbeddingDrift(*base, *table).value();
    std::printf("%-26s %10llu %10.4f | %10.4f %12.4f %10s\n", name,
                static_cast<unsigned long long>(report.null_or_nan_cells),
                report.norm_psi, report.mean_self_cosine,
                report.mean_neighbor_churn,
                report.drifted ? "DRIFT" : "stable");
  };

  // 1. No change.
  report_line("identical", base);

  // 2. Orthogonal transform (dim reversal + sign flips): norms identical,
  //    every dot product against a fixed consumer changes.
  std::vector<float> rotated = base->raw();
  for (size_t i = 0; i < base->size(); ++i) {
    float* row = rotated.data() + i * d;
    std::reverse(row, row + d);
    for (size_t j = 0; j < d; j += 2) row[j] = -row[j];
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  report_line("orthogonal transform",
              base->WithVectors(metadata, rotated, d).value());

  // 3. Small additive noise (a benign retrain).
  Rng rng(8);
  std::vector<float> noisy = base->raw();
  for (auto& x : noisy) x += static_cast<float>(rng.Gaussian(0, 0.05));
  report_line("noise sd=0.05",
              base->WithVectors(metadata, noisy, d).value());

  // 4. Subpopulation corruption: 10% of vectors re-randomized.
  std::vector<float> corrupted = base->raw();
  for (size_t i = 0; i < base->size(); i += 10) {
    for (size_t j = 0; j < d; ++j) {
      corrupted[i * d + j] = static_cast<float>(rng.Gaussian());
    }
  }
  report_line("10% vectors rerandomized",
              base->WithVectors(metadata, corrupted, d).value());

  // 5. Broken pipeline: NaNs.
  std::vector<float> broken = base->raw();
  broken[37] = std::nanf("");
  report_line("one NaN cell",
              base->WithVectors(metadata, broken, d).value());

  std::printf("(the orthogonal transform row is the paper's point: "
              "nan_cells=0 and norm_psi~0 — a tabular FS sees nothing — "
              "while self-cosine collapses)\n");
}

}  // namespace
}  // namespace mlfs

int main() {
  mlfs::RunTabularPower();
  mlfs::RunEmbeddingBlindness();
  return 0;
}
