// E7 — Eigenspace overlap predicts downstream performance of compressed
// embeddings (paper §3.1.2, citing May et al. [18]).
//
// Claim: when choosing among compressed embedding variants under a memory
// budget, the eigenspace overlap score (EOS) with the uncompressed table
// predicts downstream accuracy without training a model per variant.
//
// Reproduces: EOS, reconstruction MSE, and downstream accuracy across
// quantization levels (1..16 bits), plus the rank correlation between EOS
// and accuracy.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "datagen/kb.h"
#include "embedding/compress.h"
#include "embedding/embedding_table.h"
#include "embedding/quality.h"
#include "ml/metrics.h"
#include "ml/sgns.h"

namespace {

double SpearmanRank(std::vector<double> a, std::vector<double> b) {
  auto ranks = [](std::vector<double> v) {
    std::vector<size_t> order(v.size());
    for (size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < order.size(); ++i) r[order[i]] = i;
    return r;
  };
  auto ra = ranks(std::move(a));
  auto rb = ranks(std::move(b));
  double d2 = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  double n = static_cast<double>(ra.size());
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main() {
  using namespace mlfs;

  // Hard-ish task (no type tokens) so accuracy varies across compression
  // levels rather than saturating.
  SyntheticKbConfig kb_config;
  kb_config.num_entities = 1200;
  kb_config.num_types = 8;
  kb_config.homophily = 0.75;
  SyntheticKb kb = BuildSyntheticKb(kb_config).value();
  CorpusConfig corpus_config;
  corpus_config.num_sentences = 6000;
  auto corpus = GenerateCorpus(kb, corpus_config).value();

  SgnsConfig sgns;
  sgns.dim = 32;
  sgns.epochs = 3;
  auto embeddings = TrainSgns(corpus, kb.vocab_size(), sgns).value();
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    const float* row = embeddings.row(e);
    vectors.insert(vectors.end(), row, row + sgns.dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "full";
  auto full =
      EmbeddingTable::Create(metadata, keys, vectors, sgns.dim).value();

  DownstreamTask task;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    task.keys.push_back(kb.entity_key(e));
    task.labels.push_back(kb.entity_type[e]);
  }

  auto accuracy_of = [&](const EmbeddingTable& table) {
    Dataset data = MaterializeTask(task, table).value();
    auto [train, test] = TrainTestSplit(data, 0.3, 5);
    SoftmaxClassifier model;
    MLFS_CHECK_OK(model.Fit(train).status());
    auto preds = model.PredictBatch(test).value();
    return Accuracy(test.labels, preds).value();
  };
  const double full_accuracy = accuracy_of(*full);

  std::printf("[E7] eigenspace overlap vs downstream accuracy under "
              "compression (d=%zu, full-precision acc=%.3f)\n", sgns.dim,
              full_accuracy);
  std::printf("%6s %10s %12s %14s %12s\n", "bits", "ratio", "EOS",
              "recon MSE", "accuracy");
  std::vector<double> eos_series, accuracy_series;
  for (int bits : {1, 2, 3, 4, 6, 8, 16}) {
    auto compressed = QuantizeUniform(*full, bits).value();
    double eos = EigenspaceOverlapScore(*full, *compressed).value();
    double mse = ReconstructionMse(*full, *compressed).value();
    double accuracy = accuracy_of(*compressed);
    std::printf("%6d %9.1fx %12.4f %14.3e %12.3f\n", bits,
                CompressionRatio(bits, full->size(), full->dim()), eos, mse,
                accuracy);
    eos_series.push_back(eos);
    accuracy_series.push_back(accuracy);
  }
  std::printf("\nSpearman rank correlation(EOS, accuracy) = %.3f "
              "(paper-cited shape: strongly positive — EOS ranks variants "
              "without downstream training)\n",
              SpearmanRank(eos_series, accuracy_series));
  return 0;
}
