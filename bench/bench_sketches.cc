// E4b — Production-scale feature statistics and near-real-time monitoring
// (paper §2.2.2–2.2.3 machinery at volume).
//
// Reproduces: (a) HyperLogLog cardinality error and memory vs an exact
// hash set, (b) Count-Min heavy-hitter accuracy under Zipfian skew,
// (c) detection delay of the self-calibrating streaming drift monitor.

#include <cstdio>
#include <unordered_set>

#include "common/rng.h"
#include "quality/sketch.h"
#include "quality/streaming_monitor.h"

namespace mlfs {
namespace {

void RunHllTable() {
  std::printf("[E4b] HyperLogLog vs exact distinct counting "
              "(precision 12 -> 4 KiB fixed)\n");
  std::printf("%12s %14s %14s %12s %14s\n", "true count", "HLL estimate",
              "rel. error", "HLL bytes", "exact-set MB");
  for (size_t truth : {1000, 10000, 100000, 1000000}) {
    auto hll = HyperLogLog::Create(12).value();
    std::unordered_set<uint64_t> exact;
    for (size_t i = 0; i < truth; ++i) {
      Value v = Value::Int64(static_cast<int64_t>(i));
      hll.Add(v);
      exact.insert(HashValue(v));
    }
    double estimate = hll.Estimate();
    std::printf("%12zu %14.0f %13.2f%% %12zu %14.1f\n", truth, estimate,
                100.0 * std::abs(estimate - static_cast<double>(truth)) /
                    static_cast<double>(truth),
                hll.num_registers(),
                static_cast<double>(exact.size() * 16) / 1048576.0);
  }
  std::printf("\n");
}

void RunCountMinTable() {
  std::printf("[E4b] Count-Min heavy hitters over a Zipf(1.2) categorical "
              "feature (1M events, 100k categories, 32 KiB sketch)\n");
  auto sketch = CountMinSketch::Create(4096, 4).value();
  Rng rng(1);
  ZipfDistribution zipf(100000, 1.2);
  std::vector<uint64_t> truth(100000, 0);
  const size_t n = 1000000;
  for (size_t i = 0; i < n; ++i) {
    size_t key = zipf.Sample(&rng);
    sketch.Add(Value::Int64(static_cast<int64_t>(key)));
    ++truth[key];
  }
  std::printf("%8s %12s %12s %12s\n", "rank", "true count", "estimate",
              "overcount");
  for (size_t rank : {0, 1, 2, 9, 99, 999}) {
    uint64_t estimate =
        sketch.Estimate(Value::Int64(static_cast<int64_t>(rank)));
    std::printf("%8zu %12llu %12llu %11.2f%%\n", rank,
                static_cast<unsigned long long>(truth[rank]),
                static_cast<unsigned long long>(estimate),
                truth[rank]
                    ? 100.0 * static_cast<double>(estimate - truth[rank]) /
                          static_cast<double>(truth[rank])
                    : 0.0);
  }
  std::printf("\n");
}

void RunStreamingMonitorTable() {
  std::printf("[E4b] streaming drift monitor: detection delay vs shift size "
              "(reference 2000, window 500, check every 250)\n");
  std::printf("%-14s %18s %14s\n", "shift", "detected", "delay (obs)");
  for (double shift : {0.25, 0.5, 1.0, 2.0}) {
    StreamingMonitorOptions options;
    auto monitor = StreamingDriftMonitor::Create(options).value();
    Rng rng(static_cast<uint64_t>(shift * 100));
    const int shift_at = 5000;
    int detected_at = -1;
    for (int i = 0; i < 12000 && detected_at < 0; ++i) {
      double mean = (i >= shift_at) ? shift : 0.0;
      auto finding =
          monitor.Observe(rng.Gaussian(mean, 1.0), Seconds(i)).value();
      if (finding.has_value() && i >= shift_at) detected_at = i;
    }
    if (detected_at >= 0) {
      std::printf("%-13.2fsd %18s %14d\n", shift, "yes",
                  detected_at - shift_at);
    } else {
      std::printf("%-13.2fsd %18s %14s\n", shift, "no (12k obs)", "-");
    }
  }
  std::printf("(delay shrinks as the shift grows; sub-window delays mean "
              "the alert fires before one full window of bad data ships)\n");
}

}  // namespace
}  // namespace mlfs

int main() {
  mlfs::RunHllTable();
  mlfs::RunCountMinTable();
  mlfs::RunStreamingMonitorTable();
  return 0;
}
