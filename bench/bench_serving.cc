// E1 — Dual-datastore serving (paper §2.2.2).
//
// Claim: online feature serving needs an in-memory latest-value store; the
// offline (historical, partitioned) store is orders of magnitude slower to
// answer "features for entity X now".
//
// Reproduces: throughput + latency percentiles of (a) online-store gets,
// (b) offline as-of reads, (c) the assembled FeatureServer path, under a
// Zipf key distribution.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/feature_store.h"
#include "datagen/tabular.h"

namespace mlfs {
namespace {

constexpr size_t kEntities = 100000;
constexpr int kSnapshotsPerEntity = 4;

struct ServingFixture {
  FeatureStore store;
  std::vector<Value> keys;
  ZipfDistribution zipf{kEntities, 1.1};

  ServingFixture() {
    auto schema =
        Schema::Create({{"entity", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"a", FeatureType::kDouble, true},
                        {"b", FeatureType::kDouble, true}})
            .value();
    OfflineTableOptions options;
    options.name = "src";
    options.schema = schema;
    options.entity_column = "entity";
    options.time_column = "event_time";
    MLFS_CHECK_OK(store.CreateSourceTable(options));
    Rng rng(1);
    std::vector<Row> rows;
    rows.reserve(kEntities * kSnapshotsPerEntity);
    for (size_t e = 0; e < kEntities; ++e) {
      for (int s = 0; s < kSnapshotsPerEntity; ++s) {
        rows.push_back(Row::CreateUnsafe(
            schema, {Value::Int64(static_cast<int64_t>(e)),
                     Value::Time(Hours(1 + 6 * s)),
                     Value::Double(rng.Gaussian()),
                     Value::Double(rng.Gaussian())}));
      }
    }
    MLFS_CHECK_OK(store.Ingest("src", rows));
    FeatureDefinition def;
    def.name = "f_ab";
    def.entity = "e";
    def.source_table = "src";
    def.expression = "a + b";
    def.cadence = Hours(1);
    MLFS_CHECK_OK(store.PublishFeature(def).status());
    MLFS_CHECK_OK(store.RunMaterialization().status());
    keys.reserve(kEntities);
    for (size_t e = 0; e < kEntities; ++e) {
      keys.push_back(Value::Int64(static_cast<int64_t>(e)));
    }
  }
};

ServingFixture& Fixture() {
  static auto* fixture = new ServingFixture();
  return *fixture;
}

void BM_OnlineGet(benchmark::State& state) {
  auto& fixture = Fixture();
  Rng rng(2);
  Timestamp now = fixture.store.clock().now();
  for (auto _ : state) {
    const Value& key = fixture.keys[fixture.zipf.Sample(&rng)];
    auto row = fixture.store.online().Get("f_ab", key, now);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineGet);

void BM_OfflineAsOf(benchmark::State& state) {
  auto& fixture = Fixture();
  Rng rng(3);
  auto table = fixture.store.offline().GetTable("src").value();
  Timestamp now = fixture.store.clock().now();
  for (auto _ : state) {
    const Value& key = fixture.keys[fixture.zipf.Sample(&rng)];
    auto row = table->AsOf(key, now);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OfflineAsOf);

void BM_OfflineLatestPerEntityScan(benchmark::State& state) {
  // The "no online store" strawman: answer a single lookup by scanning the
  // latest snapshot of everything (what a naive warehouse query does).
  auto& fixture = Fixture();
  auto table = fixture.store.offline().GetTable("src").value();
  Timestamp now = fixture.store.clock().now();
  for (auto _ : state) {
    auto rows = table->LatestPerEntityAsOf(now);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OfflineLatestPerEntityScan)->Iterations(3);

void BM_FeatureServerGet(benchmark::State& state) {
  auto& fixture = Fixture();
  Rng rng(4);
  for (auto _ : state) {
    const Value& key = fixture.keys[fixture.zipf.Sample(&rng)];
    auto fv = fixture.store.ServeFeatures(key, {"f_ab"});
    benchmark::DoNotOptimize(fv);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureServerGet);

void BM_FeatureServerBatch100(benchmark::State& state) {
  auto& fixture = Fixture();
  Rng rng(5);
  Timestamp now = fixture.store.clock().now();
  for (auto _ : state) {
    std::vector<Value> batch;
    batch.reserve(100);
    for (int i = 0; i < 100; ++i) {
      batch.push_back(fixture.keys[fixture.zipf.Sample(&rng)]);
    }
    auto result =
        fixture.store.server().GetFeaturesBatch(batch, {"f_ab"}, now);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FeatureServerBatch100);

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // E1 summary table: latency percentiles of the assembled serving path.
  auto& fixture = mlfs::Fixture();
  auto histogram = fixture.store.server().latency_histogram();
  std::printf("\n[E1] online serving latency (us): %s\n",
              histogram.Summary().c_str());
  std::printf("[E1] online store: %s\n",
              [&] {
                auto stats = fixture.store.online().stats();
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "cells=%zu bytes=%.1fMB hit_rate=%.3f",
                              stats.num_cells,
                              stats.approx_bytes / 1048576.0,
                              stats.gets ? double(stats.hits) / stats.gets
                                         : 0.0);
                return std::string(buf);
              }().c_str());
  benchmark::Shutdown();
  return 0;
}
