// E1 — Dual-datastore serving (paper §2.2.2).
//
// Claim: online feature serving needs an in-memory latest-value store; the
// offline (historical, partitioned) store is orders of magnitude slower to
// answer "features for entity X now".
//
// Reproduces: throughput + latency percentiles of (a) online-store gets,
// (b) offline as-of reads, (c) the assembled FeatureServer path, under a
// Zipf key distribution — plus the batched/multi-threaded variants that
// certify the shard-grouped MultiGet hot path (shared shard locks taken
// once per batch, no per-key composed-key allocation, striped server
// metrics). Regenerate the committed results with:
//   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
//   cmake --build build-rel -j --target bench_serving
//   ./build-rel/bench/bench_serving --benchmark_out=bench/BENCH_serving.json
//       --benchmark_out_format=json   (one command line)

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.h"
#include "core/feature_store.h"
#include "datagen/tabular.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "registry/feature_def.h"
#include "serving/feature_server.h"
#include "storage/online_store.h"

namespace mlfs {
namespace {

constexpr size_t kEntities = 100000;
constexpr int kSnapshotsPerEntity = 4;

struct ServingFixture {
  FeatureStore store;
  std::vector<Value> keys;
  ZipfDistribution zipf{kEntities, 1.1};

  ServingFixture() {
    auto schema =
        Schema::Create({{"entity", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"a", FeatureType::kDouble, true},
                        {"b", FeatureType::kDouble, true}})
            .value();
    OfflineTableOptions options;
    options.name = "src";
    options.schema = schema;
    options.entity_column = "entity";
    options.time_column = "event_time";
    MLFS_CHECK_OK(store.CreateSourceTable(options));
    Rng rng(1);
    std::vector<Row> rows;
    rows.reserve(kEntities * kSnapshotsPerEntity);
    for (size_t e = 0; e < kEntities; ++e) {
      for (int s = 0; s < kSnapshotsPerEntity; ++s) {
        rows.push_back(Row::CreateUnsafe(
            schema, {Value::Int64(static_cast<int64_t>(e)),
                     Value::Time(Hours(1 + 6 * s)),
                     Value::Double(rng.Gaussian()),
                     Value::Double(rng.Gaussian())}));
      }
    }
    MLFS_CHECK_OK(store.Ingest("src", rows));
    FeatureDefinition def;
    def.name = "f_ab";
    def.entity = "e";
    def.source_table = "src";
    def.expression = "a + b";
    def.cadence = Hours(1);
    MLFS_CHECK_OK(store.PublishFeature(def).status());
    MLFS_CHECK_OK(store.RunMaterialization().status());
    // Same expression published again, never materialized: served through
    // the serving-time compute path (mirror MultiGet + vectorized
    // EvalBatch) instead of a materialized view.
    FeatureDefinition computed = def;
    computed.name = "c_ab";
    MLFS_CHECK_OK(store.PublishFeature(computed).status());
    keys.reserve(kEntities);
    for (size_t e = 0; e < kEntities; ++e) {
      keys.push_back(Value::Int64(static_cast<int64_t>(e)));
    }
  }
};

ServingFixture& Fixture() {
  static auto* fixture = new ServingFixture();
  return *fixture;
}



// Pre-sampled Zipf key batches so key sampling stays out of the timed
// loop. The pool is sized so the timed loop does not recycle a small key
// subset (which would let the cache warm to a working set production
// traffic never has): enough batches to cover ~2M draws before repeating.
std::vector<std::vector<Value>> SampleBatches(const std::vector<Value>& keys,
                                              const ZipfDistribution& zipf,
                                              size_t batch_size,
                                              uint64_t seed) {
  constexpr size_t kTargetDraws = 2000000;
  constexpr size_t kMinBatches = 64, kMaxBatches = 8192;
  const size_t pooled = std::min(
      kMaxBatches, std::max(kMinBatches, kTargetDraws / batch_size));
  Rng rng(seed);
  std::vector<std::vector<Value>> batches(pooled);
  for (auto& batch : batches) {
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(keys[zipf.Sample(&rng)]);
    }
  }
  return batches;
}

// Embedding-scale online store for the MultiGet pair: 8M entities in one
// view, written directly (materialization machinery is not what these
// benchmarks measure). At this size the cell table far exceeds the
// last-level cache — the regime embedding-ecosystem serving lives in
// (paper §3) and the one batched lookups target: a per-key loop pays each
// key's dependent cache-miss chain serially, while the shard-grouped path
// overlaps them with staged prefetching.
constexpr size_t kMultiGetEntities = 8000000;

struct OnlineMultiGetFixture {
  OnlineStore store;
  std::vector<Value> keys;
  ZipfDistribution zipf{kMultiGetEntities, 1.1};

  OnlineMultiGetFixture() {
    auto schema =
        Schema::Create({{"entity", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"value", FeatureType::kDouble, true}})
            .value();
    MLFS_CHECK_OK(store.CreateView("f_ab", schema));
    Rng rng(7);
    keys.reserve(kMultiGetEntities);
    for (size_t e = 0; e < kMultiGetEntities; ++e) {
      Value key = Value::Int64(static_cast<int64_t>(e));
      Row row = Row::CreateUnsafe(
          schema, {key, Value::Time(Hours(1)), Value::Double(rng.Gaussian())});
      MLFS_CHECK_OK(
          store.Put("f_ab", key, std::move(row), Hours(1), Hours(1)));
      keys.push_back(std::move(key));
    }
  }
};

OnlineMultiGetFixture& MultiGetFixture() {
  static auto* fixture = new OnlineMultiGetFixture();
  return *fixture;
}

// The per-key baseline the shard-grouped MultiGet is measured against: one
// Get (one shard lock, one composed key) per entity.
void BM_OnlineMultiGetLoop(benchmark::State& state) {
  auto& fixture = MultiGetFixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleBatches(fixture.keys, fixture.zipf, batch_size,
                               20 + state.thread_index());
  const Timestamp now = Hours(2);
  size_t next = 0;
  for (auto _ : state) {
    std::vector<StatusOr<Row>> rows;
    rows.reserve(batch_size);
    for (const Value& key : batches[next]) {
      rows.push_back(fixture.store.Get("f_ab", key, now));
    }
    benchmark::DoNotOptimize(rows);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
// MinTime widens each measurement window so a transient scheduler or
// kernel-compaction burst is averaged out instead of owning a whole
// repetition; the MultiGet/Loop pair is the headline before/after
// comparison, so its windows get the extra care.
BENCHMARK(BM_OnlineMultiGetLoop)
    ->ArgName("batch")->Arg(1)->Arg(16)->Arg(256)
    ->Threads(1)->Threads(4)->Threads(8)->MinTime(1.5);

// Shard-grouped batched lookup: hash all keys up front, lock each shard
// once, serve the shard's keys in one shared critical section with staged
// prefetching.
void BM_OnlineMultiGet(benchmark::State& state) {
  auto& fixture = MultiGetFixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleBatches(fixture.keys, fixture.zipf, batch_size,
                               20 + state.thread_index());
  const Timestamp now = Hours(2);
  size_t next = 0;
  for (auto _ : state) {
    auto rows = fixture.store.MultiGet("f_ab", batches[next], now);
    benchmark::DoNotOptimize(rows);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_OnlineMultiGet)
    ->ArgName("batch")->Arg(1)->Arg(16)->Arg(256)
    ->Threads(1)->Threads(4)->Threads(8)->MinTime(1.5);

// Uniform-key variants of the same pair: the cold-access regime. Zipf(1.1)
// concentrates most draws on a cache-resident hot head, so the blended
// Zipf numbers mix a CPU-bound warm path with the memory-bound tail.
// Embedding-ecosystem traffic is much flatter — ANN candidate lists and
// batch scoring touch entities near-uniformly — and uniform draws over an
// 8M-entity store make every lookup pay the cache-miss chain the staged
// prefetch pipeline exists to overlap.
std::vector<std::vector<Value>> SampleUniformBatches(
    const std::vector<Value>& keys, size_t batch_size, uint64_t seed) {
  constexpr size_t kTargetDraws = 2000000;
  constexpr size_t kMinBatches = 64, kMaxBatches = 8192;
  const size_t pooled = std::min(
      kMaxBatches, std::max(kMinBatches, kTargetDraws / batch_size));
  Rng rng(seed);
  std::vector<std::vector<Value>> batches(pooled);
  for (auto& batch : batches) {
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(keys[rng.Uniform(keys.size())]);
    }
  }
  return batches;
}

void BM_OnlineMultiGetLoopUniform(benchmark::State& state) {
  auto& fixture = MultiGetFixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleUniformBatches(fixture.keys, batch_size,
                                      40 + state.thread_index());
  const Timestamp now = Hours(2);
  size_t next = 0;
  for (auto _ : state) {
    std::vector<StatusOr<Row>> rows;
    rows.reserve(batch_size);
    for (const Value& key : batches[next]) {
      rows.push_back(fixture.store.Get("f_ab", key, now));
    }
    benchmark::DoNotOptimize(rows);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_OnlineMultiGetLoopUniform)
    ->ArgName("batch")->Arg(256)->MinTime(1.5);

void BM_OnlineMultiGetUniform(benchmark::State& state) {
  auto& fixture = MultiGetFixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleUniformBatches(fixture.keys, batch_size,
                                      40 + state.thread_index());
  const Timestamp now = Hours(2);
  size_t next = 0;
  for (auto _ : state) {
    auto rows = fixture.store.MultiGet("f_ab", batches[next], now);
    benchmark::DoNotOptimize(rows);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_OnlineMultiGetUniform)
    ->ArgName("batch")->Arg(256)->MinTime(1.5);

// The scalar E1 benchmarks run AFTER the MultiGet pair on purpose: the 8M
// fixture's row payloads are then laid out in a pristine heap, and the
// batched path is measured before other fixtures fragment it. These
// single-lookup latency benchmarks are far less sensitive to ordering.
void BM_OnlineGet(benchmark::State& state) {
  auto& fixture = Fixture();
  Rng rng(2);
  Timestamp now = fixture.store.clock().now();
  for (auto _ : state) {
    const Value& key = fixture.keys[fixture.zipf.Sample(&rng)];
    auto row = fixture.store.online().Get("f_ab", key, now);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineGet);

void BM_OfflineAsOf(benchmark::State& state) {
  auto& fixture = Fixture();
  Rng rng(3);
  auto table = fixture.store.offline().GetTable("src").value();
  Timestamp now = fixture.store.clock().now();
  for (auto _ : state) {
    const Value& key = fixture.keys[fixture.zipf.Sample(&rng)];
    auto row = table->AsOf(key, now);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OfflineAsOf);

void BM_OfflineLatestPerEntityScan(benchmark::State& state) {
  // The "no online store" strawman: answer a single lookup by scanning the
  // latest snapshot of everything (what a naive warehouse query does).
  auto& fixture = Fixture();
  auto table = fixture.store.offline().GetTable("src").value();
  Timestamp now = fixture.store.clock().now();
  for (auto _ : state) {
    auto rows = table->LatestPerEntityAsOf(now);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OfflineLatestPerEntityScan)->Iterations(3);

void BM_FeatureServerGet(benchmark::State& state) {
  auto& fixture = Fixture();
  Rng rng(4);
  for (auto _ : state) {
    const Value& key = fixture.keys[fixture.zipf.Sample(&rng)];
    auto fv = fixture.store.ServeFeatures(key, {"f_ab"});
    benchmark::DoNotOptimize(fv);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureServerGet);

// Assembled serving path, batched: one shard-grouped MultiGet per view.
void BM_FeatureServerBatch(benchmark::State& state) {
  auto& fixture = Fixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleBatches(fixture.keys, fixture.zipf, batch_size,
                               30 + state.thread_index());
  Timestamp now = fixture.store.clock().now();
  size_t next = 0;
  for (auto _ : state) {
    auto result =
        fixture.store.server().GetFeaturesBatch(batches[next], {"f_ab"}, now);
    benchmark::DoNotOptimize(result);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_FeatureServerBatch)
    ->ArgName("batch")->Arg(1)->Arg(16)->Arg(256)
    ->Threads(1)->Threads(4)->Threads(8);

// Wide-request fixture: 100k entities x 32 materialized feature views,
// written straight into an OnlineStore (materialization machinery is not
// what this benchmark measures).
constexpr size_t kWideViews = 32;

struct WideServingFixture {
  OnlineStore store{[] {
    OnlineStoreOptions options;
    options.num_shards = 16;
    return options;
  }()};
  FeatureServer server{&store};
  std::vector<Value> keys;
  std::vector<std::string> views;
  ZipfDistribution zipf{kEntities, 1.1};

  WideServingFixture() {
    auto schema =
        Schema::Create({{"entity", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"value", FeatureType::kDouble, true}})
            .value();
    Rng rng(11);
    for (size_t v = 0; v < kWideViews; ++v) {
      views.push_back("wide_f" + std::to_string(v));
      MLFS_CHECK_OK(store.CreateView(views.back(), schema));
    }
    for (size_t e = 0; e < kEntities; ++e) {
      Value key = Value::Int64(static_cast<int64_t>(e));
      for (const std::string& view : views) {
        Row row = Row::CreateUnsafe(
            schema, {key, Value::Time(Hours(1)), Value::Double(rng.Gaussian())});
        MLFS_CHECK_OK(store.Put(view, key, std::move(row), Hours(1), Hours(1)));
      }
      keys.push_back(std::move(key));
    }
  }
};

WideServingFixture& WideFixture() {
  static auto* fixture = new WideServingFixture();
  return *fixture;
}

// 32-feature assembly per entity: views x one MultiGet per batch, instead
// of entities x 32 point Gets.
void BM_FeatureServerBatchWide(benchmark::State& state) {
  auto& fixture = WideFixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleBatches(fixture.keys, fixture.zipf, batch_size,
                               40 + state.thread_index());
  size_t next = 0;
  for (auto _ : state) {
    auto result =
        fixture.server.GetFeaturesBatch(batches[next], fixture.views, Hours(2));
    benchmark::DoNotOptimize(result);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_FeatureServerBatchWide)
    ->ArgName("batch")->Arg(1)->Arg(16)->Arg(256)
    ->Threads(1)->Threads(4);

// The same wide request served entity-by-entity (the old batch path).
void BM_FeatureServerWideLoop(benchmark::State& state) {
  auto& fixture = WideFixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleBatches(fixture.keys, fixture.zipf, batch_size,
                               40 + state.thread_index());
  size_t next = 0;
  for (auto _ : state) {
    std::vector<StatusOr<FeatureVector>> result;
    result.reserve(batch_size);
    for (const Value& key : batches[next]) {
      result.push_back(
          fixture.server.GetFeatures(key, fixture.views, Hours(2)));
    }
    benchmark::DoNotOptimize(result);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_FeatureServerWideLoop)->ArgName("batch")->Arg(16)->Arg(256);

// --- Serving-time computed features ------------------------------------
//
// "c_ab" is registered but never materialized: GetFeaturesBatch fetches
// the source-mirror rows with one shard-grouped MultiGet and evaluates the
// compiled expression vector-at-a-time. BM_FeatureServerBatch over the
// materialized "f_ab" view is the raw-serving baseline the acceptance
// criterion compares against (computed must stay within 1.3x at batch
// 256); BM_ComputedFeatureTreeWalkLoop is the per-row tree-walk oracle the
// batch VM replaces.
void BM_ComputedFeatureBatch(benchmark::State& state) {
  auto& fixture = Fixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleBatches(fixture.keys, fixture.zipf, batch_size,
                               50 + state.thread_index());
  Timestamp now = fixture.store.clock().now();
  size_t next = 0;
  for (auto _ : state) {
    auto result =
        fixture.store.server().GetFeaturesBatch(batches[next], {"c_ab"}, now);
    benchmark::DoNotOptimize(result);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_ComputedFeatureBatch)
    ->ArgName("batch")->Arg(1)->Arg(64)->Arg(256);

// Oracle: the same computed feature assembled per row — one online Get on
// the source mirror per key, then the tree-walking interpreter. What
// serving-time compute would cost without the VM or batched fetches.
void BM_ComputedFeatureTreeWalkLoop(benchmark::State& state) {
  auto& fixture = Fixture();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto batches = SampleBatches(fixture.keys, fixture.zipf, batch_size,
                               50 + state.thread_index());
  const std::string mirror = SourceMirrorViewName("src");
  ExprPtr tree = ParseExpr("a + b").value();
  Timestamp now = fixture.store.clock().now();
  size_t next = 0;
  for (auto _ : state) {
    std::vector<StatusOr<Value>> out;
    out.reserve(batch_size);
    for (const Value& key : batches[next]) {
      StatusOr<Row> row = fixture.store.online().Get(mirror, key, now);
      if (!row.ok()) {
        out.push_back(row.status());
        continue;
      }
      out.push_back(EvalExpr(*tree, *row));
    }
    benchmark::DoNotOptimize(out);
    next = (next + 1) % batches.size();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_ComputedFeatureTreeWalkLoop)
    ->ArgName("batch")->Arg(1)->Arg(64)->Arg(256);

}  // namespace
}  // namespace mlfs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // E1 summary table: latency percentiles of the assembled serving path.
  auto& fixture = mlfs::Fixture();
  auto histogram = fixture.store.server().latency_histogram();
  std::printf("\n[E1] online serving latency (us): %s\n",
              histogram.Summary().c_str());
  std::printf("[E1] online store: %s\n",
              [&] {
                auto stats = fixture.store.online().stats();
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "cells=%zu bytes=%.1fMB hit_rate=%.3f",
                              stats.num_cells,
                              stats.approx_bytes / 1048576.0,
                              stats.gets ? double(stats.hits) / stats.gets
                                         : 0.0);
                return std::string(buf);
              }().c_str());
  benchmark::Shutdown();
  return 0;
}
