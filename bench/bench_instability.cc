// E6 — Downstream instability (paper §3.1.2, citing Leszczynski et al.
// [17]).
//
// Claim: retraining an embedding (new seed / data subsample) changes a
// substantial fraction of downstream predictions even when accuracy is
// unchanged; the instability shrinks as embedding dimension grows.
//
// Reproduces: prediction churn between downstream models trained on
// embedding pairs that differ only in training seed, across dimensions,
// plus the neighborhood-overlap view of the same phenomenon.

#include <cstdio>

#include "common/rng.h"
#include "datagen/kb.h"
#include "embedding/embedding_table.h"
#include "embedding/quality.h"
#include "ml/sgns.h"

namespace mlfs {
namespace {

EmbeddingTablePtr TrainAtDim(const SyntheticKb& kb,
                             const std::vector<std::vector<int>>& corpus,
                             size_t dim, uint64_t seed) {
  SgnsConfig config;
  config.dim = dim;
  config.epochs = 3;
  config.seed = seed;
  auto embeddings = TrainSgns(corpus, kb.vocab_size(), config).value();
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    const float* row = embeddings.row(e);
    vectors.insert(vectors.end(), row, row + dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "emb_d" + std::to_string(dim);
  return EmbeddingTable::Create(metadata, keys, vectors, dim).value();
}

}  // namespace
}  // namespace mlfs

int main() {
  using namespace mlfs;

  // Deliberately hard setting (no type tokens, moderate homophily, small
  // corpus): downstream accuracy sits away from the ceiling, where seed
  // noise flips boundary predictions — the regime [17] studies.
  SyntheticKbConfig kb_config;
  kb_config.num_entities = 1000;
  kb_config.num_types = 8;
  kb_config.homophily = 0.8;
  SyntheticKb kb = BuildSyntheticKb(kb_config).value();
  CorpusConfig corpus_config;
  corpus_config.num_sentences = 8000;
  auto corpus = GenerateCorpus(kb, corpus_config).value();

  DownstreamTask task;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    task.keys.push_back(kb.entity_key(e));
    task.labels.push_back(kb.entity_type[e]);
  }

  std::printf("[E6] downstream instability vs embedding dimension "
              "(2 seed pairs per dim; task: entity typing)\n");
  std::printf("%6s %12s %12s %12s %14s\n", "dim", "acc(A)", "acc(B)",
              "churn", "nbr overlap");
  for (size_t dim : {8, 16, 32, 64}) {
    double churn_total = 0, acc_a = 0, acc_b = 0, overlap_total = 0;
    const int pairs = 2;
    for (int p = 0; p < pairs; ++p) {
      auto a = TrainAtDim(kb, corpus, dim, 100 + p);
      auto b = TrainAtDim(kb, corpus, dim, 200 + p);
      auto report = DownstreamInstability(*a, *b, task).value();
      churn_total += report.prediction_churn;
      acc_a += report.accuracy_a;
      acc_b += report.accuracy_b;
      overlap_total +=
          NeighborStability(*a, *b, 10, 200).value().mean_overlap;
    }
    std::printf("%6zu %12.3f %12.3f %11.1f%% %14.3f\n", dim, acc_a / pairs,
                acc_b / pairs, 100.0 * churn_total / pairs,
                overlap_total / pairs);
  }
  std::printf("\n(shape to expect, per [17]: accuracies stay flat while "
              "churn is substantial, and churn decreases as dimension "
              "grows)\n");
  return 0;
}
