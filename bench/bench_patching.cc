// E10 — Patch the embedding, patch every consumer (paper §3.1.3).
//
// Claim: when monitoring localizes downstream errors to a subpopulation,
// correcting the error *in the embedding* fixes all downstream products
// consistently, unlike per-model data augmentation.
//
// Reproduces: (1) automatic slice discovery over a planted broken
// subpopulation, (2) per-consumer slice/rest accuracy before and after the
// embedding patch across three different downstream models, (3) the
// model-level oversampling baseline.

#include <cstdio>
#include <unordered_set>

#include "common/rng.h"
#include "embedding/embedding_table.h"
#include "embedding/quality.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "monitoring/patcher.h"
#include "monitoring/slice_finder.h"

namespace mlfs {
namespace {

struct World {
  EmbeddingTablePtr table;
  DownstreamTask task;                       // Task A: the monitored task.
  DownstreamTask task_b;                     // Task B: a second consumer's task.
  std::unordered_set<std::string> broken;    // Ground-truth broken keys.
  std::vector<int> region;                   // Metadata attribute per key.
};

// 4 classes in embedding space; entities from "region 3" of class 1 got
// corrupted vectors (dropped near class 0's region).
World MakeWorld(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  const int classes = 4;
  std::vector<std::vector<float>> centers(classes, std::vector<float>(dim));
  for (auto& center : centers) {
    for (auto& x : center) x = static_cast<float>(rng.Gaussian(0, 3));
  }
  World world;
  std::vector<std::string> keys;
  std::vector<float> data;
  for (size_t i = 0; i < n; ++i) {
    std::string key = "e" + std::to_string(i);
    int label = static_cast<int>(i % classes);
    int region = static_cast<int>(rng.Uniform(4));
    bool broken = (label == 1 && region == 3);
    const auto& center = broken ? centers[0] : centers[label];
    keys.push_back(key);
    for (size_t j = 0; j < dim; ++j) {
      data.push_back(center[j] + static_cast<float>(rng.Gaussian(0, 0.5)));
    }
    world.task.keys.push_back(key);
    world.task.labels.push_back(label);
    // Task B: a *different* labeling that still depends on the same
    // geometry — parity grouping, which puts the corrupted class (1) and
    // the region it was dropped into (0) on opposite sides.
    world.task_b.keys.push_back(key);
    world.task_b.labels.push_back(label % 2);
    world.region.push_back(region);
    if (broken) world.broken.insert(key);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "prod_emb";
  metadata.version = 1;
  world.table = EmbeddingTable::Create(metadata, keys, data, dim).value();
  return world;
}

double SliceAccuracy(const World& world, const DownstreamTask& task,
                     const std::vector<int>& preds, bool broken_part) {
  size_t n = 0, correct = 0;
  for (size_t i = 0; i < task.keys.size(); ++i) {
    if ((world.broken.count(task.keys[i]) > 0) != broken_part) continue;
    ++n;
    correct += preds[i] == task.labels[i];
  }
  return n ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

template <typename Model>
void EvaluateConsumer(const char* name, const World& world,
                      const DownstreamTask& task,
                      const EmbeddingTable& before,
                      const EmbeddingTable& after) {
  Model model_before, model_after;
  Dataset data_before = MaterializeTask(task, before).value();
  Dataset data_after = MaterializeTask(task, after).value();
  MLFS_CHECK_OK(model_before.Fit(data_before).status());
  MLFS_CHECK_OK(model_after.Fit(data_after).status());
  auto preds_before = model_before.PredictBatch(data_before).value();
  auto preds_after = model_after.PredictBatch(data_after).value();
  std::printf("%-28s %10.3f %10.3f | %10.3f %10.3f\n", name,
              SliceAccuracy(world, task, preds_before, true),
              SliceAccuracy(world, task, preds_after, true),
              SliceAccuracy(world, task, preds_before, false),
              SliceAccuracy(world, task, preds_after, false));
}

}  // namespace
}  // namespace mlfs

int main() {
  using namespace mlfs;
  World world = MakeWorld(2000, 16, 3);

  // --- Step 1: a monitored consumer exposes the errors; find the slice ----
  Dataset data = MaterializeTask(world.task, *world.table).value();
  SoftmaxClassifier monitor_model;
  MLFS_CHECK_OK(monitor_model.Fit(data).status());
  auto preds = monitor_model.PredictBatch(data).value();

  auto meta_schema =
      Schema::Create({{"label", FeatureType::kString, true},
                      {"region", FeatureType::kString, true}})
          .value();
  std::vector<Row> metadata;
  for (size_t i = 0; i < world.task.keys.size(); ++i) {
    metadata.push_back(
        Row::Create(meta_schema,
                    {Value::String("c" + std::to_string(world.task.labels[i])),
                     Value::String("r" + std::to_string(world.region[i]))})
            .value());
  }
  auto slices =
      FindUnderperformingSlices(metadata, world.task.labels, preds).value();
  std::printf("[E10] slice discovery (planted: class c1 in region r3)\n");
  for (size_t s = 0; s < slices.size() && s < 3; ++s) {
    std::printf("  found: %-34s n=%-5zu acc=%.3f gap=%.3f z=%.1f\n",
                slices[s].predicate.c_str(), slices[s].size,
                slices[s].accuracy, slices[s].accuracy_gap,
                slices[s].z_score);
  }
  MLFS_CHECK(!slices.empty()) << "slice finder found nothing";

  std::unordered_set<std::string> slice_keys;
  for (size_t member : slices[0].members) {
    slice_keys.insert(world.task.keys[member]);
  }

  // --- Step 2: patch the embedding ------------------------------------------
  auto patched = PatchEmbedding(*world.table, world.task, slice_keys,
                                {.alpha = 0.8, .repel = 0.1})
                     .value();

  // --- Step 3: every consumer improves --------------------------------------
  std::printf("\nper-consumer accuracy, slice | rest (before -> after "
              "embedding patch)\n");
  std::printf("%-28s %10s %10s | %10s %10s\n", "consumer", "slice pre",
              "slice post", "rest pre", "rest post");
  EvaluateConsumer<SoftmaxClassifier>("task A / linear", world, world.task,
                                      *world.table, *patched);
  EvaluateConsumer<MlpClassifier>("task A / mlp", world, world.task,
                                  *world.table, *patched);
  EvaluateConsumer<SoftmaxClassifier>("task B / linear", world, world.task_b,
                                      *world.table, *patched);

  // --- Baseline: per-model oversampling fixes only the retrained model ----
  TrainConfig weighted;
  weighted.example_weights =
      OversampleWeights(world.task, slice_keys, 8.0).value();
  SoftmaxClassifier oversampled;
  MLFS_CHECK_OK(oversampled.Fit(data, weighted).status());
  auto preds_oversampled = oversampled.PredictBatch(data).value();
  std::printf("\nbaseline (oversample slice 8x, task A only): slice %.3f "
              "rest %.3f\n",
              SliceAccuracy(world, world.task, preds_oversampled, true),
              SliceAccuracy(world, world.task, preds_oversampled, false));
  std::printf("(the oversampling fix does not transfer to task B or the "
              "MLP: only the embedding patch repairs all consumers)\n");
  return 0;
}
