#include "storage/offline_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "storage/entity_key.h"

namespace mlfs {
namespace {

SchemaPtr TestSchema() {
  return Schema::Create({{"user_id", FeatureType::kInt64, false},
                         {"event_time", FeatureType::kTimestamp, false},
                         {"trips", FeatureType::kInt64, true},
                         {"rating", FeatureType::kDouble, true}})
      .value();
}

OfflineTableOptions TestOptions() {
  OfflineTableOptions opt;
  opt.name = "user_stats";
  opt.schema = TestSchema();
  opt.entity_column = "user_id";
  opt.time_column = "event_time";
  return opt;
}

Row MakeRow(const SchemaPtr& schema, int64_t user, Timestamp ts, int64_t trips,
            double rating) {
  return Row::Create(schema, {Value::Int64(user), Value::Time(ts),
                              Value::Int64(trips), Value::Double(rating)})
      .value();
}

TEST(OfflineTableTest, CreateValidatesColumns) {
  auto opt = TestOptions();
  EXPECT_TRUE(OfflineTable::Create(opt).ok());

  opt.entity_column = "missing";
  EXPECT_FALSE(OfflineTable::Create(opt).ok());

  opt = TestOptions();
  opt.entity_column = "rating";  // Wrong type.
  EXPECT_FALSE(OfflineTable::Create(opt).ok());

  opt = TestOptions();
  opt.time_column = "trips";  // Wrong type.
  EXPECT_FALSE(OfflineTable::Create(opt).ok());

  opt = TestOptions();
  opt.name = "";
  EXPECT_FALSE(OfflineTable::Create(opt).ok());

  opt = TestOptions();
  opt.partition_granularity = 0;
  EXPECT_FALSE(OfflineTable::Create(opt).ok());
}

TEST(OfflineTableTest, AppendAndScan) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(1), 3, 4.5)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 2, Hours(2), 1, 3.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Days(2), 5, 4.8)).ok());
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->num_partitions(), 2u);  // Day 0 and day 2.
  EXPECT_EQ(table->max_event_time(), Days(2));

  EXPECT_EQ(table->Scan().size(), 3u);
  EXPECT_EQ(table->Scan(Hours(1), Hours(2)).size(), 1u);   // [1h, 2h).
  EXPECT_EQ(table->Scan(Hours(1), Hours(2) + 1).size(), 2u);
  EXPECT_EQ(table->Scan(Days(1), Days(3)).size(), 1u);
  EXPECT_TRUE(table->Scan(Days(3), Days(4)).empty());
  EXPECT_TRUE(table->Scan(Hours(2), Hours(1)).empty());  // Empty range.
}

TEST(OfflineTableTest, ScanIfAppliesPredicate) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table->Append(MakeRow(schema, i, Hours(i), i, 0.0)).ok());
  }
  auto rows = table->ScanIf(kMinTimestamp, kMaxTimestamp, [](const Row& r) {
    return r.value(2).int64_value() % 2 == 0;
  });
  EXPECT_EQ(rows.size(), 5u);
}

TEST(OfflineTableTest, RejectsBadRows) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto other_schema =
      Schema::Create({{"x", FeatureType::kInt64, false}}).value();
  Row bad = Row::Create(other_schema, {Value::Int64(1)}).value();
  EXPECT_FALSE(table->Append(bad).ok());
}

TEST(OfflineTableTest, AsOfPicksLatestNotAfter) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  // Insert out of order, across partitions.
  ASSERT_TRUE(table->Append(MakeRow(schema, 7, Days(3), 30, 3.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 7, Days(1), 10, 1.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 7, Days(2), 20, 2.0)).ok());

  EXPECT_TRUE(table->AsOf(Value::Int64(7), Days(1) - 1).status().IsNotFound());
  EXPECT_EQ(table->AsOf(Value::Int64(7), Days(1)).value()
                .value(2).int64_value(), 10);
  EXPECT_EQ(table->AsOf(Value::Int64(7), Days(2) + Hours(5)).value()
                .value(2).int64_value(), 20);
  EXPECT_EQ(table->AsOf(Value::Int64(7), kMaxTimestamp).value()
                .value(2).int64_value(), 30);
  EXPECT_TRUE(table->AsOf(Value::Int64(8), Days(9)).status().IsNotFound());
}

TEST(OfflineTableTest, AsOfTieBreaksByInsertionOrder) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(5), 100, 0.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(5), 200, 0.0)).ok());
  // Same event time: the most recently appended row wins.
  EXPECT_EQ(table->AsOf(Value::Int64(1), Hours(5)).value()
                .value(2).int64_value(), 200);
}

TEST(OfflineTableTest, AsOfRandomizedAgainstOracle) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  Rng rng(99);
  struct Ev { int64_t user; Timestamp ts; int64_t val; };
  std::vector<Ev> events;
  for (int i = 0; i < 500; ++i) {
    Ev e{static_cast<int64_t>(rng.Uniform(20)),
         static_cast<Timestamp>(rng.Uniform(Days(10))), i};
    events.push_back(e);
    ASSERT_TRUE(table->Append(MakeRow(schema, e.user, e.ts, e.val, 0.0)).ok());
  }
  for (int probe = 0; probe < 200; ++probe) {
    int64_t user = static_cast<int64_t>(rng.Uniform(20));
    Timestamp ts = static_cast<Timestamp>(rng.Uniform(Days(10)));
    // Oracle: latest event (by ts, then insertion order) with ts' <= ts.
    const Ev* best = nullptr;
    for (const auto& e : events) {
      if (e.user != user || e.ts > ts) continue;
      if (best == nullptr || e.ts > best->ts ||
          (e.ts == best->ts && e.val > best->val)) {
        best = &e;
      }
    }
    auto got = table->AsOf(Value::Int64(user), ts);
    if (best == nullptr) {
      EXPECT_TRUE(got.status().IsNotFound());
    } else {
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->value(2).int64_value(), best->val);
    }
  }
}

TEST(OfflineTableTest, LatestPerEntityAsOf) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(1), 11, 0.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(9), 19, 0.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 2, Hours(5), 25, 0.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 3, Days(2), 32, 0.0)).ok());

  auto rows = table->LatestPerEntityAsOf(Hours(10));
  ASSERT_EQ(rows.size(), 2u);  // Entity 3 has no data yet.
  int64_t sum = 0;
  for (const auto& r : rows) sum += r.value(2).int64_value();
  EXPECT_EQ(sum, 19 + 25);

  EXPECT_EQ(table->LatestPerEntityAsOf(kMaxTimestamp).size(), 3u);
  EXPECT_TRUE(table->LatestPerEntityAsOf(0).empty());
}

TEST(OfflineTableTest, AsOfBatchMatchesAsOf) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  Rng rng(7);
  // Out-of-order arrivals spread over many partitions, plus duplicate
  // timestamps so the append-order tie-break is exercised.
  for (int i = 0; i < 500; ++i) {
    int64_t user = static_cast<int64_t>(rng.Uniform(12));
    Timestamp ts = Hours(static_cast<int64_t>(rng.Uniform(24 * 40)));
    ASSERT_TRUE(table->Append(MakeRow(schema, user, ts, i, 0.0)).ok());
  }
  // Sorted (key, ts) request batch covering present and absent entities.
  struct Probe {
    std::string key;
    Timestamp ts;
  };
  std::vector<Probe> probes;
  for (int64_t user = 0; user < 15; ++user) {
    for (Timestamp ts : {Hours(0), Days(3), Days(17), Days(33), Days(50),
                         kMaxTimestamp}) {
      probes.push_back({std::to_string(user), ts});
    }
  }
  std::sort(probes.begin(), probes.end(), [](const Probe& a, const Probe& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.ts < b.ts;
  });
  std::vector<AsOfRequest> requests;
  requests.reserve(probes.size());
  for (const Probe& p : probes) requests.push_back({p.key, p.ts});
  std::vector<Row> results(requests.size());
  ASSERT_TRUE(table->AsOfBatch(requests, results).ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    auto oracle = table->AsOf(Value::Int64(std::stoll(probes[i].key)),
                              probes[i].ts);
    if (oracle.ok()) {
      ASSERT_NE(results[i].schema(), nullptr) << "probe " << i;
      EXPECT_EQ(results[i], *oracle) << "probe " << i;
    } else {
      EXPECT_EQ(results[i].schema(), nullptr) << "probe " << i;
    }
  }
}

TEST(OfflineTableTest, AsOfBatchEqualTimestampTieBreak) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  // Three rows for one entity at the identical event time: the most
  // recently appended must win, matching AsOf.
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(5), 10, 0.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(5), 11, 0.0)).ok());
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(5), 12, 0.0)).ok());
  std::vector<AsOfRequest> requests = {{"1", Hours(5)}, {"1", Hours(6)}};
  std::vector<Row> results(2);
  ASSERT_TRUE(table->AsOfBatch(requests, results).ok());
  ASSERT_NE(results[0].schema(), nullptr);
  EXPECT_EQ(results[0].value(2).int64_value(), 12);
  EXPECT_EQ(results[1].value(2).int64_value(), 12);
  EXPECT_EQ(table->AsOf(Value::Int64(1), Hours(5))->value(2).int64_value(),
            12);
}

TEST(OfflineTableTest, AsOfBatchValidatesInput) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, Hours(1), 1, 0.0)).ok());

  // Empty batch is fine.
  EXPECT_TRUE(table->AsOfBatch({}, {}).ok());

  // Size mismatch.
  std::vector<AsOfRequest> requests = {{"1", Hours(2)}};
  std::vector<Row> too_small;
  EXPECT_TRUE(table->AsOfBatch(requests, too_small).IsInvalidArgument());

  // Unsorted keys.
  std::vector<AsOfRequest> bad_keys = {{"2", Hours(1)}, {"1", Hours(1)}};
  std::vector<Row> results(2);
  EXPECT_TRUE(table->AsOfBatch(bad_keys, results).IsInvalidArgument());

  // Unsorted timestamps within a key.
  std::vector<AsOfRequest> bad_ts = {{"1", Hours(3)}, {"1", Hours(1)}};
  EXPECT_TRUE(table->AsOfBatch(bad_ts, results).IsInvalidArgument());
}

TEST(OfflineTableTest, EntityKeysSorted) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  for (int64_t u : {5, 3, 9, 3, 5}) {
    ASSERT_TRUE(table->Append(MakeRow(schema, u, Hours(u), u, 0.0)).ok());
  }
  auto keys = table->EntityKeys();
  EXPECT_EQ(keys, (std::vector<std::string>{"3", "5", "9"}));
}

TEST(OfflineTableTest, SnapshotRestoreRoundTrip) {
  auto table = OfflineTable::Create(TestOptions()).value();
  auto schema = TestSchema();
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table
                    ->Append(MakeRow(schema, rng.Uniform(10),
                                     rng.Uniform(Days(5)), i, rng.Gaussian()))
                    .ok());
  }
  std::string snap = table->Snapshot();

  auto restored = OfflineTable::Create(TestOptions()).value();
  ASSERT_TRUE(restored->Restore(snap).ok());
  EXPECT_EQ(restored->num_rows(), 100u);
  EXPECT_EQ(restored->max_event_time(), table->max_event_time());
  // As-of results must match on all probes.
  for (int u = 0; u < 10; ++u) {
    auto a = table->AsOf(Value::Int64(u), Days(3));
    auto b = restored->AsOf(Value::Int64(u), Days(3));
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(OfflineTableTest, RestoreRejectsBadInput) {
  auto table = OfflineTable::Create(TestOptions()).value();
  EXPECT_FALSE(table->Restore("garbage").ok());

  auto schema = TestSchema();
  ASSERT_TRUE(table->Append(MakeRow(schema, 1, 0, 1, 1.0)).ok());
  std::string snap = table->Snapshot();
  EXPECT_TRUE(table->Restore(snap).IsFailedPrecondition());
}

TEST(OfflineStoreTest, TableRegistry) {
  OfflineStore store;
  ASSERT_TRUE(store.CreateTable(TestOptions()).ok());
  EXPECT_TRUE(store.CreateTable(TestOptions()).IsAlreadyExists());
  EXPECT_TRUE(store.HasTable("user_stats"));
  EXPECT_FALSE(store.HasTable("nope"));
  EXPECT_TRUE(store.GetTable("user_stats").ok());
  EXPECT_TRUE(store.GetTable("nope").status().IsNotFound());
  EXPECT_EQ(store.TableNames(), (std::vector<std::string>{"user_stats"}));
}

TEST(EntityKeyTest, Canonicalization) {
  EXPECT_EQ(EntityKeyToString(Value::Int64(42)).value(), "42");
  EXPECT_EQ(EntityKeyToString(Value::String("user_a")).value(), "user_a");
  EXPECT_FALSE(EntityKeyToString(Value::Double(1.0)).ok());
  EXPECT_FALSE(EntityKeyToString(Value::Null()).ok());
}

}  // namespace
}  // namespace mlfs
