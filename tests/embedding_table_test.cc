#include "embedding/embedding_table.h"

#include <gtest/gtest.h>

#include <cmath>

#include "embedding/compress.h"
#include "embedding/embedding_store.h"

namespace mlfs {
namespace {

EmbeddingTablePtr SmallTable(const std::string& name = "emb") {
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  return EmbeddingTable::Create(metadata, {"a", "b", "c"},
                                {1, 0, 0, 1, 2, 0}, 2)
      .value();
}

TEST(EmbeddingTableTest, CreateAndLookup) {
  auto table = SmallTable();
  EXPECT_EQ(table->size(), 3u);
  EXPECT_EQ(table->dim(), 2u);
  auto vec = table->GetVector("b").value();
  EXPECT_EQ(vec, (std::vector<float>{0, 1}));
  EXPECT_TRUE(table->Get("z").status().IsNotFound());
  EXPECT_EQ(table->IndexOf("c"), 2);
  EXPECT_EQ(table->IndexOf("z"), -1);
  EXPECT_EQ(table->key(0), "a");
}

TEST(EmbeddingTableTest, CreateValidation) {
  EmbeddingTableMetadata metadata;
  metadata.name = "x";
  EXPECT_FALSE(EmbeddingTable::Create({}, {"a"}, {1.0f}, 1).ok());  // No name.
  EXPECT_FALSE(EmbeddingTable::Create(metadata, {"a"}, {1.0f}, 0).ok());
  EXPECT_FALSE(EmbeddingTable::Create(metadata, {"a"}, {1, 2, 3}, 2).ok());
  EXPECT_FALSE(
      EmbeddingTable::Create(metadata, {"a", "a"}, {1, 2}, 1).ok());
  EXPECT_FALSE(EmbeddingTable::Create(metadata, {""}, {1.0f}, 1).ok());
}

TEST(EmbeddingTableTest, FromTokenEmbeddings) {
  TokenEmbeddings emb;
  emb.vocab_size = 2;
  emb.dim = 3;
  emb.vectors = {1, 2, 3, 4, 5, 6};
  EmbeddingTableMetadata metadata;
  metadata.name = "tok";
  auto table =
      EmbeddingTable::FromTokenEmbeddings(metadata, emb, {"x", "y"}).value();
  EXPECT_EQ(table->GetVector("y").value(), (std::vector<float>{4, 5, 6}));
  EXPECT_FALSE(
      EmbeddingTable::FromTokenEmbeddings(metadata, emb, {"x"}).ok());
}

TEST(EmbeddingTableTest, MultiGet) {
  auto table = SmallTable();
  auto rows = table->MultiGet({"c", "missing", "a", "c"});
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], table->Get("c").value());
  EXPECT_EQ(rows[1], nullptr);
  EXPECT_EQ(rows[2], table->Get("a").value());
  EXPECT_EQ(rows[3], rows[0]);  // Duplicate keys resolve identically.
  EXPECT_TRUE(table->MultiGet({}).empty());
}

TEST(EmbeddingStoreTest, VersioningAndResolve) {
  EmbeddingStore store;
  EXPECT_EQ(store.Register(SmallTable(), Hours(1)).value(), 1);
  EXPECT_EQ(store.Register(SmallTable(), Hours(2)).value(), 2);
  EXPECT_EQ(store.GetLatest("emb").value()->metadata().version, 2);
  EXPECT_EQ(store.GetVersion("emb", 1).value()->metadata().version, 1);
  EXPECT_TRUE(store.GetVersion("emb", 9).status().IsNotFound());
  EXPECT_TRUE(store.GetLatest("other").status().IsNotFound());

  EXPECT_EQ(store.Resolve("emb").value()->metadata().version, 2);
  EXPECT_EQ(store.Resolve("emb@v1").value()->metadata().version, 1);
  EXPECT_FALSE(store.Resolve("emb@vx").ok());
  EXPECT_FALSE(store.Register(nullptr, 0).ok());
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"emb"}));
  EXPECT_EQ(store.Versions("emb").value().size(), 2u);
  EXPECT_EQ(store.num_tables(), 1u);
}

TEST(EmbeddingStoreTest, ResolveFallsBackToLatestForNonVersionSuffix) {
  // Bare names that merely contain "@v" (e.g. "user@vip") must resolve as
  // names, not be rejected as malformed version references.
  EmbeddingStore store;
  EmbeddingTableMetadata metadata;
  metadata.name = "user@vip";
  auto table =
      EmbeddingTable::Create(metadata, {"a", "b"}, {1, 0, 0, 1}, 2).value();
  ASSERT_TRUE(store.Register(table, Hours(1)).ok());
  ASSERT_TRUE(store.Register(table, Hours(2)).ok());
  auto resolved = store.Resolve("user@vip");
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ((*resolved)->metadata().version, 2);
  // Negative / zero / trailing-garbage suffixes also fall back (and then
  // NotFound, since no such bare name exists).
  EXPECT_TRUE(store.Resolve("user@v0").status().IsNotFound());
  EXPECT_TRUE(store.Resolve("user@v-1").status().IsNotFound());
  EXPECT_TRUE(store.Resolve("user@v2x").status().IsNotFound());
  // A well-formed reference to a missing version stays NotFound.
  EXPECT_TRUE(store.Resolve("user@vip@v9").status().IsNotFound());
  // And a well-formed reference still resolves the version, not a name.
  EXPECT_EQ(store.Resolve("user@vip@v1").value()->metadata().version, 1);
}

TEST(EmbeddingStoreTest, RegisterRecordsDimChangeInNotes) {
  EmbeddingStore store;
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  metadata.notes = "trained on corpus A";
  auto v1 =
      EmbeddingTable::Create(metadata, {"a", "b"}, {1, 0, 0, 1}, 2).value();
  ASSERT_TRUE(store.Register(v1, Hours(1)).ok());
  // Re-train at a new dimension: the stamped metadata must say so.
  auto v2 = EmbeddingTable::Create(metadata, {"a", "b"},
                                   {1, 0, 0, 0, 1, 0, 0, 0}, 4)
                .value();
  ASSERT_TRUE(store.Register(v2, Hours(2)).ok());
  const std::string& notes = store.GetVersion("emb", 2).value()
                                 ->metadata().notes;
  EXPECT_NE(notes.find("dim changed 2x2 -> 2x4"), std::string::npos) << notes;
  EXPECT_NE(notes.find("trained on corpus A"), std::string::npos) << notes;
  // Same-dim registration stays untouched.
  ASSERT_TRUE(store.Register(v2, Hours(3)).ok());
  EXPECT_EQ(store.GetVersion("emb", 3).value()->metadata().notes,
            "trained on corpus A");
}

TEST(EmbeddingStoreTest, LineageChain) {
  EmbeddingStore store;
  ASSERT_TRUE(store.Register(SmallTable(), Hours(1)).ok());
  auto v1 = store.GetVersion("emb", 1).value();
  auto compressed = QuantizeUniform(*v1, 4).value();
  EXPECT_EQ(compressed->metadata().parent, "emb@v1");
  ASSERT_TRUE(store.Register(compressed, Hours(2)).ok());
  auto lineage = store.Lineage("emb@v2").value();
  EXPECT_EQ(lineage, (std::vector<std::string>{"emb@v2", "emb@v1"}));
}

TEST(QuantizeTest, LowBitsIncreaseError) {
  // A bigger random-ish table for quantization.
  std::vector<std::string> keys;
  std::vector<float> data;
  for (int i = 0; i < 50; ++i) {
    keys.push_back("k" + std::to_string(i));
    for (int j = 0; j < 8; ++j) {
      data.push_back(std::sin(static_cast<float>(i * 8 + j)));
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "q";
  auto table = EmbeddingTable::Create(metadata, keys, data, 8).value();

  double last_mse = -1;
  for (int bits : {8, 4, 2, 1}) {
    auto compressed = QuantizeUniform(*table, bits).value();
    double mse = ReconstructionMse(*table, *compressed).value();
    EXPECT_GT(mse, last_mse) << bits;
    last_mse = mse;
  }
  // 16-bit is near-lossless.
  auto fine = QuantizeUniform(*table, 16).value();
  EXPECT_LT(ReconstructionMse(*table, *fine).value(), 1e-8);
  EXPECT_FALSE(QuantizeUniform(*table, 0).ok());
  EXPECT_FALSE(QuantizeUniform(*table, 17).ok());
  // Packed 4-bit codes approach 8x as the per-dimension range overhead
  // amortizes over rows; small tables pay it visibly.
  EXPECT_NEAR(CompressionRatio(4, 1u << 20, 8), 8.0, 0.01);
  EXPECT_LT(CompressionRatio(4, 10, 8), 8.0);
}

TEST(QuantizeTest, PreservesKeysAndShape) {
  auto table = SmallTable();
  auto compressed = QuantizeUniform(*table, 8).value();
  EXPECT_EQ(compressed->keys(), table->keys());
  EXPECT_EQ(compressed->dim(), table->dim());
}

TEST(ReconstructionMseTest, Validation) {
  auto table = SmallTable();
  EmbeddingTableMetadata metadata;
  metadata.name = "other";
  auto other =
      EmbeddingTable::Create(metadata, {"a"}, {1.0f, 2.0f}, 2).value();
  EXPECT_FALSE(ReconstructionMse(*table, *other).ok());
  EXPECT_DOUBLE_EQ(ReconstructionMse(*table, *table).value(), 0.0);
}

}  // namespace
}  // namespace mlfs
