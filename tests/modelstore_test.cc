#include "modelstore/model_registry.h"

#include <gtest/gtest.h>

#include "monitoring/alerting.h"

namespace mlfs {
namespace {

EmbeddingTablePtr TinyTable(const std::string& name) {
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  return EmbeddingTable::Create(metadata, {"a", "b"}, {1, 2, 3, 4}, 2)
      .value();
}

ModelRecord BasicModel(const std::string& name,
                       const std::string& embedding_ref) {
  ModelRecord record;
  record.name = name;
  record.task = "classification";
  record.embedding_refs = {embedding_ref};
  record.feature_refs = {"user_trip_rate@v1"};
  record.metrics["accuracy"] = 0.9;
  record.weights = {0.1, 0.2, 0.3};
  return record;
}

TEST(ModelRegistryTest, RegisterVersionsAndChecksum) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Register(BasicModel("ranker", "emb@v1"), Hours(1))
                .value(), 1);
  EXPECT_EQ(registry.Register(BasicModel("ranker", "emb@v2"), Hours(2))
                .value(), 2);
  auto latest = registry.Get("ranker").value();
  EXPECT_EQ(latest.version, 2);
  EXPECT_EQ(latest.trained_at, Hours(2));
  EXPECT_NE(latest.weights_checksum, 0u);
  EXPECT_EQ(latest.VersionedName(), "ranker@v2");
  EXPECT_EQ(registry.GetVersion("ranker", 1).value().embedding_refs[0],
            "emb@v1");
  EXPECT_TRUE(registry.Get("nope").status().IsNotFound());
  EXPECT_TRUE(registry.GetVersion("ranker", 5).status().IsNotFound());
  EXPECT_FALSE(registry.Register(ModelRecord{}, 0).ok());
  EXPECT_EQ(registry.num_models(), 1u);
}

TEST(ModelRegistryTest, VersionedRefParsing) {
  EXPECT_EQ(ParseVersionedRef("emb@v3"), (VersionedRef{"emb", 3}));
  EXPECT_EQ(ParseVersionedRef("emb"), (VersionedRef{"emb", 0}));
  EXPECT_EQ(ParseVersionedRef("emb@vx"), (VersionedRef{"emb@vx", 0}));
  EXPECT_TRUE(ParseVersionedRef("emb@v3").pinned());
  EXPECT_FALSE(ParseVersionedRef("emb").pinned());
}

TEST(ModelRegistryTest, DetectsEmbeddingVersionSkew) {
  EmbeddingStore embeddings;
  ASSERT_TRUE(embeddings.Register(TinyTable("emb"), Hours(1)).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(BasicModel("ranker", "emb@v1"), Hours(1))
                  .ok());
  // No skew yet.
  EXPECT_TRUE(registry.CheckEmbeddingSkew(embeddings).value().skews.empty());

  // Embedding updated; model still pinned to v1.
  ASSERT_TRUE(embeddings.Register(TinyTable("emb"), Hours(2)).ok());
  auto report = registry.CheckEmbeddingSkew(embeddings).value();
  ASSERT_EQ(report.skews.size(), 1u);
  EXPECT_TRUE(report.dangling.empty());
  EXPECT_EQ(report.skews[0].model, "ranker@v1");
  EXPECT_EQ(report.skews[0].embedding, "emb");
  EXPECT_EQ(report.skews[0].pinned_version, 1);
  EXPECT_EQ(report.skews[0].latest_version, 2);
  EXPECT_EQ(report.skews[0].lag(), 1);

  // Retraining against v2 clears the skew.
  ASSERT_TRUE(registry.Register(BasicModel("ranker", "emb@v2"), Hours(3))
                  .ok());
  EXPECT_TRUE(registry.CheckEmbeddingSkew(embeddings).value().skews.empty());
}

TEST(ModelRegistryTest, SkewReportsUnpinnedRefsAsDangling) {
  // An unpinned ref is a finding, not an error aborting the whole scan:
  // skew elsewhere must still be detected.
  EmbeddingStore embeddings;
  ASSERT_TRUE(embeddings.Register(TinyTable("emb"), Hours(1)).ok());
  ASSERT_TRUE(embeddings.Register(TinyTable("emb"), Hours(2)).ok());
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(BasicModel("ranker", "emb"), Hours(1)).ok());
  ASSERT_TRUE(registry.Register(BasicModel("fraud", "emb@v1"), Hours(1)).ok());
  auto report = registry.CheckEmbeddingSkew(embeddings).value();
  ASSERT_EQ(report.dangling.size(), 1u);
  EXPECT_EQ(report.dangling[0].model, "ranker@v1");
  EXPECT_EQ(report.dangling[0].ref, "emb");
  ASSERT_EQ(report.skews.size(), 1u);
  EXPECT_EQ(report.skews[0].model, "fraud@v1");
}

TEST(ModelRegistryTest, SkewReportsUnresolvableRefsAsDangling) {
  EmbeddingStore embeddings;
  ASSERT_TRUE(embeddings.Register(TinyTable("emb"), Hours(1)).ok());
  ModelRegistry registry;
  // Pinned to a version the store never had, and to a name it doesn't know.
  ASSERT_TRUE(registry.Register(BasicModel("ranker", "emb@v9"), Hours(1)).ok());
  ASSERT_TRUE(registry.Register(BasicModel("eta", "ghost@v1"), Hours(1)).ok());
  auto report = registry.CheckEmbeddingSkew(embeddings).value();
  EXPECT_TRUE(report.skews.empty());
  ASSERT_EQ(report.dangling.size(), 2u);
}

TEST(ModelRegistryTest, SkewDeduplicatesRepeatedRefs) {
  // A model listing the same pinned ref twice (e.g. two towers sharing an
  // embedding) must produce one skew row, not two.
  EmbeddingStore embeddings;
  ASSERT_TRUE(embeddings.Register(TinyTable("emb"), Hours(1)).ok());
  ASSERT_TRUE(embeddings.Register(TinyTable("emb"), Hours(2)).ok());
  ModelRegistry registry;
  ModelRecord record = BasicModel("ranker", "emb@v1");
  record.embedding_refs = {"emb@v1", "emb@v1", "emb"};
  ASSERT_TRUE(registry.Register(std::move(record), Hours(1)).ok());
  auto report = registry.CheckEmbeddingSkew(embeddings).value();
  ASSERT_EQ(report.skews.size(), 1u);
  EXPECT_EQ(report.skews[0].pinned_version, 1);
  ASSERT_EQ(report.dangling.size(), 1u);  // "emb" once, despite the dup scan.
  EXPECT_EQ(report.dangling[0].ref, "emb");
}

TEST(ModelRegistryTest, ConsumersOfEmbedding) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(BasicModel("ranker", "emb@v1"), 0).ok());
  ASSERT_TRUE(registry.Register(BasicModel("fraud", "emb@v1"), 0).ok());
  ASSERT_TRUE(registry.Register(BasicModel("eta", "other@v1"), 0).ok());
  auto consumers = registry.ConsumersOfEmbedding("emb");
  EXPECT_EQ(consumers.size(), 2u);
  EXPECT_EQ(registry.ConsumersOfEmbedding("unused").size(), 0u);
  EXPECT_EQ(registry.ListLatest().size(), 3u);
}

TEST(AlertBusTest, EmitAndQuery) {
  AlertBus bus;
  bus.Emit({Hours(1), "drift:f1", AlertSeverity::kWarning, "psi high"});
  bus.Emit({Hours(2), "skew:m1", AlertSeverity::kCritical, "version lag"});
  bus.Emit({Hours(3), "drift:f2", AlertSeverity::kInfo, "checked"});
  EXPECT_EQ(bus.size(), 3u);
  EXPECT_EQ(bus.WithPrefix("drift:").size(), 2u);
  EXPECT_EQ(bus.CountAtLeast(AlertSeverity::kWarning), 2u);
  EXPECT_EQ(bus.CountAtLeast(AlertSeverity::kCritical), 1u);
  EXPECT_NE(bus.All()[1].ToString().find("CRITICAL"), std::string::npos);
  bus.Clear();
  EXPECT_EQ(bus.size(), 0u);
}

}  // namespace
}  // namespace mlfs
