// Randomized property-style tests: encode -> decode is the identity for
// every FeatureType, for random Values, Schemas, and Rows. All randomness
// flows through fixed-seed Rng so failures reproduce exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"

namespace mlfs {
namespace {

constexpr uint64_t kSeed = 0xfeedbeef12345678ULL;

// Field-eligible types (kNull is a value state, not a column type).
const FeatureType kColumnTypes[] = {
    FeatureType::kBool,      FeatureType::kInt64,  FeatureType::kDouble,
    FeatureType::kString,    FeatureType::kTimestamp,
    FeatureType::kEmbedding,
};

std::string RandomString(Rng* rng) {
  size_t len = rng->Uniform(24);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(256)));  // Binary-safe.
  }
  return s;
}

std::vector<float> RandomEmbedding(Rng* rng) {
  size_t dim = rng->Uniform(33);  // Includes dim 0.
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

Value RandomValueOfType(Rng* rng, FeatureType type) {
  switch (type) {
    case FeatureType::kNull:
      return Value::Null();
    case FeatureType::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
    case FeatureType::kInt64:
      return Value::Int64(rng->UniformInt(
          std::numeric_limits<int64_t>::min() / 2,
          std::numeric_limits<int64_t>::max() / 2));
    case FeatureType::kDouble:
      return Value::Double(rng->Gaussian(0.0, 1e6));
    case FeatureType::kString:
      return Value::String(RandomString(rng));
    case FeatureType::kTimestamp:
      return Value::Time(rng->UniformInt(kMinTimestamp + 1,
                                         kMaxTimestamp - 1));
    case FeatureType::kEmbedding:
      return Value::Embedding(RandomEmbedding(rng));
  }
  return Value::Null();
}

void ExpectValueRoundTrips(const Value& v) {
  Encoder enc;
  enc.PutValue(v);
  Decoder dec(enc.buffer());
  auto got = dec.GetValue();
  ASSERT_TRUE(got.ok()) << got.status() << " for " << v.ToString();
  EXPECT_EQ(*got, v) << v.ToString();
  EXPECT_TRUE(dec.AtEnd());
}

TEST(SerdePropertyTest, RandomValuesOfEveryTypeRoundTrip) {
  Rng rng(kSeed);
  const FeatureType all_types[] = {
      FeatureType::kNull,      FeatureType::kBool,
      FeatureType::kInt64,     FeatureType::kDouble,
      FeatureType::kString,    FeatureType::kTimestamp,
      FeatureType::kEmbedding,
  };
  for (FeatureType type : all_types) {
    for (int i = 0; i < 300; ++i) {
      ExpectValueRoundTrips(RandomValueOfType(&rng, type));
    }
  }
}

TEST(SerdePropertyTest, EdgeValuesRoundTrip) {
  ExpectValueRoundTrips(Value::Int64(std::numeric_limits<int64_t>::min()));
  ExpectValueRoundTrips(Value::Int64(std::numeric_limits<int64_t>::max()));
  ExpectValueRoundTrips(Value::Double(0.0));
  ExpectValueRoundTrips(
      Value::Double(std::numeric_limits<double>::infinity()));
  ExpectValueRoundTrips(
      Value::Double(-std::numeric_limits<double>::infinity()));
  ExpectValueRoundTrips(
      Value::Double(std::numeric_limits<double>::denorm_min()));
  ExpectValueRoundTrips(Value::String(""));
  ExpectValueRoundTrips(Value::String(std::string(4096, '\0')));
  ExpectValueRoundTrips(Value::Embedding({}));
  ExpectValueRoundTrips(Value::Time(kMinTimestamp));
  ExpectValueRoundTrips(Value::Time(kMaxTimestamp));
}

TEST(SerdePropertyTest, ConcatenatedValueStreamsRoundTrip) {
  Rng rng(kSeed ^ 0x1);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.Uniform(20);
    std::vector<Value> values;
    Encoder enc;
    for (size_t i = 0; i < n; ++i) {
      FeatureType type = kColumnTypes[rng.Uniform(std::size(kColumnTypes))];
      values.push_back(RandomValueOfType(&rng, type));
      enc.PutValue(values.back());
    }
    Decoder dec(enc.buffer());
    for (const Value& expected : values) {
      auto got = dec.GetValue();
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, expected);
    }
    EXPECT_TRUE(dec.AtEnd());
  }
}

SchemaPtr RandomSchema(Rng* rng) {
  size_t num_fields = 1 + rng->Uniform(8);
  std::vector<FieldSpec> fields;
  for (size_t i = 0; i < num_fields; ++i) {
    FieldSpec spec;
    spec.name = "f" + std::to_string(i);
    spec.type = kColumnTypes[rng->Uniform(std::size(kColumnTypes))];
    spec.nullable = rng->Bernoulli(0.5);
    fields.push_back(std::move(spec));
  }
  return Schema::Create(std::move(fields)).value();
}

TEST(SerdePropertyTest, RandomSchemasRoundTrip) {
  Rng rng(kSeed ^ 0x2);
  for (int trial = 0; trial < 100; ++trial) {
    SchemaPtr schema = RandomSchema(&rng);
    Encoder enc;
    enc.PutSchema(*schema);
    Decoder dec(enc.buffer());
    auto got = dec.GetSchema();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(**got, *schema) << schema->ToString();
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(SerdePropertyTest, RandomRowsRoundTrip) {
  Rng rng(kSeed ^ 0x3);
  for (int trial = 0; trial < 200; ++trial) {
    SchemaPtr schema = RandomSchema(&rng);
    std::vector<Value> values;
    for (size_t i = 0; i < schema->num_fields(); ++i) {
      const FieldSpec& spec = schema->field(i);
      if (spec.nullable && rng.Bernoulli(0.2)) {
        values.push_back(Value::Null());
      } else {
        values.push_back(RandomValueOfType(&rng, spec.type));
      }
    }
    Row row = Row::Create(schema, std::move(values)).value();
    Encoder enc;
    enc.PutRow(row);
    Decoder dec(enc.buffer());
    auto got = dec.GetRow(schema);
    ASSERT_TRUE(got.ok()) << got.status() << " schema "
                          << schema->ToString();
    EXPECT_EQ(*got, row);
    EXPECT_TRUE(dec.AtEnd());
  }
}

}  // namespace
}  // namespace mlfs
