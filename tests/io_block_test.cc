#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "io/block_cache.h"
#include "io/block_file.h"
#include "io/readahead.h"

namespace mlfs {
namespace {

constexpr uint32_t kMagic = 0x54534554;  // "TEST"
constexpr uint32_t kVersion = 3;

class IoBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("mlfs_io_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    FailpointRegistry::Instance().DisarmAll();
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

// --- BlockFile -----------------------------------------------------------

TEST_F(IoBlockTest, SealRoundTripsThroughFromBytes) {
  const std::string body = "the quick brown fox";
  std::string blob = BlockFile::Seal(kMagic, kVersion, body);
  EXPECT_EQ(blob.size(),
            BlockFile::kPreludeBytes + body.size() + BlockFile::kTrailerBytes);
  auto file = BlockFile::FromBytes(kMagic, kVersion, blob, "test blob");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->body(), body);
  EXPECT_EQ((*file)->data(), std::string_view(blob));
  EXPECT_FALSE((*file)->mapped());
}

TEST_F(IoBlockTest, EveryTruncationIsCorruptionNeverUB) {
  std::string blob = BlockFile::Seal(kMagic, kVersion, "truncation sweep body");
  for (size_t len = 0; len < blob.size(); ++len) {
    auto file =
        BlockFile::FromBytes(kMagic, kVersion, blob.substr(0, len), "trunc");
    ASSERT_FALSE(file.ok()) << "prefix of " << len << " bytes must not parse";
    EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  }
}

TEST_F(IoBlockTest, EverySingleBitFlipIsDetected) {
  std::string blob = BlockFile::Seal(kMagic, kVersion, "bit flip sweep body");
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = blob;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto file = BlockFile::FromBytes(kMagic, kVersion, corrupt, "flip");
      ASSERT_FALSE(file.ok())
          << "flip of bit " << bit << " in byte " << byte << " undetected";
      EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_F(IoBlockTest, WrongMagicAndVersionAreRejected) {
  std::string blob = BlockFile::Seal(kMagic, kVersion, "body");
  EXPECT_FALSE(BlockFile::FromBytes(kMagic + 1, kVersion, blob, "m").ok());
  EXPECT_FALSE(BlockFile::FromBytes(kMagic, kVersion + 1, blob, "v").ok());
}

TEST_F(IoBlockTest, SpillWritesValidatesAndRemovesOnDestroy) {
  const std::string body(4096, 'x');
  const std::string path = dir_ + "/spill.blk";
  {
    auto file = BlockFile::Spill(kMagic, kVersion,
                                 BlockFile::Seal(kMagic, kVersion, body), path,
                                 /*remove_file_on_destroy=*/true, "scratch");
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    EXPECT_TRUE((*file)->mapped());
    EXPECT_EQ((*file)->path(), path);
    EXPECT_EQ((*file)->body(), body);
    EXPECT_TRUE(std::filesystem::exists(path));
    // Readahead plumbing on a mapped file must be safe over any range.
    (*file)->AdviseWillNeed(0, (*file)->size());
    (*file)->TouchPages(0, (*file)->size());
    (*file)->AdviseWillNeed((*file)->size() + 10, 5);  // Out of range: no-op.
  }
  EXPECT_FALSE(std::filesystem::exists(path)) << "scratch file must be removed";
}

TEST_F(IoBlockTest, SpillKeepsCheckpointFilesOnDestroy) {
  const std::string path = dir_ + "/keep.blk";
  {
    auto file = BlockFile::Spill(kMagic, kVersion,
                                 BlockFile::Seal(kMagic, kVersion, "keep me"),
                                 path, /*remove_file_on_destroy=*/false, "ck");
    ASSERT_TRUE(file.ok());
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  auto reopened = BlockFile::Map(kMagic, kVersion, path,
                                 /*remove_file_on_destroy=*/false, "ck");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->body(), "keep me");
}

TEST_F(IoBlockTest, MapOfCorruptFileFailsAndSpillCleansUp) {
  const std::string path = dir_ + "/bad.blk";
  std::string blob = BlockFile::Seal(kMagic, kVersion, "soon corrupt");
  blob[BlockFile::kPreludeBytes] ^= 0x40;  // Flip a body bit pre-spill.
  auto file = BlockFile::Spill(kMagic, kVersion, blob, path, true, "bad");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(std::filesystem::exists(path))
      << "failed spill must not leave a file behind";
  EXPECT_EQ(BlockFile::Map(kMagic, kVersion, dir_ + "/absent.blk", false, "x")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(IoBlockTest, IoLoadFailpointDegradesMapCleanly) {
  const std::string path = dir_ + "/fp.blk";
  ASSERT_TRUE(BlockFile::Spill(kMagic, kVersion,
                               BlockFile::Seal(kMagic, kVersion, "fp body"),
                               path, /*remove_file_on_destroy=*/false, "fp")
                  .ok());
  {
    ScopedFailpoint fp("io.load",
                       {.status = Status::Internal("injected io fault")});
    auto file = BlockFile::Map(kMagic, kVersion, path, false, "fp");
    ASSERT_FALSE(file.ok());
    EXPECT_EQ(file.status().code(), StatusCode::kInternal);
  }
  // Disarmed: the same open succeeds — the fault injected no lasting state.
  EXPECT_TRUE(BlockFile::Map(kMagic, kVersion, path, false, "fp").ok());
}

// --- BlockCache ----------------------------------------------------------

BlockCache::Payload MakePayload(int tag) {
  return std::make_shared<const int>(tag);
}

int Tag(const BlockCache::Payload& p) {
  return *static_cast<const int*>(p.get());
}

TEST_F(IoBlockTest, CacheEvictsMinStampFirst) {
  BlockCache cache(/*num_blocks=*/4, /*capacity=*/2);
  cache.Insert(0, MakePayload(0), 100, cache.BeginBatch());
  cache.Insert(1, MakePayload(1), 100, cache.BeginBatch());
  EXPECT_EQ(cache.resident(), 2u);
  // Block 0 holds the oldest stamp: inserting 2 evicts it.
  cache.Insert(2, MakePayload(2), 100, cache.BeginBatch());
  EXPECT_EQ(cache.Peek(0), nullptr);
  EXPECT_NE(cache.Peek(1), nullptr);
  EXPECT_NE(cache.Peek(2), nullptr);
  // Touching 1 refreshes it; the next insert evicts 2 instead.
  cache.Touch(1, cache.BeginBatch());
  cache.Insert(3, MakePayload(3), 100, cache.BeginBatch());
  EXPECT_NE(cache.Peek(1), nullptr);
  EXPECT_EQ(cache.Peek(2), nullptr);
  const BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.promotions, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_blocks, 2u);
  EXPECT_EQ(stats.resident_bytes, 200u);
}

TEST_F(IoBlockTest, PinnedPayloadSurvivesEviction) {
  BlockCache cache(/*num_blocks=*/3, /*capacity=*/1);
  cache.Insert(0, MakePayload(7), 10, cache.BeginBatch());
  auto& pins = BlockCache::ThreadPins();
  pins.clear();
  BlockCache::Payload p = cache.Touch(0, cache.BeginBatch());
  ASSERT_NE(p, nullptr);
  pins.push_back(p);
  const int* interior = static_cast<const int*>(p.get());
  p.reset();  // Only the pin set holds it now.
  // Evict block 0 by inserting another block into the 1-slot cache.
  cache.Insert(1, MakePayload(8), 10, cache.BeginBatch());
  ASSERT_EQ(cache.Peek(0), nullptr);
  // The evicted payload is still owned by the pin set: reading through the
  // interior pointer is valid (ASan would flag a use-after-free here).
  EXPECT_EQ(*interior, 7);
  pins.clear();
}

TEST_F(IoBlockTest, CapacityFlapEvictsAndRefills) {
  BlockCache cache(/*num_blocks=*/8, /*capacity=*/8);
  for (size_t b = 0; b < 8; ++b) {
    cache.Insert(b, MakePayload(static_cast<int>(b)), 1, cache.BeginBatch());
  }
  EXPECT_EQ(cache.resident(), 8u);
  // Shrink: the 5 lowest-stamp blocks (0..4) demote immediately.
  cache.SetCapacity(3);
  EXPECT_EQ(cache.resident(), 3u);
  for (size_t b = 0; b < 5; ++b) EXPECT_EQ(cache.Peek(b), nullptr);
  for (size_t b = 5; b < 8; ++b) {
    ASSERT_NE(cache.Peek(b), nullptr);
    EXPECT_EQ(Tag(cache.Peek(b)), static_cast<int>(b));
  }
  // Zero: everything demotes, and inserts become no-ops.
  cache.SetCapacity(0);
  EXPECT_EQ(cache.resident(), 0u);
  EXPECT_FALSE(cache.Insert(0, MakePayload(0), 1, cache.BeginBatch()));
  EXPECT_EQ(cache.resident(), 0u);
  // Grow again: future inserts fill the new room.
  cache.SetCapacity(6);
  for (size_t b = 0; b < 8; ++b) {
    cache.Insert(b, MakePayload(static_cast<int>(b)), 1, cache.BeginBatch());
  }
  EXPECT_EQ(cache.resident(), 6u);
  EXPECT_EQ(cache.stats().capacity_blocks, 6u);
  // Capacity above the block universe clamps.
  cache.SetCapacity(100);
  EXPECT_EQ(cache.capacity(), 8u);
}

TEST_F(IoBlockTest, SeedingDoesNotCountPromotions) {
  BlockCache cache(4, 4);
  cache.Insert(0, MakePayload(0), 1, cache.BeginBatch(),
               /*count_promotion=*/false);
  cache.Insert(1, MakePayload(1), 1, cache.BeginBatch());
  EXPECT_EQ(cache.stats().promotions, 1u);
  // Re-inserting a resident block is not a promotion either.
  EXPECT_FALSE(cache.Insert(1, MakePayload(9), 1, cache.BeginBatch()));
  EXPECT_EQ(cache.stats().promotions, 1u);
  EXPECT_EQ(Tag(cache.Peek(1)), 1) << "resident payload must not be replaced";
}

TEST_F(IoBlockTest, ResidentSnapshotListsBlocksInOrder) {
  BlockCache cache(5, 3);
  cache.Insert(4, MakePayload(4), 1, cache.BeginBatch());
  cache.Insert(1, MakePayload(1), 1, cache.BeginBatch());
  auto snapshot = cache.ResidentSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, 1u);
  EXPECT_EQ(snapshot[1].first, 4u);
  EXPECT_EQ(Tag(snapshot[0].second), 1);
  EXPECT_EQ(Tag(snapshot[1].second), 4);
}

// --- ReadaheadScheduler --------------------------------------------------

ReadaheadOptions EnabledReadahead(size_t max_in_flight = 8) {
  ReadaheadOptions options;
  options.enabled = true;
  options.max_in_flight = max_in_flight;
  return options;
}

TEST_F(IoBlockTest, PrefetchConsumeIsAHit) {
  ReadaheadScheduler scheduler(EnabledReadahead());
  scheduler.Prefetch(42, [] {
    return std::static_pointer_cast<const void>(
        std::make_shared<const int>(1042));
  });
  ReadaheadScheduler::Payload p = scheduler.Consume(42);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*static_cast<const int*>(p.get()), 1042);
  const ReadaheadStats stats = scheduler.stats();
  EXPECT_EQ(stats.issued, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  // A second consume of the same key is a miss: the payload was claimed.
  EXPECT_EQ(scheduler.Consume(42), nullptr);
  EXPECT_EQ(scheduler.stats().misses, 1u);
}

TEST_F(IoBlockTest, ConsumeWithoutPrefetchIsAMiss) {
  ReadaheadScheduler scheduler(EnabledReadahead());
  EXPECT_EQ(scheduler.Consume(7), nullptr);
  EXPECT_EQ(scheduler.stats().misses, 1u);
  EXPECT_EQ(scheduler.stats().hits, 0u);
}

TEST_F(IoBlockTest, DisabledSchedulerNoOpsWithoutCounting) {
  ReadaheadScheduler scheduler(ReadaheadOptions{});
  EXPECT_FALSE(scheduler.enabled());
  scheduler.Prefetch(1, []() -> ReadaheadScheduler::Payload {
    ADD_FAILURE() << "disabled scheduler must not run jobs";
    return nullptr;
  });
  EXPECT_EQ(scheduler.Consume(1), nullptr);
  const ReadaheadStats stats = scheduler.stats();
  EXPECT_EQ(stats.issued, 0u);
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  scheduler.Drain();
}

TEST_F(IoBlockTest, DuplicatePrefetchesDedupe) {
  ReadaheadScheduler scheduler(EnabledReadahead());
  auto job = [] {
    return std::static_pointer_cast<const void>(std::make_shared<const int>(5));
  };
  scheduler.Prefetch(9, job);
  scheduler.Drain();
  scheduler.Prefetch(9, job);  // Already materialized: deduped.
  EXPECT_EQ(scheduler.stats().issued, 1u);
  EXPECT_EQ(scheduler.stats().deduped, 1u);
  EXPECT_NE(scheduler.Consume(9), nullptr);
}

TEST_F(IoBlockTest, UnconsumedPrefetchesAgeOutAsWasted) {
  ReadaheadScheduler scheduler(EnabledReadahead(/*max_in_flight=*/256));
  // Overflow the bounded ready FIFO so the oldest results age out.
  for (uint64_t key = 0; key < 80; ++key) {
    scheduler.Prefetch(key, [key] {
      return std::static_pointer_cast<const void>(
          std::make_shared<const uint64_t>(key));
    });
    scheduler.Drain();  // Serialize so drops are deterministic-ish.
  }
  const ReadaheadStats stats = scheduler.stats();
  EXPECT_EQ(stats.issued, 80u);
  EXPECT_GT(stats.wasted, 0u);
  // The newest result is still parked; the oldest aged out.
  EXPECT_NE(scheduler.Consume(79), nullptr);
  EXPECT_EQ(scheduler.Consume(0), nullptr);
}

TEST_F(IoBlockTest, ReadaheadFailpointSkipsPrefetchAndCountsFault) {
  ReadaheadScheduler scheduler(EnabledReadahead());
  {
    ScopedFailpoint fp("io.readahead",
                       {.status = Status::Internal("injected readahead")});
    scheduler.Prefetch(3, []() -> ReadaheadScheduler::Payload {
      ADD_FAILURE() << "faulted prefetch must not run";
      return nullptr;
    });
  }
  EXPECT_EQ(scheduler.stats().faults, 1u);
  EXPECT_EQ(scheduler.stats().issued, 0u);
  // The demand path is untouched: consume misses and the caller loads.
  EXPECT_EQ(scheduler.Consume(3), nullptr);
  EXPECT_EQ(scheduler.stats().misses, 1u);
}

TEST_F(IoBlockTest, InFlightLimitDropsExcessPrefetches) {
  ReadaheadScheduler scheduler(EnabledReadahead(/*max_in_flight=*/1));
  std::atomic<bool> release{false};
  scheduler.Prefetch(1, [&release]() -> ReadaheadScheduler::Payload {
    while (!release.load()) {
    }
    return std::static_pointer_cast<const void>(std::make_shared<const int>(1));
  });
  scheduler.Prefetch(2, []() -> ReadaheadScheduler::Payload {
    ADD_FAILURE() << "over-limit prefetch must be dropped, not queued";
    return nullptr;
  });
  EXPECT_EQ(scheduler.stats().dropped, 1u);
  release.store(true);
  EXPECT_NE(scheduler.Consume(1), nullptr);
  EXPECT_EQ(scheduler.Consume(2), nullptr);  // Dropped: a miss.
}

}  // namespace
}  // namespace mlfs
