#include <gtest/gtest.h>

#include "expr/lexer.h"
#include "expr/parser.h"

namespace mlfs {
namespace {

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("a + 42 * 3.5 >= 'x'").value();
  ASSERT_EQ(toks.size(), 8u);  // Incl. kEnd.
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "+");
  EXPECT_EQ(toks[2].type, TokenType::kIntLiteral);
  EXPECT_EQ(toks[2].int_value, 42);
  EXPECT_EQ(toks[4].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(toks[4].double_value, 3.5);
  EXPECT_EQ(toks[5].text, ">=");
  EXPECT_EQ(toks[6].type, TokenType::kStringLiteral);
  EXPECT_EQ(toks[6].text, "x");
  EXPECT_EQ(toks[7].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto toks = Tokenize("AND or Not TRUE false NULL").value();
  EXPECT_EQ(toks[0].type, TokenType::kKeywordAnd);
  EXPECT_EQ(toks[1].type, TokenType::kKeywordOr);
  EXPECT_EQ(toks[2].type, TokenType::kKeywordNot);
  EXPECT_EQ(toks[3].type, TokenType::kKeywordTrue);
  EXPECT_EQ(toks[4].type, TokenType::kKeywordFalse);
  EXPECT_EQ(toks[5].type, TokenType::kKeywordNull);
}

TEST(LexerTest, ScientificNotation) {
  auto toks = Tokenize("1e3 2.5E-2").value();
  EXPECT_DOUBLE_EQ(toks[0].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[1].double_value, 0.025);
}

TEST(LexerTest, StringEscapes) {
  auto toks = Tokenize(R"('a\'b\n' "c\"d")").value();
  EXPECT_EQ(toks[0].text, "a'b\n");
  EXPECT_EQ(toks[1].text, "c\"d");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a = b").ok());   // Single '='.
  EXPECT_FALSE(Tokenize("a ! b").ok());   // Bare '!'.
  EXPECT_FALSE(Tokenize("a # b").ok());   // Unknown char.
  EXPECT_FALSE(Tokenize("1e").ok());      // Bad exponent.
  EXPECT_FALSE(Tokenize("'bad\\q'").ok());  // Unknown escape.
}

TEST(ParserTest, Precedence) {
  // * binds tighter than +; comparison loosest before logic.
  auto e = ParseExpr("a + b * c").value();
  EXPECT_EQ(e->ToString(), "(a + (b * c))");

  e = ParseExpr("a * b + c").value();
  EXPECT_EQ(e->ToString(), "((a * b) + c)");

  e = ParseExpr("a + b > c - d").value();
  EXPECT_EQ(e->ToString(), "((a + b) > (c - d))");

  e = ParseExpr("a > 1 and b < 2 or c == 3").value();
  EXPECT_EQ(e->ToString(), "(((a > 1) and (b < 2)) or (c == 3))");

  e = ParseExpr("not a and b").value();
  EXPECT_EQ(e->ToString(), "((not a) and b)");
}

TEST(ParserTest, Associativity) {
  EXPECT_EQ(ParseExpr("a - b - c").value()->ToString(), "((a - b) - c)");
  EXPECT_EQ(ParseExpr("a / b / c").value()->ToString(), "((a / b) / c)");
}

TEST(ParserTest, Parentheses) {
  EXPECT_EQ(ParseExpr("(a + b) * c").value()->ToString(), "((a + b) * c)");
  EXPECT_EQ(ParseExpr("((a))").value()->ToString(), "a");
}

TEST(ParserTest, UnaryMinus) {
  EXPECT_EQ(ParseExpr("-a * b").value()->ToString(), "((-a) * b)");
  EXPECT_EQ(ParseExpr("a - -b").value()->ToString(), "(a - (-b))");
}

TEST(ParserTest, FunctionCalls) {
  auto e = ParseExpr("coalesce(rating, 4.0, avg_rating)").value();
  EXPECT_EQ(e->kind(), Expr::Kind::kCall);
  EXPECT_EQ(e->name(), "coalesce");
  EXPECT_EQ(e->args().size(), 3u);

  e = ParseExpr("f()").value();
  EXPECT_EQ(e->args().size(), 0u);

  e = ParseExpr("min(a, max(b, c))").value();
  EXPECT_EQ(e->ToString(), "min(a, max(b, c))");
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(ParseExpr("true").value()->literal(), Value::Bool(true));
  EXPECT_EQ(ParseExpr("null").value()->literal(), Value::Null());
  EXPECT_EQ(ParseExpr("'hi'").value()->literal(), Value::String("hi"));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("a +").ok());
  EXPECT_FALSE(ParseExpr("(a + b").ok());
  EXPECT_FALSE(ParseExpr("a b").ok());
  EXPECT_FALSE(ParseExpr("f(a,").ok());
  EXPECT_FALSE(ParseExpr("and a").ok());
}

TEST(ParserTest, ReferencedColumns) {
  auto e = ParseExpr("a + b * coalesce(a, c) - 4").value();
  EXPECT_EQ(e->ReferencedColumns(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* cases[] = {
      "((a + b) * c)", "coalesce(x, 1, 2)", "((not p) or (q and r))",
      "(trips_7d / (trips_30d + 1))",
  };
  for (const char* src : cases) {
    auto e1 = ParseExpr(src).value();
    auto e2 = ParseExpr(e1->ToString()).value();
    EXPECT_EQ(e1->ToString(), e2->ToString()) << src;
  }
}

}  // namespace
}  // namespace mlfs
