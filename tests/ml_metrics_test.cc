#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace mlfs {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 0}, {1, 0, 0, 0}).value(), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({1}, {1}).value(), 1.0);
  EXPECT_FALSE(Accuracy({}, {}).ok());
  EXPECT_FALSE(Accuracy({1}, {1, 2}).ok());
}

TEST(PrfTest, KnownValues) {
  // truth:    1 1 1 0 0
  // predict:  1 0 1 1 0   -> tp=2 fp=1 fn=1
  auto prf = PrecisionRecallF1({1, 1, 1, 0, 0}, {1, 0, 1, 1, 0}, 1).value();
  EXPECT_DOUBLE_EQ(prf.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(prf.recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(prf.f1, 2.0 / 3.0);
}

TEST(PrfTest, DegenerateCases) {
  // Never predicts the class: precision 0 by convention.
  auto prf = PrecisionRecallF1({1, 1}, {0, 0}, 1).value();
  EXPECT_EQ(prf.precision, 0.0);
  EXPECT_EQ(prf.recall, 0.0);
  EXPECT_EQ(prf.f1, 0.0);
}

TEST(MacroF1Test, AveragesOverTruthClasses) {
  // Perfect on class 0, zero on class 1.
  double f1 = MacroF1({0, 0, 1, 1}, {0, 0, 0, 0}).value();
  // class0: p=0.5 r=1 f1=2/3; class1: 0. Macro = 1/3.
  EXPECT_NEAR(f1, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MacroF1({0, 1}, {0, 1}).value(), 1.0);
}

TEST(AucTest, PerfectAndRandomAndInverted) {
  std::vector<int> y = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AucRoc(y, {0.1, 0.2, 0.8, 0.9}).value(), 1.0);
  EXPECT_DOUBLE_EQ(AucRoc(y, {0.9, 0.8, 0.2, 0.1}).value(), 0.0);
  EXPECT_DOUBLE_EQ(AucRoc(y, {0.5, 0.5, 0.5, 0.5}).value(), 0.5);  // Ties.
}

TEST(AucTest, Validation) {
  EXPECT_FALSE(AucRoc({0, 0}, {0.1, 0.2}).ok());   // One class only.
  EXPECT_FALSE(AucRoc({0, 2}, {0.1, 0.2}).ok());   // Non-binary.
  EXPECT_FALSE(AucRoc({0, 1}, {0.1}).ok());
}

TEST(ChurnTest, CountsDisagreements) {
  EXPECT_DOUBLE_EQ(PredictionChurn({1, 2, 3, 4}, {1, 2, 3, 4}).value(), 0.0);
  EXPECT_DOUBLE_EQ(PredictionChurn({1, 2, 3, 4}, {1, 0, 3, 0}).value(), 0.5);
  EXPECT_FALSE(PredictionChurn({}, {}).ok());
}

}  // namespace
}  // namespace mlfs
