#include "quality/sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quality/streaming_monitor.h"

namespace mlfs {
namespace {

TEST(HllTest, Validation) {
  EXPECT_FALSE(HyperLogLog::Create(3).ok());
  EXPECT_FALSE(HyperLogLog::Create(17).ok());
  EXPECT_TRUE(HyperLogLog::Create(4).ok());
}

TEST(HllTest, EmptyIsZero) {
  auto hll = HyperLogLog::Create().value();
  EXPECT_NEAR(hll.Estimate(), 0.0, 1e-9);
}

TEST(HllTest, SmallCardinalityIsNearExact) {
  auto hll = HyperLogLog::Create(12).value();
  for (int i = 0; i < 100; ++i) hll.Add(Value::Int64(i));
  // Duplicates change nothing.
  for (int i = 0; i < 100; ++i) hll.Add(Value::Int64(i));
  EXPECT_NEAR(hll.Estimate(), 100.0, 3.0);
}

class HllAccuracyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HllAccuracyTest, WithinTheoreticalError) {
  const size_t truth = GetParam();
  auto hll = HyperLogLog::Create(12).value();
  for (size_t i = 0; i < truth; ++i) {
    hll.Add(Value::String("item_" + std::to_string(i)));
  }
  // 1.04/sqrt(4096) ~ 1.6% standard error; allow 5 sigma.
  double tolerance = 5 * 1.04 / std::sqrt(4096.0) * truth;
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(truth),
              std::max(tolerance, 10.0));
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracyTest,
                         ::testing::Values(1000, 10000, 100000, 500000));

TEST(HllTest, MergeEqualsUnion) {
  auto a = HyperLogLog::Create(12).value();
  auto b = HyperLogLog::Create(12).value();
  for (int i = 0; i < 5000; ++i) a.Add(Value::Int64(i));
  for (int i = 2500; i < 7500; ++i) b.Add(Value::Int64(i));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_NEAR(a.Estimate(), 7500.0, 7500 * 0.08);

  auto mismatched = HyperLogLog::Create(10).value();
  EXPECT_FALSE(a.Merge(mismatched).ok());
}

TEST(CountMinTest, Validation) {
  EXPECT_FALSE(CountMinSketch::Create(1, 4).ok());
  EXPECT_FALSE(CountMinSketch::Create(128, 0).ok());
  EXPECT_TRUE(CountMinSketch::Create(128, 4).ok());
}

TEST(CountMinTest, NeverUndercounts) {
  auto sketch = CountMinSketch::Create(256, 4).value();
  Rng rng(1);
  std::map<int64_t, uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(1000));
    sketch.Add(Value::Int64(key));
    ++truth[key];
  }
  EXPECT_EQ(sketch.total(), 20000u);
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(Value::Int64(key)), count);
  }
}

TEST(CountMinTest, HeavyHittersAccurate) {
  auto sketch = CountMinSketch::Create(2048, 4).value();
  Rng rng(2);
  ZipfDistribution zipf(10000, 1.2);
  std::vector<uint64_t> truth(10000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    size_t key = zipf.Sample(&rng);
    sketch.Add(Value::Int64(static_cast<int64_t>(key)));
    ++truth[key];
  }
  // Top keys: estimate within eps*total of truth (eps ~ 2/width).
  for (size_t key = 0; key < 10; ++key) {
    uint64_t estimate = sketch.Estimate(Value::Int64(static_cast<int64_t>(key)));
    EXPECT_GE(estimate, truth[key]);
    EXPECT_LE(estimate, truth[key] + 2 * n / 2048);
  }
  EXPECT_EQ(sketch.Estimate(Value::String("never seen")), 0u);
}

TEST(StreamingMonitorTest, Validation) {
  StreamingMonitorOptions options;
  options.reference_size = 5;
  EXPECT_FALSE(StreamingDriftMonitor::Create(options).ok());
}

TEST(StreamingMonitorTest, CalibratesThenStaysQuietOnStableStream) {
  StreamingMonitorOptions options;
  options.reference_size = 500;
  options.window_size = 200;
  options.check_every = 100;
  auto monitor = StreamingDriftMonitor::Create(options).value();
  Rng rng(3);
  int findings = 0;
  for (int i = 0; i < 5000; ++i) {
    auto finding = monitor.Observe(rng.Gaussian(10, 2), Seconds(i)).value();
    findings += finding.has_value();
  }
  EXPECT_TRUE(monitor.calibrated());
  EXPECT_LE(findings, 1);  // At most a rare false alarm.
  EXPECT_LT(monitor.outlier_rate(), 0.01);
}

TEST(StreamingMonitorTest, DetectsMidStreamShift) {
  StreamingMonitorOptions options;
  options.reference_size = 500;
  options.window_size = 200;
  options.check_every = 50;
  auto monitor = StreamingDriftMonitor::Create(options).value();
  Rng rng(4);
  std::optional<Timestamp> first_detection;
  const Timestamp shift_at = Seconds(2000);
  for (int i = 0; i < 4000; ++i) {
    double mean = (Seconds(i) >= shift_at) ? 13.0 : 10.0;
    auto finding = monitor.Observe(rng.Gaussian(mean, 2), Seconds(i)).value();
    if (finding.has_value() && !first_detection) {
      EXPECT_EQ(finding->kind, StreamingFinding::Kind::kDrift);
      first_detection = finding->at;
    }
  }
  ASSERT_TRUE(first_detection.has_value());
  EXPECT_GE(*first_detection, shift_at);
  // Detected within ~1.5 windows of the shift.
  EXPECT_LE(*first_detection, shift_at + Seconds(400));
}

TEST(StreamingMonitorTest, DetectsOutlierBurst) {
  StreamingMonitorOptions options;
  options.reference_size = 500;
  options.window_size = 100;
  options.check_every = 50;
  auto monitor = StreamingDriftMonitor::Create(options).value();
  Rng rng(5);
  bool burst_found = false;
  for (int i = 0; i < 3000; ++i) {
    // After t=2000, 20% of values are corrupted sentinels.
    double value = rng.Gaussian(10, 1);
    if (i >= 2000 && rng.Bernoulli(0.2)) value = 9999.0;
    auto finding = monitor.Observe(value, Seconds(i)).value();
    if (finding.has_value() &&
        finding->kind == StreamingFinding::Kind::kOutlierBurst) {
      burst_found = true;
      EXPECT_GT(finding->outlier_rate, 0.05);
      EXPECT_FALSE(finding->ToString().empty());
      break;
    }
  }
  EXPECT_TRUE(burst_found);
}

}  // namespace
}  // namespace mlfs
