#include "quality/stats_math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlfs {
namespace {

TEST(StatsMathTest, LogGammaKnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);       // Γ(5)=4!
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-9);
  // ln Γ(10.5) = ln(9.5 * 8.5 * ... * 0.5 * sqrt(pi)).
  double expected = 0.5 * std::log(M_PI);
  for (double k = 0.5; k <= 9.5; k += 1.0) expected += std::log(k);
  EXPECT_NEAR(LogGamma(10.5), expected, 1e-9);
}

TEST(StatsMathTest, RegularizedGammaComplementarity) {
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10)
          << "a=" << a << " x=" << x;
    }
  }
  EXPECT_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
}

TEST(StatsMathTest, GammaPForExponential) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(StatsMathTest, ChiSquareSfKnownValues) {
  // Chi-square with 1 df: P(X >= 3.841) ~ 0.05.
  EXPECT_NEAR(ChiSquareSf(3.841, 1), 0.05, 0.001);
  // 2 df: sf(x) = e^{-x/2}.
  EXPECT_NEAR(ChiSquareSf(4.0, 2), std::exp(-2.0), 1e-10);
  // 10 df: P(X >= 18.307) ~ 0.05.
  EXPECT_NEAR(ChiSquareSf(18.307, 10), 0.05, 0.001);
  EXPECT_EQ(ChiSquareSf(-1.0, 3), 1.0);
}

TEST(StatsMathTest, KsPValueBounds) {
  EXPECT_EQ(KsPValue(0.0, 100, 100), 1.0);
  EXPECT_LT(KsPValue(0.5, 1000, 1000), 1e-6);
  double p1 = KsPValue(0.1, 100, 100);
  double p2 = KsPValue(0.2, 100, 100);
  EXPECT_GT(p1, p2);  // Larger statistic, smaller p.
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p1, 1.0);
}

TEST(StatsMathTest, KsPValueMatchesTable) {
  // For large equal samples, critical D at alpha=0.05 is 1.358*sqrt(2/n).
  size_t n = 500;
  double d_crit = 1.358 * std::sqrt(2.0 / static_cast<double>(n));
  EXPECT_NEAR(KsPValue(d_crit, n, n), 0.05, 0.01);
}

TEST(StatsMathTest, NormalCdf) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

}  // namespace
}  // namespace mlfs
