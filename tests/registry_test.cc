#include "registry/registry.h"

#include <gtest/gtest.h>

#include "registry/materializer.h"
#include "registry/orchestrator.h"
#include "storage/online_store.h"

namespace mlfs {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Create({{"user_id", FeatureType::kInt64, false},
                              {"event_time", FeatureType::kTimestamp, false},
                              {"trips_7d", FeatureType::kInt64, true},
                              {"trips_30d", FeatureType::kInt64, true},
                              {"rating", FeatureType::kDouble, true}})
                  .value();
    OfflineTableOptions opt;
    opt.name = "user_activity";
    opt.schema = schema_;
    opt.entity_column = "user_id";
    opt.time_column = "event_time";
    ASSERT_TRUE(offline_.CreateTable(opt).ok());
  }

  void AddSource(int64_t user, Timestamp ts, int64_t t7, int64_t t30,
                 double rating) {
    auto table = offline_.GetTable("user_activity").value();
    ASSERT_TRUE(table
                    ->Append(Row::Create(schema_,
                                         {Value::Int64(user), Value::Time(ts),
                                          Value::Int64(t7), Value::Int64(t30),
                                          Value::Double(rating)})
                                 .value())
                    .ok());
  }

  FeatureDefinition TripRateDef() {
    FeatureDefinition def;
    def.name = "user_trip_rate";
    def.entity = "user";
    def.source_table = "user_activity";
    def.expression = "trips_7d / (trips_30d + 1)";
    def.cadence = Hours(6);
    return def;
  }

  SchemaPtr schema_;
  OfflineStore offline_;
  OnlineStore online_;
};

TEST_F(RegistryTest, PublishAssignsVersionsAndInfersTypes) {
  FeatureRegistry registry(&offline_);
  auto v1 = registry.Publish(TripRateDef(), Hours(1));
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(*v1, 1);

  auto reg = registry.Get("user_trip_rate").value();
  EXPECT_EQ(reg.output_type, FeatureType::kDouble);
  EXPECT_EQ(reg.input_columns,
            (std::vector<std::string>{"trips_30d", "trips_7d"}));
  EXPECT_EQ(reg.VersionedName(), "user_trip_rate@v1");

  // Re-publish bumps the version.
  auto def2 = TripRateDef();
  def2.expression = "trips_7d / (trips_30d + 2)";
  EXPECT_EQ(registry.Publish(def2, Hours(2)).value(), 2);
  EXPECT_EQ(registry.Get("user_trip_rate").value().version, 2);
  EXPECT_EQ(registry.GetVersion("user_trip_rate", 1).value().def.expression,
            TripRateDef().expression);
  EXPECT_TRUE(registry.GetVersion("user_trip_rate", 3).status().IsNotFound());
  EXPECT_EQ(registry.num_features(), 1u);
}

TEST_F(RegistryTest, PublishValidatesDefinitions) {
  FeatureRegistry registry(&offline_);
  auto def = TripRateDef();

  def.name = "";
  EXPECT_FALSE(registry.Publish(def, 0).ok());

  def = TripRateDef();
  def.entity = "";
  EXPECT_FALSE(registry.Publish(def, 0).ok());

  def = TripRateDef();
  def.cadence = 0;
  EXPECT_FALSE(registry.Publish(def, 0).ok());

  def = TripRateDef();
  def.source_table = "missing_table";
  EXPECT_TRUE(registry.Publish(def, 0).status().IsNotFound());

  def = TripRateDef();
  def.expression = "no_such_column + 1";
  EXPECT_FALSE(registry.Publish(def, 0).ok());

  def = TripRateDef();
  def.expression = "rating +";  // Syntax error.
  EXPECT_FALSE(registry.Publish(def, 0).ok());

  def = TripRateDef();
  def.expression = "rating and true";  // Type error.
  EXPECT_FALSE(registry.Publish(def, 0).ok());

  def = TripRateDef();
  def.expression = "null";  // Useless definition.
  EXPECT_FALSE(registry.Publish(def, 0).ok());
}

TEST_F(RegistryTest, ListAndLineageQueries) {
  FeatureRegistry registry(&offline_);
  ASSERT_TRUE(registry.Publish(TripRateDef(), 0).ok());
  auto def2 = TripRateDef();
  def2.name = "user_rating_clamped";
  def2.expression = "clamp(rating, 1.0, 5.0)";
  ASSERT_TRUE(registry.Publish(def2, 0).ok());
  auto def3 = TripRateDef();
  def3.name = "driver_dummy";
  def3.entity = "driver";
  def3.expression = "rating * 2";
  ASSERT_TRUE(registry.Publish(def3, 0).ok());

  EXPECT_EQ(registry.ListLatest().size(), 3u);
  EXPECT_EQ(registry.ListByEntity("user").size(), 2u);
  EXPECT_EQ(registry.ListByEntity("driver").size(), 1u);

  auto readers = registry.FeaturesReadingColumn("user_activity", "rating");
  EXPECT_EQ(readers.size(), 2u);
  readers = registry.FeaturesReadingColumn("user_activity", "trips_7d");
  EXPECT_EQ(readers, (std::vector<std::string>{"user_trip_rate"}));
  EXPECT_TRUE(registry.FeaturesReadingColumn("other", "rating").empty());
}

TEST_F(RegistryTest, DeprecateStopsOrchestration) {
  FeatureRegistry registry(&offline_);
  ASSERT_TRUE(registry.Publish(TripRateDef(), 0).ok());
  ASSERT_TRUE(registry.Deprecate("user_trip_rate").ok());
  EXPECT_TRUE(registry.Get("user_trip_rate").value().deprecated);
  EXPECT_TRUE(registry.Deprecate("missing").IsNotFound());

  Materializer materializer(&online_, &offline_);
  Orchestrator orchestrator(&registry, &materializer);
  EXPECT_EQ(orchestrator.RunDue(Hours(1)).value(), 0);
}

TEST_F(RegistryTest, MaterializeWritesOnlineAndLog) {
  AddSource(1, Hours(1), 7, 30, 4.5);
  AddSource(2, Hours(2), 0, 10, 3.0);
  AddSource(1, Hours(3), 9, 32, 4.6);  // Newer row for user 1.

  FeatureRegistry registry(&offline_);
  ASSERT_TRUE(registry.Publish(TripRateDef(), 0).ok());
  auto feature = registry.Get("user_trip_rate").value();

  Materializer materializer(&online_, &offline_);
  auto result = materializer.Materialize(feature, Hours(4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->entities_updated, 2u);
  EXPECT_EQ(result->null_values, 0u);

  auto got = online_.Get("user_trip_rate", Value::Int64(1), Hours(4));
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->ValueByName("value").value().double_value(),
                   9.0 / 33.0);
  // Freshness reflects the source event time.
  EXPECT_EQ(online_.GetEventTime("user_trip_rate", Value::Int64(1), Hours(4))
                .value(), Hours(3));

  auto log = offline_.GetTable("user_trip_rate__log").value();
  EXPECT_EQ(log->num_rows(), 2u);
}

TEST_F(RegistryTest, MaterializeAsOfIgnoresFutureRows) {
  AddSource(1, Hours(1), 7, 30, 4.5);
  AddSource(1, Hours(10), 9, 32, 4.6);

  FeatureRegistry registry(&offline_);
  ASSERT_TRUE(registry.Publish(TripRateDef(), 0).ok());
  Materializer materializer(&online_, &offline_);
  ASSERT_TRUE(
      materializer.Materialize(registry.Get("user_trip_rate").value(),
                               Hours(5))
          .ok());
  auto got = online_.Get("user_trip_rate", Value::Int64(1), Hours(5));
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->ValueByName("value").value().double_value(),
                   7.0 / 31.0);
}

TEST_F(RegistryTest, OrchestratorRunsOnCadence) {
  AddSource(1, Hours(0), 1, 1, 1.0);
  FeatureRegistry registry(&offline_);
  auto def = TripRateDef();
  def.cadence = Hours(6);
  ASSERT_TRUE(registry.Publish(def, Hours(0)).ok());

  Materializer materializer(&online_, &offline_);
  Orchestrator orchestrator(&registry, &materializer);

  EXPECT_EQ(orchestrator.RunDue(Hours(0)).value(), 1);  // First run.
  EXPECT_EQ(orchestrator.RunDue(Hours(3)).value(), 0);  // Not due yet.
  EXPECT_EQ(orchestrator.RunDue(Hours(6)).value(), 1);  // Due again.
  const RefreshState* state = orchestrator.GetState("user_trip_rate");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->runs, 2u);
  EXPECT_EQ(orchestrator.RefreshStaleness("user_trip_rate", Hours(8)),
            Hours(2));
  EXPECT_EQ(orchestrator.NextDue(), Hours(12));
  EXPECT_EQ(orchestrator.RefreshStaleness("never_ran", Hours(8)),
            kMaxTimestamp);
}

TEST_F(RegistryTest, RunIntervalHonorsDifferentCadences) {
  AddSource(1, Hours(0), 1, 1, 1.0);
  FeatureRegistry registry(&offline_);
  auto fast = TripRateDef();
  fast.name = "fast_feature";
  fast.cadence = Hours(1);
  auto slow = TripRateDef();
  slow.name = "slow_feature";
  slow.cadence = Hours(24);
  ASSERT_TRUE(registry.Publish(fast, 0).ok());
  ASSERT_TRUE(registry.Publish(slow, 0).ok());

  Materializer materializer(&online_, &offline_);
  Orchestrator orchestrator(&registry, &materializer);
  // 49 hourly ticks over two days: fast runs 49x, slow runs 3x (0, 24, 48).
  EXPECT_EQ(orchestrator.RunInterval(0, Hours(48), Hours(1)).value(), 49 + 3);
  EXPECT_EQ(orchestrator.GetState("fast_feature")->runs, 49u);
  EXPECT_EQ(orchestrator.GetState("slow_feature")->runs, 3u);
  EXPECT_FALSE(orchestrator.RunInterval(0, 1, 0).ok());
}

}  // namespace
}  // namespace mlfs
