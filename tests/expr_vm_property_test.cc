// Differential property suite for the vectorized bytecode VM: randomized
// expression trees (every operator and builtin, literal/column mixes,
// NULL-typed literals) evaluated over randomized rows (NULL injection,
// full-range int64s, NaN/inf/signed-zero doubles, zero-length and
// mismatched-dim embeddings) must behave *byte-identically* across the
// three engines — the tree-walking oracle (EvalExpr), the compiled
// program's row interpreter (CompiledExpr::Eval), and the batch kernels
// (CompiledExpr::EvalBatch). Identical means: the same compile acceptance
// with the same status, bit-equal values (NaN payloads included), the
// same NULLs, and on failure the same error status reported at the same
// first failing row.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "expr/ast.h"
#include "expr/evaluator.h"
#include "expr/parser.h"

namespace mlfs {
namespace {

SchemaPtr TestSchema() {
  return Schema::Create({{"i1", FeatureType::kInt64, true},
                         {"i2", FeatureType::kInt64, true},
                         {"d1", FeatureType::kDouble, true},
                         {"d2", FeatureType::kDouble, true},
                         {"s1", FeatureType::kString, true},
                         {"s2", FeatureType::kString, true},
                         {"b1", FeatureType::kBool, true},
                         {"b2", FeatureType::kBool, true},
                         {"t1", FeatureType::kTimestamp, true},
                         {"e1", FeatureType::kEmbedding, true},
                         {"e2", FeatureType::kEmbedding, true}})
      .value();
}

// Bit-exact fingerprint: two Values compare equal iff their fingerprints
// match, with doubles compared by bit pattern so NaN == NaN and 0.0 != -0.0.
std::string ValueBytes(const Value& v) {
  std::string out(1, static_cast<char>(v.type()));
  if (v.is_null()) return out;
  switch (v.type()) {
    case FeatureType::kNull:
      break;
    case FeatureType::kBool:
      out += v.bool_value() ? '1' : '0';
      break;
    case FeatureType::kInt64:
    case FeatureType::kTimestamp: {
      int64_t x =
          v.type() == FeatureType::kInt64 ? v.int64_value() : v.time_value();
      out.append(reinterpret_cast<const char*>(&x), sizeof(x));
      break;
    }
    case FeatureType::kDouble: {
      double d = v.double_value();
      out.append(reinterpret_cast<const char*>(&d), sizeof(d));
      break;
    }
    case FeatureType::kString:
      out += v.string_value();
      break;
    case FeatureType::kEmbedding: {
      const auto& e = v.embedding_value();
      out.append(reinterpret_cast<const char*>(e.data()),
                 e.size() * sizeof(float));
      break;
    }
  }
  return out;
}

Value RandomValue(Rng& rng, FeatureType type) {
  if (rng.Bernoulli(0.22)) return Value::Null();
  switch (type) {
    case FeatureType::kNull:
      return Value::Null();
    case FeatureType::kBool:
      return Value::Bool(rng.Bernoulli(0.5));
    case FeatureType::kInt64:
      // Mostly small (so %, at(), comparisons hit interesting cases), but
      // sometimes the full 64-bit range — arithmetic wraps identically in
      // both engines, so overflow must stay differential-clean.
      if (rng.Bernoulli(0.15)) return Value::Int64(int64_t(rng.Next()));
      return Value::Int64(rng.UniformInt(-6, 6));
    case FeatureType::kDouble:
      switch (rng.Uniform(8)) {
        case 0:
          return Value::Double(0.0);
        case 1:
          return Value::Double(-0.0);
        case 2:
          return Value::Double(std::numeric_limits<double>::quiet_NaN());
        case 3:
          return Value::Double(std::numeric_limits<double>::infinity());
        case 4:
          return Value::Double(-std::numeric_limits<double>::infinity());
        default:
          return Value::Double(rng.Gaussian(0.0, 4.0));
      }
    case FeatureType::kString: {
      static const char* kPool[] = {"",  "a",   "B",  "ab", "Hello",
                                    "z", "a b", "AB", "0",  "null"};
      return Value::String(kPool[rng.Uniform(10)]);
    }
    case FeatureType::kTimestamp:
      return Value::Time(Days(int64_t(rng.Uniform(5))) +
                         Hours(int64_t(rng.Uniform(30))) -
                         (rng.Bernoulli(0.2) ? Days(7) : 0));
    case FeatureType::kEmbedding: {
      // Dims 0/2/3: zero vectors make cosine() NULL, and mixing dims
      // across rows exercises the dot()/cosine() dim-mismatch error and
      // at() out-of-range at the batch level.
      size_t dim = size_t(rng.Uniform(3)) + (rng.Bernoulli(0.7) ? 2 : 0);
      if (dim > 3) dim = 0;
      std::vector<float> e(dim);
      for (auto& f : e) f = float(rng.UniformInt(-3, 3));
      return Value::Embedding(std::move(e));
    }
  }
  return Value::Null();
}

std::vector<Row> RandomRows(Rng& rng, const SchemaPtr& schema, size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    std::vector<Value> vals;
    vals.reserve(schema->num_fields());
    for (size_t c = 0; c < schema->num_fields(); ++c) {
      vals.push_back(RandomValue(rng, schema->field(c).type));
    }
    rows.push_back(Row::CreateUnsafe(schema, std::move(vals)));
  }
  return rows;
}

Value RandomLiteral(Rng& rng) {
  static const FeatureType kTypes[] = {
      FeatureType::kNull,   FeatureType::kBool,      FeatureType::kInt64,
      FeatureType::kDouble, FeatureType::kString,    FeatureType::kTimestamp,
      FeatureType::kEmbedding};
  return RandomValue(rng, kTypes[rng.Uniform(7)]);
}

struct FnArity {
  const char* name;
  size_t min_args;
  size_t max_args;
};

ExprPtr RandomExpr(Rng& rng, int depth) {
  static const char* kColumns[] = {"i1", "i2", "d1", "d2", "s1", "s2",
                                   "b1", "b2", "t1", "e1", "e2"};
  static const BinaryOp kBinOps[] = {
      BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
      BinaryOp::kMod, BinaryOp::kEq,  BinaryOp::kNe,  BinaryOp::kLt,
      BinaryOp::kLe,  BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kAnd,
      BinaryOp::kOr};
  static const FnArity kFns[] = {
      {"abs", 1, 1},   {"log", 1, 1},      {"log2", 1, 1},  {"exp", 1, 1},
      {"sqrt", 1, 1},  {"floor", 1, 1},    {"ceil", 1, 1},  {"round", 1, 1},
      {"pow", 2, 2},   {"min", 2, 2},      {"max", 2, 2},   {"clamp", 3, 3},
      {"coalesce", 1, 4},                  {"is_null", 1, 1},
      {"if", 3, 3},    {"len", 1, 1},      {"concat", 2, 3},
      {"lower", 1, 1}, {"upper", 1, 1},    {"hour", 1, 1},  {"day", 1, 1},
      {"hash", 1, 1},  {"dim", 1, 1},      {"norm", 1, 1},  {"at", 2, 2},
      {"dot", 2, 2},   {"cosine", 2, 2}};
  if (depth <= 0 || rng.Bernoulli(0.25)) {
    if (rng.Bernoulli(0.45)) return Expr::Literal(RandomLiteral(rng));
    return Expr::Column(kColumns[rng.Uniform(11)]);
  }
  switch (rng.Uniform(4)) {
    case 0:
      return Expr::Unary(rng.Bernoulli(0.5) ? UnaryOp::kNeg : UnaryOp::kNot,
                         RandomExpr(rng, depth - 1));
    case 1:
    case 2:
      return Expr::Binary(kBinOps[rng.Uniform(13)], RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    default: {
      const FnArity& fn = kFns[rng.Uniform(27)];
      size_t n = fn.min_args + rng.Uniform(fn.max_args - fn.min_args + 1);
      std::vector<ExprPtr> args;
      args.reserve(n);
      for (size_t i = 0; i < n; ++i) args.push_back(RandomExpr(rng, depth - 1));
      return Expr::Call(fn.name, std::move(args));
    }
  }
}

// Runs one (expression, rows) fixture through all three engines.
// Returns true if the expression compiled (i.e. the rows were consumed).
bool CheckTree(const Expr& expr, const SchemaPtr& schema,
               const std::vector<Row>& rows, const std::string& tag) {
  auto inferred = InferType(expr, *schema);
  auto compiled = CompiledExpr::Compile(expr, schema);
  EXPECT_EQ(inferred.ok(), compiled.ok()) << tag;
  if (!compiled.ok()) {
    EXPECT_EQ(inferred.status().ToString(), compiled.status().ToString())
        << tag;
    return false;
  }
  EXPECT_EQ(*inferred, compiled->output_type()) << tag;

  // Row-by-row: compiled row interpreter vs tree-walking oracle.
  std::vector<StatusOr<Value>> oracle;
  oracle.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    oracle.push_back(EvalExpr(expr, rows[r]));
    StatusOr<Value> got = compiled->Eval(rows[r]);
    EXPECT_EQ(oracle[r].ok(), got.ok())
        << tag << " row " << r << ": oracle=" << oracle[r].status()
        << " row-vm=" << got.status();
    if (oracle[r].ok() != got.ok()) return true;
    if (oracle[r].ok()) {
      EXPECT_EQ(ValueBytes(*oracle[r]), ValueBytes(*got))
          << tag << " row " << r;
    } else {
      EXPECT_EQ(oracle[r].status().ToString(), got.status().ToString())
          << tag << " row " << r;
    }
  }

  // Batch: one EvalBatch over all rows must reproduce every oracle value,
  // or fail with the exact status of the first failing row.
  ExprScratch scratch;
  const ColumnVector* res = nullptr;
  RowBatchSource src(schema, rows);
  Status batch = compiled->EvalBatch(src, &scratch, &res);
  size_t first_err = rows.size();
  for (size_t r = 0; r < rows.size(); ++r) {
    if (!oracle[r].ok()) {
      first_err = r;
      break;
    }
  }
  if (first_err < rows.size()) {
    EXPECT_FALSE(batch.ok()) << tag << ": oracle fails at row " << first_err
                             << " (" << oracle[first_err].status()
                             << ") but batch succeeded";
    if (batch.ok()) return true;
    EXPECT_EQ(oracle[first_err].status().ToString(), batch.ToString()) << tag;
  } else {
    EXPECT_TRUE(batch.ok()) << tag << ": " << batch;
    if (!batch.ok()) return true;
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ(ValueBytes(*oracle[r]), ValueBytes(res->GetValue(r)))
          << tag << " row " << r << " (batch)";
    }
  }

  // Single-row batches exercise the tail/short-batch kernel paths.
  for (size_t r = 0; r < std::min<size_t>(4, rows.size()); ++r) {
    RowBatchSource one(schema, std::span<const Row>(&rows[r], 1));
    Status s = compiled->EvalBatch(one, &scratch, &res);
    EXPECT_EQ(oracle[r].ok(), s.ok()) << tag << " row " << r << " (batch-1)";
    if (oracle[r].ok() != s.ok()) return true;
    if (oracle[r].ok()) {
      EXPECT_EQ(ValueBytes(*oracle[r]), ValueBytes(res->GetValue(0)))
          << tag << " row " << r << " (batch-1)";
    } else {
      EXPECT_EQ(oracle[r].status().ToString(), s.ToString())
          << tag << " row " << r << " (batch-1)";
    }
  }
  return true;
}

TEST(ExprVmPropertyTest, RandomTreesMatchOracle) {
  SchemaPtr schema = TestSchema();
  Rng rng(0xfeedbeefULL);
  int compiled_trees = 0;
  for (int trial = 0; trial < 400; ++trial) {
    ExprPtr expr = RandomExpr(rng, 1 + int(rng.Uniform(4)));
    std::vector<Row> rows = RandomRows(rng, schema, 48);
    if (CheckTree(*expr, schema, rows,
                  "trial " + std::to_string(trial) + ": " + expr->ToString())) {
      ++compiled_trees;
    }
    if (HasFailure()) {
      return;  // First failing fixture is the most useful one; stop there.
    }
  }
  // The generator should not degenerate into mostly-rejected trees.
  EXPECT_GE(compiled_trees, 100);
}

TEST(ExprVmPropertyTest, ParsedFixturesMatchOracle) {
  SchemaPtr schema = TestSchema();
  Rng rng(0x5eedULL);
  std::vector<Row> rows = RandomRows(rng, schema, 64);
  const char* kSources[] = {
      "i1 + i2 * d1 - i1 / (i2 + 1)",
      "i1 % i2",
      "coalesce(i1, d1, 7)",
      "if(b1, i1, d2) + coalesce(d1, i2)",
      "is_null(coalesce(i1, i2))",
      "concat(lower(s1), upper(s2)) == s1",
      "len(concat(s1, s2)) > i1",
      "clamp(d1, -1, 1) * sqrt(abs(i1))",
      "pow(d1, 2) + log(abs(d2) + 1)",
      "hour(t1) + day(t1) * 24",
      "t1 + i1 - t1",
      "dot(e1, e2) + cosine(e1, e2)",
      "at(e1, i1) * norm(e2)",
      "dim(e1) == dim(e2) and b1 or not b2",
      "hash(s1) % 16 == hash(s2) % 16",
      "min(i1, i2) + max(d1, d2)",
      "-i1 * -(i2 + 1)",
      "b1 and (d1 > d2 or s1 < s2)",
      "i1 == s1",
      "e1 == e2",
  };
  for (const char* src : kSources) {
    auto parsed = ParseExpr(src);
    ASSERT_TRUE(parsed.ok()) << src << ": " << parsed.status();
    CheckTree(**parsed, schema, rows, src);
  }
}

TEST(ExprVmPropertyTest, CompileRejectionMatchesInfer) {
  // Type-invalid trees must be rejected by Compile with the same status
  // the type checker reports, and never reach execution.
  SchemaPtr schema = TestSchema();
  const char* kBad[] = {
      "s1 + i1",          "not i1",        "e1 + e2",
      "len(i1)",          "hour(i1)",      "dot(e1, d1)",
      "clamp(s1, 0, 1)",  "if(i1, 1, 2)",  "coalesce(i1, s1)",
      "concat(s1, i1)",
  };
  for (const char* src : kBad) {
    auto parsed = ParseExpr(src);
    ASSERT_TRUE(parsed.ok()) << src;
    auto inferred = InferType(**parsed, *schema);
    auto compiled = CompiledExpr::Compile(**parsed, schema);
    EXPECT_FALSE(inferred.ok()) << src;
    EXPECT_FALSE(compiled.ok()) << src;
    EXPECT_EQ(inferred.status().ToString(), compiled.status().ToString())
        << src;
  }
}

}  // namespace
}  // namespace mlfs
