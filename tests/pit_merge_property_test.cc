// Property suite for the batched sort-merge point-in-time join engine:
// on randomized fixtures, PointInTimeJoin / NaiveLatestJoin (serial and
// thread-pool sharded) must produce TrainingSets *byte-identical* to the
// retained row-at-a-time reference implementations — same schema, same
// rows (including the equal-timestamp append-order tie-break), same
// missing_cells. Fixtures cover late/out-of-order arrivals, duplicate
// timestamps, max_age cutoffs, absent entities, multi-source
// prefix/output_columns, and both INT64 and STRING entity keys.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "common/threadpool.h"
#include "serving/point_in_time.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

// Serializes a TrainingSet to bytes so "identical" means identical.
std::string TrainingSetBytes(const TrainingSet& ts) {
  Encoder enc;
  enc.PutSchema(*ts.schema);
  enc.PutVarint64(ts.missing_cells);
  enc.PutVarint64(ts.rows.size());
  for (const Row& row : ts.rows) enc.PutRow(row);
  return enc.Release();
}

struct RandomFixture {
  // unique_ptr: OfflineStore holds a mutex and is neither copyable nor
  // movable, but the fixture is returned by value.
  std::unique_ptr<OfflineStore> store = std::make_unique<OfflineStore>();
  OfflineTable* source_a = nullptr;
  OfflineTable* source_b = nullptr;
  SchemaPtr spine_schema;
  std::vector<Row> spine;
  std::vector<JoinSource> sources;
};

Value MakeKey(bool string_keys, int64_t id) {
  if (!string_keys) return Value::Int64(id);
  // Long shared prefix (>8 bytes) forces the sort's integer-prefix
  // shortcut to fall back to full key comparison.
  return Value::String("entity_with_long_common_prefix_" + std::to_string(id));
}

// Builds a randomized two-source fixture. Event times are drawn from a
// coarse grid so duplicate timestamps (same entity, same ts) are common,
// and rows are appended in random arrival order so late/out-of-order data
// is the norm, spread over ~10 daily partitions.
RandomFixture BuildFixture(Rng& rng, bool string_keys) {
  RandomFixture f;
  const FeatureType key_type =
      string_keys ? FeatureType::kString : FeatureType::kInt64;
  auto schema_a = Schema::Create({{"key", key_type, false},
                                  {"event_time", FeatureType::kTimestamp,
                                   false},
                                  {"a_int", FeatureType::kInt64, true},
                                  {"a_str", FeatureType::kString, true}})
                      .value();
  auto schema_b = Schema::Create({{"key", key_type, false},
                                  {"event_time", FeatureType::kTimestamp,
                                   false},
                                  {"b_val", FeatureType::kDouble, true}})
                      .value();
  OfflineTableOptions opt_a;
  opt_a.name = "source_a";
  opt_a.schema = schema_a;
  opt_a.entity_column = "key";
  opt_a.time_column = "event_time";
  OfflineTableOptions opt_b = opt_a;
  opt_b.name = "source_b";
  opt_b.schema = schema_b;
  EXPECT_TRUE(f.store->CreateTable(opt_a).ok());
  EXPECT_TRUE(f.store->CreateTable(opt_b).ok());
  f.source_a = f.store->GetTable("source_a").value();
  f.source_b = f.store->GetTable("source_b").value();

  constexpr int64_t kEntities = 8;       // Spine draws from [0, 12): absent
  constexpr int64_t kSpineEntities = 12;  // entities are part of the deal.
  const auto coarse_ts = [&] {
    return Hours(6) * static_cast<Timestamp>(rng.Uniform(40));  // 10 days.
  };

  std::vector<Row> rows_a;
  for (int i = 0; i < 150; ++i) {
    rows_a.push_back(
        Row::Create(schema_a,
                    {MakeKey(string_keys,
                             static_cast<int64_t>(rng.Uniform(kEntities))),
                     Value::Time(coarse_ts()),
                     rng.Bernoulli(0.15)
                         ? Value::Null()
                         : Value::Int64(static_cast<int64_t>(i)),
                     rng.Bernoulli(0.15)
                         ? Value::Null()
                         : Value::String("v" + std::to_string(i))})
            .value());
  }
  std::vector<Row> rows_b;
  for (int i = 0; i < 100; ++i) {
    rows_b.push_back(
        Row::Create(schema_b,
                    {MakeKey(string_keys,
                             static_cast<int64_t>(rng.Uniform(kEntities))),
                     Value::Time(coarse_ts()),
                     rng.Bernoulli(0.1) ? Value::Null()
                                        : Value::Double(rng.Gaussian())})
            .value());
  }
  // Random arrival order: a shuffled mix of single appends and batches.
  rng.Shuffle(&rows_a);
  rng.Shuffle(&rows_b);
  for (size_t i = 0; i < rows_a.size();) {
    size_t batch = 1 + rng.Uniform(8);
    size_t end = std::min(rows_a.size(), i + batch);
    EXPECT_TRUE(f.source_a
                    ->AppendBatch(std::vector<Row>(rows_a.begin() + i,
                                                   rows_a.begin() + end))
                    .ok());
    i = end;
  }
  EXPECT_TRUE(f.source_b->AppendBatch(rows_b).ok());

  f.spine_schema = Schema::Create({{"key", key_type, false},
                                   {"ts", FeatureType::kTimestamp, false},
                                   {"label", FeatureType::kBool, false}})
                       .value();
  const size_t spine_rows = 40 + rng.Uniform(40);
  for (size_t i = 0; i < spine_rows; ++i) {
    f.spine.push_back(
        Row::Create(f.spine_schema,
                    {MakeKey(string_keys,
                             static_cast<int64_t>(rng.Uniform(kSpineEntities))),
                     Value::Time(Hours(static_cast<Timestamp>(
                         rng.Uniform(24 * 10)))),
                     Value::Bool(rng.Bernoulli(0.5))})
            .value());
  }

  JoinSource a;
  a.table = f.source_a;
  a.prefix = "a__";
  a.max_age = rng.Bernoulli(0.5) ? Hours(1 + rng.Uniform(72)) : 0;
  JoinSource b;
  b.table = f.source_b;
  b.columns = {"b_val"};
  b.output_columns = {"renamed_b"};
  b.max_age = rng.Bernoulli(0.5) ? Hours(1 + rng.Uniform(72)) : 0;
  f.sources = {a, b};
  return f;
}

class PitMergePropertyTest : public ::testing::TestWithParam<bool> {};

TEST_P(PitMergePropertyTest, MergeJoinMatchesReferenceByteForByte) {
  const bool string_keys = GetParam();
  ThreadPool pool(4);
  for (uint64_t trial = 0; trial < 12; ++trial) {
    Rng rng(0x9177 + trial * 131 + (string_keys ? 7 : 0));
    RandomFixture f = BuildFixture(rng, string_keys);

    auto reference =
        PointInTimeJoinReference(f.spine, "key", "ts", f.sources);
    ASSERT_TRUE(reference.ok()) << reference.status();
    auto merged = PointInTimeJoin(f.spine, "key", "ts", f.sources);
    ASSERT_TRUE(merged.ok()) << merged.status();
    JoinOptions parallel;
    parallel.pool = &pool;
    auto merged_mt =
        PointInTimeJoin(f.spine, "key", "ts", f.sources, parallel);
    ASSERT_TRUE(merged_mt.ok()) << merged_mt.status();

    const std::string want = TrainingSetBytes(*reference);
    EXPECT_EQ(TrainingSetBytes(*merged), want) << "trial " << trial;
    EXPECT_EQ(TrainingSetBytes(*merged_mt), want) << "trial " << trial;
    EXPECT_EQ(merged->missing_cells, reference->missing_cells);
    EXPECT_EQ(merged_mt->missing_cells, reference->missing_cells);

    auto naive_ref = NaiveLatestJoinReference(f.spine, "key", "ts", f.sources);
    ASSERT_TRUE(naive_ref.ok()) << naive_ref.status();
    auto naive = NaiveLatestJoin(f.spine, "key", "ts", f.sources, parallel);
    ASSERT_TRUE(naive.ok()) << naive.status();
    EXPECT_EQ(TrainingSetBytes(*naive), TrainingSetBytes(*naive_ref))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(KeyTypes, PitMergePropertyTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "StringKeys" : "Int64Keys";
                         });

// An internal-pool join (max_threads knob, no external pool) must also
// reproduce the reference exactly.
TEST(PitMergeTest, InternalPoolMatchesReference) {
  Rng rng(0xfeed);
  RandomFixture f = BuildFixture(rng, /*string_keys=*/false);
  auto reference = PointInTimeJoinReference(f.spine, "key", "ts", f.sources);
  ASSERT_TRUE(reference.ok());
  JoinOptions options;
  options.max_threads = 3;
  auto merged = PointInTimeJoin(f.spine, "key", "ts", f.sources, options);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(TrainingSetBytes(*merged), TrainingSetBytes(*reference));
}

// A spine whose entity column is neither INT64 nor STRING must NULL-fill
// every joined cell, exactly like the reference (whose per-row AsOf fails
// with InvalidArgument and is treated as a miss).
TEST(PitMergeTest, UnjoinableEntityKeyTypeNullFills) {
  Rng rng(0xabc1);
  RandomFixture f = BuildFixture(rng, /*string_keys=*/false);
  auto bad_spine_schema =
      Schema::Create({{"key", FeatureType::kDouble, false},
                      {"ts", FeatureType::kTimestamp, false}})
          .value();
  std::vector<Row> bad_spine = {
      Row::Create(bad_spine_schema,
                  {Value::Double(1.5), Value::Time(Hours(10))})
          .value(),
      Row::Create(bad_spine_schema,
                  {Value::Double(2.5), Value::Time(Hours(20))})
          .value()};
  auto reference =
      PointInTimeJoinReference(bad_spine, "key", "ts", f.sources);
  ASSERT_TRUE(reference.ok());
  auto merged = PointInTimeJoin(bad_spine, "key", "ts", f.sources);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(TrainingSetBytes(*merged), TrainingSetBytes(*reference));
  // Every joined cell (3 per row: a_int, a_str, renamed_b) is missing.
  EXPECT_EQ(merged->missing_cells, 2u * 3u);
}

}  // namespace
}  // namespace mlfs
