#include "ml/sgns.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace mlfs {
namespace {

// Corpus with two "topics": tokens 0-4 co-occur, tokens 5-9 co-occur.
std::vector<std::vector<int>> TwoTopicCorpus(size_t sentences,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> corpus;
  for (size_t s = 0; s < sentences; ++s) {
    bool topic_a = rng.Bernoulli(0.5);
    std::vector<int> sentence;
    for (int t = 0; t < 8; ++t) {
      int base = topic_a ? 0 : 5;
      sentence.push_back(base + static_cast<int>(rng.Uniform(5)));
    }
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

TEST(SgnsTest, Validation) {
  EXPECT_FALSE(TrainSgns({}, 0).ok());
  EXPECT_FALSE(TrainSgns({{0, 1}}, 2, {.dim = 0}).ok());
  EXPECT_FALSE(TrainSgns({{0, 5}}, 2).ok());  // Token out of range.
  EXPECT_FALSE(TrainSgns({{}}, 2).ok());      // Empty corpus.
}

TEST(SgnsTest, ShapesAndDeterminism) {
  auto corpus = TwoTopicCorpus(50, 1);
  SgnsConfig config;
  config.dim = 16;
  config.epochs = 2;
  auto a = TrainSgns(corpus, 10, config).value();
  auto b = TrainSgns(corpus, 10, config).value();
  EXPECT_EQ(a.vocab_size, 10u);
  EXPECT_EQ(a.dim, 16u);
  EXPECT_EQ(a.vectors.size(), 160u);
  EXPECT_EQ(a.vectors, b.vectors);  // Same seed, same result.

  config.seed = 2;
  auto c = TrainSgns(corpus, 10, config).value();
  EXPECT_NE(a.vectors, c.vectors);
}

TEST(SgnsTest, CooccurringTokensAreCloserThanCrossTopic) {
  auto corpus = TwoTopicCorpus(800, 3);
  SgnsConfig config;
  config.dim = 16;
  config.epochs = 5;
  auto emb = TrainSgns(corpus, 10, config).value();
  // Mean within-topic vs cross-topic cosine.
  double within = 0, cross = 0;
  int nw = 0, nc = 0;
  for (size_t a = 0; a < 10; ++a) {
    for (size_t b = a + 1; b < 10; ++b) {
      double cos = EmbeddingCosine(emb, a, b);
      if ((a < 5) == (b < 5)) {
        within += cos;
        ++nw;
      } else {
        cross += cos;
        ++nc;
      }
    }
  }
  within /= nw;
  cross /= nc;
  EXPECT_GT(within, cross + 0.3)
      << "within=" << within << " cross=" << cross;
}

TEST(SgnsTest, NearestTokensRespectTopics) {
  auto corpus = TwoTopicCorpus(800, 4);
  SgnsConfig config;
  config.dim = 16;
  config.epochs = 5;
  auto emb = TrainSgns(corpus, 10, config).value();
  auto neighbors = NearestTokens(emb, 0, 4);
  ASSERT_EQ(neighbors.size(), 4u);
  // All 4 nearest neighbors of token 0 should be in topic A (tokens 1-4).
  int in_topic = 0;
  for (size_t n : neighbors) in_topic += (n < 5);
  EXPECT_GE(in_topic, 3);
}

TEST(SgnsTest, NearestExcludesSelfAndCapsK) {
  auto corpus = TwoTopicCorpus(50, 5);
  auto emb = TrainSgns(corpus, 10, {.dim = 8, .epochs = 1}).value();
  auto neighbors = NearestTokens(emb, 3, 100);
  EXPECT_EQ(neighbors.size(), 9u);  // Vocab minus self.
  EXPECT_EQ(std::count(neighbors.begin(), neighbors.end(), 3u), 0);
}

}  // namespace
}  // namespace mlfs
