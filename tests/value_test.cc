#include "common/value.h"

#include <gtest/gtest.h>

#include "common/row.h"
#include "common/schema.h"

namespace mlfs {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), FeatureType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedFactories) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int64(-5).int64_value(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Time(Hours(3)).time_value(), Hours(3));
  Value e = Value::Embedding({1.0f, 2.0f});
  ASSERT_EQ(e.embedding_value().size(), 2u);
  EXPECT_FLOAT_EQ(e.embedding_value()[1], 2.0f);
}

TEST(ValueTest, AsDoubleCoercion) {
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble().value(), 1.0);
  EXPECT_DOUBLE_EQ(Value::Int64(7).AsDouble().value(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble().value(), 1.5);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
  EXPECT_FALSE(Value::Embedding({1.0f}).AsDouble().ok());
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_FALSE(Value::Int64(3) == Value::Int64(4));
  EXPECT_FALSE(Value::Int64(3) == Value::Double(3.0));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Embedding({1.0f, 2.0f}), Value::Embedding({1.0f, 2.0f}));
  EXPECT_FALSE(Value::Embedding({1.0f}) == Value::Embedding({1.0f, 2.0f}));
}

TEST(ValueTest, HashDistinguishesTypesAndValues) {
  EXPECT_NE(HashValue(Value::Int64(1)), HashValue(Value::Int64(2)));
  EXPECT_NE(HashValue(Value::Int64(1)), HashValue(Value::Double(1.0)));
  EXPECT_NE(HashValue(Value::Null()), HashValue(Value::Bool(false)));
  EXPECT_EQ(HashValue(Value::String("ab")), HashValue(Value::String("ab")));
  // +0.0 and -0.0 hash the same since they compare equal as doubles.
  EXPECT_EQ(HashValue(Value::Double(0.0)), HashValue(Value::Double(-0.0)));
}

TEST(ValueTest, ByteSizeTracksPayload) {
  EXPECT_GT(Value::String("hello world").ByteSize(),
            Value::String("x").ByteSize());
  EXPECT_GT(Value::Embedding(std::vector<float>(128)).ByteSize(),
            Value::Embedding(std::vector<float>(4)).ByteSize());
}

TEST(ValueTest, ToStringRendersEmbeddingsCompactly) {
  Value e = Value::Embedding({1.0f, 2.0f, 3.0f, 4.0f});
  std::string s = e.ToString();
  EXPECT_NE(s.find("emb[4]"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(SchemaTest, CreateAndLookup) {
  auto schema = Schema::Create({{"id", FeatureType::kInt64, false},
                                {"score", FeatureType::kDouble, true}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->num_fields(), 2u);
  EXPECT_EQ((*schema)->FieldIndex("score"), 1);
  EXPECT_EQ((*schema)->FieldIndex("missing"), -1);
}

TEST(SchemaTest, RejectsDuplicatesAndEmptyNames) {
  EXPECT_FALSE(Schema::Create({{"a", FeatureType::kInt64, false},
                               {"a", FeatureType::kDouble, true}})
                   .ok());
  EXPECT_FALSE(Schema::Create({{"", FeatureType::kInt64, false}}).ok());
}

TEST(SchemaTest, AcceptsRespectsNullability) {
  auto schema = Schema::Create({{"id", FeatureType::kInt64, false},
                                {"score", FeatureType::kDouble, true}})
                    .value();
  EXPECT_TRUE(schema->Accepts(0, Value::Int64(1)));
  EXPECT_FALSE(schema->Accepts(0, Value::Null()));
  EXPECT_TRUE(schema->Accepts(1, Value::Null()));
  EXPECT_FALSE(schema->Accepts(1, Value::String("no")));
}

TEST(RowTest, CreateValidates) {
  auto schema = Schema::Create({{"id", FeatureType::kInt64, false},
                                {"name", FeatureType::kString, true}})
                    .value();
  auto row = Row::Create(schema, {Value::Int64(1), Value::String("a")});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value(0).int64_value(), 1);

  EXPECT_FALSE(Row::Create(schema, {Value::Int64(1)}).ok());  // Arity.
  EXPECT_FALSE(
      Row::Create(schema, {Value::Null(), Value::Null()}).ok());  // Non-null.
  EXPECT_FALSE(
      Row::Create(schema, {Value::Double(1.0), Value::Null()}).ok());  // Type.
}

TEST(RowTest, ValueByName) {
  auto schema = Schema::Create({{"id", FeatureType::kInt64, false}}).value();
  auto row = Row::Create(schema, {Value::Int64(9)}).value();
  EXPECT_EQ(row.ValueByName("id").value().int64_value(), 9);
  EXPECT_TRUE(row.ValueByName("nope").status().IsNotFound());
}

}  // namespace
}  // namespace mlfs
