#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "core/feature_store.h"

namespace mlfs {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("mlfs_ckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CheckpointTest, RegistrySnapshotRoundTrip) {
  OfflineStore offline;
  OfflineTableOptions options;
  options.name = "src";
  options.schema = Schema::Create({{"e", FeatureType::kInt64, false},
                                   {"t", FeatureType::kTimestamp, false},
                                   {"v", FeatureType::kDouble, true}})
                       .value();
  options.entity_column = "e";
  options.time_column = "t";
  ASSERT_TRUE(offline.CreateTable(options).ok());

  FeatureRegistry original(&offline);
  FeatureDefinition def;
  def.name = "f";
  def.entity = "user";
  def.source_table = "src";
  def.expression = "v * 2";
  def.cadence = Hours(3);
  def.owner = "team-x";
  ASSERT_TRUE(original.Publish(def, Hours(1)).ok());
  def.expression = "v * 3";
  ASSERT_TRUE(original.Publish(def, Hours(2)).ok());
  ASSERT_TRUE(original.Deprecate("f").ok());

  FeatureRegistry restored(&offline);
  ASSERT_TRUE(restored.Restore(original.Snapshot()).ok());
  auto latest = restored.Get("f").value();
  EXPECT_EQ(latest.version, 2);
  EXPECT_EQ(latest.def.expression, "v * 3");
  EXPECT_EQ(latest.def.owner, "team-x");
  EXPECT_TRUE(latest.deprecated);
  EXPECT_EQ(latest.output_type, FeatureType::kDouble);
  EXPECT_EQ(latest.input_columns, (std::vector<std::string>{"v"}));
  EXPECT_EQ(restored.GetVersion("f", 1).value().def.expression, "v * 2");
  EXPECT_EQ(restored.GetVersion("f", 1).value().registered_at, Hours(1));
  // Restore into a non-empty registry fails.
  EXPECT_FALSE(restored.Restore(original.Snapshot()).ok());
  FeatureRegistry junk(&offline);
  EXPECT_FALSE(junk.Restore("garbage").ok());
}

TEST_F(CheckpointTest, ModelRegistrySnapshotRoundTrip) {
  ModelRegistry original;
  ModelRecord record;
  record.name = "m";
  record.task = "ranking";
  record.feature_refs = {"f@v1", "g@v2"};
  record.embedding_refs = {"emb@v3"};
  record.hyperparameters = {{"lr", "0.1"}, {"epochs", "20"}};
  record.metrics = {{"auc", 0.91}};
  record.weights = {1.0, -2.5, 3.25};
  ASSERT_TRUE(original.Register(record, Hours(5)).ok());
  ASSERT_TRUE(original.Register(record, Hours(6)).ok());

  ModelRegistry restored;
  ASSERT_TRUE(restored.Restore(original.Snapshot()).ok());
  auto latest = restored.Get("m").value();
  EXPECT_EQ(latest.version, 2);
  EXPECT_EQ(latest.embedding_refs, record.embedding_refs);
  EXPECT_EQ(latest.hyperparameters.at("lr"), "0.1");
  EXPECT_DOUBLE_EQ(latest.metrics.at("auc"), 0.91);
  EXPECT_EQ(latest.weights, record.weights);
  EXPECT_EQ(latest.weights_checksum,
            original.Get("m").value().weights_checksum);
  EXPECT_EQ(restored.GetVersion("m", 1).value().trained_at, Hours(5));
}

TEST_F(CheckpointTest, EmbeddingStoreSnapshotRoundTrip) {
  EmbeddingStore original;
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  metadata.training_source = "corpus-v1";
  auto v1 = EmbeddingTable::Create(metadata, {"a", "b"},
                                   {1, 2, 3, 4}, 2).value();
  ASSERT_TRUE(original.Register(v1, Hours(1)).ok());
  metadata.parent = "emb@v1";
  auto v2 = EmbeddingTable::Create(metadata, {"a", "b", "c"},
                                   {5, 6, 7, 8, 9, 10}, 2).value();
  ASSERT_TRUE(original.Register(v2, Hours(2)).ok());

  EmbeddingStore restored;
  ASSERT_TRUE(restored.Restore(original.Snapshot()).ok());
  EXPECT_EQ(restored.num_tables(), 1u);
  auto latest = restored.GetLatest("emb").value();
  EXPECT_EQ(latest->metadata().version, 2);
  EXPECT_EQ(latest->metadata().parent, "emb@v1");
  EXPECT_EQ(latest->GetVector("c").value(), (std::vector<float>{9, 10}));
  auto old = restored.GetVersion("emb", 1).value();
  EXPECT_EQ(old->metadata().training_source, "corpus-v1");
  EXPECT_EQ(old->GetVector("a").value(), (std::vector<float>{1, 2}));
  EXPECT_EQ(restored.Lineage("emb@v2").value(),
            (std::vector<std::string>{"emb@v2", "emb@v1"}));
  EXPECT_FALSE(restored.Restore(original.Snapshot()).ok());
}

TEST_F(CheckpointTest, FullFeatureStoreCheckpointRestore) {
  FeatureStore original;
  auto schema = Schema::Create({{"user_id", FeatureType::kInt64, false},
                                {"event_time", FeatureType::kTimestamp,
                                 false},
                                {"trips", FeatureType::kInt64, true}})
                    .value();
  OfflineTableOptions options;
  options.name = "activity";
  options.schema = schema;
  options.entity_column = "user_id";
  options.time_column = "event_time";
  ASSERT_TRUE(original.CreateSourceTable(options).ok());
  std::vector<Row> rows;
  for (int64_t user = 0; user < 30; ++user) {
    rows.push_back(Row::Create(schema, {Value::Int64(user),
                                        Value::Time(Hours(user + 1)),
                                        Value::Int64(user * 10)})
                       .value());
  }
  ASSERT_TRUE(original.Ingest("activity", rows).ok());
  FeatureDefinition def;
  def.name = "trips_x2";
  def.entity = "user";
  def.source_table = "activity";
  def.expression = "trips * 2";
  def.cadence = Hours(1);
  ASSERT_TRUE(original.PublishFeature(def).ok());
  ASSERT_TRUE(original.RunMaterialization().ok());

  EmbeddingTableMetadata metadata;
  metadata.name = "user_emb";
  auto table = EmbeddingTable::Create(metadata, {"0", "1"},
                                      {1, 0, 0, 1}, 2).value();
  ASSERT_TRUE(original.RegisterEmbedding(table).ok());
  ModelRecord model;
  model.name = "ranker";
  model.embedding_refs = {"user_emb@v1"};
  ASSERT_TRUE(original.RegisterModel(model).ok());

  ASSERT_TRUE(original.Checkpoint(dir_).ok());

  FeatureStore restored;
  auto status = restored.RestoreCheckpoint(dir_);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(restored.clock().now(), original.clock().now());
  // Serving works immediately (online cells restored).
  auto fv = restored.ServeFeatures(Value::Int64(5), {"trips_x2"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->values[0], Value::Int64(100));
  // Registry, embeddings, models all back.
  EXPECT_EQ(restored.registry().num_features(), 1u);
  EXPECT_EQ(restored.embeddings().num_tables(), 1u);
  EXPECT_EQ(restored.models().num_models(), 1u);
  // Training sets still build from restored offline logs.
  auto spine_schema =
      Schema::Create({{"user_id", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false}})
          .value();
  std::vector<Row> spine = {
      Row::Create(spine_schema,
                  {Value::Int64(5), Value::Time(Hours(40))}).value()};
  auto ts = restored.BuildTrainingSet(spine, "user_id", "ts", {"trips_x2"});
  ASSERT_TRUE(ts.ok()) << ts.status();
  EXPECT_EQ(ts->rows[0].ValueByName("trips_x2").value(), Value::Int64(100));
  // Version-skew machinery still works on the restored state.
  ASSERT_TRUE(restored.RegisterEmbedding(table).ok());
  EXPECT_EQ(restored.CheckEmbeddingVersionSkew().value().skews.size(), 1u);
}

}  // namespace
}  // namespace mlfs
