// Differential property harness for the columnar offline storage engine.
//
// The oracle is the legacy row path itself: an OfflineTable with
// seal_rows = 0 never seals, so every row stays in the mutable head and
// every read runs the original all-in-RAM row engine. Each trial feeds an
// identical randomized op stream to the oracle and to a columnar table
// configured with aggressive sealing/compaction/spilling, interleaves the
// appends with maintenance ops on the columnar side only, and asserts that
// ScanIf, AsOfBatch (full-width and projected, with miss bitmaps),
// LatestPerEntityAsOf, PointInTimeJoin, and snapshots are *byte-identical*
// across the two engines. Fixtures cover late/out-of-order arrivals,
// duplicate-timestamp tie-breaks, INT64 and STRING entity keys, NULLs in
// every column, and max_age cutoffs — extending the pit_merge property
// suite pattern down into the storage tier.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "serving/point_in_time.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

std::string RowsBytes(const std::vector<Row>& rows) {
  Encoder enc;
  enc.PutVarint64(rows.size());
  for (const Row& row : rows) enc.PutRow(row);
  return enc.Release();
}

std::string TrainingSetBytes(const TrainingSet& ts) {
  Encoder enc;
  enc.PutSchema(*ts.schema);
  enc.PutVarint64(ts.missing_cells);
  enc.PutVarint64(ts.rows.size());
  for (const Row& row : ts.rows) enc.PutRow(row);
  return enc.Release();
}

Value MakeKey(bool string_keys, int64_t id) {
  if (!string_keys) return Value::Int64(id);
  // Long shared prefix forces full key comparisons past the sort's
  // integer-prefix shortcut.
  return Value::String("entity_with_long_common_prefix_" + std::to_string(id));
}

SchemaPtr SourceSchema(bool string_keys) {
  return Schema::Create(
             {{"key",
               string_keys ? FeatureType::kString : FeatureType::kInt64,
               false},
              {"event_time", FeatureType::kTimestamp, false},
              {"f_int", FeatureType::kInt64, true},
              {"f_double", FeatureType::kDouble, true},
              {"f_str", FeatureType::kString, true},
              {"f_bool", FeatureType::kBool, true},
              {"f_emb", FeatureType::kEmbedding, true}})
      .value();
}

// One random row; timestamps come from a coarse grid so duplicate
// (entity, ts) pairs — and therefore append-order tie-breaks — are common.
Row RandomRow(Rng& rng, const SchemaPtr& schema, bool string_keys,
              int64_t entities, int serial) {
  const Timestamp ts = Hours(6) * static_cast<Timestamp>(rng.Uniform(40));
  std::vector<Value> values;
  values.push_back(
      MakeKey(string_keys, static_cast<int64_t>(rng.Uniform(entities))));
  values.push_back(Value::Time(ts));
  values.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                      : Value::Int64(serial));
  values.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                      : Value::Double(rng.Gaussian()));
  values.push_back(rng.Bernoulli(0.2)
                       ? Value::Null()
                       : Value::String("value_" + std::to_string(serial)));
  values.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                      : Value::Bool(rng.Bernoulli(0.5)));
  if (rng.Bernoulli(0.25)) {
    values.push_back(Value::Null());
  } else {
    std::vector<float> vec(1 + rng.Uniform(4));
    for (float& f : vec) f = static_cast<float>(rng.Gaussian());
    values.push_back(Value::Embedding(std::move(vec)));
  }
  return Row::Create(schema, std::move(values)).value();
}

// An oracle/columnar table pair fed identical op streams.
struct TablePair {
  std::unique_ptr<OfflineTable> oracle;
  std::unique_ptr<OfflineTable> columnar;
};

TablePair MakePair(Rng& rng, const SchemaPtr& schema, const std::string& name,
                   const std::string& spill_dir) {
  OfflineTableOptions oracle_options;
  oracle_options.name = name;
  oracle_options.schema = schema;
  oracle_options.entity_column = "key";
  oracle_options.time_column = "event_time";
  oracle_options.seal_rows = 0;  // Never seals: the legacy row engine.

  OfflineTableOptions columnar_options = oracle_options;
  columnar_options.seal_rows = 1 + rng.Uniform(24);
  columnar_options.compact_min_segments = 2 + rng.Uniform(3);
  if (!spill_dir.empty() && rng.Bernoulli(0.5)) {
    columnar_options.memory_budget_bytes = 2048;
    columnar_options.spill_dir = spill_dir;
    // Readahead must be a pure latency optimization: results stay
    // byte-identical with prefetching racing the gather cursor.
    if (rng.Bernoulli(0.5)) {
      columnar_options.readahead.enabled = true;
      columnar_options.readahead.max_in_flight = 1 + rng.Uniform(4);
    }
  }
  if (rng.Bernoulli(0.5)) {
    columnar_options.compaction_policy = CompactionPolicy::kSizeTiered;
  }

  TablePair pair;
  pair.oracle = OfflineTable::Create(oracle_options).value();
  pair.columnar = OfflineTable::Create(columnar_options).value();
  return pair;
}

void AppendBoth(TablePair& pair, const std::vector<Row>& rows) {
  ASSERT_TRUE(pair.oracle->AppendBatch(rows).ok());
  ASSERT_TRUE(pair.columnar->AppendBatch(rows).ok());
}

// Random maintenance op on the columnar side only; every op must keep the
// engines observationally identical.
void RandomMaintenance(Rng& rng, OfflineTable* table) {
  switch (rng.Uniform(4)) {
    case 0:
      ASSERT_TRUE(table->SealHeads().ok());
      break;
    case 1:
      ASSERT_TRUE(table->CompactPartitions().ok());
      break;
    case 2:
      ASSERT_TRUE(table->EnforceMemoryBudget().ok());
      break;
    default:
      ASSERT_TRUE(table->RunMaintenance().ok());
      break;
  }
}

void CheckScans(const TablePair& pair, Rng& rng) {
  ASSERT_EQ(pair.columnar->num_rows(), pair.oracle->num_rows());
  ASSERT_EQ(pair.columnar->num_partitions(), pair.oracle->num_partitions());
  ASSERT_EQ(pair.columnar->max_event_time(), pair.oracle->max_event_time());
  EXPECT_EQ(RowsBytes(pair.columnar->Scan()), RowsBytes(pair.oracle->Scan()));
  const Timestamp lo = Hours(rng.Uniform(120));
  const Timestamp hi = lo + Hours(1 + rng.Uniform(120));
  const auto pred = [](const Row& row) {
    const Value& v = row.value(2);
    return v.is_null() || v.int64_value() % 2 == 0;
  };
  EXPECT_EQ(RowsBytes(pair.columnar->ScanIf(lo, hi, pred)),
            RowsBytes(pair.oracle->ScanIf(lo, hi, pred)));
  EXPECT_EQ(pair.columnar->EntityKeys(), pair.oracle->EntityKeys());
}

void CheckLatest(const TablePair& pair, Rng& rng) {
  const Timestamp cutoff = Hours(rng.Uniform(260));
  EXPECT_EQ(RowsBytes(pair.columnar->LatestPerEntityAsOf(cutoff)),
            RowsBytes(pair.oracle->LatestPerEntityAsOf(cutoff)));
}

std::vector<AsOfRequest> RandomSortedRequests(
    Rng& rng, bool string_keys, int64_t entities,
    std::vector<std::string>* key_storage) {
  const size_t n = 8 + rng.Uniform(24);
  std::vector<std::pair<std::string, Timestamp>> raw;
  raw.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Value key =
        MakeKey(string_keys, static_cast<int64_t>(rng.Uniform(entities + 3)));
    raw.emplace_back(key.type() == FeatureType::kString
                         ? key.string_value()
                         : std::to_string(key.int64_value()),
                     Hours(rng.Uniform(260)));
  }
  std::sort(raw.begin(), raw.end());
  key_storage->clear();
  key_storage->reserve(raw.size());
  std::vector<AsOfRequest> requests(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    key_storage->push_back(std::move(raw[i].first));
    requests[i] = {(*key_storage)[i], raw[i].second};
  }
  return requests;
}

// Full-width batch reads: the columnar engine must return byte-identical
// rows, and its miss *bitmap* must agree with the oracle's legacy
// "untouched result row" miss convention.
void CheckAsOfBatch(const TablePair& pair, Rng& rng, bool string_keys,
                    int64_t entities) {
  std::vector<std::string> key_storage;
  std::vector<AsOfRequest> requests =
      RandomSortedRequests(rng, string_keys, entities, &key_storage);
  const size_t n = requests.size();
  std::vector<Row> oracle_rows(n);
  ASSERT_TRUE(pair.oracle
                  ->AsOfBatch(std::span<const AsOfRequest>(requests),
                              std::span<Row>(oracle_rows))
                  .ok());
  std::vector<Row> columnar_rows(n);
  std::vector<uint64_t> miss_bitmap;
  AsOfReadOptions options;
  options.miss_bitmap = &miss_bitmap;
  ASSERT_TRUE(pair.columnar
                  ->AsOfBatch(std::span<const AsOfRequest>(requests),
                              std::span<Row>(columnar_rows), options)
                  .ok());
  for (size_t i = 0; i < n; ++i) {
    const bool oracle_miss = oracle_rows[i].schema() == nullptr;
    EXPECT_EQ(MissBitmapTest(miss_bitmap, i), oracle_miss) << "request " << i;
    if (!oracle_miss) {
      EXPECT_EQ(RowsBytes({columnar_rows[i]}), RowsBytes({oracle_rows[i]}))
          << "request " << i;
    }
  }
}

// Projected batch reads against manual projections of the oracle's
// full-width answers.
void CheckProjectedAsOfBatch(const TablePair& pair, Rng& rng,
                             bool string_keys, int64_t entities) {
  const SchemaPtr& schema = pair.oracle->options().schema;
  std::vector<int> columns;
  for (int c = 0; c < static_cast<int>(schema->num_fields()); ++c) {
    if (rng.Bernoulli(0.5)) columns.push_back(c);
  }
  if (columns.empty()) columns.push_back(static_cast<int>(rng.Uniform(7)));
  std::vector<FieldSpec> fields;
  for (int c : columns) fields.push_back(schema->field(c));
  const SchemaPtr projected_schema = Schema::Create(fields).value();

  std::vector<std::string> key_storage;
  std::vector<AsOfRequest> requests =
      RandomSortedRequests(rng, string_keys, entities, &key_storage);
  const size_t n = requests.size();
  std::vector<Row> oracle_rows(n);
  ASSERT_TRUE(pair.oracle
                  ->AsOfBatch(std::span<const AsOfRequest>(requests),
                              std::span<Row>(oracle_rows))
                  .ok());
  std::vector<Row> columnar_rows(n);
  std::vector<uint64_t> miss_bitmap;
  AsOfReadOptions options;
  options.columns = columns;
  options.projected_schema = projected_schema;
  options.miss_bitmap = &miss_bitmap;
  ASSERT_TRUE(pair.columnar
                  ->AsOfBatch(std::span<const AsOfRequest>(requests),
                              std::span<Row>(columnar_rows), options)
                  .ok());
  for (size_t i = 0; i < n; ++i) {
    const bool oracle_miss = oracle_rows[i].schema() == nullptr;
    ASSERT_EQ(MissBitmapTest(miss_bitmap, i), oracle_miss) << "request " << i;
    if (oracle_miss) continue;
    std::vector<Value> want;
    for (int c : columns) want.push_back(oracle_rows[i].value(c));
    Row want_row = Row::CreateUnsafe(projected_schema, std::move(want));
    EXPECT_EQ(RowsBytes({columnar_rows[i]}), RowsBytes({want_row}))
        << "request " << i;
  }
}

// Projected scans must equal the manual projection of the legacy scan.
void CheckScanColumns(const TablePair& pair, Rng& rng) {
  const SchemaPtr& schema = pair.oracle->options().schema;
  std::vector<int> columns = {1, 4};  // event_time + f_str.
  std::vector<FieldSpec> fields;
  for (int c : columns) fields.push_back(schema->field(c));
  AsOfReadOptions options;
  options.columns = columns;
  options.projected_schema = Schema::Create(fields).value();
  const Timestamp lo = Hours(rng.Uniform(120));
  const Timestamp hi = lo + Hours(1 + rng.Uniform(140));
  auto projected = pair.columnar->ScanColumns(lo, hi, options);
  ASSERT_TRUE(projected.ok()) << projected.status();
  std::vector<Row> want;
  for (const Row& row : pair.oracle->Scan(lo, hi)) {
    std::vector<Value> values;
    for (int c : columns) values.push_back(row.value(c));
    want.push_back(Row::CreateUnsafe(options.projected_schema,
                                     std::move(values)));
  }
  EXPECT_EQ(RowsBytes(*projected), RowsBytes(want));
}

class ColumnarPropertyTest : public ::testing::TestWithParam<bool> {};

// The core differential loop: randomized append/maintenance scripts with
// queries interleaved. 2 key types × 56 trials = 112 randomized fixtures.
TEST_P(ColumnarPropertyTest, ColumnarEngineMatchesRowOracle) {
  const bool string_keys = GetParam();
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) /
       (std::string("mlfs_columnar_prop_") +
        (string_keys ? "str" : "int")))
          .string();
  for (uint64_t trial = 0; trial < 56; ++trial) {
    Rng rng(0xc01 + trial * 977 + (string_keys ? 13 : 0));
    const SchemaPtr schema = SourceSchema(string_keys);
    TablePair pair = MakePair(rng, schema, "events", spill_dir);
    const int64_t entities = 6;

    std::vector<Row> rows;
    const size_t total = 60 + rng.Uniform(120);
    for (size_t i = 0; i < total; ++i) {
      rows.push_back(RandomRow(rng, schema, string_keys, entities,
                               static_cast<int>(i)));
    }
    rng.Shuffle(&rows);  // Late/out-of-order arrival is the norm.

    size_t cursor = 0;
    while (cursor < rows.size()) {
      const size_t batch = 1 + rng.Uniform(24);
      const size_t end = std::min(rows.size(), cursor + batch);
      AppendBoth(pair,
                 std::vector<Row>(rows.begin() + cursor, rows.begin() + end));
      cursor = end;
      if (rng.Bernoulli(0.6)) RandomMaintenance(rng, pair.columnar.get());
      if (rng.Bernoulli(0.3)) {
        CheckAsOfBatch(pair, rng, string_keys, entities);
      }
    }
    RandomMaintenance(rng, pair.columnar.get());
    // Guarantee the final checks run against sealed segments even when the
    // random maintenance schedule never picked an unconditional seal.
    ASSERT_TRUE(pair.columnar->SealHeads().ok());

    CheckScans(pair, rng);
    CheckLatest(pair, rng);
    CheckAsOfBatch(pair, rng, string_keys, entities);
    CheckProjectedAsOfBatch(pair, rng, string_keys, entities);
    CheckScanColumns(pair, rng);

    // The columnar table must actually be exercising the columnar tier —
    // otherwise the trial silently degenerates into row-vs-row.
    const OfflineStorageStats stats = pair.columnar->storage_stats();
    EXPECT_GT(stats.sealed_rows, 0u) << "trial " << trial;
  }
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

// Point-in-time joins over columnar sources must be byte-identical to the
// same joins over the row oracle AND to the row-at-a-time reference join,
// including projection (output_columns) and max_age cutoffs. Also pins the
// SpineIndex reuse path: one prebuilt spine index must serve repeated
// joins with identical results.
TEST_P(ColumnarPropertyTest, PointInTimeJoinMatchesOracleSources) {
  const bool string_keys = GetParam();
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) /
       (std::string("mlfs_columnar_join_") +
        (string_keys ? "str" : "int")))
          .string();
  for (uint64_t trial = 0; trial < 24; ++trial) {
    Rng rng(0xdead + trial * 131 + (string_keys ? 7 : 0));
    const SchemaPtr schema = SourceSchema(string_keys);
    TablePair source_a = MakePair(rng, schema, "source_a", spill_dir);
    TablePair source_b = MakePair(rng, schema, "source_b", spill_dir);
    const int64_t entities = 6;

    for (TablePair* pair : {&source_a, &source_b}) {
      std::vector<Row> rows;
      const size_t total = 50 + rng.Uniform(100);
      for (size_t i = 0; i < total; ++i) {
        rows.push_back(RandomRow(rng, schema, string_keys, entities,
                                 static_cast<int>(i)));
      }
      rng.Shuffle(&rows);
      size_t cursor = 0;
      while (cursor < rows.size()) {
        const size_t end = std::min(rows.size(), cursor + 1 + rng.Uniform(16));
        AppendBoth(*pair, std::vector<Row>(rows.begin() + cursor,
                                           rows.begin() + end));
        cursor = end;
        if (rng.Bernoulli(0.5)) RandomMaintenance(rng, pair->columnar.get());
      }
    }

    const SchemaPtr spine_schema =
        Schema::Create({{"key",
                         string_keys ? FeatureType::kString
                                     : FeatureType::kInt64,
                         false},
                        {"ts", FeatureType::kTimestamp, false},
                        {"label", FeatureType::kBool, false}})
            .value();
    std::vector<Row> spine;
    const size_t spine_rows = 30 + rng.Uniform(40);
    for (size_t i = 0; i < spine_rows; ++i) {
      spine.push_back(
          Row::Create(
              spine_schema,
              {MakeKey(string_keys,
                       static_cast<int64_t>(rng.Uniform(entities + 3))),
               Value::Time(Hours(rng.Uniform(260))),
               Value::Bool(rng.Bernoulli(0.5))})
              .value());
    }

    const auto make_sources = [&](const TablePair& a, const TablePair& b,
                                  bool columnar) {
      JoinSource sa;
      sa.table = columnar ? a.columnar.get() : a.oracle.get();
      sa.columns = {"f_int", "f_str", "f_emb"};
      sa.prefix = "a__";
      sa.max_age = rng.Bernoulli(0.5) ? Hours(1 + rng.Uniform(72)) : 0;
      JoinSource sb;
      sb.table = columnar ? b.columnar.get() : b.oracle.get();
      sb.columns = {"f_double", "f_bool"};
      sb.output_columns = {"renamed_d", "renamed_b"};
      sb.max_age = sa.max_age;
      return std::vector<JoinSource>{sa, sb};
    };
    // Draw the source config once, then retarget the copy so the oracle
    // and columnar joins see identical max_age/projection settings.
    std::vector<JoinSource> oracle_sources =
        make_sources(source_a, source_b, false);
    std::vector<JoinSource> columnar_sources = oracle_sources;
    columnar_sources[0].table = source_a.columnar.get();
    columnar_sources[1].table = source_b.columnar.get();

    auto reference =
        PointInTimeJoinReference(spine, "key", "ts", oracle_sources);
    ASSERT_TRUE(reference.ok()) << reference.status();
    auto over_oracle = PointInTimeJoin(spine, "key", "ts", oracle_sources);
    ASSERT_TRUE(over_oracle.ok()) << over_oracle.status();
    auto over_columnar =
        PointInTimeJoin(spine, "key", "ts", columnar_sources);
    ASSERT_TRUE(over_columnar.ok()) << over_columnar.status();

    const std::string want = TrainingSetBytes(*reference);
    EXPECT_EQ(TrainingSetBytes(*over_oracle), want) << "trial " << trial;
    EXPECT_EQ(TrainingSetBytes(*over_columnar), want) << "trial " << trial;

    // SpineIndex reuse: the same prebuilt index must serve repeated joins
    // (and the naive-latest variant) with unchanged results.
    auto index = SpineIndex::Build(spine, "key", "ts");
    ASSERT_TRUE(index.ok()) << index.status();
    for (int repeat = 0; repeat < 2; ++repeat) {
      auto joined = PointInTimeJoin(*index, columnar_sources);
      ASSERT_TRUE(joined.ok()) << joined.status();
      EXPECT_EQ(TrainingSetBytes(*joined), want)
          << "trial " << trial << " repeat " << repeat;
    }
    auto naive_ref =
        NaiveLatestJoinReference(spine, "key", "ts", oracle_sources);
    ASSERT_TRUE(naive_ref.ok());
    auto naive = NaiveLatestJoin(*index, columnar_sources);
    ASSERT_TRUE(naive.ok()) << naive.status();
    EXPECT_EQ(TrainingSetBytes(*naive), TrainingSetBytes(*naive_ref))
        << "trial " << trial;
  }
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

INSTANTIATE_TEST_SUITE_P(KeyTypes, ColumnarPropertyTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "StringKeys" : "Int64Keys";
                         });

// A backfill more than 2x the configured memory budget must complete with
// the overflow served from the spill tier, and stay byte-identical to the
// oracle end to end.
TEST(ColumnarSpillTest, BackfillLargerThanMemoryBudgetSpills) {
  Rng rng(0x5b11);
  const SchemaPtr schema = SourceSchema(/*string_keys=*/true);
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_spill_backfill")
          .string();

  OfflineTableOptions oracle_options;
  oracle_options.name = "backfill";
  oracle_options.schema = schema;
  oracle_options.entity_column = "key";
  oracle_options.time_column = "event_time";
  oracle_options.seal_rows = 0;
  OfflineTableOptions columnar_options = oracle_options;
  columnar_options.seal_rows = 256;
  columnar_options.memory_budget_bytes = 64 * 1024;
  columnar_options.spill_dir = spill_dir;

  TablePair pair;
  pair.oracle = OfflineTable::Create(oracle_options).value();
  pair.columnar = OfflineTable::Create(columnar_options).value();

  size_t appended = 0;
  for (int batch = 0; batch < 40; ++batch) {
    std::vector<Row> rows;
    for (int i = 0; i < 256; ++i) {
      rows.push_back(RandomRow(rng, schema, true, 32,
                               static_cast<int>(appended + i)));
    }
    appended += rows.size();
    AppendBoth(pair, rows);
    ASSERT_TRUE(pair.columnar->RunMaintenance().ok());
  }

  const OfflineStorageStats stats = pair.columnar->storage_stats();
  EXPECT_GT(stats.spilled_segments, 0u);
  EXPECT_LE(stats.resident_segment_bytes,
            columnar_options.memory_budget_bytes);
  // The backfill really was bigger than RAM allows: the spilled tier holds
  // at least 2x the budget.
  EXPECT_GE(stats.spilled_bytes, 2 * columnar_options.memory_budget_bytes);

  // And the tiered table still reads byte-identically to the oracle.
  EXPECT_EQ(RowsBytes(pair.columnar->Scan()), RowsBytes(pair.oracle->Scan()));
  CheckAsOfBatch(pair, rng, /*string_keys=*/true, 32);
  CheckLatest(pair, rng);

  // Spill files are scratch: dropping the table removes them.
  pair.columnar.reset();
  size_t leftover = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(spill_dir, ec)) {
    (void)entry;
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
  std::filesystem::remove_all(spill_dir, ec);
}

// Snapshot/restore differential: a columnar snapshot (which embeds sealed
// segments) must restore into a table that reads identically, and the v2
// restore path must reproduce the oracle's tie-breaks.
TEST(ColumnarSnapshotTest, SnapshotRoundTripMatchesOracle) {
  Rng rng(0x54a9);
  const SchemaPtr schema = SourceSchema(/*string_keys=*/false);
  TablePair pair = MakePair(rng, schema, "snap", "");
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(RandomRow(rng, schema, false, 6, i));
  }
  rng.Shuffle(&rows);
  AppendBoth(pair, rows);
  ASSERT_TRUE(pair.columnar->SealHeads().ok());
  std::vector<Row> tail;
  for (int i = 300; i < 340; ++i) {
    tail.push_back(RandomRow(rng, schema, false, 6, i));
  }
  AppendBoth(pair, tail);  // Leave a non-empty mutable head too.

  auto restored = OfflineTable::FromSnapshot(pair.columnar->Snapshot());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(RowsBytes((*restored)->Scan()), RowsBytes(pair.oracle->Scan()));
  EXPECT_EQ(RowsBytes((*restored)->LatestPerEntityAsOf(Hours(200))),
            RowsBytes(pair.oracle->LatestPerEntityAsOf(Hours(200))));
  const OfflineStorageStats stats = (*restored)->storage_stats();
  EXPECT_GT(stats.sealed_segments, 0u);  // Segments traveled as segments.
}

// The legacy (pre-columnar) row-stream snapshot format must still restore.
TEST(ColumnarSnapshotTest, LegacyV1SnapshotStillRestores) {
  Rng rng(0x1e9a);
  const SchemaPtr schema = SourceSchema(/*string_keys=*/false);
  TablePair pair = MakePair(rng, schema, "legacy", "");
  std::vector<Row> rows;
  for (int i = 0; i < 120; ++i) {
    rows.push_back(RandomRow(rng, schema, false, 5, i));
  }
  AppendBoth(pair, rows);

  // Hand-encode the v1 format: magic "MLFS", options, then a bare row
  // stream in partition order (which for the oracle is Scan order).
  Encoder enc;
  enc.PutFixed32(0x4d4c4653);
  enc.PutString("legacy");
  enc.PutString("key");
  enc.PutString("event_time");
  enc.PutFixed64(static_cast<uint64_t>(kMicrosPerDay));
  enc.PutSchema(*schema);
  const std::vector<Row> in_order = pair.oracle->Scan();
  enc.PutVarint64(in_order.size());
  for (const Row& row : in_order) enc.PutRow(row);

  auto restored = OfflineTable::FromSnapshot(enc.Release());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(RowsBytes((*restored)->Scan()), RowsBytes(pair.oracle->Scan()));
  EXPECT_EQ((*restored)->num_rows(), pair.oracle->num_rows());
}

}  // namespace
}  // namespace mlfs
