#include <gtest/gtest.h>

#include <cmath>

#include "expr/evaluator.h"
#include "expr/parser.h"

namespace mlfs {
namespace {

SchemaPtr EvalSchema() {
  return Schema::Create({{"i", FeatureType::kInt64, true},
                         {"j", FeatureType::kInt64, true},
                         {"d", FeatureType::kDouble, true},
                         {"s", FeatureType::kString, true},
                         {"b", FeatureType::kBool, true},
                         {"ts", FeatureType::kTimestamp, true},
                         {"e", FeatureType::kEmbedding, true},
                         {"e2", FeatureType::kEmbedding, true}})
      .value();
}

Row EvalRow() {
  return Row::Create(EvalSchema(),
                     {Value::Int64(6), Value::Int64(4), Value::Double(2.5),
                      Value::String("Hello"), Value::Bool(true),
                      Value::Time(Days(3) + Hours(7)),
                      Value::Embedding({3.0f, 4.0f}),
                      Value::Embedding({1.0f, 0.0f})})
      .value();
}

Value EvalOn(const std::string& src, const Row& row) {
  auto expr = ParseExpr(src);
  EXPECT_TRUE(expr.ok()) << src << ": " << expr.status();
  auto v = EvalExpr(**expr, row);
  EXPECT_TRUE(v.ok()) << src << ": " << v.status();
  return *v;
}

Value EvalDefault(const std::string& src) { return EvalOn(src, EvalRow()); }

TEST(EvalTest, Arithmetic) {
  EXPECT_EQ(EvalDefault("i + j"), Value::Int64(10));
  EXPECT_EQ(EvalDefault("i - j"), Value::Int64(2));
  EXPECT_EQ(EvalDefault("i * j"), Value::Int64(24));
  EXPECT_EQ(EvalDefault("i / j"), Value::Double(1.5));
  EXPECT_EQ(EvalDefault("i % j"), Value::Int64(2));
  EXPECT_EQ(EvalDefault("i + d"), Value::Double(8.5));
  EXPECT_EQ(EvalDefault("-i"), Value::Int64(-6));
  EXPECT_EQ(EvalDefault("-d"), Value::Double(-2.5));
}

TEST(EvalTest, DivModByZeroYieldNull) {
  EXPECT_TRUE(EvalDefault("i / 0").is_null());
  EXPECT_TRUE(EvalDefault("i % 0").is_null());
  EXPECT_TRUE(EvalDefault("i / 0.0").is_null());
}

TEST(EvalTest, StringConcatViaPlus) {
  EXPECT_EQ(EvalDefault("s + '!'"), Value::String("Hello!"));
}

TEST(EvalTest, Comparisons) {
  EXPECT_EQ(EvalDefault("i > j"), Value::Bool(true));
  EXPECT_EQ(EvalDefault("i <= 6"), Value::Bool(true));
  EXPECT_EQ(EvalDefault("i == 6"), Value::Bool(true));
  EXPECT_EQ(EvalDefault("i != 6"), Value::Bool(false));
  EXPECT_EQ(EvalDefault("d < i"), Value::Bool(true));  // Mixed numeric.
  EXPECT_EQ(EvalDefault("s == 'Hello'"), Value::Bool(true));
  EXPECT_EQ(EvalDefault("s < 'World'"), Value::Bool(true));
  EXPECT_EQ(EvalDefault("ts > ts - 1"), Value::Bool(true));
  // Heterogeneous equality is false, not an error.
  EXPECT_EQ(EvalDefault("s == 5"), Value::Bool(false));
  EXPECT_EQ(EvalDefault("s != 5"), Value::Bool(true));
}

TEST(EvalTest, ThreeValuedLogic) {
  EXPECT_EQ(EvalDefault("true and false"), Value::Bool(false));
  EXPECT_EQ(EvalDefault("true or false"), Value::Bool(true));
  EXPECT_TRUE(EvalDefault("null and true").is_null());
  EXPECT_EQ(EvalDefault("null and false"), Value::Bool(false));
  EXPECT_EQ(EvalDefault("null or true"), Value::Bool(true));
  EXPECT_TRUE(EvalDefault("null or false").is_null());
  EXPECT_TRUE(EvalDefault("not null").is_null());
  EXPECT_EQ(EvalDefault("not b"), Value::Bool(false));
}

TEST(EvalTest, NullPropagation) {
  EXPECT_TRUE(EvalDefault("i + null").is_null());
  EXPECT_TRUE(EvalDefault("null * 2").is_null());
  EXPECT_TRUE(EvalDefault("null == null").is_null());  // SQL semantics.
  EXPECT_TRUE(EvalDefault("abs(null)").is_null());
  EXPECT_TRUE(EvalDefault("-(null)").is_null());
}

TEST(EvalTest, NullFunctions) {
  EXPECT_EQ(EvalDefault("coalesce(null, null, 7)"), Value::Int64(7));
  EXPECT_TRUE(EvalDefault("coalesce(null, null)").is_null());
  EXPECT_EQ(EvalDefault("coalesce(i, 0)"), Value::Int64(6));
  EXPECT_EQ(EvalDefault("is_null(null)"), Value::Bool(true));
  EXPECT_EQ(EvalDefault("is_null(i)"), Value::Bool(false));
  EXPECT_EQ(EvalDefault("if(i > j, 'big', 'small')"), Value::String("big"));
  EXPECT_TRUE(EvalDefault("if(null, 1, 2)").is_null());
}

TEST(EvalTest, MathFunctions) {
  EXPECT_EQ(EvalDefault("abs(-3)"), Value::Int64(3));
  EXPECT_EQ(EvalDefault("abs(-2.5)"), Value::Double(2.5));
  EXPECT_DOUBLE_EQ(EvalDefault("log(exp(2.0))").double_value(), 2.0);
  EXPECT_DOUBLE_EQ(EvalDefault("sqrt(16)").double_value(), 4.0);
  EXPECT_DOUBLE_EQ(EvalDefault("pow(2, 10)").double_value(), 1024.0);
  EXPECT_EQ(EvalDefault("floor(2.7)"), Value::Double(2.0));
  EXPECT_EQ(EvalDefault("ceil(2.2)"), Value::Double(3.0));
  EXPECT_EQ(EvalDefault("round(2.5)"), Value::Double(3.0));
  EXPECT_EQ(EvalDefault("min(i, j)"), Value::Int64(4));
  EXPECT_EQ(EvalDefault("max(i, d)"), Value::Double(6.0));
  EXPECT_EQ(EvalDefault("clamp(10, 0, 5)"), Value::Double(5.0));
  EXPECT_FALSE(ParseExpr("clamp(1, 5, 0)")
                   .ok()
               ? EvalExpr(*ParseExpr("clamp(1, 5, 0)").value(), EvalRow()).ok()
               : false);  // lo > hi is an error.
}

TEST(EvalTest, StringFunctions) {
  EXPECT_EQ(EvalDefault("len(s)"), Value::Int64(5));
  EXPECT_EQ(EvalDefault("lower(s)"), Value::String("hello"));
  EXPECT_EQ(EvalDefault("upper(s)"), Value::String("HELLO"));
  EXPECT_EQ(EvalDefault("concat(s, ' ', 'World')"),
            Value::String("Hello World"));
}

TEST(EvalTest, TimestampFunctions) {
  EXPECT_EQ(EvalDefault("day(ts)"), Value::Int64(3));
  EXPECT_EQ(EvalDefault("hour(ts)"), Value::Int64(7));
}

TEST(EvalTest, EmbeddingFunctions) {
  EXPECT_EQ(EvalDefault("dim(e)"), Value::Int64(2));
  EXPECT_DOUBLE_EQ(EvalDefault("norm(e)").double_value(), 5.0);
  EXPECT_DOUBLE_EQ(EvalDefault("dot(e, e2)").double_value(), 3.0);
  EXPECT_DOUBLE_EQ(EvalDefault("cosine(e, e2)").double_value(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(EvalDefault("at(e, 1)").double_value(), 4.0);
  auto bad = EvalExpr(*ParseExpr("at(e, 5)").value(), EvalRow());
  EXPECT_FALSE(bad.ok());
}

TEST(EvalTest, CaseInsensitiveFunctionNames) {
  EXPECT_EQ(EvalDefault("ABS(-1)"), Value::Int64(1));
  EXPECT_EQ(EvalDefault("Coalesce(null, 2)"), Value::Int64(2));
}

TEST(EvalTest, RuntimeErrors) {
  Row row = EvalRow();
  EXPECT_FALSE(EvalExpr(*ParseExpr("missing_col + 1").value(), row).ok());
  EXPECT_FALSE(EvalExpr(*ParseExpr("no_such_fn(1)").value(), row).ok());
  EXPECT_FALSE(EvalExpr(*ParseExpr("abs(1, 2)").value(), row).ok());
  EXPECT_FALSE(EvalExpr(*ParseExpr("s * 2").value(), row).ok());
  EXPECT_FALSE(EvalExpr(*ParseExpr("dot(e, s)").value(), row).ok());
}

TEST(InferTypeTest, BasicTypes) {
  auto schema = EvalSchema();
  auto infer = [&](const std::string& src) {
    return InferType(*ParseExpr(src).value(), *schema);
  };
  EXPECT_EQ(infer("i + j").value(), FeatureType::kInt64);
  EXPECT_EQ(infer("i + d").value(), FeatureType::kDouble);
  EXPECT_EQ(infer("i / j").value(), FeatureType::kDouble);
  EXPECT_EQ(infer("i % j").value(), FeatureType::kInt64);
  EXPECT_EQ(infer("i > j").value(), FeatureType::kBool);
  EXPECT_EQ(infer("b and true").value(), FeatureType::kBool);
  EXPECT_EQ(infer("s + s").value(), FeatureType::kString);
  EXPECT_EQ(infer("coalesce(i, j)").value(), FeatureType::kInt64);
  EXPECT_EQ(infer("coalesce(i, d)").value(), FeatureType::kDouble);
  EXPECT_EQ(infer("if(b, i, j)").value(), FeatureType::kInt64);
  EXPECT_EQ(infer("dot(e, e2)").value(), FeatureType::kDouble);
  EXPECT_EQ(infer("dim(e)").value(), FeatureType::kInt64);
}

TEST(InferTypeTest, Errors) {
  auto schema = EvalSchema();
  auto infer = [&](const std::string& src) {
    return InferType(*ParseExpr(src).value(), *schema).status();
  };
  EXPECT_FALSE(infer("nope + 1").ok());
  EXPECT_FALSE(infer("s - 1").ok());
  EXPECT_FALSE(infer("i and b").ok());
  EXPECT_FALSE(infer("e < e2").ok());
  EXPECT_FALSE(infer("if(i, 1, 2)").ok());
  EXPECT_FALSE(infer("coalesce(s, i)").ok());
  EXPECT_FALSE(infer("unknown_fn(i)").ok());
  EXPECT_FALSE(infer("abs(s)").ok());
  EXPECT_FALSE(infer("abs()").ok());
}

TEST(CompiledExprTest, MatchesInterpreter) {
  auto schema = EvalSchema();
  Row row = EvalRow();
  const char* cases[] = {
      "i + j * 2", "coalesce(null, d) / i", "if(i > j, len(s), -1)",
      "dot(e, e2) + norm(e)", "not (b and i > 100)",
      "clamp(i / j, 0, 1)",
  };
  for (const char* src : cases) {
    auto compiled = CompiledExpr::Compile(src, schema);
    ASSERT_TRUE(compiled.ok()) << src << ": " << compiled.status();
    auto interp = EvalExpr(*ParseExpr(src).value(), row);
    auto fast = compiled->Eval(row);
    ASSERT_TRUE(interp.ok() && fast.ok()) << src;
    EXPECT_EQ(*interp, *fast) << src;
  }
}

TEST(CompiledExprTest, CompileRejectsBadExpressions) {
  auto schema = EvalSchema();
  EXPECT_FALSE(CompiledExpr::Compile("missing + 1", schema).ok());
  EXPECT_FALSE(CompiledExpr::Compile("s * 2", schema).ok());
  EXPECT_FALSE(CompiledExpr::Compile("i +", schema).ok());
  EXPECT_FALSE(CompiledExpr::Compile("i", nullptr).ok());
}

TEST(CompiledExprTest, OutputTypeExposed) {
  auto schema = EvalSchema();
  EXPECT_EQ(CompiledExpr::Compile("i / j", schema)->output_type(),
            FeatureType::kDouble);
  EXPECT_EQ(CompiledExpr::Compile("i > j", schema)->output_type(),
            FeatureType::kBool);
}

TEST(BuiltinsTest, TableNonEmptyAndSorted) {
  auto names = BuiltinFunctionNames();
  EXPECT_GE(names.size(), 20u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace mlfs
