// Embeddings as first-class citizens through the *tabular* machinery:
// a source table carries an EMBEDDING column; ordinary feature definitions
// (norm/dot/at over the vector) publish, materialize, serve, and join
// exactly like numeric features — the paper's thesis in one flow.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/feature_store.h"

namespace mlfs {
namespace {

class EmbeddingFeaturePathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Create({{"item", FeatureType::kInt64, false},
                              {"event_time", FeatureType::kTimestamp, false},
                              {"emb", FeatureType::kEmbedding, true}})
                  .value();
    OfflineTableOptions options;
    options.name = "item_vectors";
    options.schema = schema_;
    options.entity_column = "item";
    options.time_column = "event_time";
    ASSERT_TRUE(store_.CreateSourceTable(options).ok());

    Rng rng(3);
    std::vector<Row> rows;
    for (int64_t item = 0; item < 20; ++item) {
      std::vector<float> vec(8);
      for (auto& x : vec) x = static_cast<float>(rng.Gaussian());
      rows.push_back(Row::Create(schema_,
                                 {Value::Int64(item),
                                  Value::Time(Hours(1 + item)),
                                  Value::Embedding(vec)})
                         .value());
    }
    // One item with a NULL vector (upstream pipeline gap).
    rows.push_back(Row::Create(schema_, {Value::Int64(99),
                                         Value::Time(Hours(1)),
                                         Value::Null()})
                       .value());
    ASSERT_TRUE(store_.Ingest("item_vectors", rows).ok());
  }

  FeatureStore store_;
  SchemaPtr schema_;
};

TEST_F(EmbeddingFeaturePathTest, ScalarFeatureOverEmbeddingColumn) {
  FeatureDefinition def;
  def.name = "emb_norm";
  def.entity = "item";
  def.source_table = "item_vectors";
  def.expression = "norm(emb)";
  def.cadence = Hours(1);
  ASSERT_TRUE(store_.PublishFeature(def).ok());
  EXPECT_EQ(store_.registry().Get("emb_norm")->output_type,
            FeatureType::kDouble);
  ASSERT_TRUE(store_.RunMaterialization().ok());

  auto fv = store_.ServeFeatures(Value::Int64(3), {"emb_norm"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_GT(fv->values[0].double_value(), 0.0);
  // The NULL-vector item materializes a NULL feature (propagation, not
  // failure).
  auto null_fv = store_.ServeFeatures(Value::Int64(99), {"emb_norm"});
  ASSERT_TRUE(null_fv.ok());
  EXPECT_TRUE(null_fv->values[0].is_null());
}

TEST_F(EmbeddingFeaturePathTest, ComponentExtractionFeature) {
  FeatureDefinition def;
  def.name = "emb_dim0";
  def.entity = "item";
  def.source_table = "item_vectors";
  def.expression = "at(emb, 0)";
  def.cadence = Hours(1);
  ASSERT_TRUE(store_.PublishFeature(def).ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());
  auto fv = store_.ServeFeatures(Value::Int64(5), {"emb_dim0"});
  ASSERT_TRUE(fv.ok());
  // Matches the raw source vector's first component.
  auto source = store_.offline().GetTable("item_vectors").value();
  auto row = source->AsOf(Value::Int64(5), kMaxTimestamp).value();
  EXPECT_NEAR(fv->values[0].double_value(),
              row.ValueByName("emb").value().embedding_value()[0], 1e-6);
}

TEST_F(EmbeddingFeaturePathTest, EmbeddingFeaturesJoinIntoTrainingSets) {
  FeatureDefinition def;
  def.name = "emb_norm";
  def.entity = "item";
  def.source_table = "item_vectors";
  def.expression = "norm(emb)";
  def.cadence = Hours(1);
  ASSERT_TRUE(store_.PublishFeature(def).ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());

  auto spine_schema =
      Schema::Create({{"item", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false}})
          .value();
  std::vector<Row> spine = {
      Row::Create(spine_schema, {Value::Int64(3), Value::Time(Days(2))})
          .value(),
      Row::Create(spine_schema, {Value::Int64(3), Value::Time(Hours(2))})
          .value()};  // Before item 3's vector arrived at 4h.
  auto ts = store_.BuildTrainingSet(spine, "item", "ts", {"emb_norm"});
  ASSERT_TRUE(ts.ok()) << ts.status();
  EXPECT_FALSE(ts->rows[0].ValueByName("emb_norm").value().is_null());
  EXPECT_TRUE(ts->rows[1].ValueByName("emb_norm").value().is_null());
}

TEST_F(EmbeddingFeaturePathTest, DriftMonitoringOverEmbeddingDerivedFeature) {
  FeatureDefinition def;
  def.name = "emb_norm";
  def.entity = "item";
  def.source_table = "item_vectors";
  def.expression = "norm(emb)";
  def.cadence = Hours(1);
  ASSERT_TRUE(store_.PublishFeature(def).ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());
  // A second era where vectors are rescaled 5x (a broken normalization
  // upstream): the scalar drift monitor over norm(emb) catches it.
  Rng rng(4);
  std::vector<Row> rows;
  for (int64_t item = 0; item < 20; ++item) {
    std::vector<float> vec(8);
    for (auto& x : vec) x = static_cast<float>(5.0 * rng.Gaussian());
    rows.push_back(Row::Create(schema_, {Value::Int64(item),
                                         Value::Time(Days(10) + item),
                                         Value::Embedding(vec)})
                       .value());
  }
  ASSERT_TRUE(store_.Ingest("item_vectors", rows).ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());
  auto report =
      store_.CheckFeatureDrift("emb_norm", 0, Days(1), Days(9), Days(11));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->drifted);
}

}  // namespace
}  // namespace mlfs
