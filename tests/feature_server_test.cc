#include "serving/feature_server.h"

#include <gtest/gtest.h>

namespace mlfs {
namespace {

class FeatureServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    view_schema_ = Schema::Create({{"entity", FeatureType::kInt64, false},
                                   {"event_time", FeatureType::kTimestamp,
                                    false},
                                   {"value", FeatureType::kDouble, true}})
                       .value();
    ASSERT_TRUE(store_.CreateView("f1", view_schema_).ok());
    ASSERT_TRUE(store_.CreateView("f2", view_schema_).ok());
    Put("f1", 1, Hours(1), 0.5);
    Put("f2", 1, Hours(2), 0.7);
    Put("f1", 2, Hours(3), 0.9);
  }

  void Put(const std::string& view, int64_t entity, Timestamp et, double v) {
    Row row = Row::Create(view_schema_,
                          {Value::Int64(entity), Value::Time(et),
                           Value::Double(v)})
                  .value();
    ASSERT_TRUE(store_.Put(view, Value::Int64(entity), row, et, et).ok());
  }

  OnlineStore store_;
  SchemaPtr view_schema_;
};

TEST_F(FeatureServerTest, AssemblesVectorInOrder) {
  FeatureServer server(&store_);
  auto fv = server.GetFeatures(Value::Int64(1), {"f2", "f1"}, Hours(4));
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->names, (std::vector<std::string>{"f2", "f1"}));
  EXPECT_EQ(fv->values[0], Value::Double(0.7));
  EXPECT_EQ(fv->values[1], Value::Double(0.5));
  EXPECT_EQ(fv->oldest_event_time, Hours(1));
  EXPECT_EQ(fv->missing, 0u);
  EXPECT_EQ(server.requests(), 1u);
}

TEST_F(FeatureServerTest, NullPolicyFillsMissing) {
  FeatureServer server(&store_);
  auto fv = server.GetFeatures(Value::Int64(2), {"f1", "f2"}, Hours(4));
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->values[0], Value::Double(0.9));
  EXPECT_TRUE(fv->values[1].is_null());
  EXPECT_EQ(fv->missing, 1u);
}

TEST_F(FeatureServerTest, ErrorPolicyFailsRequest) {
  FeatureServerOptions options;
  options.missing_policy = MissingFeaturePolicy::kError;
  FeatureServer server(&store_, options);
  auto fv = server.GetFeatures(Value::Int64(2), {"f1", "f2"}, Hours(4));
  EXPECT_TRUE(fv.status().IsNotFound());
}

TEST_F(FeatureServerTest, RejectsNonFeatureViews) {
  auto raw_schema =
      Schema::Create({{"x", FeatureType::kInt64, true}}).value();
  ASSERT_TRUE(store_.CreateView("raw", raw_schema).ok());
  Row row = Row::Create(raw_schema, {Value::Int64(5)}).value();
  ASSERT_TRUE(store_.Put("raw", Value::Int64(1), row, 0, 0).ok());
  FeatureServer server(&store_);
  EXPECT_TRUE(server.GetFeatures(Value::Int64(1), {"raw"}, Hours(1))
                  .status().IsFailedPrecondition());
}

TEST_F(FeatureServerTest, BatchPreservesOrderAndRecordsLatency) {
  FeatureServer server(&store_);
  auto batch = server.GetFeaturesBatch(
      {Value::Int64(1), Value::Int64(2)}, {"f1"}, Hours(4));
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].values[0], Value::Double(0.5));
  EXPECT_EQ((*batch)[1].values[0], Value::Double(0.9));
  EXPECT_EQ(server.latency_histogram().count(), 2u);
  EXPECT_GT(server.latency_histogram().mean(), 0.0);
}

}  // namespace
}  // namespace mlfs
