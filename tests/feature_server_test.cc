#include "serving/feature_server.h"

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "embedding/embedding_store.h"

namespace mlfs {
namespace {

class FeatureServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    view_schema_ = Schema::Create({{"entity", FeatureType::kInt64, false},
                                   {"event_time", FeatureType::kTimestamp,
                                    false},
                                   {"value", FeatureType::kDouble, true}})
                       .value();
    ASSERT_TRUE(store_.CreateView("f1", view_schema_).ok());
    ASSERT_TRUE(store_.CreateView("f2", view_schema_).ok());
    Put("f1", 1, Hours(1), 0.5);
    Put("f2", 1, Hours(2), 0.7);
    Put("f1", 2, Hours(3), 0.9);
  }

  void Put(const std::string& view, int64_t entity, Timestamp et, double v) {
    Row row = Row::Create(view_schema_,
                          {Value::Int64(entity), Value::Time(et),
                           Value::Double(v)})
                  .value();
    ASSERT_TRUE(store_.Put(view, Value::Int64(entity), row, et, et).ok());
  }

  OnlineStore store_;
  SchemaPtr view_schema_;
};

TEST_F(FeatureServerTest, AssemblesVectorInOrder) {
  FeatureServer server(&store_);
  auto fv = server.GetFeatures(Value::Int64(1), {"f2", "f1"}, Hours(4));
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->names, (std::vector<std::string>{"f2", "f1"}));
  EXPECT_EQ(fv->values[0], Value::Double(0.7));
  EXPECT_EQ(fv->values[1], Value::Double(0.5));
  EXPECT_EQ(fv->oldest_event_time, Hours(1));
  EXPECT_EQ(fv->missing, 0u);
  EXPECT_EQ(server.requests(), 1u);
}

TEST_F(FeatureServerTest, NullPolicyFillsMissing) {
  FeatureServer server(&store_);
  auto fv = server.GetFeatures(Value::Int64(2), {"f1", "f2"}, Hours(4));
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->values[0], Value::Double(0.9));
  EXPECT_TRUE(fv->values[1].is_null());
  EXPECT_EQ(fv->missing, 1u);
}

TEST_F(FeatureServerTest, ErrorPolicyFailsRequest) {
  FeatureServerOptions options;
  options.missing_policy = MissingFeaturePolicy::kError;
  FeatureServer server(&store_, options);
  auto fv = server.GetFeatures(Value::Int64(2), {"f1", "f2"}, Hours(4));
  EXPECT_TRUE(fv.status().IsNotFound());
}

TEST_F(FeatureServerTest, RejectsNonFeatureViews) {
  auto raw_schema =
      Schema::Create({{"x", FeatureType::kInt64, true}}).value();
  ASSERT_TRUE(store_.CreateView("raw", raw_schema).ok());
  Row row = Row::Create(raw_schema, {Value::Int64(5)}).value();
  ASSERT_TRUE(store_.Put("raw", Value::Int64(1), row, 0, 0).ok());
  FeatureServer server(&store_);
  EXPECT_TRUE(server.GetFeatures(Value::Int64(1), {"raw"}, Hours(1))
                  .status().IsFailedPrecondition());
}

TEST_F(FeatureServerTest, ErrorPolicyFailsOnMissingView) {
  FeatureServerOptions options;
  options.missing_policy = MissingFeaturePolicy::kError;
  FeatureServer server(&store_, options);
  // "no_such_view" was never created: under kError the whole request fails.
  auto fv = server.GetFeatures(Value::Int64(1), {"f1", "no_such_view"},
                               Hours(4));
  EXPECT_TRUE(fv.status().IsNotFound());
  EXPECT_EQ(server.stats().degraded_features, 0u);
}

TEST_F(FeatureServerTest, TtlExpiredCellCountsExpiredAndFillsNull) {
  Row row = Row::Create(view_schema_,
                        {Value::Int64(9), Value::Time(Hours(1)),
                         Value::Double(0.1)})
                .value();
  // TTL of 1h starting at write time 1h: expired from 2h onward.
  ASSERT_TRUE(store_.Put("f1", Value::Int64(9), row, Hours(1), Hours(1),
                         Hours(1)).ok());
  FeatureServer server(&store_);
  auto fv = server.GetFeatures(Value::Int64(9), {"f1"}, Hours(3));
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_TRUE(fv->values[0].is_null());
  EXPECT_EQ(fv->missing, 1u);
  EXPECT_EQ(fv->degraded, 0u);  // An expired cell is a miss, not a fault.
  EXPECT_EQ(store_.stats().expired, 1u);
  EXPECT_EQ(fv->oldest_event_time, kMaxTimestamp);
}

class FeatureServerFailpointTest : public FeatureServerTest {
 protected:
  void SetUp() override {
    FeatureServerTest::SetUp();
    FailpointRegistry::Instance().DisarmAll();
    FailpointRegistry::Instance().Reseed(7);
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// Acceptance scenario: with the online store failing every read, the server
// retries each feature max_attempts times, then degrades the response to
// NULLs under kNull — the request still succeeds and the counters show it.
TEST_F(FeatureServerFailpointTest, RetriesThenDegradesToNullVector) {
  FeatureServerOptions options;
  options.max_attempts = 3;
  FeatureServer server(&store_, options);
  FailpointConfig config;
  config.status = Status::Internal("injected store outage");
  ScopedFailpoint fp("online_store.get", config);  // p=1.0: every read fails.

  auto fv = server.GetFeatures(Value::Int64(1), {"f1", "f2"}, Hours(4));
  ASSERT_TRUE(fv.ok()) << fv.status();
  ASSERT_EQ(fv->values.size(), 2u);
  EXPECT_TRUE(fv->values[0].is_null());
  EXPECT_TRUE(fv->values[1].is_null());
  EXPECT_EQ(fv->missing, 2u);
  EXPECT_EQ(fv->degraded, 2u);

  auto stats = server.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.retries, 4u);  // 2 features x (3 attempts - 1).
  EXPECT_EQ(stats.degraded_features, 2u);
  EXPECT_EQ(stats.degraded_responses, 1u);
  EXPECT_EQ(fp.stats().fires, 6u);  // 2 features x 3 attempts.
}

TEST_F(FeatureServerFailpointTest, RecoversWithinRetryBudget) {
  FeatureServerOptions options;
  options.max_attempts = 3;
  FeatureServer server(&store_, options);
  FailpointConfig config;
  config.status = Status::ResourceExhausted("transient overload");
  config.max_fires = 2;  // First two reads fail, then the store heals.
  ScopedFailpoint fp("online_store.get", config);

  auto fv = server.GetFeatures(Value::Int64(1), {"f1"}, Hours(4));
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->values[0], Value::Double(0.5));
  EXPECT_EQ(fv->missing, 0u);
  auto stats = server.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.degraded_features, 0u);
  EXPECT_EQ(stats.degraded_responses, 0u);
}

TEST_F(FeatureServerFailpointTest, ErrorPolicyPropagatesAfterExhaustion) {
  FeatureServerOptions options;
  options.missing_policy = MissingFeaturePolicy::kError;
  options.max_attempts = 2;
  FeatureServer server(&store_, options);
  FailpointConfig config;
  config.status = Status::Internal("injected store outage");
  ScopedFailpoint fp("online_store.get", config);

  auto fv = server.GetFeatures(Value::Int64(1), {"f1"}, Hours(4));
  EXPECT_TRUE(fv.status().IsNotFound());
  EXPECT_EQ(server.stats().retries, 1u);
}

TEST_F(FeatureServerFailpointTest, NonTransientErrorsAreNotRetried) {
  FeatureServerOptions options;
  options.max_attempts = 5;
  FeatureServer server(&store_, options);
  // A plain miss (NotFound) must not burn the retry budget.
  auto fv = server.GetFeatures(Value::Int64(999), {"f1"}, Hours(4));
  ASSERT_TRUE(fv.ok());
  EXPECT_TRUE(fv->values[0].is_null());
  EXPECT_EQ(fv->missing, 1u);
  EXPECT_EQ(fv->degraded, 0u);
  EXPECT_EQ(server.stats().retries, 0u);
}

// Batched path under a transient outage that heals after two reads: the
// per-(entity, feature)-cell retry budget recovers every value.
TEST_F(FeatureServerFailpointTest, BatchRetriesTransientCellsWithinBudget) {
  FeatureServerOptions options;
  options.max_attempts = 3;
  FeatureServer server(&store_, options);
  FailpointConfig config;
  config.status = Status::ResourceExhausted("transient overload");
  config.max_fires = 2;  // First two store reads fail, then it heals.
  ScopedFailpoint fp("online_store.get", config);

  auto batch = server.GetFeaturesBatch(
      {Value::Int64(1), Value::Int64(2)}, {"f1"}, Hours(4));
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].ok()) << batch[0].status();
  ASSERT_TRUE(batch[1].ok()) << batch[1].status();
  EXPECT_EQ(batch[0]->values[0], Value::Double(0.5));
  EXPECT_EQ(batch[1]->values[0], Value::Double(0.9));
  EXPECT_EQ(batch[0]->missing + batch[1]->missing, 0u);
  auto stats = server.stats();
  EXPECT_EQ(stats.retries, 2u);  // One per faulted cell.
  EXPECT_EQ(stats.degraded_features, 0u);
}

// Batched path with the store hard-down: every cell exhausts its retries
// and degrades to NULL under kNull; per-entity degradation is counted.
TEST_F(FeatureServerFailpointTest, BatchDegradesToNullAfterExhaustion) {
  FeatureServerOptions options;
  options.max_attempts = 2;
  FeatureServer server(&store_, options);
  FailpointConfig config;
  config.status = Status::Internal("injected store outage");
  ScopedFailpoint fp("online_store.get", config);  // p=1.0.

  auto batch = server.GetFeaturesBatch(
      {Value::Int64(1), Value::Int64(2)}, {"f1", "f2"}, Hours(4));
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& entry : batch) {
    ASSERT_TRUE(entry.ok()) << entry.status();
    EXPECT_TRUE(entry->values[0].is_null());
    EXPECT_TRUE(entry->values[1].is_null());
    EXPECT_EQ(entry->missing, 2u);
    EXPECT_EQ(entry->degraded, 2u);
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.retries, 4u);  // 2 entities x 2 features x 1 retry.
  EXPECT_EQ(stats.degraded_features, 4u);
  EXPECT_EQ(stats.degraded_responses, 2u);
  // 4 cell evaluations inside the two MultiGets + 4 individual retry Gets.
  EXPECT_EQ(fp.stats().fires, 8u);
}

TEST_F(FeatureServerTest, BatchPreservesOrderAndRecordsLatency) {
  FeatureServer server(&store_);
  auto batch = server.GetFeaturesBatch(
      {Value::Int64(1), Value::Int64(2)}, {"f1"}, Hours(4));
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].ok());
  ASSERT_TRUE(batch[1].ok());
  EXPECT_EQ(batch[0]->values[0], Value::Double(0.5));
  EXPECT_EQ(batch[1]->values[0], Value::Double(0.9));
  // Each entity counts as one request and one latency sample.
  EXPECT_EQ(server.requests(), 2u);
  EXPECT_EQ(server.latency_histogram().count(), 2u);
  EXPECT_GT(server.latency_histogram().mean(), 0.0);
}

TEST_F(FeatureServerTest, BatchMatchesPerEntityGetFeatures) {
  FeatureServer server(&store_);
  std::vector<Value> keys = {Value::Int64(2), Value::Int64(1),
                             Value::Int64(777), Value::Int64(1)};
  std::vector<std::string> features = {"f2", "f1"};
  auto batch = server.GetFeaturesBatch(keys, features, Hours(4));
  ASSERT_EQ(batch.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto single = server.GetFeatures(keys[i], features, Hours(4));
    ASSERT_TRUE(single.ok());
    ASSERT_TRUE(batch[i].ok()) << batch[i].status();
    EXPECT_EQ(batch[i]->names, single->names);
    EXPECT_EQ(batch[i]->values, single->values);
    EXPECT_EQ(batch[i]->oldest_event_time, single->oldest_event_time);
    EXPECT_EQ(batch[i]->missing, single->missing);
  }
}

TEST_F(FeatureServerTest, BatchErrorPolicyFailsOnlyTheMissingEntity) {
  FeatureServerOptions options;
  options.missing_policy = MissingFeaturePolicy::kError;
  FeatureServer server(&store_, options);
  // Entity 1 has f1 and f2; entity 2 has only f1: under kError, only
  // entity 2's entry fails — its batch-mates are unaffected.
  auto batch = server.GetFeaturesBatch(
      {Value::Int64(1), Value::Int64(2)}, {"f1", "f2"}, Hours(4));
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].ok()) << batch[0].status();
  EXPECT_EQ(batch[0]->values[0], Value::Double(0.5));
  EXPECT_EQ(batch[0]->values[1], Value::Double(0.7));
  EXPECT_TRUE(batch[1].status().IsNotFound());
}

TEST_F(FeatureServerTest, BatchRejectsNonFeatureViewsPerEntity) {
  auto raw_schema =
      Schema::Create({{"x", FeatureType::kInt64, true}}).value();
  ASSERT_TRUE(store_.CreateView("raw", raw_schema).ok());
  Row row = Row::Create(raw_schema, {Value::Int64(5)}).value();
  ASSERT_TRUE(store_.Put("raw", Value::Int64(1), row, 0, 0).ok());
  FeatureServer server(&store_);
  auto batch = server.GetFeaturesBatch(
      {Value::Int64(1), Value::Int64(1)}, {"raw"}, Hours(1));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].status().IsFailedPrecondition());
  EXPECT_TRUE(batch[1].status().IsFailedPrecondition());
}

TEST_F(FeatureServerTest, BatchParallelAssemblyMatchesSerial) {
  FeatureServerOptions parallel_options;
  parallel_options.batch_parallelism = 4;
  FeatureServer parallel_server(&store_, parallel_options);
  FeatureServer serial_server(&store_);
  std::vector<Value> keys;
  for (int64_t e = 0; e < 16; ++e) keys.push_back(Value::Int64(e % 3));
  std::vector<std::string> features = {"f1", "f2", "f1"};
  auto parallel = parallel_server.GetFeaturesBatch(keys, features, Hours(4));
  auto serial = serial_server.GetFeaturesBatch(keys, features, Hours(4));
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    ASSERT_EQ(parallel[i].ok(), serial[i].ok());
    if (!parallel[i].ok()) continue;
    EXPECT_EQ(parallel[i]->values, serial[i]->values);
    EXPECT_EQ(parallel[i]->missing, serial[i]->missing);
    EXPECT_EQ(parallel[i]->oldest_event_time, serial[i]->oldest_event_time);
  }
  EXPECT_EQ(parallel_server.requests(), keys.size());
}

TEST_F(FeatureServerTest, EmptyBatchIsEmpty) {
  FeatureServer server(&store_);
  EXPECT_TRUE(server.GetFeaturesBatch({}, {"f1"}, Hours(4)).empty());
  EXPECT_EQ(server.requests(), 0u);
}

/// Embedding-feature hydration: a requested feature that is not an online
/// view but resolves in the EmbeddingStore is served straight from the
/// embedding table.
class FeatureServerEmbeddingTest : public FeatureServerTest {
 protected:
  void SetUp() override {
    FeatureServerTest::SetUp();
    EmbeddingTableMetadata metadata;
    metadata.name = "user_emb";
    auto table = EmbeddingTable::Create(metadata, {"u1", "u2"},
                                        {1, 2, 3, 4, 5, 6}, 3)
                     .value();
    ASSERT_TRUE(embeddings_.Register(table, Hours(5)).ok());
  }

  EmbeddingStore embeddings_;
};

TEST_F(FeatureServerEmbeddingTest, HydratesUnmaterializedEmbedding) {
  FeatureServer server(&store_, {}, &embeddings_);
  auto fv = server.GetFeatures(Value::String("u2"), {"user_emb"}, Hours(6));
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->values[0].type(), FeatureType::kEmbedding);
  EXPECT_EQ(fv->values[0].embedding_value(), (std::vector<float>{4, 5, 6}));
  EXPECT_EQ(fv->missing, 0u);
  // Embedding freshness is its registration time.
  EXPECT_EQ(fv->oldest_event_time, Hours(5));
  // Versioned references hydrate too.
  auto pinned =
      server.GetFeatures(Value::String("u1"), {"user_emb@v1"}, Hours(6));
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  EXPECT_EQ(pinned->values[0].embedding_value(),
            (std::vector<float>{1, 2, 3}));
}

TEST_F(FeatureServerEmbeddingTest, MissingEntityFollowsPolicy) {
  FeatureServer null_server(&store_, {}, &embeddings_);
  auto fv = null_server.GetFeatures(Value::String("ghost"), {"user_emb"},
                                    Hours(6));
  ASSERT_TRUE(fv.ok());
  EXPECT_TRUE(fv->values[0].is_null());
  EXPECT_EQ(fv->missing, 1u);
  EXPECT_EQ(fv->degraded, 0u);  // A missing embedding key is not a fault.
  // Non-string entity keys cannot match an embedding key: also a miss.
  auto non_string =
      null_server.GetFeatures(Value::Int64(1), {"user_emb"}, Hours(6));
  ASSERT_TRUE(non_string.ok());
  EXPECT_TRUE(non_string->values[0].is_null());

  FeatureServerOptions options;
  options.missing_policy = MissingFeaturePolicy::kError;
  FeatureServer error_server(&store_, options, &embeddings_);
  EXPECT_TRUE(error_server.GetFeatures(Value::String("ghost"), {"user_emb"},
                                       Hours(6))
                  .status().IsNotFound());
}

TEST_F(FeatureServerEmbeddingTest, OnlineViewTakesPrecedence) {
  // Materialize a view with the same name as the embedding: the online
  // value must win, keeping pre-hydration behavior.
  ASSERT_TRUE(store_.CreateView("user_emb", view_schema_).ok());
  Put("user_emb", 7, Hours(1), 0.25);
  FeatureServer server(&store_, {}, &embeddings_);
  auto fv = server.GetFeatures(Value::Int64(7), {"user_emb"}, Hours(4));
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->values[0], Value::Double(0.25));
}

TEST_F(FeatureServerEmbeddingTest, BatchMatchesPerEntityHydration) {
  FeatureServer server(&store_, {}, &embeddings_);
  std::vector<Value> entities = {Value::String("u1"), Value::String("ghost"),
                                 Value::String("u2"), Value::Int64(1)};
  auto batch = server.GetFeaturesBatch(entities, {"user_emb"}, Hours(6));
  ASSERT_EQ(batch.size(), entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    auto single = server.GetFeatures(entities[i], {"user_emb"}, Hours(6));
    ASSERT_TRUE(batch[i].ok());
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch[i]->values, single->values) << i;
    EXPECT_EQ(batch[i]->missing, single->missing) << i;
    EXPECT_EQ(batch[i]->oldest_event_time, single->oldest_event_time) << i;
  }
  // Mixed embedding + tabular columns in one batch request.
  auto mixed = server.GetFeaturesBatch({Value::Int64(1)}, {"f1", "user_emb"},
                                       Hours(6));
  ASSERT_TRUE(mixed[0].ok()) << mixed[0].status();
  EXPECT_EQ(mixed[0]->values[0], Value::Double(0.5));
  EXPECT_TRUE(mixed[0]->values[1].is_null());  // Int64 key, string-keyed emb.
}

TEST_F(FeatureServerEmbeddingTest, BatchErrorPolicyFailsOnlyMissingEntity) {
  FeatureServerOptions options;
  options.missing_policy = MissingFeaturePolicy::kError;
  FeatureServer server(&store_, options, &embeddings_);
  auto batch = server.GetFeaturesBatch(
      {Value::String("u1"), Value::String("ghost")}, {"user_emb"}, Hours(6));
  ASSERT_TRUE(batch[0].ok()) << batch[0].status();
  EXPECT_TRUE(batch[1].status().IsNotFound());
}

}  // namespace
}  // namespace mlfs
