#include "embedding/ann.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embedding/kmeans.h"

namespace mlfs {
namespace {

std::vector<float> RandomVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n * dim);
  for (auto& x : out) x = static_cast<float>(rng.Gaussian());
  return out;
}

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two tight clusters around (0,0) and (10,10).
  Rng rng(1);
  std::vector<float> data;
  for (int i = 0; i < 100; ++i) {
    float base = (i % 2 == 0) ? 0.0f : 10.0f;
    data.push_back(base + static_cast<float>(rng.Gaussian(0, 0.2)));
    data.push_back(base + static_cast<float>(rng.Gaussian(0, 0.2)));
  }
  auto km = KMeans(data.data(), 100, 2, 2).value();
  EXPECT_EQ(km.k, 2u);
  // All even points share a cluster; all odd points share the other.
  for (int i = 2; i < 100; i += 2) {
    EXPECT_EQ(km.assignment[i], km.assignment[0]);
  }
  for (int i = 3; i < 100; i += 2) {
    EXPECT_EQ(km.assignment[i], km.assignment[1]);
  }
  EXPECT_NE(km.assignment[0], km.assignment[1]);
  EXPECT_LT(km.inertia, 20.0);
}

TEST(KMeansTest, ClampsKAndValidates) {
  std::vector<float> data = {0, 1, 2, 3};
  auto km = KMeans(data.data(), 4, 1, 10).value();
  EXPECT_EQ(km.k, 4u);
  EXPECT_FALSE(KMeans(nullptr, 4, 1, 2).ok());
  EXPECT_FALSE(KMeans(data.data(), 0, 1, 2).ok());
  EXPECT_FALSE(KMeans(data.data(), 4, 1, 0).ok());
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  auto data = RandomVectors(500, 4, 2);
  double last = 1e300;
  for (size_t k : {1, 4, 16, 64}) {
    auto km = KMeans(data.data(), 500, 4, k).value();
    EXPECT_LT(km.inertia, last + 1e-9) << k;
    last = km.inertia;
  }
}

TEST(BruteForceTest, ExactNearest) {
  std::vector<float> data = {0, 0, 1, 0, 5, 5, 0.5f, 0};
  auto index = MakeBruteForceIndex();
  ASSERT_TRUE(index->Build(data.data(), 4, 2).ok());
  float query[2] = {0.4f, 0};
  auto result = index->Search(query, 2).value();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3u);  // (0.5, 0) closest.
  EXPECT_EQ(result[1].id, 0u);
  EXPECT_LE(result[0].distance, result[1].distance);
}

TEST(BruteForceTest, MetricsBehave) {
  std::vector<float> data = {1, 0, 0, 1, 10, 0};
  auto ip = MakeBruteForceIndex(Metric::kInnerProduct);
  ASSERT_TRUE(ip->Build(data.data(), 3, 2).ok());
  float query[2] = {1, 0};
  // Inner product favors the large vector.
  EXPECT_EQ(ip->Search(query, 1).value()[0].id, 2u);
  // Cosine ignores magnitude: (1,0) and (10,0) tie; nearest is one of them.
  auto cosine = MakeBruteForceIndex(Metric::kCosine);
  ASSERT_TRUE(cosine->Build(data.data(), 3, 2).ok());
  auto top = cosine->Search(query, 2).value();
  EXPECT_TRUE((top[0].id == 0 && top[1].id == 2) ||
              (top[0].id == 2 && top[1].id == 0));
}

TEST(BruteForceTest, Validation) {
  auto index = MakeBruteForceIndex();
  float query[2] = {0, 0};
  EXPECT_TRUE(index->Search(query, 1).status().IsFailedPrecondition());
  EXPECT_FALSE(index->Build(nullptr, 1, 2).ok());
  std::vector<float> data = {0, 0};
  ASSERT_TRUE(index->Build(data.data(), 1, 2).ok());
  EXPECT_TRUE(index->Build(data.data(), 1, 2).IsFailedPrecondition());
  EXPECT_FALSE(index->Search(query, 0).ok());
  // k larger than n clamps.
  EXPECT_EQ(index->Search(query, 10).value().size(), 1u);
}

class AnnRecallTest : public ::testing::TestWithParam<int> {};

TEST_P(AnnRecallTest, ApproximateIndexesReachRecallFloor) {
  const size_t n = 2000, dim = 16, k = 10;
  auto data = RandomVectors(n, dim, 7);
  auto exact = MakeBruteForceIndex();
  ASSERT_TRUE(exact->Build(data.data(), n, dim).ok());

  std::unique_ptr<AnnIndex> index;
  if (GetParam() == 0) {
    IvfOptions options;
    options.nlist = 32;
    options.nprobe = 12;  // Gaussian data is unclustered; probe generously.
    index = MakeIvfIndex(options);
  } else {
    HnswOptions options;
    options.m = 16;
    options.ef_construction = 120;
    options.ef_search = 80;
    index = MakeHnswIndex(options);
  }
  ASSERT_TRUE(index->Build(data.data(), n, dim).ok());

  Rng rng(8);
  double total_recall = 0.0;
  const int queries = 50;
  for (int q = 0; q < queries; ++q) {
    std::vector<float> query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Gaussian());
    auto truth = exact->Search(query.data(), k).value();
    auto approx = index->Search(query.data(), k).value();
    total_recall += RecallAtK(approx, truth, k);
  }
  double recall = total_recall / queries;
  EXPECT_GT(recall, 0.85) << index->name();
}

INSTANTIATE_TEST_SUITE_P(Indexes, AnnRecallTest, ::testing::Values(0, 1));

TEST(AnnTest, ResultsSortedByDistance) {
  const size_t n = 500, dim = 8;
  auto data = RandomVectors(n, dim, 9);
  for (auto make : {+[] { return MakeBruteForceIndex(); },
                    +[] { return MakeIvfIndex({16, 4, 10, 1}); },
                    +[] { return MakeHnswIndex(); }}) {
    auto index = make();
    ASSERT_TRUE(index->Build(data.data(), n, dim).ok()) << index->name();
    float query[8] = {0};
    auto result = index->Search(query, 20).value();
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LE(result[i - 1].distance, result[i].distance) << index->name();
    }
  }
}

TEST(AnnTest, HnswSelfQueryFindsSelf) {
  const size_t n = 300, dim = 8;
  auto data = RandomVectors(n, dim, 10);
  auto index = MakeHnswIndex();
  ASSERT_TRUE(index->Build(data.data(), n, dim).ok());
  int found = 0;
  for (size_t i = 0; i < 50; ++i) {
    auto result = index->Search(data.data() + i * dim, 1).value();
    found += (!result.empty() && result[0].id == i);
  }
  EXPECT_GE(found, 48);  // Near-perfect self-retrieval.
}

TEST(AnnTest, HnswValidation) {
  HnswOptions bad;
  bad.m = 1;
  auto index = MakeHnswIndex(bad);
  std::vector<float> data = {0, 0};
  EXPECT_FALSE(index->Build(data.data(), 1, 2).ok());
}

TEST(RecallAtKTest, Basics) {
  std::vector<Neighbor> truth = {{0, 1}, {0, 2}, {0, 3}};
  std::vector<Neighbor> perfect = truth;
  std::vector<Neighbor> half = {{0, 1}, {0, 9}, {0, 3}};
  EXPECT_DOUBLE_EQ(RecallAtK(perfect, truth, 3), 1.0);
  EXPECT_NEAR(RecallAtK(half, truth, 3), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(RecallAtK({}, truth, 3), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(perfect, {}, 3), 0.0);
}

}  // namespace
}  // namespace mlfs
