// Columnar-tier concurrency soak (CTest label: stress; run under TSan).
//
// Races the storage tier's every moving part at once: writer threads
// appending batches, reader threads issuing AsOfBatch (full-width and
// projected, with miss bitmaps), scans and latest-per-entity queries,
// explicit maintenance calls, AND the background maintenance thread
// sealing/compacting/spilling underneath them. Asserts the invariants the
// differential suite pins single-threaded: no row lost or duplicated, tier
// transitions invisible to readers, stats coherent.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

constexpr int kWriters = 3;
constexpr int kReaders = 3;
constexpr int kBatchesPerWriter = 120;
constexpr int kRowsPerBatch = 16;
constexpr int64_t kKeys = 24;

SchemaPtr StressSchema() {
  return Schema::Create({{"key", FeatureType::kInt64, false},
                         {"event_time", FeatureType::kTimestamp, false},
                         {"payload", FeatureType::kString, true},
                         {"metric", FeatureType::kDouble, true}})
      .value();
}

TEST(ColumnarStressTest, MaintenanceRacesReadersAndWriters) {
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_columnar_stress")
          .string();
  const SchemaPtr schema = StressSchema();
  OfflineTableOptions options;
  options.name = "stress";
  options.schema = schema;
  options.entity_column = "key";
  options.time_column = "event_time";
  options.seal_rows = 32;
  options.compact_min_segments = 2;
  options.memory_budget_bytes = 16 * 1024;
  options.spill_dir = spill_dir;
  auto table = OfflineTable::Create(options).value();
  ASSERT_TRUE(table->StartMaintenance(/*period_millis=*/1).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> rows_written{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(0x11 * (w + 1));
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<Row> rows;
        for (int i = 0; i < kRowsPerBatch; ++i) {
          rows.push_back(
              Row::Create(
                  schema,
                  {Value::Int64(static_cast<int64_t>(rng.Uniform(kKeys))),
                   Value::Time(Hours(rng.Uniform(24 * 14))),
                   Value::String("payload_" + std::to_string(b) + "_" +
                                 std::to_string(i)),
                   Value::Double(rng.Gaussian())})
                  .value());
        }
        ASSERT_TRUE(table->AppendBatch(rows).ok());
        rows_written.fetch_add(rows.size(), std::memory_order_relaxed);
        if (rng.Bernoulli(0.1)) {
          // Explicit maintenance racing the background thread.
          ASSERT_TRUE(table->RunMaintenance().ok());
        }
      }
    });
  }

  std::vector<std::thread> readers;
  std::vector<int> proj_columns = {1, 3};  // event_time + metric.
  const SchemaPtr proj_schema =
      Schema::Create({schema->field(1), schema->field(3)}).value();
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0x37 * (r + 1));
      std::vector<std::string> keys;
      while (!stop.load(std::memory_order_acquire)) {
        // Sorted request batch over random keys/timestamps.
        keys.clear();
        for (int64_t k = 0; k < kKeys; k += 1 + rng.Uniform(4)) {
          keys.push_back(std::to_string(k));
        }
        std::sort(keys.begin(), keys.end());
        std::vector<AsOfRequest> requests;
        requests.reserve(keys.size());
        for (const std::string& key : keys) {
          requests.push_back({key, Hours(rng.Uniform(24 * 14))});
        }
        std::vector<Row> results(requests.size());
        std::vector<uint64_t> miss_bitmap;
        AsOfReadOptions read_options;
        read_options.miss_bitmap = &miss_bitmap;
        if (rng.Bernoulli(0.5)) {
          read_options.columns = proj_columns;
          read_options.projected_schema = proj_schema;
        }
        ASSERT_TRUE(table
                        ->AsOfBatch(std::span<const AsOfRequest>(requests),
                                    std::span<Row>(results), read_options)
                        .ok());
        // Hits and bitmap must agree even mid-seal/compact/spill.
        for (size_t i = 0; i < requests.size(); ++i) {
          if (!MissBitmapTest(miss_bitmap, i)) {
            ASSERT_NE(results[i].schema(), nullptr);
          }
        }
        const size_t scanned = table->Scan(Hours(10), Hours(100)).size();
        (void)scanned;
        (void)table->LatestPerEntityAsOf(Hours(rng.Uniform(24 * 14)));
        (void)table->storage_stats();
      }
    });
  }

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  table->StopMaintenance();

  // Nothing lost or duplicated across every seal/compact/spill that ran.
  EXPECT_EQ(table->num_rows(),
            rows_written.load(std::memory_order_relaxed));
  EXPECT_EQ(table->Scan().size(), table->num_rows());
  const OfflineStorageStats stats = table->storage_stats();
  EXPECT_EQ(stats.head_rows + stats.sealed_rows, table->num_rows());
  EXPECT_EQ(stats.maintenance_errors, 0u);

  table.reset();
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

// Snapshot taken while writers/maintenance race must itself be internally
// consistent (restorable, checksums valid) — it sees one locked view.
TEST(ColumnarStressTest, SnapshotUnderConcurrentMaintenanceIsConsistent) {
  const SchemaPtr schema = StressSchema();
  OfflineTableOptions options;
  options.name = "snap_race";
  options.schema = schema;
  options.entity_column = "key";
  options.time_column = "event_time";
  options.seal_rows = 16;
  options.compact_min_segments = 2;
  auto table = OfflineTable::Create(options).value();
  ASSERT_TRUE(table->StartMaintenance(1).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(0x99);
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<Row> rows;
      for (int i = 0; i < 8; ++i) {
        rows.push_back(
            Row::Create(schema,
                        {Value::Int64(static_cast<int64_t>(rng.Uniform(8))),
                         Value::Time(Hours(rng.Uniform(24 * 7))),
                         Value::Null(), Value::Double(1.0)})
                .value());
      }
      ASSERT_TRUE(table->AppendBatch(rows).ok());
    }
  });

  for (int i = 0; i < 50; ++i) {
    auto restored = OfflineTable::FromSnapshot(table->Snapshot());
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ((*restored)->num_rows(), (*restored)->Scan().size());
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  table->StopMaintenance();
}

}  // namespace
}  // namespace mlfs
