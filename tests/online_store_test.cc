#include "storage/online_store.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace mlfs {
namespace {

SchemaPtr ViewSchema() {
  return Schema::Create({{"trips", FeatureType::kInt64, true},
                         {"rating", FeatureType::kDouble, true}})
      .value();
}

Row MakeRow(const SchemaPtr& schema, int64_t trips, double rating) {
  return Row::Create(schema, {Value::Int64(trips), Value::Double(rating)})
      .value();
}

class OnlineStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = ViewSchema();
    ASSERT_TRUE(store_.CreateView("user_stats", schema_).ok());
  }

  OnlineStore store_;
  SchemaPtr schema_;
};

TEST_F(OnlineStoreTest, ViewRegistry) {
  EXPECT_TRUE(store_.HasView("user_stats"));
  EXPECT_FALSE(store_.HasView("other"));
  EXPECT_TRUE(store_.CreateView("user_stats", schema_).IsAlreadyExists());
  EXPECT_FALSE(store_.CreateView("", schema_).ok());
  EXPECT_FALSE(store_.CreateView("x", nullptr).ok());
  EXPECT_TRUE(store_.ViewSchema("user_stats").ok());
  EXPECT_TRUE(store_.ViewSchema("other").status().IsNotFound());
}

TEST_F(OnlineStoreTest, PutGetRoundTrip) {
  Row row = MakeRow(schema_, 5, 4.9);
  ASSERT_TRUE(
      store_.Put("user_stats", Value::Int64(1), row, Hours(1), Hours(1)).ok());
  auto got = store_.Get("user_stats", Value::Int64(1), Hours(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, row);
  EXPECT_TRUE(
      store_.Get("user_stats", Value::Int64(2), Hours(2)).status().IsNotFound());
}

TEST_F(OnlineStoreTest, PutValidatesViewAndSchema) {
  Row row = MakeRow(schema_, 1, 1.0);
  EXPECT_TRUE(store_.Put("missing", Value::Int64(1), row, 0, 0)
                  .IsNotFound());
  auto other = Schema::Create({{"z", FeatureType::kInt64, true}}).value();
  Row bad = Row::Create(other, {Value::Int64(1)}).value();
  EXPECT_TRUE(store_.Put("user_stats", Value::Int64(1), bad, 0, 0)
                  .IsInvalidArgument());
}

TEST_F(OnlineStoreTest, EventTimeLastWriterWins) {
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 10, 1.0), Hours(10), Hours(10))
                  .ok());
  // Older event time: dropped.
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 5, 1.0), Hours(5), Hours(11))
                  .ok());
  EXPECT_EQ(store_.Get("user_stats", Value::Int64(1), Hours(12))
                ->value(0).int64_value(), 10);
  EXPECT_EQ(store_.stats().stale_writes, 1u);
  // Newer event time: replaces.
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 20, 1.0), Hours(20), Hours(21))
                  .ok());
  EXPECT_EQ(store_.Get("user_stats", Value::Int64(1), Hours(22))
                ->value(0).int64_value(), 20);
}

TEST_F(OnlineStoreTest, TtlExpiryAndEviction) {
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 1, 1.0), Hours(1), Hours(1),
                         Hours(2))
                  .ok());
  EXPECT_TRUE(store_.Get("user_stats", Value::Int64(1), Hours(2)).ok());
  // Expired at write_time + ttl = 3h.
  EXPECT_TRUE(store_.Get("user_stats", Value::Int64(1), Hours(3))
                  .status().IsNotFound());
  EXPECT_EQ(store_.stats().expired, 1u);
  EXPECT_EQ(store_.stats().num_cells, 1u);
  EXPECT_EQ(store_.EvictExpired(Hours(3)), 1u);
  EXPECT_EQ(store_.stats().num_cells, 0u);
}

TEST_F(OnlineStoreTest, DefaultTtlFromOptions) {
  OnlineStoreOptions opt;
  opt.default_ttl = Hours(1);
  OnlineStore store(opt);
  ASSERT_TRUE(store.CreateView("v", schema_).ok());
  ASSERT_TRUE(
      store.Put("v", Value::Int64(1), MakeRow(schema_, 1, 1.0), 0, 0).ok());
  EXPECT_TRUE(store.Get("v", Value::Int64(1), Minutes(59)).ok());
  EXPECT_FALSE(store.Get("v", Value::Int64(1), Hours(1)).ok());
}

TEST_F(OnlineStoreTest, NoTtlNeverExpires) {
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 1, 1.0), 0, 0)
                  .ok());
  EXPECT_TRUE(
      store_.Get("user_stats", Value::Int64(1), kMaxTimestamp - 1).ok());
}

TEST_F(OnlineStoreTest, MultiGetPreservesOrder) {
  for (int64_t u = 0; u < 5; ++u) {
    ASSERT_TRUE(store_.Put("user_stats", Value::Int64(u),
                           MakeRow(schema_, u * 100, 0.0), Hours(1), Hours(1))
                    .ok());
  }
  auto got = store_.MultiGet(
      "user_stats",
      {Value::Int64(3), Value::Int64(99), Value::Int64(0)}, Hours(2));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0]->value(0).int64_value(), 300);
  EXPECT_TRUE(got[1].status().IsNotFound());
  EXPECT_EQ(got[2]->value(0).int64_value(), 0);
}

TEST_F(OnlineStoreTest, MultiGetDuplicateKeysEachAnswered) {
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(7),
                         MakeRow(schema_, 70, 0.0), Hours(1), Hours(1))
                  .ok());
  auto got = store_.MultiGet(
      "user_stats",
      {Value::Int64(7), Value::Int64(7), Value::Int64(8), Value::Int64(7)},
      Hours(2));
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0]->value(0).int64_value(), 70);
  EXPECT_EQ(got[1]->value(0).int64_value(), 70);
  EXPECT_TRUE(got[2].status().IsNotFound());
  EXPECT_EQ(got[3]->value(0).int64_value(), 70);
  auto s = store_.stats();
  EXPECT_EQ(s.gets, 4u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
}

TEST_F(OnlineStoreTest, MultiGetMixedHitMissExpiredCountsLikeGet) {
  // Live cell, expired cell (ttl 1h from write at 1h => dead at 2h), miss.
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 1, 0.0), Hours(1), Hours(1))
                  .ok());
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(2),
                         MakeRow(schema_, 2, 0.0), Hours(1), Hours(1),
                         Hours(1))
                  .ok());
  auto got = store_.MultiGet(
      "user_stats",
      {Value::Int64(1), Value::Int64(2), Value::Int64(3), Value::Double(0.5)},
      Hours(3));
  ASSERT_EQ(got.size(), 4u);
  EXPECT_TRUE(got[0].ok());
  EXPECT_TRUE(got[1].status().IsNotFound());  // Expired.
  EXPECT_TRUE(got[2].status().IsNotFound());  // Never written.
  EXPECT_TRUE(got[3].status().IsInvalidArgument());  // Bad key type.
  auto s = store_.stats();
  EXPECT_EQ(s.gets, 4u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.hits + s.misses, s.gets);
}

TEST_F(OnlineStoreTest, MultiGetUnknownViewMissesEveryKey) {
  auto got = store_.MultiGet("no_such_view",
                             {Value::Int64(1), Value::Int64(2)}, Hours(1));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].status().IsNotFound());
  EXPECT_TRUE(got[1].status().IsNotFound());
  EXPECT_EQ(store_.stats().misses, 2u);
}

TEST_F(OnlineStoreTest, MultiGetEmptyBatch) {
  EXPECT_TRUE(store_.MultiGet("user_stats", {}, Hours(1)).empty());
  EXPECT_EQ(store_.stats().gets, 0u);
}

TEST_F(OnlineStoreTest, MultiGetSpansManyShards) {
  OnlineStoreOptions opt;
  opt.num_shards = 64;
  OnlineStore store(opt);
  ASSERT_TRUE(store.CreateView("v", schema_).ok());
  constexpr int64_t kN = 512;  // Batch much larger than the shard count.
  for (int64_t u = 0; u < kN; u += 2) {  // Odd keys stay missing.
    ASSERT_TRUE(store.Put("v", Value::Int64(u), MakeRow(schema_, u, 0.0),
                          Hours(1), Hours(1))
                    .ok());
  }
  std::vector<Value> keys;
  for (int64_t u = 0; u < kN; ++u) keys.push_back(Value::Int64(u));
  auto got = store.MultiGet("v", keys, Hours(2));
  ASSERT_EQ(got.size(), static_cast<size_t>(kN));
  for (int64_t u = 0; u < kN; ++u) {
    if (u % 2 == 0) {
      ASSERT_TRUE(got[u].ok()) << "key " << u << ": " << got[u].status();
      EXPECT_EQ(got[u]->value(0).int64_value(), u);
    } else {
      EXPECT_TRUE(got[u].status().IsNotFound()) << "key " << u;
    }
  }
  auto s = store.stats();
  EXPECT_EQ(s.gets, static_cast<uint64_t>(kN));
  EXPECT_EQ(s.hits, static_cast<uint64_t>(kN) / 2);
}

// Property test: on random workloads (random keys, TTLs, and string/int
// key mixes), MultiGet must be observationally identical to a loop of Get
// — same per-key results *and* the same counter deltas.
TEST_F(OnlineStoreTest, MultiGetMatchesGetLoopOnRandomWorkloads) {
  Rng rng(777);
  for (int round = 0; round < 20; ++round) {
    OnlineStoreOptions opt;
    opt.num_shards = 1 + rng.Uniform(32);
    OnlineStore store(opt);
    ASSERT_TRUE(store.CreateView("v", schema_).ok());
    const int64_t key_space = 1 + static_cast<int64_t>(rng.Uniform(40));
    const int num_puts = static_cast<int>(rng.Uniform(60));
    for (int p = 0; p < num_puts; ++p) {
      int64_t k = static_cast<int64_t>(rng.Uniform(key_space));
      Timestamp et = Hours(1 + rng.Uniform(10));
      Timestamp ttl = (rng.Uniform(3) == 0) ? Hours(1 + rng.Uniform(4)) : 0;
      ASSERT_TRUE(store.Put("v", Value::Int64(k), MakeRow(schema_, k, 0.0),
                            et, et, ttl)
                      .ok());
    }
    std::vector<Value> batch;
    const int batch_size = 1 + static_cast<int>(rng.Uniform(50));
    for (int i = 0; i < batch_size; ++i) {
      switch (rng.Uniform(8)) {
        case 0:
          batch.push_back(Value::String("str-" +
                                        std::to_string(rng.Uniform(4))));
          break;
        case 1:
          batch.push_back(Value::Double(1.5));  // Invalid key type.
          break;
        default:
          batch.push_back(
              Value::Int64(static_cast<int64_t>(rng.Uniform(key_space + 4))));
      }
    }
    Timestamp now = Hours(1 + rng.Uniform(12));

    OnlineStoreStats before = store.stats();
    auto multi = store.MultiGet("v", batch, now);
    OnlineStoreStats mid = store.stats();
    std::vector<StatusOr<Row>> loop;
    for (const Value& key : batch) loop.push_back(store.Get("v", key, now));
    OnlineStoreStats after = store.stats();

    ASSERT_EQ(multi.size(), loop.size());
    for (size_t i = 0; i < multi.size(); ++i) {
      EXPECT_EQ(multi[i].ok(), loop[i].ok())
          << "round " << round << " entry " << i << ": "
          << multi[i].status() << " vs " << loop[i].status();
      if (multi[i].ok()) {
        EXPECT_EQ(*multi[i], *loop[i]) << "round " << round << " entry " << i;
      } else {
        EXPECT_EQ(multi[i].status().code(), loop[i].status().code());
        EXPECT_EQ(multi[i].status().message(), loop[i].status().message());
      }
    }
    // Identical counter deltas for the batched and per-key paths.
    EXPECT_EQ(mid.gets - before.gets, after.gets - mid.gets);
    EXPECT_EQ(mid.hits - before.hits, after.hits - mid.hits);
    EXPECT_EQ(mid.misses - before.misses, after.misses - mid.misses);
    EXPECT_EQ(mid.expired - before.expired, after.expired - mid.expired);
    EXPECT_EQ(mid.hits + mid.misses, mid.gets);
  }
}

TEST_F(OnlineStoreTest, GetEventTimeForFreshness) {
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 1, 1.0), Hours(7), Hours(8))
                  .ok());
  EXPECT_EQ(store_.GetEventTime("user_stats", Value::Int64(1), Hours(9))
                .value(), Hours(7));
  EXPECT_TRUE(store_.GetEventTime("user_stats", Value::Int64(2), Hours(9))
                  .status().IsNotFound());
}

TEST_F(OnlineStoreTest, DropView) {
  ASSERT_TRUE(store_.CreateView("other", schema_).ok());
  for (int64_t u = 0; u < 10; ++u) {
    ASSERT_TRUE(store_.Put("user_stats", Value::Int64(u),
                           MakeRow(schema_, u, 0.0), 0, 0).ok());
    ASSERT_TRUE(store_.Put("other", Value::Int64(u),
                           MakeRow(schema_, u, 0.0), 0, 0).ok());
  }
  EXPECT_EQ(store_.DropView("user_stats"), 10u);
  EXPECT_EQ(store_.stats().num_cells, 10u);
  EXPECT_TRUE(store_.Get("other", Value::Int64(3), 1).ok());
}

TEST_F(OnlineStoreTest, StatsCounters) {
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(1),
                         MakeRow(schema_, 1, 1.0), 0, 0).ok());
  (void)store_.Get("user_stats", Value::Int64(1), 1);
  (void)store_.Get("user_stats", Value::Int64(2), 1);
  auto s = store_.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_GT(s.approx_bytes, 0u);
}

TEST_F(OnlineStoreTest, StringEntityKeys) {
  ASSERT_TRUE(store_.CreateView("drivers", schema_).ok());
  ASSERT_TRUE(store_.Put("drivers", Value::String("d-77"),
                         MakeRow(schema_, 7, 4.2), 0, 0).ok());
  EXPECT_TRUE(store_.Get("drivers", Value::String("d-77"), 1).ok());
  EXPECT_FALSE(store_.Get("drivers", Value::Double(1.5), 1).ok());
}

TEST_F(OnlineStoreTest, ConcurrentPutsAndGets) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        int64_t key = (t * kOpsPerThread + i) % 100;
        ASSERT_TRUE(store_.Put("user_stats", Value::Int64(key),
                               MakeRow(schema_, i, 0.0), i, i).ok());
        (void)store_.Get("user_stats", Value::Int64(key), i);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto s = store_.stats();
  EXPECT_EQ(s.puts, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.gets, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.num_cells, 100u);
}

// Regression: event-time last-writer-wins must hold across shards under
// concurrent out-of-order Puts — newest event time survives, older writes
// land in stale_writes, and no update is lost.
TEST_F(OnlineStoreTest, ConcurrentOutOfOrderPutsPreserveEventTimeLww) {
  constexpr int kThreads = 8;
  constexpr int64_t kKeys = 32;
  constexpr int64_t kVersionsPerKey = 64;  // Event times 1..64 per key.

  // Each (key, version) write carries trips == event_time hours, so the
  // surviving cell identifies exactly which write won.
  // Pre-shuffle all (key, version) pairs and deal them round-robin to
  // threads: every key's versions arrive out of order from many threads.
  std::vector<std::pair<int64_t, int64_t>> writes;
  for (int64_t k = 0; k < kKeys; ++k) {
    for (int64_t v = 1; v <= kVersionsPerKey; ++v) writes.push_back({k, v});
  }
  Rng rng(2024);
  rng.Shuffle(&writes);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &writes] {
      for (size_t i = t; i < writes.size(); i += kThreads) {
        auto [key, version] = writes[i];
        ASSERT_TRUE(store_.Put("user_stats", Value::Int64(key),
                               MakeRow(schema_, version, 0.0),
                               Hours(version), Hours(version))
                        .ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  // Newest version survives for every key.
  for (int64_t k = 0; k < kKeys; ++k) {
    auto got = store_.Get("user_stats", Value::Int64(k), Hours(100));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value(0).int64_value(), kVersionsPerKey) << "key " << k;
    EXPECT_EQ(store_.GetEventTime("user_stats", Value::Int64(k), Hours(100))
                  .value(),
              Hours(kVersionsPerKey));
  }
  auto s = store_.stats();
  EXPECT_EQ(s.puts, static_cast<uint64_t>(kKeys) * kVersionsPerKey);
  EXPECT_EQ(s.num_cells, static_cast<size_t>(kKeys));
  // Any write observed out of order was dropped as stale, never applied.
  EXPECT_LE(s.stale_writes, s.puts - static_cast<uint64_t>(kKeys));
}

TEST_F(OnlineStoreTest, ConcurrentOlderWritesAgainstSeededNewestAllStale) {
  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 100;
  // Seed every key with the newest possible event time first...
  ASSERT_TRUE(store_.Put("user_stats", Value::Int64(0),
                         MakeRow(schema_, 999, 0.0), Hours(999), Hours(999))
                  .ok());
  // ...then hammer it with strictly older event times from all threads.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        int64_t version = 1 + ((t * kWritesPerThread + i) % 900);
        ASSERT_TRUE(store_.Put("user_stats", Value::Int64(0),
                               MakeRow(schema_, version, 0.0),
                               Hours(version), Hours(version))
                        .ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store_.Get("user_stats", Value::Int64(0), Hours(1000))
                ->value(0).int64_value(),
            999);
  auto s = store_.stats();
  EXPECT_EQ(s.stale_writes,
            static_cast<uint64_t>(kThreads) * kWritesPerThread);
}

}  // namespace
}  // namespace mlfs
