// Shared block-I/O subsystem concurrency soak (CTest label: stress; run
// under TSan).
//
// Two theaters:
//  1. The io/ primitives raced directly: reader threads touching and
//     promoting BlockCache payloads (verifying content through pinned
//     pointers), prefetch threads driving a ReadaheadScheduler over the
//     same key space, a capacity flapper (demotion storms), a spill
//     thread churning BlockFile spill/map/advise/unmap cycles, and a
//     failpoint thread arming io.load/io.readahead underneath everyone.
//  2. A tiered embedding table with readahead *enabled*, hammered by the
//     same access mix as the tier soak — every row served must still be
//     bitwise one of the two legal values even while scheduler workers
//     materialize blocks behind the serving threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "embedding/compress.h"
#include "embedding/embedding_table.h"
#include "embedding/tier.h"
#include "io/block_cache.h"
#include "io/block_file.h"
#include "io/readahead.h"

namespace mlfs {
namespace {

constexpr uint32_t kMagic = 0x4f495453;  // "STIO"
constexpr uint32_t kVersion = 1;

// One block's payload: kPayloadWords words of a block-id pattern, so a
// reader can detect torn or misrouted payloads.
constexpr size_t kPayloadWords = 64;

BlockCache::Payload MakeBlockPayload(size_t block) {
  auto words = std::make_shared<std::vector<uint64_t>>(kPayloadWords);
  for (size_t i = 0; i < kPayloadWords; ++i) {
    (*words)[i] = block * 1000003ULL + i;
  }
  return std::static_pointer_cast<const void>(
      std::static_pointer_cast<const std::vector<uint64_t>>(words));
}

bool PayloadIntact(const BlockCache::Payload& p, size_t block) {
  const auto* words = static_cast<const std::vector<uint64_t>*>(p.get());
  if (words->size() != kPayloadWords) return false;
  for (size_t i = 0; i < kPayloadWords; ++i) {
    if ((*words)[i] != block * 1000003ULL + i) return false;
  }
  return true;
}

TEST(IoStressTest, CacheReadaheadEvictionAndSpillRace) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_io_stress")
          .string();
  std::filesystem::create_directories(dir);

  constexpr size_t kBlocks = 32;
  constexpr int kReaders = 3;
  constexpr int kPrefetchers = 2;
  constexpr int kOpsPerThread = 600;

  BlockCache cache(kBlocks, /*capacity=*/8);
  ReadaheadOptions ra;
  ra.enabled = true;
  ra.threads = 2;
  ra.max_in_flight = 6;
  ReadaheadScheduler scheduler(ra);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> corrupt{0};
  std::atomic<uint64_t> served{0};

  std::vector<std::thread> threads;
  // Readers: the embedding-tier access pattern — touch, demand-load on
  // miss, pin, verify through the pinned pointer after further churn.
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng local(10 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        auto& pins = BlockCache::ThreadPins();
        pins.clear();
        const size_t block = local.Uniform(kBlocks);
        BlockCache::Payload p = cache.Touch(block, cache.BeginBatch());
        if (p == nullptr) {
          cache.CountAccess(0, 1);
          p = MakeBlockPayload(block);
          cache.Insert(block, p, kPayloadWords * 8, cache.BeginBatch());
        } else {
          cache.CountAccess(1, 0);
        }
        pins.push_back(p);
        const auto* raw = static_cast<const std::vector<uint64_t>*>(p.get());
        p.reset();  // Only the pin keeps it alive through churn.
        std::this_thread::yield();
        if (raw->at(0) != block * 1000003ULL) corrupt.fetch_add(1);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Prefetchers: schedule materialization of random blocks, then consume
  // and verify — racing dedup, drops, and the failpoint flapper.
  for (int t = 0; t < kPrefetchers; ++t) {
    threads.emplace_back([&, t] {
      Rng local(20 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const size_t block = local.Uniform(kBlocks);
        scheduler.Prefetch(block, [block] { return MakeBlockPayload(block); });
        const size_t consume = local.Uniform(kBlocks);
        ReadaheadScheduler::Payload p = scheduler.Consume(consume);
        if (p != nullptr && !PayloadIntact(p, consume)) corrupt.fetch_add(1);
      }
    });
  }
  // Capacity flapper: budget rebalancing (demotion storms) under load.
  threads.emplace_back([&] {
    Rng local(31);
    while (!stop.load(std::memory_order_relaxed)) {
      cache.SetCapacity(local.Uniform(kBlocks));
      std::this_thread::yield();
    }
  });
  // Spill churn: seal + atomic-write + map + readahead-touch + unmap in a
  // loop, sharing the io.load failpoint with everyone else.
  threads.emplace_back([&] {
    Rng local(41);
    int seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string body(1024 + local.Uniform(4096), 'b');
      const std::string path =
          dir + "/churn_" + std::to_string(seq++) + ".blk";
      auto file = BlockFile::Spill(kMagic, kVersion,
                                   BlockFile::Seal(kMagic, kVersion, body),
                                   path, /*remove_file_on_destroy=*/true,
                                   "stress blob");
      if (file.ok()) {
        (*file)->AdviseWillNeed(0, (*file)->size());
        (*file)->TouchPages(0, (*file)->size());
        if ((*file)->body() != body) corrupt.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  // Failpoint flapper: io.load (spill/map path) and io.readahead
  // (prefetch path) degrade, never corrupt.
  threads.emplace_back([&] {
    for (int i = 0; i < 30 && !stop.load(std::memory_order_relaxed); ++i) {
      FailpointConfig config;
      config.probability = 0.3;
      {
        ScopedFailpoint load("io.load", config);
        ScopedFailpoint prefetch("io.readahead", config);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int t = 0; t < kReaders + kPrefetchers; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = kReaders + kPrefetchers; t < threads.size(); ++t) {
    threads[t].join();
  }
  scheduler.Drain();
  FailpointRegistry::Instance().DisarmAll();

  EXPECT_EQ(corrupt.load(), 0u);
  EXPECT_GT(served.load(), 0u);

  const BlockCacheStats cs = cache.stats();
  EXPECT_LE(cs.resident_blocks, kBlocks);
  EXPECT_EQ(cs.num_blocks, kBlocks);
  EXPECT_GE(cs.hits + cs.misses, served.load());
  EXPECT_GE(cs.evictions + cs.resident_blocks, cs.promotions)
      << "every promoted block is either still resident or was evicted";

  const ReadaheadStats rs = scheduler.stats();
  EXPECT_EQ(rs.in_flight, 0u);
  EXPECT_EQ(rs.issued, rs.completed);
  EXPECT_LE(rs.hits, rs.issued);
  std::filesystem::remove_all(dir);
}

TEST(IoStressTest, TierWithReadaheadServesOnlyLegalRows) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_io_tier_stress")
          .string();
  std::filesystem::create_directories(dir);

  constexpr size_t kRows = 64 * 16;
  constexpr size_t kDim = 12;
  constexpr size_t kBlockRows = 64;
  constexpr int kBits = 8;
  constexpr int kBatchers = 3;
  constexpr int kScanners = 2;
  constexpr int kOpsPerThread = 250;

  Rng rng(9);
  std::vector<float> data(kRows * kDim);
  for (float& x : data) x = static_cast<float>(rng.Gaussian());
  std::vector<std::string> keys;
  for (size_t i = 0; i < kRows; ++i) keys.push_back("k" + std::to_string(i));

  EmbeddingTableMetadata metadata;
  metadata.name = "ra_stress";
  auto source = EmbeddingTable::Create(metadata, keys, data, kDim).value();

  EmbeddingTierOptions options;
  options.memory_budget_bytes = 3 * kBlockRows * kDim * sizeof(float);
  options.bits = kBits;
  options.block_rows = kBlockRows;
  options.dir = dir;
  options.readahead.enabled = true;
  options.readahead.threads = 2;
  auto table = EmbeddingTable::CreateTiered(*source, options).value();

  PackedCodes packed = PackUniform(data.data(), kRows, kDim, kBits).value();
  PackedDecodeTables tables = MakeDecodeTables(kBits, packed.lo, packed.hi);
  std::vector<float> dequantized(kRows * kDim);
  DequantizeRange(ViewOf(packed, tables), 0, kRows, dequantized.data());
  auto legal = [&](size_t row, const float* got) {
    return std::memcmp(got, data.data() + row * kDim,
                       kDim * sizeof(float)) == 0 ||
           std::memcmp(got, dequantized.data() + row * kDim,
                       kDim * sizeof(float)) == 0;
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> illegal{0};
  std::atomic<uint64_t> served{0};

  std::vector<std::thread> threads;
  // Batchers drive MultiGet's front/back cold split: wide batches force
  // multiple cold blocks per call so the scheduler carries real work.
  for (int t = 0; t < kBatchers; ++t) {
    threads.emplace_back([&, t] {
      Rng local(50 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        std::vector<std::string> batch;
        std::vector<size_t> rows;
        for (int i = 0; i < 24; ++i) {
          rows.push_back(local.Uniform(kRows));
          batch.push_back("k" + std::to_string(rows.back()));
        }
        auto ptrs = table->MultiGet(batch);
        ASSERT_EQ(ptrs.size(), batch.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          if (ptrs[i] == nullptr) continue;  // Fault-degraded cold slot.
          if (!legal(rows[i], ptrs[i])) illegal.fetch_add(1);
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Scanners drive the next-block prefetch pipeline.
  for (int t = 0; t < kScanners; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t seen = 0;
        Status status = table->tier()->ScanBlocks(
            [&](size_t row0, size_t nrows, const float* block_rows_ptr) {
              seen += nrows;
              for (size_t r = 0; r < nrows; ++r) {
                if (!legal(row0 + r, block_rows_ptr + r * kDim)) {
                  illegal.fetch_add(1);
                }
              }
            });
        if (status.ok()) {
          ASSERT_EQ(seen, kRows);
        }
      }
    });
  }
  // Budget flapper: eviction races in-flight prefetch materialization.
  threads.emplace_back([&] {
    Rng local(61);
    while (!stop.load(std::memory_order_relaxed)) {
      table->tier()->SetHotLimit(local.Uniform(5));
      std::this_thread::yield();
    }
  });
  // io.readahead flaps: prefetch degrades to demand loading mid-batch.
  threads.emplace_back([&] {
    for (int i = 0; i < 30 && !stop.load(std::memory_order_relaxed); ++i) {
      FailpointConfig config;
      config.probability = 0.4;
      {
        ScopedFailpoint fp("io.readahead", config);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int t = 0; t < kBatchers; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = kBatchers; t < threads.size(); ++t) threads[t].join();
  FailpointRegistry::Instance().DisarmAll();

  EXPECT_EQ(illegal.load(), 0u)
      << "a row was served that is neither exact nor dequantized";
  EXPECT_GT(served.load(), 0u);

  const EmbeddingTierStats stats = table->tier()->stats();
  EXPECT_EQ(stats.readahead.in_flight, 0u);
  EXPECT_EQ(stats.readahead.issued, stats.readahead.completed);
  EXPECT_GE(stats.hot_hits + stats.cold_misses, served.load());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mlfs
