// Batched ANN retrieval and SIMD distance kernels: BatchSearch must agree
// with a loop of Search for every index and metric, and the dispatched
// kernels must agree with the scalar reference kernels on awkward
// (non-multiple-of-lane) dimensions.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/threadpool.h"
#include "embedding/ann.h"
#include "embedding/distance.h"

namespace mlfs {
namespace {

std::vector<float> RandomVectors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n * dim);
  for (auto& x : out) x = static_cast<float>(rng.Gaussian());
  return out;
}

TEST(SimdDistanceTest, DispatchedKernelsMatchScalarOnOddDims) {
  // Odd dims exercise every tail-handling path of the vector kernels.
  for (size_t dim : {1u, 3u, 17u, 100u, 300u}) {
    auto a = RandomVectors(1, dim, 100 + dim);
    auto b = RandomVectors(1, dim, 200 + dim);
    const float dot_scalar = DotProductScalar(a.data(), b.data(), dim);
    const float dot_simd = DotProduct(a.data(), b.data(), dim);
    const float l2_scalar = L2SquaredScalar(a.data(), b.data(), dim);
    const float l2_simd = L2Squared(a.data(), b.data(), dim);
    const float tol = 1e-4f;
    EXPECT_NEAR(dot_simd, dot_scalar, tol * (1.0f + std::abs(dot_scalar)))
        << "dot dim=" << dim << " level=" << simd::LevelName();
    EXPECT_NEAR(l2_simd, l2_scalar, tol * (1.0f + std::abs(l2_scalar)))
        << "l2 dim=" << dim << " level=" << simd::LevelName();
  }
}

TEST(SimdDistanceTest, KernelsAgreeOnLaneMultipleDims) {
  for (size_t dim : {8u, 16u, 24u, 64u, 128u}) {
    auto a = RandomVectors(1, dim, 300 + dim);
    auto b = RandomVectors(1, dim, 400 + dim);
    EXPECT_NEAR(DotProduct(a.data(), b.data(), dim),
                DotProductScalar(a.data(), b.data(), dim), 1e-3f)
        << dim;
    EXPECT_NEAR(L2Squared(a.data(), b.data(), dim),
                L2SquaredScalar(a.data(), b.data(), dim), 1e-3f)
        << dim;
  }
}

TEST(SimdDistanceTest, ReportsALevel) {
  // Whatever the host CPU, dispatch must have settled on a known level.
  std::string_view level = simd::LevelName();
  EXPECT_TRUE(level == "scalar" || level == "avx2+fma" || level == "neon")
      << level;
}

// BatchSearch(queries) must return what looping Search over the same
// queries returns. For kL2/kInnerProduct the brute-force batched scan uses
// the identical kernel in identical row order, so results match exactly;
// kCosine uses precomputed row norms, so distances may differ in the last
// ulps — compare with tolerance and accept id swaps only between ties.
void ExpectBatchMatchesLoop(const AnnIndex& index, const float* queries,
                            size_t nq, size_t k, float tol) {
  auto batch = index.BatchSearch(queries, nq, k);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), nq);
  for (size_t q = 0; q < nq; ++q) {
    auto loop = index.Search(queries + q * index.dim(), k).value();
    const auto& got = (*batch)[q];
    ASSERT_EQ(got.size(), loop.size()) << index.name() << " query " << q;
    for (size_t r = 0; r < loop.size(); ++r) {
      EXPECT_NEAR(got[r].distance, loop[r].distance,
                  tol * (1.0f + std::abs(loop[r].distance)))
          << index.name() << " query " << q << " rank " << r;
      if (got[r].id != loop[r].id) {
        // Allowed only when the two candidates tie within tolerance.
        EXPECT_NEAR(got[r].distance, loop[r].distance, 1e-4f)
            << index.name() << " query " << q << " rank " << r
            << " ids " << got[r].id << " vs " << loop[r].id;
      }
    }
  }
}

class BatchSearchPropertyTest : public ::testing::TestWithParam<Metric> {};

TEST_P(BatchSearchPropertyTest, BruteForceBatchEqualsLoop) {
  const size_t n = 700, dim = 24, nq = 37;
  auto data = RandomVectors(n, dim, 11);
  auto queries = RandomVectors(nq, dim, 12);
  auto index = MakeBruteForceIndex(GetParam());
  ASSERT_TRUE(index->Build(data.data(), n, dim).ok());
  for (size_t k : {1u, 5u, 20u, 1000u}) {  // 1000 clamps to n.
    const float tol = GetParam() == Metric::kCosine ? 1e-5f : 0.0f;
    ExpectBatchMatchesLoop(*index, queries.data(), nq, k, tol);
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, BatchSearchPropertyTest,
                         ::testing::Values(Metric::kL2, Metric::kInnerProduct,
                                           Metric::kCosine));

TEST(BatchSearchPropertyTest, HnswBatchEqualsLoop) {
  const size_t n = 1200, dim = 16, nq = 25;
  auto data = RandomVectors(n, dim, 21);
  auto queries = RandomVectors(nq, dim, 22);
  for (Metric metric : {Metric::kL2, Metric::kCosine}) {
    HnswOptions options;
    options.m = 12;
    options.ef_construction = 80;
    options.ef_search = 48;
    options.metric = metric;
    auto index = MakeHnswIndex(options);
    ASSERT_TRUE(index->Build(data.data(), n, dim).ok());
    for (size_t k : {1u, 10u}) {
      // HNSW batch traversal is bookkeeping-identical to the loop.
      ExpectBatchMatchesLoop(*index, queries.data(), nq, k, 0.0f);
    }
  }
}

TEST(BatchSearchPropertyTest, IvfUsesDefaultLoopImplementation) {
  const size_t n = 600, dim = 8, nq = 9;
  auto data = RandomVectors(n, dim, 31);
  auto queries = RandomVectors(nq, dim, 32);
  IvfOptions options;
  options.nlist = 16;
  options.nprobe = 8;
  auto index = MakeIvfIndex(options);
  ASSERT_TRUE(index->Build(data.data(), n, dim).ok());
  ExpectBatchMatchesLoop(*index, queries.data(), nq, 7, 0.0f);
}

TEST(BatchSearchTest, ThreadPoolFanOutMatchesSerial) {
  const size_t n = 800, dim = 16, nq = 40, k = 10;
  auto data = RandomVectors(n, dim, 41);
  auto queries = RandomVectors(nq, dim, 42);
  ThreadPool pool(4);
  for (auto make : {+[] { return MakeBruteForceIndex(); },
                    +[] { return MakeHnswIndex(); }}) {
    auto index = make();
    ASSERT_TRUE(index->Build(data.data(), n, dim).ok());
    auto serial = index->BatchSearch(queries.data(), nq, k).value();
    auto parallel = index->BatchSearch(queries.data(), nq, k, &pool).value();
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t q = 0; q < nq; ++q) {
      ASSERT_EQ(serial[q].size(), parallel[q].size()) << index->name();
      for (size_t r = 0; r < serial[q].size(); ++r) {
        EXPECT_EQ(serial[q][r].id, parallel[q][r].id) << index->name();
        EXPECT_EQ(serial[q][r].distance, parallel[q][r].distance)
            << index->name();
      }
    }
  }
}

TEST(BatchSearchTest, Validation) {
  auto index = MakeBruteForceIndex();
  std::vector<float> queries = {0, 0};
  // Not built yet.
  EXPECT_TRUE(index->BatchSearch(queries.data(), 1, 1)
                  .status()
                  .IsFailedPrecondition());
  std::vector<float> data = {0, 0, 1, 1};
  ASSERT_TRUE(index->Build(data.data(), 2, 2).ok());
  EXPECT_FALSE(index->BatchSearch(nullptr, 1, 1).ok());
  EXPECT_FALSE(index->BatchSearch(queries.data(), 1, 0).ok());
  // Empty batch is fine.
  EXPECT_EQ(index->BatchSearch(queries.data(), 0, 3).value().size(), 0u);
  // Oversized k clamps per query, like Search.
  EXPECT_EQ(index->BatchSearch(queries.data(), 1, 10).value()[0].size(), 2u);
}

TEST(BatchSearchTest, HnswRepeatedBatchesReuseVisitedPool) {
  // Many consecutive batches on one thread: epoch stamping must keep
  // results correct without ever re-clearing (regression guard for the
  // epoch-wraparound bookkeeping).
  const size_t n = 400, dim = 8, nq = 5, k = 3;
  auto data = RandomVectors(n, dim, 51);
  auto queries = RandomVectors(nq, dim, 52);
  auto index = MakeHnswIndex();
  ASSERT_TRUE(index->Build(data.data(), n, dim).ok());
  auto first = index->BatchSearch(queries.data(), nq, k).value();
  for (int round = 0; round < 50; ++round) {
    auto again = index->BatchSearch(queries.data(), nq, k).value();
    for (size_t q = 0; q < nq; ++q) {
      ASSERT_EQ(again[q].size(), first[q].size());
      for (size_t r = 0; r < first[q].size(); ++r) {
        EXPECT_EQ(again[q][r].id, first[q][r].id);
      }
    }
  }
}

}  // namespace
}  // namespace mlfs
