#include "monitoring/slice.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "monitoring/slice_finder.h"

namespace mlfs {
namespace {

SchemaPtr MetaSchema() {
  return Schema::Create({{"country", FeatureType::kString, true},
                         {"mentions", FeatureType::kInt64, true},
                         {"premium", FeatureType::kBool, true}})
      .value();
}

Row Meta(const SchemaPtr& schema, const std::string& country,
         int64_t mentions, bool premium) {
  return Row::Create(schema, {Value::String(country), Value::Int64(mentions),
                              Value::Bool(premium)})
      .value();
}

TEST(SliceTest, CreateAndMatch) {
  auto schema = MetaSchema();
  auto slice =
      Slice::Create({"rare", "mentions < 5 and country == 'de'"}, schema)
          .value();
  EXPECT_EQ(slice.name(), "rare");
  EXPECT_TRUE(slice.Matches(Meta(schema, "de", 2, false)).value());
  EXPECT_FALSE(slice.Matches(Meta(schema, "de", 10, false)).value());
  EXPECT_FALSE(slice.Matches(Meta(schema, "us", 2, false)).value());
}

TEST(SliceTest, NullPredicateIsFalse) {
  auto schema = MetaSchema();
  auto slice = Slice::Create({"s", "mentions < 5"}, schema).value();
  Row with_null =
      Row::Create(schema, {Value::String("de"), Value::Null(),
                           Value::Bool(false)})
          .value();
  EXPECT_FALSE(slice.Matches(with_null).value());
}

TEST(SliceTest, CreateValidation) {
  auto schema = MetaSchema();
  EXPECT_FALSE(Slice::Create({"", "premium"}, schema).ok());
  EXPECT_FALSE(Slice::Create({"s", "mentions + 1"}, schema).ok());  // Not bool.
  EXPECT_FALSE(Slice::Create({"s", "nope == 1"}, schema).ok());
}

TEST(EvaluateSlicesTest, ComputesPerSliceAccuracy) {
  auto schema = MetaSchema();
  std::vector<Row> metadata;
  std::vector<int> truth, preds;
  // 10 German rows (model always wrong), 30 US rows (always right).
  for (int i = 0; i < 40; ++i) {
    bool german = i < 10;
    metadata.push_back(Meta(schema, german ? "de" : "us", i, false));
    truth.push_back(1);
    preds.push_back(german ? 0 : 1);
  }
  std::vector<Slice> slices = {
      Slice::Create({"german", "country == 'de'"}, schema).value(),
      Slice::Create({"american", "country == 'us'"}, schema).value(),
      Slice::Create({"empty", "mentions > 1000"}, schema).value()};
  auto metrics = EvaluateSlices(slices, metadata, truth, preds).value();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].size, 10u);
  EXPECT_DOUBLE_EQ(metrics[0].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(metrics[0].population_accuracy, 0.75);
  EXPECT_DOUBLE_EQ(metrics[0].accuracy_gap, 0.75);
  EXPECT_DOUBLE_EQ(metrics[1].accuracy, 1.0);
  EXPECT_EQ(metrics[2].size, 0u);
  EXPECT_FALSE(metrics[0].ToString().empty());
}

TEST(EvaluateSlicesTest, Validation) {
  auto schema = MetaSchema();
  std::vector<Slice> slices;
  EXPECT_FALSE(EvaluateSlices(slices, {}, {}, {}).ok());
  EXPECT_FALSE(EvaluateSlices(slices, {Meta(schema, "de", 1, false)}, {1},
                              {1, 2})
                   .ok());
}

// ---------------------------------------------------------------------------
// Slice finder.
// ---------------------------------------------------------------------------

struct PlantedWorld {
  std::vector<Row> metadata;
  std::vector<int> truth;
  std::vector<int> preds;
};

// Model fails on (country == 'de'); everything else ~95% accurate.
PlantedWorld PlantCountrySlice(size_t n, uint64_t seed) {
  auto schema = MetaSchema();
  Rng rng(seed);
  PlantedWorld world;
  const char* countries[] = {"us", "uk", "de", "fr"};
  for (size_t i = 0; i < n; ++i) {
    std::string country = countries[rng.Uniform(4)];
    int64_t mentions = static_cast<int64_t>(rng.Uniform(100));
    world.metadata.push_back(Meta(schema, country, mentions,
                                  rng.Bernoulli(0.5)));
    world.truth.push_back(1);
    bool wrong = (country == "de") ? rng.Bernoulli(0.7)
                                   : rng.Bernoulli(0.05);
    world.preds.push_back(wrong ? 0 : 1);
  }
  return world;
}

TEST(SliceFinderTest, RecoversPlantedSlice) {
  auto world = PlantCountrySlice(2000, 1);
  auto slices =
      FindUnderperformingSlices(world.metadata, world.truth, world.preds)
          .value();
  ASSERT_FALSE(slices.empty());
  EXPECT_EQ(slices[0].predicate, "country == 'de'");
  EXPECT_GT(slices[0].accuracy_gap, 0.3);
  EXPECT_GT(slices[0].z_score, 5.0);
  EXPECT_GT(slices[0].size, 300u);
  EXPECT_EQ(slices[0].members.size(), slices[0].size);
}

TEST(SliceFinderTest, NoFalsePositivesOnUniformErrors) {
  auto schema = MetaSchema();
  Rng rng(2);
  std::vector<Row> metadata;
  std::vector<int> truth, preds;
  const char* countries[] = {"us", "uk", "de", "fr"};
  for (int i = 0; i < 2000; ++i) {
    metadata.push_back(Meta(schema, countries[rng.Uniform(4)],
                            static_cast<int64_t>(rng.Uniform(100)),
                            rng.Bernoulli(0.5)));
    truth.push_back(1);
    preds.push_back(rng.Bernoulli(0.1) ? 0 : 1);  // Uniform 10% error.
  }
  auto slices = FindUnderperformingSlices(metadata, truth, preds).value();
  EXPECT_TRUE(slices.empty());
}

TEST(SliceFinderTest, FindsConjunctionWhenNeitherAttributeAloneExplains) {
  auto schema = MetaSchema();
  Rng rng(3);
  std::vector<Row> metadata;
  std::vector<int> truth, preds;
  const char* countries[] = {"us", "de"};
  for (int i = 0; i < 4000; ++i) {
    std::string country = countries[rng.Uniform(2)];
    bool premium = rng.Bernoulli(0.5);
    metadata.push_back(Meta(schema, country,
                            static_cast<int64_t>(rng.Uniform(100)), premium));
    truth.push_back(1);
    // Only (de AND premium) fails hard.
    bool wrong = (country == "de" && premium) ? rng.Bernoulli(0.8)
                                              : rng.Bernoulli(0.05);
    preds.push_back(wrong ? 0 : 1);
  }
  auto slices = FindUnderperformingSlices(metadata, truth, preds).value();
  ASSERT_FALSE(slices.empty());
  EXPECT_NE(slices[0].predicate.find("and"), std::string::npos)
      << slices[0].predicate;
  EXPECT_NE(slices[0].predicate.find("de"), std::string::npos);
  EXPECT_NE(slices[0].predicate.find("premium"), std::string::npos);
}

TEST(SliceFinderTest, BucketizesNumericColumns) {
  auto schema = MetaSchema();
  Rng rng(4);
  std::vector<Row> metadata;
  std::vector<int> truth, preds;
  for (int i = 0; i < 2000; ++i) {
    int64_t mentions = static_cast<int64_t>(rng.Uniform(100));
    metadata.push_back(Meta(schema, "us", mentions, false));
    truth.push_back(1);
    // Fails on low-mention examples (the rare-things problem, §3.1.1).
    bool wrong = (mentions < 25) ? rng.Bernoulli(0.6) : rng.Bernoulli(0.05);
    preds.push_back(wrong ? 0 : 1);
  }
  auto slices = FindUnderperformingSlices(metadata, truth, preds).value();
  ASSERT_FALSE(slices.empty());
  EXPECT_NE(slices[0].predicate.find("mentions in q0"), std::string::npos)
      << slices[0].predicate;
}

TEST(SliceFinderTest, RespectsMinSupport) {
  auto world = PlantCountrySlice(2000, 5);
  SliceFinderOptions options;
  options.min_support = 10000;  // Impossible.
  auto slices = FindUnderperformingSlices(world.metadata, world.truth,
                                          world.preds, options)
                    .value();
  EXPECT_TRUE(slices.empty());
}

TEST(SliceFinderTest, Validation) {
  EXPECT_FALSE(FindUnderperformingSlices({}, {}, {}).ok());
}

}  // namespace
}  // namespace mlfs
