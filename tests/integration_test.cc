// Cross-module property tests: invariants that hold across the storage,
// expression, registry, and serving layers together.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "core/feature_store.h"
#include "expr/evaluator.h"
#include "expr/parser.h"

namespace mlfs {
namespace {

// ---------------------------------------------------------------------------
// Property: after materialization, the online value equals the feature
// expression applied to the offline as-of row — the dual stores agree.
// ---------------------------------------------------------------------------

TEST(ConsistencyTest, OnlineEqualsExpressionOverOfflineAsOf) {
  FeatureStore store;
  auto schema = Schema::Create({{"e", FeatureType::kInt64, false},
                                {"t", FeatureType::kTimestamp, false},
                                {"a", FeatureType::kInt64, true},
                                {"b", FeatureType::kDouble, true}})
                    .value();
  OfflineTableOptions options;
  options.name = "src";
  options.schema = schema;
  options.entity_column = "e";
  options.time_column = "t";
  ASSERT_TRUE(store.CreateSourceTable(options).ok());

  Rng rng(1);
  std::vector<Row> rows;
  for (int i = 0; i < 800; ++i) {
    rows.push_back(
        Row::Create(schema,
                    {Value::Int64(rng.UniformInt(0, 40)),
                     Value::Time(rng.Uniform(Days(4))),
                     rng.Bernoulli(0.1) ? Value::Null()
                                        : Value::Int64(rng.UniformInt(0, 100)),
                     Value::Double(rng.Gaussian(5, 2))})
            .value());
  }
  ASSERT_TRUE(store.Ingest("src", rows).ok());

  FeatureDefinition def;
  def.name = "combo";
  def.entity = "x";
  def.source_table = "src";
  def.expression = "coalesce(a, 0) + clamp(b, 0.0, 10.0)";
  def.cadence = Hours(1);
  ASSERT_TRUE(store.PublishFeature(def).ok());
  ASSERT_TRUE(store.RunMaterialization().ok());

  auto compiled = CompiledExpr::Compile(def.expression, schema).value();
  auto source = store.offline().GetTable("src").value();
  const Timestamp now = store.clock().now();
  size_t verified = 0;
  for (int64_t entity = 0; entity < 40; ++entity) {
    auto offline_row = source->AsOf(Value::Int64(entity), now);
    auto online_row = store.online().Get("combo", Value::Int64(entity), now);
    ASSERT_EQ(offline_row.ok(), online_row.ok()) << entity;
    if (!offline_row.ok()) continue;
    Value expected = compiled.Eval(*offline_row).value();
    EXPECT_EQ(online_row->ValueByName("value").value(), expected) << entity;
    EXPECT_EQ(online_row->ValueByName("event_time").value().time_value(),
              offline_row->ValueByName("t").value().time_value());
    ++verified;
  }
  EXPECT_GT(verified, 30u);
}

// ---------------------------------------------------------------------------
// Property: ToString() of a random expression re-parses and evaluates to
// the same value (printer/parser round trip).
// ---------------------------------------------------------------------------

// Random numeric expression generator (declared here, defined below).
ExprPtr RandomNumeric(Rng* rng, int depth);

TEST(ExprPropertyTest, PrintParseEvalRoundTrip) {
  auto schema = Schema::Create({{"x", FeatureType::kInt64, true},
                                {"y", FeatureType::kDouble, true}})
                    .value();
  Rng rng(7);
  Row row = Row::Create(schema, {Value::Int64(4), Value::Double(2.5)})
                .value();
  int compared = 0;
  for (int trial = 0; trial < 300; ++trial) {
    ExprPtr expr = RandomNumeric(&rng, 4);
    std::string text = expr->ToString();
    auto reparsed = ParseExpr(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    auto v1 = EvalExpr(*expr, row);
    auto v2 = EvalExpr(**reparsed, row);
    ASSERT_EQ(v1.ok(), v2.ok()) << text;
    if (v1.ok()) {
      EXPECT_EQ(*v1, *v2) << text;
      ++compared;
    }
  }
  EXPECT_GT(compared, 250);
}

ExprPtr RandomNumeric(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.35)) {
    switch (rng->Uniform(3)) {
      case 0:
        return Expr::Literal(Value::Int64(rng->UniformInt(-9, 9)));
      case 1:
        return Expr::Literal(
            Value::Double(std::round(rng->UniformDouble(-9, 9) * 4) / 4));
      default:
        return Expr::Column(rng->Bernoulli(0.5) ? "x" : "y");
    }
  }
  switch (rng->Uniform(5)) {
    case 0:
    case 1: {
      BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                        BinaryOp::kDiv};
      return Expr::Binary(ops[rng->Uniform(4)], RandomNumeric(rng, depth - 1),
                          RandomNumeric(rng, depth - 1));
    }
    case 2:
      return Expr::Unary(UnaryOp::kNeg, RandomNumeric(rng, depth - 1));
    case 3: {
      std::vector<ExprPtr> args;
      args.push_back(RandomNumeric(rng, depth - 1));
      return Expr::Call("abs", std::move(args));
    }
    default: {
      std::vector<ExprPtr> args;
      args.push_back(RandomNumeric(rng, depth - 1));
      args.push_back(RandomNumeric(rng, depth - 1));
      return Expr::Call(rng->Bernoulli(0.5) ? "min" : "max", std::move(args));
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency: parallel appends and as-of reads on one offline table keep
// the table consistent (no torn index, every appended row retrievable).
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ParallelOfflineAppendsAndReads) {
  auto schema = Schema::Create({{"e", FeatureType::kInt64, false},
                                {"t", FeatureType::kTimestamp, false},
                                {"v", FeatureType::kInt64, true}})
                    .value();
  OfflineTableOptions options;
  options.name = "concurrent";
  options.schema = schema;
  options.entity_column = "e";
  options.time_column = "t";
  auto table = OfflineTable::Create(options).value();

  constexpr int kWriters = 4;
  constexpr int kRowsPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kRowsPerWriter; ++i) {
        int64_t value = w * kRowsPerWriter + i;
        Row row = Row::Create(schema,
                              {Value::Int64(value % 50),
                               Value::Time(Hours(value % 97)),
                               Value::Int64(value)})
                      .value();
        ASSERT_TRUE(table->Append(row).ok());
      }
    });
  }
  // Concurrent readers hammer as-of lookups while writes happen.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      while (!stop.load()) {
        int64_t entity = rng.UniformInt(0, 49);
        auto row = table->AsOf(Value::Int64(entity),
                               Hours(rng.UniformInt(0, 100)));
        if (row.ok()) {
          ASSERT_EQ(row->value(0).int64_value(), entity);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_EQ(table->num_rows(),
            static_cast<size_t>(kWriters) * kRowsPerWriter);
  // Every entity's as-of at +inf returns its max-time row deterministically.
  for (int64_t entity = 0; entity < 50; ++entity) {
    auto row = table->AsOf(Value::Int64(entity), kMaxTimestamp);
    ASSERT_TRUE(row.ok()) << entity;
  }
}

}  // namespace
}  // namespace mlfs
