#include "ned/ned.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/sgns.h"

namespace mlfs {
namespace {

SyntheticKb TestKb() {
  SyntheticKbConfig config;
  config.num_entities = 600;
  config.num_types = 5;
  config.num_edges = 3000;
  return BuildSyntheticKb(config).value();
}

TEST(AliasTableTest, PartitionsAllEntities) {
  auto kb = TestKb();
  auto aliases = BuildAliasTable(kb, 3.0, 1).value();
  EXPECT_EQ(aliases.entity_alias.size(), kb.num_entities());
  // Every entity appears in exactly the candidate set of its alias.
  std::vector<int> seen(kb.num_entities(), 0);
  for (size_t a = 0; a < aliases.num_aliases(); ++a) {
    for (uint32_t entity : aliases.alias_candidates[a]) {
      EXPECT_EQ(aliases.entity_alias[entity], a);
      ++seen[entity];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  // Mean ambiguity roughly as requested.
  EXPECT_GT(aliases.mean_ambiguity(), 1.8);
  EXPECT_LT(aliases.mean_ambiguity(), 4.5);
}

TEST(AliasTableTest, ConfusableGroupsShareType) {
  auto kb = TestKb();
  auto aliases = BuildAliasTable(kb, 3.0, 2, /*confusable=*/true).value();
  for (const auto& candidates : aliases.alias_candidates) {
    for (size_t i = 1; i < candidates.size(); ++i) {
      EXPECT_EQ(kb.entity_type[candidates[i]],
                kb.entity_type[candidates[0]]);
    }
  }
}

TEST(AliasTableTest, Validation) {
  auto kb = TestKb();
  EXPECT_FALSE(BuildAliasTable(kb, 0.5, 1).ok());
}

TEST(MentionQueriesTest, ShapesAndDeterminism) {
  auto kb = TestKb();
  auto aliases = BuildAliasTable(kb, 3.0, 1).value();
  auto queries = GenerateMentionQueries(kb, aliases, 500, 4, 3).value();
  EXPECT_EQ(queries.size(), 500u);
  for (const auto& query : queries) {
    EXPECT_LT(query.truth, kb.num_entities());
    EXPECT_EQ(query.alias, aliases.entity_alias[query.truth]);
    EXPECT_GE(query.context.size(), 1u);
    EXPECT_LE(query.context.size(), 4u);
    for (uint32_t entity : query.context) EXPECT_NE(entity, query.truth);
  }
  auto again = GenerateMentionQueries(kb, aliases, 500, 4, 3).value();
  EXPECT_EQ(again[0].truth, queries[0].truth);
  EXPECT_FALSE(GenerateMentionQueries(kb, aliases, 0, 4, 3).ok());
}

EmbeddingTablePtr TrainEmbedding(const SyntheticKb& kb, bool structured,
                                 uint64_t seed) {
  CorpusConfig corpus_config;
  corpus_config.num_sentences = 8000;
  corpus_config.include_type_tokens = structured;
  corpus_config.include_relation_tokens = structured;
  corpus_config.seed = seed;
  auto corpus = GenerateCorpus(kb, corpus_config).value();
  SgnsConfig sgns;
  sgns.dim = 24;
  sgns.epochs = 3;
  sgns.seed = seed;
  auto embeddings = TrainSgns(corpus, kb.vocab_size(), sgns).value();
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    const float* row = embeddings.row(e);
    vectors.insert(vectors.end(), row, row + sgns.dim);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "ned_emb";
  return EmbeddingTable::Create(metadata, keys, vectors, sgns.dim).value();
}

EmbeddingTablePtr RandomEmbedding(const SyntheticKb& kb, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (size_t e = 0; e < kb.num_entities(); ++e) {
    keys.push_back(kb.entity_key(e));
    for (int j = 0; j < 24; ++j) {
      vectors.push_back(static_cast<float>(rng.Gaussian()));
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "random_emb";
  return EmbeddingTable::Create(metadata, keys, vectors, 24).value();
}

TEST(DisambiguationTest, TrainedEmbeddingsBeatRandomAndBaseline) {
  auto kb = TestKb();
  // Mixed-type alias groups: the embedding's type structure is usable.
  auto aliases = BuildAliasTable(kb, 3.0, 1, /*confusable=*/false).value();
  auto queries = GenerateMentionQueries(kb, aliases, 800, 4, 7).value();

  auto trained = TrainEmbedding(kb, /*structured=*/false, 1);
  auto random = RandomEmbedding(kb, 2);

  auto trained_report =
      EvaluateDisambiguation(*trained, kb, aliases, queries).value();
  auto random_report =
      EvaluateDisambiguation(*random, kb, aliases, queries).value();

  // Random embeddings resolve at ~the random-candidate baseline.
  EXPECT_NEAR(random_report.accuracy, random_report.random_baseline, 0.08);
  // Trained embeddings are far better.
  EXPECT_GT(trained_report.accuracy, random_report.accuracy + 0.1);
  EXPECT_GT(trained_report.mrr, trained_report.accuracy);  // MRR >= top-1.
  EXPECT_GT(trained_report.queries, 700u);
}

TEST(DisambiguationTest, HubnessCorrectionHelpsConfusableAliases) {
  auto kb = TestKb();
  // Same-type alias groups: cosine hubness makes central candidates
  // swallow ambiguous mentions; the correction restores the signal.
  auto aliases = BuildAliasTable(kb, 3.0, 1, /*confusable=*/true).value();
  auto queries = GenerateMentionQueries(kb, aliases, 800, 4, 7).value();
  auto trained = TrainEmbedding(kb, false, 1);

  NedOptions raw;
  raw.hubness_correction = false;
  auto uncorrected =
      EvaluateDisambiguation(*trained, kb, aliases, queries, raw).value();
  auto corrected =
      EvaluateDisambiguation(*trained, kb, aliases, queries).value();
  EXPECT_GT(corrected.accuracy, uncorrected.accuracy + 0.05);
  EXPECT_GT(corrected.accuracy, corrected.random_baseline);
}

TEST(DisambiguationTest, SubsetEvaluation) {
  auto kb = TestKb();
  auto aliases = BuildAliasTable(kb, 3.0, 1).value();
  auto queries = GenerateMentionQueries(kb, aliases, 600, 4, 7).value();
  auto trained = TrainEmbedding(kb, false, 1);

  // Head entities (popular half) vs all: both evaluable.
  std::vector<size_t> head;
  for (size_t e = 0; e < kb.num_entities() / 2; ++e) head.push_back(e);
  auto head_report =
      EvaluateDisambiguationOn(*trained, kb, aliases, queries, head).value();
  EXPECT_GT(head_report.queries, 0u);
  EXPECT_LE(head_report.queries,
            EvaluateDisambiguation(*trained, kb, aliases, queries)
                .value().queries);
  // Empty subset fails cleanly.
  EXPECT_FALSE(
      EvaluateDisambiguationOn(*trained, kb, aliases, queries, {}).ok());
}

}  // namespace
}  // namespace mlfs
