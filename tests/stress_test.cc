// Concurrency stress/soak suite (CTest label: stress).
//
// Hammers the shared OnlineStore + FeatureServer from concurrent writer and
// reader threads while failpoints inject deterministic faults, then asserts
// the stats invariants that every later scaling PR must preserve:
//   - hits + misses == gets (no get is double- or un-counted)
//   - event-time last-writer-wins loses no update (survivor == newest
//     successful write per key)
//   - counters are monotone while traffic is in flight
// Run clean under ThreadSanitizer via: cmake -DMLFS_SANITIZE=thread ...
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/threadpool.h"
#include "core/feature_store.h"
#include "serving/feature_server.h"
#include "serving/point_in_time.h"
#include "storage/offline_store.h"
#include "storage/online_store.h"
#include "streaming/stream_pipeline.h"

namespace mlfs {
namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kOpsPerWriter = 20000;
constexpr int kOpsPerReader = 10000;
constexpr int64_t kKeys = 64;

SchemaPtr FeatureViewSchema() {
  return Schema::Create({{"entity", FeatureType::kInt64, false},
                         {"event_time", FeatureType::kTimestamp, false},
                         {"value", FeatureType::kDouble, true}})
      .value();
}

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    FailpointRegistry::Instance().Reseed(0x57e55ULL);
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// One writer thread: distinct event times per op, spread over kKeys keys.
// Returns per-key newest *successful* event time via out-param.
void WriterLoop(OnlineStore* store, const SchemaPtr& schema, int writer_id,
                std::vector<Timestamp>* newest_ok,
                std::atomic<uint64_t>* injected_put_failures) {
  for (int i = 0; i < kOpsPerWriter; ++i) {
    // Globally unique event time per (writer, op).
    Timestamp et = Seconds(1 + i * kWriters + writer_id);
    int64_t key = (i * kWriters + writer_id) % kKeys;
    Row row = Row::CreateUnsafe(
        schema, {Value::Int64(key), Value::Time(et),
                 Value::Double(static_cast<double>(et))});
    // Occasional TTL'd write so readers exercise the expiry path too.
    Timestamp ttl = (i % 7 == 0) ? Seconds(1) : 0;
    Status s = store->Put("feat_a", Value::Int64(key), row, et, et, ttl);
    if (s.ok()) {
      (*newest_ok)[key] = std::max((*newest_ok)[key], et);
    } else {
      ASSERT_EQ(s.code(), StatusCode::kInternal) << s;
      injected_put_failures->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

TEST_F(StressTest, ConcurrentServingUnderFaultInjection) {
  OnlineStoreOptions store_options;
  store_options.num_shards = 4;  // Few shards: force lock contention.
  OnlineStore store(store_options);
  SchemaPtr schema = FeatureViewSchema();
  ASSERT_TRUE(store.CreateView("feat_a", schema).ok());

  FeatureServerOptions server_options;
  server_options.max_attempts = 4;
  FeatureServer server(&store, server_options);

  {
    FailpointConfig put_faults;
    put_faults.status = Status::Internal("injected put fault");
    put_faults.probability = 0.02;
    FailpointRegistry::Instance().Arm("online_store.put", put_faults);
    FailpointConfig get_faults;
    get_faults.status = Status::Internal("injected get fault");
    get_faults.probability = 0.05;
    FailpointRegistry::Instance().Arm("online_store.get", get_faults);
  }

  // Monitor thread: every counter must be monotone while traffic runs, and
  // hits + misses can never exceed gets.
  std::atomic<bool> done{false};
  std::thread monitor([&store, &server, &done] {
    OnlineStoreStats prev_store;
    FeatureServerStats prev_server;
    while (!done.load(std::memory_order_acquire)) {
      OnlineStoreStats s = store.stats();
      EXPECT_GE(s.puts, prev_store.puts);
      EXPECT_GE(s.gets, prev_store.gets);
      EXPECT_GE(s.hits, prev_store.hits);
      EXPECT_GE(s.misses, prev_store.misses);
      EXPECT_GE(s.expired, prev_store.expired);
      EXPECT_GE(s.stale_writes, prev_store.stale_writes);
      // Note: hits + misses == gets is only checked after the join below —
      // counters are relaxed atomics, so a mid-flight sample may observe a
      // hit before the get that produced it.
      prev_store = s;
      FeatureServerStats f = server.stats();
      EXPECT_GE(f.requests, prev_server.requests);
      EXPECT_GE(f.retries, prev_server.retries);
      EXPECT_GE(f.degraded_features, prev_server.degraded_features);
      EXPECT_GE(f.degraded_responses, prev_server.degraded_responses);
      prev_server = f;
      std::this_thread::yield();
    }
  });

  ThreadPool pool(kWriters + kReaders);
  std::vector<std::vector<Timestamp>> newest_ok(
      kWriters, std::vector<Timestamp>(kKeys, kMinTimestamp));
  std::atomic<uint64_t> injected_put_failures{0};
  std::atomic<uint64_t> reader_requests{0};
  std::atomic<uint64_t> reader_nulls{0};

  for (int w = 0; w < kWriters; ++w) {
    pool.Submit([&store, &schema, w, &newest_ok, &injected_put_failures] {
      WriterLoop(&store, schema, w, &newest_ok[w], &injected_put_failures);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    pool.Submit([&server, r, &reader_requests, &reader_nulls] {
      Rng rng(1000 + r);
      for (int i = 0; i < kOpsPerReader; ++i) {
        int64_t key = static_cast<int64_t>(rng.Uniform(kKeys));
        Timestamp now = Seconds(1 + rng.Uniform(kWriters * kOpsPerWriter));
        auto fv = server.GetFeatures(Value::Int64(key), {"feat_a"}, now);
        // Under kNull the request itself always succeeds: faults degrade.
        ASSERT_TRUE(fv.ok()) << fv.status();
        reader_requests.fetch_add(1, std::memory_order_relaxed);
        reader_nulls.fetch_add(fv->missing, std::memory_order_relaxed);
      }
    });
  }
  pool.Wait();
  done.store(true, std::memory_order_release);
  monitor.join();
  FailpointRegistry::Instance().DisarmAll();

  // --- Invariants after the dust settles. ---
  OnlineStoreStats s = store.stats();
  EXPECT_EQ(s.hits + s.misses, s.gets);
  const uint64_t attempted_puts =
      static_cast<uint64_t>(kWriters) * kOpsPerWriter;
  EXPECT_EQ(s.puts + injected_put_failures.load(), attempted_puts);
  EXPECT_GT(injected_put_failures.load(), 0u);  // p=0.02 over 12k ops.

  FeatureServerStats f = server.stats();
  EXPECT_EQ(f.requests, reader_requests.load());
  EXPECT_EQ(f.requests, static_cast<uint64_t>(kReaders) * kOpsPerReader);
  EXPECT_GT(f.retries, 0u);  // p=0.05 get faults with 4 attempts.
  EXPECT_GE(f.degraded_features, f.degraded_responses);

  // No lost updates: each key's survivor is the newest successful write.
  for (int64_t key = 0; key < kKeys; ++key) {
    Timestamp newest = kMinTimestamp;
    for (int w = 0; w < kWriters; ++w) {
      newest = std::max(newest, newest_ok[w][key]);
    }
    ASSERT_GT(newest, kMinTimestamp) << "key " << key << " never written";
    auto et = store.GetEventTime("feat_a", Value::Int64(key), newest);
    ASSERT_TRUE(et.ok()) << et.status();
    EXPECT_EQ(*et, newest) << "lost update on key " << key;
    auto row = store.Get("feat_a", Value::Int64(key), newest);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->value(2).double_value(), static_cast<double>(newest));
  }
}

// Shard-grouped MultiGet and batched serving racing writers, an evictor,
// and injected faults: batched readers take shared shard locks in groups,
// writers take exclusive locks, and the striped server metrics record from
// every thread. Asserts the MultiGet stats invariant hits + misses (which
// includes expired) == gets, per-entry result shape, and that the striped
// histogram loses no request. Run under TSan to certify the
// shared_mutex/striped-metrics locking.
TEST_F(StressTest, ConcurrentBatchedMultiGetUnderFaultInjection) {
  constexpr int kBatchWriters = 2;
  constexpr int kBatchReaders = 4;
  constexpr int kBatchesPerReader = 250;
  constexpr size_t kBatchSize = 32;

  OnlineStoreOptions store_options;
  store_options.num_shards = 4;  // Few shards: batches always collide.
  OnlineStore store(store_options);
  SchemaPtr schema = FeatureViewSchema();
  ASSERT_TRUE(store.CreateView("feat_a", schema).ok());

  FeatureServerOptions server_options;
  server_options.max_attempts = 3;
  server_options.batch_parallelism = 2;  // Exercise the pooled fan-out.
  FeatureServer server(&store, server_options);

  {
    FailpointConfig put_faults;
    put_faults.status = Status::Internal("injected put fault");
    put_faults.probability = 0.02;
    FailpointRegistry::Instance().Arm("online_store.put", put_faults);
    FailpointConfig get_faults;
    get_faults.status = Status::Internal("injected get fault");
    get_faults.probability = 0.05;
    FailpointRegistry::Instance().Arm("online_store.get", get_faults);
  }

  ThreadPool pool(kBatchWriters + kBatchReaders + 1);
  std::vector<std::vector<Timestamp>> newest_ok(
      kBatchWriters, std::vector<Timestamp>(kKeys, kMinTimestamp));
  std::atomic<uint64_t> injected_put_failures{0};
  std::atomic<bool> done{false};
  for (int w = 0; w < kBatchWriters; ++w) {
    pool.Submit([&store, &schema, w, &newest_ok, &injected_put_failures] {
      WriterLoop(&store, schema, w, &newest_ok[w], &injected_put_failures);
    });
  }
  pool.Submit([&store, &done] {  // Evictor: exclusive locks vs batch reads.
    while (!done.load(std::memory_order_acquire)) {
      store.EvictExpired(Seconds(2500));
      std::this_thread::yield();
    }
  });
  std::atomic<uint64_t> server_entities{0};
  for (int r = 0; r < kBatchReaders; ++r) {
    pool.Submit([&store, &server, r, &server_entities] {
      Rng rng(5000 + r);
      for (int b = 0; b < kBatchesPerReader; ++b) {
        std::vector<Value> batch;
        batch.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          batch.push_back(
              Value::Int64(static_cast<int64_t>(rng.Uniform(kKeys))));
        }
        Timestamp now =
            Seconds(1 + rng.Uniform(kBatchWriters * kOpsPerWriter));
        if (r % 2 == 0) {
          // Raw store path: every key gets an answer, in order.
          auto rows = store.MultiGet("feat_a", batch, now);
          ASSERT_EQ(rows.size(), batch.size());
          for (const auto& row : rows) {
            if (!row.ok()) {
              ASSERT_TRUE(row.status().IsNotFound() ||
                          row.status().code() == StatusCode::kInternal)
                  << row.status();
            }
          }
        } else {
          // Serving path: kNull degrades injected faults, so every
          // per-entity entry succeeds.
          auto fvs = server.GetFeaturesBatch(batch, {"feat_a"}, now);
          ASSERT_EQ(fvs.size(), batch.size());
          for (const auto& fv : fvs) {
            ASSERT_TRUE(fv.ok()) << fv.status();
          }
          server_entities.fetch_add(batch.size(),
                                    std::memory_order_relaxed);
        }
      }
    });
  }
  // Writers/readers are the finite tasks; the evictor spins until stopped.
  while (store.stats().puts + injected_put_failures.load() <
         static_cast<uint64_t>(kBatchWriters) * kOpsPerWriter) {
    std::this_thread::yield();
  }
  while (server.requests() <
         static_cast<uint64_t>((kBatchReaders + 1) / 2) * kBatchesPerReader *
             kBatchSize) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  pool.Wait();
  FailpointRegistry::Instance().DisarmAll();

  // MultiGet preserves the store invariant under concurrency + faults.
  OnlineStoreStats s = store.stats();
  EXPECT_EQ(s.hits + s.misses, s.gets);
  EXPECT_GE(s.misses, s.expired);

  // Striped metrics: every batched entity was counted exactly once, and
  // the merged histogram carries exactly one sample per request.
  FeatureServerStats f = server.stats();
  EXPECT_EQ(f.requests, server_entities.load());
  EXPECT_EQ(server.latency_histogram().count(), f.requests);
  EXPECT_GT(f.retries, 0u);  // p=0.05 faults with 3 attempts.
  EXPECT_GE(f.degraded_features, f.degraded_responses);
}

// Snapshots, eviction, and stats scans racing live write traffic: the
// shard-by-shard walkers must never observe torn state or deadlock.
TEST_F(StressTest, SnapshotAndEvictionRaceWriters) {
  OnlineStoreOptions store_options;
  store_options.num_shards = 4;
  OnlineStore store(store_options);
  SchemaPtr schema = FeatureViewSchema();
  ASSERT_TRUE(store.CreateView("feat_a", schema).ok());

  constexpr int kSnapshotWriters = 2;
  constexpr int kPutsPerSnapshotWriter = 20000;
  std::atomic<bool> done{false};
  ThreadPool pool(4);
  for (int w = 0; w < kSnapshotWriters; ++w) {
    pool.Submit([&store, &schema, w] {
      for (int i = 0; i < kPutsPerSnapshotWriter; ++i) {
        Timestamp et = Seconds(1 + i * 2 + w);
        int64_t key = (i * 2 + w) % kKeys;
        Row row = Row::CreateUnsafe(
            schema, {Value::Int64(key), Value::Time(et),
                     Value::Double(static_cast<double>(et))});
        // Half the writes carry a short TTL for the evictor to reap.
        ASSERT_TRUE(store.Put("feat_a", Value::Int64(key), row, et, et,
                              (i % 2 == 0) ? Seconds(5) : 0)
                        .ok());
      }
    });
  }
  pool.Submit([&store, &done] {
    size_t snapshots = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::string snap = store.Snapshot();
      ASSERT_FALSE(snap.empty());
      // Every concurrent snapshot must be restorable into a fresh store.
      if (++snapshots % 16 == 0) {
        OnlineStore restored;
        ASSERT_TRUE(restored.Restore(snap).ok());
        auto rs = restored.stats();
        EXPECT_LE(rs.num_cells, static_cast<size_t>(kKeys));
      }
      std::this_thread::yield();
    }
  });
  pool.Submit([&store, &done] {
    while (!done.load(std::memory_order_acquire)) {
      store.EvictExpired(Seconds(2500));
      (void)store.stats();
      std::this_thread::yield();
    }
  });

  // Writers are the first two tasks; poll until both finish by watching the
  // put counter, then stop the background scanners.
  constexpr uint64_t kTotalPuts =
      static_cast<uint64_t>(kSnapshotWriters) * kPutsPerSnapshotWriter;
  while (store.stats().puts < kTotalPuts) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  pool.Wait();

  OnlineStoreStats s = store.stats();
  EXPECT_EQ(s.puts, kTotalPuts);
  EXPECT_LE(s.num_cells, static_cast<size_t>(kKeys));
  std::string final_snap = store.Snapshot();
  OnlineStore restored;
  ASSERT_TRUE(restored.Restore(final_snap).ok());
  EXPECT_EQ(restored.stats().num_cells, s.num_cells);
}

// Concurrent NearestEntities/NearestEntitiesBatch across two embeddings
// while a registrar thread publishes new versions: certifies under TSan
// that (a) ANN index builds happen outside ann_mu_ with once-per-version
// semantics, so a slow build on one embedding never blocks lookups on the
// other, (b) eviction of superseded versions races safely with readers
// holding the evicted index, and (c) the cache stays bounded throughout.
TEST_F(StressTest, ConcurrentNearestEntitiesAcrossEmbeddings) {
  constexpr int kEmbKeys = 256;
  constexpr int kDim = 16;
  constexpr int kAnnReaders = 4;
  constexpr int kLookupsPerReader = 200;
  constexpr int kReregistrations = 24;

  FeatureStore store;
  std::vector<std::string> keys;
  keys.reserve(kEmbKeys);
  for (int i = 0; i < kEmbKeys; ++i) keys.push_back("k" + std::to_string(i));
  auto make_table = [&keys](const std::string& name, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> vectors;
    vectors.reserve(keys.size() * kDim);
    for (size_t i = 0; i < keys.size() * kDim; ++i) {
      vectors.push_back(static_cast<float>(rng.Gaussian()));
    }
    EmbeddingTableMetadata metadata;
    metadata.name = name;
    return EmbeddingTable::Create(metadata, keys, vectors, kDim).value();
  };
  ASSERT_TRUE(store.RegisterEmbedding(make_table("emb_a", 1)).ok());
  ASSERT_TRUE(store.RegisterEmbedding(make_table("emb_b", 2)).ok());

  ThreadPool pool(kAnnReaders + 1);
  std::atomic<uint64_t> lookups{0};
  for (int r = 0; r < kAnnReaders; ++r) {
    pool.Submit([&store, &keys, &lookups, r] {
      // Readers alternate embeddings so both indexes are always under
      // concurrent load from multiple threads.
      const std::string name = (r % 2 == 0) ? "emb_a" : "emb_b";
      Rng rng(7000 + r);
      for (int i = 0; i < kLookupsPerReader; ++i) {
        const std::string& ref = keys[rng.Uniform(keys.size())];
        if (i % 4 == 0) {
          std::vector<std::string> refs;
          for (int b = 0; b < 8; ++b) {
            refs.push_back(keys[rng.Uniform(keys.size())]);
          }
          auto batch = store.NearestEntitiesBatch(name, refs, 5);
          ASSERT_EQ(batch.size(), refs.size());
          for (size_t s = 0; s < batch.size(); ++s) {
            ASSERT_TRUE(batch[s].ok()) << batch[s].status();
            ASSERT_LE(batch[s]->size(), 5u);
            for (const auto& [key, dist] : *batch[s]) {
              ASSERT_NE(key, refs[s]);  // Self excluded.
            }
          }
          lookups.fetch_add(refs.size(), std::memory_order_relaxed);
        } else {
          auto neighbors = store.NearestEntities(name, ref, 5);
          ASSERT_TRUE(neighbors.ok()) << neighbors.status();
          ASSERT_LE(neighbors->size(), 5u);
          for (size_t s = 1; s < neighbors->size(); ++s) {
            ASSERT_LE((*neighbors)[s - 1].second, (*neighbors)[s].second);
          }
          lookups.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.Submit([&store, &make_table] {
    // Registrar: keeps publishing fresh versions of emb_a, so readers race
    // index builds and eviction of the versions they are still using.
    for (int i = 0; i < kReregistrations; ++i) {
      ASSERT_TRUE(
          store.RegisterEmbedding(make_table("emb_a", 100 + i)).ok());
      ASSERT_TRUE(store.NearestEntities("emb_a", "k0", 3).ok());
      std::this_thread::yield();
    }
  });
  pool.Wait();

  // Per reader: every 4th iteration is a batch of 8, the rest are singles.
  constexpr uint64_t kPerReader =
      (kLookupsPerReader / 4) * 8 +
      (kLookupsPerReader - kLookupsPerReader / 4);
  EXPECT_EQ(lookups.load(), static_cast<uint64_t>(kAnnReaders) * kPerReader);
  // Bounded cache: nothing pinned, so only the latest version per name may
  // remain (in-flight builds of just-superseded versions may briefly add
  // one more, but all traffic has drained by now).
  EXPECT_LE(store.ann_cache_size(), 2u);
}

// Soak the streaming materialization path against injected faults: a fired
// "stream_pipeline.materialize" failpoint fails the Ingest, but finalized
// windows stay queued in the aggregator and are materialized by the next
// successful call — faults delay, but never lose, window results.
TEST_F(StressTest, StreamPipelineMaterializationSurvivesFaults) {
  OnlineStore online;
  OfflineStore offline;
  StreamPipelineOptions opt;
  opt.name = "clicks_1h";
  opt.event_schema =
      Schema::Create({{"user", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false},
                      {"amount", FeatureType::kDouble, true}})
          .value();
  opt.entity_column = "user";
  opt.time_column = "ts";
  opt.window = {Hours(1), Hours(1)};
  opt.aggs = {{"click_count", AggregateFn::kCount, ""}};
  auto pipeline = StreamPipeline::Create(opt, &online, &offline);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();

  constexpr int kEvents = 8000;
  constexpr int64_t kUsers = 16;
  uint64_t injected = 0;
  {
    FailpointConfig config;
    config.status = Status::Internal("injected materialize fault");
    config.probability = 0.2;
    ScopedFailpoint fp("stream_pipeline.materialize", config);
    Rng rng(99);
    for (int i = 0; i < kEvents; ++i) {
      Timestamp ts = Minutes(1 + i);  // Steadily advancing event time.
      Row event = Row::CreateUnsafe(
          opt.event_schema,
          {Value::Int64(static_cast<int64_t>(rng.Uniform(kUsers))),
           Value::Time(ts), Value::Double(1.0)});
      Status s = (*pipeline)->Ingest(event);
      if (!s.ok()) {
        ASSERT_EQ(s.code(), StatusCode::kInternal) << s;
        ++injected;
      }
    }
    EXPECT_GT(fp.stats().fires, 0u);
    injected = fp.stats().fires;
  }
  // Failpoint disarmed: the final flush must drain everything still queued.
  ASSERT_TRUE((*pipeline)->Flush(kMaxTimestamp).ok());
  EXPECT_GT(injected, 0u);
  EXPECT_EQ((*pipeline)->events_ingested(), static_cast<uint64_t>(kEvents));

  // Every user clicked in (nearly) every hour; with faults only delaying
  // materialization, the offline log must hold every emitted window row and
  // the online store the latest window per user.
  auto table = offline.GetTable("clicks_1h").value();
  EXPECT_EQ(table->num_rows(), (*pipeline)->rows_emitted());
  uint64_t online_rows = 0;
  for (int64_t u = 0; u < kUsers; ++u) {
    if (online.Get("clicks_1h", Value::Int64(u), kMaxTimestamp - 1).ok()) {
      ++online_rows;
    }
  }
  EXPECT_EQ(online_rows, static_cast<uint64_t>(kUsers));
}

// One LineageGraph shared by an EmbeddingStore and a ModelRegistry under
// concurrent registration (graph writes + MarkStale fan-out), closure
// readers, and a subscribed staleness listener. Certifies the graph's
// shared_mutex discipline and the listeners-notified-outside-the-lock
// contract under TSan:
//   - every MarkStale event reaches both the event log and the listener
//     (no event dropped or double-delivered)
//   - closure/skew queries taken mid-churn never see torn state
//   - final version chains and version counts are exact.
TEST_F(StressTest, ConcurrentLineageRecordingAndClosureQueries) {
  constexpr int kEmbWriters = 3;
  constexpr int kVersionsPerWriter = 40;
  constexpr int kModelWriters = 2;
  constexpr int kModelsPerWriter = 150;
  constexpr int kLineageReaders = 3;
  constexpr int kQueriesPerReader = 400;

  LineageGraph graph;
  EmbeddingStore embeddings(&graph);
  ModelRegistry models(&graph);

  std::atomic<uint64_t> heard{0};
  graph.Subscribe([&heard](const StalenessEvent& event) {
    // Listeners run outside the graph lock: re-entering the graph from a
    // listener must not deadlock.
    (void)event.impacted.size();
    heard.fetch_add(1, std::memory_order_relaxed);
  });

  std::atomic<bool> done{false};
  ThreadPool pool(kEmbWriters + kModelWriters + kLineageReaders);

  for (int w = 0; w < kEmbWriters; ++w) {
    pool.Submit([&embeddings, w] {
      const std::string name = "emb_w" + std::to_string(w);
      EmbeddingTableMetadata metadata;
      metadata.name = name;
      for (int v = 0; v < kVersionsPerWriter; ++v) {
        if (v > 0) metadata.parent = name;  // Chain onto the latest.
        auto table = EmbeddingTable::Create(
            metadata, {"a", "b"}, {1.f * v, 0, 0, 1.f * v}, 2).value();
        ASSERT_TRUE(embeddings.Register(table, Seconds(v + 1)).ok());
      }
    });
  }
  for (int w = 0; w < kModelWriters; ++w) {
    pool.Submit([&models, w] {
      Rng rng(77 + w);
      for (int i = 0; i < kModelsPerWriter; ++i) {
        ModelRecord record;
        record.name = "model_w" + std::to_string(w) + "_" +
                      std::to_string(i % 10);
        record.task = "stress";
        record.embedding_refs = {
            "emb_w" + std::to_string(rng.Uniform(kEmbWriters)) + "@v" +
            std::to_string(1 + rng.Uniform(kVersionsPerWriter))};
        ASSERT_TRUE(models.Register(std::move(record), Seconds(i)).ok());
      }
    });
  }
  for (int r = 0; r < kLineageReaders; ++r) {
    pool.Submit([&graph, &embeddings, &models, &done, r] {
      Rng rng(5000 + r);
      for (int i = 0; i < kQueriesPerReader && !done.load(); ++i) {
        const std::string name =
            "emb_w" + std::to_string(rng.Uniform(kEmbWriters));
        auto versions = graph.VersionsOf(ArtifactKind::kEmbedding, name);
        // Versions appear strictly ascending; a reader never sees dups or
        // disorder. (Gaps are possible mid-flight: a model's pin edge can
        // intern a version node before the store registers it.)
        for (size_t v = 1; v < versions.size(); ++v) {
          ASSERT_LT(versions[v - 1].version, versions[v].version);
        }
        if (!versions.empty()) {
          size_t pick = rng.Uniform(versions.size());
          (void)graph.ImpactSet(versions[pick]);
          (void)graph.StalenessOf(versions[pick]);
          auto chain = embeddings.Lineage(name);
          if (chain.ok() && chain->size() > 1) {
            // A multi-hop chain is contiguous: each hop steps one version
            // down (a just-registered head may briefly lack its parent
            // edge, giving a single-element chain — never a torn one).
            ASSERT_EQ(chain->size(),
                      static_cast<size_t>(
                          ParseVersionedRef(chain->front()).version));
          }
        }
        (void)models.CheckEmbeddingSkew(embeddings);
      }
    });
  }
  pool.Wait();
  done.store(true);

  // Exactly one supersede event per non-initial registration, each heard
  // exactly once.
  const uint64_t expected_events =
      static_cast<uint64_t>(kEmbWriters) * (kVersionsPerWriter - 1);
  EXPECT_EQ(graph.num_events(), expected_events);
  EXPECT_EQ(heard.load(), expected_events);
  for (int w = 0; w < kEmbWriters; ++w) {
    const std::string name = "emb_w" + std::to_string(w);
    EXPECT_EQ(graph.VersionsOf(ArtifactKind::kEmbedding, name).size(),
              static_cast<size_t>(kVersionsPerWriter));
    // Full parent chain survives: latest walks back to v1.
    EXPECT_EQ(embeddings.Lineage(name).value().size(),
              static_cast<size_t>(kVersionsPerWriter));
    // All but the latest version were superseded (annotated stale).
    for (int v = 1; v < kVersionsPerWriter; ++v) {
      EXPECT_TRUE(graph.StalenessOf(EmbeddingArtifact(name, v)).has_value())
          << name << " v" << v;
    }
    EXPECT_FALSE(
        graph.StalenessOf(EmbeddingArtifact(name, kVersionsPerWriter))
            .has_value());
  }
  // The graph agrees with the model registry about consumers.
  auto skews = models.CheckEmbeddingSkew(embeddings).value();
  EXPECT_TRUE(skews.dangling.empty());
  for (const VersionSkew& skew : skews.skews) {
    EXPECT_LT(skew.pinned_version, skew.latest_version);
    EXPECT_EQ(skew.latest_version, kVersionsPerWriter);
  }
}

// The batched sort-merge PointInTimeJoin racing AppendBatch writers on the
// same offline tables: AsOfBatch holds one shared lock per shard while
// writers take the exclusive lock for out-of-order batches. Certifies under
// TSan that the shared/exclusive discipline holds across the whole batch
// sweep, and that every mid-churn join is internally consistent: correct
// shape, and leakage-free (every joined value's event time <= the spine
// timestamp — each source row carries an et_copy column duplicating its
// event time so the invariant is checkable from the output alone). After
// the writers drain, the merge join must agree byte-for-byte with the
// row-at-a-time reference on the final table state.
TEST_F(StressTest, ConcurrentPointInTimeJoinRacesAppendBatch) {
  constexpr int kJoinWriters = 2;
  constexpr int kBatchesPerWriter = 150;
  constexpr size_t kRowsPerBatch = 24;
  constexpr int kJoinsPerReader = 60;
  constexpr int64_t kJoinKeys = 16;
  constexpr Timestamp kHorizon = Hours(24 * 20);  // ~20 daily partitions.

  OfflineStore offline;
  SchemaPtr source_schema =
      Schema::Create({{"key", FeatureType::kInt64, false},
                      {"event_time", FeatureType::kTimestamp, false},
                      {"et_copy", FeatureType::kInt64, true}})
          .value();
  for (const char* name : {"pit_s0", "pit_s1"}) {
    OfflineTableOptions opt;
    opt.name = name;
    opt.schema = source_schema;
    opt.entity_column = "key";
    opt.time_column = "event_time";
    ASSERT_TRUE(offline.CreateTable(std::move(opt)).ok());
  }
  OfflineTable* s0 = offline.GetTable("pit_s0").value();
  OfflineTable* s1 = offline.GetTable("pit_s1").value();

  SchemaPtr spine_schema =
      Schema::Create({{"key", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false}})
          .value();
  std::vector<Row> spine;
  {
    Rng rng(0x791e);
    for (int i = 0; i < 200; ++i) {
      spine.push_back(Row::CreateUnsafe(
          spine_schema,
          {Value::Int64(static_cast<int64_t>(rng.Uniform(kJoinKeys))),
           Value::Time(Seconds(1) +
                       static_cast<Timestamp>(rng.Uniform(kHorizon)))}));
    }
  }
  std::vector<JoinSource> sources(2);
  sources[0].table = s0;
  sources[0].prefix = "s0__";
  sources[1].table = s1;
  sources[1].prefix = "s1__";
  sources[1].max_age = Hours(24 * 5);

  ThreadPool pool(kJoinWriters + 2);
  for (int w = 0; w < kJoinWriters; ++w) {
    OfflineTable* table = (w % 2 == 0) ? s0 : s1;
    pool.Submit([table, source_schema, w] {
      Rng rng(0xa9 + w);
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<Row> batch;
        batch.reserve(kRowsPerBatch);
        for (size_t i = 0; i < kRowsPerBatch; ++i) {
          // Random event times: perpetually late/out-of-order arrivals.
          Timestamp et = Seconds(1) +
                         static_cast<Timestamp>(rng.Uniform(kHorizon));
          batch.push_back(Row::CreateUnsafe(
              source_schema,
              {Value::Int64(static_cast<int64_t>(rng.Uniform(kJoinKeys))),
               Value::Time(et), Value::Int64(static_cast<int64_t>(et))}));
        }
        ASSERT_TRUE(table->AppendBatch(batch).ok());
      }
    });
  }
  // Two reader threads: one serial merge join, one sharded over an
  // internal pool, both validating every mid-churn result.
  for (int r = 0; r < 2; ++r) {
    pool.Submit([&spine, &sources, r] {
      JoinOptions options;
      options.max_threads = (r == 0) ? 1 : 3;
      for (int i = 0; i < kJoinsPerReader; ++i) {
        auto ts = PointInTimeJoin(spine, "key", "ts", sources, options);
        ASSERT_TRUE(ts.ok()) << ts.status();
        ASSERT_EQ(ts->rows.size(), spine.size());
        ASSERT_EQ(ts->schema->num_fields(), 4);  // key, ts, 2x et_copy.
        uint64_t nulls = 0;
        for (size_t row = 0; row < ts->rows.size(); ++row) {
          const Timestamp spine_ts = ts->rows[row].value(1).time_value();
          for (int col = 2; col < 4; ++col) {
            const Value& v = ts->rows[row].value(col);
            if (v.is_null()) {
              ++nulls;
              continue;
            }
            // Leakage-free: joined history never postdates the spine.
            ASSERT_LE(v.int64_value(), static_cast<int64_t>(spine_ts));
            if (col == 3) {  // s1 carries max_age.
              ASSERT_GE(v.int64_value(),
                        static_cast<int64_t>(spine_ts - sources[1].max_age));
            }
          }
        }
        ASSERT_EQ(ts->missing_cells, nulls);
      }
    });
  }
  pool.Wait();

  // Quiesced: the merge engine and the row-at-a-time reference must agree
  // exactly on the final table state.
  auto reference = PointInTimeJoinReference(spine, "key", "ts", sources);
  ASSERT_TRUE(reference.ok()) << reference.status();
  JoinOptions parallel;
  parallel.max_threads = 3;
  auto merged = PointInTimeJoin(spine, "key", "ts", sources, parallel);
  ASSERT_TRUE(merged.ok()) << merged.status();
  auto bytes = [](const TrainingSet& ts) {
    Encoder enc;
    enc.PutSchema(*ts.schema);
    enc.PutVarint64(ts.missing_cells);
    for (const Row& row : ts.rows) enc.PutRow(row);
    return enc.Release();
  };
  EXPECT_EQ(bytes(*merged), bytes(*reference));
  EXPECT_EQ(s0->num_rows() + s1->num_rows(),
            static_cast<uint64_t>(kJoinWriters) * kBatchesPerWriter *
                kRowsPerBatch);
}

}  // namespace
}  // namespace mlfs
