#include "storage/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"

namespace mlfs {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("mlfs_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(PersistenceTest, FileRoundTrip) {
  std::string path = dir_ + "/sub/file.bin";
  std::string data("\x00\x01binary\xff", 9);
  ASSERT_TRUE(WriteFileAtomic(path, data).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  EXPECT_TRUE(ReadFile(dir_ + "/missing").status().IsNotFound());
  // Overwrite is atomic and replaces content.
  ASSERT_TRUE(WriteFileAtomic(path, "short").ok());
  EXPECT_EQ(ReadFile(path).value(), "short");
}

OfflineTableOptions TableOptions(const std::string& name) {
  OfflineTableOptions options;
  options.name = name;
  options.schema =
      Schema::Create({{"entity", FeatureType::kInt64, false},
                      {"event_time", FeatureType::kTimestamp, false},
                      {"v", FeatureType::kDouble, true},
                      {"emb", FeatureType::kEmbedding, true}})
          .value();
  options.entity_column = "entity";
  options.time_column = "event_time";
  return options;
}

void FillTable(OfflineStore* store, const std::string& name, uint64_t seed) {
  auto options = TableOptions(name);
  ASSERT_TRUE(store->CreateTable(options).ok());
  auto table = store->GetTable(name).value();
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> emb(4);
    for (auto& x : emb) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(
        table
            ->Append(Row::Create(options.schema,
                                 {Value::Int64(rng.UniformInt(0, 20)),
                                  Value::Time(rng.Uniform(Days(3))),
                                  rng.Bernoulli(0.1)
                                      ? Value::Null()
                                      : Value::Double(rng.Gaussian()),
                                  Value::Embedding(emb)})
                         .value())
            .ok());
  }
}

TEST_F(PersistenceTest, OfflineStoreCheckpointRestore) {
  OfflineStore original;
  FillTable(&original, "alpha", 1);
  FillTable(&original, "beta", 2);

  auto written = CheckpointOfflineStore(original, dir_);
  ASSERT_TRUE(written.ok()) << written.status();
  EXPECT_EQ(written->size(), 2u);

  OfflineStore restored;
  ASSERT_TRUE(RestoreOfflineStore(&restored, dir_).ok());
  EXPECT_EQ(restored.TableNames(),
            (std::vector<std::string>{"alpha", "beta"}));
  auto original_table = original.GetTable("alpha").value();
  auto restored_table = restored.GetTable("alpha").value();
  EXPECT_EQ(restored_table->num_rows(), original_table->num_rows());
  EXPECT_EQ(restored_table->max_event_time(),
            original_table->max_event_time());
  EXPECT_EQ(restored_table->options().entity_column, "entity");
  // As-of parity on probes.
  for (int64_t entity = 0; entity < 20; ++entity) {
    auto a = original_table->AsOf(Value::Int64(entity), Days(2));
    auto b = restored_table->AsOf(Value::Int64(entity), Days(2));
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(*a, *b);
    }
  }
  // Restoring again collides.
  EXPECT_TRUE(RestoreOfflineStore(&restored, dir_).IsAlreadyExists());
}

TEST_F(PersistenceTest, OfflineTableFromSnapshotStandalone) {
  OfflineStore store;
  FillTable(&store, "gamma", 3);
  auto table = store.GetTable("gamma").value();
  auto rebuilt = OfflineTable::FromSnapshot(table->Snapshot());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ((*rebuilt)->name(), "gamma");
  EXPECT_EQ((*rebuilt)->num_rows(), table->num_rows());
  EXPECT_FALSE(OfflineTable::FromSnapshot("junk").ok());
}

TEST_F(PersistenceTest, OnlineStoreSnapshotRestore) {
  OnlineStoreOptions options;
  options.num_shards = 8;
  OnlineStore original(options);
  auto schema = Schema::Create({{"v", FeatureType::kDouble, true}}).value();
  ASSERT_TRUE(original.CreateView("f1", schema).ok());
  ASSERT_TRUE(original.CreateView("f2", schema).ok());
  Rng rng(4);
  for (int64_t e = 0; e < 100; ++e) {
    Row row =
        Row::Create(schema, {Value::Double(rng.Gaussian())}).value();
    ASSERT_TRUE(original.Put("f1", Value::Int64(e), row, Hours(e % 5),
                             Hours(e % 5), Hours(100))
                    .ok());
    if (e % 2 == 0) {
      ASSERT_TRUE(
          original.Put("f2", Value::String("k" + std::to_string(e)), row,
                       Hours(1), Hours(1))
              .ok());
    }
  }
  ASSERT_TRUE(CheckpointOnlineStore(original, dir_).ok());

  // Restore into a store with a different shard count.
  OnlineStoreOptions other;
  other.num_shards = 3;
  OnlineStore restored(other);
  ASSERT_TRUE(RestoreOnlineStore(&restored, dir_).ok());
  EXPECT_EQ(restored.stats().num_cells, original.stats().num_cells);
  EXPECT_TRUE(restored.HasView("f1"));
  EXPECT_TRUE(restored.HasView("f2"));
  for (int64_t e = 0; e < 100; ++e) {
    auto a = original.Get("f1", Value::Int64(e), Hours(50));
    auto b = restored.Get("f1", Value::Int64(e), Hours(50));
    ASSERT_EQ(a.ok(), b.ok()) << e;
    if (a.ok()) {
      EXPECT_EQ(*a, *b);
    }
  }
  // TTLs survive: everything expires after 105h.
  EXPECT_EQ(restored.EvictExpired(Hours(200)), 100u);

  // Restoring into a store that already has the views fails cleanly.
  EXPECT_FALSE(RestoreOnlineStore(&restored, dir_).ok());
}

TEST_F(PersistenceTest, CorruptSnapshotsRejected) {
  OnlineStore store;
  EXPECT_FALSE(store.Restore("garbage").ok());
  EXPECT_TRUE(RestoreOnlineStore(&store, dir_).IsNotFound());
  OfflineStore offline;
  EXPECT_TRUE(RestoreOfflineStore(&offline, dir_ + "/missing")
                  .IsNotFound());
}

}  // namespace
}  // namespace mlfs
