// Differential suite for PR 10: serving-time computed features, the SIMD
// VM kernels, dictionary-aware string predicates, and time-range pruning.
//
// The pinning claims, each tested against an independent oracle:
//   1. A registered (unmaterialized) feature served through the online
//      path is byte-identical to what offline materialization
//      (OfflineTable::EvalLatestPerEntityAsOf) would have produced —
//      values, NULLs, and error statuses alike.
//   2. Every runtime-dispatched vmsimd kernel agrees bit-for-bit with its
//      scalar reference on odd widths, NaN/±inf payloads, and null-bitmap
//      edge words.
//   3. The dictionary fast path for string predicates selects exactly the
//      rows the per-row comparison selects, for all six operators and
//      either constant side, NULLs included.
//   4. AsOfBatch with time-range pruning on is byte-identical to pruning
//      off, and scans actually skip non-overlapping segments.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/feature_store.h"
#include "expr/bytecode.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "expr/simd_kernels.h"
#include "storage/entity_key.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

// Bit-exact Value equality: doubles compare by representation so NaN == NaN
// and +0.0 != -0.0 — the "byte-identical" contract, stricter than
// Value::operator==.
bool BitEq(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() != b.type()) return false;
  if (a.type() == FeatureType::kDouble) {
    uint64_t ab, bb;
    const double ad = a.double_value(), bd = b.double_value();
    std::memcpy(&ab, &ad, sizeof ab);
    std::memcpy(&bb, &bd, sizeof bb);
    return ab == bb;
  }
  return a == b;
}

// ---------------------------------------------------------------------------
// 1. Served computed features vs. offline materialization.
// ---------------------------------------------------------------------------

class ServingComputeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Create({{"user_id", FeatureType::kInt64, false},
                              {"event_time", FeatureType::kTimestamp, false},
                              {"trips_7d", FeatureType::kInt64, true},
                              {"trips_30d", FeatureType::kInt64, true},
                              {"spend", FeatureType::kDouble, true},
                              {"city", FeatureType::kString, true}})
                  .value();
    OfflineTableOptions opt;
    opt.name = "activity";
    opt.schema = schema_;
    opt.entity_column = "user_id";
    opt.time_column = "event_time";
    ASSERT_TRUE(store_.CreateSourceTable(opt).ok());
  }

  Row SourceRow(int64_t user, Timestamp ts, Value t7, Value t30, Value spend,
                Value city) {
    return Row::Create(schema_, {Value::Int64(user), Value::Time(ts),
                                 std::move(t7), std::move(t30),
                                 std::move(spend), std::move(city)})
        .value();
  }

  FeatureDefinition Def(const std::string& name, const std::string& expr) {
    FeatureDefinition def;
    def.name = name;
    def.entity = "user";
    def.source_table = "activity";
    def.expression = expr;
    def.cadence = Hours(6);
    return def;
  }

  // Random source row population: `n_entities` users, `n_rows` rows with
  // randomized values and NULLs scattered through every nullable column.
  void IngestRandom(Rng& rng, int n_entities, int n_rows) {
    static const char* kCities[] = {"sf", "nyc", "sea", "chi", "la"};
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_rows));
    for (int i = 0; i < n_rows; ++i) {
      const int64_t user = static_cast<int64_t>(rng.Uniform(n_entities));
      const Timestamp ts = Hours(1) + static_cast<Timestamp>(rng.Uniform(
                                          static_cast<uint64_t>(Hours(400))));
      Value t7 = rng.Uniform(8) == 0
                     ? Value::Null()
                     : Value::Int64(rng.UniformInt(0, 40));
      Value t30 = rng.Uniform(8) == 0
                      ? Value::Null()
                      : Value::Int64(rng.UniformInt(0, 200));
      Value spend = rng.Uniform(8) == 0
                        ? Value::Null()
                        : Value::Double(rng.UniformDouble(-50.0, 500.0));
      Value city = rng.Uniform(6) == 0
                       ? Value::Null()
                       : Value::String(kCities[rng.Uniform(5)]);
      rows.push_back(SourceRow(user, ts, std::move(t7), std::move(t30),
                               std::move(spend), std::move(city)));
    }
    ASSERT_TRUE(store_.Ingest("activity", rows).ok());
  }

  // Offline oracle: latest-per-entity evaluation of `expression` at `ts`,
  // keyed by canonical entity string.
  std::map<std::string, Value> OfflineOracle(const std::string& expression,
                                             Timestamp ts) {
    OfflineTable* table = store_.offline().GetTable("activity").value();
    CompiledExpr expr = CompiledExpr::Compile(expression, schema_).value();
    auto cells = table->EvalLatestPerEntityAsOf(ts, expr);
    EXPECT_TRUE(cells.ok()) << cells.status();
    std::map<std::string, Value> out;
    for (const MaterializedCell& c : *cells) {
      out[EntityKeyToString(c.entity).value()] = c.value;
    }
    return out;
  }

  FeatureStore store_;
  SchemaPtr schema_;
};

TEST_F(ServingComputeTest, ComputedFeatureServesWithoutMaterialization) {
  ASSERT_TRUE(
      store_
          .Ingest("activity",
                  {SourceRow(1, Hours(1), Value::Int64(7), Value::Int64(30),
                             Value::Double(12.5), Value::String("sf"))})
          .ok());
  ASSERT_TRUE(
      store_.PublishFeature(Def("trip_rate", "trips_7d / (trips_30d + 1)"))
          .ok());
  // No RunMaterialization(): the server must compute at request time.
  auto fv = store_.ServeFeatures(Value::Int64(1), {"trip_rate"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_DOUBLE_EQ(fv->values[0].double_value(), 7.0 / 31.0);
  EXPECT_EQ(fv->missing, 0u);
  EXPECT_EQ(fv->degraded, 0u);
  EXPECT_EQ(fv->oldest_event_time, Hours(1));  // Source row's event time.
  EXPECT_TRUE(fv->stale.empty());
}

TEST_F(ServingComputeTest, ServedMatchesOfflineMaterializationByteIdentical) {
  Rng rng(20260809);
  IngestRandom(rng, 40, 300);
  const Timestamp now = store_.clock().now();

  const std::vector<std::pair<std::string, std::string>> defs = {
      {"rate", "trips_7d / (trips_30d + 1)"},
      {"spend2", "spend * 2.0 + 1.0"},
      {"t7_or_zero", "coalesce(trips_7d, 0) + trips_30d"},
      {"sf_bonus", "if(city == 'sf', spend * 2.0, spend)"},
      {"div_null", "spend / (spend - spend)"},  // x/0 -> NULL everywhere.
      {"log_spend", "log(clamp(spend, 1.0, 1000.0))"},
  };
  for (const auto& [name, expression] : defs) {
    ASSERT_TRUE(store_.PublishFeature(Def(name, expression)).ok()) << name;
    const std::map<std::string, Value> oracle = OfflineOracle(expression, now);

    std::vector<Value> keys;
    for (int64_t u = 0; u < 40; ++u) keys.push_back(Value::Int64(u));
    auto batch = store_.server().GetFeaturesBatch(keys, {name}, now);
    ASSERT_EQ(batch.size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << name << " user " << i << ": "
                                 << batch[i].status();
      const std::string key = EntityKeyToString(keys[i]).value();
      const auto it = oracle.find(key);
      if (it == oracle.end()) {
        // Entity never ingested: a miss, NULL-filled under kNull policy.
        EXPECT_TRUE(batch[i]->values[0].is_null()) << name << " user " << i;
        EXPECT_EQ(batch[i]->missing, 1u) << name << " user " << i;
        continue;
      }
      EXPECT_EQ(batch[i]->missing, 0u) << name << " user " << i;
      EXPECT_TRUE(BitEq(batch[i]->values[0], it->second))
          << name << " user " << i << ": served "
          << batch[i]->values[0].ToString() << " offline "
          << it->second.ToString();

      // The single-entity path must agree with the batch path.
      auto single = store_.server().GetFeatures(keys[i], {name}, now);
      ASSERT_TRUE(single.ok()) << single.status();
      EXPECT_TRUE(BitEq(single->values[0], it->second)) << name;
    }
  }
}

TEST_F(ServingComputeTest, NullResultIsAValueNotAMiss) {
  ASSERT_TRUE(store_
                  .Ingest("activity", {SourceRow(1, Hours(1), Value::Int64(3),
                                                 Value::Null(), Value::Null(),
                                                 Value::Null())})
                  .ok());
  // trips_30d is NULL -> NULL propagates through arithmetic: the computed
  // value is a legitimate NULL, not a miss.
  ASSERT_TRUE(
      store_.PublishFeature(Def("rate", "trips_7d / (trips_30d + 1)")).ok());
  auto fv = store_.ServeFeatures(Value::Int64(1), {"rate"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_TRUE(fv->values[0].is_null());
  EXPECT_EQ(fv->missing, 0u);
  EXPECT_EQ(fv->oldest_event_time, Hours(1));

  // An entity with no source history at all IS a miss.
  auto miss = store_.ServeFeatures(Value::Int64(99), {"rate"});
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_TRUE(miss->values[0].is_null());
  EXPECT_EQ(miss->missing, 1u);
}

TEST_F(ServingComputeTest, EvalErrorMatchesOfflineStatusUnderBothPolicies) {
  ASSERT_TRUE(store_
                  .Ingest("activity",
                          {SourceRow(1, Hours(1), Value::Int64(1),
                                     Value::Int64(2), Value::Double(4.0),
                                     Value::Null()),
                           SourceRow(2, Hours(2), Value::Int64(1),
                                     Value::Int64(2), Value::Null(),
                                     Value::Null())})
                  .ok());
  // clamp with lo > hi errors on every non-NULL input row; NULL input
  // propagates to NULL before the bounds check.
  const std::string expression = "clamp(spend, 1.0, 0.0)";
  ASSERT_TRUE(store_.PublishFeature(Def("bad_clamp", expression)).ok());

  // Offline oracle errors the whole evaluation (first failing row).
  OfflineTable* table = store_.offline().GetTable("activity").value();
  CompiledExpr expr = CompiledExpr::Compile(expression, schema_).value();
  auto cells = table->EvalLatestPerEntityAsOf(store_.clock().now(), expr);
  ASSERT_FALSE(cells.ok());

  // kNull (the default store server): eval error degrades to NULL + missing.
  auto fv = store_.ServeFeatures(Value::Int64(1), {"bad_clamp"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_TRUE(fv->values[0].is_null());
  EXPECT_EQ(fv->missing, 1u);
  // User 2's spend is NULL: clamp(NULL,..) is NULL, a value, not an error.
  auto fv2 = store_.ServeFeatures(Value::Int64(2), {"bad_clamp"});
  ASSERT_TRUE(fv2.ok()) << fv2.status();
  EXPECT_TRUE(fv2->values[0].is_null());
  EXPECT_EQ(fv2->missing, 0u);

  // kError: the per-entity status carries the same error class the offline
  // evaluation reported, and batch-mates fail independently.
  FeatureServerOptions opts;
  opts.missing_policy = MissingFeaturePolicy::kError;
  FeatureServer strict(&store_.online(), opts, nullptr, &store_.lineage(),
                       &store_.registry());
  auto batch = strict.GetFeaturesBatch(
      {Value::Int64(1), Value::Int64(2)}, {"bad_clamp"}, store_.clock().now());
  ASSERT_EQ(batch.size(), 2u);
  // The server's established kError contract wraps every per-feature
  // failure as "feature ... unavailable: <cause>"; the cause must be the
  // same eval error the offline materializer reported.
  ASSERT_FALSE(batch[0].ok());
  EXPECT_NE(batch[0].status().message().find("clamp: lo > hi"),
            std::string::npos)
      << batch[0].status();
  EXPECT_NE(std::string(cells.status().message()).find("clamp: lo > hi"),
            std::string::npos)
      << cells.status();
  ASSERT_TRUE(batch[1].ok()) << batch[1].status();  // NULL value, no error.
  EXPECT_TRUE(batch[1]->values[0].is_null());
}

TEST_F(ServingComputeTest, LateArrivingDataFollowsEventTimeNotIngestOrder) {
  // Newest event time first, then a late-arriving older row: serving must
  // keep the newest-by-event-time value, exactly like the offline AsOf.
  ASSERT_TRUE(store_
                  .Ingest("activity", {SourceRow(1, Hours(10), Value::Int64(9),
                                                 Value::Int64(9), Value::Null(),
                                                 Value::Null())})
                  .ok());
  ASSERT_TRUE(store_
                  .Ingest("activity", {SourceRow(1, Hours(2), Value::Int64(1),
                                                 Value::Int64(1), Value::Null(),
                                                 Value::Null())})
                  .ok());
  ASSERT_TRUE(store_.PublishFeature(Def("t7", "trips_7d + 0")).ok());
  auto fv = store_.ServeFeatures(Value::Int64(1), {"t7"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->values[0].int64_value(), 9);
  EXPECT_EQ(fv->oldest_event_time, Hours(10));

  // Equal event times: the later ingest wins, matching the offline
  // latest-ordinal tie-break.
  ASSERT_TRUE(store_
                  .Ingest("activity", {SourceRow(1, Hours(10), Value::Int64(5),
                                                 Value::Int64(5), Value::Null(),
                                                 Value::Null())})
                  .ok());
  const std::map<std::string, Value> oracle =
      OfflineOracle("trips_7d + 0", store_.clock().now());
  fv = store_.ServeFeatures(Value::Int64(1), {"t7"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->values[0].int64_value(), 5);
  EXPECT_TRUE(BitEq(fv->values[0], oracle.at(EntityKeyToString(
                                                 Value::Int64(1))
                                                 .value())));
}

TEST_F(ServingComputeTest, NewVersionRecompilesAndDeprecationFlagsStale) {
  ASSERT_TRUE(store_
                  .Ingest("activity", {SourceRow(1, Hours(1), Value::Int64(4),
                                                 Value::Int64(4), Value::Null(),
                                                 Value::Null())})
                  .ok());
  ASSERT_TRUE(store_.PublishFeature(Def("f", "trips_7d + 1")).ok());
  auto fv = store_.ServeFeatures(Value::Int64(1), {"f"});
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->values[0].int64_value(), 5);

  // v2 changes the expression: the compile cache is keyed by version, so
  // serving must pick up the new program immediately.
  ASSERT_TRUE(store_.PublishFeature(Def("f", "trips_7d * 10")).ok());
  fv = store_.ServeFeatures(Value::Int64(1), {"f"});
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->values[0].int64_value(), 40);
  EXPECT_TRUE(fv->stale.empty());

  ASSERT_TRUE(store_.DeprecateFeature("f").ok());
  fv = store_.ServeFeatures(Value::Int64(1), {"f"});
  ASSERT_TRUE(fv.ok());
  ASSERT_EQ(fv->stale.size(), 1u);
  EXPECT_NE(fv->stale[0].find("f"), std::string::npos);
}

TEST_F(ServingComputeTest, RegistrySnapshotRoundTripsSourceColumns) {
  ASSERT_TRUE(store_.PublishFeature(Def("f", "trips_7d + 1")).ok());
  const std::string snap = store_.registry().Snapshot();

  FeatureRegistry restored(&store_.offline());
  ASSERT_TRUE(restored.Restore(snap).ok());
  auto reg = restored.Get("f");
  ASSERT_TRUE(reg.ok()) << reg.status();
  EXPECT_EQ(reg->source_entity_column, "user_id");
  EXPECT_EQ(reg->source_time_column, "event_time");
  EXPECT_EQ(reg->def.expression, "trips_7d + 1");
}

// ---------------------------------------------------------------------------
// 2. SIMD kernels vs. scalar references, bit-for-bit.
// ---------------------------------------------------------------------------

class SimdKernelTest : public ::testing::Test {
 protected:
  // Widths straddling every vector-width boundary plus null-bitmap word
  // edges (63/64/65, 127/128/129).
  const std::vector<size_t> widths_ = {1,  2,  3,   5,   7,   8,   9,  15,
                                       16, 17, 31,  33,  63,  64,  65, 127,
                                       128, 129, 255, 1000};

  std::vector<double> RandomF64(Rng& rng, size_t n) {
    static const double kSpecials[] = {
        0.0,
        -0.0,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -1e308,
    };
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.Uniform(5) == 0 ? kSpecials[rng.Uniform(8)]
                                 : rng.UniformDouble(-1e6, 1e6);
    }
    return v;
  }

  std::vector<int64_t> RandomI64(Rng& rng, size_t n) {
    static const int64_t kSpecials[] = {0, 1, -1,
                                        std::numeric_limits<int64_t>::max(),
                                        std::numeric_limits<int64_t>::min()};
    std::vector<int64_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.Uniform(5) == 0
                 ? kSpecials[rng.Uniform(5)]
                 : rng.UniformInt(-1000000, 1000000);
    }
    return v;
  }

  std::vector<uint64_t> RandomMask(Rng& rng, size_t n) {
    std::vector<uint64_t> words((n + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(3) == 0) words[i >> 6] |= uint64_t{1} << (i & 63);
    }
    return words;
  }

  static bool BitwiseEqual(const std::vector<double>& a,
                           const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
  }
};

TEST_F(SimdKernelTest, BinaryF64MatchesScalarBitwise) {
  Rng rng(0xf64);
  for (size_t n : widths_) {
    const std::vector<double> x = RandomF64(rng, n), y = RandomF64(rng, n);
    std::vector<double> got(n), want(n);
    struct Pair {
      vmsimd::BinF64Fn dispatched;
      vmsimd::BinF64Fn scalar;
      const char* name;
    };
    const Pair pairs[] = {{vmsimd::add_f64, &vmsimd::AddF64Scalar, "add"},
                          {vmsimd::sub_f64, &vmsimd::SubF64Scalar, "sub"},
                          {vmsimd::mul_f64, &vmsimd::MulF64Scalar, "mul"}};
    for (const Pair& p : pairs) {
      p.dispatched(x.data(), y.data(), got.data(), n);
      p.scalar(x.data(), y.data(), want.data(), n);
      EXPECT_TRUE(BitwiseEqual(got, want))
          << p.name << " n=" << n << " (" << vmsimd::LevelName() << ")";
    }
  }
}

TEST_F(SimdKernelTest, DivF64MatchesScalarIncludingNullBits) {
  Rng rng(0xd1f);
  for (size_t n : widths_) {
    std::vector<double> x = RandomF64(rng, n), y = RandomF64(rng, n);
    // Force plenty of exact zeros in the divisor: the div kernel turns
    // x/0 into a null bit, the exact edge being pinned.
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform(4) == 0) y[i] = 0.0;
      if (rng.Uniform(16) == 0) y[i] = -0.0;
    }
    const std::vector<uint64_t> seed_mask = RandomMask(rng, n);
    std::vector<double> got(n), want(n);
    std::vector<uint64_t> got_nulls = seed_mask, want_nulls = seed_mask;
    vmsimd::div_f64(x.data(), y.data(), got.data(), got_nulls.data(), n);
    vmsimd::DivF64Scalar(x.data(), y.data(), want.data(), want_nulls.data(),
                         n);
    EXPECT_EQ(got_nulls, want_nulls) << "n=" << n;
    // Null lanes carry unspecified payloads; compare only non-null lanes.
    for (size_t i = 0; i < n; ++i) {
      if ((want_nulls[i >> 6] >> (i & 63)) & 1) continue;
      uint64_t gb, wb;
      std::memcpy(&gb, &got[i], 8);
      std::memcpy(&wb, &want[i], 8);
      EXPECT_EQ(gb, wb) << "n=" << n << " lane " << i;
    }
  }
}

TEST_F(SimdKernelTest, BinaryI64WrapsIdentically) {
  Rng rng(0x164);
  for (size_t n : widths_) {
    const std::vector<int64_t> x = RandomI64(rng, n), y = RandomI64(rng, n);
    std::vector<int64_t> got(n), want(n);
    vmsimd::add_i64(x.data(), y.data(), got.data(), n);
    vmsimd::AddI64Scalar(x.data(), y.data(), want.data(), n);
    EXPECT_EQ(got, want) << "add n=" << n;
    vmsimd::sub_i64(x.data(), y.data(), got.data(), n);
    vmsimd::SubI64Scalar(x.data(), y.data(), want.data(), n);
    EXPECT_EQ(got, want) << "sub n=" << n;
  }
}

TEST_F(SimdKernelTest, CompareKernelsMatchScalarOnNaN) {
  Rng rng(0xc3);
  const vmsimd::CmpPred preds[] = {vmsimd::CmpPred::kEq, vmsimd::CmpPred::kNe,
                                   vmsimd::CmpPred::kLt, vmsimd::CmpPred::kLe,
                                   vmsimd::CmpPred::kGt, vmsimd::CmpPred::kGe};
  for (size_t n : widths_) {
    const std::vector<double> x = RandomF64(rng, n), y = RandomF64(rng, n);
    const std::vector<int64_t> xi = RandomI64(rng, n), yi = RandomI64(rng, n);
    std::vector<uint8_t> got(n), want(n);
    for (vmsimd::CmpPred p : preds) {
      vmsimd::cmp_f64(p, x.data(), y.data(), got.data(), n);
      vmsimd::CmpF64Scalar(p, x.data(), y.data(), want.data(), n);
      EXPECT_EQ(got, want) << "f64 pred=" << static_cast<int>(p)
                           << " n=" << n;
      vmsimd::cmp_i64(p, xi.data(), yi.data(), got.data(), n);
      vmsimd::CmpI64Scalar(p, xi.data(), yi.data(), want.data(), n);
      EXPECT_EQ(got, want) << "i64 pred=" << static_cast<int>(p)
                           << " n=" << n;
    }
    // NaN-vs-NaN and NaN-vs-finite lanes compare "equal" (kEq true, kLt
    // and kGt false) by the three-way contract; spot-check directly.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double a[2] = {nan, nan}, b[2] = {nan, 1.0};
    uint8_t o[2];
    vmsimd::cmp_f64(vmsimd::CmpPred::kEq, a, b, o, 2);
    EXPECT_EQ(o[0], 1);
    EXPECT_EQ(o[1], 1);
    vmsimd::cmp_f64(vmsimd::CmpPred::kLt, a, b, o, 2);
    EXPECT_EQ(o[0], 0);
    EXPECT_EQ(o[1], 0);
  }
}

TEST_F(SimdKernelTest, OrWordsAndMaskedSumMatchScalar) {
  Rng rng(0x0b5);
  for (size_t n : widths_) {
    const std::vector<uint64_t> a = RandomMask(rng, n), b = RandomMask(rng, n);
    std::vector<uint64_t> got(a.size()), want(a.size());
    vmsimd::or_words(a.data(), b.data(), got.data(), a.size());
    vmsimd::OrWordsScalar(a.data(), b.data(), want.data(), a.size());
    EXPECT_EQ(got, want) << "n=" << n;

    // ±inf is fair game (inf + -inf yields the hardware default NaN in
    // every variant), but input NaNs are not: once two NaNs with distinct
    // payloads meet in an add, the surviving payload depends on operand
    // order, and the compiler may legally swap a commutative FP add. The
    // accumulation *shape* is pinned; NaN payload plumbing is not.
    std::vector<double> x = RandomF64(rng, n);
    for (double& v : x) {
      if (std::isnan(v)) v = 1.0;
    }
    const std::vector<uint64_t> mask = RandomMask(rng, n);
    const double gs = vmsimd::sum_f64_masked(x.data(), mask.data(), n);
    const double ws = vmsimd::SumF64MaskedScalar(x.data(), mask.data(), n);
    uint64_t gb, wb;
    std::memcpy(&gb, &gs, 8);
    std::memcpy(&wb, &ws, 8);
    EXPECT_EQ(gb, wb) << "sum n=" << n;

    size_t manual = 0;
    for (size_t i = 0; i < n; ++i) {
      manual += ((mask[i >> 6] >> (i & 63)) & 1) == 0;
    }
    EXPECT_EQ(vmsimd::CountNotNull(mask.data(), n), manual) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// 3. Dictionary string predicates vs. per-row comparison.
// ---------------------------------------------------------------------------

class DictPredicateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Create({{"id", FeatureType::kInt64, false},
                              {"ts", FeatureType::kTimestamp, false},
                              {"city", FeatureType::kString, true},
                              {"v", FeatureType::kDouble, true}})
                  .value();
    OfflineTableOptions opt;
    opt.name = "t";
    opt.schema = schema_;
    opt.entity_column = "id";
    opt.time_column = "ts";
    opt.seal_rows = 0;  // Seal explicitly so the head/segment split is ours.
    ASSERT_TRUE(store_.CreateTable(opt).ok());
    table_ = store_.GetTable("t").value();

    static const char* kCities[] = {"", "sf", "nyc", "sea", "chi",
                                    "la", "atx", "pdx"};
    Rng rng(0xd1c7);
    for (int i = 0; i < 600; ++i) {
      Value city = rng.Uniform(7) == 0 ? Value::Null()
                                       : Value::String(kCities[rng.Uniform(8)]);
      ASSERT_TRUE(
          table_
              ->Append(Row::Create(schema_, {Value::Int64(i % 37),
                                             Value::Time(Hours(1 + i % 50)),
                                             std::move(city),
                                             Value::Double(i * 0.5)})
                           .value())
              .ok());
    }
    // Seal most rows into dictionary-coded segments, keep a mutable head
    // so both the dict fast path and the per-row fallback run.
    ASSERT_TRUE(table_->SealHeads().ok());
    for (int i = 0; i < 40; ++i) {
      Value city = i % 5 == 0 ? Value::Null() : Value::String("sf");
      ASSERT_TRUE(
          table_
              ->Append(Row::Create(schema_, {Value::Int64(i),
                                             Value::Time(Hours(60)),
                                             std::move(city),
                                             Value::Double(i * 1.0)})
                           .value())
              .ok());
    }
  }

  OfflineStore store_;
  OfflineTable* table_ = nullptr;
  SchemaPtr schema_;
};

TEST_F(DictPredicateTest, PushdownMatchesPerRowForEveryOperator) {
  const std::vector<std::string> predicates = {
      "city == 'sf'",  "city != 'sf'", "city < 'nyc'",  "city <= 'nyc'",
      "city > 'sea'",  "city >= 'sea'", "'sf' == city", "'nyc' <= city",
      "city == 'zzz'", "city == ''",
  };
  for (const std::string& ps : predicates) {
    CompiledExpr pred = CompiledExpr::Compile(ps, schema_).value();
    auto pushed = table_->ScanIf(0, kMaxTimestamp, pred);
    ASSERT_TRUE(pushed.ok()) << ps << ": " << pushed.status();

    // Oracle: the same compiled predicate evaluated row-at-a-time through
    // the scalar interpreter path (no dictionary, no batching).
    ExprScratch scratch;
    std::vector<Row> want = table_->ScanIf(
        0, kMaxTimestamp, [&](const Row& row) {
          auto v = pred.Eval(row, &scratch);
          return v.ok() && !v->is_null() && v->bool_value();
        });
    ASSERT_EQ(pushed->size(), want.size()) << ps;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*pushed)[i], want[i]) << ps << " row " << i;
    }
  }
}

TEST_F(DictPredicateTest, DisableFlagFallsBackToPerRowWithIdenticalResults) {
  // Drive the VM directly over the sealed tier with the fast path disabled
  // via ExprScratch: results must be identical to the fast path, proving
  // the per-code table and the per-row comparison agree lane by lane.
  CompiledExpr pred = CompiledExpr::Compile("city >= 'nyc'", schema_).value();
  auto fast = table_->ScanIf(0, kMaxTimestamp, pred);
  ASSERT_TRUE(fast.ok()) << fast.status();

  // Re-evaluate every returned row AND every dropped row through EvalRow:
  // a full-scan oracle over rows materialized without the predicate.
  std::vector<Row> all =
      table_->ScanIf(0, kMaxTimestamp, [](const Row&) { return true; });
  ExprScratch scratch;
  scratch.set_disable_dict_fastpath(true);
  std::vector<Row> slow;
  for (const Row& row : all) {
    auto v = pred.Eval(row, &scratch);
    ASSERT_TRUE(v.ok()) << v.status();
    if (!v->is_null() && v->bool_value()) slow.push_back(row);
  }
  ASSERT_EQ(fast->size(), slow.size());
  for (size_t i = 0; i < slow.size(); ++i) EXPECT_EQ((*fast)[i], slow[i]);
}

TEST_F(DictPredicateTest, AllNullStringColumnScansClean) {
  OfflineTableOptions opt;
  opt.name = "nulls";
  opt.schema = schema_;
  opt.entity_column = "id";
  opt.time_column = "ts";
  opt.seal_rows = 0;
  ASSERT_TRUE(store_.CreateTable(opt).ok());
  OfflineTable* t = store_.GetTable("nulls").value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Append(Row::Create(schema_, {Value::Int64(i),
                                                Value::Time(Hours(1)),
                                                Value::Null(),
                                                Value::Double(1.0)})
                              .value())
                    .ok());
  }
  ASSERT_TRUE(t->SealHeads().ok());  // Empty dictionary, all codes NULL.
  CompiledExpr pred = CompiledExpr::Compile("city == 'sf'", schema_).value();
  auto rows = t->ScanIf(0, kMaxTimestamp, pred);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE(rows->empty());
  CompiledExpr ne = CompiledExpr::Compile("city != 'sf'", schema_).value();
  rows = t->ScanIf(0, kMaxTimestamp, ne);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE(rows->empty());  // NULL predicate results drop the row.
}

// ---------------------------------------------------------------------------
// 4. Time-range pruning and readahead depth.
// ---------------------------------------------------------------------------

class TimePruneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Create({{"id", FeatureType::kInt64, false},
                              {"ts", FeatureType::kTimestamp, false},
                              {"v", FeatureType::kDouble, true}})
                  .value();
  }

  OfflineTable* MakeTable(OfflineStore& store, const std::string& name,
                          OfflineTableOptions opt, Rng& rng, int rows) {
    opt.name = name;
    opt.schema = schema_;
    opt.entity_column = "id";
    opt.time_column = "ts";
    EXPECT_TRUE(store.CreateTable(opt).ok());
    OfflineTable* t = store.GetTable(name).value();
    for (int i = 0; i < rows; ++i) {
      const int64_t id = static_cast<int64_t>(rng.Uniform(20));
      // Spread across ~10 daily partitions so segment time ranges differ.
      const Timestamp ts = Hours(1) + static_cast<Timestamp>(rng.Uniform(
                                          static_cast<uint64_t>(Hours(240))));
      EXPECT_TRUE(t->Append(Row::Create(schema_, {Value::Int64(id),
                                                  Value::Time(ts),
                                                  Value::Double(i * 0.25)})
                                .value())
                      .ok());
    }
    EXPECT_TRUE(t->SealHeads().ok());
    return t;
  }

  // Sorted random request mix: present keys, absent keys, early/late ts.
  std::vector<std::pair<std::string, Timestamp>> MakeRequests(Rng& rng,
                                                              int n) {
    std::vector<std::pair<std::string, Timestamp>> reqs;
    for (int i = 0; i < n; ++i) {
      const int64_t id = static_cast<int64_t>(rng.Uniform(25));  // Some miss.
      const Timestamp ts =
          static_cast<Timestamp>(rng.Uniform(static_cast<uint64_t>(Hours(260))));
      reqs.emplace_back(EntityKeyToString(Value::Int64(id)).value(), ts);
    }
    std::sort(reqs.begin(), reqs.end());
    return reqs;
  }

  SchemaPtr schema_;
};

TEST_F(TimePruneTest, AsOfBatchPruneOnOffByteIdentical) {
  OfflineStore store;
  Rng rng(0x70ff);
  OfflineTable* t = MakeTable(store, "t", {}, rng, 2000);
  const auto reqs = MakeRequests(rng, 300);
  std::vector<AsOfRequest> requests;
  for (const auto& [k, ts] : reqs) requests.push_back({k, ts});

  std::vector<Row> on(requests.size()), off(requests.size());
  std::vector<uint64_t> on_miss, off_miss;
  AsOfReadOptions opt_on, opt_off;
  opt_on.prune_time_ranges = true;
  opt_on.miss_bitmap = &on_miss;
  opt_off.prune_time_ranges = false;
  opt_off.miss_bitmap = &off_miss;
  ASSERT_TRUE(t->AsOfBatch(requests, on, opt_on).ok());
  ASSERT_TRUE(t->AsOfBatch(requests, off, opt_off).ok());
  EXPECT_EQ(on_miss, off_miss);
  for (size_t i = 0; i < requests.size(); ++i) {
    if (MissBitmapTest(on_miss, i)) continue;
    EXPECT_EQ(on[i], off[i]) << "request " << i;
  }
}

TEST_F(TimePruneTest, ScanSkipsNonOverlappingSegmentsAndCountsThem) {
  OfflineStore store;
  Rng rng(0x5ca9);
  OfflineTable* t = MakeTable(store, "t", {}, rng, 2000);
  ASSERT_GE(t->storage_stats().sealed_segments, 2u);

  // A window covering a couple of partitions: distant segments must be
  // skipped without decoding, and the results must equal a brute filter.
  const Timestamp lo = Hours(48), hi = Hours(96);
  const uint64_t before = t->storage_stats().scan_segments_skipped;
  std::vector<Row> got = t->ScanIf(lo, hi, [](const Row&) { return true; });
  const uint64_t after = t->storage_stats().scan_segments_skipped;
  EXPECT_GT(after, before);

  std::vector<Row> all =
      t->ScanIf(0, kMaxTimestamp, [](const Row&) { return true; });
  const int ts_idx = schema_->FieldIndex("ts");
  std::vector<Row> want;
  for (const Row& row : all) {
    const Timestamp ts = row.value(static_cast<size_t>(ts_idx)).time_value();
    if (ts >= lo && ts < hi) want.push_back(row);
  }
  ASSERT_EQ(got.size(), want.size());
  // ScanIf emits partition order; the brute filter preserves it.
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);

  // The pushdown scan prunes identically.
  CompiledExpr pred = CompiledExpr::Compile("v >= 0.0", schema_).value();
  const uint64_t before2 = t->storage_stats().scan_segments_skipped;
  auto pushed = t->ScanIf(lo, hi, pred);
  ASSERT_TRUE(pushed.ok());
  EXPECT_GT(t->storage_stats().scan_segments_skipped, before2);
  EXPECT_EQ(pushed->size(), want.size());
}

TEST_F(TimePruneTest, ReadaheadDepthIsByteIdenticalAcrossDepths) {
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_ra_depth")
          .string();
  std::filesystem::remove_all(spill_dir);
  OfflineTableOptions opt;
  opt.spill_dir = spill_dir;
  opt.memory_budget_bytes = 1;  // Spill everything sealed.
  opt.readahead.enabled = true;
  OfflineStore store;
  Rng rng(0x4ead);
  OfflineTable* t = MakeTable(store, "t", opt, rng, 2000);
  ASSERT_TRUE(t->EnforceMemoryBudget().ok());
  ASSERT_GE(t->storage_stats().spilled_segments, 2u);

  const auto reqs = MakeRequests(rng, 200);
  std::vector<AsOfRequest> requests;
  for (const auto& [k, ts] : reqs) requests.push_back({k, ts});

  std::vector<std::vector<Row>> results;
  for (size_t depth : {size_t{1}, size_t{3}, size_t{8}}) {
    std::vector<Row> rows(requests.size());
    AsOfReadOptions options;
    options.readahead_depth = depth;
    ASSERT_TRUE(t->AsOfBatch(requests, rows, options).ok()) << depth;
    results.push_back(std::move(rows));
  }
  for (size_t d = 1; d < results.size(); ++d) {
    for (size_t i = 0; i < requests.size(); ++i) {
      const bool hit0 = results[0][i].schema() != nullptr;
      const bool hitd = results[d][i].schema() != nullptr;
      ASSERT_EQ(hit0, hitd) << "depth variant " << d << " request " << i;
      if (hit0) {
        EXPECT_EQ(results[0][i], results[d][i]);
      }
    }
  }
  std::filesystem::remove_all(spill_dir);
}

}  // namespace
}  // namespace mlfs
