#include "streaming/aggregator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace mlfs {
namespace {

Value AggregateAll(AggregateFn fn, const std::vector<double>& xs) {
  auto state = MakeAggregator(fn);
  for (double x : xs) state->Add(Value::Double(x));
  return state->Result();
}

TEST(AggregatorTest, EmptyStates) {
  EXPECT_EQ(MakeAggregator(AggregateFn::kCount)->Result(), Value::Int64(0));
  EXPECT_EQ(MakeAggregator(AggregateFn::kCountDistinct)->Result(),
            Value::Int64(0));
  for (auto fn : {AggregateFn::kSum, AggregateFn::kMean, AggregateFn::kMin,
                  AggregateFn::kMax, AggregateFn::kVariance,
                  AggregateFn::kStddev, AggregateFn::kP50, AggregateFn::kP99}) {
    EXPECT_TRUE(MakeAggregator(fn)->Result().is_null())
        << AggregateFnToString(fn);
  }
}

TEST(AggregatorTest, BasicMoments) {
  std::vector<double> xs = {4, 1, 3, 2, 5};
  EXPECT_EQ(AggregateAll(AggregateFn::kSum, xs), Value::Double(15));
  EXPECT_EQ(AggregateAll(AggregateFn::kMean, xs), Value::Double(3));
  EXPECT_EQ(AggregateAll(AggregateFn::kMin, xs), Value::Double(1));
  EXPECT_EQ(AggregateAll(AggregateFn::kMax, xs), Value::Double(5));
  EXPECT_DOUBLE_EQ(AggregateAll(AggregateFn::kVariance, xs).double_value(),
                   2.0);
  EXPECT_DOUBLE_EQ(AggregateAll(AggregateFn::kStddev, xs).double_value(),
                   std::sqrt(2.0));
}

TEST(AggregatorTest, CountCountsNonNull) {
  auto state = MakeAggregator(AggregateFn::kCount);
  state->Add(Value::Int64(1));
  state->Add(Value::String("any type counts"));
  state->Add(Value::Null());
  EXPECT_EQ(state->Result(), Value::Int64(2));
  EXPECT_EQ(state->skipped(), 1u);
}

TEST(AggregatorTest, CountDistinct) {
  auto state = MakeAggregator(AggregateFn::kCountDistinct);
  for (int i = 0; i < 100; ++i) state->Add(Value::Int64(i % 7));
  state->Add(Value::String("x"));
  state->Add(Value::Null());
  EXPECT_EQ(state->Result(), Value::Int64(8));
}

TEST(AggregatorTest, NullAndNonNumericSkipped) {
  auto state = MakeAggregator(AggregateFn::kMean);
  state->Add(Value::Double(10));
  state->Add(Value::Null());
  state->Add(Value::String("oops"));
  state->Add(Value::Double(20));
  EXPECT_EQ(state->Result(), Value::Double(15));
  EXPECT_EQ(state->skipped(), 2u);
}

TEST(AggregatorTest, MixedNumericTypesCoerce) {
  auto state = MakeAggregator(AggregateFn::kSum);
  state->Add(Value::Int64(3));
  state->Add(Value::Double(1.5));
  state->Add(Value::Bool(true));
  EXPECT_EQ(state->Result(), Value::Double(5.5));
}

TEST(AggregatorTest, WelfordMatchesTwoPassVariance) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Gaussian(10, 3));
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_NEAR(AggregateAll(AggregateFn::kVariance, xs).double_value(), var,
              1e-9 * var);
}

TEST(AggregatorTest, P2QuantileExactForFewSamples) {
  EXPECT_EQ(AggregateAll(AggregateFn::kP50, {5}), Value::Double(5));
  EXPECT_EQ(AggregateAll(AggregateFn::kP50, {1, 2, 3}), Value::Double(2));
  EXPECT_EQ(AggregateAll(AggregateFn::kP99, {1, 2, 3, 4}), Value::Double(4));
}

class P2AccuracyTest
    : public ::testing::TestWithParam<std::tuple<AggregateFn, double>> {};

TEST_P(P2AccuracyTest, ApproximatesTrueQuantileOnGaussian) {
  auto [fn, q] = GetParam();
  Rng rng(101);
  std::vector<double> xs;
  auto state = MakeAggregator(fn);
  for (int i = 0; i < 20000; ++i) {
    double x = rng.Gaussian(100, 15);
    xs.push_back(x);
    state->Add(Value::Double(x));
  }
  std::sort(xs.begin(), xs.end());
  double truth = xs[static_cast<size_t>(q * (xs.size() - 1))];
  double est = state->Result().double_value();
  // P2 is approximate: allow 2% relative error on a smooth distribution.
  EXPECT_NEAR(est, truth, std::abs(truth) * 0.02)
      << AggregateFnToString(fn);
}

INSTANTIATE_TEST_SUITE_P(
    Quantiles, P2AccuracyTest,
    ::testing::Values(std::make_tuple(AggregateFn::kP50, 0.50),
                      std::make_tuple(AggregateFn::kP90, 0.90),
                      std::make_tuple(AggregateFn::kP99, 0.99)));

TEST(AggregatorTest, NameRoundTrip) {
  for (auto fn : {AggregateFn::kCount, AggregateFn::kSum, AggregateFn::kMean,
                  AggregateFn::kMin, AggregateFn::kMax, AggregateFn::kVariance,
                  AggregateFn::kStddev, AggregateFn::kP50, AggregateFn::kP90,
                  AggregateFn::kP99, AggregateFn::kCountDistinct}) {
    auto parsed = AggregateFnFromString(AggregateFnToString(fn));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fn);
  }
  EXPECT_FALSE(AggregateFnFromString("nope").ok());
  EXPECT_EQ(AggregateFnFromString("SUM").value(), AggregateFn::kSum);
}

TEST(AggregatorTest, OutputTypes) {
  EXPECT_EQ(AggregateOutputType(AggregateFn::kCount), FeatureType::kInt64);
  EXPECT_EQ(AggregateOutputType(AggregateFn::kCountDistinct),
            FeatureType::kInt64);
  EXPECT_EQ(AggregateOutputType(AggregateFn::kMean), FeatureType::kDouble);
}

}  // namespace
}  // namespace mlfs
