#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace mlfs {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    all_equal &= (va == b.Next());
    any_diff_seed |= (va != c.Next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanCloseToCenter) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(3);
  auto s = rng.SampleWithoutReplacement(100, 10);
  ASSERT_EQ(s.size(), 10u);
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_LT(s[i - 1], s[i]);  // Sorted and distinct.
    EXPECT_LT(s[i], 100u);
  }
  auto all = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(all.size(), 5u);
}

TEST(ZipfTest, PmfSumsToOneAndDecreases) {
  ZipfDistribution z(100, 1.1);
  double total = 0;
  for (size_t r = 0; r < z.n(); ++r) total += z.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(50));
}

TEST(ZipfTest, SampleMatchesPmfOnHead) {
  Rng rng(17);
  ZipfDistribution z(1000, 1.0);
  const int n = 200000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (size_t r = 0; r < 5; ++r) {
    double observed = static_cast<double>(counts[r]) / n;
    EXPECT_NEAR(observed, z.Pmf(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (size_t r = 0; r < 10; ++r) EXPECT_NEAR(z.Pmf(r), 0.1, 1e-12);
}

}  // namespace
}  // namespace mlfs
