#include "embedding/align.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "embedding/quality.h"
#include "ml/matrix.h"
#include "ml/metrics.h"

namespace mlfs {
namespace {

TEST(SvdTest, ReconstructsMatrix) {
  Rng rng(1);
  Matrix m(10, 4);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 4; ++j) m.at(i, j) = rng.Gaussian();
  }
  auto svd = ThinSvd(m).value();
  ASSERT_EQ(svd.singular_values.size(), 4u);
  // Descending, non-negative.
  for (size_t k = 1; k < 4; ++k) {
    EXPECT_LE(svd.singular_values[k], svd.singular_values[k - 1]);
    EXPECT_GE(svd.singular_values[k], 0.0);
  }
  // m == U S V^T.
  Matrix s(4, 4);
  for (size_t k = 0; k < 4; ++k) s.at(k, k) = svd.singular_values[k];
  Matrix rebuilt = svd.u.Multiply(s).Multiply(svd.v.Transpose());
  EXPECT_LT(rebuilt.MaxAbsDiff(m), 1e-8);
  // U, V orthonormal.
  EXPECT_LT(svd.u.Transpose().Multiply(svd.u)
                .MaxAbsDiff(Matrix::Identity(4)), 1e-8);
  EXPECT_LT(svd.v.Transpose().Multiply(svd.v)
                .MaxAbsDiff(Matrix::Identity(4)), 1e-8);
}

TEST(SvdTest, Validation) {
  EXPECT_FALSE(ThinSvd(Matrix(2, 4)).ok());  // n < d.
  EXPECT_FALSE(ThinSvd(Matrix(0, 0)).ok());
}

TEST(ProcrustesTest, RecoversKnownRotation) {
  Rng rng(2);
  const size_t n = 50, d = 6;
  Matrix x(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) x.at(i, j) = rng.Gaussian();
  }
  // Build a random orthogonal R via QR of a Gaussian matrix.
  Matrix g(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) g.at(i, j) = rng.Gaussian();
  }
  Matrix r_true = OrthonormalizeColumns(g);
  ASSERT_EQ(r_true.cols(), d);
  Matrix y = x.Multiply(r_true);

  Matrix r_est = OrthogonalProcrustes(x, y).value();
  EXPECT_LT(r_est.MaxAbsDiff(r_true), 1e-8);
  // Orthogonality of the estimate.
  EXPECT_LT(r_est.Transpose().Multiply(r_est)
                .MaxAbsDiff(Matrix::Identity(d)), 1e-9);
}

TEST(ProcrustesTest, Validation) {
  EXPECT_FALSE(OrthogonalProcrustes(Matrix(3, 2), Matrix(3, 3)).ok());
  EXPECT_FALSE(OrthogonalProcrustes(Matrix(2, 3), Matrix(2, 3)).ok());
  // Rank-deficient: all-zero matrices.
  EXPECT_FALSE(OrthogonalProcrustes(Matrix(4, 2), Matrix(4, 2)).ok());
}

EmbeddingTablePtr RandomTable(size_t n, size_t dim, uint64_t seed,
                              int version = 1) {
  Rng rng(seed);
  std::vector<std::string> keys;
  std::vector<float> data;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("e" + std::to_string(i));
    for (size_t j = 0; j < dim; ++j) {
      data.push_back(static_cast<float>(rng.Gaussian()));
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  metadata.version = version;
  return EmbeddingTable::Create(metadata, keys, data, dim).value();
}

TEST(AlignTest, UndoesPureRotation) {
  auto base = RandomTable(100, 6, 3);
  // Rotate all vectors by a fixed orthogonal transform (dim reversal +
  // sign flips): a pure coordinate change.
  std::vector<float> rotated = base->raw();
  const size_t d = base->dim();
  for (size_t i = 0; i < base->size(); ++i) {
    float* row = rotated.data() + i * d;
    std::reverse(row, row + d);
    for (size_t j = 0; j < d; j += 2) row[j] = -row[j];
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  metadata.version = 2;
  auto moved = base->WithVectors(metadata, rotated, d).value();

  auto result = AlignToReference(*moved, *base).value();
  EXPECT_GT(result.anchor_cosine, 0.9999);
  EXPECT_EQ(result.anchors_used, 100u);
  EXPECT_EQ(result.aligned->metadata().parent, "emb@v2");
  // Vectors essentially restored.
  for (size_t i = 0; i < base->size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(result.aligned->row(i)[j], base->row(i)[j], 1e-4);
    }
  }
}

TEST(AlignTest, IndependentSpacesAlignPoorly) {
  auto a = RandomTable(100, 6, 4);
  auto b = RandomTable(100, 6, 5);  // Unrelated geometry.
  auto result = AlignToReference(*b, *a).value();
  // A rotation cannot reconcile unrelated random clouds.
  EXPECT_LT(result.anchor_cosine, 0.5);
}

TEST(AlignTest, Validation) {
  auto a = RandomTable(10, 4, 6);
  auto b = RandomTable(10, 8, 7);
  EXPECT_FALSE(AlignToReference(*a, *b).ok());  // Dim mismatch.
  auto tiny = RandomTable(2, 4, 8);
  EXPECT_FALSE(AlignToReference(*tiny, *tiny).ok());  // Too few anchors.
  // Explicit anchors must exist in both tables.
  EXPECT_FALSE(AlignToReference(*a, *a, {"e0", "e1", "e2", "missing"}).ok());
}

TEST(AlignTest, RescuesStaleDownstreamModel) {
  // The E11 mechanism as a unit test: clustered geometry, two "versions"
  // related by rotation + noise; a model trained on v1 collapses on raw v2
  // but survives on aligned v2.
  Rng rng(9);
  const size_t n = 600, d = 8;
  const int classes = 3;
  std::vector<std::vector<float>> centers(classes, std::vector<float>(d));
  for (auto& center : centers) {
    for (auto& x : center) x = static_cast<float>(rng.Gaussian(0, 3));
  }
  std::vector<std::string> keys;
  std::vector<float> v1_data;
  DownstreamTask task;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("e" + std::to_string(i));
    int label = static_cast<int>(i % classes);
    for (size_t j = 0; j < d; ++j) {
      v1_data.push_back(centers[label][j] +
                        static_cast<float>(rng.Gaussian(0, 0.4)));
    }
    task.keys.push_back(keys.back());
    task.labels.push_back(label);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  metadata.version = 1;
  auto v1 = EmbeddingTable::Create(metadata, keys, v1_data, d).value();

  // v2: rotated + small noise (a benign retrain).
  std::vector<float> v2_data = v1->raw();
  for (size_t i = 0; i < n; ++i) {
    float* row = v2_data.data() + i * d;
    std::reverse(row, row + d);
    for (size_t j = 0; j < d; j += 2) row[j] = -row[j];
    for (size_t j = 0; j < d; ++j) {
      row[j] += static_cast<float>(rng.Gaussian(0, 0.05));
    }
  }
  metadata.version = 2;
  auto v2 = v1->WithVectors(metadata, v2_data, d).value();

  SoftmaxClassifier model;
  Dataset data_v1 = MaterializeTask(task, *v1).value();
  ASSERT_TRUE(model.Fit(data_v1).ok());
  auto accuracy_on = [&](const EmbeddingTable& table) {
    Dataset data = MaterializeTask(task, table).value();
    auto preds = model.PredictBatch(data).value();
    return Accuracy(data.labels, preds).value();
  };
  double acc_v1 = accuracy_on(*v1);
  double acc_v2_raw = accuracy_on(*v2);
  auto aligned = AlignToReference(*v2, *v1).value();
  double acc_v2_aligned = accuracy_on(*aligned.aligned);

  EXPECT_GT(acc_v1, 0.95);
  EXPECT_LT(acc_v2_raw, 0.7);              // Stale model collapses.
  EXPECT_GT(acc_v2_aligned, 0.95);         // Alignment rescues it.
  EXPECT_GT(aligned.anchor_cosine, 0.98);
}

}  // namespace
}  // namespace mlfs
