// Metric-parameterized consistency: HNSW must agree with the exact scan
// under every supported metric, not just L2.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embedding/ann.h"

namespace mlfs {
namespace {

class MetricSweepTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricSweepTest, HnswMatchesBruteForceTop1) {
  const Metric metric = GetParam();
  const size_t n = 800, dim = 12;
  Rng rng(21);
  std::vector<float> data(n * dim);
  for (auto& x : data) x = static_cast<float>(rng.Gaussian());

  auto exact = MakeBruteForceIndex(metric);
  ASSERT_TRUE(exact->Build(data.data(), n, dim).ok());
  HnswOptions options;
  options.metric = metric;
  options.ef_search = 128;
  options.ef_construction = 160;
  auto hnsw = MakeHnswIndex(options);
  ASSERT_TRUE(hnsw->Build(data.data(), n, dim).ok());
  EXPECT_EQ(hnsw->metric(), metric);

  int top1_matches = 0;
  double recall10 = 0.0;
  const int queries = 40;
  for (int q = 0; q < queries; ++q) {
    std::vector<float> query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Gaussian());
    auto truth = exact->Search(query.data(), 10).value();
    auto approx = hnsw->Search(query.data(), 10).value();
    top1_matches += !approx.empty() && approx[0].id == truth[0].id;
    recall10 += RecallAtK(approx, truth, 10);
  }
  EXPECT_GE(top1_matches, 34) << MetricToString(metric);
  EXPECT_GT(recall10 / queries, 0.8) << MetricToString(metric);
}

TEST_P(MetricSweepTest, DistanceOrderingSemantics) {
  const Metric metric = GetParam();
  const size_t dim = 4;
  float a[dim] = {1, 0, 0, 0};
  float near_a[dim] = {0.9f, 0.1f, 0, 0};
  float far[dim] = {-1, 0, 0, 0};
  // In every metric, near_a must be closer to a than far is.
  EXPECT_LT(Distance(metric, a, near_a, dim), Distance(metric, a, far, dim))
      << MetricToString(metric);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricSweepTest,
                         ::testing::Values(Metric::kL2,
                                           Metric::kInnerProduct,
                                           Metric::kCosine),
                         [](const auto& info) {
                           return std::string(MetricToString(info.param));
                         });

}  // namespace
}  // namespace mlfs
