#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace mlfs {
namespace {

// Two well-separated Gaussian blobs.
Dataset TwoBlobs(size_t n_per_class, uint64_t seed, double separation = 4.0) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n_per_class; ++i) {
    data.Add({static_cast<float>(rng.Gaussian(-separation / 2, 1)),
              static_cast<float>(rng.Gaussian(0, 1))}, 0);
    data.Add({static_cast<float>(rng.Gaussian(separation / 2, 1)),
              static_cast<float>(rng.Gaussian(0, 1))}, 1);
  }
  return data;
}

Dataset ThreeBlobs(size_t n_per_class, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  const double centers[3][2] = {{0, 4}, {-4, -2}, {4, -2}};
  for (size_t i = 0; i < n_per_class; ++i) {
    for (int c = 0; c < 3; ++c) {
      data.Add({static_cast<float>(rng.Gaussian(centers[c][0], 1)),
                static_cast<float>(rng.Gaussian(centers[c][1], 1))}, c);
    }
  }
  return data;
}

TEST(SoftmaxTest, LearnsLinearlySeparableData) {
  Dataset data = TwoBlobs(300, 1);
  auto [train, test] = TrainTestSplit(data, 0.3, 7);
  SoftmaxClassifier model;
  auto loss = model.Fit(train);
  ASSERT_TRUE(loss.ok()) << loss.status();
  auto preds = model.PredictBatch(test).value();
  EXPECT_GT(Accuracy(test.labels, preds).value(), 0.95);
  EXPECT_LT(*loss, 0.2);
}

TEST(SoftmaxTest, Multiclass) {
  Dataset data = ThreeBlobs(200, 2);
  SoftmaxClassifier model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.num_classes(), 3);
  auto preds = model.PredictBatch(data).value();
  EXPECT_GT(Accuracy(data.labels, preds).value(), 0.95);
}

TEST(SoftmaxTest, DeterministicGivenSeed) {
  Dataset data = TwoBlobs(100, 3);
  SoftmaxClassifier a, b;
  TrainConfig config;
  config.seed = 99;
  ASSERT_TRUE(a.Fit(data, config).ok());
  ASSERT_TRUE(b.Fit(data, config).ok());
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(SoftmaxTest, ProbabilitiesSumToOne) {
  Dataset data = ThreeBlobs(100, 4);
  SoftmaxClassifier model;
  ASSERT_TRUE(model.Fit(data).ok());
  auto probs = model.PredictProba(data.example(0), data.dim).value();
  double total = 0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SoftmaxTest, ExampleWeightsChangeDecisions) {
  // Class 1 is 10x rarer; upweighting it should raise its recall.
  Rng rng(5);
  Dataset data;
  for (int i = 0; i < 500; ++i) {
    data.Add({static_cast<float>(rng.Gaussian(-1, 1.5))}, 0);
    if (i % 10 == 0) {
      data.Add({static_cast<float>(rng.Gaussian(1, 1.5))}, 1);
    }
  }
  SoftmaxClassifier plain, weighted;
  ASSERT_TRUE(plain.Fit(data).ok());
  TrainConfig config;
  config.example_weights.assign(data.size(), 1.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.labels[i] == 1) config.example_weights[i] = 10.0;
  }
  ASSERT_TRUE(weighted.Fit(data, config).ok());
  double recall_plain =
      PrecisionRecallF1(data.labels, plain.PredictBatch(data).value(), 1)
          .value().recall;
  double recall_weighted =
      PrecisionRecallF1(data.labels, weighted.PredictBatch(data).value(), 1)
          .value().recall;
  EXPECT_GT(recall_weighted, recall_plain);
}

TEST(SoftmaxTest, FitMoreImprovesFit) {
  Dataset data = TwoBlobs(200, 6);
  SoftmaxClassifier model;
  TrainConfig short_run;
  short_run.epochs = 1;
  short_run.learning_rate = 0.0005;  // Barely moves off initialization.
  double loss1 = model.Fit(data, short_run).value();
  TrainConfig more;
  more.epochs = 20;
  double loss2 = model.FitMore(data, more).value();
  EXPECT_LT(loss2, loss1);
}

TEST(SoftmaxTest, Validation) {
  SoftmaxClassifier model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
  EXPECT_TRUE(model.Predict(nullptr, 0).status().IsFailedPrecondition());
  EXPECT_FALSE(model.FitMore(TwoBlobs(10, 1), {}).ok());

  Dataset one_class;
  one_class.Add({1.0f}, 0);
  one_class.Add({2.0f}, 0);
  EXPECT_FALSE(model.Fit(one_class).ok());

  Dataset data = TwoBlobs(10, 1);
  ASSERT_TRUE(model.Fit(data).ok());
  float x[5] = {0};
  EXPECT_FALSE(model.Predict(x, 5).ok());  // Wrong dim.

  TrainConfig bad_weights;
  bad_weights.example_weights = {1.0};
  EXPECT_FALSE(model.Fit(data, bad_weights).ok());
}

TEST(MlpTest, LearnsNonlinearXor) {
  Rng rng(8);
  Dataset data;
  for (int i = 0; i < 1200; ++i) {
    double x = rng.UniformDouble(-1, 1);
    double y = rng.UniformDouble(-1, 1);
    int label = (x * y > 0) ? 1 : 0;  // XOR-style quadrants.
    data.Add({static_cast<float>(x), static_cast<float>(y)}, label);
  }
  // Linear model cannot beat chance by much; MLP can.
  SoftmaxClassifier linear;
  ASSERT_TRUE(linear.Fit(data).ok());
  double linear_acc =
      Accuracy(data.labels, linear.PredictBatch(data).value()).value();
  MlpClassifier mlp(16);
  TrainConfig config;
  config.epochs = 60;
  config.learning_rate = 0.05;
  ASSERT_TRUE(mlp.Fit(data, config).ok());
  double mlp_acc =
      Accuracy(data.labels, mlp.PredictBatch(data).value()).value();
  EXPECT_LT(linear_acc, 0.75);
  EXPECT_GT(mlp_acc, 0.9);
}

TEST(MlpTest, Validation) {
  MlpClassifier mlp;
  EXPECT_FALSE(mlp.Fit(Dataset{}).ok());
  EXPECT_TRUE(mlp.Predict(nullptr, 0).status().IsFailedPrecondition());
}

TEST(TrainTestSplitTest, PartitionsDeterministically) {
  Dataset data = TwoBlobs(50, 1);
  auto [train1, test1] = TrainTestSplit(data, 0.2, 11);
  auto [train2, test2] = TrainTestSplit(data, 0.2, 11);
  EXPECT_EQ(train1.labels, train2.labels);
  EXPECT_EQ(test1.size(), 20u);   // 20% of 100.
  EXPECT_EQ(train1.size(), 80u);
  EXPECT_EQ(train1.size() + test1.size(), data.size());
}

}  // namespace
}  // namespace mlfs
