#include "quality/drift.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlfs {
namespace {

std::vector<double> GaussianSample(Rng* rng, size_t n, double mean,
                                   double sd) {
  std::vector<double> out(n);
  for (auto& x : out) x = rng->Gaussian(mean, sd);
  return out;
}

TEST(KsTest, IdenticalSamplesHaveZeroStatistic) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a).value(), 0.0);
}

TEST(KsTest, DisjointSamplesHaveStatisticOne) {
  EXPECT_DOUBLE_EQ(KsStatistic({1, 2, 3}, {10, 11, 12}).value(), 1.0);
}

TEST(KsTest, KnownSmallCase) {
  // F_a jumps at 1,3; F_b jumps at 2,4. Max gap = 0.5.
  EXPECT_DOUBLE_EQ(KsStatistic({1, 3}, {2, 4}).value(), 0.5);
}

TEST(KsTest, RejectsEmpty) {
  EXPECT_FALSE(KsStatistic({}, {1.0}).ok());
  EXPECT_FALSE(KsStatistic({1.0}, {}).ok());
}

TEST(PsiTest, IdenticalDistributionsNearZero) {
  std::vector<double> counts = {10, 20, 30, 20, 10};
  EXPECT_NEAR(PopulationStabilityIndex(counts, counts).value(), 0.0, 1e-12);
}

TEST(PsiTest, ShiftedDistributionLarge) {
  std::vector<double> a = {50, 30, 15, 4, 1};
  std::vector<double> b = {1, 4, 15, 30, 50};
  EXPECT_GT(PopulationStabilityIndex(a, b).value(), 1.0);
}

TEST(PsiTest, HandlesEmptyBinsViaSmoothing) {
  std::vector<double> a = {100, 0, 0};
  std::vector<double> b = {0, 0, 100};
  auto psi = PopulationStabilityIndex(a, b);
  ASSERT_TRUE(psi.ok());
  EXPECT_TRUE(std::isfinite(*psi));
  EXPECT_GT(*psi, 1.0);
}

TEST(PsiTest, Validation) {
  EXPECT_FALSE(PopulationStabilityIndex({1, 2}, {1}).ok());
  EXPECT_FALSE(PopulationStabilityIndex({}, {}).ok());
  EXPECT_FALSE(PopulationStabilityIndex({-1, 2}, {1, 2}).ok());
  EXPECT_FALSE(PopulationStabilityIndex({0, 0}, {1, 2}).ok());
}

TEST(JsTest, BoundsAndSymmetry) {
  std::vector<double> p = {0.5, 0.5, 0.0};
  std::vector<double> q = {0.0, 0.5, 0.5};
  double js_pq = JensenShannonDivergence(p, q).value();
  double js_qp = JensenShannonDivergence(q, p).value();
  EXPECT_DOUBLE_EQ(js_pq, js_qp);
  EXPECT_GT(js_pq, 0.0);
  EXPECT_LE(js_pq, 1.0);
  EXPECT_NEAR(JensenShannonDivergence(p, p).value(), 0.0, 1e-12);
  // Disjoint supports: JS = 1 bit.
  EXPECT_NEAR(
      JensenShannonDivergence({1, 0}, {0, 1}).value(), 1.0, 1e-12);
}

TEST(ChiSquareTest, IdenticalIsZero) {
  std::vector<double> counts = {30, 40, 30};
  EXPECT_NEAR(ChiSquareStatistic(counts, counts).value(), 0.0, 1e-12);
}

TEST(ChiSquareTest, ScalesExpectedToActualTotal) {
  // Expected proportions 50/50 scaled to 200 actual: chi2 = 2*(50²/100)=50.
  EXPECT_NEAR(ChiSquareStatistic({50, 50}, {150, 50}).value(), 50.0, 1e-9);
}

TEST(BinningTest, BinCountsClampToEdges) {
  auto counts = BinCounts({-10, 0.5, 1.5, 2.5, 99}, 0, 3, 3);
  EXPECT_EQ(counts, (std::vector<double>{2, 1, 2}));
}

TEST(BinningTest, QuantileEdgesMonotone) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.Gaussian());
  auto edges = QuantileBinEdges(xs, 10).value();
  ASSERT_EQ(edges.size(), 11u);
  for (size_t i = 1; i < edges.size(); ++i) EXPECT_LE(edges[i - 1], edges[i]);
  // Roughly equal mass per bin.
  auto counts = BinByEdges(xs, edges);
  for (double c : counts) EXPECT_NEAR(c, 100.0, 35.0);
}

TEST(DriftDetectorTest, NoFalseAlarmOnSameDistribution) {
  Rng rng(11);
  auto detector =
      DriftDetector::Fit(GaussianSample(&rng, 5000, 0, 1)).value();
  int alarms = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto report = detector.Check(GaussianSample(&rng, 1000, 0, 1)).value();
    alarms += report.drifted;
  }
  // With ks p<0.01 threshold we expect ~0-1 false alarms in 20 trials.
  EXPECT_LE(alarms, 2);
}

TEST(DriftDetectorTest, DetectsMeanShift) {
  Rng rng(12);
  auto detector =
      DriftDetector::Fit(GaussianSample(&rng, 5000, 0, 1)).value();
  auto report = detector.Check(GaussianSample(&rng, 1000, 1.0, 1)).value();
  EXPECT_TRUE(report.drifted) << report.ToString();
  EXPECT_GT(report.psi, 0.25);
  EXPECT_LT(report.ks_pvalue, 0.01);
}

TEST(DriftDetectorTest, DetectsVarianceShift) {
  Rng rng(13);
  auto detector =
      DriftDetector::Fit(GaussianSample(&rng, 5000, 0, 1)).value();
  auto report = detector.Check(GaussianSample(&rng, 1000, 0, 3)).value();
  EXPECT_TRUE(report.drifted) << report.ToString();
}

TEST(DriftDetectorTest, SeverityMonotoneInShift) {
  Rng rng(14);
  auto detector =
      DriftDetector::Fit(GaussianSample(&rng, 5000, 0, 1)).value();
  double last_psi = -1;
  for (double shift : {0.0, 0.5, 1.0, 2.0}) {
    auto report =
        detector.Check(GaussianSample(&rng, 2000, shift, 1)).value();
    EXPECT_GT(report.psi, last_psi) << "shift=" << shift;
    last_psi = report.psi;
  }
}

TEST(DriftDetectorTest, Validation) {
  EXPECT_FALSE(DriftDetector::Fit({1, 2, 3}).ok());  // Too few.
  std::vector<double> ref(100, 0.0);
  for (size_t i = 0; i < ref.size(); ++i) ref[i] = static_cast<double>(i);
  EXPECT_FALSE(DriftDetector::Fit(ref, 1).ok());  // Too few bins.
  auto detector = DriftDetector::Fit(ref).value();
  EXPECT_FALSE(detector.Check({}).ok());
}

}  // namespace
}  // namespace mlfs
