#include <gtest/gtest.h>

#include <atomic>

#include "common/histogram.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "common/timestamp.h"

namespace mlfs {
namespace {

TEST(TimestampTest, UnitConversions) {
  EXPECT_EQ(Seconds(1), 1000000);
  EXPECT_EQ(Minutes(1), 60 * Seconds(1));
  EXPECT_EQ(Hours(1), 60 * Minutes(1));
  EXPECT_EQ(Days(1), 24 * Hours(1));
}

TEST(TimestampTest, Format) {
  EXPECT_EQ(FormatTimestamp(0), "d0 00:00:00.000");
  EXPECT_EQ(FormatTimestamp(Days(2) + Hours(3) + Minutes(4) + Seconds(5) +
                            6 * kMicrosPerMilli),
            "d2 03:04:05.006");
  EXPECT_EQ(FormatTimestamp(kMinTimestamp), "-inf");
  EXPECT_EQ(FormatTimestamp(kMaxTimestamp), "+inf");
}

TEST(SimClockTest, MonotoneAdvance) {
  SimClock clock(Hours(1));
  EXPECT_EQ(clock.now(), Hours(1));
  clock.Advance(Minutes(30));
  EXPECT_EQ(clock.now(), Hours(1) + Minutes(30));
  clock.AdvanceTo(Hours(1));  // In the past: no-op.
  EXPECT_EQ(clock.now(), Hours(1) + Minutes(30));
  clock.AdvanceTo(Hours(2));
  EXPECT_EQ(clock.now(), Hours(2));
  clock.Advance(-5);  // Negative: no-op.
  EXPECT_EQ(clock.now(), Hours(2));
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.Percentile(50), 50, 3);
  EXPECT_NEAR(h.Percentile(95), 95, 5);
  EXPECT_NEAR(h.Percentile(100), 100, 0.01);
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Record(123.0);
  // All mass at one value: every percentile must be near it.
  EXPECT_NEAR(h.Percentile(1), 123.0, 123.0 * 0.05);
  EXPECT_NEAR(h.Percentile(99), 123.0, 123.0 * 0.05);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 100.0);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_NEAR(a.sum(), 103.0, 1e-9);
}

TEST(HistogramTest, MergeWithEmptyOnEitherSide) {
  Histogram a, empty;
  a.Record(7.0);
  a.Merge(empty);  // Merging an empty histogram changes nothing.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7.0);
  EXPECT_EQ(a.max(), 7.0);
  Histogram into_empty;
  into_empty.Merge(a);  // Merging into empty copies min/max/mass.
  EXPECT_EQ(into_empty.count(), 1u);
  EXPECT_EQ(into_empty.min(), 7.0);
  EXPECT_EQ(into_empty.max(), 7.0);
}

// The striped-metrics use case: recording N samples across K histograms
// then merging must be distribution-equivalent to recording all N into one.
TEST(HistogramTest, MergedStripesMatchSingleHistogram) {
  Histogram single;
  Histogram stripes[4];
  for (int i = 1; i <= 1000; ++i) {
    single.Record(static_cast<double>(i));
    stripes[i % 4].Record(static_cast<double>(i));
  }
  Histogram merged;
  for (const Histogram& s : stripes) merged.Merge(s);
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.min(), single.min());
  EXPECT_EQ(merged.max(), single.max());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-9);
  for (double p : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_NEAR(merged.Percentile(p), single.Percentile(p), 1e-9) << p;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(StringUtilTest, JoinLowerStrip) {
  EXPECT_EQ(StrJoin({"x", "y"}, "::"), "x::y");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(ToLower("AbC_9"), "abc_9");
  EXPECT_EQ(StripWhitespace("  hi\t\n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("feature_x", "feature"));
  EXPECT_FALSE(StartsWith("fe", "feature"));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineWithoutPool) {
  int sum = 0;
  ParallelFor(nullptr, 5, 10, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

}  // namespace
}  // namespace mlfs
