#include "quality/feature_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quality/outlier.h"
#include "quality/skew.h"

namespace mlfs {
namespace {

SchemaPtr StatsSchema() {
  return Schema::Create({{"id", FeatureType::kInt64, false},
                         {"x", FeatureType::kDouble, true},
                         {"cat", FeatureType::kString, true}})
      .value();
}

Row MakeRow(const SchemaPtr& schema, int64_t id, Value x, Value cat) {
  return Row::Create(schema, {Value::Int64(id), std::move(x), std::move(cat)})
      .value();
}

TEST(ColumnStatsTest, CountsNullsAndMoments) {
  auto schema = StatsSchema();
  std::vector<Row> rows;
  rows.push_back(MakeRow(schema, 1, Value::Double(1.0), Value::String("a")));
  rows.push_back(MakeRow(schema, 2, Value::Double(3.0), Value::String("b")));
  rows.push_back(MakeRow(schema, 3, Value::Null(), Value::String("a")));

  auto stats = ComputeColumnStats(rows, "x").value();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_NEAR(stats.null_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.distinct_count, 2u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 3.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);

  auto cat_stats = ComputeColumnStats(rows, "cat").value();
  EXPECT_EQ(cat_stats.distinct_count, 2u);
  EXPECT_EQ(cat_stats.null_count, 0u);
  EXPECT_EQ(cat_stats.mean, 0.0);  // Non-numeric.

  EXPECT_TRUE(ComputeColumnStats(rows, "nope").status().IsNotFound());
  EXPECT_EQ(ComputeColumnStats({}, "x").value().count, 0u);
}

TEST(ColumnStatsTest, AllColumns) {
  auto schema = StatsSchema();
  std::vector<Row> rows = {
      MakeRow(schema, 1, Value::Double(1.0), Value::Null())};
  auto all = ComputeAllColumnStats(rows).value();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].column, "id");
  EXPECT_EQ(all[2].null_count, 1u);
  EXPECT_FALSE(all[0].ToString().empty());
}

TEST(FreshnessTest, MeasuresAgeAndMissing) {
  OnlineStore store;
  auto schema = Schema::Create({{"v", FeatureType::kInt64, true}}).value();
  ASSERT_TRUE(store.CreateView("f", schema).ok());
  Row row = Row::Create(schema, {Value::Int64(1)}).value();
  ASSERT_TRUE(store.Put("f", Value::Int64(1), row, Hours(1), Hours(1)).ok());
  ASSERT_TRUE(store.Put("f", Value::Int64(2), row, Hours(3), Hours(3)).ok());

  auto report = ComputeFreshness(
      store, "f", {Value::Int64(1), Value::Int64(2), Value::Int64(3)},
      Hours(4));
  EXPECT_EQ(report.missing, 1u);
  EXPECT_EQ(report.age.count(), 2u);
  // Ages: 3h and 1h in seconds.
  EXPECT_NEAR(report.age.max(), 3 * 3600.0, 1.0);
  EXPECT_NEAR(report.age.min(), 3600.0, 1.0);
}

TEST(MutualInformationTest, IndependentNearZeroDependentHigh) {
  auto schema = Schema::Create({{"x", FeatureType::kDouble, true},
                                {"y", FeatureType::kDouble, true},
                                {"z", FeatureType::kDouble, true}})
                    .value();
  Rng rng(21);
  std::vector<Row> rows;
  for (int i = 0; i < 3000; ++i) {
    double x = rng.Gaussian();
    double y = rng.Gaussian();     // Independent of x.
    double z = x + 0.01 * rng.Gaussian();  // Nearly a copy of x.
    rows.push_back(Row::Create(schema, {Value::Double(x), Value::Double(y),
                                        Value::Double(z)})
                       .value());
  }
  double mi_xy = MutualInformation(rows, "x", "y").value();
  double mi_xz = MutualInformation(rows, "x", "z").value();
  EXPECT_LT(mi_xy, 0.15);
  EXPECT_GT(mi_xz, 1.5);
  EXPECT_GT(mi_xz, 10 * mi_xy);
}

TEST(MutualInformationTest, CategoricalDependence) {
  auto schema = Schema::Create({{"cat", FeatureType::kString, true},
                                {"val", FeatureType::kDouble, true}})
                    .value();
  Rng rng(22);
  std::vector<Row> rows;
  for (int i = 0; i < 2000; ++i) {
    bool heads = rng.Bernoulli(0.5);
    // val is strongly determined by cat.
    double val = heads ? rng.Gaussian(10, 0.5) : rng.Gaussian(-10, 0.5);
    rows.push_back(Row::Create(schema,
                               {Value::String(heads ? "h" : "t"),
                                Value::Double(val)})
                       .value());
  }
  EXPECT_GT(MutualInformation(rows, "cat", "val").value(), 0.9);
}

TEST(MutualInformationTest, NullsDroppedPairwise) {
  auto schema = Schema::Create({{"x", FeatureType::kDouble, true},
                                {"y", FeatureType::kDouble, true}})
                    .value();
  std::vector<Row> rows;
  rows.push_back(
      Row::Create(schema, {Value::Null(), Value::Double(1)}).value());
  rows.push_back(
      Row::Create(schema, {Value::Double(1), Value::Null()}).value());
  EXPECT_DOUBLE_EQ(MutualInformation(rows, "x", "y").value(), 0.0);
  EXPECT_FALSE(MutualInformation(rows, "x", "nope").ok());
}

TEST(EntropyTest, UniformCategoriesMaxEntropy) {
  auto schema = Schema::Create({{"c", FeatureType::kString, true}}).value();
  std::vector<Row> rows;
  for (int i = 0; i < 400; ++i) {
    rows.push_back(Row::Create(schema,
                               {Value::String(std::to_string(i % 4))})
                       .value());
  }
  EXPECT_NEAR(ColumnEntropy(rows, "c").value(), 2.0, 1e-9);  // log2(4).
  // Constant column: zero entropy.
  std::vector<Row> constant;
  for (int i = 0; i < 10; ++i) {
    constant.push_back(Row::Create(schema, {Value::String("k")}).value());
  }
  EXPECT_NEAR(ColumnEntropy(constant, "c").value(), 0.0, 1e-12);
}

TEST(OutlierTest, FlagsFarPoints) {
  Rng rng(30);
  std::vector<double> ref;
  for (int i = 0; i < 1000; ++i) ref.push_back(rng.Gaussian(50, 5));
  auto detector = RobustOutlierDetector::Fit(ref).value();
  EXPECT_NEAR(detector.median(), 50, 1.0);
  EXPECT_FALSE(detector.IsOutlier(52));
  EXPECT_TRUE(detector.IsOutlier(100));
  EXPECT_TRUE(detector.IsOutlier(0));
  EXPECT_LT(detector.OutlierRate(ref), 0.01);
}

TEST(OutlierTest, ConstantReference) {
  auto detector = RobustOutlierDetector::Fit({5, 5, 5, 5}).value();
  EXPECT_EQ(detector.Score(5), 0.0);
  EXPECT_TRUE(detector.IsOutlier(5.1));
}

TEST(OutlierTest, Validation) {
  EXPECT_FALSE(RobustOutlierDetector::Fit({1, 2}).ok());
  EXPECT_FALSE(RobustOutlierDetector::Fit({1, 2, 3}, -1).ok());
}

TEST(SkewTest, DetectsServingShiftAndNullDelta) {
  auto schema = Schema::Create({{"f", FeatureType::kDouble, true}}).value();
  Rng rng(44);
  std::vector<Row> training, serving_ok, serving_shifted, serving_nully;
  for (int i = 0; i < 2000; ++i) {
    training.push_back(
        Row::Create(schema, {Value::Double(rng.Gaussian(0, 1))}).value());
    serving_ok.push_back(
        Row::Create(schema, {Value::Double(rng.Gaussian(0, 1))}).value());
    serving_shifted.push_back(
        Row::Create(schema, {Value::Double(rng.Gaussian(2, 1))}).value());
    serving_nully.push_back(
        Row::Create(schema, {rng.Bernoulli(0.3)
                                 ? Value::Null()
                                 : Value::Double(rng.Gaussian(0, 1))})
            .value());
  }
  EXPECT_FALSE(ComputeSkew(training, serving_ok, "f")->skewed);
  auto shifted = ComputeSkew(training, serving_shifted, "f").value();
  EXPECT_TRUE(shifted.skewed);
  EXPECT_TRUE(shifted.drift.drifted);
  auto nully = ComputeSkew(training, serving_nully, "f").value();
  EXPECT_TRUE(nully.skewed);
  EXPECT_GT(nully.null_fraction_delta, 0.2);
  EXPECT_FALSE(nully.ToString().empty());
}

}  // namespace
}  // namespace mlfs
