#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/online_store.h"
#include "storage/persistence.h"

namespace mlfs {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    FailpointRegistry::Instance().Reseed(42);
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedEvaluatesToOk) {
  auto& registry = FailpointRegistry::Instance();
  EXPECT_FALSE(registry.AnyArmed());
  EXPECT_FALSE(registry.IsArmed("never.armed"));
  EXPECT_TRUE(registry.Evaluate("never.armed").ok());
}

TEST_F(FailpointTest, AlwaysOnInjectsConfiguredStatus) {
  auto& registry = FailpointRegistry::Instance();
  FailpointConfig config;
  config.status = Status::ResourceExhausted("shard overloaded");
  registry.Arm("test.point", config);
  EXPECT_TRUE(registry.AnyArmed());
  EXPECT_TRUE(registry.IsArmed("test.point"));
  Status s = registry.Evaluate("test.point");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "shard overloaded");
  registry.Disarm("test.point");
  EXPECT_FALSE(registry.AnyArmed());
  EXPECT_TRUE(registry.Evaluate("test.point").ok());
  // Counters survive disarm.
  EXPECT_EQ(registry.stats("test.point").evaluations, 1u);
  EXPECT_EQ(registry.stats("test.point").fires, 1u);
}

TEST_F(FailpointTest, EveryNthFiresPeriodically) {
  auto& registry = FailpointRegistry::Instance();
  FailpointConfig config;
  config.every_nth = 3;
  registry.Arm("test.nth", config);
  int fires = 0;
  for (int i = 0; i < 9; ++i) {
    if (!registry.Evaluate("test.nth").ok()) ++fires;
  }
  EXPECT_EQ(fires, 3);  // Evaluations 1, 4, 7.
  EXPECT_EQ(registry.stats("test.nth").evaluations, 9u);
}

TEST_F(FailpointTest, SkipFirstDelaysEligibility) {
  auto& registry = FailpointRegistry::Instance();
  FailpointConfig config;
  config.skip_first = 5;
  registry.Arm("test.skip", config);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(registry.Evaluate("test.skip").ok());
  }
  EXPECT_FALSE(registry.Evaluate("test.skip").ok());
}

TEST_F(FailpointTest, MaxFiresSelfDisarms) {
  auto& registry = FailpointRegistry::Instance();
  FailpointConfig config;
  config.max_fires = 2;
  registry.Arm("test.limited", config);
  EXPECT_FALSE(registry.Evaluate("test.limited").ok());
  EXPECT_FALSE(registry.Evaluate("test.limited").ok());
  EXPECT_FALSE(registry.IsArmed("test.limited"));
  EXPECT_TRUE(registry.Evaluate("test.limited").ok());
  EXPECT_EQ(registry.stats("test.limited").fires, 2u);
}

TEST_F(FailpointTest, ProbabilisticFiresAreSeedDeterministic) {
  auto& registry = FailpointRegistry::Instance();
  auto run = [&registry]() {
    registry.Reseed(1234);
    FailpointConfig config;
    config.probability = 0.3;
    registry.Arm("test.prob", config);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!registry.Evaluate("test.prob").ok());
    }
    registry.Disarm("test.prob");
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  size_t fires = 0;
  for (bool f : first) fires += f;
  EXPECT_GT(fires, 30u);  // ~60 expected at p=0.3.
  EXPECT_LT(fires, 100u);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  auto& registry = FailpointRegistry::Instance();
  {
    ScopedFailpoint fp("test.scoped", FailpointConfig{});
    EXPECT_TRUE(registry.IsArmed("test.scoped"));
    EXPECT_FALSE(registry.Evaluate("test.scoped").ok());
    EXPECT_EQ(fp.stats().fires, 1u);
  }
  EXPECT_FALSE(registry.IsArmed("test.scoped"));
  EXPECT_TRUE(registry.Evaluate("test.scoped").ok());
}

TEST_F(FailpointTest, RearmResetsCounters) {
  auto& registry = FailpointRegistry::Instance();
  registry.Arm("test.rearm", FailpointConfig{});
  (void)registry.Evaluate("test.rearm");
  EXPECT_EQ(registry.stats("test.rearm").fires, 1u);
  registry.Arm("test.rearm", FailpointConfig{});
  EXPECT_EQ(registry.stats("test.rearm").fires, 0u);
}

TEST_F(FailpointTest, OnlineStorePutAndGetHonorFailpoints) {
  OnlineStore store;
  SchemaPtr schema =
      Schema::Create({{"x", FeatureType::kInt64, true}}).value();
  ASSERT_TRUE(store.CreateView("v", schema).ok());
  Row row = Row::Create(schema, {Value::Int64(7)}).value();

  {
    FailpointConfig config;
    config.status = Status::Internal("injected put fault");
    ScopedFailpoint fp("online_store.put", config);
    Status s = store.Put("v", Value::Int64(1), row, 1, 1);
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    // The injected failure must not advance traffic counters.
    EXPECT_EQ(store.stats().puts, 0u);
  }
  ASSERT_TRUE(store.Put("v", Value::Int64(1), row, 1, 1).ok());
  {
    FailpointConfig config;
    config.status = Status::Internal("injected get fault");
    ScopedFailpoint fp("online_store.get", config);
    EXPECT_EQ(store.Get("v", Value::Int64(1), 2).status().code(),
              StatusCode::kInternal);
    EXPECT_EQ(store.stats().gets, 0u);
  }
  EXPECT_TRUE(store.Get("v", Value::Int64(1), 2).ok());
  auto s = store.stats();
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.hits + s.misses, s.gets);
}

// Regression for the shard-grouped MultiGet: the "online_store.get"
// failpoint must be evaluated exactly once per key (not once per shard
// group), injected entries must not advance traffic counters, and the
// hits + misses == gets invariant must hold for the keys actually served.
TEST_F(FailpointTest, MultiGetEvaluatesFailpointOncePerKey) {
  OnlineStore store;
  SchemaPtr schema =
      Schema::Create({{"x", FeatureType::kInt64, true}}).value();
  ASSERT_TRUE(store.CreateView("v", schema).ok());
  Row row = Row::Create(schema, {Value::Int64(7)}).value();
  for (int64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(store.Put("v", Value::Int64(k), row, 1, 1).ok());
  }

  FailpointConfig config;
  config.status = Status::Internal("injected get fault");
  config.every_nth = 2;  // Fires on evaluations 1, 3, 5, ...
  ScopedFailpoint fp("online_store.get", config);
  auto got = store.MultiGet(
      "v",
      {Value::Int64(0), Value::Int64(1), Value::Int64(2), Value::Int64(3)},
      2);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(fp.stats().evaluations, 4u);  // One per key, not per shard.
  EXPECT_EQ(fp.stats().fires, 2u);
  EXPECT_EQ(got[0].status().code(), StatusCode::kInternal);
  EXPECT_TRUE(got[1].ok());
  EXPECT_EQ(got[2].status().code(), StatusCode::kInternal);
  EXPECT_TRUE(got[3].ok());
  // Injected keys advance no counters; served keys keep the invariant.
  auto s = store.stats();
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.hits + s.misses, s.gets);
}

TEST_F(FailpointTest, PersistenceWriteFailpointBlocksCheckpoint) {
  OnlineStore store;
  FailpointConfig config;
  config.status = Status::Internal("disk full");
  ScopedFailpoint fp("persistence.write", config);
  Status s = CheckpointOnlineStore(store, "/tmp/mlfs_failpoint_test_ckpt");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST_F(FailpointTest, ConcurrentEvaluationsAreCounted) {
  auto& registry = FailpointRegistry::Instance();
  FailpointConfig config;
  config.probability = 0.5;
  registry.Arm("test.concurrent", config);
  constexpr int kThreads = 8;
  constexpr int kEvalsPerThread = 1000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> observed_fires{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &observed_fires] {
      for (int i = 0; i < kEvalsPerThread; ++i) {
        if (!registry.Evaluate("test.concurrent").ok()) {
          observed_fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto stats = registry.stats("test.concurrent");
  EXPECT_EQ(stats.evaluations,
            static_cast<uint64_t>(kThreads) * kEvalsPerThread);
  EXPECT_EQ(stats.fires, observed_fires.load());
  EXPECT_GT(stats.fires, 0u);
  EXPECT_LT(stats.fires, stats.evaluations);
}

}  // namespace
}  // namespace mlfs
