#include "monitoring/patcher.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embedding/embedding_drift.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace mlfs {
namespace {

// A world where a subpopulation of entities ("slice") got bad embeddings:
// their vectors sit near the wrong class region.
struct BrokenWorld {
  EmbeddingTablePtr table;
  DownstreamTask task;
  std::unordered_set<std::string> slice;
};

BrokenWorld MakeBrokenWorld(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> center_a(dim), center_b(dim);
  for (size_t j = 0; j < dim; ++j) {
    center_a[j] = static_cast<float>(rng.Gaussian(0, 3));
    center_b[j] = static_cast<float>(rng.Gaussian(0, 3));
  }
  BrokenWorld world;
  std::vector<std::string> keys;
  std::vector<float> data;
  for (size_t i = 0; i < n; ++i) {
    std::string key = "e" + std::to_string(i);
    keys.push_back(key);
    int label = static_cast<int>(i % 2);
    bool broken = (label == 1) && (i % 10 < 3);  // 30% of class 1 broken.
    const auto& center = (label == 0) ? center_a
                          : broken ? center_a  // Wrong side of the space.
                                   : center_b;
    for (size_t j = 0; j < dim; ++j) {
      data.push_back(center[j] + static_cast<float>(rng.Gaussian(0, 0.4)));
    }
    world.task.keys.push_back(key);
    world.task.labels.push_back(label);
    if (broken) world.slice.insert(key);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "world";
  metadata.version = 1;
  world.table = EmbeddingTable::Create(metadata, keys, data, dim).value();
  return world;
}

TEST(OversampleWeightsTest, WeightsSliceOnly) {
  DownstreamTask task;
  task.keys = {"a", "b", "c"};
  task.labels = {0, 1, 0};
  auto weights = OversampleWeights(task, {"b"}, 5.0).value();
  EXPECT_EQ(weights, (std::vector<double>{1.0, 5.0, 1.0}));
  EXPECT_FALSE(OversampleWeights(task, {"b"}, 0.5).ok());
}

TEST(PatchEmbeddingTest, Validation) {
  auto world = MakeBrokenWorld(100, 8, 1);
  EXPECT_FALSE(PatchEmbedding(*world.table, world.task, world.slice,
                              {.alpha = 2.0}).ok());
  EXPECT_FALSE(PatchEmbedding(*world.table, world.task, {"missing"}, {}).ok());
  DownstreamTask misaligned;
  misaligned.keys = {"a"};
  EXPECT_FALSE(PatchEmbedding(*world.table, misaligned, world.slice, {}).ok());
}

TEST(PatchEmbeddingTest, OnlySliceVectorsChange) {
  auto world = MakeBrokenWorld(200, 8, 2);
  auto patched = PatchEmbedding(*world.table, world.task, world.slice).value();
  EXPECT_EQ(patched->metadata().parent, "world@v1");
  for (size_t i = 0; i < world.table->size(); ++i) {
    const std::string& key = world.table->key(i);
    bool changed = false;
    for (size_t j = 0; j < world.table->dim(); ++j) {
      changed |= world.table->row(i)[j] != patched->row(i)[j];
    }
    if (world.slice.count(key)) {
      EXPECT_TRUE(changed) << key;
    } else {
      EXPECT_FALSE(changed) << key;
    }
  }
}

TEST(PatchEmbeddingTest, PatchFixesSliceWithoutHurtingRest) {
  auto world = MakeBrokenWorld(600, 8, 3);
  auto patched = PatchEmbedding(*world.table, world.task, world.slice,
                                {.alpha = 0.8, .repel = 0.1})
                     .value();
  auto eval =
      EvaluatePatch(*world.table, *patched, world.task, world.slice).value();
  EXPECT_LT(eval.slice_accuracy_before, 0.4);  // Broken slice misclassified.
  EXPECT_GT(eval.slice_accuracy_after, 0.8);   // Patched.
  EXPECT_GT(eval.rest_accuracy_before, 0.9);
  EXPECT_GT(eval.rest_accuracy_after, 0.9);    // Rest unharmed.
}

TEST(PatchEmbeddingTest, PatchHelpsEveryDownstreamConsumer) {
  // The paper's §3.1.3 point: fixing the embedding fixes *all* consumers.
  auto world = MakeBrokenWorld(600, 8, 4);
  auto patched = PatchEmbedding(*world.table, world.task, world.slice,
                                {.alpha = 0.8, .repel = 0.1})
                     .value();

  auto slice_accuracy = [&](const EmbeddingTable& table, auto& model) {
    Dataset data = MaterializeTask(world.task, table).value();
    EXPECT_TRUE(model.Fit(data).ok());
    auto preds = model.PredictBatch(data).value();
    size_t n = 0, correct = 0;
    for (size_t i = 0; i < world.task.keys.size(); ++i) {
      if (!world.slice.count(world.task.keys[i])) continue;
      ++n;
      correct += preds[i] == world.task.labels[i];
    }
    return static_cast<double>(correct) / static_cast<double>(n);
  };

  // Consumer 1: linear model. Consumer 2: MLP.
  SoftmaxClassifier linear_before, linear_after;
  MlpClassifier mlp_before(16), mlp_after(16);
  double linear_gain = slice_accuracy(*patched, linear_after) -
                       slice_accuracy(*world.table, linear_before);
  double mlp_gain = slice_accuracy(*patched, mlp_after) -
                    slice_accuracy(*world.table, mlp_before);
  EXPECT_GT(linear_gain, 0.3);
  EXPECT_GT(mlp_gain, 0.2);
}

TEST(PatchEmbeddingTest, OversamplingAloneCannotFixBrokenGeometry) {
  // The slice vectors sit in the wrong region: upweighting them trades off
  // against the healthy class-0 examples living in the same region, so the
  // model-level patch is far less effective than the embedding-level one.
  auto world = MakeBrokenWorld(600, 8, 5);
  Dataset data = MaterializeTask(world.task, *world.table).value();

  TrainConfig weighted;
  weighted.example_weights =
      OversampleWeights(world.task, world.slice, 8.0).value();
  SoftmaxClassifier oversampled;
  ASSERT_TRUE(oversampled.Fit(data, weighted).ok());
  auto preds = oversampled.PredictBatch(data).value();
  size_t slice_n = 0, slice_correct = 0, rest_n = 0, rest_correct = 0;
  for (size_t i = 0; i < world.task.keys.size(); ++i) {
    bool in_slice = world.slice.count(world.task.keys[i]) > 0;
    bool correct = preds[i] == world.task.labels[i];
    (in_slice ? slice_n : rest_n) += 1;
    (in_slice ? slice_correct : rest_correct) += correct;
  }
  double slice_acc = static_cast<double>(slice_correct) / slice_n;
  double rest_acc = static_cast<double>(rest_correct) / rest_n;

  auto patched = PatchEmbedding(*world.table, world.task, world.slice,
                                {.alpha = 0.8, .repel = 0.1})
                     .value();
  auto eval =
      EvaluatePatch(*world.table, *patched, world.task, world.slice).value();
  // Embedding patch dominates: better on the slice without wrecking rest.
  EXPECT_GT(eval.slice_accuracy_after + eval.rest_accuracy_after,
            slice_acc + rest_acc);
}

TEST(PatchEmbeddingTest, PatchProducesBoundedDrift) {
  // A patch is a *version change*; drift monitors should see a small,
  // localized change, not an alarm-level global rewrite.
  auto world = MakeBrokenWorld(400, 8, 6);
  auto patched = PatchEmbedding(*world.table, world.task, world.slice).value();
  auto report = CheckEmbeddingDrift(*world.table, *patched).value();
  EXPECT_EQ(report.null_or_nan_cells, 0u);
  // Most keys untouched: mean self-cosine stays high.
  EXPECT_GT(report.mean_self_cosine, 0.8);
}

}  // namespace
}  // namespace mlfs
