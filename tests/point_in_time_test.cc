#include "serving/point_in_time.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlfs {
namespace {

class PitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    feature_schema_ =
        Schema::Create({{"user_id", FeatureType::kInt64, false},
                        {"event_time", FeatureType::kTimestamp, false},
                        {"trips", FeatureType::kInt64, true},
                        {"rating", FeatureType::kDouble, true}})
            .value();
    OfflineTableOptions opt;
    opt.name = "user_stats";
    opt.schema = feature_schema_;
    opt.entity_column = "user_id";
    opt.time_column = "event_time";
    ASSERT_TRUE(store_.CreateTable(opt).ok());
    table_ = store_.GetTable("user_stats").value();

    spine_schema_ =
        Schema::Create({{"user_id", FeatureType::kInt64, false},
                        {"ts", FeatureType::kTimestamp, false},
                        {"label", FeatureType::kBool, false}})
            .value();
  }

  void AddFeature(int64_t user, Timestamp ts, int64_t trips, double rating) {
    ASSERT_TRUE(
        table_
            ->Append(Row::Create(feature_schema_,
                                 {Value::Int64(user), Value::Time(ts),
                                  Value::Int64(trips), Value::Double(rating)})
                         .value())
            .ok());
  }

  Row SpineRow(int64_t user, Timestamp ts, bool label) {
    return Row::Create(spine_schema_, {Value::Int64(user), Value::Time(ts),
                                       Value::Bool(label)})
        .value();
  }

  OfflineStore store_;
  OfflineTable* table_ = nullptr;
  SchemaPtr feature_schema_;
  SchemaPtr spine_schema_;
};

TEST_F(PitTest, JoinsLatestValueNotAfterSpineTime) {
  AddFeature(1, Hours(1), 10, 4.0);
  AddFeature(1, Hours(5), 20, 4.5);
  AddFeature(2, Hours(2), 5, 3.0);

  std::vector<Row> spine = {SpineRow(1, Hours(3), true),
                            SpineRow(1, Hours(6), false),
                            SpineRow(2, Hours(1), true)};
  auto ts = PointInTimeJoin(spine, "user_id", "ts", {{table_, {}, "", 0, {}}});
  ASSERT_TRUE(ts.ok()) << ts.status();
  ASSERT_EQ(ts->rows.size(), 3u);
  // Spine row at 3h sees the 1h snapshot (trips=10), not the 5h one.
  EXPECT_EQ(ts->rows[0].ValueByName("trips").value(), Value::Int64(10));
  EXPECT_EQ(ts->rows[1].ValueByName("trips").value(), Value::Int64(20));
  // User 2 at 1h: feature arrives at 2h -> NULL (no leakage).
  EXPECT_TRUE(ts->rows[2].ValueByName("trips").value().is_null());
  EXPECT_EQ(ts->missing_cells, 2u);  // trips + rating for user 2.
  // Spine columns preserved.
  EXPECT_EQ(ts->rows[0].ValueByName("label").value(), Value::Bool(true));
}

TEST_F(PitTest, NaiveJoinLeaksFutureValues) {
  AddFeature(1, Hours(1), 10, 4.0);
  AddFeature(1, Hours(5), 20, 4.5);

  std::vector<Row> spine = {SpineRow(1, Hours(3), true)};
  auto naive =
      NaiveLatestJoin(spine, "user_id", "ts", {{table_, {}, "", 0, {}}});
  ASSERT_TRUE(naive.ok());
  // Naive join sees the future 5h value at spine time 3h: leakage.
  EXPECT_EQ(naive->rows[0].ValueByName("trips").value(), Value::Int64(20));

  auto correct =
      PointInTimeJoin(spine, "user_id", "ts", {{table_, {}, "", 0, {}}});
  auto divergent = CountDivergentCells(*correct, *naive);
  ASSERT_TRUE(divergent.ok());
  EXPECT_EQ(*divergent, 2u);  // Both feature cells differ.
}

TEST_F(PitTest, MaxAgeExpiresStaleFeatures) {
  AddFeature(1, Hours(1), 10, 4.0);
  std::vector<Row> spine = {SpineRow(1, Hours(30), true)};
  // Feature is 29h old at spine time; max_age 24h rejects it.
  auto ts = PointInTimeJoin(spine, "user_id", "ts",
                            {{table_, {"trips"}, "", Hours(24), {}}});
  ASSERT_TRUE(ts.ok());
  EXPECT_TRUE(ts->rows[0].ValueByName("trips").value().is_null());
  // Without max_age it joins.
  ts = PointInTimeJoin(spine, "user_id", "ts", {{table_, {"trips"}, "", 0, {}}});
  EXPECT_EQ(ts->rows[0].ValueByName("trips").value(), Value::Int64(10));
}

TEST_F(PitTest, ColumnSelectionAndPrefix) {
  AddFeature(1, Hours(1), 10, 4.0);
  std::vector<Row> spine = {SpineRow(1, Hours(2), true)};
  auto ts = PointInTimeJoin(spine, "user_id", "ts",
                            {{table_, {"rating"}, "f__", 0, {}}});
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->schema->num_fields(), 4u);  // 3 spine + 1 feature.
  EXPECT_EQ(ts->rows[0].ValueByName("f__rating").value(),
            Value::Double(4.0));
  EXPECT_TRUE(ts->rows[0].ValueByName("rating").status().IsNotFound());
}

TEST_F(PitTest, MultipleSources) {
  AddFeature(1, Hours(1), 10, 4.0);
  // Second table with a different grain.
  auto schema2 = Schema::Create({{"user_id", FeatureType::kInt64, false},
                                 {"event_time", FeatureType::kTimestamp,
                                  false},
                                 {"score", FeatureType::kDouble, true}})
                     .value();
  OfflineTableOptions opt;
  opt.name = "scores";
  opt.schema = schema2;
  opt.entity_column = "user_id";
  opt.time_column = "event_time";
  ASSERT_TRUE(store_.CreateTable(opt).ok());
  auto scores = store_.GetTable("scores").value();
  ASSERT_TRUE(scores
                  ->Append(Row::Create(schema2, {Value::Int64(1),
                                                 Value::Time(Hours(2)),
                                                 Value::Double(0.9)})
                               .value())
                  .ok());

  std::vector<Row> spine = {SpineRow(1, Hours(3), true)};
  auto ts = PointInTimeJoin(
      spine, "user_id", "ts",
      {{table_, {"trips"}, "a__", 0, {}},
       {scores, {"score"}, "b__", 0, {}}});
  ASSERT_TRUE(ts.ok()) << ts.status();
  EXPECT_EQ(ts->rows[0].ValueByName("a__trips").value(), Value::Int64(10));
  EXPECT_EQ(ts->rows[0].ValueByName("b__score").value(), Value::Double(0.9));
}

TEST_F(PitTest, Validation) {
  EXPECT_FALSE(PointInTimeJoin({}, "user_id", "ts", {}).ok());
  std::vector<Row> spine = {SpineRow(1, Hours(1), true)};
  EXPECT_FALSE(PointInTimeJoin(spine, "nope", "ts", {}).ok());
  EXPECT_FALSE(PointInTimeJoin(spine, "user_id", "label", {}).ok());
  EXPECT_FALSE(
      PointInTimeJoin(spine, "user_id", "ts", {{nullptr, {}, "", 0, {}}}).ok());
  EXPECT_FALSE(PointInTimeJoin(spine, "user_id", "ts",
                               {{table_, {"nope"}, "", 0, {}}})
                   .ok());
  // Column collision between spine and unprefixed source columns.
  auto collide = PointInTimeJoin(
      spine, "user_id", "ts", {{table_, {"trips"}, "label", 0, {}}});
  EXPECT_TRUE(collide.ok());  // "labeltrips" is fine.
}

TEST_F(PitTest, RandomizedNoLeakageProperty) {
  Rng rng(55);
  for (int i = 0; i < 400; ++i) {
    AddFeature(static_cast<int64_t>(rng.Uniform(10)),
               static_cast<Timestamp>(rng.Uniform(Days(5))),
               static_cast<int64_t>(i), rng.UniformDouble(0, 5));
  }
  std::vector<Row> spine;
  for (int i = 0; i < 100; ++i) {
    spine.push_back(SpineRow(static_cast<int64_t>(rng.Uniform(10)),
                             static_cast<Timestamp>(rng.Uniform(Days(5))),
                             rng.Bernoulli(0.5)));
  }
  auto ts = PointInTimeJoin(spine, "user_id", "ts", {{table_, {}, "", 0, {}}});
  ASSERT_TRUE(ts.ok());
  // Property: every joined trips value must identify a source row whose
  // event time is <= the spine time (verified through the oracle AsOf).
  for (size_t r = 0; r < spine.size(); ++r) {
    Timestamp t = spine[r].ValueByName("ts").value().time_value();
    Value entity = spine[r].ValueByName("user_id").value();
    auto oracle = table_->AsOf(entity, t);
    const Value joined = ts->rows[r].ValueByName("trips").value();
    if (oracle.ok()) {
      EXPECT_EQ(joined, oracle->ValueByName("trips").value());
    } else {
      EXPECT_TRUE(joined.is_null());
    }
  }
}

TEST_F(PitTest, CountDivergentValidation) {
  AddFeature(1, Hours(1), 1, 1.0);
  std::vector<Row> spine = {SpineRow(1, Hours(2), true)};
  auto a = PointInTimeJoin(spine, "user_id", "ts", {{table_, {}, "", 0, {}}});
  std::vector<Row> spine2 = {SpineRow(1, Hours(2), true),
                             SpineRow(1, Hours(3), true)};
  auto b = PointInTimeJoin(spine2, "user_id", "ts", {{table_, {}, "", 0, {}}});
  EXPECT_FALSE(CountDivergentCells(*a, *b).ok());
  EXPECT_EQ(CountDivergentCells(*a, *a).value(), 0u);
}

}  // namespace
}  // namespace mlfs
