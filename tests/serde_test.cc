#include "common/serde.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlfs {
namespace {

TEST(SerdeTest, VarintRoundTrip) {
  const uint64_t cases[] = {0,    1,    127,        128,
                            300,  1u << 20, 1ull << 40, UINT64_MAX};
  for (uint64_t v : cases) {
    Encoder enc;
    enc.PutVarint64(v);
    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.GetVarint64().value(), v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(SerdeTest, FixedRoundTrip) {
  Encoder enc;
  enc.PutFixed32(0xdeadbeef);
  enc.PutFixed64(0x0123456789abcdefULL);
  enc.PutDouble(-3.25);
  enc.PutFloat(1.5f);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetFixed32().value(), 0xdeadbeefu);
  EXPECT_EQ(dec.GetFixed64().value(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(dec.GetDouble().value(), -3.25);
  EXPECT_FLOAT_EQ(dec.GetFloat().value(), 1.5f);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(SerdeTest, StringRoundTrip) {
  Encoder enc;
  enc.PutString("");
  enc.PutString("hello");
  std::string binary("\x00\x01\xff", 3);
  enc.PutString(binary);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetString().value(), "");
  EXPECT_EQ(dec.GetString().value(), "hello");
  EXPECT_EQ(dec.GetString().value(), binary);
}

class ValueRoundTripTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTripTest, RoundTrips) {
  Encoder enc;
  enc.PutValue(GetParam());
  Decoder dec(enc.buffer());
  auto got = dec.GetValue();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, GetParam());
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValueRoundTripTest,
    ::testing::Values(Value::Null(), Value::Bool(true), Value::Bool(false),
                      Value::Int64(0), Value::Int64(-123456789),
                      Value::Int64(INT64_MAX), Value::Double(0.0),
                      Value::Double(-1e300), Value::String(""),
                      Value::String("feature_store"), Value::Time(Days(400)),
                      Value::Embedding({}),
                      Value::Embedding({1.5f, -2.5f, 0.0f})));

TEST(SerdeTest, RowRoundTrip) {
  auto schema = Schema::Create({{"id", FeatureType::kInt64, false},
                                {"emb", FeatureType::kEmbedding, true},
                                {"note", FeatureType::kString, true}})
                    .value();
  auto row = Row::Create(schema, {Value::Int64(42),
                                  Value::Embedding({0.5f, 0.25f}),
                                  Value::Null()})
                 .value();
  Encoder enc;
  enc.PutRow(row);
  Decoder dec(enc.buffer());
  auto got = dec.GetRow(schema);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, row);
}

TEST(SerdeTest, TruncatedInputIsCorruption) {
  Encoder enc;
  enc.PutValue(Value::String("hello world"));
  std::string data = enc.buffer();
  for (size_t cut = 0; cut + 1 < data.size(); ++cut) {
    Decoder dec(std::string_view(data.data(), cut));
    auto got = dec.GetValue();
    EXPECT_FALSE(got.ok()) << "cut=" << cut;
    EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
  }
}

TEST(SerdeTest, BadTagIsCorruption) {
  std::string data = "\x63";  // Tag 99.
  Decoder dec(data);
  auto got = dec.GetValue();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(SerdeTest, FuzzRandomValuesRoundTrip) {
  Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    Value v;
    switch (rng.Uniform(6)) {
      case 0: v = Value::Null(); break;
      case 1: v = Value::Bool(rng.Bernoulli(0.5)); break;
      case 2: v = Value::Int64(static_cast<int64_t>(rng.Next())); break;
      case 3: v = Value::Double(rng.Gaussian(0, 1e6)); break;
      case 4: {
        std::string s;
        size_t len = rng.Uniform(50);
        for (size_t i = 0; i < len; ++i)
          s.push_back(static_cast<char>(rng.Uniform(256)));
        v = Value::String(std::move(s));
        break;
      }
      default: {
        std::vector<float> e(rng.Uniform(32));
        for (auto& f : e) f = static_cast<float>(rng.Gaussian());
        v = Value::Embedding(std::move(e));
        break;
      }
    }
    Encoder enc;
    enc.PutValue(v);
    Decoder dec(enc.buffer());
    auto got = dec.GetValue();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

}  // namespace
}  // namespace mlfs
