// Randomized property test: a random interleaving of feature publishes,
// embedding registrations, model registrations, deprecations, and drift
// events across all four lineage-recording components survives a 4-way
// snapshot/restore (LineageGraph + FeatureRegistry + EmbeddingStore +
// ModelRegistry) with every graph-derived answer intact. All randomness
// flows through fixed-seed Rng so failures reproduce exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "embedding/embedding_store.h"
#include "lineage/lineage_graph.h"
#include "modelstore/model_registry.h"
#include "registry/registry.h"
#include "storage/offline_store.h"

namespace mlfs {
namespace {

const char* kFeatureNames[] = {"f_a", "f_b", "f_c"};
const char* kEmbeddingNames[] = {"emb_x", "emb_y"};
const char* kModelNames[] = {"m_rank", "m_fraud", "m_eta"};

/// One shared graph plus the three silos that record into it.
struct World {
  OfflineStore offline;
  LineageGraph graph;
  FeatureRegistry registry{&offline, &graph};
  EmbeddingStore embeddings{&graph};
  ModelRegistry models{&graph};

  World() {
    OfflineTableOptions options;
    options.name = "src";
    options.schema = Schema::Create({{"e", FeatureType::kInt64, false},
                                     {"t", FeatureType::kTimestamp, false},
                                     {"a", FeatureType::kDouble, true},
                                     {"b", FeatureType::kDouble, true}})
                         .value();
    options.entity_column = "e";
    options.time_column = "t";
    MLFS_CHECK_OK(offline.CreateTable(options));
  }
};

EmbeddingTablePtr RandomTable(Rng* rng, const std::string& name,
                              const std::string& parent) {
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  metadata.parent = parent;
  if (rng->Bernoulli(0.3)) metadata.training_source = "corpus";
  std::vector<float> vectors = {static_cast<float>(rng->Gaussian()),
                                static_cast<float>(rng->Gaussian()),
                                static_cast<float>(rng->Gaussian()),
                                static_cast<float>(rng->Gaussian())};
  return EmbeddingTable::Create(metadata, {"k1", "k2"}, vectors, 2).value();
}

/// Applies `steps` random mutations; every op must succeed or be a
/// well-understood precondition failure (nothing published yet, ...).
void RandomMutations(World* world, Rng* rng, int steps) {
  Timestamp t = 0;
  for (int i = 0; i < steps; ++i) {
    t += Minutes(1);
    switch (rng->Uniform(6)) {
      case 0: {  // Publish a feature version.
        FeatureDefinition def;
        def.name = kFeatureNames[rng->Uniform(3)];
        def.entity = "user";
        def.source_table = "src";
        def.expression = rng->Bernoulli(0.5) ? "a * 2" : "a + b";
        def.cadence = Hours(1);
        ASSERT_TRUE(world->registry.Publish(def, t).ok());
        break;
      }
      case 1: {  // Register an embedding version (sometimes chained).
        const std::string name = kEmbeddingNames[rng->Uniform(2)];
        std::string parent;
        if (rng->Bernoulli(0.5) && world->embeddings.GetLatest(name).ok()) {
          parent = name;  // Unpinned ref, resolved to latest at register.
        }
        ASSERT_TRUE(world->embeddings
                        .Register(RandomTable(rng, name, parent), t).ok());
        break;
      }
      case 2: {  // Register a model pinning random refs.
        ModelRecord record;
        record.name = kModelNames[rng->Uniform(3)];
        record.task = "prop";
        int fv = 1 + static_cast<int>(rng->Uniform(3));
        record.feature_refs = {std::string(kFeatureNames[rng->Uniform(3)]) +
                               "@v" + std::to_string(fv)};
        std::string emb = kEmbeddingNames[rng->Uniform(2)];
        if (rng->Bernoulli(0.2)) {
          record.embedding_refs = {emb};  // Unpinned (dangling finding).
        } else {
          int ev = 1 + static_cast<int>(rng->Uniform(3));
          record.embedding_refs = {emb + "@v" + std::to_string(ev)};
        }
        ASSERT_TRUE(world->models.Register(std::move(record), t).ok());
        break;
      }
      case 3: {  // Deprecate a feature (if it exists).
        Status s = world->registry.Deprecate(kFeatureNames[rng->Uniform(3)],
                                             t);
        ASSERT_TRUE(s.ok() || s.IsNotFound()) << s;
        break;
      }
      case 4: {  // Deprecate an embedding (if it exists).
        Status s = world->embeddings.Deprecate(kEmbeddingNames[rng->Uniform(2)],
                                               t);
        ASSERT_TRUE(s.ok() || s.IsNotFound()) << s;
        break;
      }
      case 5: {  // A drift monitor fires on a random known version.
        auto versions = world->graph.VersionsOf(
            ArtifactKind::kEmbedding, kEmbeddingNames[rng->Uniform(2)]);
        if (!versions.empty()) {
          size_t pick = rng->Uniform(versions.size());
          ASSERT_TRUE(world->graph
                          .MarkStale(versions[pick], StalenessReason::kDrift,
                                     t, "psi high")
                          .ok());
        }
        break;
      }
    }
  }
}

/// Every artifact in the graph, via VersionsOf over the known name pools
/// plus the unversioned table/column/view nodes reachable from them.
std::vector<ArtifactId> SampleArtifacts(const LineageGraph& graph) {
  std::vector<ArtifactId> out;
  for (const char* name : kFeatureNames) {
    auto v = graph.VersionsOf(ArtifactKind::kFeature, name);
    out.insert(out.end(), v.begin(), v.end());
  }
  for (const char* name : kEmbeddingNames) {
    auto v = graph.VersionsOf(ArtifactKind::kEmbedding, name);
    out.insert(out.end(), v.begin(), v.end());
  }
  for (const char* name : kModelNames) {
    auto v = graph.VersionsOf(ArtifactKind::kModel, name);
    out.insert(out.end(), v.begin(), v.end());
  }
  out.push_back(TableArtifact("src"));
  out.push_back(ColumnArtifact("src", "a"));
  out.push_back(ColumnArtifact("src", "b"));
  return out;
}

void ExpectWorldsEqual(const World& original, const World& restored) {
  // Graph-level structure.
  EXPECT_EQ(restored.graph.num_artifacts(), original.graph.num_artifacts());
  EXPECT_EQ(restored.graph.num_edges(), original.graph.num_edges());
  // Silo restores re-record lineage idempotently: no duplicate events.
  ASSERT_EQ(restored.graph.num_events(), original.graph.num_events());
  auto original_events = original.graph.Events();
  auto restored_events = restored.graph.Events();
  for (size_t i = 0; i < original_events.size(); ++i) {
    EXPECT_EQ(restored_events[i].source, original_events[i].source);
    EXPECT_EQ(restored_events[i].reason, original_events[i].reason);
    EXPECT_EQ(restored_events[i].at, original_events[i].at);
    EXPECT_EQ(restored_events[i].impacted, original_events[i].impacted);
  }

  // Every graph-derived answer agrees on every artifact we can name.
  for (const ArtifactId& id : SampleArtifacts(original.graph)) {
    SCOPED_TRACE(id.ToString());
    EXPECT_EQ(restored.graph.HasArtifact(id), original.graph.HasArtifact(id));
    EXPECT_EQ(restored.graph.UpstreamClosure(id),
              original.graph.UpstreamClosure(id));
    EXPECT_EQ(restored.graph.ImpactSet(id), original.graph.ImpactSet(id));
    auto original_info = original.graph.StalenessOf(id);
    auto restored_info = restored.graph.StalenessOf(id);
    ASSERT_EQ(restored_info.has_value(), original_info.has_value());
    if (original_info.has_value()) {
      EXPECT_EQ(restored_info->ToString(), original_info->ToString());
      EXPECT_EQ(restored_info->at, original_info->at);
    }
  }

  // Cross-silo queries that read the graph.
  for (const char* column : {"a", "b"}) {
    EXPECT_EQ(restored.registry.FeaturesReadingColumn("src", column),
              original.registry.FeaturesReadingColumn("src", column));
  }
  for (const char* name : kEmbeddingNames) {
    if (original.embeddings.GetLatest(name).ok()) {
      EXPECT_EQ(restored.embeddings.Lineage(name).value(),
                original.embeddings.Lineage(name).value());
    }
    EXPECT_EQ(restored.models.ConsumersOfEmbedding(name),
              original.models.ConsumersOfEmbedding(name));
  }
  auto original_skew = original.models.CheckEmbeddingSkew(original.embeddings)
                           .value();
  auto restored_skew = restored.models.CheckEmbeddingSkew(restored.embeddings)
                           .value();
  ASSERT_EQ(restored_skew.skews.size(), original_skew.skews.size());
  for (size_t i = 0; i < original_skew.skews.size(); ++i) {
    EXPECT_EQ(restored_skew.skews[i].model, original_skew.skews[i].model);
    EXPECT_EQ(restored_skew.skews[i].embedding,
              original_skew.skews[i].embedding);
    EXPECT_EQ(restored_skew.skews[i].pinned_version,
              original_skew.skews[i].pinned_version);
  }
  ASSERT_EQ(restored_skew.dangling.size(), original_skew.dangling.size());
  for (size_t i = 0; i < original_skew.dangling.size(); ++i) {
    EXPECT_EQ(restored_skew.dangling[i].model,
              original_skew.dangling[i].model);
    EXPECT_EQ(restored_skew.dangling[i].ref, original_skew.dangling[i].ref);
  }
}

TEST(LineagePropertyTest, FourWaySnapshotRestoreRoundTrip) {
  for (uint64_t seed : {1ULL, 0xfeedULL, 0xdecafbadULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    World original;
    RandomMutations(&original, &rng, 120);
    if (::testing::Test::HasFatalFailure()) return;

    // The graph restores first (it never reaches into the silos); silo
    // restores then re-record their edges idempotently on top.
    World restored;
    ASSERT_TRUE(restored.graph.Restore(original.graph.Snapshot()).ok());
    ASSERT_TRUE(restored.registry.Restore(original.registry.Snapshot()).ok());
    ASSERT_TRUE(
        restored.embeddings.Restore(original.embeddings.Snapshot()).ok());
    ASSERT_TRUE(restored.models.Restore(original.models.Snapshot()).ok());

    ExpectWorldsEqual(original, restored);
  }
}

TEST(LineagePropertyTest, RestoreWithoutGraphSnapshotStillRebuildsEdges) {
  // Losing the graph snapshot (e.g. a pre-lineage checkpoint) degrades
  // gracefully: silo restores rebuild the full edge structure; only the
  // staleness annotations and the event log are gone.
  Rng rng(42);
  World original;
  RandomMutations(&original, &rng, 80);
  if (::testing::Test::HasFatalFailure()) return;

  World restored;
  ASSERT_TRUE(restored.registry.Restore(original.registry.Snapshot()).ok());
  ASSERT_TRUE(
      restored.embeddings.Restore(original.embeddings.Snapshot()).ok());
  ASSERT_TRUE(restored.models.Restore(original.models.Snapshot()).ok());

  EXPECT_EQ(restored.graph.num_artifacts(), original.graph.num_artifacts());
  EXPECT_EQ(restored.graph.num_edges(), original.graph.num_edges());
  EXPECT_EQ(restored.graph.num_events(), 0u);
  for (const ArtifactId& id : SampleArtifacts(original.graph)) {
    SCOPED_TRACE(id.ToString());
    EXPECT_EQ(restored.graph.UpstreamClosure(id),
              original.graph.UpstreamClosure(id));
    EXPECT_EQ(restored.graph.ImpactSet(id), original.graph.ImpactSet(id));
  }
}

}  // namespace
}  // namespace mlfs
