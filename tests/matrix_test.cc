#include "ml/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace mlfs {
namespace {

TEST(MatrixTest, BasicOps) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 2) = 2;
  m.at(1, 1) = 3;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 0), 2);
  EXPECT_EQ(t.at(1, 1), 3);

  Matrix id = Matrix::Identity(3);
  Matrix prod = m.Multiply(id);
  EXPECT_EQ(prod.MaxAbsDiff(m), 0.0);
  EXPECT_NEAR(m.FrobeniusNorm(), std::sqrt(1 + 4 + 9), 1e-12);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 3; a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5; b.at(0, 1) = 6;
  b.at(1, 0) = 7; b.at(1, 1) = 8;
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix m(3, 3);
  m.at(0, 0) = 1;
  m.at(1, 1) = 5;
  m.at(2, 2) = 3;
  auto eig = SymmetricEigen(m).value();
  EXPECT_NEAR(eig.values[0], 5, 1e-10);
  EXPECT_NEAR(eig.values[1], 3, 1e-10);
  EXPECT_NEAR(eig.values[2], 1, 1e-10);
  // Top eigenvector is e_1.
  EXPECT_NEAR(std::abs(eig.vectors.at(1, 0)), 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m.at(0, 0) = 2; m.at(0, 1) = 1;
  m.at(1, 0) = 1; m.at(1, 1) = 2;
  auto eig = SymmetricEigen(m).value();
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2).
  EXPECT_NEAR(std::abs(eig.vectors.at(0, 0)), 1 / std::sqrt(2), 1e-9);
  EXPECT_NEAR(std::abs(eig.vectors.at(1, 0)), 1 / std::sqrt(2), 1e-9);
}

TEST(EigenTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(9);
  const size_t n = 8;
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Gaussian();
      m.at(i, j) = v;
      m.at(j, i) = v;
    }
  }
  auto eig = SymmetricEigen(m).value();
  // Rebuild V diag(L) V^T.
  Matrix lam(n, n);
  for (size_t i = 0; i < n; ++i) lam.at(i, i) = eig.values[i];
  Matrix rebuilt =
      eig.vectors.Multiply(lam).Multiply(eig.vectors.Transpose());
  EXPECT_LT(rebuilt.MaxAbsDiff(m), 1e-8);
  // Eigenvalues descending.
  for (size_t i = 1; i < n; ++i) EXPECT_GE(eig.values[i - 1], eig.values[i]);
  // Eigenvectors orthonormal.
  Matrix vtv = eig.vectors.Transpose().Multiply(eig.vectors);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(n)), 1e-9);
}

TEST(EigenTest, Validation) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
  EXPECT_FALSE(SymmetricEigen(Matrix(0, 0)).ok());
  Matrix asym(2, 2);
  asym.at(0, 1) = 1.0;
  asym.at(1, 0) = 2.0;
  EXPECT_FALSE(SymmetricEigen(asym).ok());
}

TEST(OrthonormalizeTest, ProducesOrthonormalBasis) {
  Rng rng(10);
  Matrix m(10, 4);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 4; ++j) m.at(i, j) = rng.Gaussian();
  }
  Matrix q = OrthonormalizeColumns(m);
  ASSERT_EQ(q.cols(), 4u);
  Matrix qtq = q.Transpose().Multiply(q);
  EXPECT_LT(qtq.MaxAbsDiff(Matrix::Identity(4)), 1e-10);
}

TEST(OrthonormalizeTest, DropsDependentColumns) {
  Matrix m(3, 3);
  // Col 2 = 2 * col 0.
  m.at(0, 0) = 1; m.at(1, 0) = 1;
  m.at(0, 1) = 0; m.at(1, 1) = 1; m.at(2, 1) = 1;
  m.at(0, 2) = 2; m.at(1, 2) = 2;
  Matrix q = OrthonormalizeColumns(m);
  EXPECT_EQ(q.cols(), 2u);
}

}  // namespace
}  // namespace mlfs
