#include "lineage/lineage_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/ref.h"
#include "core/feature_store.h"

namespace mlfs {
namespace {

bool Contains(const std::vector<ArtifactId>& ids, const ArtifactId& id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

TEST(VersionedRefTest, FormatAndParse) {
  EXPECT_EQ(FormatVersionedRef("emb", 3), "emb@v3");
  EXPECT_EQ(FormatVersionedRef("emb", 0), "emb");
  EXPECT_EQ(FormatVersionedRef("emb", -1), "emb");
  EXPECT_EQ(ParseVersionedRef("emb@v3"), (VersionedRef{"emb", 3}));
  EXPECT_TRUE(ParseVersionedRef("emb@v3").pinned());
  EXPECT_EQ(ParseVersionedRef("emb"), (VersionedRef{"emb", 0}));
  EXPECT_FALSE(ParseVersionedRef("emb").pinned());
  // "@v" followed by non-digits is part of the name, not a version pin:
  // a user named "user@vip" must not parse as version 0 of "user".
  EXPECT_EQ(ParseVersionedRef("user@vip"), (VersionedRef{"user@vip", 0}));
  EXPECT_FALSE(ParseVersionedRef("user@vip").pinned());
  EXPECT_EQ(ParseVersionedRef("emb@v0"), (VersionedRef{"emb@v0", 0}));
  EXPECT_EQ(ParseVersionedRef("emb@v-2"), (VersionedRef{"emb@v-2", 0}));
  EXPECT_EQ(ParseVersionedRef("a@v1@v2"), (VersionedRef{"a@v1", 2}));
  // Round trip.
  EXPECT_EQ(ParseVersionedRef(VersionedRef{"f", 7}.ToString()),
            (VersionedRef{"f", 7}));
}

TEST(LineageGraphTest, ArtifactIdsAndToString) {
  EXPECT_EQ(EmbeddingArtifact("user_emb", 3).ToString(),
            "embedding:user_emb@v3");
  EXPECT_EQ(TableArtifact("activity").ToString(), "table:activity");
  EXPECT_EQ(ColumnArtifact("activity", "trips").ToString(),
            "column:activity.trips");
  EXPECT_EQ(ViewArtifact("trip_rate").ToString(), "view:trip_rate");
  EXPECT_EQ(FeatureArtifact("f", 1).ToString(), "feature:f@v1");
  EXPECT_EQ(ModelArtifact("m", 2).ToString(), "model:m@v2");
  EXPECT_LT(FeatureArtifact("f", 1), FeatureArtifact("f", 2));
  EXPECT_NE(FeatureArtifact("f", 1), EmbeddingArtifact("f", 1));
}

TEST(LineageGraphTest, AddEdgeAutoRegistersAndDeduplicates) {
  LineageGraph graph;
  EXPECT_TRUE(graph.AddArtifact(TableArtifact("t")).ok());
  EXPECT_TRUE(graph.AddArtifact(TableArtifact("t")).ok());  // Idempotent.
  EXPECT_EQ(graph.num_artifacts(), 1u);

  ASSERT_TRUE(graph.AddEdge(FeatureArtifact("f", 1), EdgeKind::kDerivedFrom,
                            ColumnArtifact("t", "c")).ok());
  EXPECT_EQ(graph.num_artifacts(), 3u);  // Feature + column auto-registered.
  EXPECT_EQ(graph.num_edges(), 1u);
  // Identical duplicate is a no-op.
  ASSERT_TRUE(graph.AddEdge(FeatureArtifact("f", 1), EdgeKind::kDerivedFrom,
                            ColumnArtifact("t", "c")).ok());
  EXPECT_EQ(graph.num_edges(), 1u);
  // Same endpoints, different kind: a distinct edge.
  ASSERT_TRUE(graph.AddEdge(FeatureArtifact("f", 1), EdgeKind::kPins,
                            ColumnArtifact("t", "c")).ok());
  EXPECT_EQ(graph.num_edges(), 2u);

  EXPECT_TRUE(graph.HasArtifact(ColumnArtifact("t", "c")));
  EXPECT_FALSE(graph.HasArtifact(ColumnArtifact("t", "nope")));
  ASSERT_EQ(graph.OutEdges(FeatureArtifact("f", 1)).size(), 2u);
  EXPECT_EQ(graph.OutEdges(FeatureArtifact("f", 1))[0].to,
            ColumnArtifact("t", "c"));
  ASSERT_EQ(graph.InEdges(ColumnArtifact("t", "c")).size(), 2u);
  EXPECT_TRUE(graph.OutEdges(ModelArtifact("ghost", 1)).empty());
}

TEST(LineageGraphTest, RejectsSelfEdgesAndCycles) {
  LineageGraph graph;
  EXPECT_TRUE(graph.AddEdge(FeatureArtifact("f", 1), EdgeKind::kDerivedFrom,
                            FeatureArtifact("f", 1))
                  .IsFailedPrecondition());

  ASSERT_TRUE(graph.AddEdge(EmbeddingArtifact("a", 1), EdgeKind::kDerivedFrom,
                            EmbeddingArtifact("b", 1)).ok());
  ASSERT_TRUE(graph.AddEdge(EmbeddingArtifact("b", 1), EdgeKind::kDerivedFrom,
                            EmbeddingArtifact("c", 1)).ok());
  // c -> a would close a cycle.
  EXPECT_TRUE(graph.AddEdge(EmbeddingArtifact("c", 1), EdgeKind::kDerivedFrom,
                            EmbeddingArtifact("a", 1))
                  .IsFailedPrecondition());
  EXPECT_EQ(graph.num_edges(), 2u);
  // The reverse *kind* along existing direction is still fine (no cycle).
  EXPECT_TRUE(graph.AddEdge(EmbeddingArtifact("a", 1), EdgeKind::kTrainedOn,
                            EmbeddingArtifact("c", 1)).ok());
}

TEST(LineageGraphTest, VersionsOfAndClosures) {
  LineageGraph graph;
  // feature f@v1, f@v2 both read column t.c; model m pins f@v2.
  ASSERT_TRUE(graph.AddEdge(FeatureArtifact("f", 1), EdgeKind::kDerivedFrom,
                            ColumnArtifact("t", "c")).ok());
  ASSERT_TRUE(graph.AddEdge(FeatureArtifact("f", 2), EdgeKind::kDerivedFrom,
                            ColumnArtifact("t", "c")).ok());
  ASSERT_TRUE(graph.AddEdge(ColumnArtifact("t", "c"), EdgeKind::kDerivedFrom,
                            TableArtifact("t")).ok());
  ASSERT_TRUE(graph.AddEdge(ModelArtifact("m", 1), EdgeKind::kPins,
                            FeatureArtifact("f", 2)).ok());

  auto versions = graph.VersionsOf(ArtifactKind::kFeature, "f");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].version, 1);
  EXPECT_EQ(versions[1].version, 2);
  EXPECT_TRUE(graph.VersionsOf(ArtifactKind::kFeature, "ghost").empty());

  auto up = graph.UpstreamClosure(ModelArtifact("m", 1));
  EXPECT_EQ(up.size(), 3u);  // f@v2, t.c, t — not itself, not f@v1.
  EXPECT_TRUE(Contains(up, FeatureArtifact("f", 2)));
  EXPECT_TRUE(Contains(up, TableArtifact("t")));
  EXPECT_FALSE(Contains(up, FeatureArtifact("f", 1)));

  auto down = graph.DownstreamClosure(TableArtifact("t"));
  EXPECT_EQ(down.size(), 4u);  // t.c, f@v1, f@v2, m@v1.
  EXPECT_TRUE(Contains(down, ModelArtifact("m", 1)));
}

TEST(LineageGraphTest, ImpactSetExcludesSuccessorVersions) {
  LineageGraph graph;
  // emb@v2 derived from emb@v1; model_old pins v1, model_new pins v2.
  ASSERT_TRUE(graph.AddEdge(EmbeddingArtifact("emb", 2),
                            EdgeKind::kDerivedFrom,
                            EmbeddingArtifact("emb", 1)).ok());
  ASSERT_TRUE(graph.AddEdge(ModelArtifact("old", 1), EdgeKind::kPins,
                            EmbeddingArtifact("emb", 1)).ok());
  ASSERT_TRUE(graph.AddEdge(ModelArtifact("new", 1), EdgeKind::kPins,
                            EmbeddingArtifact("emb", 2)).ok());

  // Everything downstream of v1 includes the successor and its consumer...
  auto down = graph.DownstreamClosure(EmbeddingArtifact("emb", 1));
  EXPECT_TRUE(Contains(down, EmbeddingArtifact("emb", 2)));
  EXPECT_TRUE(Contains(down, ModelArtifact("new", 1)));

  // ...but the *impact* of changing v1 must not: v2 is its replacement,
  // and model_new consumes the replacement, not v1.
  auto impact = graph.ImpactSet(EmbeddingArtifact("emb", 1));
  ASSERT_EQ(impact.size(), 1u);
  EXPECT_EQ(impact[0], ModelArtifact("old", 1));
}

TEST(LineageGraphTest, MarkStalePropagatesAndNotifies) {
  LineageGraph graph;
  ASSERT_TRUE(graph.AddEdge(ModelArtifact("m", 1), EdgeKind::kPins,
                            EmbeddingArtifact("emb", 1)).ok());
  ASSERT_TRUE(graph.AddEdge(ViewArtifact("emb"), EdgeKind::kMaterializes,
                            EmbeddingArtifact("emb", 1)).ok());

  std::vector<StalenessEvent> heard;
  graph.Subscribe([&heard](const StalenessEvent& e) { heard.push_back(e); });

  EXPECT_TRUE(graph.MarkStale(EmbeddingArtifact("ghost", 1),
                              StalenessReason::kDeprecated, Hours(1), "x")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(heard.empty());

  auto event = graph.MarkStale(EmbeddingArtifact("emb", 1),
                               StalenessReason::kDeprecated, Hours(2),
                               "manual deprecation");
  ASSERT_TRUE(event.ok()) << event.status();
  EXPECT_EQ(event->impacted.size(), 2u);  // m@v1 and view:emb.
  EXPECT_TRUE(Contains(event->impacted, ModelArtifact("m", 1)));
  EXPECT_TRUE(Contains(event->impacted, ViewArtifact("emb")));

  // Source and impacted all carry the annotation.
  auto info = graph.StalenessOf(ModelArtifact("m", 1));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->reason, StalenessReason::kDeprecated);
  EXPECT_EQ(info->source, EmbeddingArtifact("emb", 1));
  EXPECT_NE(info->ToString().find("deprecated"), std::string::npos);
  EXPECT_TRUE(graph.StalenessOf(EmbeddingArtifact("emb", 1)).has_value());

  // Event log + listener agree.
  ASSERT_EQ(graph.num_events(), 1u);
  EXPECT_EQ(graph.Events()[0].detail, "manual deprecation");
  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0].source, EmbeddingArtifact("emb", 1));
  EXPECT_EQ(heard[0].at, Hours(2));

  graph.ClearStale(ModelArtifact("m", 1));
  EXPECT_FALSE(graph.StalenessOf(ModelArtifact("m", 1)).has_value());
  EXPECT_TRUE(graph.StalenessOf(ViewArtifact("emb")).has_value());
}

TEST(LineageGraphTest, RecordMaterializationTracksTargetStaleness) {
  LineageGraph graph;
  ASSERT_TRUE(graph.AddArtifact(FeatureArtifact("f", 1)).ok());
  ASSERT_TRUE(graph.RecordMaterialization(ViewArtifact("f"),
                                          FeatureArtifact("f", 1)).ok());
  EXPECT_FALSE(graph.StalenessOf(ViewArtifact("f")).has_value());

  // Target goes stale -> a fresh materialization run of it taints the view.
  ASSERT_TRUE(graph.MarkStale(FeatureArtifact("f", 1),
                              StalenessReason::kDrift, Hours(1), "psi").ok());
  ASSERT_TRUE(graph.StalenessOf(ViewArtifact("f")).has_value());
  ASSERT_TRUE(graph.RecordMaterialization(ViewArtifact("f"),
                                          FeatureArtifact("f", 1)).ok());
  EXPECT_TRUE(graph.StalenessOf(ViewArtifact("f")).has_value());

  // Re-pointing the view at a healthy successor clears it.
  ASSERT_TRUE(graph.AddArtifact(FeatureArtifact("f", 2)).ok());
  ASSERT_TRUE(graph.RecordMaterialization(ViewArtifact("f"),
                                          FeatureArtifact("f", 2)).ok());
  EXPECT_FALSE(graph.StalenessOf(ViewArtifact("f")).has_value());
  EXPECT_EQ(graph.num_events(), 1u);  // RecordMaterialization emits none.
}

TEST(LineageGraphTest, SnapshotRestoreRoundTrip) {
  LineageGraph graph;
  ASSERT_TRUE(graph.AddEdge(FeatureArtifact("f", 1), EdgeKind::kDerivedFrom,
                            ColumnArtifact("t", "c")).ok());
  ASSERT_TRUE(graph.AddEdge(ModelArtifact("m", 1), EdgeKind::kPins,
                            FeatureArtifact("f", 1)).ok());
  ASSERT_TRUE(graph.RecordMaterialization(ViewArtifact("f"),
                                          FeatureArtifact("f", 1)).ok());
  ASSERT_TRUE(graph.MarkStale(FeatureArtifact("f", 1),
                              StalenessReason::kDrift, Hours(3), "psi=0.4")
                  .ok());

  LineageGraph restored;
  ASSERT_TRUE(restored.Restore(graph.Snapshot()).ok());
  EXPECT_EQ(restored.num_artifacts(), graph.num_artifacts());
  EXPECT_EQ(restored.num_edges(), graph.num_edges());
  EXPECT_EQ(restored.DownstreamClosure(ColumnArtifact("t", "c")),
            graph.DownstreamClosure(ColumnArtifact("t", "c")));
  auto info = restored.StalenessOf(ModelArtifact("m", 1));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->reason, StalenessReason::kDrift);
  EXPECT_EQ(info->at, Hours(3));
  EXPECT_EQ(info->detail, "psi=0.4");
  ASSERT_EQ(restored.num_events(), 1u);
  EXPECT_EQ(restored.Events()[0].impacted, graph.Events()[0].impacted);

  // Restore only into an empty graph; garbage rejected.
  EXPECT_FALSE(restored.Restore(graph.Snapshot()).ok());
  LineageGraph junk;
  EXPECT_FALSE(junk.Restore("not a snapshot").ok());
  LineageGraph empty_ok;
  EXPECT_TRUE(empty_ok.Restore(LineageGraph().Snapshot()).ok());
}

// --- Silos recording into one shared graph --------------------------------

TEST(LineageIntegrationTest, EmbeddingStoreRecordsVersionChains) {
  LineageGraph graph;
  EmbeddingStore store(&graph);
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  metadata.training_source = "clicks";
  auto v1 = EmbeddingTable::Create(metadata, {"a"}, {1, 2}, 2).value();
  ASSERT_TRUE(store.Register(v1, Hours(1)).ok());
  metadata.parent = "emb";  // Unpinned: resolved to the in-store latest.
  auto v2 = EmbeddingTable::Create(metadata, {"a"}, {3, 4}, 2).value();
  ASSERT_TRUE(store.Register(v2, Hours(2)).ok());

  // Registering v2 superseded v1 -> event + annotation.
  ASSERT_EQ(graph.num_events(), 1u);
  EXPECT_EQ(graph.Events()[0].source, EmbeddingArtifact("emb", 1));
  EXPECT_EQ(graph.Events()[0].reason, StalenessReason::kSuperseded);
  // Version chain and training source are edges now.
  EXPECT_EQ(store.Lineage("emb@v2").value(),
            (std::vector<std::string>{"emb@v2", "emb@v1"}));
  auto out = graph.OutEdges(EmbeddingArtifact("emb", 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, EdgeKind::kTrainedOn);
  EXPECT_EQ(out[0].to, TableArtifact("clicks"));

  ASSERT_TRUE(store.Deprecate("emb", Hours(3)).ok());
  auto info = graph.StalenessOf(EmbeddingArtifact("emb", 2));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->reason, StalenessReason::kDeprecated);
  EXPECT_TRUE(store.Deprecate("ghost", Hours(3)).IsNotFound());
}

TEST(LineageIntegrationTest, RegistryAnswersColumnImpactFromGraph) {
  OfflineStore offline;
  OfflineTableOptions options;
  options.name = "src";
  options.schema = Schema::Create({{"e", FeatureType::kInt64, false},
                                   {"t", FeatureType::kTimestamp, false},
                                   {"a", FeatureType::kDouble, true},
                                   {"b", FeatureType::kDouble, true}})
                       .value();
  options.entity_column = "e";
  options.time_column = "t";
  ASSERT_TRUE(offline.CreateTable(options).ok());

  LineageGraph graph;
  FeatureRegistry registry(&offline, &graph);
  FeatureDefinition def;
  def.name = "fa";
  def.entity = "user";
  def.source_table = "src";
  def.expression = "a * 2";
  def.cadence = Hours(1);
  ASSERT_TRUE(registry.Publish(def, Hours(1)).ok());
  def.name = "fab";
  def.expression = "a + b";
  ASSERT_TRUE(registry.Publish(def, Hours(1)).ok());

  EXPECT_EQ(registry.FeaturesReadingColumn("src", "a"),
            (std::vector<std::string>{"fa", "fab"}));
  EXPECT_EQ(registry.FeaturesReadingColumn("src", "b"),
            (std::vector<std::string>{"fab"}));
  EXPECT_TRUE(registry.FeaturesReadingColumn("src", "t").empty());

  // Publishing fa v2 supersedes v1: v1 drops out of the column answer
  // (only latest versions are live readers), and an event is recorded.
  def.name = "fa";
  def.expression = "a * 3";
  ASSERT_TRUE(registry.Publish(def, Hours(2)).ok());
  EXPECT_EQ(registry.FeaturesReadingColumn("src", "a"),
            (std::vector<std::string>{"fa", "fab"}));
  EXPECT_EQ(graph.Events().back().source, FeatureArtifact("fa", 1));

  // The graph holds the full derivation: feature -> column -> table.
  auto up = graph.UpstreamClosure(FeatureArtifact("fab", 1));
  EXPECT_TRUE(Contains(up, ColumnArtifact("src", "a")));
  EXPECT_TRUE(Contains(up, ColumnArtifact("src", "b")));
  EXPECT_TRUE(Contains(up, TableArtifact("src")));

  ASSERT_TRUE(registry.Deprecate("fab", Hours(3)).ok());
  EXPECT_TRUE(graph.StalenessOf(FeatureArtifact("fab", 1)).has_value());
}

// --- End-to-end: deprecate -> alert + annotated serving --------------------

class LineageE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Create({{"user_id", FeatureType::kInt64, false},
                              {"event_time", FeatureType::kTimestamp, false},
                              {"trips", FeatureType::kInt64, true}})
                  .value();
    OfflineTableOptions opt;
    opt.name = "activity";
    opt.schema = schema_;
    opt.entity_column = "user_id";
    opt.time_column = "event_time";
    ASSERT_TRUE(store_.CreateSourceTable(opt).ok());
    ASSERT_TRUE(store_
                    .Ingest("activity",
                            {Row::Create(schema_, {Value::Int64(1),
                                                   Value::Time(Hours(1)),
                                                   Value::Int64(10)})
                                 .value()})
                    .ok());
    FeatureDefinition def;
    def.name = "trips_x2";
    def.entity = "user";
    def.source_table = "activity";
    def.expression = "trips * 2";
    def.cadence = Hours(1);
    ASSERT_TRUE(store_.PublishFeature(def).ok());
    ASSERT_TRUE(store_.RunMaterialization().ok());

    EmbeddingTableMetadata metadata;
    metadata.name = "user_emb";
    auto table = EmbeddingTable::Create(metadata, {"1", "2"},
                                        {1, 0, 0, 1}, 2).value();
    ASSERT_TRUE(store_.RegisterEmbedding(table).ok());
  }

  FeatureStore store_;
  SchemaPtr schema_;
};

TEST_F(LineageE2ETest, DeprecationReachesAlertsAndServedResponses) {
  // Fresh: no annotations anywhere.
  auto fv = store_.ServeFeatures(Value::Int64(1), {"trips_x2"}).value();
  EXPECT_TRUE(fv.stale.empty());
  auto ev = store_.ServeFeatures(Value::String("1"), {"user_emb"}).value();
  EXPECT_TRUE(ev.stale.empty());

  // Deprecating the embedding annotates embedding-hydrated responses and
  // lands on the alert bus.
  ASSERT_TRUE(store_.DeprecateEmbedding("user_emb").ok());
  ev = store_.ServeFeatures(Value::String("1"), {"user_emb"}).value();
  ASSERT_EQ(ev.stale.size(), 1u);
  EXPECT_NE(ev.stale[0].find("user_emb"), std::string::npos);
  EXPECT_NE(ev.stale[0].find("deprecated"), std::string::npos);
  EXPECT_EQ(ev.values[0].type(), FeatureType::kEmbedding);  // Still served.
  EXPECT_EQ(store_.alerts()
                .WithPrefix("staleness:embedding:user_emb@v1").size(), 1u);

  // Deprecating the feature taints its online view via the materializes
  // edge, so tabular serving is annotated too.
  ASSERT_TRUE(store_.DeprecateFeature("trips_x2").ok());
  fv = store_.ServeFeatures(Value::Int64(1), {"trips_x2"}).value();
  ASSERT_EQ(fv.stale.size(), 1u);
  EXPECT_NE(fv.stale[0].find("trips_x2"), std::string::npos);
  EXPECT_EQ(fv.values[0], Value::Int64(20));  // Value unchanged.
  EXPECT_GE(store_.alerts().WithPrefix("staleness:feature:trips_x2").size(),
            1u);

  // ImpactOf answers the cross-layer question directly.
  auto impact = store_.ImpactOf(FeatureArtifact("trips_x2", 1));
  ASSERT_EQ(impact.size(), 1u);
  EXPECT_EQ(impact[0], ViewArtifact("trips_x2"));
  EXPECT_TRUE(store_.DeprecateFeature("ghost").IsNotFound());
  EXPECT_TRUE(store_.DeprecateEmbedding("ghost").IsNotFound());
}

TEST_F(LineageE2ETest, SupersedingRefreshClearsViewTaint) {
  // v1 deprecated -> view tainted; publishing v2 and re-materializing
  // re-points the view at the healthy successor.
  ASSERT_TRUE(store_.DeprecateFeature("trips_x2").ok());
  ASSERT_TRUE(
      store_.lineage().StalenessOf(ViewArtifact("trips_x2")).has_value());

  FeatureDefinition def;
  def.name = "trips_x2";
  def.entity = "user";
  def.source_table = "activity";
  def.expression = "trips * 2 + 1";
  def.cadence = Hours(1);
  ASSERT_TRUE(store_.PublishFeature(def).ok());
  store_.clock().AdvanceTo(Hours(5));
  ASSERT_TRUE(store_.RunMaterialization().ok());
  EXPECT_FALSE(
      store_.lineage().StalenessOf(ViewArtifact("trips_x2")).has_value());
  auto fv = store_.ServeFeatures(Value::Int64(1), {"trips_x2"}).value();
  EXPECT_TRUE(fv.stale.empty());
}

TEST_F(LineageE2ETest, DriftMarksArtifactStale) {
  // A drifted embedding update taints the *old* version (its geometry no
  // longer matches what consumers trained against).
  EmbeddingTableMetadata metadata;
  metadata.name = "user_emb";
  auto flipped = EmbeddingTable::Create(metadata, {"1", "2"},
                                        {-1, 0, 0, -1}, 2).value();
  ASSERT_TRUE(store_.RegisterEmbedding(flipped).ok());
  auto report = store_.CheckEmbeddingUpdateDrift("user_emb", 1, 2);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->drifted);
  auto info = store_.lineage().StalenessOf(EmbeddingArtifact("user_emb", 1));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->reason, StalenessReason::kDrift);
  // Both the supersede (registration) and drift events are in the log.
  bool saw_drift = false;
  for (const auto& event : store_.lineage().Events()) {
    saw_drift |= event.reason == StalenessReason::kDrift;
  }
  EXPECT_TRUE(saw_drift);
}

TEST_F(LineageE2ETest, ModelPinsShowUpInImpact) {
  ModelRecord model;
  model.name = "ranker";
  model.embedding_refs = {"user_emb@v1"};
  model.feature_refs = {"trips_x2@v1"};
  ASSERT_TRUE(store_.RegisterModel(std::move(model)).ok());

  auto impact = store_.ImpactOf(EmbeddingArtifact("user_emb", 1));
  EXPECT_TRUE(Contains(impact, ModelArtifact("ranker", 1)));
  impact = store_.ImpactOf(TableArtifact("activity"));
  EXPECT_TRUE(Contains(impact, FeatureArtifact("trips_x2", 1)));
  EXPECT_TRUE(Contains(impact, ModelArtifact("ranker", 1)));
  EXPECT_TRUE(Contains(impact, ViewArtifact("trips_x2")));

  // Deprecation fan-out counts its consumers in the alert message.
  ASSERT_TRUE(store_.DeprecateEmbedding("user_emb").ok());
  auto alerts = store_.alerts().WithPrefix("staleness:embedding:user_emb");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_NE(alerts[0].message.find("impacted: 1 downstream"),
            std::string::npos);
}

}  // namespace
}  // namespace mlfs
