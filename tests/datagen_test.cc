#include "datagen/kb.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/tabular.h"
#include "quality/drift.h"
#include "quality/skew.h"

namespace mlfs {
namespace {

TEST(SyntheticKbTest, BuildShapesAndDeterminism) {
  SyntheticKbConfig config;
  config.num_entities = 500;
  config.num_types = 5;
  config.num_edges = 2000;
  auto kb = BuildSyntheticKb(config).value();
  EXPECT_EQ(kb.num_entities(), 500u);
  EXPECT_EQ(kb.vocab_size(), 500u + 5 + 6);
  EXPECT_EQ(kb.neighbors.size(), 500u);
  for (int type : kb.entity_type) {
    EXPECT_GE(type, 0);
    EXPECT_LT(type, 5);
  }
  size_t total_degree = 0;
  for (const auto& adjacency : kb.neighbors) total_degree += adjacency.size();
  EXPECT_EQ(total_degree, 2 * config.num_edges);

  auto kb2 = BuildSyntheticKb(config).value();
  EXPECT_EQ(kb.entity_type, kb2.entity_type);
}

TEST(SyntheticKbTest, HomophilyControlsIntraTypeEdges) {
  SyntheticKbConfig config;
  config.num_entities = 500;
  config.homophily = 0.9;
  auto homophilous = BuildSyntheticKb(config).value();
  config.homophily = 0.0;
  config.seed = 8;
  auto random = BuildSyntheticKb(config).value();
  auto intra_rate = [](const SyntheticKb& kb) {
    size_t intra = 0, total = 0;
    for (size_t e = 0; e < kb.num_entities(); ++e) {
      for (const auto& [neighbor, kind] : kb.neighbors[e]) {
        ++total;
        intra += kb.entity_type[e] == kb.entity_type[neighbor];
      }
    }
    return static_cast<double>(intra) / static_cast<double>(total);
  };
  EXPECT_GT(intra_rate(homophilous), 0.85);
  EXPECT_LT(intra_rate(random), 0.4);
}

TEST(SyntheticKbTest, Validation) {
  SyntheticKbConfig config;
  config.num_entities = 1;
  EXPECT_FALSE(BuildSyntheticKb(config).ok());
  config = {};
  config.homophily = 1.5;
  EXPECT_FALSE(BuildSyntheticKb(config).ok());
}

TEST(CorpusTest, TokensInRangeAndZipfian) {
  auto kb = BuildSyntheticKb({}).value();
  CorpusConfig config;
  config.num_sentences = 3000;
  auto corpus = GenerateCorpus(kb, config).value();
  EXPECT_EQ(corpus.size(), 3000u);
  for (const auto& sentence : corpus) {
    EXPECT_GE(sentence.size(), 8u);
    for (int token : sentence) {
      EXPECT_GE(token, 0);
      // Without structured tokens, only entity ids appear.
      EXPECT_LT(static_cast<size_t>(token), kb.num_entities());
    }
  }
  auto mentions = CountMentions(kb, corpus);
  // Popularity skew: head entity far more frequent than median.
  std::vector<uint64_t> sorted = mentions;
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_GT(sorted[0], 20 * std::max<uint64_t>(1, sorted[sorted.size() / 2]));
}

TEST(CorpusTest, StructuredTokensAppearWhenEnabled) {
  auto kb = BuildSyntheticKb({}).value();
  CorpusConfig config;
  config.num_sentences = 200;
  config.include_type_tokens = true;
  config.include_relation_tokens = true;
  auto corpus = GenerateCorpus(kb, config).value();
  bool saw_type = false, saw_relation = false;
  for (const auto& sentence : corpus) {
    for (int token : sentence) {
      size_t id = static_cast<size_t>(token);
      if (id >= kb.num_entities() &&
          id < kb.num_entities() + kb.config.num_types) {
        saw_type = true;
      }
      if (id >= kb.num_entities() + kb.config.num_types) saw_relation = true;
      EXPECT_LT(id, kb.vocab_size());
    }
  }
  EXPECT_TRUE(saw_type);
  EXPECT_TRUE(saw_relation);
}

TEST(CorpusTest, Validation) {
  auto kb = BuildSyntheticKb({}).value();
  CorpusConfig config;
  config.num_sentences = 0;
  EXPECT_FALSE(GenerateCorpus(kb, config).ok());
}

TEST(PopularityDecilesTest, PartitionsByMentions) {
  std::vector<uint64_t> mentions = {100, 1, 50, 2, 80, 3, 60, 4, 70, 5};
  auto deciles = PopularityDeciles(mentions, 5);
  ASSERT_EQ(deciles.size(), 5u);
  size_t total = 0;
  for (const auto& decile : deciles) total += decile.size();
  EXPECT_EQ(total, 10u);
  // First decile holds the two most-mentioned entities (ids 0 and 4).
  EXPECT_EQ(deciles[0].size(), 2u);
  EXPECT_TRUE((deciles[0][0] == 0 && deciles[0][1] == 4) ||
              (deciles[0][0] == 4 && deciles[0][1] == 0));
  // Last decile holds the rarest.
  for (size_t id : deciles[4]) EXPECT_LE(mentions[id], 2u);
}

TEST(TabularGeneratorTest, SchemaAndRanges) {
  TabularGenConfig config;
  config.num_entities = 100;
  config.numeric_columns = {{"fare", 20.0, 5.0, 0, 0, 0, 0.1}};
  config.categorical_columns = {{"city", {"sf", "nyc"}, {3, 1}, 0.0}};
  auto generator = TabularGenerator::Create(config).value();
  EXPECT_EQ(generator.schema()->num_fields(), 4u);
  auto rows = generator.Generate(5000, 0, Days(1));
  EXPECT_EQ(rows.size(), 5000u);
  size_t nulls = 0, sf = 0, named = 0;
  for (const Row& row : rows) {
    Timestamp t = row.ValueByName("event_time").value().time_value();
    EXPECT_GE(t, 0);
    EXPECT_LT(t, Days(1));
    const Value fare = row.ValueByName("fare").value();
    nulls += fare.is_null();
    const Value city = row.ValueByName("city").value();
    if (!city.is_null()) {
      ++named;
      sf += city.string_value() == "sf";
    }
  }
  EXPECT_NEAR(static_cast<double>(nulls) / rows.size(), 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(sf) / named, 0.75, 0.03);
}

TEST(TabularGeneratorTest, DriftAndShiftInjection) {
  TabularGenConfig config;
  config.numeric_columns = {
      {"drifting", 0.0, 1.0, /*drift_per_day=*/1.0, 0, 0, 0},
      {"stepping", 0.0, 1.0, 0.0, /*shift_at=*/Days(5),
       /*shift_delta=*/3.0, 0}};
  auto generator = TabularGenerator::Create(config).value();
  auto early = generator.Generate(3000, 0, Days(1));
  auto late = generator.Generate(3000, Days(9), Days(10));

  auto mean_of = [](const std::vector<Row>& rows, const char* col) {
    double sum = 0;
    for (const Row& row : rows) {
      sum += row.ValueByName(col).value().double_value();
    }
    return sum / static_cast<double>(rows.size());
  };
  // Linear drift: ~+9 mean after 9 days.
  EXPECT_NEAR(mean_of(late, "drifting") - mean_of(early, "drifting"), 9.0,
              0.5);
  // Step: +3 after day 5.
  EXPECT_NEAR(mean_of(late, "stepping") - mean_of(early, "stepping"), 3.0,
              0.2);
  // And the drift detector sees it.
  auto skew = ComputeSkew(early, late, "stepping").value();
  EXPECT_TRUE(skew.skewed);
}

TEST(TabularGeneratorTest, Validation) {
  TabularGenConfig config;
  config.num_entities = 0;
  EXPECT_FALSE(TabularGenerator::Create(config).ok());
  config = {};
  config.numeric_columns = {{"", 0, 1, 0, 0, 0, 0}};
  EXPECT_FALSE(TabularGenerator::Create(config).ok());
  config = {};
  config.categorical_columns = {{"c", {}, {}, 0}};
  EXPECT_FALSE(TabularGenerator::Create(config).ok());
  config.categorical_columns = {{"c", {"a"}, {1, 2}, 0}};
  EXPECT_FALSE(TabularGenerator::Create(config).ok());
}

}  // namespace
}  // namespace mlfs
