#include "embedding/compress.h"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace mlfs {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Packs and dequantizes `data` in one go.
std::vector<float> RoundTrip(const std::vector<float>& data, size_t n,
                             size_t dim, int bits) {
  PackedCodes packed = PackUniform(data.data(), n, dim, bits).value();
  PackedDecodeTables tables = MakeDecodeTables(bits, packed.lo, packed.hi);
  std::vector<float> out(n * dim);
  DequantizeRange(ViewOf(packed, tables), 0, n, out.data());
  return out;
}

TEST(PackedCodecTest, Validation) {
  std::vector<float> data = {1.0f, 2.0f};
  EXPECT_FALSE(PackUniform(data.data(), 2, 1, 0).ok());
  EXPECT_FALSE(PackUniform(data.data(), 2, 1, 17).ok());
  EXPECT_FALSE(PackUniform(nullptr, 2, 1, 8).ok());
  EXPECT_FALSE(PackUniform(data.data(), 0, 1, 8).ok());
  EXPECT_FALSE(PackUniform(data.data(), 2, 0, 8).ok());
  EXPECT_TRUE(PackUniform(data.data(), 2, 1, 1).ok());
  EXPECT_TRUE(PackUniform(data.data(), 2, 1, 16).ok());
}

TEST(PackedCodecTest, RowsAreByteAligned) {
  // dim * bits = 9 bits -> 2 bytes per row, rows never share bytes.
  std::vector<float> data = {0, 1, 2, 3, 4, 5};
  PackedCodes packed = PackUniform(data.data(), 2, 3, 3).value();
  EXPECT_EQ(packed.row_bytes, 2u);
  EXPECT_EQ(packed.codes.size(), 4u);
}

TEST(PackedCodecTest, CodesStraddleBytes) {
  // Odd widths exercise the 2- and 3-byte straddles of PutPackedCode /
  // PackedCodeAt: every written code must read back exactly.
  Rng rng(7);
  for (int bits : {1, 3, 5, 7, 11, 13, 16}) {
    const size_t dim = 9;
    std::vector<uint8_t> row((dim * bits + 7) / 8, 0);
    const uint32_t top = (1u << bits) - 1u;
    // Write via the codec's own packer: pack a synthetic row whose codes
    // we can predict (lo=0, hi=top, integer values -> exact codes).
    std::vector<float> data;
    std::vector<uint32_t> want;
    for (size_t j = 0; j < dim; ++j) {
      want.push_back(static_cast<uint32_t>(rng.Uniform(top + 1)));
    }
    // Two rows pin the range to [0, top] regardless of the random codes.
    for (size_t j = 0; j < dim; ++j) data.push_back(0.0f);
    for (size_t j = 0; j < dim; ++j) {
      data.push_back(static_cast<float>(top));
    }
    for (uint32_t code : want) data.push_back(static_cast<float>(code));
    PackedCodes packed = PackUniform(data.data(), 3, dim, bits).value();
    const uint8_t* third = packed.codes.data() + 2 * packed.row_bytes;
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(PackedCodeAt(third, j, bits), want[j])
          << "bits=" << bits << " j=" << j;
    }
  }
}

TEST(PackedCodecTest, NanEncodesAsLo) {
  std::vector<float> data = {1.0f, kNan, 3.0f};
  PackedCodes packed = PackUniform(data.data(), 3, 1, 8).value();
  // The range is over finite values only; the NaN cell pins to lo.
  EXPECT_FLOAT_EQ(packed.lo[0], 1.0f);
  EXPECT_FLOAT_EQ(packed.hi[0], 3.0f);
  EXPECT_EQ(PackedCodeAt(packed.codes.data() + packed.row_bytes, 0, 8), 0u);
  std::vector<float> out = RoundTrip(data, 3, 1, 8);
  EXPECT_FLOAT_EQ(out[1], 1.0f);  // Never NaN.
  EXPECT_TRUE(std::isfinite(out[0]) && std::isfinite(out[2]));
}

TEST(PackedCodecTest, InfinitiesSaturate) {
  std::vector<float> data = {kInf, -kInf, 0.0f, 10.0f};
  std::vector<float> out = RoundTrip(data, 4, 1, 8);
  EXPECT_FLOAT_EQ(out[0], 10.0f);   // +inf -> hi.
  EXPECT_FLOAT_EQ(out[1], 0.0f);    // -inf -> lo.
  for (float x : out) EXPECT_TRUE(std::isfinite(x));
}

TEST(PackedCodecTest, AllNonFiniteDimensionIsEmptyRange) {
  // Column 1 has no finite value at all: range [0, 0], every code 0,
  // served as 0.0 — not NaN, not UB.
  std::vector<float> data = {1.0f, kNan, 2.0f, kInf};
  PackedCodes packed = PackUniform(data.data(), 2, 2, 8).value();
  EXPECT_FLOAT_EQ(packed.lo[1], 0.0f);
  EXPECT_FLOAT_EQ(packed.hi[1], 0.0f);
  std::vector<float> out = RoundTrip(data, 2, 2, 8);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(PackedCodecTest, ConstantDimensionRoundTripsExactly) {
  std::vector<float> data = {5.5f, 5.5f, 5.5f};
  std::vector<float> out = RoundTrip(data, 3, 1, 4);
  for (float x : out) EXPECT_FLOAT_EQ(x, 5.5f);
}

TEST(PackedCodecTest, DenormalsSurvive) {
  const float denorm = std::numeric_limits<float>::denorm_min();
  std::vector<float> data = {0.0f, denorm, 2 * denorm, 3 * denorm};
  // 16 bits over a denormal-wide range: the step is a tiny *double*, far
  // below FLT_MIN — the all-double codec must not flush it to zero.
  std::vector<float> out = RoundTrip(data, 4, 1, 16);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 3 * denorm);
  EXPECT_GT(out[2], out[1]);
}

TEST(PackedCodecTest, ExtremeRangeDoesNotOverflowToInf) {
  // hi - lo = 2 * FLT_MAX overflows *float* to +inf; the double-domain
  // step must keep both ends finite and exactly representable.
  std::vector<float> data = {-FLT_MAX, FLT_MAX, 0.0f};
  for (int bits : {1, 8, 16}) {
    std::vector<float> out = RoundTrip(data, 3, 1, bits);
    EXPECT_FLOAT_EQ(out[0], -FLT_MAX) << bits;
    EXPECT_FLOAT_EQ(out[1], FLT_MAX) << bits;
    EXPECT_TRUE(std::isfinite(out[2])) << bits;
  }
}

TEST(PackedCodecTest, OneBitIsASignSplit) {
  std::vector<float> data = {-4.0f, 4.0f, -3.9f, 3.9f, -0.1f};
  PackedCodes packed = PackUniform(data.data(), 5, 1, 1).value();
  std::vector<uint32_t> codes;
  for (size_t i = 0; i < 5; ++i) {
    codes.push_back(PackedCodeAt(packed.codes.data() + i, 0, 1));
  }
  EXPECT_EQ(codes, (std::vector<uint32_t>{0, 1, 0, 1, 0}));
  std::vector<float> out = RoundTrip(data, 5, 1, 1);
  for (float x : out) {
    EXPECT_TRUE(x == -4.0f || x == 4.0f);
  }
}

TEST(PackedCodecTest, SixteenBitUsesFullCodeSpace) {
  std::vector<float> data = {0.0f, 65535.0f};
  PackedCodes packed = PackUniform(data.data(), 2, 1, 16).value();
  EXPECT_EQ(PackedCodeAt(packed.codes.data() + packed.row_bytes, 0, 16),
            65535u);
  std::vector<float> out = RoundTrip(data, 2, 1, 16);
  EXPECT_FLOAT_EQ(out[1], 65535.0f);
}

TEST(PackedCodecTest, QuantizationErrorIsBoundedByHalfStep) {
  Rng rng(11);
  const size_t n = 64, dim = 7;
  std::vector<float> data(n * dim);
  for (float& x : data) {
    x = static_cast<float>(rng.Gaussian(0.0, 100.0));
  }
  for (int bits : {2, 5, 8, 12, 16}) {
    PackedCodes packed = PackUniform(data.data(), n, dim, bits).value();
    PackedDecodeTables tables = MakeDecodeTables(bits, packed.lo, packed.hi);
    std::vector<float> out(n * dim);
    DequantizeRange(ViewOf(packed, tables), 0, n, out.data());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        const double err =
            std::abs(static_cast<double>(data[i * dim + j]) - out[i * dim + j]);
        EXPECT_LE(err, tables.step[j] * 0.5 + 1e-3)
            << "bits=" << bits << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(PackedCodecTest, RandomizedPackIsDeterministicAndMatchesQuantize) {
  // The packed codec and the table-level QuantizeUniform must stay
  // byte-identical: the cold tier serves exactly what the historical
  // compression API produced at the same bit width.
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.Uniform(40);
    const size_t dim = 1 + rng.Uniform(12);
    const int bits = 1 + static_cast<int>(rng.Uniform(16));
    std::vector<float> data(n * dim);
    for (float& x : data) {
      x = static_cast<float>(rng.Gaussian());
      // Sprinkle hostile values.
      const double roll = rng.UniformDouble();
      if (roll < 0.02) x = kNan;
      else if (roll < 0.03) x = kInf;
      else if (roll < 0.04) x = -kInf;
    }
    PackedCodes a = PackUniform(data.data(), n, dim, bits).value();
    PackedCodes b = PackUniform(data.data(), n, dim, bits).value();
    ASSERT_EQ(a.codes, b.codes) << "pack must be deterministic";
    ASSERT_EQ(a.lo, b.lo);
    ASSERT_EQ(a.hi, b.hi);

    PackedDecodeTables tables = MakeDecodeTables(bits, a.lo, a.hi);
    std::vector<float> served(n * dim);
    DequantizeRange(ViewOf(a, tables), 0, n, served.data());
    for (float x : served) ASSERT_TRUE(std::isfinite(x));

    EmbeddingTableMetadata metadata;
    metadata.name = "rt";
    std::vector<std::string> keys;
    for (size_t i = 0; i < n; ++i) keys.push_back("k" + std::to_string(i));
    auto table = EmbeddingTable::Create(metadata, keys, data, dim).value();
    auto quantized = QuantizeUniform(*table, bits).value();
    // Bit-exact, not approximate: memcmp-level equality of the floats.
    ASSERT_EQ(quantized->raw().size(), served.size());
    for (size_t i = 0; i < served.size(); ++i) {
      uint32_t qa, qb;
      static_assert(sizeof(float) == sizeof(uint32_t));
      std::memcpy(&qa, &quantized->raw()[i], sizeof(qa));
      std::memcpy(&qb, &served[i], sizeof(qb));
      ASSERT_EQ(qa, qb) << "round=" << round << " cell=" << i;
    }
  }
}

TEST(PackedCodecTest, CompressionRatioAccountsForRangeStorage) {
  // 8-bit packing of a big matrix approaches 4x but never reaches it: the
  // per-dimension min/max floats are part of the deal.
  EXPECT_LT(CompressionRatio(8, 1u << 20, 16), 4.0);
  EXPECT_NEAR(CompressionRatio(8, 1u << 20, 16), 4.0, 0.01);
  // Byte padding: 3 bits * 3 dims = 9 bits -> 2 bytes, not 1.125.
  const double padded = CompressionRatio(3, 1u << 20, 3);
  EXPECT_NEAR(padded, 12.0 / 2.0, 0.01);
  EXPECT_EQ(CompressionRatio(0, 10, 10), 0.0);
  EXPECT_EQ(CompressionRatio(8, 0, 10), 0.0);
}

}  // namespace
}  // namespace mlfs
