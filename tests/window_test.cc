#include "streaming/window.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "streaming/stream_pipeline.h"

namespace mlfs {
namespace {

SchemaPtr EventSchema() {
  return Schema::Create({{"user_id", FeatureType::kInt64, false},
                         {"ts", FeatureType::kTimestamp, false},
                         {"fare", FeatureType::kDouble, true}})
      .value();
}

Row Event(const SchemaPtr& schema, int64_t user, Timestamp ts, double fare) {
  return Row::Create(schema, {Value::Int64(user), Value::Time(ts),
                              Value::Double(fare)})
      .value();
}

std::unique_ptr<WindowedAggregator> MakeAgg(
    WindowSpec window, Timestamp lateness = 0,
    std::vector<WindowAggSpec> aggs = {
        {"trip_count", AggregateFn::kCount, ""},
        {"fare_sum", AggregateFn::kSum, "fare"}}) {
  auto agg = WindowedAggregator::Create(EventSchema(), "user_id", "ts",
                                        window, std::move(aggs), lateness);
  EXPECT_TRUE(agg.ok()) << agg.status();
  return std::move(agg).value();
}

TEST(WindowedAggregatorTest, CreateValidation) {
  auto schema = EventSchema();
  std::vector<WindowAggSpec> aggs = {{"c", AggregateFn::kCount, ""}};
  WindowSpec w{Hours(1), Hours(1)};

  EXPECT_FALSE(WindowedAggregator::Create(nullptr, "user_id", "ts", w, aggs)
                   .ok());
  EXPECT_FALSE(WindowedAggregator::Create(schema, "nope", "ts", w, aggs).ok());
  EXPECT_FALSE(WindowedAggregator::Create(schema, "fare", "ts", w, aggs).ok());
  EXPECT_FALSE(WindowedAggregator::Create(schema, "user_id", "fare", w, aggs)
                   .ok());
  EXPECT_FALSE(WindowedAggregator::Create(schema, "user_id", "ts",
                                          {0, Hours(1)}, aggs).ok());
  EXPECT_FALSE(WindowedAggregator::Create(schema, "user_id", "ts",
                                          {Hours(1), Hours(2)}, aggs).ok());
  // Width not a multiple of slide.
  EXPECT_FALSE(WindowedAggregator::Create(schema, "user_id", "ts",
                                          {Minutes(90), Hours(1)}, aggs).ok());
  EXPECT_FALSE(WindowedAggregator::Create(schema, "user_id", "ts", w, {}).ok());
  // Empty input only valid for count.
  EXPECT_FALSE(WindowedAggregator::Create(
                   schema, "user_id", "ts", w,
                   {{"s", AggregateFn::kSum, ""}}).ok());
  // Non-numeric input for sum.
  auto schema2 = Schema::Create({{"user_id", FeatureType::kInt64, false},
                                 {"ts", FeatureType::kTimestamp, false},
                                 {"name", FeatureType::kString, true}})
                     .value();
  EXPECT_FALSE(WindowedAggregator::Create(
                   schema2, "user_id", "ts", w,
                   {{"s", AggregateFn::kSum, "name"}}).ok());
  // count_distinct over strings is fine.
  EXPECT_TRUE(WindowedAggregator::Create(
                  schema2, "user_id", "ts", w,
                  {{"d", AggregateFn::kCountDistinct, "name"}}).ok());
}

TEST(WindowedAggregatorTest, TumblingWindowFinalizesOnWatermark) {
  auto schema = EventSchema();
  auto agg = MakeAgg({Hours(1), Hours(1)});
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Minutes(10), 5.0)).ok());
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Minutes(50), 7.0)).ok());
  EXPECT_TRUE(agg->PollResults().empty());  // Window [0,1h) still open.

  // Event at 1h closes window [0,1h).
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Hours(1), 3.0)).ok());
  auto results = agg->PollResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].entity_key, "1");
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[0].window_end, Hours(1));
  EXPECT_EQ(results[0].values[0], Value::Int64(2));
  EXPECT_EQ(results[0].values[1], Value::Double(12.0));
}

TEST(WindowedAggregatorTest, PerEntityIsolation) {
  auto schema = EventSchema();
  auto agg = MakeAgg({Hours(1), Hours(1)});
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Minutes(5), 1.0)).ok());
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 2, Minutes(6), 10.0)).ok());
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 2, Minutes(7), 20.0)).ok());
  agg->AdvanceWatermarkTo(Hours(1));
  auto results = agg->PollResults();
  ASSERT_EQ(results.size(), 2u);  // Sorted by entity within window.
  EXPECT_EQ(results[0].entity_key, "1");
  EXPECT_EQ(results[0].values[1], Value::Double(1.0));
  EXPECT_EQ(results[1].entity_key, "2");
  EXPECT_EQ(results[1].values[1], Value::Double(30.0));
}

TEST(WindowedAggregatorTest, SlidingWindowsOverlap) {
  auto schema = EventSchema();
  // Width 2h, slide 1h: event at 1:30 belongs to [0,2h) and [1h,3h).
  auto agg = MakeAgg({Hours(2), Hours(1)});
  ASSERT_TRUE(
      agg->ProcessEvent(Event(schema, 1, Hours(1) + Minutes(30), 4.0)).ok());
  agg->AdvanceWatermarkTo(Hours(10));
  auto results = agg->PollResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[1].window_start, Hours(1));
  for (const auto& r : results) {
    EXPECT_EQ(r.values[0], Value::Int64(1));
    EXPECT_EQ(r.values[1], Value::Double(4.0));
  }
}

TEST(WindowedAggregatorTest, AllowedLatenessAcceptsLateEvents) {
  auto schema = EventSchema();
  auto strict = MakeAgg({Hours(1), Hours(1)}, /*lateness=*/0);
  ASSERT_TRUE(strict->ProcessEvent(Event(schema, 1, Hours(2), 1.0)).ok());
  // Event 30min in the past relative to watermark (=2h): dropped.
  ASSERT_TRUE(
      strict->ProcessEvent(Event(schema, 1, Hours(1) + Minutes(30), 9.0)).ok());
  EXPECT_EQ(strict->dropped_late(), 1u);

  auto lenient = MakeAgg({Hours(1), Hours(1)}, /*lateness=*/Hours(1));
  ASSERT_TRUE(lenient->ProcessEvent(Event(schema, 1, Hours(2), 1.0)).ok());
  ASSERT_TRUE(
      lenient->ProcessEvent(Event(schema, 1, Hours(1) + Minutes(30), 9.0))
          .ok());
  EXPECT_EQ(lenient->dropped_late(), 0u);
  lenient->AdvanceWatermarkTo(Hours(10));
  auto results = lenient->PollResults();
  // Window [1h,2h) contains both the late event and... only the late one.
  bool found = false;
  for (const auto& r : results) {
    if (r.window_start == Hours(1)) {
      found = true;
      EXPECT_EQ(r.values[1], Value::Double(9.0));
    }
  }
  EXPECT_TRUE(found);
}

TEST(WindowedAggregatorTest, WatermarkHoldsBackFinalization) {
  auto schema = EventSchema();
  auto agg = MakeAgg({Hours(1), Hours(1)}, /*lateness=*/Minutes(30));
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Minutes(10), 1.0)).ok());
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Hours(1) + Minutes(10), 1.0))
                  .ok());
  // Watermark = 1:10 - 0:30 = 0:40 < 1h: window [0,1h) still open.
  EXPECT_TRUE(agg->PollResults().empty());
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Hours(1) + Minutes(40), 1.0))
                  .ok());
  // Watermark = 1:10: now it closes.
  EXPECT_EQ(agg->PollResults().size(), 1u);
}

TEST(WindowedAggregatorTest, OpenStatesBookkeeping) {
  auto schema = EventSchema();
  auto agg = MakeAgg({Hours(1), Hours(1)});
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 1, Minutes(10), 1.0)).ok());
  ASSERT_TRUE(agg->ProcessEvent(Event(schema, 2, Minutes(10), 1.0)).ok());
  EXPECT_EQ(agg->open_states(), 2u);
  agg->AdvanceWatermarkTo(Hours(2));
  EXPECT_EQ(agg->open_states(), 0u);
}

TEST(WindowedAggregatorTest, RandomizedMatchesBatchOracle) {
  auto schema = EventSchema();
  const Timestamp width = Hours(2), slide = Hours(1);
  // Lateness covers the whole event span so no event is ever dropped and
  // the streaming result must match the batch recomputation exactly.
  auto agg = MakeAgg({width, slide}, /*lateness=*/Days(2));
  Rng rng(77);
  struct Ev { int64_t user; Timestamp ts; double fare; };
  std::vector<Ev> events;
  for (int i = 0; i < 2000; ++i) {
    Ev e{static_cast<int64_t>(rng.Uniform(5)),
         static_cast<Timestamp>(rng.Uniform(Days(2))),
         rng.UniformDouble(0, 100)};
    events.push_back(e);
    ASSERT_TRUE(agg->ProcessEvent(Event(schema, e.user, e.ts, e.fare)).ok());
  }
  agg->AdvanceWatermarkTo(Days(3));
  auto results = agg->PollResults();

  // Batch oracle: for every (window_start, user), count and sum.
  std::map<std::pair<Timestamp, std::string>, std::pair<int64_t, double>>
      oracle;
  for (const auto& e : events) {
    // Window starts may be negative for events near the epoch (the first
    // sliding windows straddle time zero).
    for (Timestamp start = (e.ts / slide) * slide;
         start > e.ts - width; start -= slide) {
      auto& agg_val = oracle[{start, std::to_string(e.user)}];
      agg_val.first += 1;
      agg_val.second += e.fare;
    }
  }
  ASSERT_EQ(results.size(), oracle.size());
  for (const auto& r : results) {
    auto it = oracle.find({r.window_start, r.entity_key});
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(r.values[0].int64_value(), it->second.first);
    EXPECT_NEAR(r.values[1].double_value(), it->second.second, 1e-6);
  }
}

TEST(StreamPipelineTest, MaterializesToBothStores) {
  OnlineStore online;
  OfflineStore offline;
  StreamPipelineOptions opt;
  opt.name = "trip_stats_1h";
  opt.event_schema = EventSchema();
  opt.entity_column = "user_id";
  opt.time_column = "ts";
  opt.window = {Hours(1), Hours(1)};
  opt.aggs = {{"trip_count", AggregateFn::kCount, ""},
              {"fare_mean", AggregateFn::kMean, "fare"}};
  auto pipeline = StreamPipeline::Create(opt, &online, &offline);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();

  auto schema = EventSchema();
  ASSERT_TRUE((*pipeline)->Ingest(Event(schema, 1, Minutes(10), 10.0)).ok());
  ASSERT_TRUE((*pipeline)->Ingest(Event(schema, 1, Minutes(20), 20.0)).ok());
  ASSERT_TRUE((*pipeline)->Flush(Hours(1)).ok());

  EXPECT_EQ((*pipeline)->rows_emitted(), 1u);
  // Online store has the materialized row.
  auto got = online.Get("trip_stats_1h", Value::Int64(1), Hours(1));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->ValueByName("trip_count").value(), Value::Int64(2));
  EXPECT_EQ(got->ValueByName("fare_mean").value(), Value::Double(15.0));
  // Offline store logged it too.
  auto table = offline.GetTable("trip_stats_1h").value();
  EXPECT_EQ(table->num_rows(), 1u);
  auto as_of = table->AsOf(Value::Int64(1), Hours(2));
  ASSERT_TRUE(as_of.ok());
  EXPECT_EQ(as_of->ValueByName("fare_mean").value(), Value::Double(15.0));
}

TEST(StreamPipelineTest, CreateRejectsDuplicates) {
  OnlineStore online;
  OfflineStore offline;
  StreamPipelineOptions opt;
  opt.name = "dup";
  opt.event_schema = EventSchema();
  opt.entity_column = "user_id";
  opt.time_column = "ts";
  opt.window = {Hours(1), Hours(1)};
  opt.aggs = {{"c", AggregateFn::kCount, ""}};
  ASSERT_TRUE(StreamPipeline::Create(opt, &online, &offline).ok());
  EXPECT_FALSE(StreamPipeline::Create(opt, &online, &offline).ok());
  EXPECT_FALSE(StreamPipeline::Create(opt, nullptr, &offline).ok());
}

TEST(StreamPipelineTest, StringEntityPipeline) {
  OnlineStore online;
  OfflineStore offline;
  auto schema = Schema::Create({{"driver", FeatureType::kString, false},
                                {"ts", FeatureType::kTimestamp, false},
                                {"speed", FeatureType::kDouble, true}})
                    .value();
  StreamPipelineOptions opt;
  opt.name = "driver_speed";
  opt.event_schema = schema;
  opt.entity_column = "driver";
  opt.time_column = "ts";
  opt.window = {Hours(1), Hours(1)};
  opt.aggs = {{"max_speed", AggregateFn::kMax, "speed"}};
  auto pipeline = StreamPipeline::Create(opt, &online, &offline).value();
  auto ev = [&](const std::string& d, Timestamp ts, double v) {
    return Row::Create(schema, {Value::String(d), Value::Time(ts),
                                Value::Double(v)})
        .value();
  };
  ASSERT_TRUE(pipeline->Ingest(ev("d-1", Minutes(5), 55.0)).ok());
  ASSERT_TRUE(pipeline->Ingest(ev("d-1", Minutes(6), 70.0)).ok());
  ASSERT_TRUE(pipeline->Flush(Hours(1)).ok());
  auto got = online.Get("driver_speed", Value::String("d-1"), Hours(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ValueByName("max_speed").value(), Value::Double(70.0));
}

}  // namespace
}  // namespace mlfs
