#include "embedding/quality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "embedding/compress.h"
#include "embedding/embedding_drift.h"

namespace mlfs {
namespace {

EmbeddingTablePtr RandomTable(const std::string& name, size_t n, size_t dim,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  std::vector<float> data;
  keys.reserve(n);
  data.reserve(n * dim);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("e" + std::to_string(i));
    for (size_t j = 0; j < dim; ++j) {
      data.push_back(static_cast<float>(rng.Gaussian()));
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  return EmbeddingTable::Create(metadata, keys, data, dim).value();
}

// Clustered table: key i belongs to cluster i % classes; vectors are the
// cluster center plus small noise.
EmbeddingTablePtr ClusteredTable(const std::string& name, size_t n,
                                 size_t dim, int classes, uint64_t seed,
                                 double noise = 0.2) {
  Rng rng(seed);
  std::vector<std::vector<float>> centers(classes, std::vector<float>(dim));
  Rng center_rng(999);  // Same centers across seeds.
  for (auto& c : centers) {
    for (auto& x : c) x = static_cast<float>(center_rng.Gaussian(0, 3));
  }
  std::vector<std::string> keys;
  std::vector<float> data;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("e" + std::to_string(i));
    const auto& c = centers[i % classes];
    for (size_t j = 0; j < dim; ++j) {
      data.push_back(c[j] + static_cast<float>(rng.Gaussian(0, noise)));
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  return EmbeddingTable::Create(metadata, keys, data, dim).value();
}

TEST(NeighborStabilityTest, IdenticalTablesFullyStable) {
  auto table = RandomTable("a", 100, 8, 1);
  auto report = NeighborStability(*table, *table, 5).value();
  EXPECT_DOUBLE_EQ(report.mean_overlap, 1.0);
  EXPECT_DOUBLE_EQ(report.min_overlap, 1.0);
  EXPECT_EQ(report.keys_compared, 100u);
}

TEST(NeighborStabilityTest, IndependentTablesUnstable) {
  auto a = RandomTable("a", 200, 8, 1);
  auto b = RandomTable("a", 200, 8, 2);
  auto report = NeighborStability(*a, *b, 5).value();
  EXPECT_LT(report.mean_overlap, 0.3);
}

TEST(NeighborStabilityTest, SmallNoisePartiallyStable) {
  auto a = ClusteredTable("a", 200, 8, 5, 1, 0.1);
  auto b = ClusteredTable("a", 200, 8, 5, 2, 0.1);  // Same structure, new noise.
  auto random = RandomTable("a", 200, 8, 3);
  double structured = NeighborStability(*a, *b, 10).value().mean_overlap;
  double unstructured = NeighborStability(*a, *random, 10).value().mean_overlap;
  EXPECT_GT(structured, unstructured + 0.2);
}

TEST(NeighborStabilityTest, Validation) {
  auto a = RandomTable("a", 5, 4, 1);
  EXPECT_FALSE(NeighborStability(*a, *a, 0).ok());
  EXPECT_FALSE(NeighborStability(*a, *a, 10).ok());  // Too few keys.
  auto b = RandomTable("b", 5, 4, 2);  // Same keys though ("e0"... "e4").
  EXPECT_TRUE(NeighborStability(*a, *b, 2).ok());
}

TEST(EigenspaceOverlapTest, SelfOverlapIsOne) {
  auto table = RandomTable("a", 100, 8, 1);
  EXPECT_NEAR(EigenspaceOverlapScore(*table, *table).value(), 1.0, 1e-9);
}

TEST(EigenspaceOverlapTest, RotationPreservesOverlap) {
  // Rotate every vector by a fixed 2D rotation in dims (0,1): span changes
  // predictably; full-dim rotation of the *feature space* preserves span
  // only if applied to columns... here we apply an orthogonal map to the
  // feature axes, which preserves the column span dimension and EOS stays
  // high because the subspace spanned in R^n is unchanged.
  auto table = RandomTable("a", 120, 6, 2);
  // Column-mix: new_x = x * R with R orthogonal => span(columns) in R^n
  // unchanged.
  const double theta = 0.7;
  std::vector<float> rotated = table->raw();
  for (size_t i = 0; i < table->size(); ++i) {
    float* row = rotated.data() + i * table->dim();
    float x0 = row[0], x1 = row[1];
    row[0] = static_cast<float>(std::cos(theta) * x0 -
                                std::sin(theta) * x1);
    row[1] = static_cast<float>(std::sin(theta) * x0 +
                                std::cos(theta) * x1);
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "rotated";
  auto rotated_table =
      table->WithVectors(metadata, std::move(rotated), table->dim()).value();
  EXPECT_NEAR(EigenspaceOverlapScore(*table, *rotated_table).value(), 1.0,
              1e-6);
}

TEST(EigenspaceOverlapTest, IndependentSubspacesLowOverlap) {
  // Table A varies only in dims 0-2; table B only in dims 3-5.
  auto make = [](const std::string& name, size_t offset, uint64_t seed) {
    Rng rng(seed);
    std::vector<std::string> keys;
    std::vector<float> data;
    for (size_t i = 0; i < 100; ++i) {
      keys.push_back("e" + std::to_string(i));
      std::vector<float> v(6, 0.0f);
      for (size_t j = 0; j < 3; ++j) {
        v[offset + j] = static_cast<float>(rng.Gaussian());
      }
      data.insert(data.end(), v.begin(), v.end());
    }
    EmbeddingTableMetadata metadata;
    metadata.name = name;
    return EmbeddingTable::Create(metadata, keys, data, 6).value();
  };
  auto a = make("a", 0, 1);
  auto b = make("b", 3, 2);
  EXPECT_LT(EigenspaceOverlapScore(*a, *b).value(), 0.05);
}

TEST(EigenspaceOverlapTest, DecreasesWithCompressionSeverity) {
  auto table = RandomTable("a", 300, 16, 4);
  double last = 1.1;
  for (int bits : {8, 2, 1}) {
    auto compressed = QuantizeUniform(*table, bits).value();
    double eos = EigenspaceOverlapScore(*table, *compressed).value();
    EXPECT_LT(eos, last + 1e-9) << bits;
    EXPECT_GT(eos, 0.0);
    last = eos;
  }
}

DownstreamTask ClusterLabelTask(size_t n, int classes) {
  DownstreamTask task;
  for (size_t i = 0; i < n; ++i) {
    task.keys.push_back("e" + std::to_string(i));
    task.labels.push_back(static_cast<int>(i) % classes);
  }
  return task;
}

TEST(DownstreamInstabilityTest, IdenticalEmbeddingsZeroChurn) {
  auto table = ClusteredTable("a", 300, 8, 3, 1);
  auto task = ClusterLabelTask(300, 3);
  auto report = DownstreamInstability(*table, *table, task).value();
  EXPECT_DOUBLE_EQ(report.prediction_churn, 0.0);
  EXPECT_GT(report.accuracy_a, 0.9);
}

TEST(DownstreamInstabilityTest, RetrainedEmbeddingsChurnButStayAccurate) {
  auto a = ClusteredTable("a", 400, 8, 3, 1);
  auto b = ClusteredTable("a", 400, 8, 3, 2);  // "Retrained" (new noise).
  auto task = ClusterLabelTask(400, 3);
  auto report = DownstreamInstability(*a, *b, task).value();
  EXPECT_GT(report.accuracy_a, 0.9);
  EXPECT_GT(report.accuracy_b, 0.9);
  // Some churn, but bounded: most predictions agree.
  EXPECT_LT(report.prediction_churn, 0.2);
}

TEST(DownstreamInstabilityTest, UnrelatedEmbeddingsHighChurn) {
  auto a = ClusteredTable("a", 300, 8, 3, 1);
  auto b = RandomTable("a", 300, 8, 9);  // Structure destroyed.
  auto task = ClusterLabelTask(300, 3);
  auto report = DownstreamInstability(*a, *b, task).value();
  EXPECT_GT(report.prediction_churn, 0.2);
  EXPECT_GT(report.accuracy_a, report.accuracy_b);
}

TEST(MaterializeTaskTest, SkipsMissingKeys) {
  auto table = RandomTable("a", 10, 4, 1);
  DownstreamTask task;
  task.keys = {"e1", "missing", "e2"};
  task.labels = {0, 1, 1};
  auto data = MaterializeTask(task, *table).value();
  EXPECT_EQ(data.size(), 2u);
  task.keys = {"missing"};
  task.labels = {0};
  EXPECT_FALSE(MaterializeTask(task, *table).ok());
  task.labels = {0, 1};
  EXPECT_FALSE(MaterializeTask(task, *table).ok());  // Misaligned.
}

TEST(EmbeddingDriftTest, SelfIsStable) {
  auto table = ClusteredTable("a", 200, 8, 4, 1);
  auto report = CheckEmbeddingDrift(*table, *table).value();
  EXPECT_FALSE(report.drifted) << report.ToString();
  EXPECT_EQ(report.null_or_nan_cells, 0u);
  EXPECT_NEAR(report.mean_self_cosine, 1.0, 1e-6);
  EXPECT_NEAR(report.centroid_cosine, 1.0, 1e-6);
}

TEST(EmbeddingDriftTest, TabularMetricsMissRotationButChurnCatchesIt) {
  // Apply a random orthogonal-ish shuffle of dimensions + sign flips: every
  // per-cell statistic (norms!) is identical, but dot products between a
  // *fixed consumer* and the vectors change. Self-cosine catches it.
  auto table = ClusteredTable("a", 200, 8, 4, 1);
  std::vector<float> shuffled = table->raw();
  const size_t d = table->dim();
  for (size_t i = 0; i < table->size(); ++i) {
    float* row = shuffled.data() + i * d;
    std::reverse(row, row + d);      // Permute dims.
    for (size_t j = 0; j < d; j += 2) row[j] = -row[j];  // Sign flips.
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "rotated";
  auto rotated = table->WithVectors(metadata, std::move(shuffled), d).value();

  auto report = CheckEmbeddingDrift(*table, *rotated).value();
  // Tabular-style signals are blind: no NaNs, norm distribution unchanged.
  EXPECT_EQ(report.null_or_nan_cells, 0u);
  EXPECT_LT(report.norm_psi, 0.05);
  // Embedding-native signal fires.
  EXPECT_LT(report.mean_self_cosine, 0.5);
  EXPECT_TRUE(report.drifted) << report.ToString();
}

TEST(EmbeddingDriftTest, NanCellsAreCaught) {
  auto table = ClusteredTable("a", 50, 4, 2, 1);
  std::vector<float> broken = table->raw();
  broken[5] = std::nanf("");
  EmbeddingTableMetadata metadata;
  metadata.name = "broken";
  auto bad = table->WithVectors(metadata, std::move(broken), 4).value();
  auto report = CheckEmbeddingDrift(*table, *bad).value();
  EXPECT_EQ(report.null_or_nan_cells, 1u);
  EXPECT_TRUE(report.drifted);
}

}  // namespace
}  // namespace mlfs
