// Sealed-segment format suite: every column encoding round-trips through
// Encode -> FromBytes and Encode -> file -> FromFile (mmap); truncations,
// bit flips, and bad checksums anywhere in a blob must surface as Status
// errors — never a crash, hang, or out-of-bounds read; and failpoint-
// injected I/O faults during seal/compact/spill must leave the table fully
// readable.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/serde.h"
#include "storage/offline_store.h"
#include "storage/persistence.h"
#include "storage/segment.h"

namespace mlfs {
namespace {

std::string RowsBytes(const std::vector<Row>& rows) {
  Encoder enc;
  enc.PutVarint64(rows.size());
  for (const Row& row : rows) enc.PutRow(row);
  return enc.Release();
}

// A schema exercising every column encoding: dictionary (entity string +
// payload string), delta timestamps, raw64 int/double, bool bytes,
// float-list embeddings, and an all-NULL column.
SchemaPtr AllEncodingsSchema() {
  return Schema::Create({{"key", FeatureType::kString, false},
                         {"event_time", FeatureType::kTimestamp, false},
                         {"v_int", FeatureType::kInt64, true},
                         {"v_double", FeatureType::kDouble, true},
                         {"v_bool", FeatureType::kBool, true},
                         {"v_emb", FeatureType::kEmbedding, true},
                         {"v_null", FeatureType::kNull, true}})
      .value();
}

std::vector<Row> AllEncodingsRows(const SchemaPtr& schema, size_t n) {
  Rng rng(0x5e9);
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> vec(1 + i % 3);
    for (float& f : vec) f = static_cast<float>(rng.Gaussian());
    rows.push_back(
        Row::Create(
            schema,
            {Value::String("key_" + std::to_string(i % 7)),
             // Deliberately non-monotone: deltas go negative too.
             Value::Time(Hours(3) * static_cast<Timestamp>(rng.Uniform(8))),
             rng.Bernoulli(0.25) ? Value::Null()
                                 : Value::Int64(static_cast<int64_t>(i) -
                                                50),
             rng.Bernoulli(0.25) ? Value::Null()
                                 : Value::Double(rng.Gaussian()),
             rng.Bernoulli(0.25) ? Value::Null()
                                 : Value::Bool(rng.Bernoulli(0.5)),
             rng.Bernoulli(0.25) ? Value::Null()
                                 : Value::Embedding(std::move(vec)),
             Value::Null()})
            .value());
  }
  return rows;
}

std::vector<Row> MaterializeAll(const Segment& seg) {
  std::vector<int> all;
  for (size_t c = 0; c < seg.schema()->num_fields(); ++c) {
    all.push_back(static_cast<int>(c));
  }
  std::vector<Row> rows;
  for (size_t r = 0; r < seg.num_rows(); ++r) {
    std::vector<Value> values;
    seg.AppendProjected(r, all, &values);
    rows.push_back(Row::CreateUnsafe(seg.schema(), std::move(values)));
  }
  return rows;
}

TEST(SegmentFormatTest, AllEncodingsRoundTripBitExact) {
  const SchemaPtr schema = AllEncodingsSchema();
  const std::vector<Row> rows = AllEncodingsRows(schema, 64);
  auto encoded = Segment::Encode(schema, /*partition_id=*/0,
                                 /*entity_idx=*/0, /*time_idx=*/1, rows);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto seg = Segment::FromBytes(*encoded);
  ASSERT_TRUE(seg.ok()) << seg.status();
  EXPECT_EQ((*seg)->num_rows(), rows.size());
  EXPECT_FALSE((*seg)->spilled());
  // Bit-exact: NULL-ness, double bit patterns, embedding floats, the lot.
  EXPECT_EQ(RowsBytes(MaterializeAll(**seg)), RowsBytes(rows));
  // Per-row timestamp accessor agrees with the column.
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ((*seg)->ts(r), rows[r].value(1).time_value());
  }
}

TEST(SegmentFormatTest, MemoryMappedFileRoundTripsAndCleansUp) {
  const SchemaPtr schema = AllEncodingsSchema();
  const std::vector<Row> rows = AllEncodingsRows(schema, 48);
  auto encoded = Segment::Encode(schema, 0, 0, 1, rows);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "seg_roundtrip.seg")
          .string();
  ASSERT_TRUE(WriteFileAtomic(path, *encoded).ok());
  {
    auto seg = Segment::FromFile(path, /*remove_file_on_destroy=*/true);
    ASSERT_TRUE(seg.ok()) << seg.status();
    EXPECT_TRUE((*seg)->spilled());
    EXPECT_EQ(RowsBytes(MaterializeAll(**seg)), RowsBytes(rows));
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  // Scratch semantics: the file is removed with the last reference.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SegmentFormatTest, EncodeRejectsInvalidInput) {
  const SchemaPtr schema = AllEncodingsSchema();
  const std::vector<Row> rows = AllEncodingsRows(schema, 4);
  EXPECT_FALSE(Segment::Encode(nullptr, 0, 0, 1, rows).ok());
  EXPECT_FALSE(Segment::Encode(schema, 0, 0, 1, {}).ok());
  EXPECT_FALSE(Segment::Encode(schema, 0, 9, 1, rows).ok());   // Bad entity.
  EXPECT_FALSE(Segment::Encode(schema, 0, 0, 9, rows).ok());   // Bad time.
  EXPECT_FALSE(Segment::Encode(schema, 0, 0, 0, rows).ok());   // Not a ts.
}

// Every truncation length must fail cleanly: the blob carries its body
// length and whole-body checksum up front, so no prefix can validate.
TEST(SegmentCorruptionTest, EveryTruncationFailsCleanly) {
  const SchemaPtr schema = AllEncodingsSchema();
  auto encoded =
      Segment::Encode(schema, 0, 0, 1, AllEncodingsRows(schema, 32));
  ASSERT_TRUE(encoded.ok());
  const std::string& blob = *encoded;
  // Dense sweep over the small prefixes (header machinery) plus a strided
  // sweep across the body.
  for (size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 37)) {
    auto seg = Segment::FromBytes(blob.substr(0, len));
    EXPECT_FALSE(seg.ok()) << "truncation at " << len << " parsed";
  }
}

// Every single-bit flip must either fail validation or (never) crash. The
// whole-body hash makes "either" an "always fails" in practice; assert
// that directly.
TEST(SegmentCorruptionTest, BitFlipsAnywhereAreDetected) {
  const SchemaPtr schema = AllEncodingsSchema();
  auto encoded =
      Segment::Encode(schema, 0, 0, 1, AllEncodingsRows(schema, 16));
  ASSERT_TRUE(encoded.ok());
  const std::string& blob = *encoded;
  Rng rng(0xb17);
  // Exhaustive over bytes, random bit within the byte (8x cheaper than
  // exhaustive bits with the same byte coverage).
  for (size_t pos = 0; pos < blob.size(); ++pos) {
    std::string corrupt = blob;
    corrupt[pos] = static_cast<char>(
        static_cast<unsigned char>(corrupt[pos]) ^
        static_cast<unsigned char>(1u << rng.Uniform(8)));
    auto seg = Segment::FromBytes(std::move(corrupt));
    EXPECT_FALSE(seg.ok()) << "bit flip at byte " << pos << " parsed";
  }
}

TEST(SegmentCorruptionTest, CorruptFileFailsViaStatusNotUb) {
  const SchemaPtr schema = AllEncodingsSchema();
  auto encoded =
      Segment::Encode(schema, 0, 0, 1, AllEncodingsRows(schema, 32));
  ASSERT_TRUE(encoded.ok());
  std::string corrupt = *encoded;
  corrupt[corrupt.size() / 2] ^= 0x40;  // Flip a bit mid-body ("page").
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "seg_corrupt.seg")
          .string();
  ASSERT_TRUE(WriteFileAtomic(path, corrupt).ok());
  auto seg = Segment::FromFile(path, /*remove_file_on_destroy=*/false);
  EXPECT_FALSE(seg.ok());
  std::error_code ec;
  std::filesystem::remove(path, ec);
  // Missing file: clean error too.
  EXPECT_FALSE(
      Segment::FromFile("/nonexistent/dir/zzz.seg", false).ok());
}

// --- Fault injection on the maintenance paths ---------------------------

class SegmentFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    FailpointRegistry::Instance().Reseed(0x5e9f);
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

std::unique_ptr<OfflineTable> SmallColumnarTable(const std::string& spill_dir,
                                                 size_t budget) {
  OfflineTableOptions options;
  options.name = "faulty";
  options.schema = AllEncodingsSchema();
  options.entity_column = "key";
  options.time_column = "event_time";
  options.seal_rows = 8;
  options.compact_min_segments = 2;
  options.memory_budget_bytes = budget;
  options.spill_dir = spill_dir;
  return OfflineTable::Create(options).value();
}

TEST_F(SegmentFaultTest, SealCompactSpillFaultsLeaveTableReadable) {
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_fault_spill")
          .string();
  auto table = SmallColumnarTable(spill_dir, 1024);
  const std::vector<Row> rows =
      AllEncodingsRows(AllEncodingsSchema(), 100);
  // Schemas from two Schema::Create calls compare equal; rebuild rows on
  // the table's schema to keep append cheap.
  std::vector<Row> on_schema;
  for (const Row& row : rows) {
    on_schema.push_back(
        Row::Create(table->options().schema, row.values()).value());
  }
  ASSERT_TRUE(table->AppendBatch(on_schema).ok());
  const std::string before = RowsBytes(table->Scan());
  const size_t rows_before = table->num_rows();

  for (const char* failpoint :
       {"offline_store.seal", "offline_store.compact",
        "offline_store.spill"}) {
    FailpointConfig config;
    config.status = Status::Internal("injected I/O fault");
    ScopedFailpoint fp(failpoint, config);
    EXPECT_FALSE(table->RunMaintenance().ok()) << failpoint;
    // The fault must not have lost, duplicated, or reordered anything.
    EXPECT_EQ(table->num_rows(), rows_before) << failpoint;
    EXPECT_EQ(RowsBytes(table->Scan()), before) << failpoint;
  }
  // Faults on the file-write path during spill: the resident segment must
  // simply stay resident.
  {
    FailpointConfig config;
    config.status = Status::Internal("injected write fault");
    ScopedFailpoint fp("persistence.write", config);
    EXPECT_FALSE(table->RunMaintenance().ok());
    EXPECT_EQ(RowsBytes(table->Scan()), before);
    EXPECT_EQ(table->storage_stats().spilled_segments, 0u);
  }
  // Faults while (re)opening the spilled file: same guarantee.
  {
    FailpointConfig config;
    config.status = Status::Internal("injected open fault");
    ScopedFailpoint fp("segment.open", config);
    EXPECT_FALSE(table->RunMaintenance().ok());
    EXPECT_EQ(RowsBytes(table->Scan()), before);
    EXPECT_EQ(table->storage_stats().spilled_segments, 0u);
  }
  // With the faults gone, maintenance completes and the data is unchanged.
  ASSERT_TRUE(table->RunMaintenance().ok());
  EXPECT_GT(table->storage_stats().spilled_segments, 0u);
  EXPECT_EQ(RowsBytes(table->Scan()), before);
  table.reset();
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

// Background maintenance absorbs injected faults (counted, not fatal) and
// the table keeps serving identical data throughout.
TEST_F(SegmentFaultTest, BackgroundMaintenanceSurvivesFaults) {
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_bg_fault")
          .string();
  auto table = SmallColumnarTable(spill_dir, 1024);
  std::vector<Row> rows;
  {
    const SchemaPtr& schema = table->options().schema;
    for (const Row& row : AllEncodingsRows(schema, 64)) {
      rows.push_back(Row::Create(schema, row.values()).value());
    }
  }
  ASSERT_TRUE(table->AppendBatch(rows).ok());
  const std::string before = RowsBytes(table->Scan());

  FailpointConfig config;
  config.status = Status::Internal("injected fault");
  config.probability = 0.5;
  ScopedFailpoint fp("offline_store.seal", config);
  ASSERT_TRUE(table->StartMaintenance(/*period_millis=*/1).ok());
  EXPECT_FALSE(table->StartMaintenance(1).ok());  // Already running.
  while (table->storage_stats().maintenance_errors < 2) {
    EXPECT_EQ(RowsBytes(table->Scan()), before);
  }
  table->StopMaintenance();
  table->StopMaintenance();  // Idempotent.
  EXPECT_EQ(RowsBytes(table->Scan()), before);
  table.reset();
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

// A corrupted embedded segment inside a table snapshot is rejected as
// Corruption (the segment checksums travel with the snapshot).
TEST_F(SegmentFaultTest, CorruptSnapshotSegmentRejected) {
  auto table = SmallColumnarTable("", 0);
  std::vector<Row> rows;
  {
    const SchemaPtr& schema = table->options().schema;
    for (const Row& row : AllEncodingsRows(schema, 40)) {
      rows.push_back(Row::Create(schema, row.values()).value());
    }
  }
  ASSERT_TRUE(table->AppendBatch(rows).ok());
  ASSERT_TRUE(table->SealHeads().ok());
  std::string snapshot = table->Snapshot();
  ASSERT_GT(table->storage_stats().sealed_segments, 0u);
  // Flip one bit deep in the payload (inside the first embedded segment).
  snapshot[snapshot.size() / 2] ^= 0x10;
  auto restored = OfflineTable::FromSnapshot(snapshot);
  EXPECT_FALSE(restored.ok());
}

// --- Compaction policy + spilled-segment readahead ----------------------

// Size-tiered maintenance merges only the run of similarly-sized segments
// (the big segment is left alone), while explicit CompactPartitions()
// still collapses everything; the rows themselves never change.
TEST(CompactionPolicyTest, SizeTieredMergesPeersAndLeavesTheBigSegment) {
  OfflineTableOptions options;
  options.name = "size_tiered";
  options.schema = AllEncodingsSchema();
  options.entity_column = "key";
  options.time_column = "event_time";
  options.seal_rows = 512;  // Above any append: only SealHeads() seals.
  options.compact_min_segments = 3;
  options.compaction_policy = CompactionPolicy::kSizeTiered;
  auto table = OfflineTable::Create(options).value();
  const SchemaPtr& schema = table->options().schema;

  // One big segment (a higher log2-size bucket than the small ones)...
  ASSERT_TRUE(table->AppendBatch(AllEncodingsRows(schema, 256)).ok());
  ASSERT_TRUE(table->SealHeads().ok());
  // ...then a run of three small peers.
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(table->AppendBatch(AllEncodingsRows(schema, 8)).ok());
    ASSERT_TRUE(table->SealHeads().ok());
  }
  ASSERT_EQ(table->storage_stats().sealed_segments, 4u);
  const std::string before = RowsBytes(table->Scan());

  ASSERT_TRUE(table->RunMaintenance().ok());
  EXPECT_EQ(table->storage_stats().sealed_segments, 2u);
  EXPECT_EQ(RowsBytes(table->Scan()), before);

  // Two segments in different buckets: below compact_min_segments, so
  // maintenance leaves them; the explicit full merge still works.
  ASSERT_TRUE(table->RunMaintenance().ok());
  EXPECT_EQ(table->storage_stats().sealed_segments, 2u);
  ASSERT_TRUE(table->CompactPartitions().ok());
  EXPECT_EQ(table->storage_stats().sealed_segments, 1u);
  EXPECT_EQ(RowsBytes(table->Scan()), before);
}

// When every neighbor pair sits in a different bucket the policy must
// still make progress (smallest adjacent pair) or partitions would
// fragment forever under a steady small-seal workload.
TEST(CompactionPolicyTest, SizeTieredFallsBackToSmallestAdjacentPair) {
  OfflineTableOptions options;
  options.name = "fallback";
  options.schema = AllEncodingsSchema();
  options.entity_column = "key";
  options.time_column = "event_time";
  options.seal_rows = 512;  // Above any append: only SealHeads() seals.
  options.compact_min_segments = 2;
  options.compaction_policy = CompactionPolicy::kSizeTiered;
  auto table = OfflineTable::Create(options).value();
  const SchemaPtr& schema = table->options().schema;

  for (size_t rows : {256, 8}) {  // Two segments, two distinct buckets.
    ASSERT_TRUE(table->AppendBatch(AllEncodingsRows(schema, rows)).ok());
    ASSERT_TRUE(table->SealHeads().ok());
  }
  ASSERT_EQ(table->storage_stats().sealed_segments, 2u);
  const std::string before = RowsBytes(table->Scan());
  ASSERT_TRUE(table->RunMaintenance().ok());
  EXPECT_EQ(table->storage_stats().sealed_segments, 1u);
  EXPECT_EQ(RowsBytes(table->Scan()), before);
}

// AsOfBatch over spilled segments issues prefetches for the segments the
// gather cursor will reach next; every prefetch completes before the call
// returns and the answers match the unprefetched AsOf path.
TEST(SpilledReadaheadTest, AsOfBatchPrefetchesSpilledSegments) {
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_ra_spill")
          .string();
  OfflineTableOptions options;
  options.name = "readahead";
  options.schema = AllEncodingsSchema();
  options.entity_column = "key";
  options.time_column = "event_time";
  options.seal_rows = 512;  // Above any append: only SealHeads() seals.
  options.compact_min_segments = 100;  // Keep the segments distinct.
  options.memory_budget_bytes = 1;     // Spill everything.
  options.spill_dir = spill_dir;
  options.readahead.enabled = true;
  options.readahead.max_in_flight = 2;
  auto table = OfflineTable::Create(options).value();
  const SchemaPtr& schema = table->options().schema;

  // Three segments with disjoint key prefixes, so a key-sorted request
  // batch walks them one after another — the readahead pipeline shape.
  for (const char* prefix : {"a_", "b_", "c_"}) {
    std::vector<Row> rows;
    for (const Row& row : AllEncodingsRows(schema, 16)) {
      std::vector<Value> values(row.values().begin(), row.values().end());
      values[0] = Value::String(prefix + values[0].string_value());
      rows.push_back(Row::Create(schema, values).value());
    }
    ASSERT_TRUE(table->AppendBatch(rows).ok());
    ASSERT_TRUE(table->SealHeads().ok());
  }
  ASSERT_TRUE(table->RunMaintenance().ok());
  ASSERT_EQ(table->storage_stats().spilled_segments, 3u);

  std::vector<std::string> keys;
  for (const char* prefix : {"a_", "b_", "c_"}) {
    for (int k = 0; k < 7; ++k) {
      keys.push_back(std::string(prefix) + "key_" + std::to_string(k));
    }
  }
  std::vector<AsOfRequest> requests;
  for (const std::string& key : keys) {
    requests.push_back({key, Hours(24)});
  }
  std::vector<Row> results(requests.size());
  ASSERT_TRUE(table->AsOfBatch(requests, results).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto want = table->AsOf(Value::String(keys[i]), Hours(24));
    ASSERT_TRUE(want.ok()) << keys[i];
    ASSERT_NE(results[i].schema(), nullptr) << keys[i];
    EXPECT_EQ(RowsBytes({results[i]}), RowsBytes({*want})) << keys[i];
  }

  const ReadaheadStats ra = table->storage_stats().readahead;
  EXPECT_GE(ra.issued, 1u);
  EXPECT_EQ(ra.issued, ra.completed);  // All consumed before returning.
  EXPECT_GE(ra.hits, 1u);
  EXPECT_EQ(ra.in_flight, 0u);

  table.reset();
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

}  // namespace
}  // namespace mlfs
