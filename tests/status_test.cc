#include "common/status.h"

#include <gtest/gtest.h>

namespace mlfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("too big");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  MLFS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
}

Status UseReturnIfError(bool fail) {
  MLFS_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace mlfs
