#include "storage/cell_map.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/schema.h"
#include "common/value.h"

namespace mlfs {
namespace {

OnlineCell MakeCell(double v, Timestamp event_time = 1) {
  static SchemaPtr schema =
      Schema::Create({{"v", FeatureType::kDouble, true}}).value();
  OnlineCell cell;
  cell.row = Row::CreateUnsafe(schema, {Value::Double(v)});
  cell.event_time = event_time;
  cell.write_time = event_time;
  cell.expires_at = kMaxTimestamp;
  return cell;
}

uint64_t H(const std::string& key) { return HashBytes(key); }

TEST(CellMapTest, InsertFindErase) {
  CellMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(H("a"), "a"), nullptr);

  auto [cell, inserted] = map.Insert(H("a"), "a", MakeCell(1.0));
  EXPECT_TRUE(inserted);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(map.size(), 1u);

  const OnlineCell* found = map.Find(H("a"), "a");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->row.value(0).double_value(), 1.0);
  EXPECT_EQ(map.Find(H("b"), "b"), nullptr);

  EXPECT_TRUE(map.Erase(H("a"), "a"));
  EXPECT_FALSE(map.Erase(H("a"), "a"));
  EXPECT_EQ(map.Find(H("a"), "a"), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(CellMapTest, DuplicateInsertKeepsExistingCell) {
  CellMap map;
  map.Insert(H("k"), "k", MakeCell(1.0));
  auto [cell, inserted] = map.Insert(H("k"), "k", MakeCell(2.0));
  EXPECT_FALSE(inserted);
  EXPECT_EQ(cell->row.value(0).double_value(), 1.0);  // Untouched.
  EXPECT_EQ(map.size(), 1u);
}

TEST(CellMapTest, GrowsPastInitialCapacityAndKeepsAllEntries) {
  CellMap map;
  constexpr int kN = 10000;  // Forces many rehashes.
  for (int i = 0; i < kN; ++i) {
    std::string key = "key" + std::to_string(i);
    auto [cell, inserted] = map.Insert(H(key), key, MakeCell(i));
    ASSERT_TRUE(inserted) << key;
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    std::string key = "key" + std::to_string(i);
    const OnlineCell* cell = map.Find(H(key), key);
    ASSERT_NE(cell, nullptr) << key;
    EXPECT_EQ(cell->row.value(0).double_value(), static_cast<double>(i));
  }
}

TEST(CellMapTest, TombstonesDoNotBreakProbeChainsOrLeak) {
  CellMap map;
  // Insert / erase in waves so probe chains repeatedly cross tombstones
  // and the same-size tombstone sweep triggers.
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 500; ++i) {
      std::string key = "w" + std::to_string(wave) + "_" + std::to_string(i);
      ASSERT_TRUE(map.Insert(H(key), key, MakeCell(i)).second);
    }
    for (int i = 0; i < 500; i += 2) {
      std::string key = "w" + std::to_string(wave) + "_" + std::to_string(i);
      ASSERT_TRUE(map.Erase(H(key), key));
    }
  }
  EXPECT_EQ(map.size(), 20u * 250u);
  // Every odd key from every wave must still be reachable.
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 1; i < 500; i += 2) {
      std::string key = "w" + std::to_string(wave) + "_" + std::to_string(i);
      ASSERT_NE(map.Find(H(key), key), nullptr) << key;
    }
  }
}

TEST(CellMapTest, TombstoneSlotIsReusedByLaterInsert) {
  CellMap map;
  map.Insert(H("x"), "x", MakeCell(1.0));
  map.Erase(H("x"), "x");
  auto [cell, inserted] = map.Insert(H("x"), "x", MakeCell(2.0));
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(H("x"), "x")->row.value(0).double_value(), 2.0);
}

TEST(CellMapTest, ReservedTagHashesStillWork) {
  // Hashes 0 and 1 collide with the empty/tombstone tags and must be
  // remapped internally; both insert and find must agree on the remap.
  CellMap map;
  ASSERT_TRUE(map.Insert(0, "zero", MakeCell(0.0)).second);
  ASSERT_TRUE(map.Insert(1, "one", MakeCell(1.0)).second);
  ASSERT_TRUE(map.Insert(2, "two", MakeCell(2.0)).second);
  EXPECT_EQ(map.Find(0, "zero")->row.value(0).double_value(), 0.0);
  EXPECT_EQ(map.Find(1, "one")->row.value(0).double_value(), 1.0);
  EXPECT_EQ(map.Find(2, "two")->row.value(0).double_value(), 2.0);
  EXPECT_TRUE(map.Erase(1, "one"));
  EXPECT_EQ(map.Find(1, "one"), nullptr);
  EXPECT_EQ(map.Find(0, "zero")->row.value(0).double_value(), 0.0);
}

TEST(CellMapTest, SameHashDifferentKeysBothResident) {
  // Full-hash collisions must fall back to key comparison.
  CellMap map;
  ASSERT_TRUE(map.Insert(42, "alpha", MakeCell(1.0)).second);
  ASSERT_TRUE(map.Insert(42, "beta", MakeCell(2.0)).second);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.Find(42, "alpha")->row.value(0).double_value(), 1.0);
  EXPECT_EQ(map.Find(42, "beta")->row.value(0).double_value(), 2.0);
  EXPECT_EQ(map.Find(42, "gamma"), nullptr);
  EXPECT_TRUE(map.Erase(42, "alpha"));
  EXPECT_EQ(map.Find(42, "alpha"), nullptr);
  EXPECT_EQ(map.Find(42, "beta")->row.value(0).double_value(), 2.0);
}

TEST(CellMapTest, ForEachVisitsEveryLiveEntryOnce) {
  CellMap map;
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    map.Insert(H(key), key, MakeCell(i));
  }
  map.Erase(H("k7"), "k7");
  std::set<std::string> seen;
  map.ForEach([&](const std::string& key, const OnlineCell&) {
    EXPECT_TRUE(seen.insert(key).second) << "visited twice: " << key;
  });
  EXPECT_EQ(seen.size(), 99u);
  EXPECT_EQ(seen.count("k7"), 0u);
}

TEST(CellMapTest, EraseIfRemovesMatchesAndReportsCount) {
  CellMap map;
  for (int i = 0; i < 50; ++i) {
    std::string key = "k" + std::to_string(i);
    map.Insert(H(key), key, MakeCell(i, /*event_time=*/i));
  }
  size_t erased = map.EraseIf([](const std::string&, const OnlineCell& cell) {
    return cell.event_time % 2 == 0;
  });
  EXPECT_EQ(erased, 25u);
  EXPECT_EQ(map.size(), 25u);
  for (int i = 0; i < 50; ++i) {
    std::string key = "k" + std::to_string(i);
    EXPECT_EQ(map.Find(H(key), key) != nullptr, i % 2 == 1) << key;
  }
}

TEST(CellMapTest, PrefetchCandidatePipelineMatchesFind) {
  CellMap map;
  map.PrefetchBucket(123);  // Empty map: must not crash.
  EXPECT_EQ(map.PrefetchCandidate(123), CellMap::kNoCandidate);
  map.PrefetchRowAt(CellMap::kNoCandidate);
  EXPECT_EQ(map.FindFrom(CellMap::kNoCandidate, 123, "a"), nullptr);

  for (int i = 0; i < 1000; ++i) {
    std::string key = "k" + std::to_string(i);
    map.Insert(H(key), key, MakeCell(i));
  }
  // The staged pipeline (candidate -> row prefetch -> confirm) must agree
  // with plain Find for both present and absent keys.
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(i);
    map.PrefetchBucket(H(key));
    int64_t cand = map.PrefetchCandidate(H(key));
    map.PrefetchRowAt(cand);
    const OnlineCell* staged = map.FindFrom(cand, H(key), key);
    EXPECT_EQ(staged, map.Find(H(key), key)) << key;
    if (i < 1000) {
      ASSERT_NE(staged, nullptr) << key;
      EXPECT_EQ(staged->row.value(0).double_value(), static_cast<double>(i));
    } else {
      EXPECT_EQ(staged, nullptr) << key;
    }
  }
}

TEST(CellMapTest, FindFromContinuesPastHashTagFalsePositive) {
  // Two keys with the same full hash: the candidate for one may land on
  // the other's slot; FindFrom must keep probing to the right entry.
  CellMap map;
  map.Insert(7, "first", MakeCell(1.0));
  map.Insert(7, "second", MakeCell(2.0));
  int64_t cand = map.PrefetchCandidate(7);
  ASSERT_NE(cand, CellMap::kNoCandidate);
  EXPECT_EQ(map.FindFrom(cand, 7, "first")->row.value(0).double_value(), 1.0);
  EXPECT_EQ(map.FindFrom(cand, 7, "second")->row.value(0).double_value(), 2.0);
  EXPECT_EQ(map.FindFrom(cand, 7, "third"), nullptr);
}

}  // namespace
}  // namespace mlfs
