#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "core/feature_store.h"
#include "embedding/ann.h"
#include "embedding/compress.h"
#include "embedding/embedding_table.h"
#include "embedding/tier.h"

namespace mlfs {
namespace {

bool BitEqual(const float* a, const float* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(float)) == 0;
}

std::vector<float> GaussianData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * dim);
  for (float& x : data) x = static_cast<float>(rng.Gaussian());
  return data;
}

std::vector<std::string> Keys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back("k" + std::to_string(i));
  return keys;
}

class TieredEmbeddingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("mlfs_tier_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    FailpointRegistry::Instance().DisarmAll();
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  EmbeddingTierOptions TierOptions(size_t budget_bytes, int bits = 8,
                                   size_t block_rows = 64,
                                   bool readahead = false) {
    EmbeddingTierOptions options;
    options.memory_budget_bytes = budget_bytes;
    options.bits = bits;
    options.block_rows = block_rows;
    options.dir = dir_;
    if (readahead) {
      options.readahead.enabled = true;
      options.readahead.threads = 2;
      options.readahead.max_in_flight = 4;
    }
    return options;
  }

  EmbeddingTablePtr ResidentTable(const std::string& name, size_t n,
                                  size_t dim, uint64_t seed = 1) {
    EmbeddingTableMetadata metadata;
    metadata.name = name;
    return EmbeddingTable::Create(metadata, Keys(n),
                                  GaussianData(n, dim, seed), dim)
        .value();
  }

  std::string dir_;
};

TEST_F(TieredEmbeddingTest, HotRowsExactColdRowsMatchPackedCodec) {
  const size_t n = 640, dim = 8, block_rows = 64;
  auto source = ResidentTable("emb", n, dim);
  // Budget for exactly 5 of the 10 blocks.
  const size_t budget = 5 * block_rows * dim * sizeof(float);
  auto tiered =
      EmbeddingTable::CreateTiered(*source, TierOptions(budget, 8, block_rows))
          .value();
  ASSERT_TRUE(tiered->tiered());
  EXPECT_FALSE(source->tiered());
  EXPECT_EQ(tiered->tier()->stats().hot_blocks, 5u);
  EXPECT_EQ(tiered->tier()->stats().total_blocks, 10u);
  EXPECT_GT(tiered->tier()->stats().packed_bytes, 0u);

  // What the cold tier must serve: exactly the packed codec round trip.
  PackedCodes packed =
      PackUniform(source->raw().data(), n, dim, 8).value();
  PackedDecodeTables tables = MakeDecodeTables(8, packed.lo, packed.hi);
  std::vector<float> dequantized(n * dim);
  DequantizeRange(ViewOf(packed, tables), 0, n, dequantized.data());

  std::vector<float> got(dim);
  for (size_t i = 0; i < n; ++i) {
    tiered->CopyRow(i, got.data());
    if (i < 5 * block_rows) {
      EXPECT_TRUE(BitEqual(got.data(), source->row(i), dim))
          << "hot row " << i << " must be byte-identical";
    } else {
      EXPECT_TRUE(BitEqual(got.data(), dequantized.data() + i * dim, dim))
          << "cold row " << i << " must serve the packed codec's floats";
    }
  }
}

TEST_F(TieredEmbeddingTest, AllHotTableKeepsExactGetContracts) {
  const size_t n = 200, dim = 6;
  auto source = ResidentTable("emb", n, dim);
  // block_rows divides n so the budget covers every block exactly — a
  // partial trailing block would stay cold and rotate the seeds out.
  auto tiered = EmbeddingTable::CreateTiered(
                    *source, TierOptions(n * dim * sizeof(float), 8, 50))
                    .value();
  ASSERT_EQ(tiered->tier()->stats().hot_blocks,
            tiered->tier()->stats().total_blocks);
  for (size_t i = 0; i < n; ++i) {
    const float* got = tiered->Get(tiered->key(i)).value();
    EXPECT_TRUE(BitEqual(got, source->row(i), dim)) << i;
  }
  EXPECT_TRUE(tiered->Get("nope").status().IsNotFound());
  EXPECT_EQ(tiered->GetVector("k3").value(), source->GetVector("k3").value());

  auto rows = tiered->MultiGet({"k7", "missing", "k0", "k7"});
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1], nullptr);
  EXPECT_TRUE(BitEqual(rows[0], source->row(7), dim));
  EXPECT_TRUE(BitEqual(rows[2], source->row(0), dim));
  EXPECT_EQ(rows[3], rows[0]);
  EXPECT_TRUE(tiered->MultiGet({}).empty());
}

TEST_F(TieredEmbeddingTest, PromotionAndDemotionCounters) {
  const size_t n = 256, dim = 4, block_rows = 64;  // 4 blocks.
  auto source = ResidentTable("emb", n, dim);
  auto tiered = EmbeddingTable::CreateTiered(
                    *source,
                    TierOptions(block_rows * dim * sizeof(float), 8,
                                block_rows))
                    .value();
  const EmbeddingTier* tier = tiered->tier();
  EXPECT_EQ(tier->stats().hot_blocks, 1u);
  EXPECT_EQ(tier->stats().hot_limit_blocks, 1u);

  // Hot hit in the seeded block 0.
  ASSERT_TRUE(tiered->Get("k0").ok());
  EmbeddingTierStats stats = tier->stats();
  EXPECT_EQ(stats.hot_hits, 1u);
  EXPECT_EQ(stats.cold_misses, 0u);

  // Cold read in block 2: miss, promote, and demote block 0 (budget 1).
  ASSERT_TRUE(tiered->Get("k130").ok());
  stats = tier->stats();
  EXPECT_EQ(stats.cold_misses, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.demotions, 1u);
  EXPECT_EQ(stats.hot_blocks, 1u);

  // Same row again: now a hot hit.
  ASSERT_TRUE(tiered->Get("k130").ok());
  EXPECT_EQ(tier->stats().hot_hits, 2u);

  // Demoted row serves dequantized values from here on.
  std::vector<float> got(dim);
  tiered->CopyRow(0, got.data());
  PackedCodes packed = PackUniform(source->raw().data(), n, dim, 8).value();
  PackedDecodeTables tables = MakeDecodeTables(8, packed.lo, packed.hi);
  std::vector<float> expect(dim);
  DequantizeRange(ViewOf(packed, tables), 0, 1, expect.data());
  EXPECT_TRUE(BitEqual(got.data(), expect.data(), dim));
}

TEST_F(TieredEmbeddingTest, BatchPromotionCountsBlocksNotRows) {
  const size_t n = 256, dim = 4, block_rows = 64;
  auto source = ResidentTable("emb", n, dim);
  auto tiered = EmbeddingTable::CreateTiered(
                    *source,
                    TierOptions(2 * block_rows * dim * sizeof(float), 8,
                                block_rows))
                    .value();
  // 10 rows from cold block 3 plus 3 rows from hot block 0, one batch:
  // one promotion (block-granular), per-row hit/miss counters.
  std::vector<std::string> batch;
  for (int i = 0; i < 10; ++i) batch.push_back("k" + std::to_string(192 + i));
  for (int i = 0; i < 3; ++i) batch.push_back("k" + std::to_string(i));
  auto rows = tiered->MultiGet(batch);
  for (const float* row : rows) ASSERT_NE(row, nullptr);
  EmbeddingTierStats stats = tiered->tier()->stats();
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.cold_misses, 10u);
  EXPECT_EQ(stats.hot_hits, 3u);
  // Promoting block 3 under a 2-block budget demotes the stale seed
  // (block 1 — block 0 was touched by this batch).
  EXPECT_EQ(stats.hot_blocks, 2u);
  EXPECT_EQ(stats.demotions, 1u);
  // Values: hot rows exact.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(BitEqual(rows[10 + i], source->row(i), dim));
  }
}

TEST_F(TieredEmbeddingTest, ScansRefreshButNeverPromote) {
  const size_t n = 256, dim = 4, block_rows = 64;
  auto source = ResidentTable("emb", n, dim);
  auto tiered = EmbeddingTable::CreateTiered(
                    *source,
                    TierOptions(block_rows * dim * sizeof(float), 8,
                                block_rows))
                    .value();
  std::vector<float> scanned(n * dim, 0.0f);
  ASSERT_TRUE(tiered->tier()
                  ->ScanBlocks([&](size_t row0, size_t nrows,
                                   const float* rows) {
                    std::memcpy(scanned.data() + row0 * dim, rows,
                                nrows * dim * sizeof(float));
                  })
                  .ok());
  EmbeddingTierStats stats = tiered->tier()->stats();
  EXPECT_EQ(stats.scans, 1u);
  EXPECT_EQ(stats.scan_cold_blocks, 3u);
  EXPECT_EQ(stats.hot_blocks, 1u);  // A scan must not grow the hot set.
  EXPECT_EQ(stats.promotions, 0u);
  // The scan saw exactly what CopyRow serves.
  std::vector<float> expect(dim);
  for (size_t i = 0; i < n; ++i) {
    tiered->CopyRow(i, expect.data());
    EXPECT_TRUE(BitEqual(scanned.data() + i * dim, expect.data(), dim)) << i;
  }
}

TEST_F(TieredEmbeddingTest, CreateRejectsOverflowingDim) {
  // keys.size() * dim wraps size_t to exactly vectors.size(): the old
  // multiply-based check accepted this and served wild pointers.
  EmbeddingTableMetadata metadata;
  metadata.name = "overflow";
  const size_t huge = (size_t{1} << 63) + 1;
  auto table = EmbeddingTable::Create(metadata, {"a", "b"}, {1.0f, 2.0f},
                                      huge);
  EXPECT_FALSE(table.ok());
}

TEST_F(TieredEmbeddingTest, SpillFailpointDegradesToResident) {
  EmbeddingTierPolicy policy;
  policy.memory_budget_bytes = 1024;  // Forces tiering of any real table.
  policy.spill_dir = dir_;
  policy.block_rows = 64;
  EmbeddingStore store(nullptr, policy);
  auto table = ResidentTable("emb", 512, 8);
  {
    ScopedFailpoint fp("embedding.tier.spill", FailpointConfig{});
    ASSERT_TRUE(store.Register(table, Hours(1)).ok());
    EmbeddingStoreTierStats stats = store.TierStats();
    EXPECT_GE(stats.spill_errors, 1u);
    EXPECT_EQ(stats.tiered_tables, 0u);
    EXPECT_EQ(stats.resident_tables, 1u);
    // Degraded, not dropped: lookups serve the exact data.
    auto got = store.GetLatest("emb").value();
    EXPECT_FALSE(got->tiered());
    EXPECT_TRUE(BitEqual(got->Get("k0").value(), table->row(0), 8));
  }
  // The next registration retries the spill and succeeds.
  ASSERT_TRUE(store.Register(table, Hours(2)).ok());
  EmbeddingStoreTierStats stats = store.TierStats();
  EXPECT_GE(stats.tiered_tables, 1u);
}

TEST_F(TieredEmbeddingTest, LoadFailpointDegradesReads) {
  const size_t n = 256, dim = 4, block_rows = 64;
  auto source = ResidentTable("emb", n, dim);
  auto tiered = EmbeddingTable::CreateTiered(
                    *source,
                    TierOptions(block_rows * dim * sizeof(float), 8,
                                block_rows))
                    .value();
  {
    ScopedFailpoint fp("embedding.tier.load", FailpointConfig{});
    // Hot rows still serve.
    EXPECT_TRUE(tiered->Get("k0").ok());
    // Cold point reads surface the injected fault.
    EXPECT_EQ(tiered->Get("k200").status().code(), StatusCode::kInternal);
    // Batched reads degrade the cold rows to misses, hot rows survive.
    auto rows = tiered->MultiGet({"k0", "k200", "k1"});
    EXPECT_NE(rows[0], nullptr);
    EXPECT_EQ(rows[1], nullptr);
    EXPECT_NE(rows[2], nullptr);
    // Scans propagate the fault.
    EXPECT_FALSE(
        tiered->tier()
            ->ScanBlocks([](size_t, size_t, const float*) {})
            .ok());
    EXPECT_GE(tiered->tier()->stats().load_faults, 3u);
  }
  // Disarmed: the cold row loads fine.
  EXPECT_TRUE(tiered->Get("k200").ok());
}

TEST_F(TieredEmbeddingTest, SupersededVersionsGoFullyCold) {
  const size_t n = 256, dim = 8;
  EmbeddingTierPolicy policy;
  policy.memory_budget_bytes = n * dim * sizeof(float);  // Fits one table.
  policy.spill_dir = dir_;
  policy.block_rows = 64;
  EmbeddingStore store(nullptr, policy);
  ASSERT_TRUE(store.Register(ResidentTable("emb", n, dim, 1), Hours(1)).ok());
  // v1 fits the whole budget: stays resident.
  EXPECT_FALSE(store.GetVersion("emb", 1).value()->tiered());

  ASSERT_TRUE(store.Register(ResidentTable("emb", n, dim, 2), Hours(2)).ok());
  // v1 is superseded: fully cold (tiered, no hot arena); v2 takes the
  // budget and stays resident.
  auto v1 = store.GetVersion("emb", 1).value();
  ASSERT_TRUE(v1->tiered());
  EXPECT_EQ(v1->tier()->hot_limit_blocks(), 0u);
  EXPECT_EQ(v1->tier()->stats().hot_blocks, 0u);
  EXPECT_FALSE(store.GetVersion("emb", 2).value()->tiered());

  // The cold version still serves (dequantized) and quality checks on it
  // still run.
  EXPECT_TRUE(v1->Get("k0").ok());
  EmbeddingStoreTierStats stats = store.TierStats();
  EXPECT_EQ(stats.tiered_tables, 1u);
  EXPECT_EQ(stats.resident_tables, 1u);
}

TEST_F(TieredEmbeddingTest, SupersededBitsDemoteHistoryToCoarserPacking) {
  const size_t n = 256, dim = 8;
  EmbeddingTierPolicy policy;
  policy.memory_budget_bytes = n * dim * sizeof(float);  // Fits one table.
  policy.spill_dir = dir_;
  policy.block_rows = 64;
  policy.bits = 8;
  policy.superseded_bits = 4;  // History packs twice as tight.
  EmbeddingStore store(nullptr, policy);
  ASSERT_TRUE(store.Register(ResidentTable("emb", n, dim, 1), Hours(1)).ok());
  ASSERT_TRUE(store.Register(ResidentTable("emb", n, dim, 2), Hours(2)).ok());

  // v1 was resident when superseded: demoted straight to 4-bit codes.
  auto v1 = store.GetVersion("emb", 1).value();
  ASSERT_TRUE(v1->tiered());
  EXPECT_EQ(v1->tier()->bits(), 4);
  EXPECT_EQ(v1->tier()->hot_limit_blocks(), 0u);
  EXPECT_FALSE(store.GetVersion("emb", 2).value()->tiered());
  // Coarser codes still serve every row.
  for (size_t i = 0; i < n; i += 17) {
    EXPECT_TRUE(v1->Get("k" + std::to_string(i)).ok());
  }

  // v2 becomes history in turn; v1, already tiered, keeps its packing
  // (no second quantization pass).
  ASSERT_TRUE(store.Register(ResidentTable("emb", n, dim, 3), Hours(3)).ok());
  EXPECT_EQ(store.GetVersion("emb", 2).value()->tier()->bits(), 4);
  EXPECT_EQ(store.GetVersion("emb", 1).value()->tier()->bits(), 4);
}

TEST_F(TieredEmbeddingTest, TieredBruteMatchesResidentBruteBitwise) {
  const size_t n = 500, dim = 12, block_rows = 64;
  auto source = ResidentTable("emb", n, dim);
  const size_t budget = 3 * block_rows * dim * sizeof(float);  // 3/8 hot.
  // Readahead must be invisible to results: identical output whether cold
  // blocks are prefetched asynchronously or dequantized inline.
  for (bool readahead : {false, true}) {
  auto tiered = EmbeddingTable::CreateTiered(
                    *source, TierOptions(budget, 8, block_rows, readahead))
                    .value();
  // The reference: a resident brute-force index over the *served* values.
  auto served = tiered->Materialize().value();
  auto queries = GaussianData(40, dim, 99);

  for (Metric metric : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    auto brute = MakeBruteForceIndex(metric);
    ASSERT_TRUE(brute->Build(served->raw().data(), n, dim).ok());
    auto scan = MakeTieredBruteForceIndex(tiered, metric);
    ASSERT_TRUE(scan->Build(nullptr, 0, 0).ok());

    auto want = brute->Search(queries.data(), 10).value();
    auto got = scan->Search(queries.data(), 10).value();
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << static_cast<int>(metric);
      EXPECT_EQ(got[i].distance, want[i].distance) << static_cast<int>(metric);
    }

    ThreadPool pool(3);
    auto want_batch = brute->BatchSearch(queries.data(), 40, 5, &pool).value();
    auto got_batch = scan->BatchSearch(queries.data(), 40, 5, &pool).value();
    ASSERT_EQ(got_batch.size(), want_batch.size());
    for (size_t q = 0; q < want_batch.size(); ++q) {
      ASSERT_EQ(got_batch[q].size(), want_batch[q].size());
      for (size_t i = 0; i < want_batch[q].size(); ++i) {
        EXPECT_EQ(got_batch[q][i].id, want_batch[q][i].id);
        EXPECT_EQ(got_batch[q][i].distance, want_batch[q][i].distance);
      }
    }
    // Searching must not have grown the hot set (scan resistance).
    EXPECT_EQ(tiered->tier()->stats().hot_blocks, 3u);
  }
  if (readahead) {
    const ReadaheadStats ra = tiered->tier()->stats().readahead;
    EXPECT_GE(ra.issued, 1u);
    EXPECT_EQ(ra.issued, ra.completed);
    EXPECT_EQ(ra.in_flight, 0u);
  }
  }
}

/// Clustered data so nearest-neighbor sets are robust to the (documented)
/// quantization error on cold rows: intra-cluster distances ~1e-2,
/// inter-cluster ~10.
EmbeddingTablePtr ClusteredTable(const std::string& name, size_t clusters,
                                 size_t per_cluster, size_t dim,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data;
  std::vector<std::string> keys;
  for (size_t c = 0; c < clusters; ++c) {
    std::vector<float> center(dim);
    for (auto& x : center) x = static_cast<float>(rng.Gaussian(0.0, 10.0));
    for (size_t p = 0; p < per_cluster; ++p) {
      keys.push_back("c" + std::to_string(c) + "_" + std::to_string(p));
      for (size_t j = 0; j < dim; ++j) {
        data.push_back(center[j] +
                       static_cast<float>(rng.Gaussian(0.0, 0.01)));
      }
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = name;
  return EmbeddingTable::Create(metadata, keys, data, dim).value();
}

TEST_F(TieredEmbeddingTest, FeatureStoreDifferentialAllHotVsHalfCold) {
  const size_t clusters = 25, per_cluster = 8, dim = 8;
  const size_t n = clusters * per_cluster;
  auto table = ClusteredTable("emb", clusters, per_cluster, dim, 5);

  FeatureStoreOptions all_hot;
  all_hot.ann_index = "brute";
  FeatureStore resident_store(all_hot);
  ASSERT_TRUE(resident_store.RegisterEmbedding(table).ok());

  FeatureStoreOptions half_cold = all_hot;
  half_cold.embedding_tiering.memory_budget_bytes =
      n * dim * sizeof(float) / 2;
  half_cold.embedding_tiering.bits = 16;
  half_cold.embedding_tiering.block_rows = 16;
  half_cold.embedding_tiering.spill_dir = dir_;
  // Cold blocks are prefetched asynchronously; served values must not
  // change (every assertion below compares against the resident store).
  half_cold.embedding_tiering.readahead.enabled = true;
  half_cold.embedding_tiering.readahead.threads = 2;
  FeatureStore tiered_store(half_cold);
  ASSERT_TRUE(tiered_store.RegisterEmbedding(table).ok());
  ASSERT_TRUE(
      tiered_store.embeddings().GetLatest("emb").value()->tiered());

  // Point lookups agree modulo quantization error on cold rows.
  for (size_t i = 0; i < n; ++i) {
    const std::string& key = table->key(i);
    auto want = resident_store.GetEmbedding("emb", key).value();
    auto got = tiered_store.GetEmbedding("emb", key).value();
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_NEAR(got[j], want[j], 2e-3) << key << " j=" << j;
    }
  }

  // Batched neighbor queries agree modulo quantization error: exact 3-NN
  // sets inside a tight cluster are tie-sensitive, but with inter-cluster
  // distances ~1000x the intra-cluster spread both stores must place every
  // neighbor in the query's own cluster.
  std::vector<std::string> refs;
  for (size_t i = 0; i < n; i += 7) refs.push_back(table->key(i));
  auto want = resident_store.NearestEntitiesBatch("emb", refs, 3);
  auto got = tiered_store.NearestEntitiesBatch("emb", refs, 3);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    ASSERT_TRUE(want[i].ok());
    ASSERT_TRUE(got[i].ok()) << got[i].status();
    ASSERT_EQ(got[i]->size(), want[i]->size());
    const std::string cluster = refs[i].substr(0, refs[i].find('_') + 1);
    for (const auto& [key, dist] : *want[i]) {
      EXPECT_EQ(key.substr(0, cluster.size()), cluster) << refs[i];
    }
    for (const auto& [key, dist] : *got[i]) {
      EXPECT_EQ(key.substr(0, cluster.size()), cluster) << refs[i];
    }
  }

  // The tiered store really is out-of-core and counting.
  EmbeddingStoreTierStats stats = tiered_store.embeddings().TierStats();
  EXPECT_EQ(stats.tiered_tables, 1u);
  EXPECT_GE(stats.tier.scans, 1u);  // ANN searches streamed the tier.

  // Embedding hydration through the batched serving path survives
  // tiering: pointers are copied out of the tier before assembly.
  std::vector<Value> entities = {Value::String(table->key(0)),
                                 Value::String(table->key(n - 1)),
                                 Value::String("missing")};
  auto servings =
      tiered_store.server().GetFeaturesBatch(entities, {"emb"}, Hours(1));
  ASSERT_EQ(servings.size(), 3u);
  ASSERT_TRUE(servings[0].ok());
  ASSERT_TRUE(servings[1].ok());
  const std::vector<float>& v0 = servings[0]->values[0].embedding_value();
  auto expect0 = tiered_store.GetEmbedding("emb", table->key(0)).value();
  EXPECT_EQ(v0, expect0);

  // The serving layer surfaces the tier + readahead I/O counters: an
  // operator reading server stats sees the cold path behind requests.
  FeatureServerStats server_stats = tiered_store.server().stats();
  EXPECT_EQ(server_stats.embedding_tiers.tiered_tables, 1u);
  EXPECT_GE(server_stats.embedding_tiers.tier.scans, stats.tier.scans);
  const ReadaheadStats& ra = server_stats.embedding_tiers.tier.readahead;
  EXPECT_EQ(ra.in_flight, 0u);
  EXPECT_EQ(ra.issued, ra.completed + ra.in_flight);
}

TEST_F(TieredEmbeddingTest, CheckpointRestoreServesByteIdentical) {
  const size_t n = 300, dim = 8;
  auto table = ClusteredTable("emb", 30, 10, dim, 17);

  FeatureStoreOptions options;
  options.ann_index = "brute";
  options.embedding_tiering.memory_budget_bytes = n * dim * sizeof(float) / 2;
  options.embedding_tiering.bits = 8;
  options.embedding_tiering.block_rows = 32;
  options.embedding_tiering.spill_dir = dir_ + "/spill_a";
  FeatureStore store(options);
  ASSERT_TRUE(store.RegisterEmbedding(table).ok());

  // Promote a few extra blocks so the snapshot's hot set differs from the
  // seed layout (restore must reproduce the *current* hot set).
  for (size_t i = n; i-- > n - 5;) {
    ASSERT_TRUE(store.GetEmbedding("emb", table->key(i)).ok());
  }

  std::vector<std::vector<float>> before;
  for (size_t i = 0; i < n; ++i) {
    before.push_back(store.GetEmbedding("emb", table->key(i)).value());
  }
  std::vector<std::string> refs;
  for (size_t i = 0; i < n; i += 11) refs.push_back(table->key(i));
  auto neighbors_before = store.NearestEntitiesBatch("emb", refs, 4);

  const std::string ckpt = dir_ + "/ckpt";
  ASSERT_TRUE(store.Checkpoint(ckpt).ok());

  FeatureStoreOptions restore_options = options;
  restore_options.embedding_tiering.spill_dir = dir_ + "/spill_b";
  FeatureStore restored(restore_options);
  ASSERT_TRUE(restored.RestoreCheckpoint(ckpt).ok());
  auto restored_table = restored.embeddings().GetLatest("emb").value();
  ASSERT_TRUE(restored_table->tiered());

  for (size_t i = 0; i < n; ++i) {
    auto got = restored.GetEmbedding("emb", table->key(i)).value();
    ASSERT_EQ(got.size(), before[i].size());
    EXPECT_TRUE(BitEqual(got.data(), before[i].data(), dim))
        << "row " << i << " changed across checkpoint restore";
  }
  auto neighbors_after = restored.NearestEntitiesBatch("emb", refs, 4);
  ASSERT_EQ(neighbors_after.size(), neighbors_before.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    ASSERT_TRUE(neighbors_before[i].ok());
    ASSERT_TRUE(neighbors_after[i].ok());
    ASSERT_EQ(neighbors_after[i]->size(), neighbors_before[i]->size());
    for (size_t j = 0; j < neighbors_before[i]->size(); ++j) {
      EXPECT_EQ((*neighbors_after[i])[j].first,
                (*neighbors_before[i])[j].first);
      EXPECT_EQ((*neighbors_after[i])[j].second,
                (*neighbors_before[i])[j].second);
    }
  }
}

TEST_F(TieredEmbeddingTest, RestoreFallsBackToResidentWhenSpillFails) {
  const size_t n = 256, dim = 8;
  auto table = ResidentTable("emb", n, dim);
  FeatureStoreOptions options;
  options.embedding_tiering.memory_budget_bytes = n * dim * sizeof(float) / 2;
  options.embedding_tiering.block_rows = 32;
  options.embedding_tiering.spill_dir = dir_ + "/spill";
  FeatureStore store(options);
  ASSERT_TRUE(store.RegisterEmbedding(table).ok());
  // Warm-up pass: rotate every seed-exact block out of the hot arena so
  // serving reaches its steady state (all rows at dequantized values)
  // before we capture the reference — reads themselves promote/demote.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.GetEmbedding("emb", table->key(i)).ok());
  }
  std::vector<std::vector<float>> before;
  for (size_t i = 0; i < n; ++i) {
    before.push_back(store.GetEmbedding("emb", table->key(i)).value());
  }
  const std::string ckpt = dir_ + "/ckpt";
  ASSERT_TRUE(store.Checkpoint(ckpt).ok());

  FeatureStore restored(options);
  {
    // The tier file cannot be rebuilt: restore must degrade to an
    // equivalent resident table, not fail or corrupt.
    ScopedFailpoint fp("embedding.tier.spill", FailpointConfig{});
    ASSERT_TRUE(restored.RestoreCheckpoint(ckpt).ok());
  }
  auto got_table = restored.embeddings().GetLatest("emb").value();
  EXPECT_FALSE(got_table->tiered());
  EXPECT_GE(restored.embeddings().TierStats().restore_fallbacks, 1u);
  for (size_t i = 0; i < n; ++i) {
    auto got = restored.GetEmbedding("emb", table->key(i)).value();
    EXPECT_TRUE(BitEqual(got.data(), before[i].data(), dim)) << i;
  }
}

TEST_F(TieredEmbeddingTest, DriftPatchAlignNedAcceptTieredTables) {
  // The whole-matrix consumers materialize tiered inputs instead of
  // tripping the resident-only row()/raw() accessors.
  const size_t n = 128, dim = 8;
  auto v1 = ResidentTable("emb", n, dim, 1);
  auto tiered = EmbeddingTable::CreateTiered(
                    *v1, TierOptions(n * dim * 2, 8, 32))  // Mostly cold.
                    .value();
  auto report = CheckEmbeddingDrift(*tiered, *tiered, 4, 64, {});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->null_or_nan_cells, 0u);

  auto quantized = QuantizeUniform(*tiered, 8);
  ASSERT_TRUE(quantized.ok());
  EXPECT_FALSE((*quantized)->tiered());
  EXPECT_EQ((*quantized)->size(), n);
}

}  // namespace
}  // namespace mlfs
