#include "core/feature_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/tabular.h"

namespace mlfs {
namespace {

class FeatureStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Create({{"user_id", FeatureType::kInt64, false},
                              {"event_time", FeatureType::kTimestamp, false},
                              {"trips_7d", FeatureType::kInt64, true},
                              {"trips_30d", FeatureType::kInt64, true}})
                  .value();
    OfflineTableOptions opt;
    opt.name = "activity";
    opt.schema = schema_;
    opt.entity_column = "user_id";
    opt.time_column = "event_time";
    ASSERT_TRUE(store_.CreateSourceTable(opt).ok());
  }

  Row SourceRow(int64_t user, Timestamp ts, int64_t t7, int64_t t30) {
    return Row::Create(schema_, {Value::Int64(user), Value::Time(ts),
                                 Value::Int64(t7), Value::Int64(t30)})
        .value();
  }

  FeatureDefinition RateDef() {
    FeatureDefinition def;
    def.name = "trip_rate";
    def.entity = "user";
    def.source_table = "activity";
    def.expression = "trips_7d / (trips_30d + 1)";
    def.cadence = Hours(6);
    return def;
  }

  FeatureStore store_;
  SchemaPtr schema_;
};

TEST_F(FeatureStoreTest, EndToEndTabularFlow) {
  ASSERT_TRUE(store_.Ingest("activity", {SourceRow(1, Hours(1), 7, 30),
                                         SourceRow(2, Hours(2), 2, 10)})
                  .ok());
  EXPECT_EQ(store_.clock().now(), Hours(2));  // Clock follows ingestion.

  ASSERT_TRUE(store_.PublishFeature(RateDef()).ok());
  EXPECT_EQ(store_.RunMaterialization().value(), 1);

  auto fv = store_.ServeFeatures(Value::Int64(1), {"trip_rate"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_DOUBLE_EQ(fv->values[0].double_value(), 7.0 / 31.0);
  EXPECT_EQ(fv->missing, 0u);
  EXPECT_EQ(store_.server().requests(), 1u);
}

TEST_F(FeatureStoreTest, IngestValidatesTable) {
  EXPECT_TRUE(store_.Ingest("missing", {}).IsNotFound());
}

TEST_F(FeatureStoreTest, BuildTrainingSetJoinsFeatureLogs) {
  // Two ingestion eras with a materialization after each, so the feature
  // log holds both the early and the late snapshot.
  ASSERT_TRUE(store_.Ingest("activity", {SourceRow(1, Hours(1), 7, 30),
                                         SourceRow(2, Hours(2), 2, 10)})
                  .ok());
  ASSERT_TRUE(store_.PublishFeature(RateDef()).ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());
  ASSERT_TRUE(store_.Ingest("activity", {SourceRow(1, Hours(20), 9, 40)})
                  .ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());

  auto spine_schema =
      Schema::Create({{"user_id", FeatureType::kInt64, false},
                      {"ts", FeatureType::kTimestamp, false},
                      {"label", FeatureType::kBool, false}})
          .value();
  auto spine_row = [&](int64_t user, Timestamp ts, bool label) {
    return Row::Create(spine_schema, {Value::Int64(user), Value::Time(ts),
                                      Value::Bool(label)})
        .value();
  };
  std::vector<Row> spine = {spine_row(1, Hours(5), true),
                            spine_row(1, Hours(21), false),
                            spine_row(2, Hours(1), true)};
  auto ts = store_.BuildTrainingSet(spine, "user_id", "ts", {"trip_rate"});
  ASSERT_TRUE(ts.ok()) << ts.status();
  ASSERT_EQ(ts->rows.size(), 3u);
  // Spine at 5h sees the 1h snapshot.
  EXPECT_DOUBLE_EQ(
      ts->rows[0].ValueByName("trip_rate").value().double_value(),
      7.0 / 31.0);
  // Spine at 21h sees the 20h snapshot.
  EXPECT_DOUBLE_EQ(
      ts->rows[1].ValueByName("trip_rate").value().double_value(),
      9.0 / 41.0);
  // User 2 at 1h: feature not yet materialized at that time -> NULL.
  EXPECT_TRUE(ts->rows[2].ValueByName("trip_rate").value().is_null());

  EXPECT_TRUE(store_.BuildTrainingSet(spine, "user_id", "ts", {"nope"})
                  .status().IsNotFound());
}

TEST_F(FeatureStoreTest, FreshnessAndDriftMonitoring) {
  // Two eras of data: mean trips_7d jumps between them.
  Rng rng(1);
  std::vector<Row> early, late;
  for (int i = 0; i < 300; ++i) {
    int64_t user = static_cast<int64_t>(rng.Uniform(50));
    early.push_back(SourceRow(user, Hours(1) + i,
                              static_cast<int64_t>(rng.Gaussian(20, 3)),
                              100));
    late.push_back(SourceRow(user, Days(10) + i,
                             static_cast<int64_t>(rng.Gaussian(60, 3)),
                             100));
  }
  ASSERT_TRUE(store_.Ingest("activity", early).ok());
  ASSERT_TRUE(store_.PublishFeature(RateDef()).ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());
  ASSERT_TRUE(store_.Ingest("activity", late).ok());
  ASSERT_TRUE(store_.RunMaterialization().ok());

  auto report = store_.CheckFeatureDrift("trip_rate", 0, Days(1), Days(9),
                                         Days(11));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->drifted);
  EXPECT_EQ(store_.alerts().WithPrefix("drift:trip_rate").size(), 1u);

  auto freshness =
      store_.CheckFreshness("trip_rate", {Value::Int64(0), Value::Int64(1)});
  EXPECT_LE(freshness.missing, 2u);

  EXPECT_FALSE(store_.CheckFeatureDrift("trip_rate", Days(20), Days(21),
                                        Days(22), Days(23)).ok());
}

TEST_F(FeatureStoreTest, EmbeddingLifecycle) {
  EmbeddingTableMetadata metadata;
  metadata.name = "user_emb";
  std::vector<std::string> keys;
  std::vector<float> vectors;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    keys.push_back("u" + std::to_string(i));
    for (int j = 0; j < 8; ++j) {
      vectors.push_back(static_cast<float>(rng.Gaussian()));
    }
  }
  auto table = EmbeddingTable::Create(metadata, keys, vectors, 8).value();
  EXPECT_EQ(store_.RegisterEmbedding(table).value(), 1);

  // Embeddings served through the same online path as tabular features.
  ASSERT_TRUE(store_.MaterializeEmbedding("user_emb").ok());
  auto fv = store_.ServeFeatures(Value::String("u3"), {"user_emb"});
  ASSERT_TRUE(fv.ok()) << fv.status();
  EXPECT_EQ(fv->values[0].type(), FeatureType::kEmbedding);
  EXPECT_EQ(fv->values[0].embedding_value(),
            store_.GetEmbedding("user_emb", "u3").value());

  // Nearest-neighbor query.
  auto neighbors = store_.NearestEntities("user_emb", "u3", 5);
  ASSERT_TRUE(neighbors.ok()) << neighbors.status();
  ASSERT_EQ(neighbors->size(), 5u);
  for (const auto& [key, dist] : *neighbors) {
    EXPECT_NE(key, "u3");  // Self excluded.
  }
  // Distances ascending.
  for (size_t i = 1; i < neighbors->size(); ++i) {
    EXPECT_LE((*neighbors)[i - 1].second, (*neighbors)[i].second);
  }
  EXPECT_TRUE(store_.NearestEntities("user_emb", "nope", 3).status()
                  .IsNotFound());
  EXPECT_TRUE(store_.GetEmbedding("missing", "u1").status().IsNotFound());
}

TEST_F(FeatureStoreTest, NearestEntitiesTracksLatestVersion) {
  // The ANN cache is per version: registering a new table must change the
  // answers, not serve the stale index.
  Rng rng(5);
  std::vector<std::string> keys;
  std::vector<float> v1, v2;
  for (int i = 0; i < 30; ++i) {
    keys.push_back("k" + std::to_string(i));
    for (int j = 0; j < 4; ++j) {
      v1.push_back(static_cast<float>(rng.Gaussian()));
    }
  }
  // v2: key 0 moved exactly onto key 1's vector.
  v2 = v1;
  for (int j = 0; j < 4; ++j) v2[j] = v1[4 + j];
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  ASSERT_TRUE(store_.RegisterEmbedding(
      EmbeddingTable::Create(metadata, keys, v1, 4).value()).ok());
  auto before = store_.NearestEntities("emb", "k0", 1).value();
  ASSERT_TRUE(store_.RegisterEmbedding(
      EmbeddingTable::Create(metadata, keys, v2, 4).value()).ok());
  auto after = store_.NearestEntities("emb", "k0", 1).value();
  // After the move, k1 is k0's exact twin (distance ~0).
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].first, "k1");
  EXPECT_NEAR(after[0].second, 0.0, 1e-6);
  // And the result is allowed to differ from v1's (fresh index used).
  (void)before;
}

TEST_F(FeatureStoreTest, NearestEntitiesBatchMatchesLoop) {
  Rng rng(7);
  std::vector<std::string> keys;
  std::vector<float> vectors;
  for (int i = 0; i < 80; ++i) {
    keys.push_back("e" + std::to_string(i));
    for (int j = 0; j < 6; ++j) {
      vectors.push_back(static_cast<float>(rng.Gaussian()));
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  ASSERT_TRUE(store_.RegisterEmbedding(
      EmbeddingTable::Create(metadata, keys, vectors, 6).value()).ok());

  std::vector<std::string> refs = {"e5", "nope", "e0", "e79", "e5"};
  auto batch = store_.NearestEntitiesBatch("emb", refs, 4);
  ASSERT_EQ(batch.size(), refs.size());
  // Unknown reference key fails only its own slot.
  EXPECT_TRUE(batch[1].status().IsNotFound());
  for (size_t i : {0u, 2u, 3u, 4u}) {
    ASSERT_TRUE(batch[i].ok()) << i << ": " << batch[i].status();
    auto loop = store_.NearestEntities("emb", refs[i], 4).value();
    ASSERT_EQ(batch[i]->size(), loop.size()) << refs[i];
    for (size_t r = 0; r < loop.size(); ++r) {
      EXPECT_EQ((*batch[i])[r].first, loop[r].first) << refs[i];
      EXPECT_FLOAT_EQ((*batch[i])[r].second, loop[r].second) << refs[i];
    }
  }
  // Missing embedding fails every slot; empty batch is empty.
  auto missing = store_.NearestEntitiesBatch("ghost", {"a", "b"}, 2);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_TRUE(missing[0].status().IsNotFound());
  EXPECT_TRUE(missing[1].status().IsNotFound());
  EXPECT_TRUE(store_.NearestEntitiesBatch("emb", {}, 2).empty());
}

TEST_F(FeatureStoreTest, AnnCacheStaysBoundedAcrossReregistrations) {
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  auto table = EmbeddingTable::Create(metadata, {"a", "b", "c"},
                                      {1, 0, 0, 1, 2, 0}, 2)
                   .value();
  // Register N versions, querying each so every version's index would be
  // cached without eviction.
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store_.RegisterEmbedding(table).ok());
    ASSERT_TRUE(store_.NearestEntities("emb", "a", 1).ok());
    EXPECT_LE(store_.ann_cache_size(), 1u) << "after version " << (i + 1);
  }

  // A model pinning an older version keeps that version cached alongside
  // the latest, but nothing else accumulates.
  ModelRecord model;
  model.name = "ranker";
  model.embedding_refs = {"emb@v" + std::to_string(n)};
  ASSERT_TRUE(store_.RegisterModel(model).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store_.RegisterEmbedding(table).ok());
    ASSERT_TRUE(store_.NearestEntities("emb", "a", 1).ok());
  }
  EXPECT_LE(store_.ann_cache_size(), 2u);  // Latest + pinned v8 only.
  // An unrelated embedding gets its own cache slot.
  EmbeddingTableMetadata other;
  other.name = "other";
  ASSERT_TRUE(store_.RegisterEmbedding(
      EmbeddingTable::Create(other, {"x", "y"}, {1, 0, 0, 1}, 2).value())
          .ok());
  ASSERT_TRUE(store_.NearestEntities("other", "x", 1).ok());
  EXPECT_LE(store_.ann_cache_size(), 3u);
}

TEST_F(FeatureStoreTest, VersionSkewDetectionAndAlerts) {
  EmbeddingTableMetadata metadata;
  metadata.name = "user_emb";
  auto table = EmbeddingTable::Create(metadata, {"a", "b"},
                                      {1, 0, 0, 1}, 2)
                   .value();
  ASSERT_TRUE(store_.RegisterEmbedding(table).ok());

  ModelRecord model;
  model.name = "ranker";
  model.embedding_refs = {"user_emb@v1"};
  ASSERT_TRUE(store_.RegisterModel(model).ok());
  EXPECT_TRUE(store_.CheckEmbeddingVersionSkew().value().skews.empty());

  // New embedding version; model is now skewed.
  ASSERT_TRUE(store_.RegisterEmbedding(table).ok());
  auto report = store_.CheckEmbeddingVersionSkew().value();
  ASSERT_EQ(report.skews.size(), 1u);
  EXPECT_TRUE(report.dangling.empty());
  EXPECT_EQ(report.skews[0].lag(), 1);
  EXPECT_EQ(store_.alerts().CountAtLeast(AlertSeverity::kCritical), 1u);
}

TEST_F(FeatureStoreTest, EmbeddingUpdateDriftCheck) {
  Rng rng(3);
  std::vector<std::string> keys;
  std::vector<float> v1, v2;
  for (int i = 0; i < 100; ++i) {
    keys.push_back("e" + std::to_string(i));
    for (int j = 0; j < 8; ++j) {
      float x = static_cast<float>(rng.Gaussian());
      v1.push_back(x);
      v2.push_back(-x);  // Fully flipped space.
    }
  }
  EmbeddingTableMetadata metadata;
  metadata.name = "emb";
  ASSERT_TRUE(store_.RegisterEmbedding(
      EmbeddingTable::Create(metadata, keys, v1, 8).value()).ok());
  ASSERT_TRUE(store_.RegisterEmbedding(
      EmbeddingTable::Create(metadata, keys, v2, 8).value()).ok());

  auto report = store_.CheckEmbeddingUpdateDrift("emb", 1, 2);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->drifted);
  EXPECT_NEAR(report->mean_self_cosine, -1.0, 1e-6);
  EXPECT_EQ(store_.alerts().WithPrefix("embedding_drift:").size(), 1u);
  EXPECT_FALSE(store_.CheckEmbeddingUpdateDrift("emb", 1, 9).ok());
}

TEST_F(FeatureStoreTest, StreamPipelineIntegration) {
  StreamPipelineOptions opt;
  opt.name = "minute_trips";
  opt.event_schema = schema_;
  opt.entity_column = "user_id";
  opt.time_column = "event_time";
  opt.window = {Hours(1), Hours(1)};
  opt.aggs = {{"events", AggregateFn::kCount, ""}};
  auto pipeline = store_.CreateStreamPipeline(opt);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  ASSERT_TRUE((*pipeline)->Ingest(SourceRow(1, Minutes(5), 1, 1)).ok());
  ASSERT_TRUE((*pipeline)->Ingest(SourceRow(1, Minutes(10), 1, 1)).ok());
  ASSERT_TRUE((*pipeline)->Flush(Hours(1)).ok());
  store_.clock().AdvanceTo(Hours(1));
  auto got = store_.online().Get("minute_trips", Value::Int64(1), Hours(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ValueByName("events").value(), Value::Int64(2));
}

}  // namespace
}  // namespace mlfs
