// Embedding-tier concurrency soak (CTest label: stress; run under TSan).
//
// Hammers one tiered table from every access path at once: point-Get
// threads churning the hot set (promotion racing demotion), MultiGet
// threads issuing batches that straddle hot and cold blocks, scan threads
// streaming the whole tier (brute-force ANN's access pattern), a thread
// flapping the hot limit (the store's budget rebalancing), and a
// fault-injection thread arming/disarming the cold-load failpoint.
// Asserts the invariants the single-threaded suite pins: every served row
// is bitwise one of the two legal values (exact or dequantized), pointers
// stay valid until the thread's next lookup, and the counters are
// coherent.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "embedding/compress.h"
#include "embedding/embedding_table.h"
#include "embedding/tier.h"

namespace mlfs {
namespace {

constexpr size_t kRows = 64 * 24;  // 24 blocks of 64.
constexpr size_t kDim = 16;
constexpr size_t kBlockRows = 64;
constexpr int kBits = 8;
constexpr int kGetters = 3;
constexpr int kBatchers = 2;
constexpr int kScanners = 2;
constexpr int kOpsPerThread = 400;

TEST(TieredEmbeddingStressTest, PromotionDemotionScansAndFaultsRace) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "mlfs_tier_stress")
          .string();
  std::filesystem::create_directories(dir);

  Rng rng(7);
  std::vector<float> data(kRows * kDim);
  for (float& x : data) x = static_cast<float>(rng.Gaussian());
  std::vector<std::string> keys;
  for (size_t i = 0; i < kRows; ++i) keys.push_back("k" + std::to_string(i));

  EmbeddingTableMetadata metadata;
  metadata.name = "stress";
  auto source =
      EmbeddingTable::Create(metadata, keys, data, kDim).value();

  EmbeddingTierOptions options;
  options.memory_budget_bytes = 4 * kBlockRows * kDim * sizeof(float);
  options.bits = kBits;
  options.block_rows = kBlockRows;
  options.dir = dir;
  auto table = EmbeddingTable::CreateTiered(*source, options).value();

  // The two legal servings of any row: the exact source floats (hot seed)
  // or the packed codec's dequantization (cold or ever-demoted).
  PackedCodes packed = PackUniform(data.data(), kRows, kDim, kBits).value();
  PackedDecodeTables tables = MakeDecodeTables(kBits, packed.lo, packed.hi);
  std::vector<float> dequantized(kRows * kDim);
  DequantizeRange(ViewOf(packed, tables), 0, kRows, dequantized.data());
  auto legal = [&](size_t row, const float* got) {
    return std::memcmp(got, data.data() + row * kDim,
                       kDim * sizeof(float)) == 0 ||
           std::memcmp(got, dequantized.data() + row * kDim,
                       kDim * sizeof(float)) == 0;
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> faulted{0};
  std::atomic<uint64_t> illegal{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kGetters; ++t) {
    threads.emplace_back([&, t] {
      Rng local(100 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const size_t row = local.Uniform(kRows);
        auto got = table->Get("k" + std::to_string(row));
        if (!got.ok()) {  // Injected cold-load fault.
          faulted.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // The pointer must stay valid (and legal) until this thread's
        // next lookup, even while other threads demote the block.
        if (!legal(row, *got)) illegal.fetch_add(1);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kBatchers; ++t) {
    threads.emplace_back([&, t] {
      Rng local(200 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        std::vector<std::string> batch;
        std::vector<size_t> rows;
        for (int i = 0; i < 12; ++i) {
          rows.push_back(local.Uniform(kRows));
          batch.push_back("k" + std::to_string(rows.back()));
        }
        batch.push_back("missing");
        auto ptrs = table->MultiGet(batch);
        ASSERT_EQ(ptrs.size(), batch.size());
        ASSERT_EQ(ptrs.back(), nullptr);
        for (size_t i = 0; i < rows.size(); ++i) {
          if (ptrs[i] == nullptr) {  // Fault-degraded cold slot.
            faulted.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (!legal(rows[i], ptrs[i])) illegal.fetch_add(1);
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < kScanners; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t seen = 0;
        Status status = table->tier()->ScanBlocks(
            [&](size_t row0, size_t nrows, const float* rows) {
              seen += nrows;
              for (size_t r = 0; r < nrows; ++r) {
                if (!legal(row0 + r, rows + r * kDim)) illegal.fetch_add(1);
              }
            });
        if (status.ok()) {
          ASSERT_EQ(seen, kRows);
        }
      }
    });
  }
  // Budget rebalancing races everything (the store does this on every
  // registration).
  threads.emplace_back([&] {
    Rng local(301);
    while (!stop.load(std::memory_order_relaxed)) {
      table->tier()->SetHotLimit(local.Uniform(6));
      std::this_thread::yield();
    }
  });
  // Fault injection flaps underneath the readers.
  threads.emplace_back([&] {
    for (int i = 0; i < 40 && !stop.load(std::memory_order_relaxed); ++i) {
      FailpointConfig config;
      config.probability = 0.3;
      {
        ScopedFailpoint fp("embedding.tier.load", config);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int t = 0; t < kGetters + kBatchers; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = kGetters + kBatchers; t < threads.size(); ++t) {
    threads[t].join();
  }
  FailpointRegistry::Instance().DisarmAll();

  EXPECT_EQ(illegal.load(), 0u)
      << "a row was served that is neither exact nor dequantized";
  EXPECT_GT(served.load(), 0u);

  // Counters are coherent after the dust settles.
  EmbeddingTierStats stats = table->tier()->stats();
  EXPECT_EQ(stats.total_blocks, kRows / kBlockRows);
  EXPECT_LE(stats.hot_blocks, stats.total_blocks);
  EXPECT_LE(stats.hot_blocks, 6u);  // Last SetHotLimit was < 6.
  EXPECT_EQ(stats.resident_bytes,
            stats.hot_blocks * kBlockRows * kDim * sizeof(float));
  EXPECT_GE(stats.hot_hits + stats.cold_misses, served.load());
  EXPECT_GE(stats.demotions + stats.hot_blocks, stats.promotions)
      << "every promoted block is either still hot or was demoted";
  if (faulted.load() > 0) {
    EXPECT_GT(stats.load_faults, 0u);
  }

  // And the tier still serves correct data single-threaded.
  std::vector<float> out(kDim);
  for (size_t row : {size_t{0}, kRows / 2, kRows - 1}) {
    table->CopyRow(row, out.data());
    EXPECT_TRUE(legal(row, out.data())) << row;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mlfs
