#ifndef MLFS_DATAGEN_TABULAR_H_
#define MLFS_DATAGEN_TABULAR_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timestamp.h"

namespace mlfs {

/// How one generated numeric column behaves over time.
struct NumericColumnSpec {
  std::string name;
  double mean = 0.0;
  double stddev = 1.0;
  /// Linear drift: effective mean at time t is
  /// mean + drift_per_day * (t / day). Models gradual distribution shift.
  double drift_per_day = 0.0;
  /// A step change applied from `shift_at` onward (0 disables) — models a
  /// sudden upstream change (schema fix, holiday, outage).
  Timestamp shift_at = 0;
  double shift_delta = 0.0;
  /// Fraction of NULLs.
  double null_rate = 0.0;
};

struct CategoricalColumnSpec {
  std::string name;
  std::vector<std::string> values;
  /// Unnormalized sampling weights (uniform if empty).
  std::vector<double> weights;
  double null_rate = 0.0;
};

/// Generator of event-level tabular feature data: the synthetic substitute
/// for production feature traces (DESIGN.md §5). Every event row is
/// {entity INT64, event_time TIMESTAMP, <numeric columns>, <categorical
/// columns>} with controllable drift/shift injection for the monitoring
/// experiments.
struct TabularGenConfig {
  size_t num_entities = 1000;
  /// Zipf skew of which entity each event belongs to.
  double entity_zipf_exponent = 1.0;
  std::vector<NumericColumnSpec> numeric_columns;
  std::vector<CategoricalColumnSpec> categorical_columns;
  uint64_t seed = 13;
};

class TabularGenerator {
 public:
  static StatusOr<TabularGenerator> Create(TabularGenConfig config);

  const SchemaPtr& schema() const { return schema_; }

  /// Generates `count` event rows with event times uniform in [from, to).
  std::vector<Row> Generate(size_t count, Timestamp from, Timestamp to);

  /// One row for a specific entity and time (used for spine construction).
  Row GenerateAt(int64_t entity, Timestamp t);

 private:
  TabularGenerator(TabularGenConfig config, SchemaPtr schema)
      : config_(std::move(config)),
        schema_(std::move(schema)),
        rng_(config_.seed),
        entity_dist_(config_.num_entities, config_.entity_zipf_exponent) {}

  Value SampleNumeric(const NumericColumnSpec& spec, Timestamp t);
  Value SampleCategorical(const CategoricalColumnSpec& spec);

  TabularGenConfig config_;
  SchemaPtr schema_;
  Rng rng_;
  ZipfDistribution entity_dist_;
};

}  // namespace mlfs

#endif  // MLFS_DATAGEN_TABULAR_H_
