#include "datagen/kb.h"

#include <algorithm>
#include <numeric>

namespace mlfs {

StatusOr<SyntheticKb> BuildSyntheticKb(const SyntheticKbConfig& config) {
  if (config.num_entities < 2 || config.num_types < 2 ||
      config.num_relation_kinds < 1) {
    return Status::InvalidArgument(
        "KB needs >= 2 entities, >= 2 types, >= 1 relation kind");
  }
  if (config.homophily < 0 || config.homophily > 1) {
    return Status::InvalidArgument("homophily must be in [0, 1]");
  }
  Rng rng(config.seed);
  SyntheticKb kb{config,
                 {},
                 {},
                 ZipfDistribution(config.num_entities, config.zipf_exponent)};
  kb.entity_type.resize(config.num_entities);
  for (auto& type : kb.entity_type) {
    type = static_cast<int>(rng.Uniform(config.num_types));
  }
  // Entities of each type, for homophilous edge sampling.
  std::vector<std::vector<uint32_t>> by_type(config.num_types);
  for (size_t e = 0; e < config.num_entities; ++e) {
    by_type[kb.entity_type[e]].push_back(static_cast<uint32_t>(e));
  }
  kb.neighbors.resize(config.num_entities);
  for (size_t edge = 0; edge < config.num_edges; ++edge) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(config.num_entities));
    uint32_t b;
    if (rng.Bernoulli(config.homophily) &&
        by_type[kb.entity_type[a]].size() > 1) {
      const auto& pool = by_type[kb.entity_type[a]];
      do {
        b = pool[rng.Uniform(pool.size())];
      } while (b == a);
    } else {
      do {
        b = static_cast<uint32_t>(rng.Uniform(config.num_entities));
      } while (b == a);
    }
    int kind = static_cast<int>(rng.Uniform(config.num_relation_kinds));
    kb.neighbors[a].emplace_back(b, kind);
    kb.neighbors[b].emplace_back(a, kind);
  }
  return kb;
}

StatusOr<std::vector<std::vector<int>>> GenerateCorpus(
    const SyntheticKb& kb, const CorpusConfig& config) {
  if (config.num_sentences == 0 || config.sentence_length < 2) {
    return Status::InvalidArgument("corpus needs sentences of length >= 2");
  }
  Rng rng(config.seed);
  std::vector<std::vector<int>> corpus;
  corpus.reserve(config.num_sentences);
  for (size_t s = 0; s < config.num_sentences; ++s) {
    std::vector<int> sentence;
    size_t current = kb.popularity.Sample(&rng);
    sentence.push_back(static_cast<int>(current));
    if (config.include_type_tokens) {
      sentence.push_back(
          static_cast<int>(kb.type_token(kb.entity_type[current])));
    }
    while (static_cast<int>(sentence.size()) < config.sentence_length) {
      const auto& adjacency = kb.neighbors[current];
      if (adjacency.empty() || rng.Bernoulli(0.15)) {
        // Restart the walk at a fresh popular anchor (topic change).
        current = kb.popularity.Sample(&rng);
        sentence.push_back(static_cast<int>(current));
        continue;
      }
      const auto& [next, kind] = adjacency[rng.Uniform(adjacency.size())];
      if (config.include_relation_tokens) {
        sentence.push_back(static_cast<int>(kb.relation_token(kind)));
      }
      current = next;
      sentence.push_back(static_cast<int>(current));
      if (config.include_type_tokens) {
        sentence.push_back(
            static_cast<int>(kb.type_token(kb.entity_type[current])));
      }
    }
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

std::vector<uint64_t> CountMentions(
    const SyntheticKb& kb, const std::vector<std::vector<int>>& corpus) {
  std::vector<uint64_t> counts(kb.num_entities(), 0);
  for (const auto& sentence : corpus) {
    for (int token : sentence) {
      if (token >= 0 && static_cast<size_t>(token) < kb.num_entities()) {
        ++counts[static_cast<size_t>(token)];
      }
    }
  }
  return counts;
}

std::vector<std::vector<size_t>> PopularityDeciles(
    const std::vector<uint64_t>& mentions, size_t deciles) {
  std::vector<size_t> order(mentions.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return mentions[a] > mentions[b];
  });
  std::vector<std::vector<size_t>> out(deciles);
  for (size_t i = 0; i < order.size(); ++i) {
    size_t bucket = i * deciles / order.size();
    out[bucket].push_back(order[i]);
  }
  return out;
}

}  // namespace mlfs
