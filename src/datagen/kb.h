#ifndef MLFS_DATAGEN_KB_H_
#define MLFS_DATAGEN_KB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace mlfs {

/// Configuration of the synthetic knowledge base.
///
/// This substitutes for the Wikipedia-scale KB + self-supervised corpus of
/// Bootleg (Orr et al. [22], paper §3.1.1): entities have types and KG
/// relations; mention frequency is Zipfian, so most entities are *rare* —
/// the "tail" whose embedding quality the paper worries about.
struct SyntheticKbConfig {
  size_t num_entities = 2000;
  int num_types = 8;
  /// Undirected relation edges; mostly intra-type (see `homophily`).
  size_t num_edges = 6000;
  /// Probability that an edge connects same-type entities. High homophily
  /// is what makes type information recoverable from co-occurrence — for
  /// entities with enough mentions.
  double homophily = 0.85;
  /// Number of distinct relation kinds (each edge gets one).
  int num_relation_kinds = 6;
  /// Zipf exponent of entity mention popularity.
  double zipf_exponent = 1.05;
  uint64_t seed = 7;
};

/// The generated knowledge base. Token-id layout for corpus generation:
///   [0, E)                 entity tokens
///   [E, E+T)               type tokens
///   [E+T, E+T+R)           relation-kind tokens
struct SyntheticKb {
  SyntheticKbConfig config;
  /// Type id of each entity.
  std::vector<int> entity_type;
  /// Adjacency: (neighbor entity, relation kind) per entity.
  std::vector<std::vector<std::pair<uint32_t, int>>> neighbors;
  /// Popularity rank: entities are id-ordered by rank (entity 0 = head).
  ZipfDistribution popularity;

  size_t num_entities() const { return entity_type.size(); }
  size_t type_token(int type) const { return num_entities() + type; }
  size_t relation_token(int kind) const {
    return num_entities() + config.num_types + kind;
  }
  size_t vocab_size() const {
    return num_entities() + config.num_types + config.num_relation_kinds;
  }
  std::string entity_key(size_t entity) const {
    return "ent_" + std::to_string(entity);
  }
};

/// Builds the KB (deterministic per config.seed).
StatusOr<SyntheticKb> BuildSyntheticKb(const SyntheticKbConfig& config);

/// Corpus generation: sentences of co-occurring entity mentions produced
/// by short relation walks from a Zipf-sampled anchor.
struct CorpusConfig {
  size_t num_sentences = 20000;
  int sentence_length = 8;
  /// Structured-data augmentation (the [22] technique): interleave the
  /// anchor's type token and traversed relation-kind tokens into the
  /// sentence, injecting KB structure into self-supervised pretraining.
  bool include_type_tokens = false;
  bool include_relation_tokens = false;
  uint64_t seed = 11;
};

StatusOr<std::vector<std::vector<int>>> GenerateCorpus(
    const SyntheticKb& kb, const CorpusConfig& config);

/// Mention count of each entity in `corpus` (entity tokens only).
std::vector<uint64_t> CountMentions(const SyntheticKb& kb,
                                    const std::vector<std::vector<int>>& corpus);

/// Splits entity ids into `deciles` groups by mention count (descending:
/// group 0 = most-mentioned head, last = rarest tail).
std::vector<std::vector<size_t>> PopularityDeciles(
    const std::vector<uint64_t>& mentions, size_t deciles = 10);

}  // namespace mlfs

#endif  // MLFS_DATAGEN_KB_H_
