#include "datagen/tabular.h"

namespace mlfs {

StatusOr<TabularGenerator> TabularGenerator::Create(TabularGenConfig config) {
  if (config.num_entities == 0) {
    return Status::InvalidArgument("generator needs entities");
  }
  std::vector<FieldSpec> fields = {
      {"entity", FeatureType::kInt64, false},
      {"event_time", FeatureType::kTimestamp, false}};
  for (const auto& spec : config.numeric_columns) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("numeric column needs a name");
    }
    fields.push_back({spec.name, FeatureType::kDouble, true});
  }
  for (const auto& spec : config.categorical_columns) {
    if (spec.name.empty() || spec.values.empty()) {
      return Status::InvalidArgument(
          "categorical column needs a name and values");
    }
    if (!spec.weights.empty() && spec.weights.size() != spec.values.size()) {
      return Status::InvalidArgument("categorical weights misaligned");
    }
    fields.push_back({spec.name, FeatureType::kString, true});
  }
  MLFS_ASSIGN_OR_RETURN(SchemaPtr schema, Schema::Create(std::move(fields)));
  return TabularGenerator(std::move(config), std::move(schema));
}

Value TabularGenerator::SampleNumeric(const NumericColumnSpec& spec,
                                      Timestamp t) {
  if (spec.null_rate > 0 && rng_.Bernoulli(spec.null_rate)) {
    return Value::Null();
  }
  double mean = spec.mean +
                spec.drift_per_day * (static_cast<double>(t) /
                                      static_cast<double>(kMicrosPerDay));
  if (spec.shift_at != 0 && t >= spec.shift_at) mean += spec.shift_delta;
  return Value::Double(rng_.Gaussian(mean, spec.stddev));
}

Value TabularGenerator::SampleCategorical(const CategoricalColumnSpec& spec) {
  if (spec.null_rate > 0 && rng_.Bernoulli(spec.null_rate)) {
    return Value::Null();
  }
  if (spec.weights.empty()) {
    return Value::String(spec.values[rng_.Uniform(spec.values.size())]);
  }
  double total = 0;
  for (double w : spec.weights) total += w;
  double target = rng_.UniformDouble() * total;
  double cumulative = 0;
  for (size_t i = 0; i < spec.values.size(); ++i) {
    cumulative += spec.weights[i];
    if (cumulative >= target) return Value::String(spec.values[i]);
  }
  return Value::String(spec.values.back());
}

Row TabularGenerator::GenerateAt(int64_t entity, Timestamp t) {
  std::vector<Value> values;
  values.reserve(schema_->num_fields());
  values.push_back(Value::Int64(entity));
  values.push_back(Value::Time(t));
  for (const auto& spec : config_.numeric_columns) {
    values.push_back(SampleNumeric(spec, t));
  }
  for (const auto& spec : config_.categorical_columns) {
    values.push_back(SampleCategorical(spec));
  }
  return Row::CreateUnsafe(schema_, std::move(values));
}

std::vector<Row> TabularGenerator::Generate(size_t count, Timestamp from,
                                            Timestamp to) {
  std::vector<Row> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    int64_t entity = static_cast<int64_t>(entity_dist_.Sample(&rng_));
    Timestamp t = from;
    if (to > from) {
      t = from + static_cast<Timestamp>(
                     rng_.Uniform(static_cast<uint64_t>(to - from)));
    }
    out.push_back(GenerateAt(entity, t));
  }
  return out;
}

}  // namespace mlfs
