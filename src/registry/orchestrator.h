#ifndef MLFS_REGISTRY_ORCHESTRATOR_H_
#define MLFS_REGISTRY_ORCHESTRATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "registry/materializer.h"
#include "registry/registry.h"

namespace mlfs {

/// Per-feature refresh bookkeeping.
struct RefreshState {
  Timestamp last_run = kMinTimestamp;
  uint64_t runs = 0;
  uint64_t entities_updated_total = 0;
};

/// Drives feature refreshes on their declared cadences against a logical
/// clock: "when the underlying data changes, the FS orchestrates the
/// updates to the features based on the user-defined cadence" (§2.2.1).
///
/// A feature is due when `now >= last_run + cadence` (and immediately after
/// publication). Deprecated features are skipped.
class Orchestrator {
 public:
  Orchestrator(const FeatureRegistry* registry, Materializer* materializer)
      : registry_(registry), materializer_(materializer) {}

  /// Materializes every due feature at logical time `now`. Returns the
  /// number of features refreshed.
  StatusOr<int> RunDue(Timestamp now);

  /// Steps the clock from `from` to `to` in `tick` increments, running due
  /// features at each step (inclusive of `to`). Returns total refreshes.
  StatusOr<int> RunInterval(Timestamp from, Timestamp to, Timestamp tick);

  /// Time of the next scheduled refresh across all features, or
  /// kMaxTimestamp if nothing is registered.
  Timestamp NextDue() const;

  /// now - last successful refresh (kMaxTimestamp when never refreshed).
  /// This is *materialization staleness*; data freshness lives in the
  /// quality module.
  Timestamp RefreshStaleness(const std::string& feature, Timestamp now) const;

  const RefreshState* GetState(const std::string& feature) const;

 private:
  const FeatureRegistry* registry_;  // Not owned.
  Materializer* materializer_;       // Not owned.
  std::map<std::string, RefreshState> states_;
};

}  // namespace mlfs

#endif  // MLFS_REGISTRY_ORCHESTRATOR_H_
