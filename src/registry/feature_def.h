#ifndef MLFS_REGISTRY_FEATURE_DEF_H_
#define MLFS_REGISTRY_FEATURE_DEF_H_

#include <string>
#include <vector>

#include "common/ref.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace mlfs {

/// A user-authored feature definition (paper §2.2.1, "feature authoring and
/// publishing"): definitional metadata plus a transformation expression over
/// a source table.
struct FeatureDefinition {
  /// Globally unique feature name, e.g. "user_trip_rate_7d".
  std::string name;
  /// Entity type the feature describes, e.g. "user" or "driver".
  std::string entity;
  /// Offline table the definition reads from.
  std::string source_table;
  /// Transformation over the source table's columns, in the expression DSL
  /// (e.g. "trips_7d / (trips_30d + 1)").
  std::string expression;
  /// How often the orchestrator refreshes the materialized value.
  Timestamp cadence = kMicrosPerDay;
  /// TTL of the materialized value in the online store (0 = store default).
  Timestamp online_ttl = 0;
  std::string description;
  std::string owner;
};

/// A published feature: the definition plus registry-assigned metadata.
struct RegisteredFeature {
  FeatureDefinition def;
  /// Monotonically increasing per name; re-publishing bumps it.
  int version = 1;
  Timestamp registered_at = 0;
  /// Statically inferred output type of the expression.
  FeatureType output_type = FeatureType::kNull;
  /// Source columns the expression references (lineage).
  std::vector<std::string> input_columns;
  /// The source table's entity/time columns, captured at publish time so
  /// serving-time evaluation can locate the inputs without the table.
  std::string source_entity_column;
  std::string source_time_column;
  bool deprecated = false;

  /// "name@vN".
  std::string VersionedName() const {
    return FormatVersionedRef(def.name, version);
  }
};

/// Online view mirroring the latest row of offline table `table`, written
/// by FeatureStore::Ingest and read by the serving-time computed-feature
/// path. The "~" prefix keeps it out of the user view namespace.
inline std::string SourceMirrorViewName(const std::string& table) {
  return "~src/" + table;
}

}  // namespace mlfs

#endif  // MLFS_REGISTRY_FEATURE_DEF_H_
