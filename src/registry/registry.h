#ifndef MLFS_REGISTRY_REGISTRY_H_
#define MLFS_REGISTRY_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "registry/feature_def.h"
#include "storage/offline_store.h"

namespace mlfs {

/// Central catalog of published feature definitions: the component that
/// gives an organization *definitional consistency* — one shared, versioned
/// definition per feature instead of per-team copies (paper §2.1 challenge
/// (1), §2.2.1).
///
/// Publishing validates the definition against the source table's schema
/// (unknown columns and type errors are rejected at publish time, not at
/// serving time). Re-publishing an existing name creates a new version;
/// old versions remain queryable for reproducibility.
class FeatureRegistry {
 public:
  /// `offline` is used to resolve and validate source tables; not owned.
  explicit FeatureRegistry(const OfflineStore* offline) : offline_(offline) {}

  /// Publishes a definition; returns the assigned version.
  StatusOr<int> Publish(const FeatureDefinition& def, Timestamp now);

  /// Latest version of `name` (including deprecated ones).
  StatusOr<RegisteredFeature> Get(const std::string& name) const;

  /// A specific version of `name`.
  StatusOr<RegisteredFeature> GetVersion(const std::string& name,
                                         int version) const;

  /// Latest versions of all features, sorted by name.
  std::vector<RegisteredFeature> ListLatest() const;

  /// All features (latest version) describing `entity`.
  std::vector<RegisteredFeature> ListByEntity(const std::string& entity) const;

  /// Marks the latest version of `name` deprecated.
  Status Deprecate(const std::string& name);

  /// Names of features whose lineage includes `source_table`.`column` —
  /// "which features break if this column changes?".
  std::vector<std::string> FeaturesReadingColumn(
      const std::string& source_table, const std::string& column) const;

  size_t num_features() const;

  /// Serializes every version of every definition.
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) registry. Source tables are
  /// *not* revalidated (they may be restored separately); version numbers
  /// are preserved.
  Status Restore(std::string_view snapshot);

 private:
  const OfflineStore* offline_;  // Not owned.
  mutable std::mutex mu_;
  // name -> all versions, ascending.
  std::map<std::string, std::vector<RegisteredFeature>> features_;
};

}  // namespace mlfs

#endif  // MLFS_REGISTRY_REGISTRY_H_
