#ifndef MLFS_REGISTRY_REGISTRY_H_
#define MLFS_REGISTRY_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "lineage/lineage_graph.h"
#include "registry/feature_def.h"
#include "storage/offline_store.h"

namespace mlfs {

/// Central catalog of published feature definitions: the component that
/// gives an organization *definitional consistency* — one shared, versioned
/// definition per feature instead of per-team copies (paper §2.1 challenge
/// (1), §2.2.1).
///
/// Publishing validates the definition against the source table's schema
/// (unknown columns and type errors are rejected at publish time, not at
/// serving time). Re-publishing an existing name creates a new version;
/// old versions remain queryable for reproducibility.
///
/// Every publish is recorded in a LineageGraph: the feature version as a
/// `feature` artifact with `derived_from` edges to the source columns its
/// expression reads (and each column to its table), so column-level impact
/// questions are closure queries over the shared graph. Publishing version
/// K marks version K-1 superseded; Deprecate fans a kDeprecated
/// StalenessEvent to the feature's transitive consumers.
class FeatureRegistry {
 public:
  /// `offline` resolves and validates source tables; `lineage` (both not
  /// owned) is the shared cross-layer graph — when null the registry owns a
  /// private graph (standalone use in tests/tools).
  explicit FeatureRegistry(const OfflineStore* offline,
                           LineageGraph* lineage = nullptr);

  /// Publishes a definition; returns the assigned version.
  StatusOr<int> Publish(const FeatureDefinition& def, Timestamp now);

  /// Latest version of `name` (including deprecated ones).
  StatusOr<RegisteredFeature> Get(const std::string& name) const;

  /// A specific version of `name`.
  StatusOr<RegisteredFeature> GetVersion(const std::string& name,
                                         int version) const;

  /// Latest versions of all features, sorted by name.
  std::vector<RegisteredFeature> ListLatest() const;

  /// All features (latest version) describing `entity`.
  std::vector<RegisteredFeature> ListByEntity(const std::string& entity) const;

  /// Marks the latest version of `name` deprecated and emits a kDeprecated
  /// StalenessEvent fanned out to its transitive downstream consumers.
  Status Deprecate(const std::string& name, Timestamp now = 0);

  /// Names of features whose latest version reads `source_table`.`column` —
  /// "which features break if this column changes?". Answered from the
  /// lineage graph's reverse edges.
  std::vector<std::string> FeaturesReadingColumn(
      const std::string& source_table, const std::string& column) const;

  size_t num_features() const;

  /// The lineage graph this registry records into (shared or owned).
  LineageGraph& lineage_graph() { return *lineage_; }
  const LineageGraph& lineage_graph() const { return *lineage_; }

  /// Serializes every version of every definition.
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) registry. Source tables are
  /// *not* revalidated (they may be restored separately); version numbers
  /// are preserved.
  Status Restore(std::string_view snapshot);

 private:
  /// Records `reg` (already version-stamped) into the lineage graph.
  void RecordLineage(const RegisteredFeature& reg);

  const OfflineStore* offline_;  // Not owned.
  mutable std::mutex mu_;
  // name -> all versions, ascending.
  std::map<std::string, std::vector<RegisteredFeature>> features_;
  std::unique_ptr<LineageGraph> owned_lineage_;
  LineageGraph* lineage_;  // Shared (not owned) or owned_lineage_.get().
};

}  // namespace mlfs

#endif  // MLFS_REGISTRY_REGISTRY_H_
