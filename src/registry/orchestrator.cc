#include "registry/orchestrator.h"

#include <algorithm>

namespace mlfs {

StatusOr<int> Orchestrator::RunDue(Timestamp now) {
  int refreshed = 0;
  for (const RegisteredFeature& feature : registry_->ListLatest()) {
    if (feature.deprecated) continue;
    RefreshState& state = states_[feature.def.name];
    const bool never_ran = state.last_run == kMinTimestamp;
    if (!never_ran && now < state.last_run + feature.def.cadence) continue;
    if (never_ran && now < feature.registered_at) continue;
    MLFS_ASSIGN_OR_RETURN(MaterializationResult result,
                          materializer_->Materialize(feature, now));
    state.last_run = now;
    ++state.runs;
    state.entities_updated_total += result.entities_updated;
    ++refreshed;
  }
  return refreshed;
}

StatusOr<int> Orchestrator::RunInterval(Timestamp from, Timestamp to,
                                        Timestamp tick) {
  if (tick <= 0) return Status::InvalidArgument("tick must be positive");
  int total = 0;
  for (Timestamp now = from; now <= to; now += tick) {
    MLFS_ASSIGN_OR_RETURN(int n, RunDue(now));
    total += n;
  }
  return total;
}

Timestamp Orchestrator::NextDue() const {
  Timestamp next = kMaxTimestamp;
  for (const RegisteredFeature& feature : registry_->ListLatest()) {
    if (feature.deprecated) continue;
    auto it = states_.find(feature.def.name);
    Timestamp due = (it == states_.end() ||
                     it->second.last_run == kMinTimestamp)
                        ? feature.registered_at
                        : it->second.last_run + feature.def.cadence;
    next = std::min(next, due);
  }
  return next;
}

Timestamp Orchestrator::RefreshStaleness(const std::string& feature,
                                         Timestamp now) const {
  auto it = states_.find(feature);
  if (it == states_.end() || it->second.last_run == kMinTimestamp) {
    return kMaxTimestamp;
  }
  return std::max<Timestamp>(0, now - it->second.last_run);
}

const RefreshState* Orchestrator::GetState(const std::string& feature) const {
  auto it = states_.find(feature);
  return it == states_.end() ? nullptr : &it->second;
}

}  // namespace mlfs
