#include "registry/registry.h"

#include <algorithm>

#include "common/serde.h"
#include "expr/evaluator.h"
#include "expr/parser.h"

namespace mlfs {

FeatureRegistry::FeatureRegistry(const OfflineStore* offline,
                                 LineageGraph* lineage)
    : offline_(offline) {
  if (lineage == nullptr) {
    owned_lineage_ = std::make_unique<LineageGraph>();
    lineage_ = owned_lineage_.get();
  } else {
    lineage_ = lineage;
  }
}

StatusOr<int> FeatureRegistry::Publish(const FeatureDefinition& def,
                                       Timestamp now) {
  if (def.name.empty()) {
    return Status::InvalidArgument("feature needs a name");
  }
  if (def.entity.empty()) {
    return Status::InvalidArgument("feature '" + def.name +
                                   "' needs an entity");
  }
  if (def.cadence <= 0) {
    return Status::InvalidArgument("feature '" + def.name +
                                   "' needs a positive cadence");
  }
  MLFS_ASSIGN_OR_RETURN(OfflineTable* table,
                        offline_->GetTable(def.source_table));
  MLFS_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(def.expression));
  MLFS_ASSIGN_OR_RETURN(FeatureType output_type,
                        InferType(*expr, *table->options().schema));
  if (output_type == FeatureType::kNull) {
    return Status::InvalidArgument("feature '" + def.name +
                                   "' expression is always NULL");
  }

  RegisteredFeature reg;
  reg.def = def;
  reg.registered_at = now;
  reg.output_type = output_type;
  reg.input_columns = expr->ReferencedColumns();
  reg.source_entity_column = table->options().entity_column;
  reg.source_time_column = table->options().time_column;

  int version = 0;
  {
    std::lock_guard lock(mu_);
    auto& versions = features_[def.name];
    reg.version = versions.empty() ? 1 : versions.back().version + 1;
    version = reg.version;
    versions.push_back(reg);
  }
  // Lineage recording and staleness fan-out run outside mu_ so listeners
  // (alerting bridges) can call back into the registry.
  RecordLineage(reg);
  if (version > 1) {
    (void)lineage_->MarkStale(
        FeatureArtifact(def.name, version - 1), StalenessReason::kSuperseded,
        now, "superseded by " + reg.VersionedName());
  }
  return version;
}

void FeatureRegistry::RecordLineage(const RegisteredFeature& reg) {
  const ArtifactId self = FeatureArtifact(reg.def.name, reg.version);
  (void)lineage_->AddArtifact(self);
  for (const std::string& column : reg.input_columns) {
    const ArtifactId col = ColumnArtifact(reg.def.source_table, column);
    (void)lineage_->AddEdge(self, EdgeKind::kDerivedFrom, col);
    (void)lineage_->AddEdge(col, EdgeKind::kDerivedFrom,
                            TableArtifact(reg.def.source_table));
  }
  if (reg.input_columns.empty() && !reg.def.source_table.empty()) {
    // Constant expressions still depend on the table existing.
    (void)lineage_->AddEdge(self, EdgeKind::kDerivedFrom,
                            TableArtifact(reg.def.source_table));
  }
}

StatusOr<RegisteredFeature> FeatureRegistry::Get(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = features_.find(name);
  if (it == features_.end()) {
    return Status::NotFound("feature '" + name + "' not registered");
  }
  return it->second.back();
}

StatusOr<RegisteredFeature> FeatureRegistry::GetVersion(
    const std::string& name, int version) const {
  std::lock_guard lock(mu_);
  auto it = features_.find(name);
  if (it == features_.end()) {
    return Status::NotFound("feature '" + name + "' not registered");
  }
  for (const auto& reg : it->second) {
    if (reg.version == version) return reg;
  }
  return Status::NotFound("feature '" + name + "' has no version " +
                          std::to_string(version));
}

std::vector<RegisteredFeature> FeatureRegistry::ListLatest() const {
  std::lock_guard lock(mu_);
  std::vector<RegisteredFeature> out;
  out.reserve(features_.size());
  for (const auto& [name, versions] : features_) {
    out.push_back(versions.back());
  }
  return out;
}

std::vector<RegisteredFeature> FeatureRegistry::ListByEntity(
    const std::string& entity) const {
  std::vector<RegisteredFeature> out;
  for (auto& reg : ListLatest()) {
    if (reg.def.entity == entity) out.push_back(std::move(reg));
  }
  return out;
}

Status FeatureRegistry::Deprecate(const std::string& name, Timestamp now) {
  int version = 0;
  std::string versioned;
  {
    std::lock_guard lock(mu_);
    auto it = features_.find(name);
    if (it == features_.end()) {
      return Status::NotFound("feature '" + name + "' not registered");
    }
    it->second.back().deprecated = true;
    version = it->second.back().version;
    versioned = it->second.back().VersionedName();
  }
  return lineage_
      ->MarkStale(FeatureArtifact(name, version), StalenessReason::kDeprecated,
                  now, versioned + " deprecated by operator")
      .status();
}

std::vector<std::string> FeatureRegistry::FeaturesReadingColumn(
    const std::string& source_table, const std::string& column) const {
  // Reverse lineage edges: who declared a dependency on this column? Only
  // a feature's *latest* version counts — superseded versions no longer
  // break when the column changes.
  std::vector<std::string> out;
  const std::vector<LineageEdge> readers =
      lineage_->InEdges(ColumnArtifact(source_table, column));
  std::lock_guard lock(mu_);
  for (const LineageEdge& edge : readers) {
    if (edge.from.kind != ArtifactKind::kFeature) continue;
    if (edge.kind != EdgeKind::kDerivedFrom) continue;
    auto it = features_.find(edge.from.name);
    if (it == features_.end() ||
        it->second.back().version != edge.from.version) {
      continue;
    }
    out.push_back(edge.from.name);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t FeatureRegistry::num_features() const {
  std::lock_guard lock(mu_);
  return features_.size();
}

namespace {
constexpr uint32_t kRegistrySnapshotMagic = 0x4d4c4647;  // "MLFG"
}  // namespace

std::string FeatureRegistry::Snapshot() const {
  std::lock_guard lock(mu_);
  Encoder enc;
  enc.PutFixed32(kRegistrySnapshotMagic);
  uint64_t total = 0;
  for (const auto& [name, versions] : features_) total += versions.size();
  enc.PutVarint64(total);
  for (const auto& [name, versions] : features_) {
    for (const RegisteredFeature& reg : versions) {
      enc.PutString(reg.def.name);
      enc.PutString(reg.def.entity);
      enc.PutString(reg.def.source_table);
      enc.PutString(reg.def.expression);
      enc.PutFixed64(static_cast<uint64_t>(reg.def.cadence));
      enc.PutFixed64(static_cast<uint64_t>(reg.def.online_ttl));
      enc.PutString(reg.def.description);
      enc.PutString(reg.def.owner);
      enc.PutVarint64(static_cast<uint64_t>(reg.version));
      enc.PutFixed64(static_cast<uint64_t>(reg.registered_at));
      enc.PutU8(static_cast<uint8_t>(reg.output_type));
      enc.PutVarint64(reg.input_columns.size());
      for (const auto& column : reg.input_columns) enc.PutString(column);
      enc.PutString(reg.source_entity_column);
      enc.PutString(reg.source_time_column);
      enc.PutU8(reg.deprecated ? 1 : 0);
    }
  }
  return enc.Release();
}

Status FeatureRegistry::Restore(std::string_view snapshot) {
  std::unique_lock lock(mu_);
  if (!features_.empty()) {
    return Status::FailedPrecondition("Restore requires an empty registry");
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kRegistrySnapshotMagic) {
    return Status::Corruption("bad registry snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t total, dec.GetVarint64());
  for (uint64_t i = 0; i < total; ++i) {
    RegisteredFeature reg;
    MLFS_ASSIGN_OR_RETURN(reg.def.name, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(reg.def.entity, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(reg.def.source_table, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(reg.def.expression, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint64_t cadence, dec.GetFixed64());
    reg.def.cadence = static_cast<Timestamp>(cadence);
    MLFS_ASSIGN_OR_RETURN(uint64_t ttl, dec.GetFixed64());
    reg.def.online_ttl = static_cast<Timestamp>(ttl);
    MLFS_ASSIGN_OR_RETURN(reg.def.description, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(reg.def.owner, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint64_t version, dec.GetVarint64());
    reg.version = static_cast<int>(version);
    MLFS_ASSIGN_OR_RETURN(uint64_t registered_at, dec.GetFixed64());
    reg.registered_at = static_cast<Timestamp>(registered_at);
    MLFS_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
    if (type > static_cast<uint8_t>(FeatureType::kEmbedding)) {
      return Status::Corruption("bad output type tag");
    }
    reg.output_type = static_cast<FeatureType>(type);
    MLFS_ASSIGN_OR_RETURN(uint64_t num_columns, dec.GetVarint64());
    for (uint64_t c = 0; c < num_columns; ++c) {
      MLFS_ASSIGN_OR_RETURN(std::string column, dec.GetString());
      reg.input_columns.push_back(std::move(column));
    }
    MLFS_ASSIGN_OR_RETURN(reg.source_entity_column, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(reg.source_time_column, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint8_t deprecated, dec.GetU8());
    reg.deprecated = deprecated != 0;
    features_[reg.def.name].push_back(std::move(reg));
  }
  // Re-record graph structure (idempotent when the graph itself was also
  // restored); no staleness events are re-emitted.
  std::vector<RegisteredFeature> restored;
  for (const auto& [name, versions] : features_) {
    restored.insert(restored.end(), versions.begin(), versions.end());
  }
  lock.unlock();
  for (const RegisteredFeature& reg : restored) RecordLineage(reg);
  return Status::OK();
}

}  // namespace mlfs
