#ifndef MLFS_REGISTRY_MATERIALIZER_H_
#define MLFS_REGISTRY_MATERIALIZER_H_

#include <string>

#include "common/status.h"
#include "lineage/lineage_graph.h"
#include "registry/feature_def.h"
#include "storage/offline_store.h"
#include "storage/online_store.h"

namespace mlfs {

/// Outcome of one materialization run.
struct MaterializationResult {
  uint64_t entities_updated = 0;
  /// Rows whose expression evaluated to NULL (still written; NULL is a
  /// legal feature value the quality layer tracks).
  uint64_t null_values = 0;
  /// Rows flushed to the offline feature log (one AppendBatch per run,
  /// not one exclusive-locked Append per entity).
  uint64_t rows_written = 0;
  Timestamp ran_at = 0;
};

/// Computes a registered feature's current value for every entity from the
/// source offline table and pushes the results to the online store
/// (serving) and an offline log table "<feature>__log" (training &
/// monitoring). The online view and log table are created on first use.
///
/// The materialized view schema is {entity, "event_time", "value"} where
/// event_time is the *source row's* event time — freshness therefore
/// reflects data age, not materialization age.
class Materializer {
 public:
  /// `lineage` may be null (no lineage stamping — standalone use); when
  /// set, every run records view --materializes--> feature@vK and refreshes
  /// the view's staleness annotation from the feature's.
  Materializer(OnlineStore* online, OfflineStore* offline,
               LineageGraph* lineage = nullptr)
      : online_(online), offline_(offline), lineage_(lineage) {}

  /// Materializes `feature` as of logical time `now`.
  StatusOr<MaterializationResult> Materialize(const RegisteredFeature& feature,
                                              Timestamp now);

  /// Name of the offline log table for `feature_name`.
  static std::string LogTableName(const std::string& feature_name) {
    return feature_name + "__log";
  }

 private:
  OnlineStore* online_;    // Not owned.
  OfflineStore* offline_;  // Not owned.
  LineageGraph* lineage_;  // Not owned; may be null.
};

}  // namespace mlfs

#endif  // MLFS_REGISTRY_MATERIALIZER_H_
