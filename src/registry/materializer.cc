#include "registry/materializer.h"

#include "expr/evaluator.h"
#include "storage/entity_key.h"

namespace mlfs {

StatusOr<MaterializationResult> Materializer::Materialize(
    const RegisteredFeature& feature, Timestamp now) {
  MLFS_ASSIGN_OR_RETURN(OfflineTable* source,
                        offline_->GetTable(feature.def.source_table));
  const OfflineTableOptions& source_options = source->options();
  int entity_idx = source_options.schema->FieldIndex(
      source_options.entity_column);
  FeatureType entity_type =
      source_options.schema->field(entity_idx).type;

  MLFS_ASSIGN_OR_RETURN(
      CompiledExpr compiled,
      CompiledExpr::Compile(feature.def.expression, source_options.schema));

  // Output layout shared by the online view and the offline log.
  MLFS_ASSIGN_OR_RETURN(
      SchemaPtr out_schema,
      Schema::Create({{"entity", entity_type, false},
                      {"event_time", FeatureType::kTimestamp, false},
                      {"value", feature.output_type, true}}));
  const std::string& view = feature.def.name;
  if (!online_->HasView(view)) {
    MLFS_RETURN_IF_ERROR(online_->CreateView(view, out_schema));
  } else {
    MLFS_ASSIGN_OR_RETURN(SchemaPtr existing, online_->ViewSchema(view));
    if (!(*existing == *out_schema)) {
      return Status::FailedPrecondition(
          "online view '" + view +
          "' has an incompatible schema (feature type changed between "
          "versions; drop the view first)");
    }
  }
  const std::string log_name = LogTableName(feature.def.name);
  if (!offline_->HasTable(log_name)) {
    OfflineTableOptions log_options;
    log_options.name = log_name;
    log_options.schema = out_schema;
    log_options.entity_column = "entity";
    log_options.time_column = "event_time";
    MLFS_RETURN_IF_ERROR(offline_->CreateTable(std::move(log_options)));
  }
  MLFS_ASSIGN_OR_RETURN(OfflineTable* log_table, offline_->GetTable(log_name));

  MaterializationResult result;
  result.ran_at = now;
  // Batch read: the source table evaluates the compiled expression over its
  // sealed segments column-at-a-time, so the run never materializes
  // full-width source rows — only (entity, event_time, value) cells.
  MLFS_ASSIGN_OR_RETURN(std::vector<MaterializedCell> cells,
                        source->EvalLatestPerEntityAsOf(now, compiled));
  // Buffer the feature-log rows and flush them in one AppendBatch (one
  // exclusive lock for the run) instead of taking the log table's write
  // lock once per entity.
  std::vector<Row> log_rows;
  log_rows.reserve(cells.size());
  for (MaterializedCell& cell : cells) {
    if (cell.value.is_null()) ++result.null_values;
    MLFS_ASSIGN_OR_RETURN(
        Row out_row,
        Row::Create(out_schema, {cell.entity, Value::Time(cell.event_time),
                                 std::move(cell.value)}));
    MLFS_RETURN_IF_ERROR(online_->Put(view, cell.entity, out_row,
                                      cell.event_time, now,
                                      feature.def.online_ttl));
    log_rows.push_back(std::move(out_row));
    ++result.entities_updated;
  }
  MLFS_RETURN_IF_ERROR(log_table->AppendBatch(log_rows));
  // A materialization run is the natural tier boundary: the rows just
  // written are the batch's cold edge, so seal/compact/spill now instead
  // of leaving the work to a mid-query maintenance pass.
  MLFS_RETURN_IF_ERROR(log_table->RunMaintenance());
  result.rows_written = log_rows.size();
  if (lineage_ != nullptr) {
    // Stamp which feature version this view now serves; a re-run against a
    // fresh version clears the view's staleness annotation.
    MLFS_RETURN_IF_ERROR(lineage_->RecordMaterialization(
        ViewArtifact(view), FeatureArtifact(feature.def.name,
                                            feature.version)));
  }
  return result;
}

}  // namespace mlfs
