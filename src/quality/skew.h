#ifndef MLFS_QUALITY_SKEW_H_
#define MLFS_QUALITY_SKEW_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "quality/drift.h"

namespace mlfs {

/// Training–serving skew for one feature column: the distribution a model
/// was trained on vs. what serving currently delivers — "critical model
/// metrics such as training-deployment data skew" (paper §2.2.3).
struct SkewReport {
  std::string column;
  DriftReport drift;
  /// Difference in null fraction (serving - training).
  double null_fraction_delta = 0.0;
  bool skewed = false;
  std::string ToString() const;
};

/// Compares numeric column `column` between `training` and `serving` rows
/// (both sharing a schema with that column). NULLs are excluded from the
/// distribution comparison but tracked via null_fraction_delta; skew fires
/// on drift or on a null-rate change above `null_delta_threshold`.
StatusOr<SkewReport> ComputeSkew(const std::vector<Row>& training,
                                 const std::vector<Row>& serving,
                                 const std::string& column,
                                 DriftThresholds thresholds = {},
                                 double null_delta_threshold = 0.05);

/// Extracts the non-null numeric values of `column` from `rows`.
StatusOr<std::vector<double>> NumericColumn(const std::vector<Row>& rows,
                                            const std::string& column);

}  // namespace mlfs

#endif  // MLFS_QUALITY_SKEW_H_
