#ifndef MLFS_QUALITY_DRIFT_H_
#define MLFS_QUALITY_DRIFT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mlfs {

/// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
/// Inputs need not be sorted. Both samples must be non-empty.
StatusOr<double> KsStatistic(std::vector<double> a, std::vector<double> b);

/// Population Stability Index between two binned distributions (same bin
/// count). Zero counts are smoothed. PSI < 0.1: stable; 0.1-0.25: moderate
/// shift; > 0.25: major shift (industry rule of thumb).
StatusOr<double> PopulationStabilityIndex(
    const std::vector<double>& expected_counts,
    const std::vector<double>& actual_counts);

/// Jensen-Shannon divergence (base-2 log, in [0, 1]) between two binned
/// distributions of equal length. Counts are normalized internally.
StatusOr<double> JensenShannonDivergence(const std::vector<double>& p,
                                         const std::vector<double>& q);

/// Pearson chi-square statistic comparing `actual` category counts against
/// the distribution of `expected` counts (scaled to the actual total).
StatusOr<double> ChiSquareStatistic(const std::vector<double>& expected,
                                    const std::vector<double>& actual);

/// Equal-width binning of `xs` over [lo, hi] into `num_bins` counts;
/// values outside clamp to the edge bins.
std::vector<double> BinCounts(const std::vector<double>& xs, double lo,
                              double hi, size_t num_bins);

/// Quantile bin edges of `xs` (len = num_bins + 1), suitable as PSI
/// reference bins. Requires non-empty input.
StatusOr<std::vector<double>> QuantileBinEdges(std::vector<double> xs,
                                               size_t num_bins);

/// Counts of `xs` falling into bins defined by `edges` (len edges - 1
/// bins); outside values go to the first/last bin.
std::vector<double> BinByEdges(const std::vector<double>& xs,
                               const std::vector<double>& edges);

/// Verdict of one drift check.
struct DriftReport {
  double ks = 0.0;
  double ks_pvalue = 1.0;
  double psi = 0.0;
  double js = 0.0;
  bool drifted = false;
  std::string ToString() const;
};

/// Thresholds at which DriftDetector declares drift (any trigger fires).
struct DriftThresholds {
  double ks_pvalue_below = 0.01;
  double psi_above = 0.25;
  double js_above = 0.1;
};

/// Distribution-shift detector over a numeric feature: fit once on a
/// reference (training-time) sample, then check serving-time samples — the
/// feature store's near-real-time input-drift monitor (paper §2.2.3).
class DriftDetector {
 public:
  /// `reference` must have at least 10 values. `num_bins` controls the
  /// PSI/JS quantile binning.
  static StatusOr<DriftDetector> Fit(std::vector<double> reference,
                                     size_t num_bins = 10,
                                     DriftThresholds thresholds = {});

  /// Compares `current` (non-empty) against the reference.
  StatusOr<DriftReport> Check(const std::vector<double>& current) const;

  const std::vector<double>& reference() const { return reference_; }

 private:
  DriftDetector(std::vector<double> reference, std::vector<double> edges,
                std::vector<double> reference_counts,
                DriftThresholds thresholds)
      : reference_(std::move(reference)),
        edges_(std::move(edges)),
        reference_counts_(std::move(reference_counts)),
        thresholds_(thresholds) {}

  std::vector<double> reference_;  // Sorted.
  std::vector<double> edges_;
  std::vector<double> reference_counts_;
  DriftThresholds thresholds_;
};

}  // namespace mlfs

#endif  // MLFS_QUALITY_DRIFT_H_
