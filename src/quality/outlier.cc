#include "quality/outlier.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mlfs {
namespace {

double MedianOfSorted(const std::vector<double>& xs) {
  size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

StatusOr<RobustOutlierDetector> RobustOutlierDetector::Fit(
    std::vector<double> reference, double threshold) {
  if (reference.size() < 3) {
    return Status::InvalidArgument("outlier detector needs >= 3 values");
  }
  if (threshold <= 0) {
    return Status::InvalidArgument("threshold must be positive");
  }
  std::sort(reference.begin(), reference.end());
  double median = MedianOfSorted(reference);
  std::vector<double> deviations;
  deviations.reserve(reference.size());
  for (double x : reference) deviations.push_back(std::abs(x - median));
  std::sort(deviations.begin(), deviations.end());
  double mad = MedianOfSorted(deviations);
  return RobustOutlierDetector(median, mad, threshold);
}

double RobustOutlierDetector::Score(double x) const {
  double dev = std::abs(x - median_);
  if (mad_ == 0.0) {
    return dev == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return 0.6745 * dev / mad_;
}

double RobustOutlierDetector::OutlierRate(
    const std::vector<double>& sample) const {
  if (sample.empty()) return 0.0;
  size_t outliers = 0;
  for (double x : sample) outliers += IsOutlier(x);
  return static_cast<double>(outliers) / static_cast<double>(sample.size());
}

}  // namespace mlfs
