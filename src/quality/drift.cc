#include "quality/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "quality/stats_math.h"

namespace mlfs {

StatusOr<double> KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("KS needs non-empty samples");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t i = 0, j = 0;
  double d = 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

StatusOr<double> PopulationStabilityIndex(
    const std::vector<double>& expected_counts,
    const std::vector<double>& actual_counts) {
  if (expected_counts.size() != actual_counts.size() ||
      expected_counts.empty()) {
    return Status::InvalidArgument("PSI needs equal, non-empty bin vectors");
  }
  double e_total = 0, a_total = 0;
  for (double c : expected_counts) {
    if (c < 0) return Status::InvalidArgument("negative bin count");
    e_total += c;
  }
  for (double c : actual_counts) {
    if (c < 0) return Status::InvalidArgument("negative bin count");
    a_total += c;
  }
  if (e_total <= 0 || a_total <= 0) {
    return Status::InvalidArgument("PSI needs positive totals");
  }
  // Laplace smoothing keeps empty bins finite.
  const double n = static_cast<double>(expected_counts.size());
  double psi = 0.0;
  for (size_t i = 0; i < expected_counts.size(); ++i) {
    double e = (expected_counts[i] + 0.5) / (e_total + 0.5 * n);
    double a = (actual_counts[i] + 0.5) / (a_total + 0.5 * n);
    psi += (a - e) * std::log(a / e);
  }
  return psi;
}

StatusOr<double> JensenShannonDivergence(const std::vector<double>& p,
                                         const std::vector<double>& q) {
  if (p.size() != q.size() || p.empty()) {
    return Status::InvalidArgument("JS needs equal, non-empty vectors");
  }
  double pt = 0, qt = 0;
  for (double x : p) {
    if (x < 0) return Status::InvalidArgument("negative mass");
    pt += x;
  }
  for (double x : q) {
    if (x < 0) return Status::InvalidArgument("negative mass");
    qt += x;
  }
  if (pt <= 0 || qt <= 0) {
    return Status::InvalidArgument("JS needs positive totals");
  }
  double js = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double pi = p[i] / pt;
    double qi = q[i] / qt;
    double mi = 0.5 * (pi + qi);
    if (pi > 0) js += 0.5 * pi * std::log2(pi / mi);
    if (qi > 0) js += 0.5 * qi * std::log2(qi / mi);
  }
  return std::max(0.0, js);
}

StatusOr<double> ChiSquareStatistic(const std::vector<double>& expected,
                                    const std::vector<double>& actual) {
  if (expected.size() != actual.size() || expected.empty()) {
    return Status::InvalidArgument("chi-square needs equal bin vectors");
  }
  double e_total = 0, a_total = 0;
  for (double c : expected) e_total += c;
  for (double c : actual) a_total += c;
  if (e_total <= 0 || a_total <= 0) {
    return Status::InvalidArgument("chi-square needs positive totals");
  }
  double chi2 = 0.0;
  for (size_t i = 0; i < expected.size(); ++i) {
    double e = expected[i] / e_total * a_total;
    if (e <= 0) e = 0.5;  // Smooth empty expected bins.
    double diff = actual[i] - e;
    chi2 += diff * diff / e;
  }
  return chi2;
}

std::vector<double> BinCounts(const std::vector<double>& xs, double lo,
                              double hi, size_t num_bins) {
  std::vector<double> counts(num_bins, 0.0);
  if (num_bins == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(num_bins);
  for (double x : xs) {
    double idx = (x - lo) / width;
    size_t i =
        idx < 0 ? 0
                : std::min(num_bins - 1, static_cast<size_t>(idx));
    ++counts[i];
  }
  return counts;
}

StatusOr<std::vector<double>> QuantileBinEdges(std::vector<double> xs,
                                               size_t num_bins) {
  if (xs.empty() || num_bins == 0) {
    return Status::InvalidArgument("quantile edges need data and bins");
  }
  std::sort(xs.begin(), xs.end());
  std::vector<double> edges(num_bins + 1);
  for (size_t i = 0; i <= num_bins; ++i) {
    double q = static_cast<double>(i) / static_cast<double>(num_bins);
    size_t idx = std::min(xs.size() - 1,
                          static_cast<size_t>(q * (xs.size() - 1)));
    edges[i] = xs[idx];
  }
  return edges;
}

std::vector<double> BinByEdges(const std::vector<double>& xs,
                               const std::vector<double>& edges) {
  std::vector<double> counts(edges.size() > 1 ? edges.size() - 1 : 0, 0.0);
  if (counts.empty()) return counts;
  for (double x : xs) {
    // Rightmost bin whose left edge is <= x.
    auto it = std::upper_bound(edges.begin(), edges.end(), x);
    size_t i;
    if (it == edges.begin()) {
      i = 0;
    } else {
      i = static_cast<size_t>(it - edges.begin()) - 1;
      if (i >= counts.size()) i = counts.size() - 1;
    }
    ++counts[i];
  }
  return counts;
}

std::string DriftReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ks=%.4f (p=%.4g) psi=%.4f js=%.4f -> %s", ks, ks_pvalue,
                psi, js, drifted ? "DRIFT" : "stable");
  return buf;
}

StatusOr<DriftDetector> DriftDetector::Fit(std::vector<double> reference,
                                           size_t num_bins,
                                           DriftThresholds thresholds) {
  if (reference.size() < 10) {
    return Status::InvalidArgument(
        "drift detector needs >= 10 reference values");
  }
  if (num_bins < 2) {
    return Status::InvalidArgument("drift detector needs >= 2 bins");
  }
  std::sort(reference.begin(), reference.end());
  MLFS_ASSIGN_OR_RETURN(std::vector<double> edges,
                        QuantileBinEdges(reference, num_bins));
  std::vector<double> ref_counts = BinByEdges(reference, edges);
  return DriftDetector(std::move(reference), std::move(edges),
                       std::move(ref_counts), thresholds);
}

StatusOr<DriftReport> DriftDetector::Check(
    const std::vector<double>& current) const {
  if (current.empty()) {
    return Status::InvalidArgument("drift check needs data");
  }
  DriftReport report;
  MLFS_ASSIGN_OR_RETURN(report.ks, KsStatistic(reference_, current));
  report.ks_pvalue = KsPValue(report.ks, reference_.size(), current.size());
  std::vector<double> cur_counts = BinByEdges(current, edges_);
  MLFS_ASSIGN_OR_RETURN(report.psi,
                        PopulationStabilityIndex(reference_counts_,
                                                 cur_counts));
  MLFS_ASSIGN_OR_RETURN(report.js,
                        JensenShannonDivergence(reference_counts_,
                                                cur_counts));
  report.drifted = report.ks_pvalue < thresholds_.ks_pvalue_below ||
                   report.psi > thresholds_.psi_above ||
                   report.js > thresholds_.js_above;
  return report;
}

}  // namespace mlfs
