#include "quality/skew.h"

#include <cmath>
#include <cstdio>

#include "quality/feature_stats.h"

namespace mlfs {

std::string SkewReport::ToString() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf), "%s: %s null_delta=%+.3f -> %s",
                column.c_str(), drift.ToString().c_str(),
                null_fraction_delta, skewed ? "SKEW" : "ok");
  return buf;
}

StatusOr<std::vector<double>> NumericColumn(const std::vector<Row>& rows,
                                            const std::string& column) {
  std::vector<double> out;
  if (rows.empty()) return out;
  const SchemaPtr& schema = rows.front().schema();
  int idx = schema ? schema->FieldIndex(column) : -1;
  if (idx < 0) return Status::NotFound("no column named '" + column + "'");
  out.reserve(rows.size());
  for (const Row& row : rows) {
    const Value& v = row.value(static_cast<size_t>(idx));
    if (v.is_null()) continue;
    auto d = v.AsDouble();
    if (!d.ok()) {
      return Status::InvalidArgument("column '" + column +
                                     "' is not numeric");
    }
    out.push_back(*d);
  }
  return out;
}

StatusOr<SkewReport> ComputeSkew(const std::vector<Row>& training,
                                 const std::vector<Row>& serving,
                                 const std::string& column,
                                 DriftThresholds thresholds,
                                 double null_delta_threshold) {
  SkewReport report;
  report.column = column;
  MLFS_ASSIGN_OR_RETURN(std::vector<double> train_values,
                        NumericColumn(training, column));
  MLFS_ASSIGN_OR_RETURN(std::vector<double> serve_values,
                        NumericColumn(serving, column));
  MLFS_ASSIGN_OR_RETURN(ColumnStats train_stats,
                        ComputeColumnStats(training, column));
  MLFS_ASSIGN_OR_RETURN(ColumnStats serve_stats,
                        ComputeColumnStats(serving, column));
  report.null_fraction_delta =
      serve_stats.null_fraction() - train_stats.null_fraction();

  if (train_values.size() >= 10 && !serve_values.empty()) {
    MLFS_ASSIGN_OR_RETURN(DriftDetector detector,
                          DriftDetector::Fit(std::move(train_values), 10,
                                             thresholds));
    MLFS_ASSIGN_OR_RETURN(report.drift, detector.Check(serve_values));
  }
  report.skewed = report.drift.drifted ||
                  std::abs(report.null_fraction_delta) > null_delta_threshold;
  return report;
}

}  // namespace mlfs
