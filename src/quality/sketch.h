#ifndef MLFS_QUALITY_SKETCH_H_
#define MLFS_QUALITY_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// HyperLogLog distinct-count sketch (Flajolet et al., with the standard
/// small/large-range corrections). Feature stores track feature
/// cardinality continuously; exact hash sets do not survive production
/// volumes, sketches do: this one uses 2^precision bytes regardless of
/// stream length, with ~1.04/sqrt(2^precision) relative error.
class HyperLogLog {
 public:
  /// `precision` in [4, 16]: 2^precision registers.
  static StatusOr<HyperLogLog> Create(int precision = 12);

  void Add(const Value& v) { AddHash(HashValue(v)); }
  void AddHash(uint64_t hash);

  /// Estimated number of distinct values.
  double Estimate() const;

  /// Merges another sketch with the same precision.
  Status Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

 private:
  explicit HyperLogLog(int precision)
      : precision_(precision),
        registers_(static_cast<size_t>(1) << precision, 0) {}

  int precision_;
  std::vector<uint8_t> registers_;
};

/// Count-Min sketch for approximate per-value frequencies and heavy-hitter
/// detection over categorical feature streams (which values dominate a
/// feature — the skew the Zipfian world guarantees).
class CountMinSketch {
 public:
  /// `width` counters per row, `depth` rows. Error is ~ stream_size/width
  /// with probability 1 - 2^-depth.
  static StatusOr<CountMinSketch> Create(size_t width = 2048,
                                         size_t depth = 4);

  void Add(const Value& v, uint64_t count = 1);

  /// Upper-bound frequency estimate (never under-counts).
  uint64_t Estimate(const Value& v) const;

  uint64_t total() const { return total_; }

 private:
  CountMinSketch(size_t width, size_t depth)
      : width_(width), depth_(depth), counts_(width * depth, 0) {}

  size_t width_;
  size_t depth_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_QUALITY_SKETCH_H_
