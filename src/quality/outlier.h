#ifndef MLFS_QUALITY_OUTLIER_H_
#define MLFS_QUALITY_OUTLIER_H_

#include <vector>

#include "common/status.h"

namespace mlfs {

/// Robust (median/MAD-based) outlier detector for near-real-time scoring of
/// serving-time feature values (paper §2.2.3: "near real-time outlier ...
/// detection"). Fit once on a reference sample; Score() is O(1).
class RobustOutlierDetector {
 public:
  /// `reference` needs >= 3 values. `threshold` is the robust z-score above
  /// which IsOutlier() fires (3.5 is the standard Iglewicz-Hoaglin cut).
  static StatusOr<RobustOutlierDetector> Fit(std::vector<double> reference,
                                             double threshold = 3.5);

  /// Robust z-score: 0.6745 * |x - median| / MAD. When MAD is zero
  /// (constant reference), returns 0 for x == median and +inf otherwise.
  double Score(double x) const;

  bool IsOutlier(double x) const { return Score(x) > threshold_; }

  /// Fraction of `sample` flagged as outliers.
  double OutlierRate(const std::vector<double>& sample) const;

  double median() const { return median_; }
  double mad() const { return mad_; }

 private:
  RobustOutlierDetector(double median, double mad, double threshold)
      : median_(median), mad_(mad), threshold_(threshold) {}

  double median_;
  double mad_;
  double threshold_;
};

}  // namespace mlfs

#endif  // MLFS_QUALITY_OUTLIER_H_
