#include "quality/streaming_monitor.h"

#include <cstdio>

namespace mlfs {

std::string StreamingFinding::ToString() const {
  char buf[224];
  if (kind == Kind::kDrift) {
    std::snprintf(buf, sizeof(buf), "[%s] drift: %s",
                  FormatTimestamp(at).c_str(), drift.ToString().c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "[%s] outlier burst: %.1f%% of window",
                  FormatTimestamp(at).c_str(), 100.0 * outlier_rate);
  }
  return buf;
}

StatusOr<StreamingDriftMonitor> StreamingDriftMonitor::Create(
    StreamingMonitorOptions options) {
  if (options.reference_size < 10 || options.window_size < 10 ||
      options.check_every == 0) {
    return Status::InvalidArgument("bad streaming monitor options");
  }
  return StreamingDriftMonitor(options);
}

StatusOr<std::optional<StreamingFinding>> StreamingDriftMonitor::Observe(
    double value, Timestamp at) {
  ++observed_;
  if (!detector_.has_value()) {
    reference_buffer_.push_back(value);
    if (reference_buffer_.size() >= options_.reference_size) {
      MLFS_ASSIGN_OR_RETURN(
          DriftDetector detector,
          DriftDetector::Fit(reference_buffer_, 10, options_.thresholds));
      detector_ = std::move(detector);
      MLFS_ASSIGN_OR_RETURN(RobustOutlierDetector outlier,
                            RobustOutlierDetector::Fit(
                                std::move(reference_buffer_),
                                options_.outlier_threshold));
      outlier_ = std::move(outlier);
      reference_buffer_.clear();
    }
    return std::optional<StreamingFinding>();
  }

  ++post_calibration_;
  outliers_seen_ += outlier_->IsOutlier(value);
  window_.push_back(value);
  if (window_.size() > options_.window_size) window_.pop_front();
  if (window_.size() < options_.window_size) {
    return std::optional<StreamingFinding>();
  }
  if (++since_last_check_ < options_.check_every) {
    return std::optional<StreamingFinding>();
  }
  since_last_check_ = 0;

  std::vector<double> current(window_.begin(), window_.end());
  // Outlier burst check first: a window whose outlier rate is far above
  // the calibration false-positive rate (~0.1% at z=3.5 for Gaussians).
  double rate = outlier_->OutlierRate(current);
  if (rate > 0.05) {
    StreamingFinding finding;
    finding.kind = StreamingFinding::Kind::kOutlierBurst;
    finding.at = at;
    finding.outlier_rate = rate;
    return std::optional<StreamingFinding>(std::move(finding));
  }
  MLFS_ASSIGN_OR_RETURN(DriftReport report, detector_->Check(current));
  if (report.drifted) {
    StreamingFinding finding;
    finding.kind = StreamingFinding::Kind::kDrift;
    finding.at = at;
    finding.drift = report;
    return std::optional<StreamingFinding>(std::move(finding));
  }
  return std::optional<StreamingFinding>();
}

double StreamingDriftMonitor::outlier_rate() const {
  return post_calibration_
             ? static_cast<double>(outliers_seen_) /
                   static_cast<double>(post_calibration_)
             : 0.0;
}

}  // namespace mlfs
