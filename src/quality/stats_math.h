#ifndef MLFS_QUALITY_STATS_MATH_H_
#define MLFS_QUALITY_STATS_MATH_H_

#include <cstddef>

namespace mlfs {

/// ln Γ(x) for x > 0 (Lanczos approximation, ~1e-10 relative error).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: P(X >= x).
double ChiSquareSf(double x, double df);

/// Asymptotic Kolmogorov-Smirnov two-sample p-value for statistic `d` with
/// sample sizes `n1`, `n2` (Numerical Recipes' Q_KS with the Stephens
/// small-sample correction).
double KsPValue(double d, size_t n1, size_t n2);

/// Standard normal CDF.
double NormalCdf(double x);

}  // namespace mlfs

#endif  // MLFS_QUALITY_STATS_MATH_H_
