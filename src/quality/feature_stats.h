#ifndef MLFS_QUALITY_FEATURE_STATS_H_
#define MLFS_QUALITY_FEATURE_STATS_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/row.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "storage/online_store.h"

namespace mlfs {

/// Summary statistics of one column over a row batch: the tabular feature
/// quality metrics feature stores expose — "FSs measure feature freshness,
/// null counts, and mutual information across features" (paper §2.2.2).
struct ColumnStats {
  std::string column;
  FeatureType type = FeatureType::kNull;
  uint64_t count = 0;        // Rows examined.
  uint64_t null_count = 0;
  uint64_t distinct_count = 0;  // Exact (hash-set based).
  // Numeric-only moments (0 when the column is not numeric).
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  double null_fraction() const {
    return count == 0 ? 0.0
                      : static_cast<double>(null_count) /
                            static_cast<double>(count);
  }
  std::string ToString() const;
};

/// Computes ColumnStats for `column` over `rows` (all rows must share a
/// schema containing the column).
StatusOr<ColumnStats> ComputeColumnStats(const std::vector<Row>& rows,
                                         const std::string& column);

/// Stats for every column of `rows`.
StatusOr<std::vector<ColumnStats>> ComputeAllColumnStats(
    const std::vector<Row>& rows);

/// Feature freshness: distribution of (now - event_time) over the online
/// cells of `view` for `entity_keys`. Missing/expired entities are counted
/// in `missing`.
struct FreshnessReport {
  Histogram age;       // Age in seconds.
  uint64_t missing = 0;
};
FreshnessReport ComputeFreshness(const OnlineStore& store,
                                 const std::string& view,
                                 const std::vector<Value>& entity_keys,
                                 Timestamp now);

/// Mutual information I(X;Y) in bits between two columns, estimated by
/// discretizing numeric columns into `num_bins` quantile bins and using
/// value identity for categorical columns. NULL rows are dropped pairwise.
StatusOr<double> MutualInformation(const std::vector<Row>& rows,
                                   const std::string& column_x,
                                   const std::string& column_y,
                                   size_t num_bins = 10);

/// Shannon entropy H(X) in bits of a column (same discretization).
StatusOr<double> ColumnEntropy(const std::vector<Row>& rows,
                               const std::string& column,
                               size_t num_bins = 10);

}  // namespace mlfs

#endif  // MLFS_QUALITY_FEATURE_STATS_H_
