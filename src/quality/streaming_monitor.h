#ifndef MLFS_QUALITY_STREAMING_MONITOR_H_
#define MLFS_QUALITY_STREAMING_MONITOR_H_

#include <deque>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/timestamp.h"
#include "quality/drift.h"
#include "quality/outlier.h"

namespace mlfs {

struct StreamingMonitorOptions {
  /// Values accumulated before the reference distribution freezes.
  size_t reference_size = 2000;
  /// Sliding window of recent values compared against the reference.
  size_t window_size = 500;
  /// A drift check runs every `check_every` observations once the window
  /// is full.
  size_t check_every = 250;
  DriftThresholds thresholds;
  /// Robust z-score above which a single value counts as an outlier.
  double outlier_threshold = 3.5;
};

/// One emitted finding.
struct StreamingFinding {
  enum class Kind : uint8_t { kDrift, kOutlierBurst };
  Kind kind;
  Timestamp at = 0;
  DriftReport drift;          // For kDrift.
  double outlier_rate = 0.0;  // For kOutlierBurst.
  std::string ToString() const;
};

/// Near-real-time input monitor for one numeric feature (paper §2.2.3:
/// "near real-time outlier and input drift detection"). Feed it every
/// observed serving value; it self-calibrates a reference on the first
/// `reference_size` observations, then continuously compares a sliding
/// window against that reference and scores each value for outlierness.
///
/// Not thread-safe; wrap per-feature instances behind the store's locks.
class StreamingDriftMonitor {
 public:
  static StatusOr<StreamingDriftMonitor> Create(
      StreamingMonitorOptions options = {});

  /// Observes one value; returns a finding when a scheduled check fires.
  StatusOr<std::optional<StreamingFinding>> Observe(double value,
                                                    Timestamp at);

  bool calibrated() const { return detector_.has_value(); }
  uint64_t observed() const { return observed_; }
  uint64_t outliers_seen() const { return outliers_seen_; }
  /// Fraction of post-calibration values flagged as outliers.
  double outlier_rate() const;

 private:
  explicit StreamingDriftMonitor(StreamingMonitorOptions options)
      : options_(options) {}

  StreamingMonitorOptions options_;
  std::vector<double> reference_buffer_;
  std::optional<DriftDetector> detector_;
  std::optional<RobustOutlierDetector> outlier_;
  std::deque<double> window_;
  uint64_t observed_ = 0;
  uint64_t post_calibration_ = 0;
  uint64_t outliers_seen_ = 0;
  uint64_t since_last_check_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_QUALITY_STREAMING_MONITOR_H_
