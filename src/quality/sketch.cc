#include "quality/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace mlfs {

StatusOr<HyperLogLog> HyperLogLog::Create(int precision) {
  if (precision < 4 || precision > 16) {
    return Status::InvalidArgument("HLL precision must be in [4, 16]");
  }
  return HyperLogLog(precision);
}

void HyperLogLog::AddHash(uint64_t hash) {
  // Full-avalanche finalizer: register indexing consumes the *top* bits,
  // which FNV-style hashes leave poorly mixed.
  hash = MixHash(hash);
  const size_t index = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1 in the remaining bits (1-based).
  uint8_t rank = rest == 0
                     ? static_cast<uint8_t>(64 - precision_ + 1)
                     : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() <= 16) {
    alpha = 0.673;
  } else if (registers_.size() <= 32) {
    alpha = 0.697;
  } else if (registers_.size() <= 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    zeros += reg == 0;
  }
  double estimate = alpha * m * m / sum;
  // Small-range correction: linear counting.
  if (estimate <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  // Large-range correction (2^64 hash space; practically inert here).
  const double two64 = std::ldexp(1.0, 64);
  if (estimate > two64 / 30.0) {
    return -two64 * std::log(1.0 - estimate / two64);
  }
  return estimate;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL precision mismatch");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

StatusOr<CountMinSketch> CountMinSketch::Create(size_t width, size_t depth) {
  if (width < 2 || depth < 1 || depth > 16) {
    return Status::InvalidArgument("bad count-min shape");
  }
  return CountMinSketch(width, depth);
}

void CountMinSketch::Add(const Value& v, uint64_t count) {
  const uint64_t base = HashValue(v);
  for (size_t row = 0; row < depth_; ++row) {
    uint64_t h = MixHash(base + 0x9e3779b97f4a7c15ULL * (row + 1));
    counts_[row * width_ + (h % width_)] += count;
  }
  total_ += count;
}

uint64_t CountMinSketch::Estimate(const Value& v) const {
  const uint64_t base = HashValue(v);
  uint64_t best = UINT64_MAX;
  for (size_t row = 0; row < depth_; ++row) {
    uint64_t h = MixHash(base + 0x9e3779b97f4a7c15ULL * (row + 1));
    best = std::min(best, counts_[row * width_ + (h % width_)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

}  // namespace mlfs
