#include "quality/feature_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "quality/drift.h"

namespace mlfs {

std::string ColumnStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s[%s]: n=%llu nulls=%llu (%.1f%%) distinct=%llu "
                "mean=%.4g sd=%.4g range=[%.4g, %.4g]",
                column.c_str(), std::string(FeatureTypeToString(type)).c_str(),
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(null_count),
                100.0 * null_fraction(),
                static_cast<unsigned long long>(distinct_count), mean, stddev,
                min, max);
  return buf;
}

StatusOr<ColumnStats> ComputeColumnStats(const std::vector<Row>& rows,
                                         const std::string& column) {
  ColumnStats stats;
  stats.column = column;
  if (rows.empty()) return stats;
  const SchemaPtr& schema = rows.front().schema();
  int idx = schema ? schema->FieldIndex(column) : -1;
  if (idx < 0) {
    return Status::NotFound("no column named '" + column + "'");
  }
  stats.type = schema->field(idx).type;

  std::unordered_set<uint64_t> distinct;
  uint64_t n = 0;
  double mean = 0, m2 = 0;
  for (const Row& row : rows) {
    ++stats.count;
    const Value& v = row.value(static_cast<size_t>(idx));
    if (v.is_null()) {
      ++stats.null_count;
      continue;
    }
    distinct.insert(HashValue(v));
    auto d = v.AsDouble();
    if (d.ok()) {
      ++n;
      double x = *d;
      stats.min = (n == 1) ? x : std::min(stats.min, x);
      stats.max = (n == 1) ? x : std::max(stats.max, x);
      double delta = x - mean;
      mean += delta / static_cast<double>(n);
      m2 += delta * (x - mean);
    }
  }
  stats.distinct_count = distinct.size();
  if (n > 0) {
    stats.mean = mean;
    stats.stddev = std::sqrt(m2 / static_cast<double>(n));
  }
  return stats;
}

StatusOr<std::vector<ColumnStats>> ComputeAllColumnStats(
    const std::vector<Row>& rows) {
  std::vector<ColumnStats> out;
  if (rows.empty()) return out;
  const SchemaPtr& schema = rows.front().schema();
  if (schema == nullptr) {
    return Status::InvalidArgument("rows have no schema");
  }
  out.reserve(schema->num_fields());
  for (const FieldSpec& field : schema->fields()) {
    MLFS_ASSIGN_OR_RETURN(ColumnStats stats,
                          ComputeColumnStats(rows, field.name));
    out.push_back(std::move(stats));
  }
  return out;
}

FreshnessReport ComputeFreshness(const OnlineStore& store,
                                 const std::string& view,
                                 const std::vector<Value>& entity_keys,
                                 Timestamp now) {
  FreshnessReport report;
  for (const Value& key : entity_keys) {
    auto et = store.GetEventTime(view, key, now);
    if (!et.ok()) {
      ++report.missing;
      continue;
    }
    double age_seconds =
        static_cast<double>(now - *et) / static_cast<double>(kMicrosPerSecond);
    report.age.Record(std::max(0.0, age_seconds));
  }
  return report;
}

namespace {

// Maps each non-null value to a discrete symbol: quantile-bin index for
// numerics, hash for everything else. Returns pairwise-complete symbol
// sequences for (x, y).
struct DiscretizedPair {
  std::vector<int64_t> xs;
  std::vector<int64_t> ys;
};

StatusOr<std::vector<int64_t>> Discretize(const std::vector<Row>& rows,
                                          int idx, size_t num_bins,
                                          const std::vector<bool>& keep) {
  const FeatureType type = rows.front().schema()->field(idx).type;
  std::vector<int64_t> out;
  out.reserve(rows.size());
  if (IsNumeric(type)) {
    std::vector<double> values;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (!keep[r]) continue;
      values.push_back(rows[r].value(idx).AsDouble().value());
    }
    if (values.empty()) return out;
    MLFS_ASSIGN_OR_RETURN(std::vector<double> edges,
                          QuantileBinEdges(values, num_bins));
    for (size_t r = 0; r < rows.size(); ++r) {
      if (!keep[r]) continue;
      double x = rows[r].value(idx).AsDouble().value();
      auto it = std::upper_bound(edges.begin(), edges.end(), x);
      int64_t bin = it == edges.begin()
                        ? 0
                        : static_cast<int64_t>(it - edges.begin()) - 1;
      bin = std::min<int64_t>(bin, static_cast<int64_t>(num_bins) - 1);
      out.push_back(bin);
    }
    return out;
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    if (!keep[r]) continue;
    out.push_back(static_cast<int64_t>(HashValue(rows[r].value(idx))));
  }
  return out;
}

}  // namespace

StatusOr<double> MutualInformation(const std::vector<Row>& rows,
                                   const std::string& column_x,
                                   const std::string& column_y,
                                   size_t num_bins) {
  if (rows.empty()) return 0.0;
  const SchemaPtr& schema = rows.front().schema();
  int xi = schema ? schema->FieldIndex(column_x) : -1;
  int yi = schema ? schema->FieldIndex(column_y) : -1;
  if (xi < 0 || yi < 0) {
    return Status::NotFound("MI: unknown column");
  }
  std::vector<bool> keep(rows.size());
  size_t kept = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    keep[r] = !rows[r].value(xi).is_null() && !rows[r].value(yi).is_null();
    kept += keep[r];
  }
  if (kept == 0) return 0.0;
  MLFS_ASSIGN_OR_RETURN(std::vector<int64_t> xs,
                        Discretize(rows, xi, num_bins, keep));
  MLFS_ASSIGN_OR_RETURN(std::vector<int64_t> ys,
                        Discretize(rows, yi, num_bins, keep));

  std::map<int64_t, double> px, py;
  std::map<std::pair<int64_t, int64_t>, double> pxy;
  const double n = static_cast<double>(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    px[xs[i]] += 1.0 / n;
    py[ys[i]] += 1.0 / n;
    pxy[{xs[i], ys[i]}] += 1.0 / n;
  }
  double mi = 0.0;
  for (const auto& [xy, p] : pxy) {
    mi += p * std::log2(p / (px[xy.first] * py[xy.second]));
  }
  return std::max(0.0, mi);
}

StatusOr<double> ColumnEntropy(const std::vector<Row>& rows,
                               const std::string& column, size_t num_bins) {
  if (rows.empty()) return 0.0;
  const SchemaPtr& schema = rows.front().schema();
  int idx = schema ? schema->FieldIndex(column) : -1;
  if (idx < 0) return Status::NotFound("entropy: unknown column");
  std::vector<bool> keep(rows.size());
  size_t kept = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    keep[r] = !rows[r].value(idx).is_null();
    kept += keep[r];
  }
  if (kept == 0) return 0.0;
  MLFS_ASSIGN_OR_RETURN(std::vector<int64_t> xs,
                        Discretize(rows, idx, num_bins, keep));
  std::map<int64_t, double> px;
  const double n = static_cast<double>(xs.size());
  for (int64_t x : xs) px[x] += 1.0 / n;
  double h = 0.0;
  for (const auto& [x, p] : px) h -= p * std::log2(p);
  return std::max(0.0, h);
}

}  // namespace mlfs
