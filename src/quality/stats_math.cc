#include "quality/stats_math.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mlfs {

double LogGamma(double x) {
  MLFS_DCHECK(x > 0);
  // Lanczos, g=7, n=9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Series expansion of P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x), valid for x >= a + 1 (modified Lentz).
double GammaQContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  MLFS_DCHECK(a > 0);
  if (x <= 0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  MLFS_DCHECK(a > 0);
  if (x <= 0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSf(double x, double df) {
  if (x <= 0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double KsPValue(double d, size_t n1, size_t n2) {
  if (d <= 0) return 1.0;
  double ne = static_cast<double>(n1) * static_cast<double>(n2) /
              static_cast<double>(n1 + n2);
  double sqrt_ne = std::sqrt(ne);
  double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    double term = std::exp(-2.0 * lambda * lambda * k * k);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  double p = 2.0 * sum;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  return p;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace mlfs
