#include "streaming/aggregator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mlfs {

std::string_view AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount: return "count";
    case AggregateFn::kSum: return "sum";
    case AggregateFn::kMean: return "mean";
    case AggregateFn::kMin: return "min";
    case AggregateFn::kMax: return "max";
    case AggregateFn::kVariance: return "variance";
    case AggregateFn::kStddev: return "stddev";
    case AggregateFn::kP50: return "p50";
    case AggregateFn::kP90: return "p90";
    case AggregateFn::kP99: return "p99";
    case AggregateFn::kCountDistinct: return "count_distinct";
  }
  return "?";
}

StatusOr<AggregateFn> AggregateFnFromString(std::string_view name) {
  std::string lower = ToLower(name);
  for (auto fn :
       {AggregateFn::kCount, AggregateFn::kSum, AggregateFn::kMean,
        AggregateFn::kMin, AggregateFn::kMax, AggregateFn::kVariance,
        AggregateFn::kStddev, AggregateFn::kP50, AggregateFn::kP90,
        AggregateFn::kP99, AggregateFn::kCountDistinct}) {
    if (lower == AggregateFnToString(fn)) return fn;
  }
  return Status::InvalidArgument("unknown aggregate function '" +
                                 std::string(name) + "'");
}

FeatureType AggregateOutputType(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
    case AggregateFn::kCountDistinct:
      return FeatureType::kInt64;
    default:
      return FeatureType::kDouble;
  }
}

namespace {

class CountState final : public AggregatorState {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) {
      ++skipped_;
      return;
    }
    ++count_;
  }
  Value Result() const override {
    return Value::Int64(static_cast<int64_t>(count_));
  }

 private:
  uint64_t count_ = 0;
};

class CountDistinctState final : public AggregatorState {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) {
      ++skipped_;
      return;
    }
    seen_.insert(HashValue(v));
  }
  Value Result() const override {
    return Value::Int64(static_cast<int64_t>(seen_.size()));
  }

 private:
  std::unordered_set<uint64_t> seen_;
};

// Welford accumulator shared by sum/mean/min/max/variance/stddev.
class MomentsState final : public AggregatorState {
 public:
  explicit MomentsState(AggregateFn fn) : fn_(fn) {}

  void Add(const Value& v) override {
    auto d = v.AsDouble();
    if (!d.ok()) {
      ++skipped_;
      return;
    }
    double x = *d;
    ++n_;
    sum_ += x;
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  Value Result() const override {
    if (n_ == 0) return Value::Null();
    switch (fn_) {
      case AggregateFn::kSum: return Value::Double(sum_);
      case AggregateFn::kMean: return Value::Double(mean_);
      case AggregateFn::kMin: return Value::Double(min_);
      case AggregateFn::kMax: return Value::Double(max_);
      case AggregateFn::kVariance:
        return Value::Double(m2_ / static_cast<double>(n_));
      case AggregateFn::kStddev:
        return Value::Double(std::sqrt(m2_ / static_cast<double>(n_)));
      default:
        break;
    }
    return Value::Null();
  }

 private:
  AggregateFn fn_;
  uint64_t n_ = 0;
  double sum_ = 0, mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

// P² single-pass quantile estimator (Jain & Chlamtac, 1985). Maintains
// five markers; O(1) memory and update. Exact for the first five samples.
class P2QuantileState final : public AggregatorState {
 public:
  explicit P2QuantileState(double q) : q_(q) {}

  void Add(const Value& v) override {
    auto d = v.AsDouble();
    if (!d.ok()) {
      ++skipped_;
      return;
    }
    AddSample(*d);
  }

  Value Result() const override {
    if (count_ == 0) return Value::Null();
    if (count_ <= 5) {
      std::vector<double> sorted(heights_.begin(),
                                 heights_.begin() + count_);
      std::sort(sorted.begin(), sorted.end());
      // Nearest-rank quantile: smallest value with cum. freq >= q.
      size_t rank = static_cast<size_t>(
          std::ceil(q_ * static_cast<double>(count_)));
      size_t idx = std::clamp<size_t>(rank, 1, count_) - 1;
      return Value::Double(sorted[idx]);
    }
    return Value::Double(heights_[2]);
  }

 private:
  void AddSample(double x) {
    if (count_ < 5) {
      heights_[count_++] = x;
      if (count_ == 5) {
        std::sort(heights_.begin(), heights_.end());
        for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
        desired_[0] = 1;
        desired_[1] = 1 + 2 * q_;
        desired_[2] = 1 + 4 * q_;
        desired_[3] = 3 + 2 * q_;
        desired_[4] = 5;
        increments_[0] = 0;
        increments_[1] = q_ / 2;
        increments_[2] = q_;
        increments_[3] = (1 + q_) / 2;
        increments_[4] = 1;
      }
      return;
    }
    ++count_;
    int k;
    if (x < heights_[0]) {
      heights_[0] = x;
      k = 0;
    } else if (x >= heights_[4]) {
      heights_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= heights_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
    for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
    // Adjust the three middle markers.
    for (int i = 1; i <= 3; ++i) {
      double d = desired_[i] - positions_[i];
      if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
          (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
        int sign = d >= 0 ? 1 : -1;
        double candidate = Parabolic(i, sign);
        if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
          heights_[i] = candidate;
        } else {
          heights_[i] = Linear(i, sign);
        }
        positions_[i] += sign;
      }
    }
  }

  double Parabolic(int i, int d) const {
    double qi = heights_[i];
    double np = positions_[i + 1] - positions_[i];
    double nm = positions_[i] - positions_[i - 1];
    double nd = positions_[i + 1] - positions_[i - 1];
    return qi + d / nd *
                    ((nm + d) * (heights_[i + 1] - qi) / np +
                     (np - d) * (qi - heights_[i - 1]) / nm);
  }

  double Linear(int i, int d) const {
    return heights_[i] + d * (heights_[i + d] - heights_[i]) /
                             (positions_[i + d] - positions_[i]);
  }

  double q_;
  size_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace

std::unique_ptr<AggregatorState> MakeAggregator(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return std::make_unique<CountState>();
    case AggregateFn::kCountDistinct:
      return std::make_unique<CountDistinctState>();
    case AggregateFn::kP50:
      return std::make_unique<P2QuantileState>(0.50);
    case AggregateFn::kP90:
      return std::make_unique<P2QuantileState>(0.90);
    case AggregateFn::kP99:
      return std::make_unique<P2QuantileState>(0.99);
    default:
      return std::make_unique<MomentsState>(fn);
  }
}

}  // namespace mlfs
