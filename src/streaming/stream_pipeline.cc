#include "streaming/stream_pipeline.h"

#include "common/failpoint.h"

namespace mlfs {

StreamPipeline::StreamPipeline(StreamPipelineOptions options,
                               std::unique_ptr<WindowedAggregator> aggregator,
                               SchemaPtr output_schema, OnlineStore* online,
                               OfflineStore* offline)
    : options_(std::move(options)),
      aggregator_(std::move(aggregator)),
      output_schema_(std::move(output_schema)),
      online_(online),
      offline_(offline) {
  int eidx = options_.event_schema->FieldIndex(options_.entity_column);
  entity_type_ = options_.event_schema->field(eidx).type;
}

StatusOr<std::unique_ptr<StreamPipeline>> StreamPipeline::Create(
    StreamPipelineOptions options, OnlineStore* online,
    OfflineStore* offline) {
  if (online == nullptr || offline == nullptr) {
    return Status::InvalidArgument("stream pipeline needs both stores");
  }
  if (options.name.empty()) {
    return Status::InvalidArgument("stream pipeline needs a name");
  }
  MLFS_ASSIGN_OR_RETURN(
      auto aggregator,
      WindowedAggregator::Create(options.event_schema, options.entity_column,
                                 options.time_column, options.window,
                                 options.aggs, options.allowed_lateness));

  // Output schema: entity key, window-end timestamp, one column per agg.
  int eidx = options.event_schema->FieldIndex(options.entity_column);
  std::vector<FieldSpec> fields;
  fields.push_back({options.entity_column,
                    options.event_schema->field(eidx).type, false});
  fields.push_back({"event_time", FeatureType::kTimestamp, false});
  for (const auto& spec : options.aggs) {
    fields.push_back({spec.output_feature, AggregateOutputType(spec.fn),
                      true});
  }
  MLFS_ASSIGN_OR_RETURN(SchemaPtr output_schema,
                        Schema::Create(std::move(fields)));

  MLFS_RETURN_IF_ERROR(online->CreateView(options.name, output_schema));

  OfflineTableOptions table_options;
  table_options.name = options.name;
  table_options.schema = output_schema;
  table_options.entity_column = options.entity_column;
  table_options.time_column = "event_time";
  MLFS_RETURN_IF_ERROR(offline->CreateTable(std::move(table_options)));

  return std::unique_ptr<StreamPipeline>(
      new StreamPipeline(std::move(options), std::move(aggregator),
                         std::move(output_schema), online, offline));
}

Status StreamPipeline::Ingest(const Row& event) {
  MLFS_RETURN_IF_ERROR(aggregator_->ProcessEvent(event));
  ++events_ingested_;
  return MaterializeReady();
}

Status StreamPipeline::IngestBatch(std::span<const Row> events) {
  MLFS_RETURN_IF_ERROR(aggregator_->ProcessEvents(events));
  events_ingested_ += events.size();
  return MaterializeReady();
}

Status StreamPipeline::Flush(Timestamp watermark) {
  aggregator_->AdvanceWatermarkTo(watermark);
  return MaterializeReady();
}

Status StreamPipeline::MaterializeReady() {
  MLFS_FAILPOINT("stream_pipeline.materialize");
  MLFS_ASSIGN_OR_RETURN(OfflineTable* table,
                        offline_->GetTable(options_.name));
  for (WindowResult& result : aggregator_->PollResults()) {
    Value entity = entity_type_ == FeatureType::kInt64
                       ? Value::Int64(std::stoll(result.entity_key))
                       : Value::String(result.entity_key);
    std::vector<Value> values;
    values.reserve(2 + result.values.size());
    values.push_back(entity);
    values.push_back(Value::Time(result.window_end));
    for (Value& v : result.values) values.push_back(std::move(v));
    MLFS_ASSIGN_OR_RETURN(Row row,
                          Row::Create(output_schema_, std::move(values)));
    MLFS_RETURN_IF_ERROR(online_->Put(options_.name, entity, row,
                                      result.window_end, result.window_end,
                                      options_.online_ttl));
    MLFS_RETURN_IF_ERROR(table->Append(row));
    ++rows_emitted_;
  }
  return Status::OK();
}

}  // namespace mlfs
