#ifndef MLFS_STREAMING_STREAM_PIPELINE_H_
#define MLFS_STREAMING_STREAM_PIPELINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "storage/offline_store.h"
#include "storage/online_store.h"
#include "streaming/window.h"

namespace mlfs {

/// Configuration of one streaming feature view.
struct StreamPipelineOptions {
  /// Feature-view name; also the name of the offline log table and the
  /// online view created by the pipeline.
  std::string name;
  SchemaPtr event_schema;
  std::string entity_column;
  std::string time_column;
  WindowSpec window;
  std::vector<WindowAggSpec> aggs;
  Timestamp allowed_lateness = 0;
  /// TTL of materialized rows in the online store (0: store default).
  Timestamp online_ttl = 0;
};

/// Ties a windowed aggregator to the dual datastore: finalized window
/// aggregates are upserted into the online store *and* logged to the
/// offline store (paper §2.2.1: "the aggregated features are persisted to
/// the online store and logged to the offline store").
///
/// The output schema is {entity, "event_time", <one column per agg>};
/// each finalized window emits one row stamped with the window end.
class StreamPipeline {
 public:
  /// Builds the aggregator, registers the online view and offline table.
  /// Fails if either already exists.
  static StatusOr<std::unique_ptr<StreamPipeline>> Create(
      StreamPipelineOptions options, OnlineStore* online,
      OfflineStore* offline);

  /// Processes one raw event and materializes any windows it finalized.
  Status Ingest(const Row& event);

  /// Processes a batch of raw events (aggregation inputs evaluate
  /// vector-at-a-time) and materializes any windows the batch finalized.
  Status IngestBatch(std::span<const Row> events);

  /// Forces all windows ending at or before `watermark` to finalize and
  /// materialize (use at end of stream or on a timer tick).
  Status Flush(Timestamp watermark);

  const SchemaPtr& output_schema() const { return output_schema_; }
  const std::string& name() const { return options_.name; }
  uint64_t events_ingested() const { return events_ingested_; }
  uint64_t rows_emitted() const { return rows_emitted_; }
  uint64_t dropped_late() const { return aggregator_->dropped_late(); }

 private:
  StreamPipeline(StreamPipelineOptions options,
                 std::unique_ptr<WindowedAggregator> aggregator,
                 SchemaPtr output_schema, OnlineStore* online,
                 OfflineStore* offline);

  Status MaterializeReady();

  StreamPipelineOptions options_;
  std::unique_ptr<WindowedAggregator> aggregator_;
  SchemaPtr output_schema_;
  FeatureType entity_type_;
  OnlineStore* online_;    // Not owned.
  OfflineStore* offline_;  // Not owned.
  uint64_t events_ingested_ = 0;
  uint64_t rows_emitted_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_STREAMING_STREAM_PIPELINE_H_
