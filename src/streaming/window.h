#ifndef MLFS_STREAMING_WINDOW_H_
#define MLFS_STREAMING_WINDOW_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "expr/evaluator.h"
#include "streaming/aggregator.h"

namespace mlfs {

/// Event-time window layout. `slide == width` is a tumbling window; a
/// smaller slide produces overlapping (hopping) windows. Window starts lie
/// on the slide grid; an event at time t belongs to every window
/// [start, start + width) containing t.
struct WindowSpec {
  Timestamp width = kMicrosPerHour;
  Timestamp slide = kMicrosPerHour;

  bool IsTumbling() const { return slide == width; }
};

/// One aggregation over a window: `fn` applied to `input` (an expression
/// over the event schema; empty means "count events").
struct WindowAggSpec {
  std::string output_feature;
  AggregateFn fn = AggregateFn::kCount;
  std::string input;
};

/// One finalized (entity, window) aggregate emitted by the operator.
struct WindowResult {
  std::string entity_key;
  Timestamp window_start = 0;
  Timestamp window_end = 0;
  /// One value per WindowAggSpec, in spec order.
  std::vector<Value> values;
};

/// Per-entity, event-time windowed aggregation operator over a stream of
/// rows — the streaming-feature engine of the feature store (§2.2.1).
///
/// Watermark semantics: the watermark is max(event time seen) minus
/// `allowed_lateness`. A window finalizes (and its results become available
/// from PollResults()) when the watermark passes its end. Events older than
/// the watermark are dropped and counted in dropped_late().
///
/// Not thread-safe; a pipeline drives each operator from one thread.
class WindowedAggregator {
 public:
  /// Validates the specs against the event schema: `entity_column` must be
  /// INT64/STRING, `time_column` TIMESTAMP, and every non-empty input
  /// expression must compile to a numeric type (any type for count /
  /// count_distinct).
  static StatusOr<std::unique_ptr<WindowedAggregator>> Create(
      SchemaPtr event_schema, std::string entity_column,
      std::string time_column, WindowSpec window,
      std::vector<WindowAggSpec> aggs, Timestamp allowed_lateness = 0);

  /// Folds one event into all windows containing it; advances the
  /// watermark, which may finalize older windows.
  Status ProcessEvent(const Row& event);

  /// Batch equivalent of calling ProcessEvent on each row in order:
  /// aggregation-input expressions evaluate vector-at-a-time over each
  /// chunk of surviving (non-late) events, late-event drops follow the
  /// same prefix-max watermark the one-at-a-time path would have seen,
  /// and finalization is deferred to chunk boundaries (observably
  /// identical — a window past the watermark can never receive events).
  /// Chunks that would error fall back to the row path so failure
  /// positions match exactly.
  Status ProcessEvents(std::span<const Row> events);

  /// Finalized results since the last poll, ordered by (window_end, entity).
  std::vector<WindowResult> PollResults();

  /// Forces the watermark to `t` (e.g. end of stream), finalizing every
  /// window ending at or before it.
  void AdvanceWatermarkTo(Timestamp t);

  Timestamp watermark() const { return watermark_; }
  uint64_t dropped_late() const { return dropped_late_; }
  const std::vector<WindowAggSpec>& aggs() const { return aggs_; }
  const WindowSpec& window() const { return window_; }
  /// Number of (entity, window) states currently buffered.
  size_t open_states() const;

 private:
  struct EntityState {
    std::vector<std::unique_ptr<AggregatorState>> aggs;
  };
  // window_start -> entity -> state.
  using WindowMap =
      std::map<Timestamp, std::unordered_map<std::string, EntityState>>;

  WindowedAggregator(SchemaPtr schema, int entity_idx, int time_idx,
                     WindowSpec window, std::vector<WindowAggSpec> aggs,
                     std::vector<std::unique_ptr<CompiledExpr>> inputs,
                     Timestamp allowed_lateness);

  void MaybeFinalize();
  Timestamp FirstWindowStartFor(Timestamp t) const;
  Status ProcessChunk(std::span<const Row> chunk);
  Status FallbackRowPath(std::span<const Row> chunk);

  SchemaPtr schema_;
  int entity_idx_;
  int time_idx_;
  WindowSpec window_;
  std::vector<WindowAggSpec> aggs_;
  // Parallel to aggs_; null entry means "count the event itself".
  std::vector<std::unique_ptr<CompiledExpr>> inputs_;
  // Parallel to inputs_: per-input VM scratch, so each input's result
  // vector stays live while the others evaluate over the same chunk.
  std::vector<ExprScratch> scratch_;
  Timestamp allowed_lateness_;

  WindowMap open_;
  std::vector<WindowResult> ready_;
  Timestamp watermark_ = kMinTimestamp;
  Timestamp max_event_time_ = kMinTimestamp;
  uint64_t dropped_late_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_STREAMING_WINDOW_H_
