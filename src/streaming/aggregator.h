#ifndef MLFS_STREAMING_AGGREGATOR_H_
#define MLFS_STREAMING_AGGREGATOR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// Aggregate functions available for streaming feature definitions
/// (paper §2.2.1: "users provide aggregation functions that are applied on
/// the raw streaming features").
enum class AggregateFn : uint8_t {
  kCount,
  kSum,
  kMean,
  kMin,
  kMax,
  kVariance,   // Population variance (Welford).
  kStddev,
  kP50,        // Streaming quantiles via the P² estimator.
  kP90,
  kP99,
  kCountDistinct,
};

std::string_view AggregateFnToString(AggregateFn fn);
StatusOr<AggregateFn> AggregateFnFromString(std::string_view name);

/// Output type of `fn`: INT64 for counts, DOUBLE otherwise.
FeatureType AggregateOutputType(AggregateFn fn);

/// Incremental, single-pass aggregation state. Add() accepts any value for
/// kCount/kCountDistinct; numeric values otherwise (non-numeric or NULL
/// inputs are skipped and counted in skipped()).
class AggregatorState {
 public:
  virtual ~AggregatorState() = default;

  /// Folds one value into the state.
  virtual void Add(const Value& v) = 0;

  /// Current aggregate; NULL when no valid input has been seen (except
  /// counts, which yield 0).
  virtual Value Result() const = 0;

  uint64_t skipped() const { return skipped_; }

 protected:
  uint64_t skipped_ = 0;
};

/// Creates fresh state for `fn`.
std::unique_ptr<AggregatorState> MakeAggregator(AggregateFn fn);

}  // namespace mlfs

#endif  // MLFS_STREAMING_AGGREGATOR_H_
