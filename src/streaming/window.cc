#include "streaming/window.h"

#include <algorithm>

#include "storage/entity_key.h"

namespace mlfs {

WindowedAggregator::WindowedAggregator(
    SchemaPtr schema, int entity_idx, int time_idx, WindowSpec window,
    std::vector<WindowAggSpec> aggs,
    std::vector<std::unique_ptr<CompiledExpr>> inputs,
    Timestamp allowed_lateness)
    : schema_(std::move(schema)),
      entity_idx_(entity_idx),
      time_idx_(time_idx),
      window_(window),
      aggs_(std::move(aggs)),
      inputs_(std::move(inputs)),
      scratch_(inputs_.size()),
      allowed_lateness_(allowed_lateness) {}

StatusOr<std::unique_ptr<WindowedAggregator>> WindowedAggregator::Create(
    SchemaPtr event_schema, std::string entity_column,
    std::string time_column, WindowSpec window,
    std::vector<WindowAggSpec> aggs, Timestamp allowed_lateness) {
  if (event_schema == nullptr) {
    return Status::InvalidArgument("windowed aggregator needs a schema");
  }
  if (window.width <= 0 || window.slide <= 0 || window.slide > window.width) {
    return Status::InvalidArgument(
        "window needs 0 < slide <= width");
  }
  if (window.width % window.slide != 0) {
    return Status::InvalidArgument("window width must be a multiple of slide");
  }
  if (allowed_lateness < 0) {
    return Status::InvalidArgument("allowed_lateness must be >= 0");
  }
  if (aggs.empty()) {
    return Status::InvalidArgument("need at least one aggregation");
  }
  int eidx = event_schema->FieldIndex(entity_column);
  if (eidx < 0 || (event_schema->field(eidx).type != FeatureType::kInt64 &&
                   event_schema->field(eidx).type != FeatureType::kString)) {
    return Status::InvalidArgument("entity column '" + entity_column +
                                   "' missing or not INT64/STRING");
  }
  int tidx = event_schema->FieldIndex(time_column);
  if (tidx < 0 ||
      event_schema->field(tidx).type != FeatureType::kTimestamp) {
    return Status::InvalidArgument("time column '" + time_column +
                                   "' missing or not TIMESTAMP");
  }
  std::vector<std::unique_ptr<CompiledExpr>> inputs;
  inputs.reserve(aggs.size());
  for (const auto& spec : aggs) {
    if (spec.output_feature.empty()) {
      return Status::InvalidArgument("aggregation needs an output name");
    }
    if (spec.input.empty()) {
      if (spec.fn != AggregateFn::kCount) {
        return Status::InvalidArgument(
            "empty input is only valid for count()");
      }
      inputs.push_back(nullptr);
      continue;
    }
    MLFS_ASSIGN_OR_RETURN(CompiledExpr compiled,
                          CompiledExpr::Compile(spec.input, event_schema));
    bool needs_numeric = spec.fn != AggregateFn::kCount &&
                         spec.fn != AggregateFn::kCountDistinct;
    if (needs_numeric && !IsNumeric(compiled.output_type()) &&
        compiled.output_type() != FeatureType::kNull) {
      return Status::InvalidArgument(
          "aggregation '" + spec.output_feature + "': input type " +
          std::string(FeatureTypeToString(compiled.output_type())) +
          " is not numeric");
    }
    inputs.push_back(std::make_unique<CompiledExpr>(std::move(compiled)));
  }
  return std::unique_ptr<WindowedAggregator>(new WindowedAggregator(
      std::move(event_schema), eidx, tidx, window, std::move(aggs),
      std::move(inputs), allowed_lateness));
}

Timestamp WindowedAggregator::FirstWindowStartFor(Timestamp t) const {
  // Earliest window [start, start+width) containing t, with start on the
  // slide grid (floor semantics for negative times).
  Timestamp earliest = t - window_.width + 1;
  Timestamp q = earliest / window_.slide;
  if (earliest % window_.slide != 0 && earliest < 0) --q;
  Timestamp start = q * window_.slide;
  if (start + window_.width <= t) start += window_.slide;
  return start;
}

Status WindowedAggregator::ProcessEvent(const Row& event) {
  if (event.schema() == nullptr || !(*event.schema() == *schema_)) {
    return Status::InvalidArgument("event schema mismatch");
  }
  const Value& tv = event.value(time_idx_);
  if (tv.is_null()) return Status::InvalidArgument("event time is null");
  Timestamp t = tv.time_value();
  if (watermark_ != kMinTimestamp && t < watermark_) {
    ++dropped_late_;
    return Status::OK();
  }
  MLFS_ASSIGN_OR_RETURN(std::string key,
                        EntityKeyToString(event.value(entity_idx_)));

  for (Timestamp start = FirstWindowStartFor(t); start <= t;
       start += window_.slide) {
    EntityState& state = [&]() -> EntityState& {
      auto& by_entity = open_[start];
      auto it = by_entity.find(key);
      if (it != by_entity.end()) return it->second;
      EntityState fresh;
      fresh.aggs.reserve(aggs_.size());
      for (const auto& spec : aggs_) fresh.aggs.push_back(MakeAggregator(spec.fn));
      return by_entity.emplace(key, std::move(fresh)).first->second;
    }();
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (inputs_[i] == nullptr) {
        state.aggs[i]->Add(Value::Bool(true));  // Count the event.
        continue;
      }
      MLFS_ASSIGN_OR_RETURN(Value v, inputs_[i]->Eval(event));
      state.aggs[i]->Add(v);
    }
  }

  max_event_time_ = std::max(max_event_time_, t);
  Timestamp new_watermark = max_event_time_ - allowed_lateness_;
  if (new_watermark > watermark_) {
    watermark_ = new_watermark;
    MaybeFinalize();
  }
  return Status::OK();
}

Status WindowedAggregator::ProcessEvents(std::span<const Row> events) {
  constexpr size_t kChunkRows = 1024;
  for (size_t off = 0; off < events.size(); off += kChunkRows) {
    const size_t len = std::min(kChunkRows, events.size() - off);
    MLFS_RETURN_IF_ERROR(ProcessChunk(events.subspan(off, len)));
  }
  return Status::OK();
}

Status WindowedAggregator::FallbackRowPath(std::span<const Row> chunk) {
  for (const Row& event : chunk) MLFS_RETURN_IF_ERROR(ProcessEvent(event));
  return Status::OK();
}

Status WindowedAggregator::ProcessChunk(std::span<const Row> chunk) {
  // Pre-scan with the same prefix-max watermark the row path would have
  // seen after each event; nothing mutates until the scan (and every batch
  // evaluation) has succeeded, so any failure can re-run the chunk through
  // the row path and report the error at the exact event that caused it.
  std::vector<const Row*> live;
  std::vector<Timestamp> live_ts;
  std::vector<std::string> live_keys;
  live.reserve(chunk.size());
  live_ts.reserve(chunk.size());
  live_keys.reserve(chunk.size());
  Timestamp wm = watermark_;
  Timestamp max_t = max_event_time_;
  uint64_t dropped = 0;
  for (const Row& event : chunk) {
    if (event.schema() == nullptr || !(*event.schema() == *schema_)) {
      return FallbackRowPath(chunk);
    }
    const Value& tv = event.value(time_idx_);
    if (tv.is_null()) return FallbackRowPath(chunk);
    Timestamp t = tv.time_value();
    if (wm != kMinTimestamp && t < wm) {
      ++dropped;
      continue;
    }
    auto key = EntityKeyToString(event.value(entity_idx_));
    if (!key.ok()) return FallbackRowPath(chunk);
    live.push_back(&event);
    live_ts.push_back(t);
    live_keys.push_back(std::move(key).value());
    max_t = std::max(max_t, t);
    if (max_t - allowed_lateness_ > wm) wm = max_t - allowed_lateness_;
  }
  // One vectorized evaluation per aggregation input over the surviving
  // rows (the row path re-evaluates per overlapping window; expressions
  // are pure, so sharing the result across windows is observably equal).
  std::vector<const ColumnVector*> cols(inputs_.size(), nullptr);
  if (!live.empty()) {
    RowPtrBatchSource src(schema_, live);
    for (size_t i = 0; i < inputs_.size(); ++i) {
      if (inputs_[i] == nullptr) continue;
      if (!inputs_[i]->EvalBatch(src, &scratch_[i], &cols[i]).ok()) {
        return FallbackRowPath(chunk);
      }
    }
  }
  for (size_t r = 0; r < live.size(); ++r) {
    const Timestamp t = live_ts[r];
    const std::string& key = live_keys[r];
    for (Timestamp start = FirstWindowStartFor(t); start <= t;
         start += window_.slide) {
      EntityState& state = [&]() -> EntityState& {
        auto& by_entity = open_[start];
        auto it = by_entity.find(key);
        if (it != by_entity.end()) return it->second;
        EntityState fresh;
        fresh.aggs.reserve(aggs_.size());
        for (const auto& spec : aggs_) {
          fresh.aggs.push_back(MakeAggregator(spec.fn));
        }
        return by_entity.emplace(key, std::move(fresh)).first->second;
      }();
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (inputs_[i] == nullptr) {
          state.aggs[i]->Add(Value::Bool(true));  // Count the event.
          continue;
        }
        state.aggs[i]->Add(cols[i]->GetValue(r));
      }
    }
  }
  dropped_late_ += dropped;
  max_event_time_ = std::max(max_event_time_, max_t);
  Timestamp new_watermark = max_event_time_ - allowed_lateness_;
  if (new_watermark > watermark_) {
    watermark_ = new_watermark;
    // Deferring finalization to the chunk boundary is safe: every window
    // containing a chunk event ends after that event's time, which is at
    // or above the watermark the row path would have finalized against.
    MaybeFinalize();
  }
  return Status::OK();
}

void WindowedAggregator::MaybeFinalize() {
  // Finalize windows whose end <= watermark. `open_` is ordered by start.
  while (!open_.empty()) {
    auto it = open_.begin();
    Timestamp end = it->first + window_.width;
    if (end > watermark_) break;
    std::vector<std::string> keys;
    keys.reserve(it->second.size());
    for (const auto& [key, state] : it->second) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) {
      EntityState& state = it->second[key];
      WindowResult result;
      result.entity_key = key;
      result.window_start = it->first;
      result.window_end = end;
      result.values.reserve(state.aggs.size());
      for (const auto& agg : state.aggs) result.values.push_back(agg->Result());
      ready_.push_back(std::move(result));
    }
    open_.erase(it);
  }
}

std::vector<WindowResult> WindowedAggregator::PollResults() {
  std::vector<WindowResult> out;
  out.swap(ready_);
  return out;
}

void WindowedAggregator::AdvanceWatermarkTo(Timestamp t) {
  if (t <= watermark_) return;
  watermark_ = t;
  MaybeFinalize();
}

size_t WindowedAggregator::open_states() const {
  size_t n = 0;
  for (const auto& [start, by_entity] : open_) n += by_entity.size();
  return n;
}

}  // namespace mlfs
