#include "streaming/window.h"

#include <algorithm>

#include "storage/entity_key.h"

namespace mlfs {

WindowedAggregator::WindowedAggregator(
    SchemaPtr schema, int entity_idx, int time_idx, WindowSpec window,
    std::vector<WindowAggSpec> aggs,
    std::vector<std::unique_ptr<CompiledExpr>> inputs,
    Timestamp allowed_lateness)
    : schema_(std::move(schema)),
      entity_idx_(entity_idx),
      time_idx_(time_idx),
      window_(window),
      aggs_(std::move(aggs)),
      inputs_(std::move(inputs)),
      allowed_lateness_(allowed_lateness) {}

StatusOr<std::unique_ptr<WindowedAggregator>> WindowedAggregator::Create(
    SchemaPtr event_schema, std::string entity_column,
    std::string time_column, WindowSpec window,
    std::vector<WindowAggSpec> aggs, Timestamp allowed_lateness) {
  if (event_schema == nullptr) {
    return Status::InvalidArgument("windowed aggregator needs a schema");
  }
  if (window.width <= 0 || window.slide <= 0 || window.slide > window.width) {
    return Status::InvalidArgument(
        "window needs 0 < slide <= width");
  }
  if (window.width % window.slide != 0) {
    return Status::InvalidArgument("window width must be a multiple of slide");
  }
  if (allowed_lateness < 0) {
    return Status::InvalidArgument("allowed_lateness must be >= 0");
  }
  if (aggs.empty()) {
    return Status::InvalidArgument("need at least one aggregation");
  }
  int eidx = event_schema->FieldIndex(entity_column);
  if (eidx < 0 || (event_schema->field(eidx).type != FeatureType::kInt64 &&
                   event_schema->field(eidx).type != FeatureType::kString)) {
    return Status::InvalidArgument("entity column '" + entity_column +
                                   "' missing or not INT64/STRING");
  }
  int tidx = event_schema->FieldIndex(time_column);
  if (tidx < 0 ||
      event_schema->field(tidx).type != FeatureType::kTimestamp) {
    return Status::InvalidArgument("time column '" + time_column +
                                   "' missing or not TIMESTAMP");
  }
  std::vector<std::unique_ptr<CompiledExpr>> inputs;
  inputs.reserve(aggs.size());
  for (const auto& spec : aggs) {
    if (spec.output_feature.empty()) {
      return Status::InvalidArgument("aggregation needs an output name");
    }
    if (spec.input.empty()) {
      if (spec.fn != AggregateFn::kCount) {
        return Status::InvalidArgument(
            "empty input is only valid for count()");
      }
      inputs.push_back(nullptr);
      continue;
    }
    MLFS_ASSIGN_OR_RETURN(CompiledExpr compiled,
                          CompiledExpr::Compile(spec.input, event_schema));
    bool needs_numeric = spec.fn != AggregateFn::kCount &&
                         spec.fn != AggregateFn::kCountDistinct;
    if (needs_numeric && !IsNumeric(compiled.output_type()) &&
        compiled.output_type() != FeatureType::kNull) {
      return Status::InvalidArgument(
          "aggregation '" + spec.output_feature + "': input type " +
          std::string(FeatureTypeToString(compiled.output_type())) +
          " is not numeric");
    }
    inputs.push_back(std::make_unique<CompiledExpr>(std::move(compiled)));
  }
  return std::unique_ptr<WindowedAggregator>(new WindowedAggregator(
      std::move(event_schema), eidx, tidx, window, std::move(aggs),
      std::move(inputs), allowed_lateness));
}

Timestamp WindowedAggregator::FirstWindowStartFor(Timestamp t) const {
  // Earliest window [start, start+width) containing t, with start on the
  // slide grid (floor semantics for negative times).
  Timestamp earliest = t - window_.width + 1;
  Timestamp q = earliest / window_.slide;
  if (earliest % window_.slide != 0 && earliest < 0) --q;
  Timestamp start = q * window_.slide;
  if (start + window_.width <= t) start += window_.slide;
  return start;
}

Status WindowedAggregator::ProcessEvent(const Row& event) {
  if (event.schema() == nullptr || !(*event.schema() == *schema_)) {
    return Status::InvalidArgument("event schema mismatch");
  }
  const Value& tv = event.value(time_idx_);
  if (tv.is_null()) return Status::InvalidArgument("event time is null");
  Timestamp t = tv.time_value();
  if (watermark_ != kMinTimestamp && t < watermark_) {
    ++dropped_late_;
    return Status::OK();
  }
  MLFS_ASSIGN_OR_RETURN(std::string key,
                        EntityKeyToString(event.value(entity_idx_)));

  for (Timestamp start = FirstWindowStartFor(t); start <= t;
       start += window_.slide) {
    EntityState& state = [&]() -> EntityState& {
      auto& by_entity = open_[start];
      auto it = by_entity.find(key);
      if (it != by_entity.end()) return it->second;
      EntityState fresh;
      fresh.aggs.reserve(aggs_.size());
      for (const auto& spec : aggs_) fresh.aggs.push_back(MakeAggregator(spec.fn));
      return by_entity.emplace(key, std::move(fresh)).first->second;
    }();
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (inputs_[i] == nullptr) {
        state.aggs[i]->Add(Value::Bool(true));  // Count the event.
        continue;
      }
      MLFS_ASSIGN_OR_RETURN(Value v, inputs_[i]->Eval(event));
      state.aggs[i]->Add(v);
    }
  }

  max_event_time_ = std::max(max_event_time_, t);
  Timestamp new_watermark = max_event_time_ - allowed_lateness_;
  if (new_watermark > watermark_) {
    watermark_ = new_watermark;
    MaybeFinalize();
  }
  return Status::OK();
}

void WindowedAggregator::MaybeFinalize() {
  // Finalize windows whose end <= watermark. `open_` is ordered by start.
  while (!open_.empty()) {
    auto it = open_.begin();
    Timestamp end = it->first + window_.width;
    if (end > watermark_) break;
    std::vector<std::string> keys;
    keys.reserve(it->second.size());
    for (const auto& [key, state] : it->second) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) {
      EntityState& state = it->second[key];
      WindowResult result;
      result.entity_key = key;
      result.window_start = it->first;
      result.window_end = end;
      result.values.reserve(state.aggs.size());
      for (const auto& agg : state.aggs) result.values.push_back(agg->Result());
      ready_.push_back(std::move(result));
    }
    open_.erase(it);
  }
}

std::vector<WindowResult> WindowedAggregator::PollResults() {
  std::vector<WindowResult> out;
  out.swap(ready_);
  return out;
}

void WindowedAggregator::AdvanceWatermarkTo(Timestamp t) {
  if (t <= watermark_) return;
  watermark_ = t;
  MaybeFinalize();
}

size_t WindowedAggregator::open_states() const {
  size_t n = 0;
  for (const auto& [start, by_entity] : open_) n += by_entity.size();
  return n;
}

}  // namespace mlfs
