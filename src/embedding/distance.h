#ifndef MLFS_EMBEDDING_DISTANCE_H_
#define MLFS_EMBEDDING_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <string_view>

namespace mlfs {

/// Similarity/distance space for vector search.
enum class Metric : uint8_t {
  kL2,            // Squared Euclidean distance (smaller = closer).
  kInnerProduct,  // Negated dot product as distance (smaller = closer).
  kCosine,        // 1 - cosine similarity.
};

std::string_view MetricToString(Metric metric);

inline float DotProduct(const float* a, const float* b, size_t dim) {
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    s0 += a[j] * b[j];
    s1 += a[j + 1] * b[j + 1];
    s2 += a[j + 2] * b[j + 2];
    s3 += a[j + 3] * b[j + 3];
  }
  for (; j < dim; ++j) s0 += a[j] * b[j];
  return s0 + s1 + s2 + s3;
}

inline float L2Squared(const float* a, const float* b, size_t dim) {
  float s0 = 0, s1 = 0;
  size_t j = 0;
  for (; j + 2 <= dim; j += 2) {
    float d0 = a[j] - b[j];
    float d1 = a[j + 1] - b[j + 1];
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  for (; j < dim; ++j) {
    float d = a[j] - b[j];
    s0 += d * d;
  }
  return s0 + s1;
}

inline float L2Norm(const float* a, size_t dim) {
  return std::sqrt(DotProduct(a, a, dim));
}

inline float CosineSimilarity(const float* a, const float* b, size_t dim) {
  float denom = L2Norm(a, dim) * L2Norm(b, dim);
  if (denom == 0) return 0.0f;
  return DotProduct(a, b, dim) / denom;
}

/// Distance under `metric` (always: smaller = closer).
inline float Distance(Metric metric, const float* a, const float* b,
                      size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2Squared(a, b, dim);
    case Metric::kInnerProduct:
      return -DotProduct(a, b, dim);
    case Metric::kCosine:
      return 1.0f - CosineSimilarity(a, b, dim);
  }
  return 0.0f;
}

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_DISTANCE_H_
