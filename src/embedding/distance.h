#ifndef MLFS_EMBEDDING_DISTANCE_H_
#define MLFS_EMBEDDING_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mlfs {

/// Similarity/distance space for vector search.
enum class Metric : uint8_t {
  kL2,            // Squared Euclidean distance (smaller = closer).
  kInnerProduct,  // Negated dot product as distance (smaller = closer).
  kCosine,        // 1 - cosine similarity.
};

std::string_view MetricToString(Metric metric);

/// Portable reference kernels (always compiled, no ISA requirements).
/// These are the semantics every SIMD specialization must agree with to
/// within normal float re-association error; tests pin the tolerance.
float DotProductScalar(const float* a, const float* b, size_t dim);
float L2SquaredScalar(const float* a, const float* b, size_t dim);

namespace simd {
using KernelFn = float (*)(const float*, const float*, size_t);
/// Active kernels. Constant-initialized to the scalar reference kernels,
/// upgraded once at load time to the widest ISA the CPU reports (AVX2+FMA
/// on x86, NEON on aarch64) — callers never pay a feature check per call.
extern KernelFn dot_product;
extern KernelFn l2_squared;
/// Name of the dispatched implementation: "avx2+fma", "neon", or "scalar".
std::string_view LevelName();
}  // namespace simd

inline float DotProduct(const float* a, const float* b, size_t dim) {
  return simd::dot_product(a, b, dim);
}

inline float L2Squared(const float* a, const float* b, size_t dim) {
  return simd::l2_squared(a, b, dim);
}

inline float L2Norm(const float* a, size_t dim) {
  return std::sqrt(DotProduct(a, a, dim));
}

inline float CosineSimilarity(const float* a, const float* b, size_t dim) {
  float denom = L2Norm(a, dim) * L2Norm(b, dim);
  if (denom == 0) return 0.0f;
  return DotProduct(a, b, dim) / denom;
}

/// Distance under `metric` (always: smaller = closer).
inline float Distance(Metric metric, const float* a, const float* b,
                      size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2Squared(a, b, dim);
    case Metric::kInnerProduct:
      return -DotProduct(a, b, dim);
    case Metric::kCosine:
      return 1.0f - CosineSimilarity(a, b, dim);
  }
  return 0.0f;
}

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_DISTANCE_H_
