#ifndef MLFS_EMBEDDING_QUALITY_H_
#define MLFS_EMBEDDING_QUALITY_H_

#include <vector>

#include "common/status.h"
#include "embedding/embedding_table.h"
#include "ml/dataset.h"
#include "ml/linear_model.h"

namespace mlfs {

/// k-NN overlap between two embedding versions, per Wendlandt et al. [29] /
/// Hellrich & Hahn [12] (paper §3.1.2): for each sampled key present in
/// both tables, the fraction of its k nearest neighbors (cosine, within the
/// common-key universe) that coincide across versions.
struct NeighborStabilityReport {
  double mean_overlap = 0.0;   // 1.0 = identical neighborhoods.
  double min_overlap = 1.0;
  size_t keys_compared = 0;
};
StatusOr<NeighborStabilityReport> NeighborStability(const EmbeddingTable& a,
                                                    const EmbeddingTable& b,
                                                    size_t k = 10,
                                                    size_t max_keys = 500);

/// Eigenspace overlap score of May et al. [18] (paper §3.1.2): with U, V
/// the orthonormal column bases of the two n x d embedding matrices
/// (restricted to common keys, same order),
///     EOS = ||U^T V||_F^2 / max(rank_U, rank_V)  in [0, 1].
/// 1.0 means the compressed/retrained embedding spans the same subspace —
/// the paper's cited predictor of downstream performance.
StatusOr<double> EigenspaceOverlapScore(const EmbeddingTable& a,
                                        const EmbeddingTable& b);

/// Downstream instability of Leszczynski et al. [17] (paper §3.1.2): train
/// the same downstream model on features from embedding A and embedding B
/// and measure the fraction of *test* predictions that change.
struct InstabilityReport {
  double prediction_churn = 0.0;  // Fraction of test predictions changed.
  double accuracy_a = 0.0;
  double accuracy_b = 0.0;
};

/// A downstream task over embedding keys: each example is (key, label);
/// features are looked up in whichever embedding version is under test.
struct DownstreamTask {
  std::vector<std::string> keys;
  std::vector<int> labels;
};

/// Builds a Dataset by replacing each task key with its vector from
/// `table`; keys missing from the table are skipped (and *must* be skipped
/// identically for comparability — prefer tables with identical key sets).
StatusOr<Dataset> MaterializeTask(const DownstreamTask& task,
                                  const EmbeddingTable& table);

StatusOr<InstabilityReport> DownstreamInstability(
    const EmbeddingTable& a, const EmbeddingTable& b,
    const DownstreamTask& task, double test_fraction = 0.3,
    const TrainConfig& config = {});

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_QUALITY_H_
