#ifndef MLFS_EMBEDDING_ANN_H_
#define MLFS_EMBEDDING_ANN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/distance.h"

namespace mlfs {

class ThreadPool;

/// One nearest-neighbor hit.
struct Neighbor {
  float distance = 0.0f;  // Under the index metric (smaller = closer).
  size_t id = 0;          // Row id in the indexed data.
};

/// Interface of vector-similarity indexes serving embedding lookups —
/// the "tools for searching and querying these embeddings" the paper names
/// as a requirement for embedding-native feature stores (§4).
///
/// Build() must be called exactly once before Search(). The indexed buffer
/// must outlive the index (indexes store offsets, not copies, except where
/// noted). Search is thread-safe after Build.
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  /// Indexes `n` vectors of dimension `dim` (row-major, borrowed).
  virtual Status Build(const float* data, size_t n, size_t dim) = 0;

  /// `k` nearest neighbors of `query` in ascending distance order.
  virtual StatusOr<std::vector<Neighbor>> Search(const float* query,
                                                 size_t k) const = 0;

  /// Batched search: `queries` is `nq` row-major vectors of the indexed
  /// dimension; entry i of the result is query i's neighbors, identical to
  /// what Search(queries + i * dim, k) returns. The base implementation
  /// loops Search; indexes override it to amortize per-query costs
  /// (brute force: blocked scans that reuse each data block across the
  /// whole batch; HNSW: a reusable epoch-stamped visited pool). When
  /// `pool` is non-null, implementations may fan queries out across it;
  /// results are ordered by query either way. Thread-safe after Build.
  virtual StatusOr<std::vector<std::vector<Neighbor>>> BatchSearch(
      const float* queries, size_t nq, size_t k,
      ThreadPool* pool = nullptr) const;

  virtual std::string name() const = 0;
  virtual Metric metric() const = 0;
  /// Dimension of the indexed vectors (0 before Build). Doubles as the
  /// row stride of a BatchSearch query buffer.
  virtual size_t dim() const = 0;
};

/// Exact scan. The recall-1.0 baseline every approximate index is judged
/// against.
std::unique_ptr<AnnIndex> MakeBruteForceIndex(Metric metric = Metric::kL2);

class EmbeddingTable;
/// Exact scan over a *tiered* embedding table: blocks stream out of the
/// tier (hot arena or dequantize-on-read, never promoting), so search
/// works within the tier's memory budget instead of materializing the
/// matrix. Build(nullptr, 0, 0) — the data comes from `table`. Results
/// are bitwise-identical to MakeBruteForceIndex over the served vectors.
std::unique_ptr<AnnIndex> MakeTieredBruteForceIndex(
    std::shared_ptr<const EmbeddingTable> table, Metric metric = Metric::kL2);

struct IvfOptions {
  size_t nlist = 64;    // Number of coarse cells.
  size_t nprobe = 8;    // Cells visited per query.
  int kmeans_iterations = 20;
  uint64_t seed = 1;
};
/// Inverted-file index with exact in-cell scan (IVF-Flat). L2 only.
std::unique_ptr<AnnIndex> MakeIvfIndex(IvfOptions options = {});

struct HnswOptions {
  size_t m = 16;                 // Max neighbors per node per layer.
  size_t ef_construction = 100;  // Candidate pool during insertion.
  size_t ef_search = 64;         // Candidate pool during search.
  uint64_t seed = 1;
  Metric metric = Metric::kL2;
};
/// Hierarchical Navigable Small World graph (Malkov & Yashunin).
std::unique_ptr<AnnIndex> MakeHnswIndex(HnswOptions options = {});

/// recall@k of `result` against ground truth ids (fraction of true
/// neighbors retrieved).
double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& ground_truth, size_t k);

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_ANN_H_
