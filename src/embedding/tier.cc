#include "embedding/tier.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/hash.h"
#include "storage/persistence.h"

namespace mlfs {
namespace {

constexpr uint32_t kTierMagic = 0x4d4c4554;  // "MLET"
constexpr uint32_t kTierVersion = 1;
constexpr size_t kTierHeaderBytes = 16;   // magic + version + body_len.
constexpr size_t kTierBodyFixedBytes = 28;  // bits + n + dim + block_rows.

inline void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
inline void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
inline void AppendFloat(std::string* out, float v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
inline float LoadFloat(const uint8_t* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}

/// Pointers returned by GetRow/MultiGetRows stay valid until the calling
/// thread's next tiered read: each read clears the thread's previous pins
/// and pins every block it serves from, so a block demoted by another
/// thread cannot free storage someone is still reading.
std::vector<std::shared_ptr<const std::vector<float>>>& ThreadPins() {
  thread_local std::vector<std::shared_ptr<const std::vector<float>>> pins;
  return pins;
}

std::atomic<uint64_t> g_tier_file_counter{0};

}  // namespace

StatusOr<std::unique_ptr<EmbeddingTier>> EmbeddingTier::Build(
    const float* data, size_t n, size_t dim, EmbeddingTierOptions options) {
  if (data == nullptr || n == 0 || dim == 0) {
    return Status::InvalidArgument("cannot build a tier over an empty matrix");
  }
  MLFS_ASSIGN_OR_RETURN(PackedCodes packed,
                        PackUniform(data, n, dim, options.bits));
  std::unique_ptr<EmbeddingTier> tier(new EmbeddingTier());
  MLFS_RETURN_IF_ERROR(tier->WriteAndMap(packed, options));
  // Seed the hot arena with the leading blocks that fit the budget,
  // holding the *exact* source floats (not a dequantized round trip): a
  // row that is never demoted serves byte-identical data.
  const size_t seed = std::min(tier->hot_limit_, tier->blocks_count_);
  for (size_t b = 0; b < seed; ++b) {
    const size_t row0 = tier->BlockRow0(b);
    const size_t nrows = tier->BlockRows(b);
    tier->blocks_[b].data = std::make_shared<const std::vector<float>>(
        data + row0 * dim, data + (row0 + nrows) * dim);
    tier->blocks_[b].stamp = ++tier->tick_;
    ++tier->hot_count_;
  }
  return tier;
}

StatusOr<std::unique_ptr<EmbeddingTier>> EmbeddingTier::Restore(
    PackedCodes packed,
    std::vector<std::pair<uint32_t, std::vector<float>>> hot_blocks,
    EmbeddingTierOptions options) {
  if (packed.bits < 1 || packed.bits > 16 || packed.n == 0 ||
      packed.dim == 0 ||
      packed.row_bytes !=
          (packed.dim * static_cast<size_t>(packed.bits) + 7) / 8 ||
      packed.lo.size() != packed.dim || packed.hi.size() != packed.dim ||
      packed.codes.size() != packed.n * packed.row_bytes) {
    return Status::Corruption("embedding tier snapshot: bad packed shape");
  }
  options.bits = packed.bits;
  std::unique_ptr<EmbeddingTier> tier(new EmbeddingTier());
  MLFS_RETURN_IF_ERROR(tier->WriteAndMap(packed, options));
  for (auto& [b, rows] : hot_blocks) {
    if (b >= tier->blocks_count_ ||
        rows.size() != tier->BlockRows(b) * tier->dim_ ||
        tier->blocks_[b].data != nullptr) {
      return Status::Corruption("embedding tier snapshot: bad hot block");
    }
    tier->blocks_[b].data =
        std::make_shared<const std::vector<float>>(std::move(rows));
    tier->blocks_[b].stamp = ++tier->tick_;
    ++tier->hot_count_;
  }
  tier->EvictOverLimitLocked();  // Restore under a smaller budget demotes.
  return tier;
}

EmbeddingTier::~EmbeddingTier() {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    if (remove_file_on_destroy_) {
      std::error_code ec;
      std::filesystem::remove(path_, ec);
    }
  }
}

Status EmbeddingTier::WriteAndMap(const PackedCodes& packed,
                                  const EmbeddingTierOptions& options) {
  MLFS_FAILPOINT("embedding.tier.spill");
  if (options.dir.empty()) {
    return Status::InvalidArgument("embedding tier: dir is required");
  }
  if (options.block_rows == 0) {
    return Status::InvalidArgument("embedding tier: block_rows must be > 0");
  }

  std::string body;
  body.reserve(kTierBodyFixedBytes + 8 * packed.dim + packed.codes.size());
  AppendU32(&body, static_cast<uint32_t>(packed.bits));
  AppendU64(&body, packed.n);
  AppendU64(&body, packed.dim);
  AppendU64(&body, options.block_rows);
  for (float v : packed.lo) AppendFloat(&body, v);
  for (float v : packed.hi) AppendFloat(&body, v);
  body.append(reinterpret_cast<const char*>(packed.codes.data()),
              packed.codes.size());

  std::string blob;
  blob.reserve(kTierHeaderBytes + body.size() + 8);
  AppendU32(&blob, kTierMagic);
  AppendU32(&blob, kTierVersion);
  AppendU64(&blob, body.size());
  blob.append(body);
  AppendU64(&blob, Fnv1a64(body.data(), body.size()));

  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  const uint64_t id =
      g_tier_file_counter.fetch_add(1, std::memory_order_relaxed);
  std::string path = options.dir + "/" + options.file_stem + "_" +
                     std::to_string(id) + ".emt";
  MLFS_RETURN_IF_ERROR(WriteFileAtomic(path, blob));

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open tier file '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::Corruption("cannot stat tier file '" + path + "'");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::Internal("mmap failed for tier file '" + path + "'");
  }
  map_ = map;
  map_len_ = static_cast<size_t>(st.st_size);
  path_ = std::move(path);
  remove_file_on_destroy_ = options.remove_file_on_destroy;
  MLFS_RETURN_IF_ERROR(OpenMapped());

  const size_t block_bytes = block_rows_ * dim_ * sizeof(float);
  hot_limit_ =
      std::min(block_bytes == 0 ? size_t{0}
                                : options.memory_budget_bytes / block_bytes,
               blocks_count_);
  blocks_.assign(blocks_count_, Block{});
  return Status::OK();
}

Status EmbeddingTier::OpenMapped() {
  const uint8_t* p = static_cast<const uint8_t*>(map_);
  if (map_len_ < kTierHeaderBytes + kTierBodyFixedBytes + 8) {
    return Status::Corruption("tier file truncated");
  }
  if (LoadU32(p) != kTierMagic) {
    return Status::Corruption("tier file bad magic");
  }
  if (LoadU32(p + 4) != kTierVersion) {
    return Status::Corruption("tier file unsupported version");
  }
  const uint64_t body_len = LoadU64(p + 8);
  if (body_len != map_len_ - kTierHeaderBytes - 8) {
    return Status::Corruption("tier file length mismatch");
  }
  const uint8_t* body = p + kTierHeaderBytes;
  if (Fnv1a64(body, body_len) != LoadU64(body + body_len)) {
    return Status::Corruption("tier file checksum mismatch");
  }

  const uint32_t bits = LoadU32(body);
  const uint64_t n = LoadU64(body + 4);
  const uint64_t dim = LoadU64(body + 12);
  const uint64_t block_rows = LoadU64(body + 20);
  if (bits < 1 || bits > 16 || n == 0 || dim == 0 || dim > (1u << 24) ||
      block_rows == 0) {
    return Status::Corruption("tier file bad shape");
  }
  bits_ = static_cast<int>(bits);
  n_ = n;
  dim_ = dim;
  block_rows_ = block_rows;
  row_bytes_ = (dim_ * static_cast<size_t>(bits_) + 7) / 8;
  blocks_count_ = (n_ + block_rows_ - 1) / block_rows_;
  if (body_len < kTierBodyFixedBytes + 8 * dim_) {
    return Status::Corruption("tier file range table truncated");
  }
  const size_t codes_len = body_len - kTierBodyFixedBytes - 8 * dim_;
  if (codes_len / row_bytes_ != n_ || codes_len % row_bytes_ != 0) {
    return Status::Corruption("tier file code section length mismatch");
  }
  lo_f_.resize(dim_);
  hi_f_.resize(dim_);
  const uint8_t* ranges = body + kTierBodyFixedBytes;
  for (size_t j = 0; j < dim_; ++j) {
    lo_f_[j] = LoadFloat(ranges + 4 * j);
    hi_f_[j] = LoadFloat(ranges + 4 * (dim_ + j));
    if (!std::isfinite(lo_f_[j]) || !std::isfinite(hi_f_[j]) ||
        lo_f_[j] > hi_f_[j]) {
      return Status::Corruption("tier file non-finite or inverted range");
    }
  }
  codes_ = ranges + 8 * dim_;
  tables_ = MakeDecodeTables(bits_, lo_f_, hi_f_);
  return Status::OK();
}

PackedCodesView EmbeddingTier::MapView() const {
  PackedCodesView view;
  view.bits = bits_;
  view.n = n_;
  view.dim = dim_;
  view.row_bytes = row_bytes_;
  view.lo = tables_.lo.data();
  view.step = tables_.step.data();
  view.codes = codes_;
  return view;
}

std::vector<float> EmbeddingTier::LoadBlock(size_t b) const {
  const size_t row0 = BlockRow0(b);
  const size_t nrows = BlockRows(b);
  std::vector<float> rows(nrows * dim_);
  DequantizeRange(MapView(), row0, nrows, rows.data());
  return rows;
}

void EmbeddingTier::EvictOverLimitLocked() const {
  // Linear min-stamp scan: blocks_count_ is small (rows / block_rows) and
  // eviction only runs on promotions past the budget.
  while (hot_count_ > hot_limit_) {
    size_t victim = blocks_.size();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (size_t b = 0; b < blocks_.size(); ++b) {
      if (blocks_[b].data != nullptr && blocks_[b].stamp < oldest) {
        oldest = blocks_[b].stamp;
        victim = b;
      }
    }
    if (victim == blocks_.size()) break;
    blocks_[victim].data.reset();
    --hot_count_;
    ++demotions_;
  }
}

StatusOr<const float*> EmbeddingTier::GetRow(size_t row) const {
  if (row >= n_) {
    return Status::OutOfRange("embedding tier row out of range");
  }
  auto& pins = ThreadPins();
  pins.clear();
  const size_t b = row / block_rows_;
  const size_t offset = (row - BlockRow0(b)) * dim_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Block& blk = blocks_[b];
    if (blk.data != nullptr) {
      ++hot_hits_;
      blk.stamp = ++tick_;
      pins.push_back(blk.data);
      return blk.data->data() + offset;
    }
    ++cold_misses_;
  }
  if (FailpointRegistry::Instance().AnyArmed()) {
    Status s = FailpointRegistry::Instance().Evaluate("embedding.tier.load");
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++load_faults_;
      return s;
    }
  }
  BlockData loaded =
      std::make_shared<const std::vector<float>>(LoadBlock(b));
  const float* ptr = loaded->data() + offset;
  pins.push_back(loaded);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Block& blk = blocks_[b];
    blk.stamp = ++tick_;
    // A concurrent reader may have promoted b already; our copy is
    // byte-identical (same codes, same tables), so serving it is fine.
    if (blk.data == nullptr && hot_limit_ > 0) {
      blk.data = std::move(loaded);
      ++hot_count_;
      ++promotions_;
      EvictOverLimitLocked();
    }
  }
  return ptr;
}

void EmbeddingTier::MultiGetRows(std::span<const int64_t> rows,
                                 std::vector<const float*>* out) const {
  out->assign(rows.size(), nullptr);
  auto& pins = ThreadPins();
  pins.clear();
  if (rows.empty()) return;

  struct Need {
    BlockData data;   // Null while cold.
    bool cold = false;
  };
  std::unordered_map<size_t, Need> held;
  std::vector<size_t> cold;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One tick for the whole batch: a block counts one access no matter
    // how many batch rows it serves (batch-aware promotion).
    const uint64_t stamp = ++tick_;
    for (int64_t r : rows) {
      if (r < 0 || static_cast<size_t>(r) >= n_) continue;
      const size_t b = static_cast<size_t>(r) / block_rows_;
      auto [it, inserted] = held.try_emplace(b);
      if (!inserted) continue;
      Block& blk = blocks_[b];
      blk.stamp = stamp;
      it->second.data = blk.data;
      it->second.cold = blk.data == nullptr;
      if (it->second.cold) cold.push_back(b);
    }
    for (int64_t r : rows) {
      if (r < 0 || static_cast<size_t>(r) >= n_) continue;
      const size_t b = static_cast<size_t>(r) / block_rows_;
      if (held[b].cold) {
        ++cold_misses_;
      } else {
        ++hot_hits_;
      }
    }
  }

  bool faulted = false;
  if (!cold.empty() && FailpointRegistry::Instance().AnyArmed()) {
    Status s = FailpointRegistry::Instance().Evaluate("embedding.tier.load");
    if (!s.ok()) {
      faulted = true;  // Cold slots degrade to misses (stay null).
      std::lock_guard<std::mutex> lock(mu_);
      ++load_faults_;
    }
  }
  if (!faulted && !cold.empty()) {
    for (size_t b : cold) {
      held[b].data = std::make_shared<const std::vector<float>>(LoadBlock(b));
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t b : cold) {
      Block& blk = blocks_[b];
      if (blk.data == nullptr && hot_limit_ > 0) {
        blk.data = held[b].data;
        ++hot_count_;
        ++promotions_;
      }
    }
    EvictOverLimitLocked();
  }

  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    if (r < 0 || static_cast<size_t>(r) >= n_) continue;
    const size_t b = static_cast<size_t>(r) / block_rows_;
    const Need& need = held[b];
    if (need.data == nullptr) continue;  // Fault-injected cold block.
    (*out)[i] =
        need.data->data() + (static_cast<size_t>(r) - BlockRow0(b)) * dim_;
  }
  for (auto& [b, need] : held) {
    if (need.data != nullptr) pins.push_back(std::move(need.data));
  }
}

void EmbeddingTier::CopyRow(size_t row, float* out) const {
  MLFS_DCHECK(row < n_);
  const size_t b = row / block_rows_;
  BlockData local;
  {
    std::lock_guard<std::mutex> lock(mu_);
    local = blocks_[b].data;
  }
  if (local != nullptr) {
    std::memcpy(out, local->data() + (row - BlockRow0(b)) * dim_,
                dim_ * sizeof(float));
  } else {
    DequantizeRange(MapView(), row, 1, out);
  }
}

Status EmbeddingTier::ScanBlocks(
    const std::function<void(size_t row0, size_t nrows, const float* rows)>&
        fn) const {
  if (FailpointRegistry::Instance().AnyArmed()) {
    Status s = FailpointRegistry::Instance().Evaluate("embedding.tier.load");
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++load_faults_;
      return s;
    }
  }
  uint64_t stamp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++scans_;
    stamp = ++tick_;
  }
  std::vector<float> scratch;
  for (size_t b = 0; b < blocks_count_; ++b) {
    const size_t row0 = BlockRow0(b);
    const size_t nrows = BlockRows(b);
    BlockData local;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Block& blk = blocks_[b];
      if (blk.data != nullptr) {
        // Refresh so a scan keeps the hot set warm, but never promote: a
        // full ANN pass must not flush the point-lookup working set.
        blk.stamp = stamp;
        local = blk.data;
      } else {
        ++scan_cold_blocks_;
      }
    }
    if (local != nullptr) {
      fn(row0, nrows, local->data());
    } else {
      scratch.resize(nrows * dim_);
      DequantizeRange(MapView(), row0, nrows, scratch.data());
      fn(row0, nrows, scratch.data());
    }
  }
  return Status::OK();
}

void EmbeddingTier::SetHotLimit(size_t blocks) const {
  std::lock_guard<std::mutex> lock(mu_);
  hot_limit_ = std::min(blocks, blocks_count_);
  EvictOverLimitLocked();
}

EmbeddingTierStats EmbeddingTier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EmbeddingTierStats s;
  s.hot_hits = hot_hits_;
  s.cold_misses = cold_misses_;
  s.promotions = promotions_;
  s.demotions = demotions_;
  s.scans = scans_;
  s.scan_cold_blocks = scan_cold_blocks_;
  s.load_faults = load_faults_;
  s.hot_blocks = hot_count_;
  s.total_blocks = blocks_count_;
  s.hot_limit_blocks = hot_limit_;
  s.packed_bytes = map_len_;
  for (const Block& b : blocks_) {
    if (b.data != nullptr) s.resident_bytes += b.data->size() * sizeof(float);
  }
  return s;
}

std::vector<std::pair<uint32_t, std::vector<float>>>
EmbeddingTier::HotBlocksSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint32_t, std::vector<float>>> hot;
  hot.reserve(hot_count_);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].data != nullptr) {
      hot.emplace_back(static_cast<uint32_t>(b), *blocks_[b].data);
    }
  }
  return hot;
}

}  // namespace mlfs
