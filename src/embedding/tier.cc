#include "embedding/tier.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"

namespace mlfs {
namespace {

constexpr uint32_t kTierMagic = 0x4d4c4554;  // "MLET"
constexpr uint32_t kTierVersion = 1;
constexpr size_t kTierBodyFixedBytes = 28;  // bits + n + dim + block_rows.

inline void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
inline void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
inline void AppendFloat(std::string* out, float v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
inline float LoadFloat(const uint8_t* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}

std::atomic<uint64_t> g_tier_file_counter{0};

}  // namespace

StatusOr<std::unique_ptr<EmbeddingTier>> EmbeddingTier::Build(
    const float* data, size_t n, size_t dim, EmbeddingTierOptions options) {
  if (data == nullptr || n == 0 || dim == 0) {
    return Status::InvalidArgument("cannot build a tier over an empty matrix");
  }
  MLFS_ASSIGN_OR_RETURN(PackedCodes packed,
                        PackUniform(data, n, dim, options.bits));
  std::unique_ptr<EmbeddingTier> tier(new EmbeddingTier());
  MLFS_RETURN_IF_ERROR(tier->WriteAndMap(packed, options));
  // Seed the hot arena with the leading blocks that fit the budget,
  // holding the *exact* source floats (not a dequantized round trip): a
  // row that is never demoted serves byte-identical data. Seeding is
  // placement, not promotion, so it leaves the promotion counter alone.
  const size_t seed =
      std::min(tier->cache_->capacity(), tier->blocks_count_);
  for (size_t b = 0; b < seed; ++b) {
    const size_t row0 = tier->BlockRow0(b);
    const size_t nrows = tier->BlockRows(b);
    tier->cache_->Insert(b,
                         std::make_shared<const std::vector<float>>(
                             data + row0 * dim, data + (row0 + nrows) * dim),
                         tier->BlockBytes(b), tier->cache_->BeginBatch(),
                         /*count_promotion=*/false);
  }
  return tier;
}

StatusOr<std::unique_ptr<EmbeddingTier>> EmbeddingTier::Restore(
    PackedCodes packed,
    std::vector<std::pair<uint32_t, std::vector<float>>> hot_blocks,
    EmbeddingTierOptions options) {
  if (packed.bits < 1 || packed.bits > 16 || packed.n == 0 ||
      packed.dim == 0 ||
      packed.row_bytes !=
          (packed.dim * static_cast<size_t>(packed.bits) + 7) / 8 ||
      packed.lo.size() != packed.dim || packed.hi.size() != packed.dim ||
      packed.codes.size() != packed.n * packed.row_bytes) {
    return Status::Corruption("embedding tier snapshot: bad packed shape");
  }
  options.bits = packed.bits;
  std::unique_ptr<EmbeddingTier> tier(new EmbeddingTier());
  MLFS_RETURN_IF_ERROR(tier->WriteAndMap(packed, options));
  // Seed in snapshot order: later blocks carry newer stamps, so a restore
  // under a smaller budget keeps the same blocks a full seed + demotion
  // pass would.
  std::unordered_set<uint32_t> seen;
  for (auto& [b, rows] : hot_blocks) {
    if (b >= tier->blocks_count_ ||
        rows.size() != tier->BlockRows(b) * tier->dim_ ||
        !seen.insert(b).second) {
      return Status::Corruption("embedding tier snapshot: bad hot block");
    }
    tier->cache_->Insert(
        b, std::make_shared<const std::vector<float>>(std::move(rows)),
        tier->BlockBytes(b), tier->cache_->BeginBatch(),
        /*count_promotion=*/false);
  }
  return tier;
}

EmbeddingTier::~EmbeddingTier() = default;

Status EmbeddingTier::WriteAndMap(const PackedCodes& packed,
                                  const EmbeddingTierOptions& options) {
  MLFS_FAILPOINT("embedding.tier.spill");
  if (options.dir.empty()) {
    return Status::InvalidArgument("embedding tier: dir is required");
  }
  if (options.block_rows == 0) {
    return Status::InvalidArgument("embedding tier: block_rows must be > 0");
  }

  std::string body;
  body.reserve(kTierBodyFixedBytes + 8 * packed.dim + packed.codes.size());
  AppendU32(&body, static_cast<uint32_t>(packed.bits));
  AppendU64(&body, packed.n);
  AppendU64(&body, packed.dim);
  AppendU64(&body, options.block_rows);
  for (float v : packed.lo) AppendFloat(&body, v);
  for (float v : packed.hi) AppendFloat(&body, v);
  body.append(reinterpret_cast<const char*>(packed.codes.data()),
              packed.codes.size());

  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  const uint64_t id =
      g_tier_file_counter.fetch_add(1, std::memory_order_relaxed);
  std::string path = options.dir + "/" + options.file_stem + "_" +
                     std::to_string(id) + ".emt";
  MLFS_ASSIGN_OR_RETURN(
      file_, BlockFile::Spill(kTierMagic, kTierVersion,
                              BlockFile::Seal(kTierMagic, kTierVersion, body),
                              std::move(path), options.remove_file_on_destroy,
                              "tier file"));
  MLFS_RETURN_IF_ERROR(ParseBody());

  const size_t block_bytes = block_rows_ * dim_ * sizeof(float);
  const size_t hot_limit =
      std::min(block_bytes == 0 ? size_t{0}
                                : options.memory_budget_bytes / block_bytes,
               blocks_count_);
  cache_ = std::make_unique<BlockCache>(blocks_count_, hot_limit);
  readahead_ = std::make_unique<ReadaheadScheduler>(options.readahead);
  return Status::OK();
}

Status EmbeddingTier::ParseBody() {
  // Envelope (magic, version, length, checksum) validated by BlockFile;
  // this parses the tier-specific body shape.
  const std::string_view body_view = file_->body();
  const uint8_t* body = reinterpret_cast<const uint8_t*>(body_view.data());
  if (body_view.size() < kTierBodyFixedBytes) {
    return Status::Corruption("tier file truncated");
  }
  const uint32_t bits = LoadU32(body);
  const uint64_t n = LoadU64(body + 4);
  const uint64_t dim = LoadU64(body + 12);
  const uint64_t block_rows = LoadU64(body + 20);
  if (bits < 1 || bits > 16 || n == 0 || dim == 0 || dim > (1u << 24) ||
      block_rows == 0) {
    return Status::Corruption("tier file bad shape");
  }
  bits_ = static_cast<int>(bits);
  n_ = n;
  dim_ = dim;
  block_rows_ = block_rows;
  row_bytes_ = (dim_ * static_cast<size_t>(bits_) + 7) / 8;
  blocks_count_ = (n_ + block_rows_ - 1) / block_rows_;
  if (body_view.size() < kTierBodyFixedBytes + 8 * dim_) {
    return Status::Corruption("tier file range table truncated");
  }
  const size_t codes_len = body_view.size() - kTierBodyFixedBytes - 8 * dim_;
  if (codes_len / row_bytes_ != n_ || codes_len % row_bytes_ != 0) {
    return Status::Corruption("tier file code section length mismatch");
  }
  lo_f_.resize(dim_);
  hi_f_.resize(dim_);
  const uint8_t* ranges = body + kTierBodyFixedBytes;
  for (size_t j = 0; j < dim_; ++j) {
    lo_f_[j] = LoadFloat(ranges + 4 * j);
    hi_f_[j] = LoadFloat(ranges + 4 * (dim_ + j));
    if (!std::isfinite(lo_f_[j]) || !std::isfinite(hi_f_[j]) ||
        lo_f_[j] > hi_f_[j]) {
      return Status::Corruption("tier file non-finite or inverted range");
    }
  }
  codes_ = ranges + 8 * dim_;
  tables_ = MakeDecodeTables(bits_, lo_f_, hi_f_);
  return Status::OK();
}

PackedCodesView EmbeddingTier::MapView() const {
  PackedCodesView view;
  view.bits = bits_;
  view.n = n_;
  view.dim = dim_;
  view.row_bytes = row_bytes_;
  view.lo = tables_.lo.data();
  view.step = tables_.step.data();
  view.codes = codes_;
  return view;
}

std::vector<float> EmbeddingTier::LoadBlock(size_t b) const {
  const size_t row0 = BlockRow0(b);
  const size_t nrows = BlockRows(b);
  std::vector<float> rows(nrows * dim_);
  DequantizeRange(MapView(), row0, nrows, rows.data());
  return rows;
}

StatusOr<const float*> EmbeddingTier::GetRow(size_t row) const {
  if (row >= n_) {
    return Status::OutOfRange("embedding tier row out of range");
  }
  auto& pins = BlockCache::ThreadPins();
  pins.clear();
  const size_t b = row / block_rows_;
  const size_t offset = (row - BlockRow0(b)) * dim_;
  BlockCache::Payload hot = cache_->Touch(b, cache_->BeginBatch());
  if (hot != nullptr) {
    cache_->CountAccess(1, 0);
    const float* ptr = BlockFloats(hot) + offset;
    pins.push_back(std::move(hot));
    return ptr;
  }
  cache_->CountAccess(0, 1);
  if (FailpointRegistry::Instance().AnyArmed()) {
    Status s = FailpointRegistry::Instance().Evaluate("embedding.tier.load");
    if (!s.ok()) {
      load_faults_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
  }
  BlockCache::Payload loaded = LoadBlockPayload(b);
  const float* ptr = BlockFloats(loaded) + offset;
  pins.push_back(loaded);
  // A concurrent reader may have promoted b already; our copy is
  // byte-identical (same codes, same tables), so serving it is fine.
  cache_->Insert(b, std::move(loaded), BlockBytes(b), cache_->BeginBatch());
  return ptr;
}

void EmbeddingTier::MultiGetRows(std::span<const int64_t> rows,
                                 std::vector<const float*>* out) const {
  out->assign(rows.size(), nullptr);
  auto& pins = BlockCache::ThreadPins();
  pins.clear();
  if (rows.empty()) return;

  // One stamp for the whole batch: a block counts one access no matter
  // how many batch rows it serves (batch-aware promotion).
  const uint64_t stamp = cache_->BeginBatch();
  std::unordered_map<size_t, BlockCache::Payload> held;
  std::vector<size_t> cold;
  for (int64_t r : rows) {
    if (r < 0 || static_cast<size_t>(r) >= n_) continue;
    const size_t b = static_cast<size_t>(r) / block_rows_;
    auto [it, inserted] = held.try_emplace(b);
    if (!inserted) continue;
    it->second = cache_->Touch(b, stamp);
    if (it->second == nullptr) cold.push_back(b);
  }
  uint64_t row_hits = 0, row_misses = 0;
  for (int64_t r : rows) {
    if (r < 0 || static_cast<size_t>(r) >= n_) continue;
    const size_t b = static_cast<size_t>(r) / block_rows_;
    if (held[b] == nullptr) {
      ++row_misses;
    } else {
      ++row_hits;
    }
  }
  cache_->CountAccess(row_hits, row_misses);

  bool faulted = false;
  if (!cold.empty() && FailpointRegistry::Instance().AnyArmed()) {
    Status s = FailpointRegistry::Instance().Evaluate("embedding.tier.load");
    if (!s.ok()) {
      faulted = true;  // Cold slots degrade to misses (stay null).
      load_faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!faulted && !cold.empty()) {
    // Overlap: hand the back half of the cold blocks to the readahead
    // scheduler, dequantize the front half here, then collect. A dropped
    // or disabled prefetch falls back to the demand load; either way the
    // bytes are identical (dequantization is deterministic).
    size_t split = cold.size();
    if (readahead_->enabled() && cold.size() >= 2) {
      split = cold.size() - cold.size() / 2;
      for (size_t ci = split; ci < cold.size(); ++ci) {
        const size_t b = cold[ci];
        readahead_->Prefetch(b, [this, b] { return LoadBlockPayload(b); });
      }
    }
    for (size_t ci = 0; ci < cold.size(); ++ci) {
      const size_t b = cold[ci];
      BlockCache::Payload p;
      if (ci >= split) p = readahead_->Consume(b);
      if (p == nullptr) p = LoadBlockPayload(b);
      held[b] = std::move(p);
    }
    for (size_t b : cold) {
      cache_->Insert(b, held[b], BlockBytes(b), stamp);
    }
  }

  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    if (r < 0 || static_cast<size_t>(r) >= n_) continue;
    const size_t b = static_cast<size_t>(r) / block_rows_;
    const BlockCache::Payload& p = held[b];
    if (p == nullptr) continue;  // Fault-injected cold block.
    (*out)[i] =
        BlockFloats(p) + (static_cast<size_t>(r) - BlockRow0(b)) * dim_;
  }
  for (auto& [b, p] : held) {
    if (p != nullptr) pins.push_back(std::move(p));
  }
}

void EmbeddingTier::CopyRow(size_t row, float* out) const {
  MLFS_DCHECK(row < n_);
  const size_t b = row / block_rows_;
  BlockCache::Payload local = cache_->Peek(b);
  if (local != nullptr) {
    std::memcpy(out, BlockFloats(local) + (row - BlockRow0(b)) * dim_,
                dim_ * sizeof(float));
  } else {
    DequantizeRange(MapView(), row, 1, out);
  }
}

Status EmbeddingTier::ScanBlocks(
    const std::function<void(size_t row0, size_t nrows, const float* rows)>&
        fn) const {
  if (FailpointRegistry::Instance().AnyArmed()) {
    Status s = FailpointRegistry::Instance().Evaluate("embedding.tier.load");
    if (!s.ok()) {
      load_faults_.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
  }
  scans_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t stamp = cache_->BeginBatch();
  // Sequential-scan readahead: while fn chews on block b, the scheduler
  // dequantizes the next cold block. Peek keeps the probe from
  // perturbing LRU order.
  const bool ra = readahead_->enabled();
  auto prefetch_next = [&](size_t next) {
    if (!ra || next >= blocks_count_ || cache_->Peek(next) != nullptr) return;
    readahead_->Prefetch(next,
                         [this, next] { return LoadBlockPayload(next); });
  };
  prefetch_next(0);
  std::vector<float> scratch;
  for (size_t b = 0; b < blocks_count_; ++b) {
    const size_t row0 = BlockRow0(b);
    const size_t nrows = BlockRows(b);
    // Refresh so a scan keeps the hot set warm, but never promote: a
    // full ANN pass must not flush the point-lookup working set.
    BlockCache::Payload local = cache_->Touch(b, stamp);
    prefetch_next(b + 1);
    if (local != nullptr) {
      fn(row0, nrows, BlockFloats(local));
      continue;
    }
    scan_cold_blocks_.fetch_add(1, std::memory_order_relaxed);
    BlockCache::Payload fetched = ra ? readahead_->Consume(b) : nullptr;
    if (fetched != nullptr) {
      fn(row0, nrows, BlockFloats(fetched));
    } else {
      scratch.resize(nrows * dim_);
      DequantizeRange(MapView(), row0, nrows, scratch.data());
      fn(row0, nrows, scratch.data());
    }
  }
  return Status::OK();
}

void EmbeddingTier::SetHotLimit(size_t blocks) const {
  cache_->SetCapacity(blocks);
}

EmbeddingTierStats EmbeddingTier::stats() const {
  const BlockCacheStats cs = cache_->stats();
  EmbeddingTierStats s;
  s.hot_hits = cs.hits;
  s.cold_misses = cs.misses;
  s.promotions = cs.promotions;
  s.demotions = cs.evictions;
  s.scans = scans_.load(std::memory_order_relaxed);
  s.scan_cold_blocks = scan_cold_blocks_.load(std::memory_order_relaxed);
  s.load_faults = load_faults_.load(std::memory_order_relaxed);
  s.hot_blocks = cs.resident_blocks;
  s.total_blocks = cs.num_blocks;
  s.hot_limit_blocks = cs.capacity_blocks;
  s.resident_bytes = cs.resident_bytes;
  s.packed_bytes = file_->size();
  s.readahead = readahead_->stats();
  return s;
}

std::vector<std::pair<uint32_t, std::vector<float>>>
EmbeddingTier::HotBlocksSnapshot() const {
  std::vector<std::pair<uint32_t, std::vector<float>>> hot;
  for (auto& [b, payload] : cache_->ResidentSnapshot()) {
    hot.emplace_back(b,
                     *static_cast<const std::vector<float>*>(payload.get()));
  }
  return hot;
}

}  // namespace mlfs
