#include "embedding/embedding_drift.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "embedding/distance.h"
#include "embedding/quality.h"
#include "quality/drift.h"

namespace mlfs {

std::string EmbeddingDriftReport::ToString() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "nan_cells=%llu norm_psi=%.4f churn=%.4f "
                "centroid_cos=%.4f self_cos=%.4f -> %s",
                static_cast<unsigned long long>(null_or_nan_cells), norm_psi,
                mean_neighbor_churn, centroid_cosine, mean_self_cosine,
                drifted ? "DRIFT" : "stable");
  return buf;
}

StatusOr<EmbeddingDriftReport> CheckEmbeddingDrift(
    const EmbeddingTable& a, const EmbeddingTable& b, size_t k,
    size_t max_keys, EmbeddingDriftThresholds thresholds) {
  // Drift math wants whole-matrix access; tiered versions are compared at
  // their served (dequantized-where-cold) values.
  if (a.tiered() || b.tiered()) {
    EmbeddingTablePtr ra, rb;
    if (a.tiered()) {
      MLFS_ASSIGN_OR_RETURN(ra, a.Materialize());
    }
    if (b.tiered()) {
      MLFS_ASSIGN_OR_RETURN(rb, b.Materialize());
    }
    return CheckEmbeddingDrift(ra ? *ra : a, rb ? *rb : b, k, max_keys,
                               thresholds);
  }
  EmbeddingDriftReport report;

  // Tabular-style signal 1: broken cells in the new version.
  for (float x : b.raw()) {
    if (!std::isfinite(x)) ++report.null_or_nan_cells;
  }

  // Tabular-style signal 2: PSI over vector norms (a scalar projection a
  // traditional FS might track).
  std::vector<double> norms_a, norms_b;
  norms_a.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    norms_a.push_back(L2Norm(a.row(i), a.dim()));
  }
  norms_b.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    norms_b.push_back(L2Norm(b.row(i), b.dim()));
  }
  if (norms_a.size() >= 10 && !norms_b.empty()) {
    MLFS_ASSIGN_OR_RETURN(DriftDetector detector,
                          DriftDetector::Fit(norms_a));
    MLFS_ASSIGN_OR_RETURN(DriftReport norm_report, detector.Check(norms_b));
    report.norm_psi = norm_report.psi;
  }

  // Embedding-native signals over common keys.
  if (a.dim() == b.dim()) {
    std::vector<double> centroid_a(a.dim(), 0.0), centroid_b(a.dim(), 0.0);
    double self_cos_total = 0.0;
    size_t common = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      int bi = b.IndexOf(a.key(i));
      if (bi < 0) continue;
      const float* va = a.row(i);
      const float* vb = b.row(static_cast<size_t>(bi));
      for (size_t j = 0; j < a.dim(); ++j) {
        centroid_a[j] += va[j];
        centroid_b[j] += vb[j];
      }
      self_cos_total += CosineSimilarity(va, vb, a.dim());
      ++common;
    }
    if (common > 0) {
      report.mean_self_cosine = self_cos_total / static_cast<double>(common);
      double dot = 0, na = 0, nb = 0;
      for (size_t j = 0; j < a.dim(); ++j) {
        dot += centroid_a[j] * centroid_b[j];
        na += centroid_a[j] * centroid_a[j];
        nb += centroid_b[j] * centroid_b[j];
      }
      double denom = std::sqrt(na) * std::sqrt(nb);
      report.centroid_cosine = denom > 0 ? dot / denom : 0.0;
    }
  }

  auto stability = NeighborStability(a, b, k, max_keys);
  if (stability.ok()) {
    report.mean_neighbor_churn = 1.0 - stability->mean_overlap;
  }

  report.drifted =
      report.null_or_nan_cells > 0 ||
      report.mean_neighbor_churn > thresholds.neighbor_churn_above ||
      report.mean_self_cosine < thresholds.self_cosine_below ||
      report.norm_psi > thresholds.norm_psi_above;
  return report;
}

}  // namespace mlfs
