#ifndef MLFS_EMBEDDING_ALIGN_H_
#define MLFS_EMBEDDING_ALIGN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_table.h"

namespace mlfs {

/// Embedding-version alignment (orthogonal Procrustes).
///
/// Two independent training runs of the same embedding produce private
/// coordinate systems; a model trained against version A cannot consume
/// version B's vectors (paper §4: "the dot product of the embedding with
/// model parameters can lose meaning"). Because the two runs encode the
/// same relational structure, they differ (to first order) by an
/// orthogonal transform — solving min_R ||B R - A||_F over rotations R
/// maps B into A's coordinates, letting stale consumers survive a rollout
/// until they retrain. This addresses the paper's §4 open question of how
/// to propagate an embedding update/patch downstream.

struct AlignmentResult {
  EmbeddingTablePtr aligned;
  /// Mean per-key cosine between the aligned source and the reference
  /// over the anchor keys (1.0 = perfect alignment).
  double anchor_cosine = 0.0;
  size_t anchors_used = 0;
};

/// Rotates `source` into `reference`'s coordinate system using their
/// common keys as anchors (or `anchor_keys` if non-empty). Both tables
/// must share the dimension and at least `dim` anchors. The result is an
/// unregistered table with parent = source's versioned name.
StatusOr<AlignmentResult> AlignToReference(
    const EmbeddingTable& source, const EmbeddingTable& reference,
    const std::vector<std::string>& anchor_keys = {});

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_ALIGN_H_
