#ifndef MLFS_EMBEDDING_EMBEDDING_TABLE_H_
#define MLFS_EMBEDDING_EMBEDDING_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ref.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "ml/sgns.h"

namespace mlfs {

class EmbeddingTier;
struct EmbeddingTierOptions;
struct PackedCodes;

/// Provenance and identity of one embedding table version.
struct EmbeddingTableMetadata {
  /// Logical embedding name, e.g. "entity_emb".
  std::string name;
  /// Assigned by the EmbeddingStore on registration (0 = unregistered).
  int version = 0;
  Timestamp created_at = 0;
  /// Free-form provenance: what corpus/config produced these vectors.
  std::string training_source;
  /// "name@vK" of the table this one was derived from (compression,
  /// patching, retraining); empty for from-scratch tables.
  std::string parent;
  /// True when this table is a slice patch of `parent` (PatchEmbedding);
  /// the lineage graph records the provenance as `patched_into` instead of
  /// the generic `derived_from`.
  bool patched = false;
  std::string notes;

  std::string VersionedName() const {
    return FormatVersionedRef(name, version);
  }
};

/// An immutable snapshot of entity embeddings: fixed dimension, one vector
/// per entity key. This is the first-class "embedding feature" artifact the
/// paper argues feature stores must manage (§3.1.2) — versioned, with
/// provenance, and queryable like any other feature.
///
/// A table is either *resident* (all vectors in one float32 buffer, the
/// historical form) or *tiered* (vectors live in an EmbeddingTier: packed
/// quantized codes in a memory-mapped file plus a budgeted hot block cache
/// of exact float rows — the MLKV-style out-of-core form for working sets
/// that outgrow RAM, paper §3.1.2). Get/MultiGet/GetVector behave
/// identically in both forms except that a tiered table serves
/// *dequantized* values for rows whose block was ever demoted; pointers
/// returned by a tiered table stay valid until the calling thread's next
/// Get/MultiGet on any tiered table (copy them before the next lookup —
/// every in-tree caller copies immediately). row()/raw() remain
/// resident-only; tier-agnostic code uses CopyRow().
class EmbeddingTable {
 public:
  /// `keys` and rows of `vectors` (n * dim, row-major) correspond 1:1.
  /// Keys must be unique and non-empty; dim must be positive.
  static StatusOr<std::shared_ptr<const EmbeddingTable>> Create(
      EmbeddingTableMetadata metadata, std::vector<std::string> keys,
      std::vector<float> vectors, size_t dim);

  /// Builds a tiered copy of `source` (same metadata and keys): packs its
  /// vectors into a checksummed mmap'd tier file and keeps only the
  /// leading blocks that fit `options.memory_budget_bytes` hot. Fails if
  /// `source` is empty or the spill is fault-injected.
  static StatusOr<std::shared_ptr<const EmbeddingTable>> CreateTiered(
      const EmbeddingTable& source, const EmbeddingTierOptions& options);

  /// Rebuilds a tiered table from checkpoint parts: the packed codes and
  /// the exact hot blocks captured at snapshot time.
  static StatusOr<std::shared_ptr<const EmbeddingTable>> RestoreTiered(
      EmbeddingTableMetadata metadata, std::vector<std::string> keys,
      PackedCodes packed,
      std::vector<std::pair<uint32_t, std::vector<float>>> hot_blocks,
      const EmbeddingTierOptions& options);

  /// Wraps SGNS output, naming row i with `keys[i]`.
  static StatusOr<std::shared_ptr<const EmbeddingTable>> FromTokenEmbeddings(
      EmbeddingTableMetadata metadata, const TokenEmbeddings& embeddings,
      std::vector<std::string> keys);

  const EmbeddingTableMetadata& metadata() const { return metadata_; }
  size_t size() const { return keys_.size(); }
  size_t dim() const { return dim_; }

  /// True when vectors live in an EmbeddingTier instead of the resident
  /// buffer.
  bool tiered() const { return tier_ != nullptr; }
  /// The backing tier (null for resident tables) — stats, scans, and
  /// snapshotting.
  const EmbeddingTier* tier() const { return tier_.get(); }

  /// Pointer to the vector of `key`, or NotFound. Tiered: see the pointer
  /// lifetime contract in the class comment; may also return an injected
  /// "embedding.tier.load" fault for cold rows.
  StatusOr<const float*> Get(const std::string& key) const;

  /// Batched lookup: entry i points at `keys[i]`'s vector, or is null for
  /// a missing key. One output allocation for the whole batch — the unit
  /// embedding-feature hydration and batched ANN queries are built on.
  /// Tiered: one access per touched block (batch-aware promotion), and a
  /// fault-injected cold load degrades its rows to nulls.
  std::vector<const float*> MultiGet(
      const std::vector<std::string>& keys) const;

  /// Vector copy (convenience for Value::Embedding interop).
  StatusOr<std::vector<float>> GetVector(const std::string& key) const;

  /// Copies row i (dim floats) into `out`; works for both forms and never
  /// promotes — the tier-agnostic row accessor.
  void CopyRow(size_t i, float* out) const;

  /// Resident copy of this table (tiered rows at their served values);
  /// for consumers that genuinely need the whole matrix in RAM (HNSW
  /// builds, drift checks).
  StatusOr<std::shared_ptr<const EmbeddingTable>> Materialize() const;

  const float* row(size_t i) const {
    MLFS_DCHECK(!tiered());
    MLFS_DCHECK(i < size());
    return vectors_.data() + i * dim_;
  }
  const std::string& key(size_t i) const {
    MLFS_DCHECK(i < size());
    return keys_[i];
  }
  /// Row index of `key`, or -1.
  int IndexOf(const std::string& key) const;

  const std::vector<std::string>& keys() const { return keys_; }
  const std::vector<float>& raw() const {
    MLFS_DCHECK(!tiered());
    return vectors_;
  }

  /// Derives a new (unregistered) table with the same keys and replaced
  /// vectors — used by compression and patching.
  StatusOr<std::shared_ptr<const EmbeddingTable>> WithVectors(
      EmbeddingTableMetadata metadata, std::vector<float> vectors,
      size_t dim) const;

 private:
  EmbeddingTable(EmbeddingTableMetadata metadata,
                 std::vector<std::string> keys, std::vector<float> vectors,
                 size_t dim);
  EmbeddingTable(EmbeddingTableMetadata metadata,
                 std::vector<std::string> keys,
                 std::shared_ptr<const EmbeddingTier> tier);

  EmbeddingTableMetadata metadata_;
  std::vector<std::string> keys_;
  std::vector<float> vectors_;  // Empty when tiered.
  size_t dim_;
  std::shared_ptr<const EmbeddingTier> tier_;  // Null when resident.
  std::unordered_map<std::string, size_t> index_;
};

using EmbeddingTablePtr = std::shared_ptr<const EmbeddingTable>;

/// `table` itself when already resident, else table->Materialize().
StatusOr<EmbeddingTablePtr> MaterializeResident(EmbeddingTablePtr table);

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_EMBEDDING_TABLE_H_
