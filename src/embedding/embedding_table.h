#ifndef MLFS_EMBEDDING_EMBEDDING_TABLE_H_
#define MLFS_EMBEDDING_EMBEDDING_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ref.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "ml/sgns.h"

namespace mlfs {

/// Provenance and identity of one embedding table version.
struct EmbeddingTableMetadata {
  /// Logical embedding name, e.g. "entity_emb".
  std::string name;
  /// Assigned by the EmbeddingStore on registration (0 = unregistered).
  int version = 0;
  Timestamp created_at = 0;
  /// Free-form provenance: what corpus/config produced these vectors.
  std::string training_source;
  /// "name@vK" of the table this one was derived from (compression,
  /// patching, retraining); empty for from-scratch tables.
  std::string parent;
  /// True when this table is a slice patch of `parent` (PatchEmbedding);
  /// the lineage graph records the provenance as `patched_into` instead of
  /// the generic `derived_from`.
  bool patched = false;
  std::string notes;

  std::string VersionedName() const {
    return FormatVersionedRef(name, version);
  }
};

/// An immutable snapshot of entity embeddings: fixed dimension, one vector
/// per entity key. This is the first-class "embedding feature" artifact the
/// paper argues feature stores must manage (§3.1.2) — versioned, with
/// provenance, and queryable like any other feature.
class EmbeddingTable {
 public:
  /// `keys` and rows of `vectors` (n * dim, row-major) correspond 1:1.
  /// Keys must be unique and non-empty; dim must be positive.
  static StatusOr<std::shared_ptr<const EmbeddingTable>> Create(
      EmbeddingTableMetadata metadata, std::vector<std::string> keys,
      std::vector<float> vectors, size_t dim);

  /// Wraps SGNS output, naming row i with `keys[i]`.
  static StatusOr<std::shared_ptr<const EmbeddingTable>> FromTokenEmbeddings(
      EmbeddingTableMetadata metadata, const TokenEmbeddings& embeddings,
      std::vector<std::string> keys);

  const EmbeddingTableMetadata& metadata() const { return metadata_; }
  size_t size() const { return keys_.size(); }
  size_t dim() const { return dim_; }

  /// Pointer to the vector of `key`, or NotFound.
  StatusOr<const float*> Get(const std::string& key) const;

  /// Batched lookup: entry i points at `keys[i]`'s vector, or is null for
  /// a missing key. One output allocation for the whole batch — the unit
  /// embedding-feature hydration and batched ANN queries are built on.
  std::vector<const float*> MultiGet(
      const std::vector<std::string>& keys) const;

  /// Vector copy (convenience for Value::Embedding interop).
  StatusOr<std::vector<float>> GetVector(const std::string& key) const;

  const float* row(size_t i) const {
    MLFS_DCHECK(i < size());
    return vectors_.data() + i * dim_;
  }
  const std::string& key(size_t i) const {
    MLFS_DCHECK(i < size());
    return keys_[i];
  }
  /// Row index of `key`, or -1.
  int IndexOf(const std::string& key) const;

  const std::vector<std::string>& keys() const { return keys_; }
  const std::vector<float>& raw() const { return vectors_; }

  /// Derives a new (unregistered) table with the same keys and replaced
  /// vectors — used by compression and patching.
  StatusOr<std::shared_ptr<const EmbeddingTable>> WithVectors(
      EmbeddingTableMetadata metadata, std::vector<float> vectors,
      size_t dim) const;

 private:
  EmbeddingTable(EmbeddingTableMetadata metadata,
                 std::vector<std::string> keys, std::vector<float> vectors,
                 size_t dim);

  EmbeddingTableMetadata metadata_;
  std::vector<std::string> keys_;
  std::vector<float> vectors_;
  size_t dim_;
  std::unordered_map<std::string, size_t> index_;
};

using EmbeddingTablePtr = std::shared_ptr<const EmbeddingTable>;

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_EMBEDDING_TABLE_H_
