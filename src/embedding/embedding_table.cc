#include "embedding/embedding_table.h"

#include <cstring>

#include "embedding/tier.h"

namespace mlfs {
namespace {

Status ValidateKeys(const std::vector<std::string>& keys) {
  std::unordered_map<std::string, int> seen;
  seen.reserve(keys.size());
  for (const auto& key : keys) {
    if (key.empty()) {
      return Status::InvalidArgument("empty embedding key");
    }
    if (!seen.emplace(key, 1).second) {
      return Status::InvalidArgument("duplicate embedding key '" + key + "'");
    }
  }
  return Status::OK();
}

}  // namespace

EmbeddingTable::EmbeddingTable(EmbeddingTableMetadata metadata,
                               std::vector<std::string> keys,
                               std::vector<float> vectors, size_t dim)
    : metadata_(std::move(metadata)),
      keys_(std::move(keys)),
      vectors_(std::move(vectors)),
      dim_(dim) {
  index_.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) index_.emplace(keys_[i], i);
}

EmbeddingTable::EmbeddingTable(EmbeddingTableMetadata metadata,
                               std::vector<std::string> keys,
                               std::shared_ptr<const EmbeddingTier> tier)
    : metadata_(std::move(metadata)),
      keys_(std::move(keys)),
      dim_(tier->dim()),
      tier_(std::move(tier)) {
  index_.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) index_.emplace(keys_[i], i);
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::Create(
    EmbeddingTableMetadata metadata, std::vector<std::string> keys,
    std::vector<float> vectors, size_t dim) {
  if (metadata.name.empty()) {
    return Status::InvalidArgument("embedding table needs a name");
  }
  if (dim == 0) {
    return Status::InvalidArgument("embedding dim must be positive");
  }
  // Divide instead of multiplying: keys.size() * dim can wrap size_t for
  // hostile dims and accept a mis-sized buffer.
  const bool size_ok = keys.empty()
                           ? vectors.empty()
                           : vectors.size() % dim == 0 &&
                                 vectors.size() / dim == keys.size();
  if (!size_ok) {
    return Status::InvalidArgument(
        "vector buffer size " + std::to_string(vectors.size()) +
        " does not hold " + std::to_string(keys.size()) + " rows of dim " +
        std::to_string(dim));
  }
  MLFS_RETURN_IF_ERROR(ValidateKeys(keys));
  return EmbeddingTablePtr(new EmbeddingTable(
      std::move(metadata), std::move(keys), std::move(vectors), dim));
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::CreateTiered(
    const EmbeddingTable& source, const EmbeddingTierOptions& options) {
  if (source.size() == 0) {
    return Status::InvalidArgument("cannot tier an empty embedding table");
  }
  StatusOr<std::unique_ptr<EmbeddingTier>> tier = [&] {
    if (source.tiered()) {
      std::vector<float> data(source.size() * source.dim());
      for (size_t i = 0; i < source.size(); ++i) {
        source.CopyRow(i, data.data() + i * source.dim());
      }
      return EmbeddingTier::Build(data.data(), source.size(), source.dim(),
                                  options);
    }
    return EmbeddingTier::Build(source.raw().data(), source.size(),
                                source.dim(), options);
  }();
  MLFS_RETURN_IF_ERROR(tier.status());
  return EmbeddingTablePtr(new EmbeddingTable(
      source.metadata(), source.keys(),
      std::shared_ptr<const EmbeddingTier>(std::move(tier).value())));
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::RestoreTiered(
    EmbeddingTableMetadata metadata, std::vector<std::string> keys,
    PackedCodes packed,
    std::vector<std::pair<uint32_t, std::vector<float>>> hot_blocks,
    const EmbeddingTierOptions& options) {
  if (metadata.name.empty()) {
    return Status::InvalidArgument("embedding table needs a name");
  }
  if (keys.size() != packed.n) {
    return Status::Corruption("tiered snapshot: key count != packed rows");
  }
  MLFS_RETURN_IF_ERROR(ValidateKeys(keys));
  MLFS_ASSIGN_OR_RETURN(
      std::unique_ptr<EmbeddingTier> tier,
      EmbeddingTier::Restore(std::move(packed), std::move(hot_blocks),
                             options));
  return EmbeddingTablePtr(new EmbeddingTable(
      std::move(metadata), std::move(keys),
      std::shared_ptr<const EmbeddingTier>(std::move(tier))));
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::FromTokenEmbeddings(
    EmbeddingTableMetadata metadata, const TokenEmbeddings& embeddings,
    std::vector<std::string> keys) {
  if (keys.size() != embeddings.vocab_size) {
    return Status::InvalidArgument("key count != vocab size");
  }
  return Create(std::move(metadata), std::move(keys), embeddings.vectors,
                embeddings.dim);
}

StatusOr<const float*> EmbeddingTable::Get(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("no embedding for key '" + key + "'");
  }
  if (tier_ != nullptr) return tier_->GetRow(it->second);
  return row(it->second);
}

std::vector<const float*> EmbeddingTable::MultiGet(
    const std::vector<std::string>& keys) const {
  if (tier_ != nullptr) {
    std::vector<int64_t> rows(keys.size(), -1);
    for (size_t i = 0; i < keys.size(); ++i) {
      auto it = index_.find(keys[i]);
      if (it != index_.end()) rows[i] = static_cast<int64_t>(it->second);
    }
    std::vector<const float*> out;
    tier_->MultiGetRows(rows, &out);
    return out;
  }
  std::vector<const float*> out(keys.size(), nullptr);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto it = index_.find(keys[i]);
    if (it != index_.end()) out[i] = row(it->second);
  }
  return out;
}

StatusOr<std::vector<float>> EmbeddingTable::GetVector(
    const std::string& key) const {
  MLFS_ASSIGN_OR_RETURN(const float* r, Get(key));
  return std::vector<float>(r, r + dim_);
}

void EmbeddingTable::CopyRow(size_t i, float* out) const {
  MLFS_DCHECK(i < size());
  if (tier_ != nullptr) {
    tier_->CopyRow(i, out);
  } else {
    std::memcpy(out, vectors_.data() + i * dim_, dim_ * sizeof(float));
  }
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::Materialize() const {
  std::vector<float> data(size() * dim_);
  for (size_t i = 0; i < size(); ++i) CopyRow(i, data.data() + i * dim_);
  return Create(metadata_, keys_, std::move(data), dim_);
}

int EmbeddingTable::IndexOf(const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::WithVectors(
    EmbeddingTableMetadata metadata, std::vector<float> vectors,
    size_t dim) const {
  return Create(std::move(metadata), keys_, std::move(vectors), dim);
}

StatusOr<EmbeddingTablePtr> MaterializeResident(EmbeddingTablePtr table) {
  if (table == nullptr || !table->tiered()) return table;
  return table->Materialize();
}

}  // namespace mlfs
