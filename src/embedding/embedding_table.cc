#include "embedding/embedding_table.h"

namespace mlfs {

EmbeddingTable::EmbeddingTable(EmbeddingTableMetadata metadata,
                               std::vector<std::string> keys,
                               std::vector<float> vectors, size_t dim)
    : metadata_(std::move(metadata)),
      keys_(std::move(keys)),
      vectors_(std::move(vectors)),
      dim_(dim) {
  index_.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) index_.emplace(keys_[i], i);
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::Create(
    EmbeddingTableMetadata metadata, std::vector<std::string> keys,
    std::vector<float> vectors, size_t dim) {
  if (metadata.name.empty()) {
    return Status::InvalidArgument("embedding table needs a name");
  }
  if (dim == 0) {
    return Status::InvalidArgument("embedding dim must be positive");
  }
  if (vectors.size() != keys.size() * dim) {
    return Status::InvalidArgument(
        "vector buffer size " + std::to_string(vectors.size()) +
        " != keys * dim = " + std::to_string(keys.size() * dim));
  }
  std::unordered_map<std::string, int> seen;
  for (const auto& key : keys) {
    if (key.empty()) {
      return Status::InvalidArgument("empty embedding key");
    }
    if (!seen.emplace(key, 1).second) {
      return Status::InvalidArgument("duplicate embedding key '" + key + "'");
    }
  }
  return EmbeddingTablePtr(new EmbeddingTable(
      std::move(metadata), std::move(keys), std::move(vectors), dim));
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::FromTokenEmbeddings(
    EmbeddingTableMetadata metadata, const TokenEmbeddings& embeddings,
    std::vector<std::string> keys) {
  if (keys.size() != embeddings.vocab_size) {
    return Status::InvalidArgument("key count != vocab size");
  }
  return Create(std::move(metadata), std::move(keys), embeddings.vectors,
                embeddings.dim);
}

StatusOr<const float*> EmbeddingTable::Get(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("no embedding for key '" + key + "'");
  }
  return row(it->second);
}

std::vector<const float*> EmbeddingTable::MultiGet(
    const std::vector<std::string>& keys) const {
  std::vector<const float*> out(keys.size(), nullptr);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto it = index_.find(keys[i]);
    if (it != index_.end()) out[i] = row(it->second);
  }
  return out;
}

StatusOr<std::vector<float>> EmbeddingTable::GetVector(
    const std::string& key) const {
  MLFS_ASSIGN_OR_RETURN(const float* r, Get(key));
  return std::vector<float>(r, r + dim_);
}

int EmbeddingTable::IndexOf(const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

StatusOr<EmbeddingTablePtr> EmbeddingTable::WithVectors(
    EmbeddingTableMetadata metadata, std::vector<float> vectors,
    size_t dim) const {
  return Create(std::move(metadata), keys_, std::move(vectors), dim);
}

}  // namespace mlfs
