#include "embedding/align.h"

#include "embedding/distance.h"
#include "ml/matrix.h"

namespace mlfs {

StatusOr<AlignmentResult> AlignToReference(
    const EmbeddingTable& source, const EmbeddingTable& reference,
    const std::vector<std::string>& anchor_keys) {
  if (source.dim() != reference.dim()) {
    return Status::InvalidArgument(
        "alignment needs equal dimensions, got " +
        std::to_string(source.dim()) + " vs " +
        std::to_string(reference.dim()));
  }
  // Procrustes wants stable whole-matrix access (and holds Get pointers
  // across further lookups, which the tiered pin contract forbids).
  if (source.tiered() || reference.tiered()) {
    EmbeddingTablePtr rs, rr;
    if (source.tiered()) {
      MLFS_ASSIGN_OR_RETURN(rs, source.Materialize());
    }
    if (reference.tiered()) {
      MLFS_ASSIGN_OR_RETURN(rr, reference.Materialize());
    }
    return AlignToReference(rs ? *rs : source, rr ? *rr : reference,
                            anchor_keys);
  }
  const size_t d = source.dim();

  std::vector<std::string> anchors = anchor_keys;
  if (anchors.empty()) {
    for (size_t i = 0; i < source.size(); ++i) {
      if (reference.IndexOf(source.key(i)) >= 0) {
        anchors.push_back(source.key(i));
      }
    }
  }
  if (anchors.size() < d) {
    return Status::InvalidArgument(
        "alignment needs at least dim=" + std::to_string(d) +
        " anchors, have " + std::to_string(anchors.size()));
  }

  Matrix x(anchors.size(), d);  // Source anchor vectors.
  Matrix y(anchors.size(), d);  // Reference anchor vectors.
  for (size_t a = 0; a < anchors.size(); ++a) {
    MLFS_ASSIGN_OR_RETURN(const float* sv, source.Get(anchors[a]));
    MLFS_ASSIGN_OR_RETURN(const float* rv, reference.Get(anchors[a]));
    for (size_t j = 0; j < d; ++j) {
      x.at(a, j) = sv[j];
      y.at(a, j) = rv[j];
    }
  }
  MLFS_ASSIGN_OR_RETURN(Matrix rotation, OrthogonalProcrustes(x, y));

  // Apply: every source vector v -> v R.
  std::vector<float> rotated(source.size() * d);
  for (size_t i = 0; i < source.size(); ++i) {
    const float* v = source.row(i);
    float* out = rotated.data() + i * d;
    for (size_t j = 0; j < d; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < d; ++k) sum += v[k] * rotation.at(k, j);
      out[j] = static_cast<float>(sum);
    }
  }

  EmbeddingTableMetadata metadata = source.metadata();
  metadata.parent = source.metadata().VersionedName();
  metadata.version = 0;
  metadata.notes = "Procrustes-aligned to " +
                   reference.metadata().VersionedName() + " on " +
                   std::to_string(anchors.size()) + " anchors";
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr aligned,
                        source.WithVectors(std::move(metadata),
                                           std::move(rotated), d));

  AlignmentResult result;
  result.anchors_used = anchors.size();
  double cosine_total = 0.0;
  for (const std::string& anchor : anchors) {
    const float* av = aligned->Get(anchor).value();
    const float* rv = reference.Get(anchor).value();
    cosine_total += CosineSimilarity(av, rv, d);
  }
  result.anchor_cosine =
      cosine_total / static_cast<double>(anchors.size());
  result.aligned = std::move(aligned);
  return result;
}

}  // namespace mlfs
