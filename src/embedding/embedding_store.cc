#include "embedding/embedding_store.h"

#include <cstdlib>

#include "common/serde.h"
#include "common/string_util.h"

namespace mlfs {

StatusOr<int> EmbeddingStore::Register(const EmbeddingTablePtr& table,
                                       Timestamp registered_at) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register null table");
  }
  const std::string& name = table->metadata().name;
  std::lock_guard lock(mu_);
  auto& versions = tables_[name];
  int version = versions.empty()
                    ? 1
                    : versions.back()->metadata().version + 1;
  // Tables are immutable: clone with stamped metadata.
  EmbeddingTableMetadata metadata = table->metadata();
  metadata.version = version;
  if (metadata.created_at == 0) metadata.created_at = registered_at;
  if (!versions.empty() && versions.back()->dim() != table->dim()) {
    // Allowed (e.g. re-train at a new dim) but it must be deliberate;
    // record it in the notes so lineage explains the change.
    const EmbeddingTablePtr& prev = versions.back();
    std::string note = "dim changed " + std::to_string(prev->size()) + "x" +
                       std::to_string(prev->dim()) + " -> " +
                       std::to_string(table->size()) + "x" +
                       std::to_string(table->dim());
    if (!metadata.notes.empty()) metadata.notes += "; ";
    metadata.notes += note;
  }
  MLFS_ASSIGN_OR_RETURN(
      EmbeddingTablePtr stamped,
      EmbeddingTable::Create(std::move(metadata), table->keys(),
                             table->raw(), table->dim()));
  versions.push_back(std::move(stamped));
  return version;
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::GetLatest(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end() || it->second.empty()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  return it->second.back();
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::GetVersion(
    const std::string& name, int version) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  for (const auto& table : it->second) {
    if (table->metadata().version == version) return table;
  }
  return Status::NotFound("embedding '" + name + "' has no version " +
                          std::to_string(version));
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::Resolve(
    const std::string& reference) const {
  size_t at = reference.rfind("@v");
  if (at == std::string::npos) return GetLatest(reference);
  std::string name = reference.substr(0, at);
  std::string version_text = reference.substr(at + 2);
  char* end = nullptr;
  long version = std::strtol(version_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || version_text.empty() || version <= 0 ||
      name.empty()) {
    // Not a version suffix after all (e.g. a bare name like "user@vip"):
    // treat the whole reference as a name rather than rejecting it.
    return GetLatest(reference);
  }
  return GetVersion(name, static_cast<int>(version));
}

std::vector<std::string> EmbeddingStore::Names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, versions] : tables_) out.push_back(name);
  return out;
}

StatusOr<std::vector<EmbeddingTablePtr>> EmbeddingStore::Versions(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  return it->second;
}

StatusOr<std::vector<std::string>> EmbeddingStore::Lineage(
    const std::string& reference) const {
  std::vector<std::string> chain;
  std::string current = reference;
  for (int depth = 0; depth < 64; ++depth) {
    MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr table, Resolve(current));
    chain.push_back(table->metadata().VersionedName());
    if (table->metadata().parent.empty()) return chain;
    current = table->metadata().parent;
  }
  return Status::Internal("lineage chain too deep (cycle?)");
}

size_t EmbeddingStore::num_tables() const {
  std::lock_guard lock(mu_);
  return tables_.size();
}

namespace {
constexpr uint32_t kEmbeddingSnapshotMagic = 0x4d4c4542;  // "MLEB"

void PutMetadata(Encoder* enc, const EmbeddingTableMetadata& metadata) {
  enc->PutString(metadata.name);
  enc->PutVarint64(static_cast<uint64_t>(metadata.version));
  enc->PutFixed64(static_cast<uint64_t>(metadata.created_at));
  enc->PutString(metadata.training_source);
  enc->PutString(metadata.parent);
  enc->PutString(metadata.notes);
}

StatusOr<EmbeddingTableMetadata> GetMetadata(Decoder* dec) {
  EmbeddingTableMetadata metadata;
  MLFS_ASSIGN_OR_RETURN(metadata.name, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint64_t version, dec->GetVarint64());
  metadata.version = static_cast<int>(version);
  MLFS_ASSIGN_OR_RETURN(uint64_t created_at, dec->GetFixed64());
  metadata.created_at = static_cast<Timestamp>(created_at);
  MLFS_ASSIGN_OR_RETURN(metadata.training_source, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(metadata.parent, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(metadata.notes, dec->GetString());
  return metadata;
}

}  // namespace

std::string EmbeddingStore::Snapshot() const {
  std::lock_guard lock(mu_);
  Encoder enc;
  enc.PutFixed32(kEmbeddingSnapshotMagic);
  uint64_t total = 0;
  for (const auto& [name, versions] : tables_) total += versions.size();
  enc.PutVarint64(total);
  for (const auto& [name, versions] : tables_) {
    for (const auto& table : versions) {
      PutMetadata(&enc, table->metadata());
      enc.PutVarint64(table->size());
      enc.PutVarint64(table->dim());
      for (const auto& key : table->keys()) enc.PutString(key);
      for (float x : table->raw()) enc.PutFloat(x);
    }
  }
  return enc.Release();
}

Status EmbeddingStore::Restore(std::string_view snapshot) {
  {
    std::lock_guard lock(mu_);
    if (!tables_.empty()) {
      return Status::FailedPrecondition("Restore requires an empty store");
    }
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kEmbeddingSnapshotMagic) {
    return Status::Corruption("bad embedding snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t total, dec.GetVarint64());
  std::lock_guard lock(mu_);
  for (uint64_t t = 0; t < total; ++t) {
    MLFS_ASSIGN_OR_RETURN(EmbeddingTableMetadata metadata, GetMetadata(&dec));
    MLFS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
    MLFS_ASSIGN_OR_RETURN(uint64_t dim, dec.GetVarint64());
    if (dim == 0 || dim > (1ULL << 24) || n > (1ULL << 32)) {
      return Status::Corruption("implausible embedding shape");
    }
    std::vector<std::string> keys;
    keys.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      MLFS_ASSIGN_OR_RETURN(std::string key, dec.GetString());
      keys.push_back(std::move(key));
    }
    std::vector<float> vectors(n * dim);
    for (auto& x : vectors) {
      MLFS_ASSIGN_OR_RETURN(x, dec.GetFloat());
    }
    MLFS_ASSIGN_OR_RETURN(
        EmbeddingTablePtr table,
        EmbeddingTable::Create(std::move(metadata), std::move(keys),
                               std::move(vectors), dim));
    auto& versions = tables_[table->metadata().name];
    if (!versions.empty() &&
        versions.back()->metadata().version >= table->metadata().version) {
      return Status::Corruption("snapshot versions out of order");
    }
    versions.push_back(std::move(table));
  }
  return Status::OK();
}

}  // namespace mlfs
