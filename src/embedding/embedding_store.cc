#include "embedding/embedding_store.h"

#include "common/serde.h"
#include "common/string_util.h"

namespace mlfs {

EmbeddingStore::EmbeddingStore(LineageGraph* lineage) {
  if (lineage == nullptr) {
    owned_lineage_ = std::make_unique<LineageGraph>();
    lineage_ = owned_lineage_.get();
  } else {
    lineage_ = lineage;
  }
}

StatusOr<int> EmbeddingStore::Register(const EmbeddingTablePtr& table,
                                       Timestamp registered_at) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register null table");
  }
  const std::string& name = table->metadata().name;
  EmbeddingTableMetadata stamped_metadata;
  int version = 0;
  {
    std::lock_guard lock(mu_);
    auto& versions = tables_[name];
    version = versions.empty() ? 1 : versions.back()->metadata().version + 1;
    // Tables are immutable: clone with stamped metadata.
    EmbeddingTableMetadata metadata = table->metadata();
    metadata.version = version;
    if (metadata.created_at == 0) metadata.created_at = registered_at;
    if (!versions.empty() && versions.back()->dim() != table->dim()) {
      // Allowed (e.g. re-train at a new dim) but it must be deliberate;
      // record it in the notes so lineage explains the change.
      const EmbeddingTablePtr& prev = versions.back();
      std::string note = "dim changed " + std::to_string(prev->size()) + "x" +
                         std::to_string(prev->dim()) + " -> " +
                         std::to_string(table->size()) + "x" +
                         std::to_string(table->dim());
      if (!metadata.notes.empty()) metadata.notes += "; ";
      metadata.notes += note;
    }
    // An unpinned parent reference resolves against the store as of now.
    if (!metadata.parent.empty()) {
      VersionedRef parent = ParseVersionedRef(metadata.parent);
      if (!parent.pinned()) {
        auto it = tables_.find(parent.name);
        if (it != tables_.end() && !it->second.empty()) {
          parent.version = it->second.back()->metadata().version;
        }
        metadata.parent = parent.ToString();
      }
    }
    MLFS_ASSIGN_OR_RETURN(
        EmbeddingTablePtr stamped,
        EmbeddingTable::Create(metadata, table->keys(), table->raw(),
                               table->dim()));
    versions.push_back(std::move(stamped));
    stamped_metadata = std::move(metadata);
  }
  // Lineage recording and staleness fan-out run outside mu_ so listeners
  // (alerting bridges) can call back into the store.
  RecordLineage(stamped_metadata, version - 1);
  if (version > 1) {
    (void)lineage_->MarkStale(
        EmbeddingArtifact(name, version - 1), StalenessReason::kSuperseded,
        registered_at, "superseded by " + stamped_metadata.VersionedName());
  }
  return version;
}

void EmbeddingStore::RecordLineage(const EmbeddingTableMetadata& metadata,
                                   int /*previous_version*/) {
  const ArtifactId self = EmbeddingArtifact(metadata.name, metadata.version);
  (void)lineage_->AddArtifact(self);
  if (!metadata.parent.empty()) {
    const VersionedRef parent = ParseVersionedRef(metadata.parent);
    const EdgeKind kind = metadata.patched ? EdgeKind::kPatchedInto
                                           : EdgeKind::kDerivedFrom;
    (void)lineage_->AddEdge(self, kind,
                            EmbeddingArtifact(parent.name, parent.version));
  }
  if (!metadata.training_source.empty()) {
    (void)lineage_->AddEdge(self, EdgeKind::kTrainedOn,
                            TableArtifact(metadata.training_source));
  }
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::GetLatest(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end() || it->second.empty()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  return it->second.back();
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::GetVersion(
    const std::string& name, int version) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  for (const auto& table : it->second) {
    if (table->metadata().version == version) return table;
  }
  return Status::NotFound("embedding '" + name + "' has no version " +
                          std::to_string(version));
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::Resolve(
    const std::string& reference) const {
  const VersionedRef ref = ParseVersionedRef(reference);
  // A reference that does not parse as "name@vK" (e.g. a bare name like
  // "user@vip") is treated as a whole name rather than rejected.
  if (!ref.pinned()) return GetLatest(reference);
  return GetVersion(ref.name, ref.version);
}

std::vector<std::string> EmbeddingStore::Names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, versions] : tables_) out.push_back(name);
  return out;
}

StatusOr<std::vector<EmbeddingTablePtr>> EmbeddingStore::Versions(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  return it->second;
}

StatusOr<std::vector<std::string>> EmbeddingStore::Lineage(
    const std::string& reference) const {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr table, Resolve(reference));
  // Walk ancestry edges in the shared graph — the only record of parent
  // chains (per-silo parent maps were removed with the graph refactor).
  std::vector<std::string> chain;
  ArtifactId current = EmbeddingArtifact(table->metadata().name,
                                         table->metadata().version);
  for (int depth = 0; depth < 64; ++depth) {
    chain.push_back(FormatVersionedRef(current.name, current.version));
    const ArtifactId* parent = nullptr;
    std::vector<LineageEdge> edges = lineage_->OutEdges(current);
    for (const LineageEdge& edge : edges) {
      if (edge.to.kind != ArtifactKind::kEmbedding) continue;
      if (edge.kind != EdgeKind::kDerivedFrom &&
          edge.kind != EdgeKind::kPatchedInto) {
        continue;
      }
      parent = &edge.to;
      break;
    }
    if (parent == nullptr) return chain;
    current = *parent;
  }
  return Status::Internal("lineage chain too deep (cycle?)");
}

Status EmbeddingStore::Deprecate(const std::string& name, Timestamp now) {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr latest, GetLatest(name));
  return lineage_
      ->MarkStale(
          EmbeddingArtifact(name, latest->metadata().version),
          StalenessReason::kDeprecated, now,
          latest->metadata().VersionedName() + " deprecated by operator")
      .status();
}

size_t EmbeddingStore::num_tables() const {
  std::lock_guard lock(mu_);
  return tables_.size();
}

namespace {
constexpr uint32_t kEmbeddingSnapshotMagic = 0x4d4c4542;  // "MLEB"

void PutMetadata(Encoder* enc, const EmbeddingTableMetadata& metadata) {
  enc->PutString(metadata.name);
  enc->PutVarint64(static_cast<uint64_t>(metadata.version));
  enc->PutFixed64(static_cast<uint64_t>(metadata.created_at));
  enc->PutString(metadata.training_source);
  enc->PutString(metadata.parent);
  enc->PutU8(metadata.patched ? 1 : 0);
  enc->PutString(metadata.notes);
}

StatusOr<EmbeddingTableMetadata> GetMetadata(Decoder* dec) {
  EmbeddingTableMetadata metadata;
  MLFS_ASSIGN_OR_RETURN(metadata.name, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint64_t version, dec->GetVarint64());
  metadata.version = static_cast<int>(version);
  MLFS_ASSIGN_OR_RETURN(uint64_t created_at, dec->GetFixed64());
  metadata.created_at = static_cast<Timestamp>(created_at);
  MLFS_ASSIGN_OR_RETURN(metadata.training_source, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(metadata.parent, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint8_t patched, dec->GetU8());
  metadata.patched = patched != 0;
  MLFS_ASSIGN_OR_RETURN(metadata.notes, dec->GetString());
  return metadata;
}

}  // namespace

std::string EmbeddingStore::Snapshot() const {
  std::lock_guard lock(mu_);
  Encoder enc;
  enc.PutFixed32(kEmbeddingSnapshotMagic);
  uint64_t total = 0;
  for (const auto& [name, versions] : tables_) total += versions.size();
  enc.PutVarint64(total);
  for (const auto& [name, versions] : tables_) {
    for (const auto& table : versions) {
      PutMetadata(&enc, table->metadata());
      enc.PutVarint64(table->size());
      enc.PutVarint64(table->dim());
      for (const auto& key : table->keys()) enc.PutString(key);
      for (float x : table->raw()) enc.PutFloat(x);
    }
  }
  return enc.Release();
}

Status EmbeddingStore::Restore(std::string_view snapshot) {
  {
    std::lock_guard lock(mu_);
    if (!tables_.empty()) {
      return Status::FailedPrecondition("Restore requires an empty store");
    }
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kEmbeddingSnapshotMagic) {
    return Status::Corruption("bad embedding snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t total, dec.GetVarint64());
  std::vector<EmbeddingTableMetadata> restored;
  {
    std::lock_guard lock(mu_);
    for (uint64_t t = 0; t < total; ++t) {
      MLFS_ASSIGN_OR_RETURN(EmbeddingTableMetadata metadata, GetMetadata(&dec));
      MLFS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
      MLFS_ASSIGN_OR_RETURN(uint64_t dim, dec.GetVarint64());
      if (dim == 0 || dim > (1ULL << 24) || n > (1ULL << 32)) {
        return Status::Corruption("implausible embedding shape");
      }
      std::vector<std::string> keys;
      keys.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        MLFS_ASSIGN_OR_RETURN(std::string key, dec.GetString());
        keys.push_back(std::move(key));
      }
      std::vector<float> vectors(n * dim);
      for (auto& x : vectors) {
        MLFS_ASSIGN_OR_RETURN(x, dec.GetFloat());
      }
      MLFS_ASSIGN_OR_RETURN(
          EmbeddingTablePtr table,
          EmbeddingTable::Create(std::move(metadata), std::move(keys),
                                 std::move(vectors), dim));
      auto& versions = tables_[table->metadata().name];
      if (!versions.empty() &&
          versions.back()->metadata().version >= table->metadata().version) {
        return Status::Corruption("snapshot versions out of order");
      }
      restored.push_back(table->metadata());
      versions.push_back(std::move(table));
    }
  }
  // Re-record graph structure (idempotent when the graph itself was also
  // restored from its snapshot); staleness events are the graph's state,
  // not re-emitted here.
  for (const EmbeddingTableMetadata& metadata : restored) {
    RecordLineage(metadata, metadata.version - 1);
  }
  return Status::OK();
}

}  // namespace mlfs
