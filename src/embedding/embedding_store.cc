#include "embedding/embedding_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/serde.h"
#include "common/string_util.h"
#include "embedding/compress.h"

namespace mlfs {
namespace {

std::string SanitizeFileStem(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "emb" : out;
}

std::string DefaultSpillDir() {
  std::error_code ec;
  std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  if (ec) tmp = ".";
  return (tmp / "mlfs_emb").string();
}

}  // namespace

EmbeddingStore::EmbeddingStore(LineageGraph* lineage,
                               EmbeddingTierPolicy tier_policy)
    : tier_policy_(std::move(tier_policy)) {
  if (lineage == nullptr) {
    owned_lineage_ = std::make_unique<LineageGraph>();
    lineage_ = owned_lineage_.get();
  } else {
    lineage_ = lineage;
  }
  spill_dir_ = tier_policy_.spill_dir.empty() ? DefaultSpillDir()
                                              : tier_policy_.spill_dir;
}

EmbeddingTierOptions EmbeddingStore::TierOptionsLocked(
    const EmbeddingTableMetadata& metadata, size_t hot_budget) const {
  EmbeddingTierOptions options;
  options.memory_budget_bytes = hot_budget;
  options.bits = tier_policy_.bits;
  options.block_rows = tier_policy_.block_rows;
  options.dir = spill_dir_;
  options.file_stem = SanitizeFileStem(metadata.name) + "_v" +
                      std::to_string(metadata.version);
  options.remove_file_on_destroy = true;
  options.readahead = tier_policy_.readahead;
  return options;
}

void EmbeddingStore::ApplyTierBudgetLocked(Timestamp /*now*/) {
  if (tier_policy_.memory_budget_bytes == 0) return;
  // Superseded versions go fully cold: history is for lineage walks and
  // occasional drift checks, not the serving hot path, so it keeps only
  // its packed codes (registration already emitted the staleness event).
  for (auto& [name, versions] : tables_) {
    for (size_t i = 0; i + 1 < versions.size(); ++i) {
      EmbeddingTablePtr& slot = versions[i];
      if (slot->size() == 0) continue;
      if (slot->tiered()) {
        if (slot->tier()->hot_limit_blocks() > 0) slot->tier()->SetHotLimit(0);
        continue;
      }
      EmbeddingTierOptions options = TierOptionsLocked(slot->metadata(), 0);
      if (tier_policy_.superseded_bits > 0) {
        // History tolerates coarser packing than the serving version: it
        // is read for audits and drift checks, not ANN quality.
        options.bits = tier_policy_.superseded_bits;
      }
      StatusOr<EmbeddingTablePtr> tiered =
          EmbeddingTable::CreateTiered(*slot, options);
      if (!tiered.ok()) {
        // Degrade, never drop: the version stays resident and the next
        // registration retries the spill.
        ++spill_errors_;
        continue;
      }
      slot = std::move(tiered).value();
    }
  }
  // Latest versions share the budget, names in ascending order: a table
  // that fits in the remainder stays resident (exact floats); one that
  // does not is tiered with the remainder as its hot arena.
  size_t remaining = tier_policy_.memory_budget_bytes;
  for (auto& [name, versions] : tables_) {
    if (versions.empty()) continue;
    EmbeddingTablePtr& slot = versions.back();
    if (slot->size() == 0) continue;
    const size_t row_bytes = slot->dim() * sizeof(float);
    if (slot->tiered()) {
      const size_t arena = slot->tier()->hot_limit_blocks() *
                           slot->tier()->block_rows() * row_bytes;
      remaining -= std::min(remaining, arena);
      continue;
    }
    const size_t cost = slot->size() * row_bytes;
    if (cost <= remaining) {
      remaining -= cost;
      continue;
    }
    StatusOr<EmbeddingTablePtr> tiered = EmbeddingTable::CreateTiered(
        *slot, TierOptionsLocked(slot->metadata(), remaining));
    if (!tiered.ok()) {
      ++spill_errors_;
      continue;
    }
    slot = std::move(tiered).value();
    const size_t arena = slot->tier()->hot_limit_blocks() *
                         slot->tier()->block_rows() * row_bytes;
    remaining -= std::min(remaining, arena);
  }
}

StatusOr<int> EmbeddingStore::Register(const EmbeddingTablePtr& table,
                                       Timestamp registered_at) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register null table");
  }
  const std::string& name = table->metadata().name;
  EmbeddingTableMetadata stamped_metadata;
  int version = 0;
  {
    std::lock_guard lock(mu_);
    auto& versions = tables_[name];
    version = versions.empty() ? 1 : versions.back()->metadata().version + 1;
    // Tables are immutable: clone with stamped metadata.
    EmbeddingTableMetadata metadata = table->metadata();
    metadata.version = version;
    if (metadata.created_at == 0) metadata.created_at = registered_at;
    if (!versions.empty() && versions.back()->dim() != table->dim()) {
      // Allowed (e.g. re-train at a new dim) but it must be deliberate;
      // record it in the notes so lineage explains the change.
      const EmbeddingTablePtr& prev = versions.back();
      std::string note = "dim changed " + std::to_string(prev->size()) + "x" +
                         std::to_string(prev->dim()) + " -> " +
                         std::to_string(table->size()) + "x" +
                         std::to_string(table->dim());
      if (!metadata.notes.empty()) metadata.notes += "; ";
      metadata.notes += note;
    }
    // An unpinned parent reference resolves against the store as of now.
    if (!metadata.parent.empty()) {
      VersionedRef parent = ParseVersionedRef(metadata.parent);
      if (!parent.pinned()) {
        auto it = tables_.find(parent.name);
        if (it != tables_.end() && !it->second.empty()) {
          parent.version = it->second.back()->metadata().version;
        }
        metadata.parent = parent.ToString();
      }
    }
    // A tiered input is cloned through its served values (the store's
    // copy re-tiers under its own policy below).
    std::vector<float> vectors;
    if (table->tiered()) {
      vectors.resize(table->size() * table->dim());
      for (size_t i = 0; i < table->size(); ++i) {
        table->CopyRow(i, vectors.data() + i * table->dim());
      }
    } else {
      vectors = table->raw();
    }
    MLFS_ASSIGN_OR_RETURN(
        EmbeddingTablePtr stamped,
        EmbeddingTable::Create(metadata, table->keys(), std::move(vectors),
                               table->dim()));
    versions.push_back(std::move(stamped));
    stamped_metadata = std::move(metadata);
    ApplyTierBudgetLocked(registered_at);
  }
  // Lineage recording and staleness fan-out run outside mu_ so listeners
  // (alerting bridges) can call back into the store.
  RecordLineage(stamped_metadata, version - 1);
  if (version > 1) {
    (void)lineage_->MarkStale(
        EmbeddingArtifact(name, version - 1), StalenessReason::kSuperseded,
        registered_at, "superseded by " + stamped_metadata.VersionedName());
  }
  return version;
}

void EmbeddingStore::RecordLineage(const EmbeddingTableMetadata& metadata,
                                   int /*previous_version*/) {
  const ArtifactId self = EmbeddingArtifact(metadata.name, metadata.version);
  (void)lineage_->AddArtifact(self);
  if (!metadata.parent.empty()) {
    const VersionedRef parent = ParseVersionedRef(metadata.parent);
    const EdgeKind kind = metadata.patched ? EdgeKind::kPatchedInto
                                           : EdgeKind::kDerivedFrom;
    (void)lineage_->AddEdge(self, kind,
                            EmbeddingArtifact(parent.name, parent.version));
  }
  if (!metadata.training_source.empty()) {
    (void)lineage_->AddEdge(self, EdgeKind::kTrainedOn,
                            TableArtifact(metadata.training_source));
  }
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::GetLatest(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end() || it->second.empty()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  return it->second.back();
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::GetVersion(
    const std::string& name, int version) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  for (const auto& table : it->second) {
    if (table->metadata().version == version) return table;
  }
  return Status::NotFound("embedding '" + name + "' has no version " +
                          std::to_string(version));
}

StatusOr<EmbeddingTablePtr> EmbeddingStore::Resolve(
    const std::string& reference) const {
  const VersionedRef ref = ParseVersionedRef(reference);
  // A reference that does not parse as "name@vK" (e.g. a bare name like
  // "user@vip") is treated as a whole name rather than rejected.
  if (!ref.pinned()) return GetLatest(reference);
  return GetVersion(ref.name, ref.version);
}

std::vector<std::string> EmbeddingStore::Names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, versions] : tables_) out.push_back(name);
  return out;
}

StatusOr<std::vector<EmbeddingTablePtr>> EmbeddingStore::Versions(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no embedding table named '" + name + "'");
  }
  return it->second;
}

StatusOr<std::vector<std::string>> EmbeddingStore::Lineage(
    const std::string& reference) const {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr table, Resolve(reference));
  // Walk ancestry edges in the shared graph — the only record of parent
  // chains (per-silo parent maps were removed with the graph refactor).
  std::vector<std::string> chain;
  ArtifactId current = EmbeddingArtifact(table->metadata().name,
                                         table->metadata().version);
  for (int depth = 0; depth < 64; ++depth) {
    chain.push_back(FormatVersionedRef(current.name, current.version));
    const ArtifactId* parent = nullptr;
    std::vector<LineageEdge> edges = lineage_->OutEdges(current);
    for (const LineageEdge& edge : edges) {
      if (edge.to.kind != ArtifactKind::kEmbedding) continue;
      if (edge.kind != EdgeKind::kDerivedFrom &&
          edge.kind != EdgeKind::kPatchedInto) {
        continue;
      }
      parent = &edge.to;
      break;
    }
    if (parent == nullptr) return chain;
    current = *parent;
  }
  return Status::Internal("lineage chain too deep (cycle?)");
}

Status EmbeddingStore::Deprecate(const std::string& name, Timestamp now) {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr latest, GetLatest(name));
  return lineage_
      ->MarkStale(
          EmbeddingArtifact(name, latest->metadata().version),
          StalenessReason::kDeprecated, now,
          latest->metadata().VersionedName() + " deprecated by operator")
      .status();
}

size_t EmbeddingStore::num_tables() const {
  std::lock_guard lock(mu_);
  return tables_.size();
}

EmbeddingStoreTierStats EmbeddingStore::TierStats() const {
  std::lock_guard lock(mu_);
  EmbeddingStoreTierStats out;
  out.spill_errors = spill_errors_;
  out.restore_fallbacks = restore_fallbacks_;
  for (const auto& [name, versions] : tables_) {
    for (const auto& table : versions) {
      if (!table->tiered()) {
        ++out.resident_tables;
        continue;
      }
      ++out.tiered_tables;
      const EmbeddingTierStats s = table->tier()->stats();
      out.tier.hot_hits += s.hot_hits;
      out.tier.cold_misses += s.cold_misses;
      out.tier.promotions += s.promotions;
      out.tier.demotions += s.demotions;
      out.tier.scans += s.scans;
      out.tier.scan_cold_blocks += s.scan_cold_blocks;
      out.tier.load_faults += s.load_faults;
      out.tier.hot_blocks += s.hot_blocks;
      out.tier.total_blocks += s.total_blocks;
      out.tier.hot_limit_blocks += s.hot_limit_blocks;
      out.tier.resident_bytes += s.resident_bytes;
      out.tier.packed_bytes += s.packed_bytes;
      out.tier.readahead.issued += s.readahead.issued;
      out.tier.readahead.completed += s.readahead.completed;
      out.tier.readahead.hits += s.readahead.hits;
      out.tier.readahead.misses += s.readahead.misses;
      out.tier.readahead.wasted += s.readahead.wasted;
      out.tier.readahead.dropped += s.readahead.dropped;
      out.tier.readahead.deduped += s.readahead.deduped;
      out.tier.readahead.faults += s.readahead.faults;
      out.tier.readahead.in_flight += s.readahead.in_flight;
    }
  }
  return out;
}

namespace {
// Legacy resident-only snapshots ("MLEB") are still readable; snapshots
// are written in the v2 format ("MLE2") that adds a per-table mode byte
// and a tiered payload (packed codes + exact hot blocks).
constexpr uint32_t kEmbeddingSnapshotMagic = 0x4d4c4542;    // "MLEB"
constexpr uint32_t kEmbeddingSnapshotMagicV2 = 0x4d4c4532;  // "MLE2"
constexpr uint8_t kSnapshotModeResident = 0;
constexpr uint8_t kSnapshotModeTiered = 1;

void PutMetadata(Encoder* enc, const EmbeddingTableMetadata& metadata) {
  enc->PutString(metadata.name);
  enc->PutVarint64(static_cast<uint64_t>(metadata.version));
  enc->PutFixed64(static_cast<uint64_t>(metadata.created_at));
  enc->PutString(metadata.training_source);
  enc->PutString(metadata.parent);
  enc->PutU8(metadata.patched ? 1 : 0);
  enc->PutString(metadata.notes);
}

StatusOr<EmbeddingTableMetadata> GetMetadata(Decoder* dec) {
  EmbeddingTableMetadata metadata;
  MLFS_ASSIGN_OR_RETURN(metadata.name, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint64_t version, dec->GetVarint64());
  metadata.version = static_cast<int>(version);
  MLFS_ASSIGN_OR_RETURN(uint64_t created_at, dec->GetFixed64());
  metadata.created_at = static_cast<Timestamp>(created_at);
  MLFS_ASSIGN_OR_RETURN(metadata.training_source, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(metadata.parent, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint8_t patched, dec->GetU8());
  metadata.patched = patched != 0;
  MLFS_ASSIGN_OR_RETURN(metadata.notes, dec->GetString());
  return metadata;
}

}  // namespace

std::string EmbeddingStore::Snapshot() const {
  std::lock_guard lock(mu_);
  Encoder enc;
  enc.PutFixed32(kEmbeddingSnapshotMagicV2);
  uint64_t total = 0;
  for (const auto& [name, versions] : tables_) total += versions.size();
  enc.PutVarint64(total);
  for (const auto& [name, versions] : tables_) {
    for (const auto& table : versions) {
      PutMetadata(&enc, table->metadata());
      enc.PutVarint64(table->size());
      enc.PutVarint64(table->dim());
      for (const auto& key : table->keys()) enc.PutString(key);
      if (!table->tiered()) {
        enc.PutU8(kSnapshotModeResident);
        for (float x : table->raw()) enc.PutFloat(x);
        continue;
      }
      const EmbeddingTier* tier = table->tier();
      enc.PutU8(kSnapshotModeTiered);
      enc.PutVarint64(static_cast<uint64_t>(tier->bits()));
      enc.PutVarint64(tier->block_rows());
      enc.PutVarint64(tier->hot_limit_blocks());
      for (float x : tier->lo()) enc.PutFloat(x);
      for (float x : tier->hi()) enc.PutFloat(x);
      enc.PutString(std::string_view(
          reinterpret_cast<const char*>(tier->codes()),
          tier->n() * tier->row_bytes()));
      // Exact hot blocks make the restored table serve byte-identical
      // vectors, not a dequantized approximation of its hot set.
      const auto hot = tier->HotBlocksSnapshot();
      enc.PutVarint64(hot.size());
      for (const auto& [block, rows] : hot) {
        enc.PutVarint64(block);
        enc.PutString(std::string_view(
            reinterpret_cast<const char*>(rows.data()),
            rows.size() * sizeof(float)));
      }
    }
  }
  return enc.Release();
}

Status EmbeddingStore::Restore(std::string_view snapshot) {
  {
    std::lock_guard lock(mu_);
    if (!tables_.empty()) {
      return Status::FailedPrecondition("Restore requires an empty store");
    }
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  const bool v2 = magic == kEmbeddingSnapshotMagicV2;
  if (!v2 && magic != kEmbeddingSnapshotMagic) {
    return Status::Corruption("bad embedding snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t total, dec.GetVarint64());
  std::vector<EmbeddingTableMetadata> restored;
  {
    std::lock_guard lock(mu_);
    for (uint64_t t = 0; t < total; ++t) {
      MLFS_ASSIGN_OR_RETURN(EmbeddingTableMetadata metadata, GetMetadata(&dec));
      MLFS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
      MLFS_ASSIGN_OR_RETURN(uint64_t dim, dec.GetVarint64());
      if (dim == 0 || dim > (1ULL << 24) || n > (1ULL << 32)) {
        return Status::Corruption("implausible embedding shape");
      }
      std::vector<std::string> keys;
      keys.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        MLFS_ASSIGN_OR_RETURN(std::string key, dec.GetString());
        keys.push_back(std::move(key));
      }
      uint8_t mode = kSnapshotModeResident;
      if (v2) {
        MLFS_ASSIGN_OR_RETURN(mode, dec.GetU8());
      }
      EmbeddingTablePtr table;
      if (mode == kSnapshotModeResident) {
        std::vector<float> vectors(n * dim);
        for (auto& x : vectors) {
          MLFS_ASSIGN_OR_RETURN(x, dec.GetFloat());
        }
        MLFS_ASSIGN_OR_RETURN(
            table, EmbeddingTable::Create(std::move(metadata),
                                          std::move(keys), std::move(vectors),
                                          dim));
      } else if (mode == kSnapshotModeTiered) {
        MLFS_ASSIGN_OR_RETURN(uint64_t bits, dec.GetVarint64());
        MLFS_ASSIGN_OR_RETURN(uint64_t block_rows, dec.GetVarint64());
        MLFS_ASSIGN_OR_RETURN(uint64_t hot_limit, dec.GetVarint64());
        if (bits < 1 || bits > 16 || block_rows == 0) {
          return Status::Corruption("implausible tier geometry");
        }
        PackedCodes packed;
        packed.bits = static_cast<int>(bits);
        packed.n = n;
        packed.dim = dim;
        packed.row_bytes = (dim * bits + 7) / 8;
        packed.lo.resize(dim);
        packed.hi.resize(dim);
        for (auto& x : packed.lo) {
          MLFS_ASSIGN_OR_RETURN(x, dec.GetFloat());
        }
        for (auto& x : packed.hi) {
          MLFS_ASSIGN_OR_RETURN(x, dec.GetFloat());
        }
        MLFS_ASSIGN_OR_RETURN(std::string codes, dec.GetString());
        if (codes.size() != n * packed.row_bytes) {
          return Status::Corruption("tier code section length mismatch");
        }
        packed.codes.assign(codes.begin(), codes.end());
        MLFS_ASSIGN_OR_RETURN(uint64_t hot_count, dec.GetVarint64());
        std::vector<std::pair<uint32_t, std::vector<float>>> hot;
        hot.reserve(hot_count);
        for (uint64_t h = 0; h < hot_count; ++h) {
          MLFS_ASSIGN_OR_RETURN(uint64_t block, dec.GetVarint64());
          MLFS_ASSIGN_OR_RETURN(std::string payload, dec.GetString());
          if (payload.size() % sizeof(float) != 0) {
            return Status::Corruption("tier hot block not float-sized");
          }
          std::vector<float> rows(payload.size() / sizeof(float));
          std::memcpy(rows.data(), payload.data(), payload.size());
          hot.emplace_back(static_cast<uint32_t>(block), std::move(rows));
        }
        const size_t hot_budget =
            static_cast<size_t>(hot_limit) * block_rows * dim * sizeof(float);
        // The snapshot's own geometry wins over the current policy: hot
        // blocks were captured at the recorded block_rows, and bits are
        // baked into the codes.
        EmbeddingTierOptions options = TierOptionsLocked(metadata, hot_budget);
        options.block_rows = block_rows;
        StatusOr<EmbeddingTablePtr> tiered = EmbeddingTable::RestoreTiered(
            metadata, keys, packed, hot, options);
        if (tiered.ok()) {
          table = std::move(tiered).value();
        } else if (tiered.status().code() == StatusCode::kCorruption) {
          return tiered.status();
        } else {
          // The spill failed (fault injection, full disk): fall back to a
          // resident table serving the exact same values — dequantized
          // codes with the exact hot blocks overlaid.
          ++restore_fallbacks_;
          const PackedDecodeTables tables =
              MakeDecodeTables(packed.bits, packed.lo, packed.hi);
          std::vector<float> vectors(n * dim);
          DequantizeRange(ViewOf(packed, tables), 0, n, vectors.data());
          for (const auto& [block, rows] : hot) {
            const size_t row0 = static_cast<size_t>(block) * block_rows;
            if (row0 * dim + rows.size() > vectors.size()) {
              return Status::Corruption("tier hot block out of range");
            }
            std::copy(rows.begin(), rows.end(),
                      vectors.begin() + row0 * dim);
          }
          MLFS_ASSIGN_OR_RETURN(
              table, EmbeddingTable::Create(std::move(metadata),
                                            std::move(keys),
                                            std::move(vectors), dim));
        }
      } else {
        return Status::Corruption("unknown embedding snapshot mode");
      }
      auto& versions = tables_[table->metadata().name];
      if (!versions.empty() &&
          versions.back()->metadata().version >= table->metadata().version) {
        return Status::Corruption("snapshot versions out of order");
      }
      restored.push_back(table->metadata());
      versions.push_back(std::move(table));
    }
  }
  // Re-record graph structure (idempotent when the graph itself was also
  // restored from its snapshot); staleness events are the graph's state,
  // not re-emitted here.
  for (const EmbeddingTableMetadata& metadata : restored) {
    RecordLineage(metadata, metadata.version - 1);
  }
  return Status::OK();
}

}  // namespace mlfs
