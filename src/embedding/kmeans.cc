#include "embedding/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "embedding/distance.h"

namespace mlfs {

StatusOr<KMeansResult> KMeans(const float* data, size_t n, size_t dim,
                              size_t k, int max_iterations, uint64_t seed) {
  if (data == nullptr || n == 0 || dim == 0 || k == 0) {
    return Status::InvalidArgument("kmeans needs data, dim and k");
  }
  k = std::min(k, n);
  KMeansResult result;
  result.k = k;
  result.dim = dim;
  result.centroids.resize(k * dim);
  result.assignment.assign(n, 0);

  Rng rng(seed);
  // k-means++ seeding.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  size_t first = rng.Uniform(n);
  std::copy(data + first * dim, data + (first + 1) * dim,
            result.centroids.begin());
  for (size_t c = 1; c < k; ++c) {
    const float* prev = result.centroids.data() + (c - 1) * dim;
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = L2Squared(data + i * dim, prev, dim);
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    double target = rng.UniformDouble() * total;
    size_t chosen = n - 1;
    double cumulative = 0.0;
    for (size_t i = 0; i < n; ++i) {
      cumulative += min_dist[i];
      if (cumulative >= target) {
        chosen = i;
        break;
      }
    }
    std::copy(data + chosen * dim, data + (chosen + 1) * dim,
              result.centroids.begin() + c * dim);
  }

  std::vector<double> sums(k * dim);
  std::vector<size_t> counts(k);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assign.
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* x = data + i * dim;
      uint32_t best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (size_t c = 0; c < k; ++c) {
        float d = L2Squared(x, result.centroid(c), dim);
        if (d < best_dist) {
          best_dist = d;
          best = static_cast<uint32_t>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
      result.inertia += best_dist;
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Update.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = result.assignment[i];
      const float* x = data + i * dim;
      double* s = sums.data() + static_cast<size_t>(c) * dim;
      for (size_t j = 0; j < dim; ++j) s[j] += x[j];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        size_t pick = rng.Uniform(n);
        std::copy(data + pick * dim, data + (pick + 1) * dim,
                  result.centroids.begin() + c * dim);
        continue;
      }
      float* centroid = result.centroids.data() + c * dim;
      for (size_t j = 0; j < dim; ++j) {
        centroid[j] = static_cast<float>(sums[c * dim + j] /
                                         static_cast<double>(counts[c]));
      }
    }
  }
  return result;
}

}  // namespace mlfs
