#include <algorithm>
#include <cmath>
#include <queue>

#include "common/threadpool.h"
#include "embedding/ann.h"
#include "embedding/embedding_table.h"
#include "embedding/tier.h"

namespace mlfs {
namespace {

using BestHeap = std::priority_queue<std::pair<float, size_t>>;

std::vector<Neighbor> DrainHeap(BestHeap* heap) {
  std::vector<Neighbor> out(heap->size());
  for (size_t i = heap->size(); i-- > 0;) {
    out[i] = {heap->top().first, heap->top().second};
    heap->pop();
  }
  return out;
}

/// Exact scan over a *tiered* embedding table: blocks stream out of the
/// tier (hot arena directly, cold blocks dequantized into scan scratch —
/// never promoted, so an ANN pass cannot flush the point-lookup working
/// set) and queries tile over each block while it is cache-resident.
///
/// Results are bitwise-identical to BruteForceIndex built over the
/// table's served vectors: rows are visited in ascending order with the
/// same heap update rule and the same per-metric float expressions, and
/// cosine inverse norms are recomputed from the served rows on every scan
/// so demotions (which change a row's served value to its dequantized
/// form) can never leave the norms stale.
class TieredBruteForceIndex final : public AnnIndex {
 public:
  TieredBruteForceIndex(EmbeddingTablePtr table, Metric metric)
      : table_(std::move(table)), metric_(metric) {}

  /// The data lives in the table handed to the constructor; the argument
  /// buffer is ignored (pass nullptr, 0, 0).
  Status Build(const float* /*data*/, size_t /*n*/, size_t /*dim*/) override {
    if (built_) {
      return Status::FailedPrecondition("index already built");
    }
    if (table_ == nullptr || !table_->tiered() || table_->size() == 0) {
      return Status::InvalidArgument(
          "tiered brute-force index needs a non-empty tiered table");
    }
    built_ = true;
    return Status::OK();
  }

  StatusOr<std::vector<Neighbor>> Search(const float* query,
                                         size_t k) const override {
    if (!built_) {
      return Status::FailedPrecondition("index not built");
    }
    if (query == nullptr || k == 0) {
      return Status::InvalidArgument("bad query");
    }
    const size_t n = table_->size();
    const size_t dim = table_->dim();
    k = std::min(k, n);
    BestHeap heap;
    MLFS_RETURN_IF_ERROR(table_->tier()->ScanBlocks(
        [&](size_t row0, size_t nrows, const float* rows) {
          for (size_t r = 0; r < nrows; ++r) {
            float d = Distance(metric_, query, rows + r * dim, dim);
            const size_t i = row0 + r;
            if (heap.size() < k) {
              heap.emplace(d, i);
            } else if (d < heap.top().first) {
              heap.pop();
              heap.emplace(d, i);
            }
          }
        }));
    return DrainHeap(&heap);
  }

  /// One streaming pass over the tier per batch (cold blocks dequantize
  /// once for all queries, not once per query tile); within each block,
  /// query tiles fan out across `pool`. Per-query scan order stays
  /// ascending, so results match the resident blocked scan exactly.
  StatusOr<std::vector<std::vector<Neighbor>>> BatchSearch(
      const float* queries, size_t nq, size_t k,
      ThreadPool* pool) const override {
    if (!built_) {
      return Status::FailedPrecondition("index not built");
    }
    if ((queries == nullptr && nq > 0) || k == 0) {
      return Status::InvalidArgument("bad query batch");
    }
    const size_t n = table_->size();
    const size_t dim = table_->dim();
    k = std::min(k, n);
    std::vector<std::vector<Neighbor>> out(nq);
    if (nq == 0) return out;

    std::vector<BestHeap> heaps(nq);
    std::vector<float> query_inv_norm;
    if (metric_ == Metric::kCosine) {
      query_inv_norm.resize(nq);
      for (size_t q = 0; q < nq; ++q) {
        float norm = L2Norm(queries + q * dim, dim);
        query_inv_norm[q] = norm == 0 ? 0.0f : 1.0f / norm;
      }
    }
    std::vector<float> row_inv_norm;
    MLFS_RETURN_IF_ERROR(table_->tier()->ScanBlocks(
        [&](size_t row0, size_t nrows, const float* rows) {
          if (metric_ == Metric::kCosine) {
            row_inv_norm.resize(nrows);
            for (size_t r = 0; r < nrows; ++r) {
              float norm = L2Norm(rows + r * dim, dim);
              row_inv_norm[r] = norm == 0 ? 0.0f : 1.0f / norm;
            }
          }
          const size_t num_tiles = (nq + kQueryTile - 1) / kQueryTile;
          auto scan_tile = [&](size_t tile) {
            const size_t q0 = tile * kQueryTile;
            const size_t q1 = std::min(q0 + kQueryTile, nq);
            for (size_t q = q0; q < q1; ++q) {
              const float* query = queries + q * dim;
              BestHeap& heap = heaps[q];
              for (size_t r = 0; r < nrows; ++r) {
                const float* row = rows + r * dim;
                float d = 0.0f;
                switch (metric_) {
                  case Metric::kL2:
                    d = L2Squared(query, row, dim);
                    break;
                  case Metric::kInnerProduct:
                    d = -DotProduct(query, row, dim);
                    break;
                  case Metric::kCosine:
                    d = 1.0f - DotProduct(query, row, dim) *
                                   row_inv_norm[r] * query_inv_norm[q];
                    break;
                }
                const size_t i = row0 + r;
                if (heap.size() < k) {
                  heap.emplace(d, i);
                } else if (d < heap.top().first) {
                  heap.pop();
                  heap.emplace(d, i);
                }
              }
            }
          };
          if (pool != nullptr && num_tiles > 1) {
            ParallelFor(pool, 0, num_tiles, scan_tile);
          } else {
            for (size_t tile = 0; tile < num_tiles; ++tile) scan_tile(tile);
          }
        }));
    for (size_t q = 0; q < nq; ++q) out[q] = DrainHeap(&heaps[q]);
    return out;
  }

  std::string name() const override { return "tiered_brute_force"; }
  Metric metric() const override { return metric_; }
  size_t dim() const override { return built_ ? table_->dim() : 0; }

 private:
  static constexpr size_t kQueryTile = 16;

  EmbeddingTablePtr table_;
  Metric metric_;
  bool built_ = false;
};

}  // namespace

std::unique_ptr<AnnIndex> MakeTieredBruteForceIndex(
    std::shared_ptr<const EmbeddingTable> table, Metric metric) {
  return std::make_unique<TieredBruteForceIndex>(std::move(table), metric);
}

}  // namespace mlfs
