#ifndef MLFS_EMBEDDING_EMBEDDING_DRIFT_H_
#define MLFS_EMBEDDING_EMBEDDING_DRIFT_H_

#include <string>

#include "common/status.h"
#include "embedding/embedding_table.h"

namespace mlfs {

/// Drift verdict between two embedding versions. Captures the paper's
/// §3.1 argument: *embeddings are derived data* — cell-level tabular
/// metrics (null counts, value ranges) cannot see a rotation or a
/// neighborhood change, so embedding-native monitors compare geometry.
struct EmbeddingDriftReport {
  /// Tabular-style signals (what a traditional FS would compute):
  uint64_t null_or_nan_cells = 0;     // NaN/inf components in version B.
  double norm_psi = 0.0;              // PSI over the vector-norm histogram.
  /// Embedding-native signals:
  double mean_neighbor_churn = 0.0;   // 1 - mean kNN overlap.
  double centroid_cosine = 1.0;       // Cosine(mean_a, mean_b).
  double mean_self_cosine = 1.0;      // Mean cos(v_a(key), v_b(key)).
  bool drifted = false;
  std::string ToString() const;
};

struct EmbeddingDriftThresholds {
  double neighbor_churn_above = 0.5;
  double self_cosine_below = 0.8;
  double norm_psi_above = 0.25;
};

/// Compares embedding version `b` against reference `a` over their common
/// keys. `k` is the neighborhood size for churn; `max_keys` caps the
/// sampled centers.
StatusOr<EmbeddingDriftReport> CheckEmbeddingDrift(
    const EmbeddingTable& a, const EmbeddingTable& b, size_t k = 10,
    size_t max_keys = 300, EmbeddingDriftThresholds thresholds = {});

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_EMBEDDING_DRIFT_H_
