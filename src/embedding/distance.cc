// Runtime-dispatched distance kernels. The scalar reference kernels are
// the semantic ground truth; the AVX2+FMA (x86) and NEON (aarch64)
// variants reorder the accumulation (wider partial sums) but keep every
// multiply/subtract bit-identical per lane, so they agree with the scalar
// kernels to within re-association error (~1e-6 relative at dim 300).
//
// Dispatch happens once, at static-initialization time, into plain
// function pointers: the hot loops in brute-force scan, HNSW traversal,
// IVF probing, and k-means assignment all call through `simd::dot_product`
// / `simd::l2_squared` with no per-call feature test. The pointers are
// constant-initialized to the scalar kernels so any caller that runs
// before this TU's dynamic initializers (e.g. another TU's static
// constructor) still gets correct results.

#include "embedding/distance.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MLFS_DISTANCE_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define MLFS_DISTANCE_NEON 1
#endif

namespace mlfs {

float DotProductScalar(const float* a, const float* b, size_t dim) {
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    s0 += a[j] * b[j];
    s1 += a[j + 1] * b[j + 1];
    s2 += a[j + 2] * b[j + 2];
    s3 += a[j + 3] * b[j + 3];
  }
  for (; j < dim; ++j) s0 += a[j] * b[j];
  return s0 + s1 + s2 + s3;
}

float L2SquaredScalar(const float* a, const float* b, size_t dim) {
  float s0 = 0, s1 = 0;
  size_t j = 0;
  for (; j + 2 <= dim; j += 2) {
    float d0 = a[j] - b[j];
    float d1 = a[j + 1] - b[j + 1];
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  for (; j < dim; ++j) {
    float d = a[j] - b[j];
    s0 += d * d;
  }
  return s0 + s1;
}

namespace simd {
namespace {

#if MLFS_DISTANCE_X86

__attribute__((target("avx2,fma"))) float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_movehdup_ps(sum));
  return _mm_cvtss_f32(sum);
}

__attribute__((target("avx2,fma"))) float DotProductAvx2(const float* a,
                                                         const float* b,
                                                         size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= dim; j += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                           _mm256_loadu_ps(b + j + 8), acc1);
  }
  if (j + 8 <= dim) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    j += 8;
  }
  float sum = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; j < dim; ++j) sum += a[j] * b[j];
  return sum;
}

__attribute__((target("avx2,fma"))) float L2SquaredAvx2(const float* a,
                                                        const float* b,
                                                        size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= dim; j += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + j + 8),
                              _mm256_loadu_ps(b + j + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (j + 8 <= dim) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    j += 8;
  }
  float sum = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; j < dim; ++j) {
    float d = a[j] - b[j];
    sum += d * d;
  }
  return sum;
}

bool CpuHasAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // MLFS_DISTANCE_X86

#if MLFS_DISTANCE_NEON

float DotProductNeon(const float* a, const float* b, size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0);
  float32x4_t acc1 = vdupq_n_f32(0);
  size_t j = 0;
  for (; j + 8 <= dim; j += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + j), vld1q_f32(b + j));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + j + 4), vld1q_f32(b + j + 4));
  }
  if (j + 4 <= dim) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + j), vld1q_f32(b + j));
    j += 4;
  }
  float sum = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; j < dim; ++j) sum += a[j] * b[j];
  return sum;
}

float L2SquaredNeon(const float* a, const float* b, size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0);
  float32x4_t acc1 = vdupq_n_f32(0);
  size_t j = 0;
  for (; j + 8 <= dim; j += 8) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + j), vld1q_f32(b + j));
    float32x4_t d1 = vsubq_f32(vld1q_f32(a + j + 4), vld1q_f32(b + j + 4));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  if (j + 4 <= dim) {
    float32x4_t d = vsubq_f32(vld1q_f32(a + j), vld1q_f32(b + j));
    acc0 = vfmaq_f32(acc0, d, d);
    j += 4;
  }
  float sum = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; j < dim; ++j) {
    float d = a[j] - b[j];
    sum += d * d;
  }
  return sum;
}

#endif  // MLFS_DISTANCE_NEON

std::string_view g_level = "scalar";

}  // namespace

KernelFn dot_product = DotProductScalar;
KernelFn l2_squared = L2SquaredScalar;

namespace {

// Dynamic initializer: upgrades the constant-initialized scalar pointers
// to the best ISA available. Runs before main(); callers that run earlier
// (other TUs' static initializers) see the scalar kernels, which is safe.
const bool g_dispatched = [] {
#if MLFS_DISTANCE_X86
  if (CpuHasAvx2Fma()) {
    dot_product = DotProductAvx2;
    l2_squared = L2SquaredAvx2;
    g_level = "avx2+fma";
  }
#elif MLFS_DISTANCE_NEON
  dot_product = DotProductNeon;
  l2_squared = L2SquaredNeon;
  g_level = "neon";
#endif
  return true;
}();

}  // namespace

std::string_view LevelName() { return g_level; }

}  // namespace simd
}  // namespace mlfs
