#include "embedding/quality.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "embedding/distance.h"
#include "ml/matrix.h"
#include "ml/metrics.h"

namespace mlfs {
namespace {

// Keys present in both tables, in table-a order.
std::vector<std::string> CommonKeys(const EmbeddingTable& a,
                                    const EmbeddingTable& b) {
  std::vector<std::string> out;
  out.reserve(std::min(a.size(), b.size()));
  for (size_t i = 0; i < a.size(); ++i) {
    if (b.IndexOf(a.key(i)) >= 0) out.push_back(a.key(i));
  }
  return out;
}

// Indices (into `universe`) of the k nearest keys to `center` by cosine
// within the given table.
std::vector<size_t> TopKWithin(const EmbeddingTable& table,
                               const std::vector<std::string>& universe,
                               size_t center, size_t k) {
  const float* q = table.Get(universe[center]).value();
  std::vector<std::pair<float, size_t>> scored;
  scored.reserve(universe.size() - 1);
  for (size_t i = 0; i < universe.size(); ++i) {
    if (i == center) continue;
    const float* v = table.Get(universe[i]).value();
    scored.emplace_back(-CosineSimilarity(q, v, table.dim()), i);
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace

StatusOr<NeighborStabilityReport> NeighborStability(const EmbeddingTable& a,
                                                    const EmbeddingTable& b,
                                                    size_t k,
                                                    size_t max_keys) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  std::vector<std::string> universe = CommonKeys(a, b);
  if (universe.size() < k + 1) {
    return Status::InvalidArgument(
        "tables share too few keys for k=" + std::to_string(k));
  }
  // Deterministic subsample: evenly spaced centers.
  size_t num_centers = std::min(max_keys, universe.size());
  NeighborStabilityReport report;
  report.keys_compared = num_centers;
  double total = 0.0;
  for (size_t c = 0; c < num_centers; ++c) {
    size_t center = c * universe.size() / num_centers;
    auto neighbors_a = TopKWithin(a, universe, center, k);
    auto neighbors_b = TopKWithin(b, universe, center, k);
    std::unordered_set<size_t> set_a(neighbors_a.begin(), neighbors_a.end());
    size_t common = 0;
    for (size_t id : neighbors_b) common += set_a.count(id);
    double overlap =
        static_cast<double>(common) / static_cast<double>(k);
    total += overlap;
    report.min_overlap = std::min(report.min_overlap, overlap);
  }
  report.mean_overlap = total / static_cast<double>(num_centers);
  return report;
}

StatusOr<double> EigenspaceOverlapScore(const EmbeddingTable& a,
                                        const EmbeddingTable& b) {
  std::vector<std::string> universe = CommonKeys(a, b);
  const size_t n = universe.size();
  if (n == 0) {
    return Status::InvalidArgument("tables share no keys");
  }
  const size_t da = a.dim();
  const size_t db = b.dim();
  // Stack common-key vectors as n x d matrices.
  Matrix xa(n, da), xb(n, db);
  for (size_t i = 0; i < n; ++i) {
    const float* ra = a.Get(universe[i]).value();
    const float* rb = b.Get(universe[i]).value();
    for (size_t j = 0; j < da; ++j) xa.at(i, j) = ra[j];
    for (size_t j = 0; j < db; ++j) xb.at(i, j) = rb[j];
  }
  // Orthonormal column bases (spans of the embedding matrices).
  Matrix ua = OrthonormalizeColumns(xa);
  Matrix ub = OrthonormalizeColumns(xb);
  if (ua.cols() == 0 || ub.cols() == 0) {
    return Status::InvalidArgument("an embedding matrix has rank zero");
  }
  Matrix cross = ua.Transpose().Multiply(ub);
  double fro = cross.FrobeniusNorm();
  double score = fro * fro /
                 static_cast<double>(std::max(ua.cols(), ub.cols()));
  return std::min(1.0, score);
}

StatusOr<Dataset> MaterializeTask(const DownstreamTask& task,
                                  const EmbeddingTable& table) {
  if (task.keys.size() != task.labels.size()) {
    return Status::InvalidArgument("task keys/labels misaligned");
  }
  Dataset data;
  data.dim = table.dim();
  for (size_t i = 0; i < task.keys.size(); ++i) {
    auto vec = table.GetVector(task.keys[i]);
    if (!vec.ok()) continue;  // Key absent from this version.
    data.Add(*vec, task.labels[i]);
  }
  if (data.size() == 0) {
    return Status::InvalidArgument("no task key found in the table");
  }
  return data;
}

StatusOr<InstabilityReport> DownstreamInstability(
    const EmbeddingTable& a, const EmbeddingTable& b,
    const DownstreamTask& task, double test_fraction,
    const TrainConfig& config) {
  // Restrict to keys present in both tables so datasets are aligned.
  DownstreamTask shared;
  for (size_t i = 0; i < task.keys.size(); ++i) {
    if (a.IndexOf(task.keys[i]) >= 0 && b.IndexOf(task.keys[i]) >= 0) {
      shared.keys.push_back(task.keys[i]);
      shared.labels.push_back(task.labels[i]);
    }
  }
  MLFS_ASSIGN_OR_RETURN(Dataset data_a, MaterializeTask(shared, a));
  MLFS_ASSIGN_OR_RETURN(Dataset data_b, MaterializeTask(shared, b));
  if (data_a.size() != data_b.size()) {
    return Status::Internal("aligned datasets differ in size");
  }
  // Same split on both sides (same seed, same order).
  auto [train_a, test_a] = TrainTestSplit(data_a, test_fraction, config.seed);
  auto [train_b, test_b] = TrainTestSplit(data_b, test_fraction, config.seed);

  SoftmaxClassifier model_a, model_b;
  MLFS_RETURN_IF_ERROR(model_a.Fit(train_a, config).status());
  MLFS_RETURN_IF_ERROR(model_b.Fit(train_b, config).status());
  MLFS_ASSIGN_OR_RETURN(std::vector<int> pred_a, model_a.PredictBatch(test_a));
  MLFS_ASSIGN_OR_RETURN(std::vector<int> pred_b, model_b.PredictBatch(test_b));

  InstabilityReport report;
  MLFS_ASSIGN_OR_RETURN(report.prediction_churn,
                        PredictionChurn(pred_a, pred_b));
  MLFS_ASSIGN_OR_RETURN(report.accuracy_a, Accuracy(test_a.labels, pred_a));
  MLFS_ASSIGN_OR_RETURN(report.accuracy_b, Accuracy(test_b.labels, pred_b));
  return report;
}

}  // namespace mlfs
