#include "embedding/compress.h"

#include <algorithm>
#include <cmath>

namespace mlfs {

StatusOr<EmbeddingTablePtr> QuantizeUniform(const EmbeddingTable& table,
                                            int bits) {
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("bits must be in [1, 16]");
  }
  const size_t n = table.size();
  const size_t d = table.dim();
  if (n == 0) {
    return Status::InvalidArgument("cannot quantize an empty table");
  }
  const int levels = 1 << bits;

  // Per-dimension ranges.
  std::vector<float> lo(d, 0.0f), hi(d, 0.0f);
  for (size_t j = 0; j < d; ++j) {
    lo[j] = hi[j] = table.row(0)[j];
  }
  for (size_t i = 1; i < n; ++i) {
    const float* r = table.row(i);
    for (size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], r[j]);
      hi[j] = std::max(hi[j], r[j]);
    }
  }

  std::vector<float> out(n * d);
  for (size_t j = 0; j < d; ++j) {
    const float range = hi[j] - lo[j];
    if (range == 0.0f) {
      for (size_t i = 0; i < n; ++i) out[i * d + j] = lo[j];
      continue;
    }
    const float step = range / static_cast<float>(levels - 1);
    for (size_t i = 0; i < n; ++i) {
      float x = table.row(i)[j];
      int q = static_cast<int>(std::lround((x - lo[j]) / step));
      q = std::clamp(q, 0, levels - 1);
      out[i * d + j] = lo[j] + static_cast<float>(q) * step;
    }
  }

  EmbeddingTableMetadata metadata = table.metadata();
  metadata.parent = table.metadata().VersionedName();
  metadata.version = 0;  // Unregistered derivative.
  metadata.notes = "uniform quantization to " + std::to_string(bits) +
                   " bits (ratio " +
                   std::to_string(CompressionRatio(bits)) + "x)";
  return table.WithVectors(std::move(metadata), std::move(out), d);
}

StatusOr<double> ReconstructionMse(const EmbeddingTable& a,
                                   const EmbeddingTable& b) {
  if (a.size() != b.size() || a.dim() != b.dim()) {
    return Status::InvalidArgument("tables have different shapes");
  }
  if (a.size() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    for (size_t j = 0; j < a.dim(); ++j) {
      double diff = static_cast<double>(ra[j]) - rb[j];
      total += diff * diff;
    }
  }
  return total / static_cast<double>(a.size() * a.dim());
}

}  // namespace mlfs
